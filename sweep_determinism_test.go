package nisim

import (
	"bytes"
	"testing"

	"nisim/internal/micro"
	"nisim/internal/nic"
	"nisim/internal/sweep"
)

// TestParallelSweepIsDeterministic is the orchestrator's end-to-end
// determinism regression: a reduced Table 5 grid swept with eight workers
// must produce byte-identical text and canonical JSON to a serial (jobs=1)
// sweep. Each simulation is single-threaded and share-nothing, results are
// collected in submission order, and everything host-dependent lives in
// the timing sidecar that Canonical strips — so any difference here means
// a concurrency leak into the model. Under `make ci` this also runs with
// the race detector watching the worker pool.
func TestParallelSweepIsDeterministic(t *testing.T) {
	spec := micro.Table5Spec{
		Kinds:       []nic.Kind{nic.CM5, nic.CNI32Qm},
		LatPayloads: []int{8, 64},
		BwPayloads:  []int{8, 256},
		Warmup:      50, Rounds: 10, Msgs: 40,
	}

	serial := sweep.Run(sweep.Config{Jobs: 1}, spec.Jobs())
	parallel := sweep.Run(sweep.Config{Jobs: 8}, spec.Jobs())

	serialText := micro.FormatTable5(spec.Rows(serial))
	parallelText := micro.FormatTable5(spec.Rows(parallel))
	if serialText != parallelText {
		t.Errorf("parallel text table differs from serial:\nserial:\n%s\nparallel:\n%s", serialText, parallelText)
	}

	serialJSON, err := sweep.NewReport("table5", 0, sweep.Config{Jobs: 1}, serial, 1).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := sweep.NewReport("table5", 0, sweep.Config{Jobs: 8}, parallel, 2).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Errorf("parallel canonical JSON differs from serial:\nserial:\n%s\nparallel:\n%s", serialJSON, parallelJSON)
	}
}
