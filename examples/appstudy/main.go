// Appstudy: characterize every built-in application on one NI — execution
// time breakdown, message-size mix, and flow-control behavior. This is the
// per-application view behind the paper's Figure 1 and Table 4.
//
//	go run ./examples/appstudy [ni]
package main

import (
	"fmt"
	"log"
	"os"

	"nisim"
)

func main() {
	ni := nisim.NIKind("cm5")
	if len(os.Args) > 1 {
		ni = nisim.NIKind(os.Args[1])
	}
	fmt.Printf("applications on %s, 16 nodes, 1 flow-control buffer\n\n", ni)
	fmt.Printf("%-14s %9s %9s %9s %9s %8s  %s\n",
		"app", "exec(us)", "compute", "transfer", "buffer", "bounces", "top sizes (B)")
	for _, app := range nisim.Apps() {
		res, err := nisim.RunApp(nisim.Config{NI: ni, FlowBuffers: 1}, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.0f %8.1f%% %8.1f%% %8.1f%% %8d  %v\n",
			app, res.ExecMicros,
			100*res.Breakdown.Compute, 100*res.Breakdown.Transfer, 100*res.Breakdown.Buffering,
			res.Counters.Bounces, res.TopMessageSizes(3))
	}
}
