// Sharedmem: a stencil computation on the shared-memory protocol — the
// programming model appbt and barnes use — compared across NI designs.
// Each node owns a strip of a 1D grid and reads its neighbors' boundary
// blocks every iteration; the NI determines how much the protocol's
// request-reply traffic costs.
//
//	go run ./examples/sharedmem
package main

import (
	"fmt"
	"log"

	"nisim"
)

func main() {
	const (
		iters  = 20
		blocks = 8 // boundary blocks per neighbor
	)
	fmt.Println("1D stencil over shared memory, 16 nodes, exec time by NI")
	for _, ni := range nisim.PaperNIs() {
		shm := nisim.NewSharedMemory(nisim.ShmemConfig{DataBytes: 24})
		res, err := nisim.Run(nisim.Config{NI: ni}, func(n *nisim.Node) {
			sn := shm.Attach(n)
			N := n.Nodes()
			// Block g*64 is homed at node g%N; name each node's boundary
			// blocks so they are homed at their writer.
			myBlock := func(owner, k int) int64 { return int64((k+1)*N+owner) * 64 }
			left, right := (n.ID()+N-1)%N, (n.ID()+1)%N
			n.Barrier()
			for it := 0; it < iters; it++ {
				for k := 0; k < blocks; k++ {
					sn.Write(myBlock(n.ID(), k)) // update own boundary
				}
				n.Barrier()
				for k := 0; k < blocks; k++ {
					sn.Read(myBlock(left, k)) // read both neighbors'
					sn.Read(myBlock(right, k))
					n.Compute(1200)
				}
				n.Barrier()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %8.0f us  (%5.1f%% transfer, %d messages)\n",
			ni, res.ExecMicros, 100*res.Breakdown.Transfer, res.Counters.MessagesSent)
	}
}
