// Designspace: sweep one application across every NI design and several
// flow-control buffer levels — the experiment a designer would run to place
// a new NI in the paper's design space.
//
//	go run ./examples/designspace [app]
package main

import (
	"fmt"
	"log"
	"os"

	"nisim"
)

func main() {
	app := "spsolve"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	bufLevels := []int{1, 2, 8, nisim.InfiniteBuffers}

	fmt.Printf("execution time (us) for %s, 16 nodes\n", app)
	fmt.Printf("%-18s", "NI \\ buffers")
	for _, b := range bufLevels {
		if b == nisim.InfiniteBuffers {
			fmt.Printf(" %9s", "inf")
		} else {
			fmt.Printf(" %9d", b)
		}
	}
	fmt.Println()

	for _, ni := range nisim.NIKinds() {
		fmt.Printf("%-18s", ni)
		for _, b := range bufLevels {
			res, err := nisim.RunAppScaled(nisim.Config{NI: ni, FlowBuffers: b}, app, 0.5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.0f", res.ExecMicros)
		}
		fmt.Println()
	}
}
