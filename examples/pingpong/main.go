// Pingpong: a custom active-message protocol on the public API — measures
// per-NI round-trip latency the way the paper's Table 5 does, then prints a
// comparison across all seven NIs.
//
//	go run ./examples/pingpong
package main

import (
	"fmt"
	"log"

	"nisim"
)

const (
	hPing = 1
	hPong = 2
)

func main() {
	payloads := []int{8, 64, 256}
	fmt.Printf("%-18s", "NI")
	for _, p := range payloads {
		fmt.Printf(" %7dB", p)
	}
	fmt.Println("   (round trip, us)")

	for _, ni := range nisim.PaperNIs() {
		fmt.Printf("%-18s", ni)
		for _, payload := range payloads {
			rtt, err := roundTrip(ni, payload)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.2f", rtt)
		}
		fmt.Println()
	}
}

// roundTrip measures the mean ping-pong round trip with a hand-written
// program: node 0 sends pings, node 1's handler replies, and simulated time
// is read with NowMicros.
func roundTrip(ni nisim.NIKind, payload int) (float64, error) {
	const warmup, rounds = 100, 40
	pongs := 0
	var mean float64
	_, err := nisim.Run(nisim.Config{Nodes: 2, NI: ni}, func(n *nisim.Node) {
		n.Register(hPing, func(n *nisim.Node, m nisim.Message) {
			n.Send(m.Src, hPong, m.Len, 0)
		})
		n.Register(hPong, func(n *nisim.Node, m nisim.Message) { pongs++ })
		if n.ID() != 0 {
			n.Barrier()
			return
		}
		var total float64
		for i := 0; i < warmup+rounds; i++ {
			want := pongs + 1
			start := n.NowMicros()
			n.Send(1, hPing, payload, 0)
			n.WaitUntil(func() bool { return pongs >= want })
			if i >= warmup {
				total += n.NowMicros() - start
			}
		}
		mean = total / rounds
		n.Barrier()
	})
	return mean, err
}
