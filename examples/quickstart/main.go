// Quickstart: run one macrobenchmark on one NI and print the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nisim"
)

func main() {
	res, err := nisim.RunApp(nisim.Config{
		Nodes:       16,
		NI:          nisim.CNI32Qm,
		FlowBuffers: 8,
	}, "em3d")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("em3d on CNI_32Qm: %.1f us simulated execution time\n", res.ExecMicros)
	fmt.Printf("  compute %.1f%%  transfer %.1f%%  buffering %.1f%%\n",
		100*res.Breakdown.Compute, 100*res.Breakdown.Transfer, 100*res.Breakdown.Buffering)
	fmt.Printf("  %d messages (%d network fragments), %d bounced\n",
		res.Counters.MessagesSent, res.Counters.FragmentsSent, res.Counters.Bounces)
	fmt.Printf("  dominant message sizes: %v bytes\n", res.TopMessageSizes(3))
}
