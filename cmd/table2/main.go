// Command table2 prints the paper's Table 2: the classification of the
// seven NIs by their data transfer and buffering parameters, as encoded in
// the NI catalog. The rows are catalog lookups, not simulations, but they
// still go through the orchestrator so -json emits the same
// machine-readable report every driver produces.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/nic"
	"nisim/internal/report"
	"nisim/internal/sweep"
)

func main() {
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	var jobs []sweep.Job
	for _, e := range nic.Catalog() {
		e := e
		jobs = append(jobs, sweep.Job{
			ID:     "table2/" + e.Notation,
			Config: map[string]string{"experiment": "table2", "ni": e.Notation},
			Run: func() sweep.Outcome {
				inv := "No"
				if e.ProcInvolve {
					inv = "Yes"
				}
				return sweep.Outcome{Info: map[string]string{
					"description": e.Description,
					"send_size":   e.SendSize, "send_mgr": e.SendManager, "send_source": e.SendSource,
					"recv_size": e.RecvSize, "recv_mgr": e.RecvManager, "recv_dest": e.RecvDest,
					"buf_location": e.BufLocation, "proc_involved": inv,
				}}
			},
		})
	}
	results, rep := opts.Sweep("table2", 0, jobs)

	t := report.NewTable("NI", "Description",
		"Send size", "Send mgr", "Send source",
		"Recv size", "Recv mgr", "Recv dest",
		"Buf location", "Proc involved?")
	for _, r := range results {
		t.Row(r.Config["ni"], r.Info["description"],
			r.Info["send_size"], r.Info["send_mgr"], r.Info["send_source"],
			r.Info["recv_size"], r.Info["recv_mgr"], r.Info["recv_dest"],
			r.Info["buf_location"], r.Info["proc_involved"])
	}
	fmt.Println("Table 2: classification of the seven memory bus NIs")
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
}
