// Command table2 prints the paper's Table 2: the classification of the
// seven NIs by their data transfer and buffering parameters, as encoded in
// the NI catalog.
package main

import (
	"fmt"
	"os"

	"nisim/internal/nic"
	"nisim/internal/report"
)

func main() {
	t := report.NewTable("NI", "Description",
		"Send size", "Send mgr", "Send source",
		"Recv size", "Recv mgr", "Recv dest",
		"Buf location", "Proc involved?")
	for _, e := range nic.Catalog() {
		inv := "No"
		if e.ProcInvolve {
			inv = "Yes"
		}
		t.Row(e.Notation, e.Description,
			e.SendSize, e.SendManager, e.SendSource,
			e.RecvSize, e.RecvManager, e.RecvDest,
			e.BufLocation, inv)
	}
	fmt.Println("Table 2: classification of the seven memory bus NIs")
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
}
