// Command table4 regenerates the paper's Table 4: for each macrobenchmark,
// the measured message-size distribution of a standard 16-node run.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/machine"
	"nisim/internal/nic"
	"nisim/internal/report"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	flag.Parse()

	fmt.Println("Table 4: measured message-size distributions (16 nodes)")
	t := report.NewTable("benchmark", "messages", "avg size", "peaks (size:share)")
	for _, app := range workload.Apps() {
		cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
		st := workload.Run(cfg, app, workload.Params{Iters: *scale})
		sizes := st.Total().Sizes()
		t.Row(string(app),
			fmt.Sprintf("%d", sizes.Total()),
			fmt.Sprintf("%.0fB", sizes.Mean()),
			sizes.String())
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
}
