// Command table4 regenerates the paper's Table 4: for each macrobenchmark,
// the measured message-size distribution of a standard 16-node run. The
// per-application runs are independent simulations and fan out across
// CPUs; see -jobs, -timeout, and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/report"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	results, rep := opts.Sweep("table4", 0, macro.Table4Jobs(workload.Params{Iters: *scale}))
	fmt.Println("Table 4: measured message-size distributions (16 nodes)")
	t := report.NewTable("benchmark", "messages", "avg size", "peaks (size:share)")
	for _, r := range results {
		t.Row(r.Config["app"],
			fmt.Sprintf("%.0f", r.Metrics["hist_msgs"]),
			fmt.Sprintf("%.0fB", r.Metrics["hist_mean_bytes"]),
			r.Info["peaks"])
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "table4:", err)
		os.Exit(1)
	}
}
