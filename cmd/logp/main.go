// Command logp measures a LogP-style characterization of every NI — the
// model §6.1 discusses and declines to use, because its latency and
// overhead terms capture different things for different NIs. The table
// makes that visible: processor-managed NIs carry their data transfer in
// the overhead columns (o_s, o_r); NI-managed designs carry it in L. The
// per-NI measurements are independent simulations and fan out across CPUs;
// see -jobs, -timeout, and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/micro"
	"nisim/internal/nic"
	"nisim/internal/report"
	"nisim/internal/sweep"
)

func main() {
	payload := flag.Int("payload", 64, "message payload in bytes")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	results, rep := opts.Sweep("logp", 0, micro.LogPJobs(*payload))
	fmt.Printf("LogP-style characterization, %dB payload (ns per message)\n", *payload)
	t := report.NewTable("NI", "L", "o_send", "o_recv", "g (gap)")
	for i, k := range nic.PaperSeven() {
		m := results[i].Metrics
		t.Row(k.ShortName(),
			fmt.Sprintf("%.0f", m["L_ns"]),
			fmt.Sprintf("%.0f", m["o_send_ns"]),
			fmt.Sprintf("%.0f", m["o_recv_ns"]),
			fmt.Sprintf("%.0f", m["gap_ns"]))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println("\nNote (paper §6.1): for processor-managed NIs the transfer cost sits in")
	fmt.Println("o_send/o_recv; for NI-managed designs it sits in L — the components do")
	fmt.Println("not measure the same thing across NIs, which is why the paper uses")
	fmt.Println("round-trip latency and bandwidth instead.")
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "logp:", err)
		os.Exit(1)
	}
}
