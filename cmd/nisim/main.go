// Command nisim runs a single simulation: pick an NI design, an
// application (or microbenchmark), and a flow-control buffer count, and get
// the execution time, processor-time breakdown, and NI event counts. The
// run goes through the sweep orchestrator so -timeout can bound it; -json
// here emits the single-run result, not a sweep report.
//
//	nisim -ni cni32qm -app em3d -bufs 8
//	nisim -ni ap3000 -rtt 64
//	nisim -ni ap3000 -bw 4096
//	nisim -list
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"nisim"
	"nisim/internal/profiling"
	"nisim/internal/sweep"
)

func main() {
	var (
		ni      = flag.String("ni", "cni32qm", "NI design (see -list)")
		app     = flag.String("app", "em3d", "macrobenchmark to run (see -list)")
		bufs    = flag.Int("bufs", 8, "flow-control buffers per direction (-1 = infinite)")
		nodes   = flag.Int("nodes", 16, "machine size")
		scale   = flag.Float64("scale", 1, "iteration scale factor")
		rtt     = flag.Int("rtt", 0, "instead: round-trip microbenchmark with this payload (bytes)")
		bw      = flag.Int("bw", 0, "instead: bandwidth microbenchmark with this payload (bytes)")
		list    = flag.Bool("list", false, "list NIs and applications")
		tracef  = flag.String("trace", "", "write a bus-transaction trace to this file")
		asJSON  = flag.Bool("json", false, "emit the result as JSON")
		timeout = flag.Duration("timeout", 0, "abort the run after this much wall time (0 = no limit)")
	)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	die(err)
	defer stopProf()

	if *list {
		fmt.Println("NI designs: ")
		for _, k := range nisim.NIKinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("applications:")
		for _, a := range nisim.Apps() {
			fmt.Printf("  %s\n", a)
		}
		return
	}

	kind := nisim.NIKind(*ni)
	switch {
	case *rtt > 0:
		var us float64
		var err error
		timed(*timeout, fmt.Sprintf("nisim/rtt/%s/%dB", kind, *rtt), func() {
			us, err = nisim.RoundTripMicros(kind, *bufs, *rtt)
		})
		die(err)
		fmt.Printf("%s: %dB payload round trip = %.2f us\n", kind, *rtt, us)
	case *bw > 0:
		var mb float64
		var err error
		timed(*timeout, fmt.Sprintf("nisim/bw/%s/%dB", kind, *bw), func() {
			mb, err = nisim.BandwidthMBps(kind, *bufs, *bw)
		})
		die(err)
		fmt.Printf("%s: %dB payload bandwidth = %.0f MB/s\n", kind, *bw, mb)
	default:
		cfg := nisim.Config{NI: kind, FlowBuffers: *bufs, Nodes: *nodes}
		if *tracef != "" {
			f, err := os.Create(*tracef)
			die(err)
			defer f.Close()
			cfg.TraceTo = f
		}
		var res nisim.Result
		var err error
		timed(*timeout, fmt.Sprintf("nisim/%s/%s", kind, *app), func() {
			res, err = nisim.RunAppScaled(cfg, *app, *scale)
		})
		die(err)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			die(enc.Encode(res))
			return
		}
		fmt.Printf("%s on %s (%d nodes, %d buffers): %.1f us\n", *app, kind, *nodes, *bufs, res.ExecMicros)
		fmt.Printf("  compute %.1f%%  transfer %.1f%%  buffering %.1f%%\n",
			100*res.Breakdown.Compute, 100*res.Breakdown.Transfer, 100*res.Breakdown.Buffering)
		fmt.Printf("  messages %d  fragments %d  bounces %d  retries %d\n",
			res.Counters.MessagesSent, res.Counters.FragmentsSent, res.Counters.Bounces, res.Counters.Retries)
		fmt.Printf("  bus transactions %d (cache-to-cache %d, memory-to-cache %d, uncached %d)\n",
			res.Counters.BusTransactions, res.Counters.CacheToCache, res.Counters.MemToCache, res.Counters.UncachedAccesses)
		if res.Counters.NICacheHits+res.Counters.NICacheMisses > 0 {
			fmt.Printf("  NI cache: %d hits, %d misses, %d bypasses, %d prefetches\n",
				res.Counters.NICacheHits, res.Counters.NICacheMisses, res.Counters.NIBypasses, res.Counters.Prefetches)
		}
	}
}

// timed runs fn as a one-job sweep so the orchestrator's per-run timeout
// and panic containment apply to single runs too.
func timed(timeout time.Duration, id string, fn func()) {
	r := sweep.Run(sweep.Config{Jobs: 1, Timeout: timeout},
		[]sweep.Job{{ID: id, Run: func() sweep.Outcome { fn(); return sweep.Outcome{} }}})[0]
	if r.TimedOut {
		die(fmt.Errorf("%s: run exceeded -timeout %s", id, timeout))
	}
	if r.Err != "" {
		die(errors.New(r.Err))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nisim:", err)
		os.Exit(1)
	}
}
