// Command ablate runs the design-choice ablation studies: it flips one
// mechanism of a winning NI design at a time (send prefetch, receive-cache
// bypass, dead-message suppression), sweeps the CNI cache size and the UDMA
// fallback threshold, and moves the fifo NIs behind an I/O-bus bridge to
// reproduce the paper's motivation for memory-bus attachment. The studies
// are independent simulations and fan out across CPUs; see -jobs,
// -timeout, and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/report"
	"nisim/internal/sim"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.5, "iteration scale factor for app-based ablations")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()
	p := workload.Params{Iters: *scale}

	blocks := []int{4, 8, 16, 32, 64, 128}
	thresholds := []int{0, 32, 96, 248}
	bridges := []sim.Time{0, 250 * sim.Nanosecond, 1000 * sim.Nanosecond}

	mech := macro.AblateMechanismJobs(p)
	cache := macro.CacheSizeJobs(blocks, p)
	udma := macro.UdmaThresholdJobs(thresholds, p)
	iobus := macro.IOBusJobs(bridges)
	var jobs []sweep.Job
	jobs = append(jobs, mech...)
	jobs = append(jobs, cache...)
	jobs = append(jobs, udma...)
	jobs = append(jobs, iobus...)
	results, rep := opts.Sweep("ablate", 0, jobs)
	section := func(n int) []sweep.Result {
		out := results[:n]
		results = results[n:]
		return out
	}

	fmt.Println("Ablation 1: mechanism on/off")
	t := report.NewTable("mechanism", "metric", "enabled", "disabled", "cost of disabling")
	for _, a := range macro.AblationRows(section(len(mech))) {
		t.Row(a.Name, a.Metric,
			fmt.Sprintf("%.2f", a.Enabled),
			fmt.Sprintf("%.2f", a.Disabled),
			fmt.Sprintf("%+.1f%%", 100*a.Delta()))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAblation 2: CNI_32Qm NI cache capacity")
	t2 := report.NewTable("blocks", "64B rtt (us)", "4096B bw (MB/s)", "em3d exec (us)")
	for _, pt := range macro.CacheSizePoints(blocks, section(len(cache))) {
		t2.Row(fmt.Sprintf("%d", pt.Blocks),
			fmt.Sprintf("%.2f", pt.RttUS),
			fmt.Sprintf("%.0f", pt.BwMBps),
			fmt.Sprintf("%.0f", pt.Em3dUS))
	}
	if _, err := t2.WriteTo(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAblation 3: UDMA fallback threshold (dsmc execution time)")
	t3 := report.NewTable("threshold (B)", "dsmc exec (us)")
	for _, pt := range macro.ThresholdPoints(thresholds, section(len(udma))) {
		t3.Row(fmt.Sprintf("%d", pt.Bytes), fmt.Sprintf("%.0f", pt.DsmcUS))
	}
	if _, err := t3.WriteTo(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAblation 4: NI placement — I/O-bus bridge latency")
	t4 := report.NewTable("NI", "bridge", "64B rtt (us)", "256B bw (MB/s)")
	for _, pt := range macro.IOBusPoints(bridges, section(len(iobus))) {
		t4.Row(pt.Kind.ShortName(), pt.Bridge.String(),
			fmt.Sprintf("%.2f", pt.RttUS), fmt.Sprintf("%.0f", pt.BwMBps))
	}
	if _, err := t4.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}
