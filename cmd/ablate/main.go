// Command ablate runs the design-choice ablation studies: it flips one
// mechanism of a winning NI design at a time (send prefetch, receive-cache
// bypass, dead-message suppression), sweeps the CNI cache size and the UDMA
// fallback threshold, and moves the fifo NIs behind an I/O-bus bridge to
// reproduce the paper's motivation for memory-bus attachment.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/report"
	"nisim/internal/sim"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.5, "iteration scale factor for app-based ablations")
	flag.Parse()
	p := workload.Params{Iters: *scale}

	fmt.Println("Ablation 1: mechanism on/off")
	t := report.NewTable("mechanism", "metric", "enabled", "disabled", "cost of disabling")
	rows := macro.AblatePrefetch()
	rows = append(rows, macro.AblateBypass(p)...)
	rows = append(rows, macro.AblateDeadSuppress(p)...)
	for _, a := range rows {
		t.Row(a.Name, a.Metric,
			fmt.Sprintf("%.2f", a.Enabled),
			fmt.Sprintf("%.2f", a.Disabled),
			fmt.Sprintf("%+.1f%%", 100*a.Delta()))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAblation 2: CNI_32Qm NI cache capacity")
	t2 := report.NewTable("blocks", "64B rtt (us)", "4096B bw (MB/s)", "em3d exec (us)")
	for _, pt := range macro.AblateCacheSize([]int{4, 8, 16, 32, 64, 128}, p) {
		t2.Row(fmt.Sprintf("%d", pt.Blocks),
			fmt.Sprintf("%.2f", pt.RttUS),
			fmt.Sprintf("%.0f", pt.BwMBps),
			fmt.Sprintf("%.0f", pt.Em3dUS))
	}
	if _, err := t2.WriteTo(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAblation 3: UDMA fallback threshold (dsmc execution time)")
	t3 := report.NewTable("threshold (B)", "dsmc exec (us)")
	for _, pt := range macro.AblateUdmaThreshold([]int{0, 32, 96, 248}, p) {
		t3.Row(fmt.Sprintf("%d", pt.Bytes), fmt.Sprintf("%.0f", pt.DsmcUS))
	}
	if _, err := t3.WriteTo(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAblation 4: NI placement — I/O-bus bridge latency")
	t4 := report.NewTable("NI", "bridge", "64B rtt (us)", "256B bw (MB/s)")
	for _, pt := range macro.AblateIOBus([]sim.Time{0, 250 * sim.Nanosecond, 1000 * sim.Nanosecond}) {
		t4.Row(pt.Kind.ShortName(), pt.Bridge.String(),
			fmt.Sprintf("%.2f", pt.RttUS), fmt.Sprintf("%.0f", pt.BwMBps))
	}
	if _, err := t4.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
}
