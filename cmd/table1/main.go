// Command table1 prints the paper's Table 1: the (small) amount of
// buffering commercial network switches provide — the reason NIs cannot
// lean on the network for buffering. The rows are catalog lookups, not
// simulations, but they still go through the orchestrator so -json emits
// the same machine-readable report every driver produces.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/netsim"
	"nisim/internal/report"
	"nisim/internal/sweep"
)

func main() {
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	var jobs []sweep.Job
	for _, row := range netsim.SwitchBufferTable() {
		row := row
		jobs = append(jobs, sweep.Job{
			ID:     "table1/" + row.Name,
			Config: map[string]string{"experiment": "table1", "switch": row.Name},
			Run: func() sweep.Outcome {
				return sweep.Outcome{Info: map[string]string{"buffering": row.Buffering}}
			},
		})
	}
	results, rep := opts.Sweep("table1", 0, jobs)

	fmt.Println("Table 1: buffering between an input and output port in commercial switches")
	t := report.NewTable("switch/router", "maximum buffering")
	for _, r := range results {
		t.Row(r.Config["switch"], r.Info["buffering"])
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}
