// Command table1 prints the paper's Table 1: the (small) amount of
// buffering commercial network switches provide — the reason NIs cannot
// lean on the network for buffering.
package main

import (
	"fmt"
	"os"

	"nisim/internal/netsim"
	"nisim/internal/report"
)

func main() {
	fmt.Println("Table 1: buffering between an input and output port in commercial switches")
	t := report.NewTable("switch/router", "maximum buffering")
	for _, row := range netsim.SwitchBufferTable() {
		t.Row(row.Name, row.Buffering)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
}
