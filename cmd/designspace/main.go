// Command designspace sweeps the full NI design space: every valid point
// of the transfer-engine × buffering-policy cross product — the nine named
// designs plus the ~30 compositions the paper never built (e.g. a UDMA
// send engine over a coherent memory-homed receive ring) — through the
// Table 5 round-trip and bandwidth microbenchmarks. The grid's cells are
// independent simulations and fan out across CPUs; see -jobs, -timeout,
// and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/designspace"
	"nisim/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "fewer iterations")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	grid := designspace.StandardGrid(*quick)
	results, rep := opts.Sweep("designspace", 0, grid.Jobs())
	fmt.Print(designspace.Format(grid.Rows(results)))
	fmt.Print(designspace.FormatCrossover(grid, grid.CrossoverRows(results)))
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}
}
