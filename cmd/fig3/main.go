// Command fig3 regenerates the paper's Figure 3: (a) the three fifo-based
// NIs at flow-control buffer levels 1/2/8/infinity and (b) the four
// coherent NIs at 8 buffers, all normalized to the AP3000-like NI with 8
// buffers. The grid's cells are independent simulations and fan out across
// CPUs; see -jobs, -timeout, and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()
	p := workload.Params{Iters: *scale}

	ga, gb := macro.Fig3aGrid(p), macro.Fig3bGrid(p)
	jobsA := ga.Jobs()
	results, rep := opts.Sweep("fig3", 0, append(jobsA, gb.Jobs()...))

	fmt.Println("Figure 3a: fifo NIs, execution time normalized to AP3000-like @ 8 buffers")
	printGrid(ga.Cells(results[:len(jobsA)]))

	fmt.Println()
	fmt.Println("Figure 3b: coherent NIs @ 8 buffers, normalized to AP3000-like @ 8 buffers")
	printGrid(gb.Cells(results[len(jobsA):]))
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
}

func printGrid(cells []macro.Cell) {
	// group rows by (kind, bufs), columns by app
	type key struct {
		kind string
		bufs int
	}
	rows := map[key]map[workload.App]float64{}
	var order []key
	for _, c := range cells {
		k := key{c.Kind.ShortName(), c.Bufs}
		if rows[k] == nil {
			rows[k] = map[workload.App]float64{}
			order = append(order, k)
		}
		rows[k][c.App] = c.Normalized
	}
	fmt.Printf("%-18s %5s", "NI", "bufs")
	for _, a := range workload.Apps() {
		fmt.Printf(" %12s", a)
	}
	fmt.Println()
	for _, k := range order {
		fmt.Printf("%-18s %5s", k.kind, macro.BufName(k.bufs))
		for _, a := range workload.Apps() {
			fmt.Printf(" %12.2f", rows[k][a])
		}
		fmt.Println()
	}
}
