// Command fig3 regenerates the paper's Figure 3: (a) the three fifo-based
// NIs at flow-control buffer levels 1/2/8/infinity and (b) the four
// coherent NIs at 8 buffers, all normalized to the AP3000-like NI with 8
// buffers.
package main

import (
	"flag"
	"fmt"

	"nisim/internal/macro"
	"nisim/internal/netsim"
	"nisim/internal/workload"
)

func bufName(b int) string {
	if b >= netsim.Infinite {
		return "inf"
	}
	return fmt.Sprintf("%d", b)
}

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	flag.Parse()
	p := workload.Params{Iters: *scale}

	fmt.Println("Figure 3a: fifo NIs, execution time normalized to AP3000-like @ 8 buffers")
	cells := macro.Figure3a(p)
	printGrid(cells)

	fmt.Println()
	fmt.Println("Figure 3b: coherent NIs @ 8 buffers, normalized to AP3000-like @ 8 buffers")
	printGrid(macro.Figure3b(p))
}

func printGrid(cells []macro.Cell) {
	// group rows by (kind, bufs), columns by app
	type key struct {
		kind string
		bufs int
	}
	rows := map[key]map[workload.App]float64{}
	var order []key
	for _, c := range cells {
		k := key{c.Kind.ShortName(), c.Bufs}
		if rows[k] == nil {
			rows[k] = map[workload.App]float64{}
			order = append(order, k)
		}
		rows[k][c.App] = c.Normalized
	}
	fmt.Printf("%-18s %5s", "NI", "bufs")
	for _, a := range workload.Apps() {
		fmt.Printf(" %12s", a)
	}
	fmt.Println()
	for _, k := range order {
		fmt.Printf("%-18s %5s", k.kind, bufName(k.bufs))
		for _, a := range workload.Apps() {
			fmt.Printf(" %12.2f", rows[k][a])
		}
		fmt.Println()
	}
}
