// Command scale studies machine-size scaling: the return-to-sender flow
// control allocates buffers independently of the node count (§5.1.2's
// scalability argument), so per-node execution time should stay roughly
// flat as the machine grows. Runs one application across machine sizes for
// a fifo NI and a coherent NI.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/machine"
	"nisim/internal/nic"
	"nisim/internal/report"
	"nisim/internal/workload"
)

func main() {
	app := flag.String("app", "dsmc", "application")
	scale := flag.Float64("scale", 0.5, "iteration scale")
	flag.Parse()
	a, err := workload.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("machine-size scaling, %s, flow control buffers = 8\n", *app)
	t := report.NewTable("nodes", "cm5 exec (us)", "cni32qm exec (us)")
	for _, nodes := range []int{4, 8, 16, 32} {
		row := []string{fmt.Sprintf("%d", nodes)}
		for _, kind := range []nic.Kind{nic.CM5, nic.CNI32Qm} {
			cfg := machine.DefaultConfig(kind, 8)
			cfg.Nodes = nodes
			st := workload.Run(cfg, a, workload.Params{Iters: *scale})
			row = append(row, fmt.Sprintf("%.0f", st.ExecTime.Microseconds()))
		}
		t.Row(row...)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
}
