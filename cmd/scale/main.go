// Command scale studies machine-size scaling: the return-to-sender flow
// control allocates buffers independently of the node count (§5.1.2's
// scalability argument), so per-node execution time should stay roughly
// flat as the machine grows. The default mode runs one application across
// small machine sizes for a fifo NI and a coherent NI. With -big it runs
// the large-machine story instead: the Figure 1 transfer/buffering pairs
// for appbt, barnes, and dsmc at 64/256/1024 nodes plus the open-loop
// overload workload (including the send-throttled coherent spec) at the
// same sizes, each cell partitioned across -shards conservative engine
// shards (see DESIGN.md §10 and EXPERIMENTS.md, "Scaling past 16 nodes").
// The grid's cells are independent simulations and fan out across CPUs
// (see -jobs, -timeout, and -json); -baseline reruns the grid serially,
// gates byte-identity, and records the measured shard speedup.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nisim/internal/chaos"
	"nisim/internal/macro"
	"nisim/internal/report"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	app := flag.String("app", "dsmc", "application (default mode)")
	scale := flag.Float64("scale", 0.5, "iteration scale")
	shards := flag.Int("shards", 1, "engine shards per simulation (1 = serial engine)")
	big := flag.Bool("big", false, "run the large-machine grid (Figure 1 pairs + open-loop overload at -sizes) instead of the small-size table")
	baseline := flag.Bool("baseline", false,
		"with -big: also run the grid on the serial engine (shards=1), verify canonical-JSON identity, and record the shard speedup")
	sizesFlag := flag.String("sizes", "64,256,1024", "comma-separated machine sizes for -big")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	if *big {
		sizes, err := parseSizes(*sizesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scale:", err)
			os.Exit(1)
		}
		runBig(opts, sizes, *shards, *scale, *baseline)
		return
	}

	a, err := workload.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sizes := []int{4, 8, 16, 32}
	results, rep := opts.Sweep("scale", 0, macro.ScaleJobs(a, sizes, *shards, workload.Params{Iters: *scale}))
	fmt.Printf("machine-size scaling, %s, flow control buffers = 8\n", *app)
	t := report.NewTable("nodes", "cm5 exec (us)", "cni32qm exec (us)")
	i := 0
	for _, nodes := range sizes {
		row := []string{fmt.Sprintf("%d", nodes)}
		for range 2 { // the two NI kinds, in ScaleJobs order
			row = append(row, fmt.Sprintf("%.0f", results[i].Metrics["exec_us"]))
			i++
		}
		t.Row(row...)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
}

// parseSizes parses the -sizes list.
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// runBig runs the large-machine grid: Figure 1 pairs (appbt, barnes, and
// the message-counting dsmc; CM-5 NI with 1 vs infinite flow-control
// buffers) and the open-loop overload cells — including the send-throttled
// coherent spec — at each size. The chaos job IDs repeat per size, so each
// gets a nodes= suffix here. With baseline, the same grid runs again on
// the serial engine: the two canonical reports must match byte for byte
// (sharding is an execution strategy, not an experiment parameter), and
// the serial timing plus the measured shard speedup land in the report's
// timing sidecar so scale_results.json shows real multicore scaling.
func runBig(opts sweep.Options, sizes []int, shards int, scale float64, baseline bool) {
	buildJobs := func(sh int) []sweep.Job {
		jobs := macro.ScaleFigure1Jobs(sizes, sh, workload.Params{Iters: scale})
		for _, nodes := range sizes {
			for _, j := range chaos.ScaleGrid(nodes, sh, 20).Jobs() {
				j.ID = fmt.Sprintf("%s/nodes=%d", j.ID, nodes)
				jobs = append(jobs, j)
			}
			// The rendezvous cells: RTS/CTS and one-sided put frames
			// crossing shard boundaries must stay byte-identical too.
			for _, j := range chaos.ScaleProtocolGrid(nodes, sh, 20).Jobs() {
				j.ID = fmt.Sprintf("%s/nodes=%d", j.ID, nodes)
				jobs = append(jobs, j)
			}
		}
		return jobs
	}
	jobs := buildJobs(shards)
	fig1Cells := len(macro.ScaleFigure1Jobs(sizes, shards, workload.Params{Iters: scale}))

	results, rep := opts.Sweep("scalebig", 0, jobs)
	if baseline {
		_, serialRep := opts.Sweep("scalebig", 0, buildJobs(1))
		shd, err1 := rep.Canonical().MarshalIndentJSON()
		ser, err2 := serialRep.Canonical().MarshalIndentJSON()
		if err1 != nil || err2 != nil || !bytes.Equal(shd, ser) {
			fmt.Fprintln(os.Stderr, "scale: sharded and serial canonical reports differ — determinism violation")
			os.Exit(1)
		}
		rep.Baseline = serialRep.Timing
		if rep.Timing.WallMS > 0 {
			rep.Timing.Speedup = serialRep.Timing.WallMS / rep.Timing.WallMS
		}
		// stderr, not stdout: scale-smoke cmp's serial and sharded stdout.
		fmt.Fprintf(os.Stderr, "scale: shards=%d %.0f ms vs serial %.0f ms, %.2fx on %d cpus\n",
			shards, rep.Timing.WallMS, rep.Baseline.WallMS, rep.Timing.Speedup, rep.Timing.NumCPU)
	}
	// The header must not mention the shard count: scale-smoke cmp's the
	// serial and sharded runs byte-for-byte, and sharding is an execution
	// strategy, not an experiment parameter.
	fmt.Println("large-machine scaling")
	t := report.NewTable("nodes", "app", "cm5/1 exec (us)", "cm5/inf exec (us)", "buffering share")
	for i := 0; i+1 < fig1Cells; i += 2 {
		one, inf := results[i], results[i+1]
		t1 := one.Metrics["exec_us"]
		share := 0.0
		if t1 > 0 {
			if share = (t1 - inf.Metrics["exec_us"]) / t1; share < 0 {
				share = 0
			}
		}
		t.Row(one.Config["nodes"], one.Config["app"],
			fmt.Sprintf("%.0f", t1), fmt.Sprintf("%.0f", inf.Metrics["exec_us"]),
			fmt.Sprintf("%.2f", share))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	ot := report.NewTable("nodes", "spec", "goodput (mb/s)", "p99 (us)", "completed")
	for _, r := range results[fig1Cells:] {
		spec := r.Config["spec"]
		if r.Config["protocol"] == "rendezvous" {
			spec += "+rdv"
		}
		if r.Err != "" {
			ot.Row(r.Config["nodes"], spec, "err", "err", "err")
			continue
		}
		ot.Row(r.Config["nodes"], spec,
			fmt.Sprintf("%.1f", r.Metrics["goodput_mbps"]),
			fmt.Sprintf("%.1f", r.Metrics["p99_us"]),
			fmt.Sprintf("%.0f", r.Metrics["completed"]))
	}
	if _, err := ot.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
}
