// Command scale studies machine-size scaling: the return-to-sender flow
// control allocates buffers independently of the node count (§5.1.2's
// scalability argument), so per-node execution time should stay roughly
// flat as the machine grows. Runs one application across machine sizes for
// a fifo NI and a coherent NI; the grid's cells are independent
// simulations and fan out across CPUs (see -jobs, -timeout, and -json).
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/report"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	app := flag.String("app", "dsmc", "application")
	scale := flag.Float64("scale", 0.5, "iteration scale")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()
	a, err := workload.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sizes := []int{4, 8, 16, 32}
	results, rep := opts.Sweep("scale", 0, macro.ScaleJobs(a, sizes, workload.Params{Iters: *scale}))
	fmt.Printf("machine-size scaling, %s, flow control buffers = 8\n", *app)
	t := report.NewTable("nodes", "cm5 exec (us)", "cni32qm exec (us)")
	i := 0
	for _, nodes := range sizes {
		row := []string{fmt.Sprintf("%d", nodes)}
		for range 2 { // the two NI kinds, in ScaleJobs order
			row = append(row, fmt.Sprintf("%.0f", results[i].Metrics["exec_us"]))
			i++
		}
		t.Row(row...)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
}
