// Command table5 regenerates the paper's Table 5: process-to-process
// round-trip latency and bandwidth for the seven NIs (plus the throttled
// CNI_32Q_m), flow-control buffers = 8. The grid's cells are independent
// simulations and fan out across CPUs; see -jobs, -timeout, and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/micro"
	"nisim/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "fewer iterations")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	spec := micro.StandardSpec(*quick)
	results, rep := opts.Sweep("table5", 0, spec.Jobs())
	fmt.Print(micro.FormatTable5(spec.Rows(results)))
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "table5:", err)
		os.Exit(1)
	}
}
