// Command table5 regenerates the paper's Table 5: process-to-process
// round-trip latency and bandwidth for the seven NIs (plus the throttled
// CNI_32Q_m), flow-control buffers = 8.
package main

import (
	"flag"
	"fmt"

	"nisim/internal/micro"
)

func main() {
	quick := flag.Bool("quick", false, "fewer iterations")
	flag.Parse()

	rows := micro.Table5(*quick)
	fmt.Println("Table 5: round-trip latency (us) and bandwidth (MB/s), flow control buffers = 8")
	fmt.Printf("%-28s %7s %7s %7s | %5s %5s %5s %5s\n", "NI", "8B", "64B", "256B", "8B", "64B", "256B", "4096B")
	for _, r := range rows {
		lat := func(p int) string {
			if v, ok := r.LatencyUS[p]; ok && v > 0 {
				return fmt.Sprintf("%7.2f", v)
			}
			return fmt.Sprintf("%7s", "n/a")
		}
		fmt.Printf("%-28s %s %s %s | %5.0f %5.0f %5.0f %5.0f\n",
			r.Kind, lat(8), lat(64), lat(256),
			r.BandwidthMB[8], r.BandwidthMB[64], r.BandwidthMB[256], r.BandwidthMB[4096])
	}
}
