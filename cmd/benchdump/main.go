// Command benchdump runs the whole evaluation grid — every cell the cmd
// drivers and the Go benchmarks draw from the shared grid definitions —
// through the sweep orchestrator and writes one machine-readable report
// (BENCH_results.json by default; see EXPERIMENTS.md for the schema and
// the mapping back to the paper's tables and figures).
//
// With -baseline it runs the grid a second time serially (jobs=1), checks
// that the two reports' canonical (timing-stripped) JSON is byte-identical
// — the determinism invariant — and records the parallel speedup in the
// timing sidecar.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/micro"
	"nisim/internal/profiling"
	"nisim/internal/sim"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// grid assembles the full evaluation sweep from the shared definitions.
func grid(quick bool) []sweep.Job {
	p := workload.Params{Iters: 1}
	if quick {
		p.Iters = 0.2
	}
	var jobs []sweep.Job
	jobs = append(jobs, micro.StandardSpec(quick).Jobs()...)
	jobs = append(jobs, micro.LogPJobs(64)...)
	jobs = append(jobs, macro.Figure1Jobs(p)...)
	jobs = append(jobs, macro.Fig3aGrid(p).Jobs()...)
	jobs = append(jobs, macro.Fig3bGrid(p).Jobs()...)
	jobs = append(jobs, macro.Fig4Grid(p).Jobs()...)
	jobs = append(jobs, macro.Table4Jobs(p)...)
	jobs = append(jobs, macro.ScaleJobs(workload.Dsmc, []int{4, 8, 16, 32}, 1, p)...)
	// The large-machine scaling curve (EXPERIMENTS.md, "Scaling past 16
	// nodes"): Figure 1 pairs at 64 and 256 nodes, partitioned across four
	// engine shards. The shard count only affects wall-clock time — the
	// partition determinism regression pins the metrics byte-identical.
	jobs = append(jobs, macro.ScaleFigure1Jobs([]int{64, 256}, 4, p)...)
	jobs = append(jobs, macro.AblateMechanismJobs(p)...)
	jobs = append(jobs, macro.CacheSizeJobs([]int{4, 8, 16, 32, 64, 128}, p)...)
	jobs = append(jobs, macro.UdmaThresholdJobs([]int{0, 32, 96, 248}, p)...)
	jobs = append(jobs, macro.IOBusJobs([]sim.Time{0, 250 * sim.Nanosecond, 1000 * sim.Nanosecond})...)
	return jobs
}

func main() {
	quick := flag.Bool("quick", true, "reduced iteration counts (the CI configuration)")
	baseline := flag.Bool("baseline", false,
		"also run the grid serially, verify canonical-JSON identity, and record the speedup")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	if opts.JSON == "" {
		opts.JSON = "BENCH_results.json"
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}

	jobs := grid(*quick)
	results, rep := opts.Sweep("benchdump", 0, jobs)
	failed := 0
	for _, r := range results {
		if r.Err != "" || r.TimedOut {
			failed++
			fmt.Fprintf(os.Stderr, "benchdump: %s: timed_out=%v err=%q\n", r.ID, r.TimedOut, r.Err)
		}
	}

	if *baseline {
		serialOpts := opts
		serialOpts.Jobs = 1
		_, serialRep := serialOpts.Sweep("benchdump", 0, jobs)
		par, err1 := rep.Canonical().MarshalIndentJSON()
		ser, err2 := serialRep.Canonical().MarshalIndentJSON()
		if err1 != nil || err2 != nil || !bytes.Equal(par, ser) {
			fmt.Fprintln(os.Stderr, "benchdump: parallel and serial canonical reports differ — determinism violation")
			os.Exit(1)
		}
		rep.Baseline = serialRep.Timing
		if rep.Timing.WallMS > 0 {
			rep.Timing.Speedup = serialRep.Timing.WallMS / rep.Timing.WallMS
		}
	}

	// Flush the profiles here so they cover the sweeps and are written even
	// when a later check exits non-zero.
	stopProf()

	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
	fmt.Printf("benchdump: %d cells, %.0f ms wall (jobs=%d, cpus=%d)",
		len(results), rep.Timing.WallMS, rep.Timing.Jobs, rep.Timing.NumCPU)
	if rep.Timing.Speedup > 0 {
		fmt.Printf(", %.2fx vs serial", rep.Timing.Speedup)
	}
	fmt.Printf(" -> %s\n", opts.JSON)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdump: %d of %d cells failed\n", failed, len(results))
		os.Exit(1)
	}
}
