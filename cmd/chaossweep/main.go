// Command chaossweep drives every named NI design point past saturation
// and measures how it degrades. Each cell of the (spec × offered load ×
// fault mix) grid runs the open-loop request/response workload against a
// server whose NI enforces an admission-control policy, under a lossless,
// lossy, or outage fault condition, and reports goodput, delivered-latency
// quantiles, drop/bounce/eviction counts, and post-outage recovery time.
// Cells are independent simulations and fan out across CPUs; see -jobs,
// -timeout, and -json. A cell that starves or livelocks terminates with a
// watchdog diagnostic (shown in its row) rather than hanging the sweep.
// After the main grid, the protocol sub-grid drives the RDMA design point
// across the same load ladder once per transfer protocol — eager vs
// rendezvous — so the overload value of keeping bulk payloads out of the
// receive queue is measured under the same workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/chaos"
	"nisim/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "fewer requests per cell")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	grid := chaos.StandardGrid(*quick)
	pgrid := chaos.ProtocolGrid(*quick)
	jobs := grid.Jobs()
	split := len(jobs)
	jobs = append(jobs, pgrid.Jobs()...)
	results, rep := opts.Sweep("chaos", grid.Seed, jobs)
	fmt.Print(chaos.Format(grid, grid.Rows(results[:split])))
	fmt.Println()
	fmt.Print(chaos.Format(pgrid, pgrid.Rows(results[split:])))
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "chaossweep:", err)
		os.Exit(1)
	}
}
