// Command fig1 regenerates the paper's Figure 1: the fraction of execution
// time spent on NI data transfer and buffering for the seven
// macrobenchmarks on a CM-5-like NI with one flow-control buffer. The
// per-application runs are independent simulations and fan out across
// CPUs; see -jobs, -timeout, and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	results, rep := opts.Sweep("fig1", 0, macro.Figure1Jobs(workload.Params{Iters: *scale}))
	fmt.Println("Figure 1: share of execution time (CM-5-like NI, flow control buffers = 1)")
	fmt.Printf("%-14s %10s %10s %10s\n", "app", "transfer", "buffering", "rest")
	for _, r := range macro.Figure1Rows(results) {
		fmt.Printf("%-14s %9.1f%% %9.1f%% %9.1f%%\n",
			r.App, 100*r.TransferFraction, 100*r.BufferingFraction,
			100*(1-r.TransferFraction-r.BufferingFraction))
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "fig1:", err)
		os.Exit(1)
	}
}
