// Command fig1 regenerates the paper's Figure 1: the fraction of execution
// time spent on NI data transfer and buffering for the seven
// macrobenchmarks on a CM-5-like NI with one flow-control buffer.
package main

import (
	"flag"
	"fmt"

	"nisim/internal/macro"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	flag.Parse()

	fmt.Println("Figure 1: share of execution time (CM-5-like NI, flow control buffers = 1)")
	fmt.Printf("%-14s %10s %10s %10s\n", "app", "transfer", "buffering", "rest")
	for _, r := range macro.Figure1(workload.Params{Iters: *scale}) {
		fmt.Printf("%-14s %9.1f%% %9.1f%% %9.1f%%\n",
			r.App, 100*r.TransferFraction, 100*r.BufferingFraction,
			100*(1-r.TransferFraction-r.BufferingFraction))
	}
}
