// Command fig4 regenerates the paper's Figure 4: a single-cycle
// (processor-register-mapped) NI_2w at several flow-control buffer levels,
// normalized to CNI_32Qm on the memory bus. The grid's cells are
// independent simulations and fan out across CPUs; see -jobs, -timeout,
// and -json.
package main

import (
	"flag"
	"fmt"
	"os"

	"nisim/internal/macro"
	"nisim/internal/netsim"
	"nisim/internal/report"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "iteration scale factor")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()

	g := macro.Fig4Grid(workload.Params{Iters: *scale})
	results, rep := opts.Sweep("fig4", 0, g.Jobs())
	fmt.Println("Figure 4: single-cycle NI_2w vs CNI_32Qm (execution time, normalized to CNI_32Qm)")
	byApp := map[workload.App]map[int]float64{}
	for _, c := range g.Cells(results) {
		if byApp[c.App] == nil {
			byApp[c.App] = map[int]float64{}
		}
		byApp[c.App][c.Bufs] = c.Normalized
	}
	t := report.NewTable("app", "bufs=1", "bufs=2", "bufs=8", "bufs=inf")
	for _, app := range workload.Apps() {
		r := byApp[app]
		t.Row(string(app),
			fmt.Sprintf("%.2f", r[1]),
			fmt.Sprintf("%.2f", r[2]),
			fmt.Sprintf("%.2f", r[8]),
			fmt.Sprintf("%.2f", r[netsim.Infinite]))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		panic(err)
	}
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
}
