// Simlint is the multichecker for the simulator's determinism and
// unit-safety invariants. It loads every package under the module from
// source (standard library included — no module downloads needed), runs the
// four passes in internal/lint, and exits nonzero when any finding
// survives its //lint:allow directives.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -passes detrand,maporder ./internal/netsim
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nisim/internal/lint"
)

func main() {
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	root, modPath, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	analyzers, err := selectPasses(*passNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	dirs, err := packageDirs(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	world := lint.NewWorld(root, modPath)
	var diags []lint.Diagnostic
	for _, dir := range dirs {
		path := importPath(root, modPath, dir)
		pkg, err := world.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		diags = append(diags, lint.CheckDirectives(pkg, lint.All())...)
		for _, a := range analyzers {
			diags = append(diags, lint.Run(a, pkg)...)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := world.Fset.Position(diags[i].Pos), world.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Pass < diags[j].Pass
	})
	for _, d := range diags {
		pos := world.Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Pass, d.Message)
	}
	if len(diags) > 0 {
		fmt.Printf("simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func moduleRoot() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// selectPasses resolves -passes into analyzers, defaulting to the suite.
func selectPasses(names string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// packageDirs expands the command-line patterns into package directories:
// either explicit directories or "dir/..." walks. Vendor, testdata, hidden,
// and underscore-prefixed directories are skipped, as the go tool does.
func packageDirs(root string, args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if abs, err := filepath.Abs(dir); err == nil && !seen[abs] && hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, arg := range args {
		base, recursive := strings.CutSuffix(arg, "/...")
		if base == "." || base == "" {
			base = root
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPath maps a package directory to its import path under the module.
func importPath(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
