// Simlint is the multichecker for the simulator's determinism and
// unit-safety invariants. It loads every package under the module from
// source (standard library included — no module downloads needed), runs the
// seven passes in internal/lint, and exits nonzero when any finding
// survives its //lint:allow directives.
//
// Findings print as "file:line:col: pass: message" (the format CI's
// problem matcher consumes). A full-suite run over the default ./...
// pattern additionally reports stale //lint:allow directives — ones that
// suppressed nothing — so dead escapes cannot rot in place; pass or
// package subsets skip that check, since a directive for a pass that did
// not run would be stale vacuously.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -passes detrand,maporder ./internal/netsim
//	go run ./cmd/simlint -json simlint_report.json ./...
//
// -json writes the simlint/v1 report: surviving findings plus the complete
// allow-directive inventory (pass, position, reason, used).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nisim/internal/lint"
)

func main() {
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	jsonPath := flag.String("json", "", "write the simlint/v1 findings+allows report to this file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	root, modPath, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	analyzers, err := selectPasses(*passNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	dirs, err := packageDirs(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	// Load every package before running any pass: noalloc's hot set is the
	// transitive closure over all //lint:hotpath roots in the world, so a
	// package analyzed early must still see roots declared in one loaded
	// late.
	world := lint.NewWorld(root, modPath)
	pkgs := make([]*lint.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := world.Load(importPath(root, modPath, dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, pkg)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.CheckDirectives(pkg, lint.All())...)
		for _, a := range analyzers {
			diags = append(diags, lint.Run(a, pkg)...)
		}
	}
	// Stale-directive detection needs every pass to have run over the whole
	// module — only then has an unused directive provably suppressed
	// nothing.
	if *passNames == "" && len(args) == 1 && args[0] == "./..." {
		diags = append(diags, lint.StaleAllows(pkgs, lint.All())...)
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := world.Fset.Position(diags[i].Pos), world.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Pass < diags[j].Pass
	})
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil {
			return filepath.ToSlash(r)
		}
		return name
	}
	for _, d := range diags {
		pos := world.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s: %s\n", rel(pos.Filename), pos.Line, pos.Column, d.Pass, d.Message)
	}
	if *jsonPath != "" {
		report := lint.NewReport(world.Fset, diags, pkgs, rel)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Printf("simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func moduleRoot() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// selectPasses resolves -passes into analyzers, defaulting to the suite.
func selectPasses(names string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// packageDirs expands the command-line patterns into package directories:
// either explicit directories or "dir/..." walks. Vendor, testdata, hidden,
// and underscore-prefixed directories are skipped, as the go tool does.
func packageDirs(root string, args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if abs, err := filepath.Abs(dir); err == nil && !seen[abs] && hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, arg := range args {
		base, recursive := strings.CutSuffix(arg, "/...")
		if base == "." || base == "" {
			base = root
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPath maps a package directory to its import path under the module.
func importPath(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
