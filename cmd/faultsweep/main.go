// Command faultsweep measures reliable-delivery degradation under injected
// network faults — an experiment beyond the paper, whose network (§5.1.2)
// is lossless by construction. For each of the paper's seven NI models and
// a sweep of loss rates it streams a fixed message workload from node 0 to
// node 1 with the reliable-delivery layer enabled and a deterministic
// fault plane injecting drops, corruption, duplication, jitter, forced
// bounces, and ack loss. It reports goodput and mean delivered latency
// against the lossless baseline, plus the reliability counters showing how
// the recovery machinery worked for it. The (NI, loss rate) cells are
// independent simulations and fan out across CPUs; see -jobs, -timeout,
// and -json.
//
// With -unreliable the reliability layer is disabled instead, and the run
// demonstrates the quiescence watchdog: the first lost message strands the
// workload, and the diagnostic names the stuck endpoints.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nisim/internal/faults"
	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/report"
	"nisim/internal/sim"
	"nisim/internal/stats"
	"nisim/internal/sweep"
)

const hData = 1

type point struct {
	rate    float64
	goodput float64  // delivered MB/s
	meanLat sim.Time // mean process-to-process delivered latency
	total   *stats.Node
}

func run(kind nic.Kind, mix faults.Mix, rate float64, seed uint64, payload, count int, reliable bool) point {
	cfg := machine.DefaultConfig(kind, 8)
	cfg.Nodes = 2
	if reliable {
		cfg.Net.Reliability = netsim.DefaultReliability()
	}
	cfg.Faults = mix.Config(rate, seed)
	m := machine.New(cfg)

	received := 0
	var firstSend, lastRecv, latSum sim.Time
	for _, n := range m.Nodes {
		n.EP.Register(hData, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			received++
			latSum += msg.ArriveTime - msg.SendTime
			lastRecv = ep.Proc().P.Now()
		})
	}
	st := m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			firstSend = n.Proc.P.Now()
			for i := 0; i < count; i++ {
				n.EP.Send(1, hData, payload, 0)
			}
			n.Barrier()
			return
		}
		n.EP.WaitUntil(func() bool { return received >= count })
		n.Barrier()
	})

	p := point{rate: rate, total: st.Total()}
	if elapsed := lastRecv - firstSend; elapsed > 0 {
		bytes := float64(payload+netsim.HeaderBytes) * float64(count)
		p.goodput = bytes / (float64(elapsed) / float64(sim.Second)) / 1e6
	}
	if received > 0 {
		p.meanLat = latSum / sim.Time(received)
	}
	return p
}

func parseRates(s string) []float64 {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "faultsweep: bad loss rate %q (want 0..1, comma-separated)\n", f)
			os.Exit(2)
		}
		rates = append(rates, v)
	}
	return rates
}

// sweepJobs returns the (NI, loss rate) grid as sweep jobs, rates inner,
// in the table's row order.
func sweepJobs(mix faults.Mix, rates []float64, seed uint64, payload, count int) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range nic.PaperSeven() {
		for _, rate := range rates {
			kind, rate := kind, rate
			jobs = append(jobs, sweep.Job{
				ID: fmt.Sprintf("faultsweep/%s/loss=%g", kind.ShortName(), rate),
				Config: map[string]string{
					"experiment": "faultsweep", "ni": kind.ShortName(),
					"loss": fmt.Sprint(rate), "payload": fmt.Sprint(payload),
					"msgs": fmt.Sprint(count),
				},
				Run: func() sweep.Outcome {
					p := run(kind, mix, rate, seed, payload, count, true)
					summary := report.ReliabilitySummary(p.total)
					if summary == "" {
						summary = "-"
					}
					return sweep.Outcome{
						Metrics: map[string]float64{
							"goodput_mbps": p.goodput,
							"mean_lat_us":  p.meanLat.Microseconds(),
							"mean_lat_ps":  float64(p.meanLat),
						},
						Info: map[string]string{"recovery": summary},
					}
				},
			})
		}
	}
	return jobs
}

func main() {
	quick := flag.Bool("quick", false, "fewer messages per run")
	rateFlag := flag.String("rates", "0,0.02,0.05,0.10", "comma-separated loss rates to sweep")
	payload := flag.Int("payload", 512, "payload bytes per message (512 = 3 fragments)")
	msgs := flag.Int("msgs", 300, "messages per run")
	seed := flag.Uint64("seed", 1, "fault-injection seed")
	unreliable := flag.Bool("unreliable", false, "disable the reliability layer (demonstrates the quiescence watchdog)")
	// Per-fault-class multipliers: each class's probability is the headline
	// loss rate times its multiplier, so one class can be turned up, down,
	// or off without disturbing the others. The defaults reproduce the
	// historical blend exactly.
	def := faults.DefaultMix()
	mix := def
	flag.Float64Var(&mix.Drop, "drop", def.Drop, "drop-rate multiplier on the headline loss rate")
	flag.Float64Var(&mix.Corrupt, "corrupt", def.Corrupt, "corruption-rate multiplier")
	flag.Float64Var(&mix.Duplicate, "dup", def.Duplicate, "duplication-rate multiplier")
	flag.Float64Var(&mix.CtlDrop, "ackloss", def.CtlDrop, "ack/bounce-loss multiplier")
	flag.Float64Var(&mix.Delay, "jitter", def.Delay, "delay-jitter multiplier")
	flag.Float64Var(&mix.ForceBounce, "bounce", def.ForceBounce, "forced-bounce multiplier")
	jitterNS := flag.Int64("jitter-max-ns", int64(def.MaxDelay/sim.Nanosecond), "jitter magnitude ceiling, ns")
	var opts sweep.Options
	opts.Register(flag.CommandLine)
	flag.Parse()
	mix.MaxDelay = sim.Time(*jitterNS) * sim.Nanosecond

	rates := parseRates(*rateFlag)
	count := *msgs
	if *quick {
		count = 120
	}

	if *unreliable {
		demoWatchdog(mix, rates, *seed, *payload, count)
		return
	}

	results, rep := opts.Sweep("faultsweep", *seed, sweepJobs(mix, rates, *seed, *payload, count))
	fmt.Printf("Fault sweep: %d msgs x %dB node0->node1, reliability on, seed %d\n", count, *payload, *seed)
	fmt.Println("(loss = drop rate; corruption/duplication/ack-loss/jitter scale with it)")
	fmt.Println()
	tbl := report.NewTable("NI", "loss", "MB/s", "vs lossless", "lat(us)", "xlat", "recovery counters")
	idx := 0
	for _, kind := range nic.PaperSeven() {
		var base map[string]float64
		for i, rate := range rates {
			r := results[idx]
			idx++
			if i == 0 {
				base = r.Metrics
			}
			rel := 1.0
			if base["goodput_mbps"] > 0 {
				rel = r.Metrics["goodput_mbps"] / base["goodput_mbps"]
			}
			xlat := 1.0
			if base["mean_lat_ps"] > 0 {
				xlat = r.Metrics["mean_lat_ps"] / base["mean_lat_ps"]
			}
			tbl.Row(kind.ShortName(), fmt.Sprintf("%.0f%%", 100*rate),
				fmt.Sprintf("%.1f", r.Metrics["goodput_mbps"]), report.Bar(rel, 20),
				fmt.Sprintf("%.2f", r.Metrics["mean_lat_us"]),
				fmt.Sprintf("%.2f", xlat), r.Info["recovery"])
		}
	}
	fmt.Print(tbl.String())
	if err := opts.Emit(rep); err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep:", err)
		os.Exit(1)
	}
}

// demoWatchdog runs the first nonzero loss rate with reliability disabled:
// the first dropped message or ack strands the workload, and instead of
// returning a silently truncated result the machine panics with the
// quiescence diagnostic, which we print.
func demoWatchdog(mix faults.Mix, rates []float64, seed uint64, payload, count int) {
	rate := 0.0
	for _, r := range rates {
		if r > 0 {
			rate = r
			break
		}
	}
	if rate == 0 {
		rate = 0.05
	}
	kind := nic.CNI32Qm
	fmt.Printf("Watchdog demo: %s, loss %.0f%%, reliability OFF — expecting a stall diagnostic\n\n",
		kind.ShortName(), 100*rate)
	defer func() {
		if r := recover(); r != nil {
			fmt.Println(r)
		} else {
			fmt.Println("run completed without loss (try a higher rate or different seed)")
		}
	}()
	run(kind, mix, rate, seed, payload, count, false)
}
