// Package mainmem models a node's DRAM main memory: the home for all
// cacheable application addresses and, for NIs that buffer messages in main
// memory (CNI_0Q_m, CNI_32Q_m, the Memory Channel-like NI), the home of the
// NI message queues.
package mainmem

import (
	"nisim/internal/membus"
	"nisim/internal/sim"
)

// Memory is a DRAM (or NI SRAM/DRAM) module: a fixed access latency plus a
// serialization constraint — the module services one access at a time, so
// back-to-back block transfers see queueing delay. This contention is what
// makes "via main memory" NI paths (StarT-JR-like, Memory Channel-like)
// slower under streaming than paths that keep messages in NI storage.
type Memory struct {
	name    string
	latency sim.Time
	// Clock providers call HomeLatency exactly once per transaction that
	// touches the module (the membus contract), so busyUntil can be
	// advanced there.
	busyUntil sim.Time
	eng       *sim.Engine

	// Reads and Writes count accesses that reached the DRAM.
	Reads, Writes int64

	// watchers receive a callback when a block in their registered range is
	// written at the home (used by NIs to observe queue writebacks).
	watchers []watcher
}

type watcher struct {
	lo, hi membus.Addr
	fn     func(t *membus.Transaction)
}

// New returns a memory module with the given access latency (Table 3:
// 120 ns for main memory, 60 ns for NI SRAM). eng provides the current time
// for the serialization model; pass nil to disable serialization.
func New(name string, latency sim.Time, eng *sim.Engine) *Memory {
	return &Memory{name: name, latency: latency, eng: eng}
}

// TargetName implements membus.Target.
func (m *Memory) TargetName() string { return m.name }

// HomeLatency implements membus.Target. The bus calls it exactly once per
// transaction that the module services; the module claims one access slot.
func (m *Memory) HomeLatency(t *membus.Transaction) sim.Time {
	if m.eng == nil {
		return m.latency
	}
	start := m.eng.Now()
	if m.busyUntil > start {
		start = m.busyUntil
	}
	m.busyUntil = start + m.latency
	return m.busyUntil - m.eng.Now()
}

// Claim reserves one access slot without a bus transaction — used by NIs
// writing or reading their own local storage — and returns the delay from
// now until that access completes.
func (m *Memory) Claim() sim.Time {
	if m.eng == nil {
		return m.latency
	}
	start := m.eng.Now()
	if m.busyUntil > start {
		start = m.busyUntil
	}
	m.busyUntil = start + m.latency
	return m.busyUntil - m.eng.Now()
}

// HomeAccess implements membus.Target.
func (m *Memory) HomeAccess(t *membus.Transaction) {
	switch t.Kind {
	case membus.Writeback, membus.UncachedWrite, membus.BlockWrite, membus.WriteInvalidate:
		m.Writes++
	default: //lint:allow exhaustive read/write classification: every non-write kind reaching DRAM counts as a read by design
		m.Reads++
	}
	for _, w := range m.watchers {
		if t.Addr >= w.lo && t.Addr < w.hi {
			w.fn(t)
		}
	}
}

// Watch registers fn to run whenever an access in [lo, hi) reaches the DRAM.
func (m *Memory) Watch(lo, hi membus.Addr, fn func(t *membus.Transaction)) {
	m.watchers = append(m.watchers, watcher{lo, hi, fn})
}
