package mainmem

import (
	"testing"

	"nisim/internal/membus"
	"nisim/internal/sim"
)

func TestSerializedAccess(t *testing.T) {
	eng := sim.NewEngine()
	m := New("dram", 120*sim.Nanosecond, eng)
	// Two back-to-back claims at t=0: the second waits for the first.
	if d := m.HomeLatency(&membus.Transaction{Kind: membus.GetS}); d != 120*sim.Nanosecond {
		t.Fatalf("first access latency %v, want 120ns", d)
	}
	if d := m.HomeLatency(&membus.Transaction{Kind: membus.GetS}); d != 240*sim.Nanosecond {
		t.Fatalf("second access latency %v, want 240ns (queued)", d)
	}
	// After time passes, the module frees up.
	eng.At(500*sim.Nanosecond, func() {
		if d := m.HomeLatency(&membus.Transaction{Kind: membus.GetS}); d != 120*sim.Nanosecond {
			t.Errorf("post-idle access latency %v, want 120ns", d)
		}
	})
	eng.Run()
}

func TestClaimMatchesHomeLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := New("sram", 60*sim.Nanosecond, eng)
	if d := m.Claim(); d != 60*sim.Nanosecond {
		t.Fatalf("Claim = %v, want 60ns", d)
	}
	if d := m.Claim(); d != 120*sim.Nanosecond {
		t.Fatalf("second Claim = %v, want 120ns", d)
	}
}

func TestNilEngineDisablesSerialization(t *testing.T) {
	m := New("flat", 100*sim.Nanosecond, nil)
	for i := 0; i < 3; i++ {
		if d := m.HomeLatency(&membus.Transaction{}); d != 100*sim.Nanosecond {
			t.Fatalf("access %d latency %v, want constant 100ns", i, d)
		}
	}
}

func TestAccessCounters(t *testing.T) {
	eng := sim.NewEngine()
	m := New("dram", 0, eng)
	m.HomeAccess(&membus.Transaction{Kind: membus.GetS})
	m.HomeAccess(&membus.Transaction{Kind: membus.Writeback})
	m.HomeAccess(&membus.Transaction{Kind: membus.WriteInvalidate})
	m.HomeAccess(&membus.Transaction{Kind: membus.UncachedRead})
	if m.Reads != 2 || m.Writes != 2 {
		t.Fatalf("reads=%d writes=%d, want 2/2", m.Reads, m.Writes)
	}
}

func TestWatchRanges(t *testing.T) {
	eng := sim.NewEngine()
	m := New("dram", 0, eng)
	var hits []membus.Addr
	m.Watch(0x1000, 0x2000, func(tr *membus.Transaction) { hits = append(hits, tr.Addr) })
	m.HomeAccess(&membus.Transaction{Kind: membus.Writeback, Addr: 0x0fff})
	m.HomeAccess(&membus.Transaction{Kind: membus.Writeback, Addr: 0x1000})
	m.HomeAccess(&membus.Transaction{Kind: membus.Writeback, Addr: 0x1fff})
	m.HomeAccess(&membus.Transaction{Kind: membus.Writeback, Addr: 0x2000})
	if len(hits) != 2 || hits[0] != 0x1000 || hits[1] != 0x1fff {
		t.Fatalf("watcher hits = %#x", hits)
	}
}
