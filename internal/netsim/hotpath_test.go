package netsim

import (
	"testing"

	"nisim/internal/sim"
)

// TestDeliveryPathAllocFree is the allocation gate for the lossless message
// hot path: once warm, a complete inject→arrive→eject→decide→ack round
// (the per-fragment work of every simulated send) must not allocate. It
// locks in the typed-event refactor — regressing any hop back to a closure
// fails this test.
func TestDeliveryPathAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig(), 2, 1)
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	recv.OnAccept = func(m *Message) { recv.ReleaseIn() }

	m := NewSized(0, 1, 0, 8)
	deliver := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	deliver() // warm the event pool

	if allocs := testing.AllocsPerRun(200, deliver); allocs != 0 {
		t.Fatalf("lossless delivery round allocates %.1f per run, want 0", allocs)
	}
}

// TestReliableDeliveryPathAllocFree gates the reliable path: sealing,
// arming the retransmission timer, delivery, and the ack that stops the
// timer must all ride pooled records once the inflight map is warm.
func TestReliableDeliveryPathAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Reliability = DefaultReliability()
	nw := New(eng, cfg, 2, 1)
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	recv.OnAccept = func(m *Message) { recv.ReleaseIn() }

	m := NewSized(0, 1, 0, 8)
	deliver := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	deliver()

	if allocs := testing.AllocsPerRun(200, deliver); allocs != 0 {
		t.Fatalf("reliable delivery round allocates %.1f per run, want 0", allocs)
	}
}
