package netsim

import (
	"testing"

	"nisim/internal/sim"
)

// TestDeliveryPathAllocFree is the allocation gate for the lossless message
// hot path: once warm, a complete inject→arrive→eject→decide→ack round
// (the per-fragment work of every simulated send) must not allocate. It
// locks in the typed-event refactor — regressing any hop back to a closure
// fails this test.
func TestDeliveryPathAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig(), 2, 1)
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	recv.OnAccept = func(m *Message) { recv.ReleaseIn() }

	m := NewSized(0, 1, 0, 8)
	deliver := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	deliver() // warm the event pool

	if allocs := testing.AllocsPerRun(200, deliver); allocs != 0 {
		t.Fatalf("lossless delivery round allocates %.1f per run, want 0", allocs)
	}
}

// TestReliableDeliveryPathAllocFree gates the reliable path: sealing,
// arming the retransmission timer, delivery, and the ack that stops the
// timer must all ride pooled records once the inflight map is warm.
func TestReliableDeliveryPathAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Reliability = DefaultReliability()
	nw := New(eng, cfg, 2, 1)
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	recv.OnAccept = func(m *Message) { recv.ReleaseIn() }

	m := NewSized(0, 1, 0, 8)
	deliver := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	deliver()

	if allocs := testing.AllocsPerRun(200, deliver); allocs != 0 {
		t.Fatalf("reliable delivery round allocates %.1f per run, want 0", allocs)
	}
}

// faultRecoveryNet builds the two-endpoint rig the recovery gates share:
// reliability with a short timeout and an unlimited attempt budget, so no
// round ever abandons (abandonment appends to Failures, which allocates —
// legitimately, it happens at most once per message).
func faultRecoveryNet(plane FaultPlane) (*sim.Engine, *Endpoint, *Endpoint) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Reliability = ReliabilityConfig{
		Enabled: true, AckTimeout: 1 * sim.Microsecond,
		TimeoutCap: 8 * sim.Microsecond, MaxAttempts: 0,
	}
	nw := New(eng, cfg, 2, 1)
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	sender.Fault = plane
	recv.Fault = plane
	recv.OnAccept = func(m *Message) { recv.ReleaseIn() }
	return eng, sender, recv
}

// TestRetransmitPathAllocFree gates loss recovery under an active fault
// plane: each round the plane destroys the first injection, the ack timer
// fires, and the retransmission delivers. Timer re-arming, the inflight
// map churn, and the fault-verdict plumbing must all stay on pooled state.
func TestRetransmitPathAllocFree(t *testing.T) {
	drop := false
	eng, sender, _ := faultRecoveryNet(&scriptPlane{
		inject: func(now sim.Time, m *Message) FaultVerdict {
			drop = !drop
			return FaultVerdict{Drop: drop}
		},
	})
	m := NewSized(0, 1, 0, 8)
	round := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	for i := 0; i < 20; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Fatalf("drop+retransmit round allocates %.1f per run, want 0", allocs)
	}
}

// TestBounceRecoveryAllocFree gates bounce recovery under an active fault
// plane: each round the plane returns the first injection on the bounce
// network, the reliability layer stops the ack timer, backs off, and the
// timed retry delivers.
func TestBounceRecoveryAllocFree(t *testing.T) {
	bounce := false
	eng, sender, _ := faultRecoveryNet(&scriptPlane{
		inject: func(now sim.Time, m *Message) FaultVerdict {
			bounce = !bounce
			return FaultVerdict{ForceBounce: bounce}
		},
	})
	m := NewSized(0, 1, 0, 8)
	round := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	for i := 0; i < 20; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Fatalf("bounce+retry round allocates %.1f per run, want 0", allocs)
	}
}

// TestAdmissionPathAllocFree gates the admission-control fast path: each
// round the receiver's Admit hook refuses the arrival twice — once onto
// the bounce network, once as a silent drop recovered by the ack timer —
// before accepting the third attempt. Both refusal verdicts and the accept
// must ride the same pooled delivery machinery as the lossless path.
func TestAdmissionPathAllocFree(t *testing.T) {
	eng, sender, recv := faultRecoveryNet(nil)
	decision := 0
	recv.Admit = func(m *Message) AdmitDecision {
		decision++
		switch decision % 3 {
		case 1:
			return AdmitBounce
		case 2:
			return AdmitDrop
		}
		return AdmitAccept
	}
	m := NewSized(0, 1, 0, 8)
	round := func() {
		if !sender.TryAcquireOut() {
			t.Fatal("outgoing buffer not free at round start")
		}
		sender.Inject(m)
		eng.Run()
	}
	for i := 0; i < 20; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Fatalf("admission refuse/accept round allocates %.1f per run, want 0", allocs)
	}
}
