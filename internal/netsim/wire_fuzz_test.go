package netsim

import (
	"bytes"
	"math"
	"testing"
)

// Seed corpus for the round-trip fuzzer. The payload sizes mirror the
// integer-truncation case fixed in PR 1: serialization time used integer
// division, so partial-word payloads (1 byte, 249 bytes) under-billed the
// wire. The codec must carry those exact lengths faithfully.
func fuzzSeeds(f *testing.F) {
	f.Add(0, 1, 0, 0, []byte(nil), uint64(0), uint64(0))
	f.Add(3, 7, 2, 1, []byte{0xff}, uint64(42), uint64(1))            // 1-byte partial word
	f.Add(1, 0, 4, 0, bytes.Repeat([]byte{0xa5}, 20), uint64(0), uint64(9)) // spsolve payload
	f.Add(5, 6, 1, 2, bytes.Repeat([]byte{0x5a}, 248), uint64(7), uint64(100))
	f.Add(6, 5, 1, 2, bytes.Repeat([]byte{0x5a}, 249), uint64(7), uint64(101)) // 249: partial word
}

func FuzzWireRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src, dst, handler, channel int, payload []byte, arg, seq uint64) {
		m := &Message{
			Src: src, Dst: dst, Handler: handler, Channel: channel,
			PayloadLen: len(payload), Payload: payload,
			Arg: arg, Seq: seq,
		}
		if len(payload) == 0 {
			m.Payload = nil
		}
		m.SealChecksum()

		wire, err := m.AppendWire(nil)
		inRange := func(v int) bool { return v >= 0 && v <= math.MaxInt32 }
		if !inRange(src) || !inRange(dst) || !inRange(handler) || !inRange(channel) {
			if err == nil {
				t.Fatalf("AppendWire accepted out-of-range field: src=%d dst=%d handler=%d channel=%d", src, dst, handler, channel)
			}
			return
		}
		if err != nil {
			t.Fatalf("AppendWire: %v", err)
		}

		got, err := ParseWire(wire)
		if err != nil {
			t.Fatalf("ParseWire: %v", err)
		}
		if got.Src != m.Src || got.Dst != m.Dst || got.Handler != m.Handler ||
			got.Channel != m.Channel || got.PayloadLen != m.PayloadLen ||
			got.Arg != m.Arg || got.Seq != m.Seq || got.Checksum != m.Checksum {
			t.Fatalf("round trip changed fields:\n got %+v\nwant %+v", got, m)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("round trip changed payload: got %x want %x", got.Payload, m.Payload)
		}
		if (got.Payload == nil) != (m.Payload == nil) {
			t.Fatalf("round trip changed payload presence: got nil=%v want nil=%v", got.Payload == nil, m.Payload == nil)
		}
		if !got.ChecksumOK() {
			t.Fatalf("checksum does not verify after round trip: %+v", got)
		}

		// Any single corrupted payload byte must break the checksum: the
		// parse still succeeds (the header is intact) but ChecksumOK fails.
		if len(m.Payload) > 0 {
			i := int(seq) % len(m.Payload)
			corrupt := append([]byte(nil), wire...)
			corrupt[wireHeaderBytes+i] ^= 0x01
			cm, err := ParseWire(corrupt)
			if err != nil {
				t.Fatalf("ParseWire(corrupted payload): %v", err)
			}
			if cm.ChecksumOK() {
				t.Fatalf("checksum verified despite corrupted payload byte %d", i)
			}
		}
	})
}

func TestWireRejectsMalformed(t *testing.T) {
	m := NewMessage(1, 2, 3, []byte{9, 8, 7})
	m.SealChecksum()
	wire, err := m.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", wire[:wireHeaderBytes-1]},
		{"bad version", append([]byte{99}, wire[1:]...)},
		{"unknown flags", append([]byte{wire[0], 0x80}, wire[2:]...)},
		{"truncated payload", wire[:len(wire)-1]},
		{"trailing bytes", append(append([]byte(nil), wire...), 0)},
	}
	for _, tc := range cases {
		if _, err := ParseWire(tc.b); err == nil {
			t.Errorf("%s: ParseWire accepted malformed input", tc.name)
		}
	}

	// Synthetic message (no payload bytes) followed by junk.
	syn := NewSized(1, 2, 3, 64)
	sw, err := syn.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire(synthetic): %v", err)
	}
	if _, err := ParseWire(append(sw, 1, 2, 3)); err == nil {
		t.Error("ParseWire accepted trailing bytes after synthetic message")
	}
	got, err := ParseWire(sw)
	if err != nil {
		t.Fatalf("ParseWire(synthetic): %v", err)
	}
	if got.Payload != nil || got.PayloadLen != 64 {
		t.Errorf("synthetic round trip: got PayloadLen=%d Payload=%v, want 64, nil", got.PayloadLen, got.Payload)
	}

	// Length disagreement between header and in-memory payload.
	bad := NewMessage(1, 2, 3, []byte{1, 2, 3})
	bad.PayloadLen = 2
	if _, err := bad.AppendWire(nil); err == nil {
		t.Error("AppendWire accepted PayloadLen disagreeing with payload bytes")
	}
}
