package netsim

import (
	"bytes"
	"math"
	"testing"

	"nisim/internal/sim"
)

// Seed corpus for the round-trip fuzzer. The payload sizes mirror the
// integer-truncation case fixed in PR 1: serialization time used integer
// division, so partial-word payloads (1 byte, 249 bytes) under-billed the
// wire. The codec must carry those exact lengths faithfully. The corpus is
// then extended with frames captured live from the fault plane, so the
// fuzzer starts from the wire images the fault machinery actually emits.
func fuzzSeeds(f *testing.F) {
	f.Add(0, 1, 0, 0, []byte(nil), uint64(0), uint64(0), uint8(0))
	f.Add(3, 7, 2, 1, []byte{0xff}, uint64(42), uint64(1), uint8(0))            // 1-byte partial word
	f.Add(1, 0, 4, 0, bytes.Repeat([]byte{0xa5}, 20), uint64(0), uint64(9), uint8(0)) // spsolve payload
	f.Add(5, 6, 1, 2, bytes.Repeat([]byte{0x5a}, 248), uint64(7), uint64(100), uint8(0))
	f.Add(6, 5, 1, 2, bytes.Repeat([]byte{0x5a}, 249), uint64(7), uint64(101), uint8(0)) // 249: partial word

	// Rendezvous-protocol control frames (msglayer handler ids 220/221):
	// an RTS with the packed (xfer, bytes, handler) argument and the
	// application argument riding the Channel field, and the CTS echoing
	// the transfer id. Both are header-only.
	f.Add(2, 9, 220, 12345, []byte(nil), uint64(7)|uint64(4096)<<16|uint64(3)<<48, uint64(17), uint8(0))
	f.Add(9, 2, 221, 0, []byte(nil), uint64(7), uint64(18), uint8(0))
	// One-sided frames: a full put payload frame with the (xfer, idx,
	// total) tag, a synthetic put frame, and a get request carrying the
	// (xfer, bytes) argument.
	f.Add(2, 9, 222, 0, bytes.Repeat([]byte{0xe1}, 248), uint64(7)|uint64(2)<<32|uint64(17)<<48, uint64(19), uint8(1))
	f.Add(2, 9, 222, 0, []byte(nil), uint64(7)|uint64(16)<<32|uint64(17)<<48, uint64(20), uint8(1))
	f.Add(9, 2, 5, 0, []byte(nil), uint64(9)|uint64(600)<<32, uint64(21), uint8(2))

	for _, m := range captureFaultFrames() {
		f.Add(m.Src, m.Dst, m.Handler, m.Channel, m.Payload, m.Arg, m.Seq, uint8(m.oneSided))
	}
	for _, m := range captureOneSidedFrames() {
		f.Add(m.Src, m.Dst, m.Handler, m.Channel, m.Payload, m.Arg, m.Seq, uint8(m.oneSided))
	}
}

// captureOneSidedFrames drives put and get traffic over a tiny reliable
// network with a corrupting fault plane and snapshots the wire images the
// one-sided path actually emits: the pristine put frame, the corrupted
// copy at the eject point, and a get request. Deterministic, like
// captureFaultFrames.
func captureOneSidedFrames() []*Message {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Reliability = ReliabilityConfig{
		Enabled: true, AckTimeout: 1 * sim.Microsecond,
		TimeoutCap: 8 * sim.Microsecond, MaxAttempts: 8,
	}
	nw := New(eng, cfg, 2, 1)

	var frames []*Message
	snap := func(m *Message) {
		c := *m
		c.Payload = append([]byte(nil), m.Payload...)
		if m.Payload == nil {
			c.Payload = nil
		}
		frames = append(frames, &c)
	}

	injects := 0
	plane := &scriptPlane{
		inject: func(now sim.Time, m *Message) FaultVerdict {
			if m.oneSided == 0 {
				return FaultVerdict{}
			}
			injects++
			if injects == 1 {
				snap(m) // the pristine put frame
				return FaultVerdict{Corrupt: true}
			}
			return FaultVerdict{}
		},
		eject: func(now sim.Time, m *Message) FaultVerdict {
			if m.oneSided != 0 && !m.ChecksumOK() {
				snap(m) // the corrupted put as the receiver would see it
			}
			if m.oneSided == oneSidedGet {
				snap(m) // a get request header
			}
			return FaultVerdict{}
		},
	}
	nw.Endpoint(0).Fault = plane
	nw.Endpoint(1).Fault = plane

	nw.Endpoint(1).OnPut = func(m *Message) {}
	nw.Endpoint(1).OnGet = func(m *Message) {}
	nw.Endpoint(0).OnPut = func(m *Message) {}

	eng.After(0, func() {
		p := NewMessage(0, 1, 222, bytes.Repeat([]byte{0xd4}, 100))
		p.Arg = uint64(3) | uint64(0)<<32 | uint64(1)<<48
		nw.Endpoint(0).Put(p)
	})
	eng.After(20*sim.Microsecond, func() {
		g := NewSized(0, 1, 5, 0)
		g.Arg = uint64(4) | uint64(256)<<32
		nw.Endpoint(0).Get(g)
	})
	eng.Run()
	return frames
}

// captureFaultFrames drives a tiny two-node reliable network through a
// scripted fault plane and snapshots the frames the plane touched: a
// data message the plane duplicated, the corrupted copy observed at the
// eject point (flipped payload bit and all), and the header of a message
// returned on the bounce network. Deterministic: the engine's event order
// fixes the capture order.
func captureFaultFrames() []*Message {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Reliability = ReliabilityConfig{
		Enabled: true, AckTimeout: 1 * sim.Microsecond,
		TimeoutCap: 8 * sim.Microsecond, MaxAttempts: 8,
	}
	nw := New(eng, cfg, 2, 1)

	var frames []*Message
	snap := func(m *Message) {
		c := *m
		c.Payload = append([]byte(nil), m.Payload...)
		if m.Payload == nil {
			c.Payload = nil
		}
		frames = append(frames, &c)
	}

	injects := 0
	plane := &scriptPlane{
		inject: func(now sim.Time, m *Message) FaultVerdict {
			injects++
			switch injects {
			case 1:
				snap(m) // the frame the plane duplicates
				return FaultVerdict{Duplicate: true}
			case 2:
				return FaultVerdict{Corrupt: true}
			}
			return FaultVerdict{}
		},
		eject: func(now sim.Time, m *Message) FaultVerdict {
			if !m.ChecksumOK() {
				snap(m) // the corrupted copy as the receiver sees it
			}
			return FaultVerdict{}
		},
		ctl: func(now sim.Time, kind ControlKind, m *Message) bool {
			if kind == BounceControl {
				snap(m) // a bounce-network header
			}
			return false
		},
	}
	nw.Endpoint(0).Fault = plane
	nw.Endpoint(1).Fault = plane

	// One in-buffer, held across the first accept: the duplicate copy finds
	// it full and bounces (captured above), then settles as a stale ack.
	recv := nw.Endpoint(1)
	accepts := 0
	recv.OnAccept = func(m *Message) {
		accepts++
		if accepts > 1 {
			recv.ReleaseIn()
		}
	}
	send := func(m *Message) {
		if !nw.Endpoint(0).TryAcquireOut() {
			panic("capture rig: no out buffer")
		}
		nw.Endpoint(0).Inject(m)
	}
	eng.After(0, func() { send(NewSized(0, 1, 3, 8)) }) // duplicated, dup bounces
	eng.After(2*sim.Microsecond, func() { recv.ReleaseIn() })
	eng.After(3*sim.Microsecond, func() {
		m := NewMessage(0, 1, 4, bytes.Repeat([]byte{0xc3}, 33))
		m.Arg = 0xfeedface
		send(m) // corrupted in flight, retransmitted clean
	})
	eng.Run()
	return frames
}

func FuzzWireRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src, dst, handler, channel int, payload []byte, arg, seq uint64, sided uint8) {
		m := &Message{
			Src: src, Dst: dst, Handler: handler, Channel: channel,
			PayloadLen: len(payload), Payload: payload,
			Arg: arg, Seq: seq,
			// Normalized to the three declared one-sided kinds; the codec
			// rejects unknown flag bits on parse, and a frame can never
			// carry both put and get.
			oneSided: sided % 3,
		}
		if len(payload) == 0 {
			m.Payload = nil
		}
		m.SealChecksum()

		wire, err := m.AppendWire(nil)
		inRange := func(v int) bool { return v >= 0 && v <= math.MaxInt32 }
		if !inRange(src) || !inRange(dst) || !inRange(handler) || !inRange(channel) {
			if err == nil {
				t.Fatalf("AppendWire accepted out-of-range field: src=%d dst=%d handler=%d channel=%d", src, dst, handler, channel)
			}
			return
		}
		if err != nil {
			t.Fatalf("AppendWire: %v", err)
		}

		got, err := ParseWire(wire)
		if err != nil {
			t.Fatalf("ParseWire: %v", err)
		}
		if got.Src != m.Src || got.Dst != m.Dst || got.Handler != m.Handler ||
			got.Channel != m.Channel || got.PayloadLen != m.PayloadLen ||
			got.Arg != m.Arg || got.Seq != m.Seq || got.Checksum != m.Checksum {
			t.Fatalf("round trip changed fields:\n got %+v\nwant %+v", got, m)
		}
		if got.oneSided != m.oneSided {
			t.Fatalf("round trip changed one-sided kind: got %d want %d", got.oneSided, m.oneSided)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("round trip changed payload: got %x want %x", got.Payload, m.Payload)
		}
		if (got.Payload == nil) != (m.Payload == nil) {
			t.Fatalf("round trip changed payload presence: got nil=%v want nil=%v", got.Payload == nil, m.Payload == nil)
		}
		if !got.ChecksumOK() {
			t.Fatalf("checksum does not verify after round trip: %+v", got)
		}

		// Any single corrupted payload byte must break the checksum: the
		// parse still succeeds (the header is intact) but ChecksumOK fails.
		if len(m.Payload) > 0 {
			i := int(seq) % len(m.Payload)
			corrupt := append([]byte(nil), wire...)
			corrupt[wireHeaderBytes+i] ^= 0x01
			cm, err := ParseWire(corrupt)
			if err != nil {
				t.Fatalf("ParseWire(corrupted payload): %v", err)
			}
			if cm.ChecksumOK() {
				t.Fatalf("checksum verified despite corrupted payload byte %d", i)
			}
			// A frame truncated after the corruption must be rejected
			// outright — never parsed into a short payload that happens to
			// re-verify.
			if _, err := ParseWire(corrupt[:len(corrupt)-1]); err == nil {
				t.Fatal("ParseWire accepted a frame truncated after corruption")
			}
		}
	})
}

// TestWireCarriesCorruptVerdict pins the fault-plane round trip: a frame
// captured mid-corruption must still fail ChecksumOK after encode/decode.
// For payload messages the flipped byte carries the evidence; for synthetic
// payloads (no bytes on the wire) only flagCorrupt does — losing it would
// relaundering a corrupted capture into a pristine one.
func TestWireCarriesCorruptVerdict(t *testing.T) {
	syn := NewSized(1, 2, 3, 64)
	syn.SealChecksum()
	sc := syn.corruptedCopy(7)
	wire, err := sc.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire(corrupted synthetic): %v", err)
	}
	got, err := ParseWire(wire)
	if err != nil {
		t.Fatalf("ParseWire(corrupted synthetic): %v", err)
	}
	if got.ChecksumOK() {
		t.Error("corrupted synthetic frame re-parsed as pristine")
	}

	pm := NewMessage(1, 2, 3, []byte{1, 2, 3, 4})
	pm.SealChecksum()
	pc := pm.corruptedCopy(11)
	wire, err = pc.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire(corrupted payload): %v", err)
	}
	got, err = ParseWire(wire)
	if err != nil {
		t.Fatalf("ParseWire(corrupted payload): %v", err)
	}
	if got.ChecksumOK() {
		t.Error("corrupted payload frame re-parsed as pristine")
	}
	if _, err := ParseWire(wire[:len(wire)-1]); err == nil {
		t.Error("ParseWire accepted a corrupted frame with a truncated tail")
	}

	// The pristine originals must still verify: corruption marks the copy,
	// never the sender's retransmission buffer.
	for _, m := range []*Message{syn, pm} {
		w, err := m.AppendWire(nil)
		if err != nil {
			t.Fatalf("AppendWire(pristine): %v", err)
		}
		g, err := ParseWire(w)
		if err != nil {
			t.Fatalf("ParseWire(pristine): %v", err)
		}
		if !g.ChecksumOK() {
			t.Errorf("pristine frame %v fails checksum after round trip", m)
		}
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	m := NewMessage(1, 2, 3, []byte{9, 8, 7})
	m.SealChecksum()
	wire, err := m.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", wire[:wireHeaderBytes-1]},
		{"bad version", append([]byte{99}, wire[1:]...)},
		{"unknown flags", append([]byte{wire[0], 0x80}, wire[2:]...)},
		{"truncated payload", wire[:len(wire)-1]},
		{"trailing bytes", append(append([]byte(nil), wire...), 0)},
	}
	for _, tc := range cases {
		if _, err := ParseWire(tc.b); err == nil {
			t.Errorf("%s: ParseWire accepted malformed input", tc.name)
		}
	}

	// Synthetic message (no payload bytes) followed by junk.
	syn := NewSized(1, 2, 3, 64)
	sw, err := syn.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire(synthetic): %v", err)
	}
	if _, err := ParseWire(append(sw, 1, 2, 3)); err == nil {
		t.Error("ParseWire accepted trailing bytes after synthetic message")
	}
	got, err := ParseWire(sw)
	if err != nil {
		t.Fatalf("ParseWire(synthetic): %v", err)
	}
	if got.Payload != nil || got.PayloadLen != 64 {
		t.Errorf("synthetic round trip: got PayloadLen=%d Payload=%v, want 64, nil", got.PayloadLen, got.Payload)
	}

	// Length disagreement between header and in-memory payload.
	bad := NewMessage(1, 2, 3, []byte{1, 2, 3})
	bad.PayloadLen = 2
	if _, err := bad.AppendWire(nil); err == nil {
		t.Error("AppendWire accepted PayloadLen disagreeing with payload bytes")
	}
}
