// Package netsim models the paper's abstract network and its end-to-end
// flow control. The network is topology-less: a message injected at one
// node arrives at another 40 ns after injection of its last byte (Table 3).
// Flow control is return-to-sender (§5.1.2): the sending NI allocates one
// of F outgoing buffers and injects; the receiving NI either accepts the
// message into one of its F incoming buffers and acknowledges (freeing the
// sender's buffer), or bounces the message back on a guaranteed second
// network, after which the sender retries from the still-allocated buffer.
package netsim

import (
	"fmt"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

// HeaderBytes is the fixed per-message header size (§6.1: "each message
// contains an eight-byte header").
const HeaderBytes = 8

// Infinite, used as a buffer count, models unbounded flow-control buffering
// (the black bars of Figure 3a).
const Infinite = int(1) << 40

// Message is one network message.
type Message struct {
	Src, Dst int
	// Handler is the active-message handler index (messaging-layer level).
	Handler int
	// Payload carries real bytes when integrity matters (tests, examples).
	// It may be nil, in which case PayloadLen alone defines the size.
	Payload []byte
	// PayloadLen is the payload size in bytes.
	PayloadLen int
	// Channel is a virtual-channel tag used by the bulk-transfer layer.
	Channel int
	// Arg carries small out-of-band metadata for protocol layers.
	Arg uint64
	// SendTime is when the messaging layer started the send (for latency
	// accounting); ArriveTime is set on acceptance at the destination.
	SendTime, ArriveTime sim.Time

	// Seq is the per-sender reliable-delivery sequence number, assigned at
	// first injection when the network runs with reliability enabled (zero
	// otherwise).
	Seq uint64
	// Checksum covers header fields and payload (see SealChecksum); the
	// reliability layer verifies it at the destination.
	Checksum uint32

	attempts int  // total injections (first send, bounce retries, retransmits)
	retx     int  // timer-driven retransmissions only (bounded by MaxAttempts)
	corrupt  bool // corrupted in flight; ChecksumOK reports false
	// oneSided marks an RDMA put frame or get request (see Endpoint.Put and
	// Endpoint.Get). One-sided messages hold no flow-control buffer on either
	// side, carry no handler dispatch, and can neither bounce nor be
	// admission-refused: the rendezvous handshake already reserved their
	// landing memory, so delivery is decided by the checksum gate alone.
	oneSided uint8
	// deadline is the absolute delivery deadline stamped at first injection
	// when the reliability layer runs with a per-message deadline; zero means
	// none. Retries (timer or bounce) past it abandon the send.
	deadline sim.Time

	// net is set at first injection so typed-event handlers can resolve the
	// source and destination endpoints from the message alone.
	net *Network
	// scratch is the reusable corruption buffer (see corruptedCopy).
	scratch []byte
	// orig, on a cross-shard transit copy under the reliability layer,
	// points at the sender-owned original (the retransmission buffer). The
	// receiver's acks and bounces settle the original, never the copy; see
	// origin.
	orig *Message
}

// One-sided message kinds (Message.oneSided). Zero is a two-sided send.
const (
	oneSidedPut = 1
	oneSidedGet = 2
)

// IsPut reports whether m is a one-sided RDMA put frame.
func (m *Message) IsPut() bool { return m.oneSided == oneSidedPut }

// IsGet reports whether m is a one-sided RDMA get request.
func (m *Message) IsGet() bool { return m.oneSided == oneSidedGet }

// Recycle resets the delivery state a previous transit left on m so a
// protocol layer can return the message to a free pool and reuse it for a
// fresh send. Payload, addressing, and the corruption scratch buffer are
// kept — the caller overwrites those per send; what must be cleared is the
// reliability identity (Seq, Checksum, deadline), the attempt counters, and
// the one-sided marking, or the next Inject would treat the reused message
// as a retransmission of the old one.
//
//lint:hotpath
func (m *Message) Recycle() {
	m.Seq = 0
	m.Checksum = 0
	m.attempts = 0
	m.retx = 0
	m.corrupt = false
	m.deadline = 0
	m.orig = nil
	m.oneSided = 0
	m.SendTime = 0
	m.ArriveTime = 0
}

// origin resolves the sender-owned message a control reply must settle:
// the original behind a cross-shard transit copy, or m itself.
//
//lint:hotpath
func (m *Message) origin() *Message {
	if m.orig != nil {
		return m.orig
	}
	return m
}

// NewMessage builds a message with the given payload bytes.
func NewMessage(src, dst, handler int, payload []byte) *Message {
	return &Message{Src: src, Dst: dst, Handler: handler, Payload: payload, PayloadLen: len(payload)}
}

// NewSized builds a message with a synthetic payload of n bytes.
func NewSized(src, dst, handler, n int) *Message {
	return &Message{Src: src, Dst: dst, Handler: handler, PayloadLen: n}
}

// Size returns the wire size: payload plus the 8-byte header.
func (m *Message) Size() int { return m.PayloadLen + HeaderBytes }

func (m *Message) String() string {
	return fmt.Sprintf("msg{%d->%d h%d %dB}", m.Src, m.Dst, m.Handler, m.Size())
}

// Config holds network parameters.
type Config struct {
	// Latency is the time from injection of the last byte at the source to
	// arrival of the first byte at the destination (Table 3: 40 ns).
	Latency sim.Time
	// BytesPerNS is the link bandwidth for injection/ejection serialization.
	BytesPerNS int
	// RetryBase is the backoff before re-injecting a bounced message;
	// attempt k waits k×RetryBase, capped at RetryCap.
	RetryBase sim.Time
	RetryCap  sim.Time
	// MaxNetMsg is the maximum single network message size (Table 3:
	// 256 bytes). The messaging layer fragments larger sends.
	MaxNetMsg int
	// Reliability configures the end-to-end reliable-delivery layer; the
	// zero value keeps the paper's lossless protocol unchanged.
	Reliability ReliabilityConfig
}

// DefaultConfig returns the Table 3 network.
func DefaultConfig() Config {
	return Config{
		Latency:    40 * sim.Nanosecond,
		BytesPerNS: 1,
		RetryBase:  150 * sim.Nanosecond,
		RetryCap:   2 * sim.Microsecond,
		MaxNetMsg:  256,
	}
}

// Router carries cross-shard event handoff for a partitioned simulation.
// It is the netsim-side view of internal/sim/partition: ShardOf names the
// shard owning a node, and Post schedules a typed event on another shard's
// engine as if the posting shard's engine had scheduled it at time schedAt
// (the caller's clock). Implementations must only be driven between
// conservative windows; netsim endpoints call Post only for events at
// least one network latency ahead, which is what makes the windows safe.
type Router interface {
	// ShardOf returns the shard index owning node id.
	ShardOf(node int) int
	// Post schedules h(recv, arg) at absolute time at on the shard owning
	// dst, stamped as scheduled at schedAt by src's shard with src's
	// per-node post sequence seq (the content-based tie-break; see
	// sim.AtEventPosted).
	Post(src, dst int, at, schedAt sim.Time, seq uint64, h sim.Handler, recv any, arg uint64)
}

// Network connects a fixed set of endpoints.
type Network struct {
	eng    *sim.Engine
	cfg    Config
	eps    []*Endpoint
	router Router // nil when the whole network lives on one engine
}

// Partition rebinds every endpoint to the engine of its shard and installs
// the router that carries cross-shard traffic between windows. engOf maps
// a node id to its shard's engine; r.ShardOf must agree with it. Call once,
// after New and before any traffic. With no Partition call the network
// runs exactly as before: every endpoint on the construction engine, no
// router, byte-identical behavior.
func (nw *Network) Partition(r Router, engOf func(node int) *sim.Engine) {
	nw.router = r
	for _, ep := range nw.eps {
		ep.eng = engOf(ep.id)
		ep.shard = r.ShardOf(ep.id)
	}
}

// New creates a network with n endpoints, each with bufs flow-control
// buffers in each direction (use Infinite for unbounded).
func New(eng *sim.Engine, cfg Config, n, bufs int) *Network {
	nw := &Network{eng: eng, cfg: cfg}
	for i := 0; i < n; i++ {
		ep := &Endpoint{
			net: nw, id: i, eng: eng,
			outFree: bufs, inFree: bufs, bufs: bufs,
			outCond: sim.NewCond(eng),
		}
		if cfg.Reliability.Enabled {
			ep.inflight = make(map[*Message]sim.Timer)
		}
		nw.eps = append(nw.eps, ep)
	}
	eng.RegisterQuiescence(nw.QuiescenceReport)
	return nw
}

// Endpoint returns endpoint i.
func (nw *Network) Endpoint(i int) *Endpoint { return nw.eps[i] }

// Size returns the number of endpoints.
func (nw *Network) Size() int { return len(nw.eps) }

// Config returns the network configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Delivered returns the count of accepted data messages network-wide. The
// count lives per endpoint (each written only by its owning shard) and is
// summed here; read it only from serial context or between windows.
func (nw *Network) Delivered() int64 {
	var d int64
	for _, ep := range nw.eps {
		d += ep.delivered
	}
	return d
}

// Activity returns a monotonic count of protocol progress events
// (injections, accept/bounce decisions, buffer releases). Two equal
// samples a long interval apart mean the network made no progress between
// them — with held buffers, a lost-message stall even if processors are
// still spinning. Like Delivered, the count is kept per endpoint and
// summed on read.
func (nw *Network) Activity() int64 {
	var a int64
	for _, ep := range nw.eps {
		a += ep.activity
	}
	return a
}

// Progress returns the two watchdog counters together: protocol activity
// (injections, decisions, buffer releases) and accepted deliveries. Rising
// activity with flat deliveries over a long interval is the signature of
// sustained-overload starvation — a bounce or retransmission storm churning
// the network without ever landing a message — which is distinct from
// livelock (flat activity: nothing moves at all).
func (nw *Network) Progress() (activity, delivered int64) {
	for _, ep := range nw.eps {
		activity += ep.activity
		delivered += ep.delivered
	}
	return activity, delivered
}

// Failures returns every send abandoned by the reliability layer after
// exhausting its retransmission budget or missing its deadline, grouped by
// abandoning endpoint in node-id order (chronological within a node).
func (nw *Network) Failures() []*DeliveryError {
	var out []*DeliveryError
	for _, ep := range nw.eps {
		out = append(out, ep.failures...)
	}
	return out
}

// Typed-event handlers for the message hot path. Each is one shared
// package-level function — scheduling it allocates nothing — with the
// message (or endpoint) as the receiver; the message's net back-pointer
// resolves the acting endpoint. They replace the per-hop closures that
// previously allocated a fresh environment for every network transit.
//lint:hotpath
func msgArrive(recv any, _ uint64) { m := recv.(*Message); m.net.eps[m.Dst].arrive(m) }
//lint:hotpath
func msgEject(recv any, _ uint64)  { m := recv.(*Message); m.net.eps[m.Dst].eject(m) }
//lint:hotpath
func msgDecide(recv any, _ uint64) { m := recv.(*Message); m.net.eps[m.Dst].decide(m) }
//lint:hotpath
func msgOneSided(recv any, _ uint64) { m := recv.(*Message); m.net.eps[m.Dst].oneSidedDeliver(m) }
//lint:hotpath
func msgAcked(recv any, _ uint64)  { m := recv.(*Message); m.net.eps[m.Src].acked(m) }
//lint:hotpath
func msgBounced(recv any, _ uint64) {
	m := recv.(*Message)
	m.net.eps[m.Src].bounced(m)
}
//lint:hotpath
func msgRetryInject(recv any, _ uint64) {
	m := recv.(*Message)
	ep := m.net.eps[m.Src]
	if ep.Stats != nil {
		ep.Stats.Retries++
	}
	ep.Inject(m)
}
//lint:hotpath
func msgAckTimeout(recv any, _ uint64) { m := recv.(*Message); m.net.eps[m.Src].ackTimeout(m) }
//lint:hotpath
func epReleaseOut(recv any, _ uint64)  { recv.(*Endpoint).releaseOut() }
//lint:hotpath
func epNotifyOutFree(recv any, _ uint64) {
	ep := recv.(*Endpoint)
	if ep.OnOutFree != nil {
		ep.OnOutFree()
	}
}

// post schedules the typed event h(recv, arg) at absolute time at on the
// engine owning node dst: locally when dst shares this endpoint's shard
// (or the network is unpartitioned), through the Router seam otherwise.
// Every call site posts at least one network latency ahead of now — the
// conservative-lookahead contract that makes partitioned windows safe
// (DESIGN.md §10).
//
//lint:hotpath
func (ep *Endpoint) post(dst int, at sim.Time, h sim.Handler, recv any, arg uint64) {
	ep.postSeq++
	r := ep.net.router
	if r == nil || r.ShardOf(dst) == ep.shard {
		ep.eng.AtEventPosted(at, ep.id, ep.postSeq, h, recv, arg)
		return
	}
	r.Post(ep.id, dst, at, ep.eng.Now(), ep.postSeq, h, recv, arg)
}

// PostControl schedules the typed control event h(recv, arg) one network
// latency from now on the engine owning node dst, stamped with this
// endpoint's post sequence so its ordering against data traffic is
// deterministic. It is the NI layer's seam for cross-node control
// exchange that must not ride shared Go state — the throttled coherent
// NI's credit return uses it — and the fixed one-latency lag is what
// satisfies the conservative-lookahead contract that makes partitioned
// windows safe (DESIGN.md §10).
//
//lint:hotpath
func (ep *Endpoint) PostControl(dst int, h sim.Handler, recv any, arg uint64) {
	ep.post(dst, ep.eng.Now()+ep.net.cfg.Latency, h, recv, arg)
}

// crossShard reports whether node dst lives on a different shard than this
// endpoint (always false on an unpartitioned network).
//
//lint:hotpath
func (ep *Endpoint) crossShard(dst int) bool {
	r := ep.net.router
	return r != nil && r.ShardOf(dst) != ep.shard
}

// transitCopy returns the receiver-owned copy of m used for cross-shard
// delivery under the reliability layer: the original stays at the sender
// as the retransmission buffer (and may be re-injected concurrently with
// the copy's delivery on the other shard), so the two sides must not share
// a mutable object. Control replies settle the original via origin. The
// copy drops the corruption scratch so concurrent transits never share
// bytes either.
func (m *Message) transitCopy() *Message {
	c := *m //lint:allow noalloc one copy per cross-shard reliable transit; the shards would otherwise share a mutable message
	c.orig = m.origin()
	c.scratch = nil
	return &c
}

func (nw *Network) serialization(bytes int) sim.Time {
	if nw.cfg.BytesPerNS <= 0 {
		return 0
	}
	// Ceiling division: a partial trailing word still costs a full cycle.
	return sim.Time((bytes+nw.cfg.BytesPerNS-1)/nw.cfg.BytesPerNS) * sim.Nanosecond
}

// Endpoint is one NI's attachment to the network, implementing the
// return-to-sender protocol. The owning NI wires OnAccept (and optionally
// OnOutFree) and calls AcquireOut/Inject to send and ReleaseIn when it has
// drained an accepted message out of the incoming flow-control buffer.
type Endpoint struct {
	net  *Network
	id   int
	bufs int

	// eng is the engine this endpoint's events run on: the network's
	// construction engine, or the endpoint's shard engine after
	// Network.Partition. shard is meaningful only when a router is
	// installed.
	eng   *sim.Engine
	shard int

	// Watchdog/diagnostic counters, kept per endpoint so each is written
	// only by its owning shard (see Network.Delivered, Activity, Failures).
	delivered int64
	activity  int64
	failures  []*DeliveryError

	// postSeq numbers this endpoint's posts; together with the endpoint id
	// it is the content-based tie-break slotting each post into the engine
	// heap independently of scheduling-call interleaving (sim.AtEventPosted).
	postSeq uint64

	outFree int
	inFree  int
	outCond *sim.Cond

	nextInjectAt sim.Time
	nextEjectAt  sim.Time

	// seq numbers this endpoint's reliable sends; inflight maps each to its
	// live retransmission timer until the send is acked, failed, or the
	// network is torn down. A bounced send keeps its entry with a stopped
	// timer until the retry re-arms it.
	seq      uint64
	inflight map[*Message]sim.Timer

	// OnAccept is invoked when an arriving message is accepted into an
	// incoming flow-control buffer. The NI must eventually call ReleaseIn
	// exactly once per accepted message.
	OnAccept func(m *Message)
	// OnOutFree, if non-nil, is invoked whenever an outgoing buffer frees
	// (for NI-managed send queues that drain as credits return).
	OnOutFree func()
	// OnBounce, if non-nil, is invoked when a message is returned to this
	// sender, and the NI takes over the retry — for processor-managed NIs,
	// software must notice the returned message and re-push it (the
	// "processor involved in buffering" column of Table 2). When nil, the
	// endpoint retries in hardware after a backoff (NI-managed buffering).
	OnBounce func(m *Message)
	// OnDeliveryError, if non-nil, is invoked when the reliability layer
	// abandons a send after MaxAttempts; the outgoing buffer has already
	// been freed. When nil the failure is still recorded in the network's
	// Failures list and the node's DeliveryFailures counter.
	OnDeliveryError func(err *DeliveryError)
	// OnPut is invoked when a one-sided put frame lands (see Endpoint.Put).
	// It runs in network-event context, not a receiver process: the frame's
	// bytes were deposited directly into pre-negotiated memory, so the hook
	// must do bookkeeping only — no processor time, no blocking. The message
	// is receiver-owned after the call only on a lossless network; under the
	// reliability layer the sender retains it for retransmission.
	OnPut func(m *Message)
	// OnGet is invoked when a one-sided get request lands (see Endpoint.Get).
	// Same context rules as OnPut; the hook is expected to queue a put-back
	// transfer of the requested bytes.
	OnGet func(m *Message)
	// OnSettled, if non-nil, is invoked when the reliability layer settles a
	// one-sided send — acknowledged or abandoned. One-sided frames hold no
	// outgoing buffer, so this hook replaces the releaseOut credit as the
	// sender's "safe to reuse the frame" signal.
	OnSettled func(m *Message)
	// Admit, if non-nil, is the NI's admission-control hook, consulted for
	// every arriving data message after the checksum gate and before the
	// flow-control buffer check. Nil (the default) is the paper's lossless
	// accept-or-bounce protocol, bit-identical to a build without the hook.
	// AdmitBounce returns the message on the second network even with free
	// buffers; AdmitDrop destroys it silently — recovery, if any, is the
	// sender's reliability layer, exactly as for a fault-plane drop.
	// One-sided frames never consult Admit: they carry no handler dispatch
	// and occupy no receive buffer, so there is nothing to refuse.
	Admit func(m *Message) AdmitDecision
	// Fault, if non-nil, injects faults into this endpoint's traffic at the
	// inject and eject points. Nil is the lossless network.
	Fault FaultPlane
	// Stats receives flow-control counters; may be nil.
	Stats *stats.Node
}

// ID returns the endpoint's node id.
func (ep *Endpoint) ID() int { return ep.id }

// Buffers returns the configured flow-control buffer count per direction.
func (ep *Endpoint) Buffers() int { return ep.bufs }

// OutFree returns the number of free outgoing buffers.
func (ep *Endpoint) OutFree() int { return ep.outFree }

// InFree returns the number of free incoming buffers.
func (ep *Endpoint) InFree() int { return ep.inFree }

// MaxNetMsg returns the network's single-message size ceiling, so engines
// that fragment (RDMA puts) can size frames without a config back-channel.
func (ep *Endpoint) MaxNetMsg() int { return ep.net.cfg.MaxNetMsg }

// Reliable reports whether the network runs the ack/retransmit protocol —
// one-sided senders track settlement only when it does.
func (ep *Endpoint) Reliable() bool { return ep.net.cfg.Reliability.Enabled }

// TryAcquireOut claims an outgoing flow-control buffer if one is free.
//
//lint:hotpath
func (ep *Endpoint) TryAcquireOut() bool {
	if ep.outFree <= 0 {
		return false
	}
	ep.outFree--
	return true
}

// AcquireOut blocks process p until an outgoing buffer is free, then claims
// it. Blocked time is charged to the Buffering category.
//
//lint:hotpath
func (ep *Endpoint) AcquireOut(p *sim.Process) {
	if ep.outFree <= 0 && ep.Stats != nil {
		ep.Stats.SendBlocked++
	}
	for ep.outFree <= 0 {
		ep.outCond.WaitAs(p, stats.Buffering)
	}
	ep.outFree--
}

// WaitOut parks p until an outgoing buffer may have freed; callers re-check
// with TryAcquireOut (used by NIs whose processors spin on a status
// register). Blocked time is charged to the Buffering category.
//
//lint:hotpath
func (ep *Endpoint) WaitOut(p *sim.Process) { ep.outCond.WaitAs(p, stats.Buffering) }

// releaseOut returns an outgoing buffer (ack received or send aborted).
// Surplus credits are ignored: under fault injection without the
// reliability layer, a duplicated message is acknowledged twice, and a
// credit-counting NI discards the spurious second credit.
//
//lint:hotpath
func (ep *Endpoint) releaseOut() {
	if ep.outFree >= ep.bufs {
		return
	}
	ep.activity++
	ep.outFree++
	ep.outCond.Broadcast()
	if ep.OnOutFree != nil {
		ep.eng.AfterEvent(0, epNotifyOutFree, ep, 0)
	}
}

// Inject serializes m onto the link and launches it toward its destination.
// The caller must have acquired an outgoing buffer. Injection is pipelined:
// Inject returns immediately and the link schedule advances.
//
//lint:hotpath
func (ep *Endpoint) Inject(m *Message) {
	if m.Src != ep.id {
		panic(fmt.Sprintf("netsim: endpoint %d injecting message with src %d", ep.id, m.Src))
	}
	if m.Dst == ep.id {
		panic("netsim: message to self")
	}
	if m.Size() > ep.net.cfg.MaxNetMsg {
		panic(fmt.Sprintf("netsim: message size %d exceeds network maximum %d", m.Size(), ep.net.cfg.MaxNetMsg))
	}
	if ep.net.cfg.Reliability.Enabled {
		if m.Seq == 0 {
			ep.seq++
			m.Seq = ep.seq
			if d := ep.net.cfg.Reliability.Deadline; d > 0 {
				m.deadline = ep.eng.Now() + d
			}
		}
		m.SealChecksum()
	}
	m.net = ep.net
	m.attempts++
	ep.activity++
	eng := ep.eng
	start := eng.Now()
	if ep.nextInjectAt > start {
		start = ep.nextInjectAt
	}
	injectEnd := start + ep.net.serialization(m.Size())
	ep.nextInjectAt = injectEnd
	if ep.net.cfg.Reliability.Enabled {
		ep.armTimer(m)
	}
	arriveAt := injectEnd + ep.net.cfg.Latency
	// Cross-shard reliable sends deliver a transit copy: the original stays
	// here as the retransmission buffer. Lossless sends hand over the
	// message itself — ownership transfers to the receiver and returns only
	// via a bounce, itself a lookahead away.
	arr := m
	if ep.net.cfg.Reliability.Enabled && ep.crossShard(m.Dst) {
		arr = m.transitCopy()
	}
	if ep.Fault != nil {
		v := ep.Fault.Inject(eng.Now(), m)
		switch {
		case v.Drop:
			// Link bandwidth was consumed; the message never arrives.
			if ep.Stats != nil {
				ep.Stats.FaultDrops++
			}
			return
		case v.ForceBounce:
			// One-sided frames cannot bounce — there is no receive buffer to
			// refuse them from — so a forced bounce degrades to a drop: the
			// bandwidth is consumed and the reliability layer (if any)
			// retransmits.
			if m.oneSided != 0 {
				if ep.Stats != nil {
					ep.Stats.FaultDrops++
				}
				return
			}
			if ep.Stats != nil {
				ep.Stats.ForcedBounces++
			}
			eng.AtEvent(arriveAt+ep.net.serialization(m.Size()), msgBounced, m, 0)
			return
		}
		if v.Delay > 0 {
			if ep.Stats != nil {
				ep.Stats.FaultDelays++
			}
			arriveAt += v.Delay
		}
		if v.Corrupt {
			if ep.Stats != nil {
				ep.Stats.FaultCorruptions++
			}
			arr = arr.corruptedCopy(uint64(arriveAt))
		}
		ep.post(m.Dst, arriveAt, msgArrive, arr, 0)
		if v.Duplicate {
			if ep.Stats != nil {
				ep.Stats.FaultDuplicates++
			}
			ep.post(m.Dst, arriveAt+ep.net.serialization(m.Size()), msgArrive, arr, 0)
		}
		return
	}
	ep.post(m.Dst, arriveAt, msgArrive, arr, 0)
}

// InjectWait acquires an outgoing buffer (blocking p) and injects m.
func (ep *Endpoint) InjectWait(p *sim.Process, m *Message) {
	ep.AcquireOut(p)
	ep.Inject(m)
}

// Put injects m as a one-sided RDMA put frame. No outgoing flow-control
// buffer is acquired and none is needed at the receiver: the rendezvous
// handshake (or explicit registration) already reserved the landing memory,
// so the frame rides the data network straight into OnPut at the target —
// it can neither bounce nor be admission-refused. Link serialization,
// fault injection, and the reliability layer (seq/checksum/retransmission,
// settled via OnSettled instead of a buffer credit) all apply unchanged.
//
//lint:hotpath
func (ep *Endpoint) Put(m *Message) {
	m.oneSided = oneSidedPut
	ep.Inject(m)
}

// Get injects m as a one-sided RDMA get request: a small frame asking the
// target's NI to put the described bytes back. Delivery lands in OnGet with
// the same no-buffer, no-bounce semantics as Put.
//
//lint:hotpath
func (ep *Endpoint) Get(m *Message) {
	m.oneSided = oneSidedGet
	ep.Inject(m)
}

// arrive handles a data message reaching this endpoint: serialize ejection,
// then accept or bounce. The eject point is the receiver-side fault hook.
func (ep *Endpoint) arrive(m *Message) {
	eng := ep.eng
	if ep.Fault != nil {
		v := ep.Fault.Eject(eng.Now(), m)
		if v.Drop {
			if ep.Stats != nil {
				ep.Stats.FaultDrops++
			}
			return
		}
		if v.Delay > 0 {
			if ep.Stats != nil {
				ep.Stats.FaultDelays++
			}
			eng.AfterEvent(v.Delay, msgEject, m, 0)
			return
		}
	}
	ep.eject(m)
}

func (ep *Endpoint) eject(m *Message) {
	eng := ep.eng
	start := eng.Now()
	if ep.nextEjectAt > start {
		start = ep.nextEjectAt
	}
	done := start + ep.net.serialization(m.Size())
	ep.nextEjectAt = done
	if m.oneSided != 0 {
		eng.AtEvent(done, msgOneSided, m, 0)
		return
	}
	eng.AtEvent(done, msgDecide, m, 0)
}

// oneSidedDeliver lands a put frame or get request: no admission gate, no
// flow-control buffer, no bounce path — after the checksum gate the bytes
// are in their pre-negotiated destination and only the OnPut/OnGet
// bookkeeping hook runs. The ack (reliable networks only) settles the
// sender's retransmission state through OnSettled rather than freeing an
// outgoing buffer, since Put/Get never held one.
func (ep *Endpoint) oneSidedDeliver(m *Message) {
	ep.activity++
	eng := ep.eng
	reliable := ep.net.cfg.Reliability.Enabled
	if reliable && !m.ChecksumOK() {
		// Corruption detected: discard; the sender's timer retransmits.
		if ep.Stats != nil {
			ep.Stats.CorruptDropped++
		}
		return
	}
	m.ArriveTime = eng.Now()
	ep.delivered++
	if reliable && !ep.dropControl(AckControl, m) {
		ep.post(m.Src, eng.Now()+ep.net.cfg.Latency, msgAcked, m.origin(), 0)
	}
	if m.oneSided == oneSidedGet {
		if ep.OnGet == nil {
			panic(fmt.Sprintf("netsim: endpoint %d received a get request with no OnGet", ep.id))
		}
		ep.OnGet(m)
		return
	}
	if ep.OnPut == nil {
		panic(fmt.Sprintf("netsim: endpoint %d received a put frame with no OnPut", ep.id))
	}
	ep.OnPut(m)
}

// dropControl asks this endpoint's fault plane whether the ack/bounce it
// is about to emit for m is destroyed in flight.
func (ep *Endpoint) dropControl(kind ControlKind, m *Message) bool {
	if ep.Fault == nil || !ep.Fault.DropControl(ep.eng.Now(), kind, m) {
		return false
	}
	if ep.Stats != nil {
		ep.Stats.CtlDrops++
	}
	return true
}

// AdmitDecision is an admission-control verdict for one arriving message
// (see Endpoint.Admit). The zero value accepts.
//
//lint:enum
type AdmitDecision int

const (
	// AdmitAccept admits the message into an incoming flow-control buffer
	// (space permitting — a full endpoint still bounces).
	AdmitAccept AdmitDecision = iota
	// AdmitBounce returns the message to its sender on the guaranteed second
	// network, regardless of free buffer space.
	AdmitBounce
	// AdmitDrop destroys the message at the receiver. Under the reliability
	// layer the sender's retransmission timer (and ultimately its deadline or
	// attempt budget) recovers or abandons the send; without it the loss is
	// permanent, as for a fault-plane drop.
	AdmitDrop
)

func (ep *Endpoint) decide(m *Message) {
	ep.activity++
	eng := ep.eng
	src := ep.net.eps[m.Src]
	reliable := ep.net.cfg.Reliability.Enabled
	if reliable && !m.ChecksumOK() {
		// Corruption detected: discard silently; the sender's
		// retransmission timer recovers the message.
		if ep.Stats != nil {
			ep.Stats.CorruptDropped++
		}
		return
	}
	if ep.Admit != nil {
		switch ep.Admit(m) { //lint:allow exhaustive AdmitAccept falls through to the normal delivery path below the switch
		case AdmitDrop:
			if ep.Stats != nil {
				ep.Stats.AdmitDrops++
			}
			return
		case AdmitBounce:
			if ep.Stats != nil {
				ep.Stats.AdmitBounces++
			}
			if ep.dropControl(BounceControl, m) {
				return
			}
			ep.post(m.Src, eng.Now()+ep.net.cfg.Latency+ep.net.serialization(m.Size()), msgBounced, m.origin(), 0)
			return
		}
	}
	if ep.inFree > 0 {
		ep.inFree--
		m.ArriveTime = eng.Now()
		ep.delivered++
		// Acknowledgment returns on the (uncongested) control network. The
		// reply settles the sender-owned original (== m except for a
		// cross-shard transit copy) on the sender's shard.
		if !ep.dropControl(AckControl, m) {
			if reliable {
				ep.post(m.Src, eng.Now()+ep.net.cfg.Latency, msgAcked, m.origin(), 0)
			} else {
				ep.post(m.Src, eng.Now()+ep.net.cfg.Latency, epReleaseOut, src, 0)
			}
		}
		if ep.OnAccept == nil {
			panic(fmt.Sprintf("netsim: endpoint %d has no OnAccept", ep.id))
		}
		ep.OnAccept(m)
		return
	}
	// Bounce: return to sender on the guaranteed second network.
	if ep.dropControl(BounceControl, m) {
		return
	}
	ep.post(m.Src, eng.Now()+ep.net.cfg.Latency+ep.net.serialization(m.Size()), msgBounced, m.origin(), 0)
}

func (ep *Endpoint) bounced(m *Message) {
	reliable := ep.net.cfg.Reliability.Enabled
	if reliable {
		t, ok := ep.inflight[m]
		if !ok {
			// Already acked (a duplicated copy bounced after the original
			// was accepted) or abandoned: the send is settled, drop it.
			return
		}
		// A bounce is positive evidence the message was not lost — the
		// receiver returned it intact. Stop the retransmission timer
		// (the retry path re-arms it at re-injection, so the dead timer
		// never churns the heap) and reset the retransmission budget so
		// flow-control contention never counts toward MaxAttempts.
		t.Stop()
		m.retx = 0
		// The deadline does bound bounce retries: it is what keeps a bounce
		// storm (an overloaded or admission-refusing receiver returning
		// every attempt) from spinning the sender forever.
		if m.deadline > 0 && ep.eng.Now() >= m.deadline {
			if ep.Stats != nil {
				ep.Stats.Bounces++
			}
			ep.abandon(m, ReasonDeadline)
			return
		}
	}
	if ep.Stats != nil {
		ep.Stats.Bounces++
	}
	if ep.OnBounce != nil {
		ep.OnBounce(m)
		return
	}
	var d sim.Time
	if reliable {
		// Capped exponential backoff: under overload, repeated bounces thin
		// the retry traffic out instead of stacking a linear ramp of
		// re-injections onto an already saturated receiver.
		d = ep.net.cfg.RetryBase
		for i := 1; i < m.attempts && d < ep.net.cfg.RetryCap; i++ {
			d <<= 1
		}
	} else {
		// The paper's lossless protocol backs off linearly (§5.1.2);
		// unchanged so the baseline results stay bit-identical.
		d = ep.net.cfg.RetryBase * sim.Time(m.attempts)
	}
	if d > ep.net.cfg.RetryCap {
		d = ep.net.cfg.RetryCap
	}
	ep.eng.AfterEvent(d, msgRetryInject, m, 0)
}

// ReleaseIn frees one incoming flow-control buffer; the NI calls it when it
// has moved an accepted message out of the buffer (into NI memory, main
// memory, or the processor).
//
//lint:hotpath
func (ep *Endpoint) ReleaseIn() {
	ep.inFree++
	if ep.inFree > ep.bufs {
		panic("netsim: ReleaseIn without matching accept")
	}
}

// SwitchBuffer describes a commercial switch/router's internal buffering
// (paper Table 1) — the motivation for NI-side buffering: switches cannot
// hold much.
type SwitchBuffer struct {
	Name      string
	Buffering string
}

// SwitchBufferTable reproduces paper Table 1.
func SwitchBufferTable() []SwitchBuffer {
	return []SwitchBuffer{
		{"Cray T3E router", "105 bytes per non-adaptive virtual channel"},
		{"IBM Vulcan switch (SP2)", "31 bytes + 1 Kbyte buffer pool shared between four ports"},
		{"Myricom M2M switch", "20 bytes"},
		{"SGI Spider/Craylink switch", "256 bytes per virtual channel"},
		{"TMC CM-5 network router", "100 bytes"},
	}
}
