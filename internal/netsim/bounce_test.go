package netsim

import (
	"testing"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

// bounceRun injects one message at a receiver whose single in-buffer is
// held until release, and returns the sender's counters and the accept time
// of the bounced message.
func bounceRun(t *testing.T, cfg Config, release sim.Time) (*stats.Node, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng, cfg, 2, 1)
	st := stats.NewNode()
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	sender.Stats = st
	var acceptedAt []sim.Time
	recv.OnAccept = func(m *Message) { acceptedAt = append(acceptedAt, eng.Now()) }
	// First message occupies the receiver's only in-buffer.
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if len(acceptedAt) != 1 {
		t.Fatal("setup message not accepted")
	}
	// Second message bounces until the buffer is released.
	if !sender.TryAcquireOut() {
		t.Fatal("no credit after first ack")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.After(release, recv.ReleaseIn)
	eng.Run()
	if len(acceptedAt) != 2 {
		t.Fatalf("bounced message never accepted (%d accepts)", len(acceptedAt))
	}
	return st, acceptedAt[1]
}

func TestBounceBackoffRetryOrdering(t *testing.T) {
	st, acceptedAt := bounceRun(t, DefaultConfig(), 5*sim.Microsecond)
	// Every bounce schedules exactly one hardware retry, and the final
	// retry is the accepted injection: counts must match.
	if st.Bounces == 0 || st.Bounces != st.Retries {
		t.Fatalf("bounces=%d retries=%d, want equal and nonzero", st.Bounces, st.Retries)
	}
	// No retry can be accepted before the buffer is released.
	if acceptedAt <= 5*sim.Microsecond {
		t.Fatalf("accepted at %v, before the buffer released", acceptedAt)
	}
}

func TestBounceBackoffGrows(t *testing.T) {
	// With a growing backoff (RetryBase×attempts), retries thin out over a
	// long contention window: strictly fewer attempts than a constant
	// minimum backoff would produce over the same window.
	cfg := DefaultConfig()
	cfg.RetryBase = 100 * sim.Nanosecond
	cfg.RetryCap = 50 * sim.Microsecond // effectively uncapped in the window
	growing, _ := bounceRun(t, cfg, 20*sim.Microsecond)

	capped := cfg
	capped.RetryCap = 100 * sim.Nanosecond // backoff pinned at the base
	constant, _ := bounceRun(t, capped, 20*sim.Microsecond)

	if growing.Retries >= constant.Retries {
		t.Fatalf("growing backoff retried %d times, constant backoff %d — backoff not growing",
			growing.Retries, constant.Retries)
	}
}

func TestBounceBackoffCapHonored(t *testing.T) {
	// A tiny RetryCap bounds the inter-retry gap: over a fixed window the
	// retry count must reach at least window/(cap + round trip), which an
	// uncapped linear backoff cannot.
	cfg := DefaultConfig()
	cfg.RetryBase = 1 * sim.Microsecond
	cfg.RetryCap = 200 * sim.Nanosecond
	st, _ := bounceRun(t, cfg, 20*sim.Microsecond)
	// Round trip ≈ 128ns; cap 200ns → ≥ 50 retries in 20us. Uncapped linear
	// backoff at 1us base would manage at most ~6.
	if st.Retries < 40 {
		t.Fatalf("retries = %d under a 200ns cap, want >= 40 (cap not honored)", st.Retries)
	}
}

func TestSoftwareRetryUnderContention(t *testing.T) {
	// The OnBounce variant: software owns the retry. With the receiver's
	// single buffer held, the bounced message parks in the software queue;
	// after release, a re-push delivers it.
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig(), 2, 1)
	st := stats.NewNode()
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	sender.Stats = st
	var queue []*Message
	sender.OnBounce = func(m *Message) { queue = append(queue, m) }
	delivered := 0
	recv.OnAccept = func(m *Message) { delivered++ }
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if delivered != 1 {
		t.Fatal("setup message not accepted")
	}
	if !sender.TryAcquireOut() {
		t.Fatal("no credit after first ack")
	}
	m2 := NewSized(0, 1, 0, 8)
	eng.After(0, func() { sender.Inject(m2) })
	eng.Run()
	if len(queue) != 1 || queue[0] != m2 {
		t.Fatalf("software bounce queue = %v", queue)
	}
	if st.Retries != 0 {
		t.Fatal("hardware retry ran despite OnBounce")
	}
	// Software services the queue after the receiver frees its buffer; the
	// bounced message still holds its outgoing buffer across the re-push.
	if sender.OutFree() != 0 {
		t.Fatalf("bounced message released its out buffer early: %d free", sender.OutFree())
	}
	recv.ReleaseIn()
	eng.After(0, func() { sender.Inject(queue[0]) })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("re-pushed message never accepted (delivered=%d)", delivered)
	}
	if sender.OutFree() != 1 {
		t.Fatalf("out buffer not freed after re-push ack: %d free", sender.OutFree())
	}
}
