package netsim

import (
	"bytes"
	"strings"
	"testing"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

// scriptPlane is a FaultPlane whose decisions are supplied by the test.
type scriptPlane struct {
	inject func(now sim.Time, m *Message) FaultVerdict
	eject  func(now sim.Time, m *Message) FaultVerdict
	ctl    func(now sim.Time, kind ControlKind, m *Message) bool
}

func (p *scriptPlane) Inject(now sim.Time, m *Message) FaultVerdict {
	if p.inject == nil {
		return FaultVerdict{}
	}
	return p.inject(now, m)
}

func (p *scriptPlane) Eject(now sim.Time, m *Message) FaultVerdict {
	if p.eject == nil {
		return FaultVerdict{}
	}
	return p.eject(now, m)
}

func (p *scriptPlane) DropControl(now sim.Time, kind ControlKind, m *Message) bool {
	return p.ctl != nil && p.ctl(now, kind, m)
}

func testReliability() ReliabilityConfig {
	return ReliabilityConfig{
		Enabled:     true,
		AckTimeout:  1 * sim.Microsecond,
		TimeoutCap:  8 * sim.Microsecond,
		MaxAttempts: 3,
	}
}

func newReliableNet(n, bufs int) (*sim.Engine, *Network) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Reliability = testReliability()
	return eng, New(eng, cfg, n, bufs)
}

func TestSerializationCeiling(t *testing.T) {
	// A partial trailing word still costs a full link cycle: at 2 bytes/ns,
	// a 9-byte wire message serializes in ceil(9/2) = 5 ns, not 4.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BytesPerNS = 2
	nw := New(eng, cfg, 2, 4)
	var arrived sim.Time
	nw.Endpoint(1).OnAccept = func(m *Message) {
		arrived = eng.Now()
		nw.Endpoint(1).ReleaseIn()
	}
	if !nw.Endpoint(0).TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { nw.Endpoint(0).Inject(NewSized(0, 1, 0, 1)) }) // 9B wire
	eng.Run()
	// 5ns inject + 40ns latency + 5ns eject = 50ns.
	if arrived != 50*sim.Nanosecond {
		t.Fatalf("arrival at %v, want 50ns", arrived)
	}
}

func TestDropThenRetransmitRecovers(t *testing.T) {
	eng, nw := newReliableNet(2, 4)
	st := stats.NewNode()
	sender := nw.Endpoint(0)
	sender.Stats = st
	drops := 0
	sender.Fault = &scriptPlane{inject: func(now sim.Time, m *Message) FaultVerdict {
		if drops == 0 {
			drops++
			return FaultVerdict{Drop: true}
		}
		return FaultVerdict{}
	}}
	delivered := 0
	nw.Endpoint(1).OnAccept = func(m *Message) {
		delivered++
		nw.Endpoint(1).ReleaseIn()
	}
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if st.FaultDrops != 1 || st.Retransmits != 1 {
		t.Fatalf("drops=%d retransmits=%d, want 1/1", st.FaultDrops, st.Retransmits)
	}
	if sender.OutFree() != 4 {
		t.Fatalf("out buffer not freed after recovery: %d/4", sender.OutFree())
	}
	if len(nw.Failures()) != 0 {
		t.Fatalf("unexpected delivery failures: %v", nw.Failures())
	}
}

func TestAckLossCausesDuplicateButSingleRelease(t *testing.T) {
	eng, nw := newReliableNet(2, 4)
	sendStats, recvStats := stats.NewNode(), stats.NewNode()
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	sender.Stats = sendStats
	recv.Stats = recvStats
	ackDrops := 0
	recv.Fault = &scriptPlane{ctl: func(now sim.Time, kind ControlKind, m *Message) bool {
		if kind == AckControl && ackDrops == 0 {
			ackDrops++
			return true
		}
		return false
	}}
	delivered := 0
	recv.OnAccept = func(m *Message) {
		delivered++
		recv.ReleaseIn()
	}
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	// The first copy is accepted but its ack is destroyed; the timeout
	// retransmits, the second copy is accepted and acked. The receiver saw
	// the message twice; the sender's buffer is released exactly once.
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (original + retransmission)", delivered)
	}
	if recvStats.CtlDrops != 1 || sendStats.Retransmits != 1 {
		t.Fatalf("ctlDrops=%d retransmits=%d, want 1/1", recvStats.CtlDrops, sendStats.Retransmits)
	}
	if sender.OutFree() != 4 {
		t.Fatalf("out free = %d, want 4 (single release, no surplus credit)", sender.OutFree())
	}
}

func TestCorruptionDetectedAndRetransmitted(t *testing.T) {
	eng, nw := newReliableNet(2, 4)
	sendStats, recvStats := stats.NewNode(), stats.NewNode()
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	sender.Stats = sendStats
	recv.Stats = recvStats
	corruptions := 0
	sender.Fault = &scriptPlane{inject: func(now sim.Time, m *Message) FaultVerdict {
		if corruptions == 0 {
			corruptions++
			return FaultVerdict{Corrupt: true}
		}
		return FaultVerdict{}
	}}
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	var got *Message
	recv.OnAccept = func(m *Message) {
		got = m
		recv.ReleaseIn()
	}
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	m := NewMessage(0, 1, 0, payload)
	eng.After(0, func() { sender.Inject(m) })
	eng.Run()
	if got == nil {
		t.Fatal("message never delivered")
	}
	if !bytes.Equal(got.Payload, []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Fatalf("delivered payload %x corrupted", got.Payload)
	}
	if !bytes.Equal(m.Payload, []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Fatalf("sender's retransmission buffer %x was corrupted in place", m.Payload)
	}
	if recvStats.CorruptDropped != 1 {
		t.Fatalf("corruptDropped = %d, want 1", recvStats.CorruptDropped)
	}
	if sendStats.FaultCorruptions != 1 || sendStats.Retransmits != 1 {
		t.Fatalf("corruptions=%d retransmits=%d, want 1/1",
			sendStats.FaultCorruptions, sendStats.Retransmits)
	}
}

func TestChecksumCoversHeaderAndPayload(t *testing.T) {
	m := NewMessage(0, 1, 3, []byte{1, 2, 3})
	m.Seq = 7
	m.SealChecksum()
	if !m.ChecksumOK() {
		t.Fatal("fresh checksum does not verify")
	}
	m.Payload[1] ^= 0x10
	if m.ChecksumOK() {
		t.Fatal("payload bit flip not detected")
	}
	m.Payload[1] ^= 0x10
	m.Handler = 4
	if m.ChecksumOK() {
		t.Fatal("header field change not detected")
	}
	m.Handler = 3
	if !m.ChecksumOK() {
		t.Fatal("restored message does not verify")
	}
	c := m.corruptedCopy(13)
	if c.ChecksumOK() {
		t.Fatal("corrupted copy verifies")
	}
	if !m.ChecksumOK() || !bytes.Equal(m.Payload, []byte{1, 2, 3}) {
		t.Fatal("corruptedCopy mutated the original")
	}
}

func TestMaxAttemptsSurfacesDeliveryError(t *testing.T) {
	eng, nw := newReliableNet(2, 4)
	st := stats.NewNode()
	sender := nw.Endpoint(0)
	sender.Stats = st
	sender.Fault = &scriptPlane{inject: func(now sim.Time, m *Message) FaultVerdict {
		return FaultVerdict{Drop: true} // black hole: nothing ever arrives
	}}
	var gotErr *DeliveryError
	sender.OnDeliveryError = func(err *DeliveryError) { gotErr = err }
	nw.Endpoint(1).OnAccept = func(m *Message) { t.Error("black-holed message arrived") }
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run() // must terminate: the bounded attempt count abandons the send
	if gotErr == nil {
		t.Fatal("OnDeliveryError never invoked")
	}
	// MaxAttempts=3 bounds retransmissions: 1 original + 3 retransmits.
	if gotErr.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", gotErr.Attempts)
	}
	if len(nw.Failures()) != 1 || nw.Failures()[0] != gotErr {
		t.Fatalf("network failure log = %v", nw.Failures())
	}
	if st.DeliveryFailures != 1 || st.Retransmits != 3 {
		t.Fatalf("failures=%d retransmits=%d, want 1/3", st.DeliveryFailures, st.Retransmits)
	}
	if sender.OutFree() != 4 {
		t.Fatalf("abandoned send leaked its out buffer: %d/4", sender.OutFree())
	}
	if !strings.Contains(gotErr.Error(), "undeliverable after 4 attempts") {
		t.Fatalf("error text %q", gotErr.Error())
	}
}

func TestBouncesDoNotCountTowardRetransmissionBudget(t *testing.T) {
	// With one receive buffer held, a reliable send bounces far more times
	// than MaxAttempts allows retransmissions — and must NOT be abandoned:
	// a bounce is flow control, not loss.
	eng, nw := newReliableNet(2, 1)
	st := stats.NewNode()
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	sender.Stats = st
	delivered := 0
	recv.OnAccept = func(m *Message) { delivered++ } // hold the in-buffer
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if delivered != 1 {
		t.Fatal("setup message not accepted")
	}
	// Second message bounces against the held buffer for 20us — dozens of
	// hardware retries with the 150ns-base backoff — before release.
	if !sender.TryAcquireOut() {
		t.Fatal("no credit after first ack")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.After(20*sim.Microsecond, recv.ReleaseIn)
	eng.Run()
	if delivered != 2 {
		t.Fatalf("second message never accepted (delivered=%d)", delivered)
	}
	if st.Bounces <= 3 {
		t.Fatalf("bounces = %d, want far more than MaxAttempts=3", st.Bounces)
	}
	if len(nw.Failures()) != 0 || st.DeliveryFailures != 0 {
		t.Fatalf("contended send falsely abandoned: %v", nw.Failures())
	}
}

func TestStaleBounceOfAckedMessageIsDiscarded(t *testing.T) {
	// A duplicated copy can bounce after the original was accepted and
	// acked; the settled send must not be re-pushed.
	eng, nw := newReliableNet(2, 1)
	sender, recv := nw.Endpoint(0), nw.Endpoint(1)
	st := stats.NewNode()
	sender.Stats = st
	sender.Fault = &scriptPlane{inject: func(now sim.Time, m *Message) FaultVerdict {
		return FaultVerdict{Duplicate: true}
	}}
	delivered := 0
	recv.OnAccept = func(m *Message) { delivered++ } // hold: the duplicate bounces
	if !sender.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { sender.Inject(NewSized(0, 1, 0, 8)) })
	eng.After(5*sim.Microsecond, recv.ReleaseIn)
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (duplicate bounced against held buffer)", delivered)
	}
	if st.Retries != 0 {
		t.Fatalf("stale bounce of an acked send was retried %d times", st.Retries)
	}
	if sender.OutFree() != 1 {
		t.Fatalf("out free = %d, want 1", sender.OutFree())
	}
}

func TestQuiescenceReportNamesHeldEndpoints(t *testing.T) {
	eng, nw := newReliableNet(3, 2)
	if !nw.Endpoint(0).TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	_ = eng
	r := nw.QuiescenceReport()
	if !strings.Contains(r, "endpoint 0") || !strings.Contains(r, "outFree 1/2") {
		t.Fatalf("report does not name the holding endpoint:\n%s", r)
	}
	if strings.Contains(r, "endpoint 1") || strings.Contains(r, "endpoint 2") {
		t.Fatalf("report names quiescent endpoints:\n%s", r)
	}
	nw.Endpoint(0).releaseOut()
	if r := nw.QuiescenceReport(); r != "" {
		t.Fatalf("quiescent network reports %q", r)
	}
}

func TestReleaseOutIgnoresSurplusCredits(t *testing.T) {
	_, nw := newNet(2, 2)
	ep := nw.Endpoint(0)
	fired := 0
	ep.OnOutFree = func() { fired++ }
	ep.releaseOut() // nothing held: surplus, must be ignored
	if ep.OutFree() != 2 {
		t.Fatalf("surplus credit accepted: outFree=%d", ep.OutFree())
	}
}
