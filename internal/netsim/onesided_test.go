package netsim

import (
	"testing"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

// oneSidedRig is a two-node network with node 1's one-sided hooks wired to
// counters. Data-path hooks (OnAccept) are installed too so a mis-routed
// frame fails loudly rather than panicking on a nil hook.
type oneSidedRig struct {
	eng      *sim.Engine
	nw       *Network
	puts     []*Message
	gets     []*Message
	settled  []*Message
	accepted int
	st       [2]*stats.Node
}

func newOneSidedRig(t *testing.T, cfg Config) *oneSidedRig {
	t.Helper()
	r := &oneSidedRig{eng: sim.NewEngine()}
	r.nw = New(r.eng, cfg, 2, 2)
	for i := 0; i < 2; i++ {
		r.st[i] = stats.NewNode()
		ep := r.nw.Endpoint(i)
		ep.Stats = r.st[i]
		ep.OnAccept = func(m *Message) { r.accepted++; ep.ReleaseIn() }
	}
	recv := r.nw.Endpoint(1)
	recv.OnPut = func(m *Message) { r.puts = append(r.puts, m) }
	recv.OnGet = func(m *Message) { r.gets = append(r.gets, m) }
	r.nw.Endpoint(0).OnSettled = func(m *Message) { r.settled = append(r.settled, m) }
	return r
}

// TestOneSidedPutBypassesBuffers pins the core Put contract on the lossless
// network: the frame lands in OnPut without consuming a flow-control buffer
// on either side, never touches the accept/bounce path, and counts toward
// the watchdog's delivered total.
func TestOneSidedPutBypassesBuffers(t *testing.T) {
	r := newOneSidedRig(t, DefaultConfig())
	send := r.nw.Endpoint(0)
	recv := r.nw.Endpoint(1)
	// An admission gate that refuses everything: one-sided traffic must not
	// consult it.
	recv.Admit = func(m *Message) AdmitDecision { return AdmitDrop }

	m := NewSized(0, 1, 0, 64)
	r.eng.After(0, func() { send.Put(m) })
	r.eng.Run()

	if len(r.puts) != 1 || r.puts[0] != m {
		t.Fatalf("OnPut saw %d frames, want the injected put", len(r.puts))
	}
	if !m.IsPut() || m.IsGet() {
		t.Errorf("delivered frame kind: IsPut=%v IsGet=%v, want put", m.IsPut(), m.IsGet())
	}
	if r.accepted != 0 {
		t.Errorf("put frame entered the two-sided accept path (%d accepts)", r.accepted)
	}
	if send.OutFree() != send.Buffers() || recv.InFree() != recv.Buffers() {
		t.Errorf("one-sided transfer consumed flow-control buffers: out %d/%d in %d/%d",
			send.OutFree(), send.Buffers(), recv.InFree(), recv.Buffers())
	}
	if got := r.nw.Delivered(); got != 1 {
		t.Errorf("Delivered() = %d, want 1", got)
	}
	if r.st[1].AdmitDrops != 0 {
		t.Errorf("admission control refused a one-sided frame (%d drops)", r.st[1].AdmitDrops)
	}
	if m.ArriveTime == 0 {
		t.Error("ArriveTime not stamped on one-sided delivery")
	}
}

// TestOneSidedGetDelivery pins Get: the request lands in OnGet carrying its
// Arg metadata (the requester's transfer descriptor).
func TestOneSidedGetDelivery(t *testing.T) {
	r := newOneSidedRig(t, DefaultConfig())
	g := NewSized(0, 1, 0, 0)
	g.Arg = 0xabcd<<32 | 512
	r.eng.After(0, func() { r.nw.Endpoint(0).Get(g) })
	r.eng.Run()
	if len(r.gets) != 1 || r.gets[0].Arg != g.Arg {
		t.Fatalf("OnGet saw %d requests, want 1 carrying arg %#x", len(r.gets), g.Arg)
	}
	if !g.IsGet() {
		t.Error("delivered request does not report IsGet")
	}
}

// relCfg is the reliability configuration the one-sided tests run under.
func relCfg() Config {
	cfg := DefaultConfig()
	cfg.Reliability = ReliabilityConfig{
		Enabled: true, AckTimeout: 2 * sim.Microsecond,
		TimeoutCap: 16 * sim.Microsecond, MaxAttempts: 4,
	}
	return cfg
}

// TestOneSidedReliableSettle pins the reliable one-sided lifecycle: the ack
// settles the frame through OnSettled (no outgoing buffer was held, so no
// credit is released), and Recycle readies the message for a fresh send
// with a new sequence number.
func TestOneSidedReliableSettle(t *testing.T) {
	r := newOneSidedRig(t, relCfg())
	send := r.nw.Endpoint(0)
	m := NewSized(0, 1, 0, 64)
	r.eng.After(0, func() { send.Put(m) })
	r.eng.Run()

	if len(r.settled) != 1 || r.settled[0] != m {
		t.Fatalf("OnSettled saw %d frames, want the acked put", len(r.settled))
	}
	if send.OutFree() != send.Buffers() {
		t.Errorf("ack of a one-sided send changed outgoing credits: %d/%d", send.OutFree(), send.Buffers())
	}
	if rep := r.nw.QuiescenceReport(); rep != "" {
		t.Errorf("network not quiescent after settle:\n%s", rep)
	}
	firstSeq := m.Seq
	if firstSeq == 0 {
		t.Fatal("reliable put was never assigned a sequence number")
	}

	// Reuse the frame: Recycle must clear the reliability identity so the
	// second send is a new message, not a retransmission of the old one.
	m.Recycle()
	if m.IsPut() || m.Seq != 0 {
		t.Fatalf("Recycle left state behind: IsPut=%v Seq=%d", m.IsPut(), m.Seq)
	}
	r.eng.After(0, func() { send.Put(m) })
	r.eng.Run()
	if m.Seq == firstSeq || m.Seq == 0 {
		t.Errorf("recycled frame reused sequence number %d", m.Seq)
	}
	if len(r.puts) != 2 || len(r.settled) != 2 {
		t.Errorf("recycled send: %d puts, %d settles, want 2 and 2", len(r.puts), len(r.settled))
	}
}

// lossPlane drops or corrupts the first n injections, then passes traffic.
type lossPlane struct {
	n       int
	verdict FaultVerdict
	seen    int
}

func (p *lossPlane) Inject(now sim.Time, m *Message) FaultVerdict {
	p.seen++
	if p.seen <= p.n {
		return p.verdict
	}
	return FaultVerdict{}
}
func (p *lossPlane) Eject(now sim.Time, m *Message) FaultVerdict { return FaultVerdict{} }
func (p *lossPlane) DropControl(now sim.Time, kind ControlKind, m *Message) bool {
	return false
}

// TestOneSidedFaultRecovery drives a put through each fault verdict that
// destroys the frame in flight — drop, corruption (killed at the checksum
// gate), and forced bounce (degraded to a drop: one-sided frames cannot
// bounce) — and checks the retransmission timer lands it exactly once.
func TestOneSidedFaultRecovery(t *testing.T) {
	cases := []struct {
		name    string
		verdict FaultVerdict
		check   func(t *testing.T, st *stats.Node)
	}{
		{"drop", FaultVerdict{Drop: true}, func(t *testing.T, st *stats.Node) {
			if st.FaultDrops != 1 {
				t.Errorf("FaultDrops = %d, want 1", st.FaultDrops)
			}
		}},
		{"force-bounce", FaultVerdict{ForceBounce: true}, func(t *testing.T, st *stats.Node) {
			if st.FaultDrops != 1 {
				t.Errorf("forced bounce of a put should degrade to a drop: FaultDrops = %d", st.FaultDrops)
			}
			if st.ForcedBounces != 0 || st.Bounces != 0 {
				t.Errorf("one-sided frame bounced: forced=%d bounces=%d", st.ForcedBounces, st.Bounces)
			}
		}},
		{"corrupt", FaultVerdict{Corrupt: true}, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := newOneSidedRig(t, relCfg())
			send := r.nw.Endpoint(0)
			send.Fault = &lossPlane{n: 1, verdict: tc.verdict}
			m := NewMessage(0, 1, 0, []byte{1, 2, 3, 4})
			r.eng.After(0, func() { send.Put(m) })
			r.eng.Run()
			if len(r.puts) != 1 {
				t.Fatalf("put delivered %d times through the fault, want exactly 1", len(r.puts))
			}
			if len(r.settled) != 1 {
				t.Fatalf("put settled %d times, want 1", len(r.settled))
			}
			if r.st[0].Retransmits == 0 {
				t.Error("recovery never retransmitted")
			}
			if tc.check != nil {
				tc.check(t, r.st[0])
			}
			if rep := r.nw.QuiescenceReport(); rep != "" {
				t.Errorf("network not quiescent after recovery:\n%s", rep)
			}
		})
	}
}

// TestOneSidedAbandon exhausts the retransmission budget on a put that is
// always dropped: the send must surface a DeliveryError and settle through
// OnSettled so the sender's engine can reclaim the frame.
func TestOneSidedAbandon(t *testing.T) {
	r := newOneSidedRig(t, relCfg())
	send := r.nw.Endpoint(0)
	send.Fault = &lossPlane{n: 1 << 30, verdict: FaultVerdict{Drop: true}}
	failures := 0
	send.OnDeliveryError = func(err *DeliveryError) { failures++ }
	m := NewSized(0, 1, 0, 64)
	r.eng.After(0, func() { send.Put(m) })
	r.eng.Run()

	if len(r.puts) != 0 {
		t.Fatalf("put delivered %d times through a total loss plane", len(r.puts))
	}
	if failures != 1 || len(r.nw.Failures()) != 1 {
		t.Fatalf("abandon surfaced %d delivery errors (%d recorded), want 1", failures, len(r.nw.Failures()))
	}
	if len(r.settled) != 1 || r.settled[0] != m {
		t.Fatalf("abandoned put settled %d times, want 1", len(r.settled))
	}
	if send.OutFree() != send.Buffers() {
		t.Errorf("abandoning a one-sided send changed outgoing credits: %d/%d", send.OutFree(), send.Buffers())
	}
	if rep := r.nw.QuiescenceReport(); rep != "" {
		t.Errorf("network not quiescent after abandon:\n%s", rep)
	}
}

// TestOneSidedWireRoundTrip pins the put/get wire flags: the one-sided kind
// survives encode/decode, and a frame claiming both kinds is rejected.
func TestOneSidedWireRoundTrip(t *testing.T) {
	put := NewMessage(0, 1, 0, []byte{9, 9, 9})
	put.oneSided = oneSidedPut
	put.SealChecksum()
	get := NewSized(1, 0, 0, 0)
	get.Arg = 4096
	get.oneSided = oneSidedGet
	get.SealChecksum()

	for _, m := range []*Message{put, get} {
		w, err := m.AppendWire(nil)
		if err != nil {
			t.Fatalf("AppendWire: %v", err)
		}
		got, err := ParseWire(w)
		if err != nil {
			t.Fatalf("ParseWire: %v", err)
		}
		if got.IsPut() != m.IsPut() || got.IsGet() != m.IsGet() {
			t.Errorf("one-sided kind lost on the wire: got put=%v get=%v want put=%v get=%v",
				got.IsPut(), got.IsGet(), m.IsPut(), m.IsGet())
		}
		if !got.ChecksumOK() {
			t.Error("one-sided frame fails checksum after round trip")
		}
		// Truncation after the header must still be rejected for one-sided
		// frames with payload bytes.
		if m.Payload != nil {
			if _, err := ParseWire(w[:len(w)-1]); err == nil {
				t.Error("ParseWire accepted a truncated put frame")
			}
		}
	}

	w, err := put.AppendWire(nil)
	if err != nil {
		t.Fatalf("AppendWire: %v", err)
	}
	w[1] |= flagGet // now claims both put and get
	if _, err := ParseWire(w); err == nil {
		t.Error("ParseWire accepted a frame flagged as both put and get")
	}
}
