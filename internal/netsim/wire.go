package netsim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for a Message, used when a run's traffic is captured or
// replayed outside the simulator. Little-endian, fixed header followed by
// optional payload bytes:
//
//	offset  size  field
//	0       1     version (wireVersion)
//	1       1     flags (bit 0: payload bytes follow; bit 1: corrupted synthetic
//	              payload; bit 2: one-sided put frame; bit 3: one-sided get request)
//	2       4     src
//	6       4     dst
//	10      4     handler
//	14      4     channel
//	18      4     payload length in bytes
//	22      8     arg
//	30      8     seq
//	38      4     checksum
//	42      n     payload (present only with flagPayload; n = payload length)
//
// Synthetic messages (Payload == nil, PayloadLen alone defining the size)
// encode the length without bytes, exactly mirroring the in-memory model.
const (
	wireVersion     = 1
	wireHeaderBytes = 42
	flagPayload     = 1 << 0
	// flagCorrupt carries the corrupt marker of a synthetic-payload message
	// (no real bytes to flip, see corruptedCopy). Without it a captured
	// corrupted frame would re-parse as pristine and pass its checksum —
	// a fault-plane round trip must preserve ChecksumOK's verdict.
	flagCorrupt = 1 << 1
	// flagPut and flagGet carry the one-sided kind (Endpoint.Put/Get).
	// Mutually exclusive; losing either would relaunder an RDMA frame into a
	// two-sided send that bounces and consults admission control on replay.
	flagPut = 1 << 2
	flagGet = 1 << 3
)

// AppendWire appends m's wire encoding to dst and returns the extended
// slice. Fields that cannot survive the wire's 32-bit representation —
// the integer-truncation class of bug fixed in the PR 1 serialization-time
// ceiling — are a hard error, never a silent wraparound.
func (m *Message) AppendWire(dst []byte) ([]byte, error) {
	for _, f := range [...]struct {
		name string
		v    int
	}{
		{"Src", m.Src}, {"Dst", m.Dst}, {"Handler", m.Handler},
		{"Channel", m.Channel}, {"PayloadLen", m.PayloadLen},
	} {
		if f.v < 0 || f.v > math.MaxInt32 {
			return nil, fmt.Errorf("netsim: %s %d does not fit the wire format", f.name, f.v)
		}
	}
	if m.Payload != nil && len(m.Payload) != m.PayloadLen {
		return nil, fmt.Errorf("netsim: PayloadLen %d disagrees with %d payload bytes", m.PayloadLen, len(m.Payload))
	}
	var flags byte
	if m.Payload != nil {
		flags |= flagPayload
	}
	if m.corrupt {
		flags |= flagCorrupt
	}
	switch m.oneSided {
	case oneSidedPut:
		flags |= flagPut
	case oneSidedGet:
		flags |= flagGet
	}
	dst = append(dst, wireVersion, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Dst))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Handler))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Channel))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.PayloadLen))
	dst = binary.LittleEndian.AppendUint64(dst, m.Arg)
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, m.Checksum)
	dst = append(dst, m.Payload...)
	return dst, nil
}

// ParseWire decodes one wire-encoded message. The whole buffer must be
// consumed: trailing bytes are an error, as is a payload length that does
// not match the bytes present.
func ParseWire(b []byte) (*Message, error) {
	if len(b) < wireHeaderBytes {
		return nil, fmt.Errorf("netsim: wire message truncated: %d bytes, header needs %d", len(b), wireHeaderBytes)
	}
	if b[0] != wireVersion {
		return nil, fmt.Errorf("netsim: unknown wire version %d", b[0])
	}
	flags := b[1]
	if flags&^byte(flagPayload|flagCorrupt|flagPut|flagGet) != 0 {
		return nil, fmt.Errorf("netsim: unknown wire flags %#x", flags)
	}
	if flags&flagPut != 0 && flags&flagGet != 0 {
		return nil, fmt.Errorf("netsim: wire flags %#x claim both put and get", flags)
	}
	m := &Message{
		Src:        int(int32(binary.LittleEndian.Uint32(b[2:]))),
		Dst:        int(int32(binary.LittleEndian.Uint32(b[6:]))),
		Handler:    int(int32(binary.LittleEndian.Uint32(b[10:]))),
		Channel:    int(int32(binary.LittleEndian.Uint32(b[14:]))),
		PayloadLen: int(int32(binary.LittleEndian.Uint32(b[18:]))),
		Arg:        binary.LittleEndian.Uint64(b[22:]),
		Seq:        binary.LittleEndian.Uint64(b[30:]),
		Checksum:   binary.LittleEndian.Uint32(b[38:]),
		corrupt:    flags&flagCorrupt != 0,
	}
	switch {
	case flags&flagPut != 0:
		m.oneSided = oneSidedPut
	case flags&flagGet != 0:
		m.oneSided = oneSidedGet
	}
	for _, f := range [...]struct {
		name string
		v    int
	}{
		{"Src", m.Src}, {"Dst", m.Dst}, {"Handler", m.Handler},
		{"Channel", m.Channel}, {"PayloadLen", m.PayloadLen},
	} {
		if f.v < 0 {
			return nil, fmt.Errorf("netsim: negative %s %d on the wire", f.name, f.v)
		}
	}
	rest := b[wireHeaderBytes:]
	if flags&flagPayload != 0 {
		if len(rest) != m.PayloadLen {
			return nil, fmt.Errorf("netsim: payload length %d disagrees with %d bytes on the wire", m.PayloadLen, len(rest))
		}
		// Copy so the message does not alias the caller's buffer.
		m.Payload = append([]byte(nil), rest...)
	} else if len(rest) != 0 {
		return nil, fmt.Errorf("netsim: %d trailing bytes after synthetic message", len(rest))
	}
	return m, nil
}
