// Fault plane and reliable delivery. The paper's network (§5.1.2) is
// lossless: a message is either accepted or bounced on a guaranteed second
// channel, and the ack/bounce always arrives. This file makes loss a
// first-class condition — an injectable FaultPlane at the inject/eject
// points — and layers end-to-end reliability on top of the return-to-sender
// protocol: a checksum over header+payload, sender-side retransmission
// timers with exponential backoff (generalizing the bounce-retry path),
// and a bounded attempt count that surfaces a structured DeliveryError
// instead of hanging the simulation.
package netsim

import (
	"fmt"
	"sort"
	"strings"

	"nisim/internal/sim"
)

// FaultVerdict is a fault plane's decision about one message transit.
// The zero value is "no fault". Drop and ForceBounce are exclusive of the
// remaining fields (a destroyed or returned message is neither corrupted,
// duplicated, nor delayed).
type FaultVerdict struct {
	// Drop destroys the message in flight: it consumes link bandwidth but
	// never arrives.
	Drop bool
	// Corrupt delivers a bit-flipped copy; the original (the sender's
	// retransmission buffer) is untouched.
	Corrupt bool
	// Duplicate delivers the message twice, the copies back to back.
	Duplicate bool
	// Delay adds extra delivery latency (jitter) on top of the network's
	// configured latency.
	Delay sim.Time
	// ForceBounce returns the message to its sender as if the receiver had
	// no free incoming buffer, regardless of actual buffer state.
	ForceBounce bool
}

// ControlKind distinguishes the control messages of the return-to-sender
// protocol for fault purposes.
//
//lint:enum
type ControlKind int

const (
	// AckControl is the acknowledgment freeing the sender's outgoing buffer.
	AckControl ControlKind = iota
	// BounceControl is the returned message on the second network.
	BounceControl
)

// FaultPlane injects faults at an endpoint's inject and eject points.
// A nil plane is the lossless network: behavior is bit-identical to a
// build without fault hooks. Implementations must be deterministic given
// the engine's deterministic event order (see internal/faults).
type FaultPlane interface {
	// Inject is consulted when src injects m toward its destination.
	Inject(now sim.Time, m *Message) FaultVerdict
	// Eject is consulted when m reaches its destination, before ejection.
	// Only Drop and Delay are honored at the eject point.
	Eject(now sim.Time, m *Message) FaultVerdict
	// DropControl is consulted when the receiver emits an ack or bounce for
	// m; true destroys the control message.
	DropControl(now sim.Time, kind ControlKind, m *Message) bool
}

// ReliabilityConfig configures the end-to-end reliable-delivery layer.
// The zero value disables it, preserving the paper's lossless protocol.
type ReliabilityConfig struct {
	Enabled bool
	// AckTimeout is the base retransmission timeout: attempt k re-injects
	// after AckTimeout<<(k-1), capped at TimeoutCap. It must exceed the
	// uncongested round trip or every send retransmits spuriously.
	AckTimeout sim.Time
	TimeoutCap sim.Time
	// MaxAttempts bounds timer-driven retransmissions per message; <= 0
	// means unlimited. Exceeding it abandons the send with a DeliveryError
	// instead of hanging. Bounce retries do not count: a bounce is the
	// receiver's explicit "try again" under flow-control contention, not
	// evidence of loss, and contended messages legitimately bounce dozens
	// of times (§5.1.2).
	MaxAttempts int
	// Deadline, when positive, is a per-message delivery deadline measured
	// from first injection. Unlike MaxAttempts it bounds bounce retries too,
	// so a sustained bounce storm (an overloaded receiver returning every
	// attempt) surfaces a DeliveryError instead of retrying forever. Zero
	// keeps sends open-ended, the pre-overload-plane behavior.
	Deadline sim.Time
}

// DefaultReliability returns a configuration tuned for the Table 3
// network: the base timeout covers the worst uncongested round trip
// (two 256-byte serializations plus two 40 ns latencies plus the ack)
// with ample margin for ejection queueing.
func DefaultReliability() ReliabilityConfig {
	return ReliabilityConfig{
		Enabled:     true,
		AckTimeout:  4 * sim.Microsecond,
		TimeoutCap:  128 * sim.Microsecond,
		MaxAttempts: 32,
	}
}

func (rc ReliabilityConfig) timeout(attempts int) sim.Time {
	d := rc.AckTimeout
	for i := 1; i < attempts && d < rc.TimeoutCap; i++ {
		d <<= 1
	}
	if rc.TimeoutCap > 0 && d > rc.TimeoutCap {
		d = rc.TimeoutCap
	}
	return d
}

// Reasons a reliable send can be abandoned, carried on DeliveryError so
// callers (and test assertions) can tell a retransmission budget blown by
// loss from a deadline blown by sustained overload.
const (
	// ReasonBudget: MaxAttempts timer-driven retransmissions went unacked.
	ReasonBudget = "retry budget exhausted"
	// ReasonDeadline: the per-message Deadline elapsed before delivery —
	// typically a bounce storm from an overloaded receiver.
	ReasonDeadline = "deadline exceeded"
)

// DeliveryError records a send abandoned by the reliability layer after
// exhausting its retransmission budget or missing its deadline.
type DeliveryError struct {
	Msg      *Message
	Attempts int
	// Time is when the send was abandoned.
	Time sim.Time
	// Reason is ReasonBudget or ReasonDeadline.
	Reason string
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("netsim: %v undeliverable after %d attempts (%s at %v)",
		e.Msg, e.Attempts, e.Reason, e.Time)
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnvMix64 folds v into an FNV-1a hash one little-endian byte at a time.
// A standalone function rather than a closure inside checksum: checksum is
// on the reliable-delivery hot path and must not allocate an environment.
func fnvMix64(h uint32, v uint64) uint32 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint32(v&0xFF)) * fnvPrime32
		v >>= 8
	}
	return h
}

// checksum is an FNV-1a hash over the message header fields and payload
// bytes. Synthetic payloads (Payload == nil) hash the length alone; the
// corrupt flag models bit flips in bytes the simulation does not carry.
func (m *Message) checksum() uint32 {
	h := uint32(fnvOffset32)
	h = fnvMix64(h, uint64(m.Src))
	h = fnvMix64(h, uint64(m.Dst))
	h = fnvMix64(h, uint64(m.Handler))
	h = fnvMix64(h, uint64(m.PayloadLen))
	h = fnvMix64(h, uint64(m.Channel))
	h = fnvMix64(h, m.Arg)
	h = fnvMix64(h, m.Seq)
	for _, b := range m.Payload {
		h = (h ^ uint32(b)) * fnvPrime32
	}
	return h
}

// SealChecksum computes and stores the header+payload checksum. The
// reliability layer seals every message at injection.
func (m *Message) SealChecksum() { m.Checksum = m.checksum() }

// ChecksumOK verifies the stored checksum against the message contents.
// A message whose synthetic payload was corrupted in flight (no real bytes
// to flip) fails via the corrupt flag.
func (m *Message) ChecksumOK() bool { return !m.corrupt && m.Checksum == m.checksum() }

// corruptedCopy returns a copy of m carrying a single flipped payload bit
// (chosen by bitPos), leaving the original — the sender's retransmission
// buffer — pristine. When the payload is synthetic the flip is modeled by
// the corrupt flag alone.
//
// Under the reliability layer the payload buffer for the copy is allocated
// once per message and reused across retransmission attempts, instead of a
// fresh copy per corrupted attempt. Reuse is safe there because a corrupted
// copy is always discarded at the destination's checksum gate (the corrupt
// flag short-circuits ChecksumOK), so its payload bytes are never delivered
// and two in-flight copies sharing the buffer cannot be observed. Without
// the reliability layer corrupted copies ARE delivered, so that path keeps
// a private allocation per copy.
func (m *Message) corruptedCopy(bitPos uint64) *Message {
	c := *m
	c.corrupt = true
	c.scratch = nil
	if len(m.Payload) > 0 {
		var p []byte
		if m.net != nil && m.net.cfg.Reliability.Enabled {
			if cap(m.scratch) < len(m.Payload) {
				m.scratch = make([]byte, len(m.Payload)) //lint:allow noalloc once-per-message scratch, reused across every retransmission
			}
			p = m.scratch[:len(m.Payload)]
		} else {
			p = make([]byte, len(m.Payload)) //lint:allow noalloc unreliable delivery hands the corrupted copy to the receiver, so the copy must own its bytes
		}
		copy(p, m.Payload)
		i := int(bitPos/8) % len(p)
		p[i] ^= 1 << (bitPos % 8)
		c.Payload = p
	}
	return &c
}

// SetFaultPlane installs plane on every endpoint (nil restores lossless
// behavior). Per-endpoint planes can instead be set via Endpoint.Fault.
func (nw *Network) SetFaultPlane(plane FaultPlane) {
	for _, ep := range nw.eps {
		ep.Fault = plane
	}
}

// acked handles the acknowledgment for a reliable send: it cancels the
// retransmission timer and frees the outgoing buffer. Duplicate acks (the
// receiver acks every accepted copy of a retransmitted message) are
// ignored — the buffer was already freed. One-sided sends never held an
// outgoing buffer, so their ack settles through OnSettled instead — the
// frame-reuse signal for the sender's RDMA engine.
func (ep *Endpoint) acked(m *Message) {
	t, ok := ep.inflight[m]
	if !ok {
		return
	}
	t.Stop()
	delete(ep.inflight, m)
	if m.oneSided != 0 {
		ep.activity++
		if ep.OnSettled != nil {
			ep.OnSettled(m)
		}
		return
	}
	ep.releaseOut()
}

// armTimer (re)arms the retransmission timer for m after an injection. The
// previous transmission's timer, if still pending, is cancelled outright —
// stale timers no longer linger in the event heap as generation-guarded
// no-ops.
func (ep *Endpoint) armTimer(m *Message) {
	if t, ok := ep.inflight[m]; ok {
		t.Stop()
	}
	d := ep.net.cfg.Reliability.timeout(m.retx + 1)
	ep.inflight[m] = ep.eng.AfterTimer(d, msgAckTimeout, m, 0) //lint:allow noalloc steady-state rewrite of a warm bucket; gated by TestReliableDeliveryPathAllocFree
}

// ackTimeout fires when a reliable send has gone unacknowledged for its
// timeout: it either retransmits or, past MaxAttempts, abandons the send
// with a structured DeliveryError — freeing the outgoing buffer so the
// simulation quiesces instead of hanging. Every settling path (ack, bounce,
// abandon, re-injection) stops the pending timer, so a firing timer always
// refers to a genuinely unacknowledged transmission; the inflight check is
// belt-and-braces for custom OnBounce handlers that drop a send.
func (ep *Endpoint) ackTimeout(m *Message) {
	if _, ok := ep.inflight[m]; !ok {
		return
	}
	rc := ep.net.cfg.Reliability
	if rc.MaxAttempts > 0 && m.retx >= rc.MaxAttempts {
		ep.abandon(m, ReasonBudget)
		return
	}
	if m.deadline > 0 && ep.eng.Now() >= m.deadline {
		ep.abandon(m, ReasonDeadline)
		return
	}
	m.retx++
	if ep.Stats != nil {
		ep.Stats.Retransmits++
	}
	ep.Inject(m)
}

// abandon gives up on a reliable send: the inflight entry is removed, the
// outgoing buffer freed (so the simulation quiesces instead of hanging),
// and a structured DeliveryError recorded. Callers decide the reason.
func (ep *Endpoint) abandon(m *Message, reason string) {
	if t, ok := ep.inflight[m]; ok {
		t.Stop()
		delete(ep.inflight, m)
	}
	if ep.Stats != nil {
		ep.Stats.DeliveryFailures++
	}
	err := &DeliveryError{Msg: m, Attempts: m.attempts, Time: ep.eng.Now(), Reason: reason} //lint:allow noalloc at most one structured error per abandoned message, off the steady-state path
	ep.failures = append(ep.failures, err)                                                 //lint:allow noalloc failure log grows once per abandoned message, not per delivery
	if m.oneSided != 0 {
		// One-sided sends hold no outgoing buffer; settle the frame so the
		// sender's engine can reuse it.
		if ep.OnSettled != nil {
			ep.OnSettled(m)
		}
	} else {
		ep.releaseOut()
	}
	if ep.OnDeliveryError != nil {
		ep.OnDeliveryError(err)
	}
}

// QuiescenceReport implements the engine's quiescence check for the
// network: it names every endpoint still holding flow-control buffers or
// tracking unacknowledged sends. Empty means the network is quiescent.
// netsim registers it with the engine at New; it is also useful directly
// after Engine.Run when a workload appears to have finished early.
func (nw *Network) QuiescenceReport() string {
	body := nw.endpointReport()
	if body == "" {
		return ""
	}
	return "netsim: network not quiescent — a message, ack, or bounce was lost:\n" + body
}

// StarvationReport names the endpoints implicated in sustained-overload
// starvation: traffic keeps churning (activity rises) but nothing is
// delivered. The body is the same per-endpoint buffer/inflight inventory
// as QuiescenceReport; only the diagnosis differs — here the messages are
// not lost, they are being perpetually bounced or retried. Empty means no
// endpoint is holding work.
func (nw *Network) StarvationReport() string {
	body := nw.endpointReport()
	if body == "" {
		return ""
	}
	return "netsim: sustained overload starvation — traffic is churning but nothing is delivered:\n" + body
}

// endpointReport is the shared body of the quiescence and starvation
// diagnostics: one line per endpoint still holding buffers or unacked sends.
func (nw *Network) endpointReport() string {
	var b strings.Builder
	for _, ep := range nw.eps {
		outHeld := ep.bufs - ep.outFree
		inHeld := ep.bufs - ep.inFree
		if outHeld == 0 && inHeld == 0 && len(ep.inflight) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  endpoint %d: outFree %d/%d (%d unacked sends), inFree %d/%d (%d undrained arrivals)",
			ep.id, ep.outFree, ep.bufs, outHeld, ep.inFree, ep.bufs, inHeld)
		if len(ep.inflight) > 0 {
			msgs := make([]*Message, 0, len(ep.inflight))
			for m := range ep.inflight {
				msgs = append(msgs, m)
			}
			sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
			fmt.Fprintf(&b, ", awaiting retransmit/ack:")
			for _, m := range msgs {
				fmt.Fprintf(&b, " %v(seq=%d,attempts=%d)", m, m.Seq, m.attempts)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
