package netsim

import (
	"testing"
	"testing/quick"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

func newNet(n, bufs int) (*sim.Engine, *Network) {
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig(), n, bufs)
}

func TestPointToPointLatency(t *testing.T) {
	eng, nw := newNet(2, 4)
	var arrived sim.Time
	nw.Endpoint(1).OnAccept = func(m *Message) {
		arrived = eng.Now()
		nw.Endpoint(1).ReleaseIn()
	}
	m := NewSized(0, 1, 0, 8) // 16B on the wire
	if !nw.Endpoint(0).TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { nw.Endpoint(0).Inject(m) })
	eng.Run()
	// 16ns injection + 40ns latency + 16ns ejection = 72ns.
	if arrived != 72*sim.Nanosecond {
		t.Fatalf("arrival at %v, want 72ns", arrived)
	}
	if m.ArriveTime != arrived {
		t.Fatalf("ArriveTime = %v, want %v", m.ArriveTime, arrived)
	}
}

func TestAckFreesSenderBuffer(t *testing.T) {
	eng, nw := newNet(2, 1)
	nw.Endpoint(1).OnAccept = func(m *Message) { nw.Endpoint(1).ReleaseIn() }
	ep := nw.Endpoint(0)
	if !ep.TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	if ep.TryAcquireOut() {
		t.Fatal("second acquire should fail with 1 buffer")
	}
	eng.After(0, func() { ep.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if ep.OutFree() != 1 {
		t.Fatalf("out buffer not freed by ack: OutFree=%d", ep.OutFree())
	}
}

func TestBounceAndRetry(t *testing.T) {
	eng, nw := newNet(2, 1)
	st := stats.NewNode()
	nw.Endpoint(0).Stats = st
	recv := nw.Endpoint(1)
	var accepted []sim.Time
	recv.OnAccept = func(m *Message) { accepted = append(accepted, eng.Now()) }
	// Fill the receiver's only in-buffer with a first message that is never
	// released until later.
	if !nw.Endpoint(0).TryAcquireOut() {
		t.Fatal("no out buffer")
	}
	eng.After(0, func() { nw.Endpoint(0).Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if len(accepted) != 1 {
		t.Fatalf("first message not accepted")
	}
	// Second message must bounce (in-buffer still held), then retry and
	// succeed once we release.
	m2 := NewSized(0, 1, 0, 8)
	sent := false
	eng.After(0, func() {
		if nw.Endpoint(0).TryAcquireOut() {
			t.Error("out buffer should still be held? (bufs=1, first acked)")
		}
		_ = sent
	})
	// The first send was acked, so the out buffer is free again.
	if !nw.Endpoint(0).TryAcquireOut() {
		t.Fatal("out buffer should be free after ack")
	}
	eng.After(0, func() { nw.Endpoint(0).Inject(m2) })
	eng.After(500*sim.Nanosecond, func() { recv.ReleaseIn() })
	eng.Run()
	if st.Bounces < 1 {
		t.Fatalf("expected at least one bounce, got %d", st.Bounces)
	}
	if st.Retries < 1 {
		t.Fatalf("expected at least one retry, got %d", st.Retries)
	}
	if len(accepted) != 2 {
		t.Fatalf("second message never accepted: %v", accepted)
	}
}

func TestAcquireOutBlocksProcess(t *testing.T) {
	eng, nw := newNet(2, 1)
	st := stats.NewNode()
	ep := nw.Endpoint(0)
	ep.Stats = st
	release := sim.Time(0)
	nw.Endpoint(1).OnAccept = func(m *Message) { nw.Endpoint(1).ReleaseIn() }
	var acquiredAt sim.Time
	eng.Spawn("sender", func(p *sim.Process) {
		ep.AcquireOut(p)
		ep.Inject(NewSized(0, 1, 0, 8))
		ep.AcquireOut(p) // blocks until the ack frees the buffer
		acquiredAt = p.Now()
		release = p.Now()
	})
	eng.Run()
	if acquiredAt == 0 {
		t.Fatal("second AcquireOut never succeeded")
	}
	// Ack path: 16 inject + 40 + 16 eject + 40 ack = 112ns.
	if acquiredAt != 112*sim.Nanosecond {
		t.Fatalf("buffer freed at %v, want 112ns", acquiredAt)
	}
	if st.SendBlocked != 1 {
		t.Fatalf("SendBlocked = %d, want 1", st.SendBlocked)
	}
	_ = release
}

func TestInjectionSerialization(t *testing.T) {
	eng, nw := newNet(2, 8)
	var arrivals []sim.Time
	nw.Endpoint(1).OnAccept = func(m *Message) {
		arrivals = append(arrivals, eng.Now())
		nw.Endpoint(1).ReleaseIn()
	}
	ep := nw.Endpoint(0)
	eng.After(0, func() {
		for i := 0; i < 3; i++ {
			if !ep.TryAcquireOut() {
				t.Fatal("out of buffers")
			}
			ep.Inject(NewSized(0, 1, 0, 248)) // 256B wire
		}
	})
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d, want 3", len(arrivals))
	}
	// Messages serialize on the link: spacing 256ns.
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i] - arrivals[i-1]; d != 256*sim.Nanosecond {
			t.Fatalf("arrival spacing %v, want 256ns", d)
		}
	}
}

func TestInfiniteBuffers(t *testing.T) {
	eng, nw := newNet(2, Infinite)
	count := 0
	nw.Endpoint(1).OnAccept = func(m *Message) { count++ } // never released
	ep := nw.Endpoint(0)
	eng.After(0, func() {
		for i := 0; i < 1000; i++ {
			if !ep.TryAcquireOut() {
				t.Fatal("infinite buffers exhausted")
			}
			ep.Inject(NewSized(0, 1, 0, 8))
		}
	})
	eng.Run()
	if count != 1000 {
		t.Fatalf("accepted %d, want 1000", count)
	}
}

func TestOnOutFreeCallback(t *testing.T) {
	eng, nw := newNet(2, 1)
	nw.Endpoint(1).OnAccept = func(m *Message) { nw.Endpoint(1).ReleaseIn() }
	ep := nw.Endpoint(0)
	freed := 0
	ep.OnOutFree = func() { freed++ }
	if !ep.TryAcquireOut() {
		t.Fatal("no buffer")
	}
	eng.After(0, func() { ep.Inject(NewSized(0, 1, 0, 8)) })
	eng.Run()
	if freed != 1 {
		t.Fatalf("OnOutFree fired %d times, want 1", freed)
	}
}

func TestOversizeMessagePanics(t *testing.T) {
	eng, nw := newNet(2, 1)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("oversize inject did not panic")
		}
	}()
	ep := nw.Endpoint(0)
	ep.TryAcquireOut()
	ep.Inject(NewSized(0, 1, 0, 4000))
}

// Property: under random send patterns and random release delays, every
// injected message is accepted exactly once (conservation: no loss, no
// duplication), for any buffer count >= 1.
func TestFlowControlConservation(t *testing.T) {
	f := func(seeds []uint8, bufsRaw uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 60 {
			seeds = seeds[:60]
		}
		bufs := int(bufsRaw)%3 + 1
		eng := sim.NewEngine()
		nw := New(eng, DefaultConfig(), 3, bufs)
		accepted := map[*Message]int{}
		for i := 0; i < 3; i++ {
			ep := nw.Endpoint(i)
			ep.OnAccept = func(m *Message) {
				accepted[m]++
				// Random-ish hold time derived from message identity.
				hold := sim.Time(50+int(m.Arg%7)*100) * sim.Nanosecond
				eng.After(hold, ep.ReleaseIn)
			}
		}
		var msgs []*Message
		for i, s := range seeds {
			src := int(s) % 3
			dst := (src + 1 + int(s/3)%2) % 3
			m := NewSized(src, dst, 0, int(s%200))
			m.Arg = uint64(s)
			msgs = append(msgs, m)
			at := sim.Time(i*30) * sim.Nanosecond
			ep := nw.Endpoint(src)
			eng.At(at, func() {
				// Sender process: wait for a buffer via polling retry.
				var try func()
				try = func() {
					if ep.TryAcquireOut() {
						ep.Inject(m)
					} else {
						eng.After(100*sim.Nanosecond, try)
					}
				}
				try()
			})
		}
		eng.Run()
		if len(accepted) != len(msgs) {
			return false
		}
		for _, m := range msgs {
			if accepted[m] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchBufferTable(t *testing.T) {
	tbl := SwitchBufferTable()
	if len(tbl) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(tbl))
	}
	if tbl[4].Name != "TMC CM-5 network router" {
		t.Fatalf("unexpected last row %q", tbl[4].Name)
	}
}

func TestInjectWaitAcquiresAndInjects(t *testing.T) {
	eng, nw := newNet(2, 1)
	got := 0
	nw.Endpoint(1).OnAccept = func(m *Message) { got++; nw.Endpoint(1).ReleaseIn() }
	eng.Spawn("s", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			nw.Endpoint(0).InjectWait(p, NewSized(0, 1, 0, 8))
		}
	})
	eng.Run()
	if got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
}

func TestAcquireOutCountsBlockedOnce(t *testing.T) {
	eng, nw := newNet(2, 1)
	st := stats.NewNode()
	nw.Endpoint(0).Stats = st
	nw.Endpoint(1).OnAccept = func(m *Message) { nw.Endpoint(1).ReleaseIn() }
	eng.Spawn("s", func(p *sim.Process) {
		nw.Endpoint(0).AcquireOut(p)
		nw.Endpoint(0).Inject(NewSized(0, 1, 0, 8))
		nw.Endpoint(0).AcquireOut(p) // must wait for the ack
	})
	eng.Run()
	if st.SendBlocked != 1 {
		t.Fatalf("SendBlocked = %d, want 1", st.SendBlocked)
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, nw := newNet(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	nw.Endpoint(0).TryAcquireOut()
	nw.Endpoint(0).Inject(NewSized(0, 0, 0, 8))
}

func TestWrongSourcePanics(t *testing.T) {
	_, nw := newNet(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched source did not panic")
		}
	}()
	nw.Endpoint(0).TryAcquireOut()
	nw.Endpoint(0).Inject(NewSized(1, 0, 0, 8))
}

func TestReleaseInWithoutAcceptPanics(t *testing.T) {
	_, nw := newNet(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched ReleaseIn did not panic")
		}
	}()
	nw.Endpoint(0).ReleaseIn()
}

func TestOnBounceOverridesHardwareRetry(t *testing.T) {
	eng, nw := newNet(2, 1)
	st := stats.NewNode()
	nw.Endpoint(0).Stats = st
	var bounced []*Message
	nw.Endpoint(0).OnBounce = func(m *Message) { bounced = append(bounced, m) }
	accepted := 0
	nw.Endpoint(1).OnAccept = func(m *Message) { accepted++ } // never released
	eng.After(0, func() {
		nw.Endpoint(0).TryAcquireOut()
		nw.Endpoint(0).Inject(NewSized(0, 1, 0, 8))
	})
	// Fill the single in-buffer first so the second message bounces.
	eng.Run()
	if accepted != 1 {
		t.Fatal("setup failed")
	}
	m2 := NewSized(0, 1, 0, 8)
	// Out buffer still held by the first (unacked) send? The ack only comes
	// on accept; it was accepted, so a credit exists.
	if !nw.Endpoint(0).TryAcquireOut() {
		t.Fatal("no credit after ack")
	}
	eng.After(0, func() { nw.Endpoint(0).Inject(m2) })
	eng.Run()
	if len(bounced) != 1 || bounced[0] != m2 {
		t.Fatalf("OnBounce got %v", bounced)
	}
	if st.Retries != 0 {
		t.Fatal("hardware retry ran despite OnBounce")
	}
	if st.Bounces != 1 {
		t.Fatalf("bounces = %d, want 1", st.Bounces)
	}
}

func TestMessageString(t *testing.T) {
	m := NewSized(0, 1, 3, 40)
	if m.String() == "" || m.Size() != 48 {
		t.Fatalf("String/Size wrong: %q %d", m.String(), m.Size())
	}
	b := NewMessage(0, 1, 2, []byte{1, 2, 3})
	if b.PayloadLen != 3 || b.Size() != 11 {
		t.Fatalf("NewMessage sizes wrong: %d %d", b.PayloadLen, b.Size())
	}
}
