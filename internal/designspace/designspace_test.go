package designspace

import (
	"bytes"
	"strings"
	"testing"

	"nisim/internal/micro"
	"nisim/internal/nic"
	"nisim/internal/sweep"
)

// reducedGrid is a grid small enough for the regression tests: two named
// designs plus two cross-product designs and a one-payload protocol
// crossover (so the determinism regression covers the rendezvous cells),
// minimal iteration counts.
func reducedGrid() GridSpec {
	return GridSpec{
		Specs: []nic.Spec{
			nic.SpecFor(nic.CM5),
			nic.SpecFor(nic.CNI32Qm),
			{Send: nic.UDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing},
			{Send: nic.BlockBufEngine, Recv: nic.UncachedWordEngine, Buffering: nic.FifoVM},
		},
		LatPayload: 64, BwPayload: 256,
		Warmup: 50, Rounds: 10, Msgs: 40,
		CrossoverSpec:     &nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing},
		CrossoverPayloads: []int{2048},
	}
}

// TestStandardGridCoversTheSpace pins the sweep's coverage: all nine named
// designs plus at least 12 cross-product specs, every job buildable.
func TestStandardGridCoversTheSpace(t *testing.T) {
	g := StandardGrid(true)
	named, cross := 0, 0
	for _, s := range g.Specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
		if nic.KindOf(s) != nic.Custom {
			named++
		} else {
			cross++
		}
	}
	if named != len(nic.Kinds()) {
		t.Errorf("grid has %d named designs, want %d", named, len(nic.Kinds()))
	}
	if cross < 12 {
		t.Errorf("grid has %d cross-product designs, want >= 12", cross)
	}
	if got, want := len(g.Jobs()), 2*len(g.Specs)+4*len(g.CrossoverPayloads); got != want {
		t.Errorf("grid has %d jobs, want %d", got, want)
	}
	if g.CrossoverSpec == nil || g.CrossoverSpec.Send != nic.RDMAEngine {
		t.Error("grid's crossover spec must drive the RDMA send engine")
	}
}

// TestCrossoverMeasuresBothProtocols runs the protocol-crossover sub-grid
// on a reduced payload ladder and checks the robust directional claims:
// both protocols deliver, and at the smallest payload the rendezvous
// handshake's extra round trip makes it strictly slower than eager (the
// whole reason a size threshold exists).
func TestCrossoverMeasuresBothProtocols(t *testing.T) {
	g := reducedGrid()
	g.Specs = nil
	g.CrossoverSpec = &nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing}
	g.CrossoverPayloads = []int{256, 4096}

	rows := g.CrossoverRows(sweep.RunSerial(g.Jobs()))
	if len(rows) != 2 {
		t.Fatalf("got %d crossover rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.EagerLatUS <= 0 || r.RdvLatUS <= 0 || r.EagerBandMB <= 0 || r.RdvBandMB <= 0 {
			t.Errorf("payload %d: dead cell: %+v", r.Payload, r)
		}
	}
	if small := rows[0]; small.RdvLatUS <= small.EagerLatUS {
		t.Errorf("at %dB rendezvous (%.2fus) should pay for its handshake vs eager (%.2fus)",
			small.Payload, small.RdvLatUS, small.EagerLatUS)
	}
}

// TestDesignspaceSweepIsDeterministic is the cmd/designspace half of the
// orchestrator determinism regression: a reduced grid swept with eight
// workers must produce byte-identical text and canonical JSON to a serial
// sweep.
func TestDesignspaceSweepIsDeterministic(t *testing.T) {
	g := reducedGrid()

	serial := sweep.Run(sweep.Config{Jobs: 1}, g.Jobs())
	parallel := sweep.Run(sweep.Config{Jobs: 8}, g.Jobs())

	serialText := Format(g.Rows(serial)) + FormatCrossover(g, g.CrossoverRows(serial))
	parallelText := Format(g.Rows(parallel)) + FormatCrossover(g, g.CrossoverRows(parallel))
	if serialText != parallelText {
		t.Errorf("parallel text differs from serial:\nserial:\n%s\nparallel:\n%s", serialText, parallelText)
	}

	serialJSON, err := sweep.NewReport("designspace", 0, sweep.Config{Jobs: 1}, serial, 1).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := sweep.NewReport("designspace", 0, sweep.Config{Jobs: 8}, parallel, 2).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Errorf("parallel canonical JSON differs from serial:\nserial:\n%s\nparallel:\n%s", serialJSON, parallelJSON)
	}
	if !strings.Contains(string(serialJSON), sweep.Schema) {
		t.Errorf("report does not carry schema %q", sweep.Schema)
	}
}

// TestNamedSpecsMatchKindPath: building a machine from a named design's
// Spec must measure identically to building it from the Kind, since both
// construct the same composed NI.
func TestNamedSpecsMatchKindPath(t *testing.T) {
	for _, k := range []nic.Kind{nic.CM5, nic.AP3000, nic.MemoryChannel, nic.CNI32Qm} {
		viaSpec := micro.RoundTripCfg(config(nic.SpecFor(k)), 64, 50, 10)
		viaKind := micro.RoundTrip(k, 8, 64, 50, 10)
		if viaSpec != viaKind {
			t.Errorf("%s: spec path measured %v, kind path %v", k.ShortName(), viaSpec, viaKind)
		}
		if viaSpec <= 0 {
			t.Errorf("%s: non-positive round trip %v", k.ShortName(), viaSpec)
		}
	}
}
