// Package designspace defines the full NI design-space sweep: every valid
// point of the transfer-engine × buffering-policy cross product — the nine
// named designs of the paper plus the cross-product specs it never built —
// measured with the Table 5 microbenchmarks. The grid is the single source
// of truth shared by cmd/designspace and the determinism regression test.
package designspace

import (
	"fmt"
	"sort"
	"strings"

	"nisim/internal/machine"
	"nisim/internal/micro"
	"nisim/internal/msglayer"
	"nisim/internal/nic"
	"nisim/internal/sweep"
)

// GridSpec parameterizes a design-space grid: which specs, which payloads,
// and the iteration counts.
type GridSpec struct {
	Specs []nic.Spec
	// LatPayload and BwPayload are the single payload sizes measured per
	// design point (one latency cell, one bandwidth cell — the full Table 5
	// payload columns over 39 designs would be a 273-cell grid).
	LatPayload, BwPayload int
	// Warmup and Rounds control the latency microbenchmark; Msgs is the
	// bandwidth message count.
	Warmup, Rounds, Msgs int
	// CrossoverSpec, when non-nil, appends the protocol-crossover sub-grid
	// after the design-space jobs: this one design measured at every
	// CrossoverPayloads size once per transfer protocol, with the
	// rendezvous size threshold forced below every measured payload so the
	// cells compare pure-eager against pure-rendezvous transfer. The spec
	// must have an RDMA send engine or the rendezvous cells would silently
	// fall back to eager and measure nothing.
	CrossoverSpec     *nic.Spec
	CrossoverPayloads []int
}

// StandardGrid returns the full design-space grid: the nine named specs
// in Kind order, then every cross-product spec in nic.AllSpecs order.
func StandardGrid(quick bool) GridSpec {
	var specs []nic.Spec
	for _, k := range nic.Kinds() {
		specs = append(specs, nic.SpecFor(k))
	}
	specs = append(specs, nic.CrossSpecs()...)
	g := GridSpec{
		Specs:      specs,
		LatPayload: 64,
		BwPayload:  256,
		Warmup:     600, Rounds: 100, Msgs: 400,
		CrossoverSpec:     &nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing},
		CrossoverPayloads: []int{256, 1024, 4096, 16384},
	}
	if quick {
		g.Warmup, g.Rounds, g.Msgs = 50, 10, 40
	}
	return g
}

// config builds the two-node machine configuration for one design point.
// Like micro.RoundTrip's named-kind path, any design using the UDMA engine
// forces the DMA path for all payloads, so the engine under test is the
// one the spec names.
func config(s nic.Spec) machine.Config {
	cfg := machine.DefaultConfig(nic.KindOf(s), 8)
	spec := s
	cfg.NISpec = &spec
	if s.Send == nic.UDMAEngine || s.Recv == nic.UDMAEngine {
		cfg.NI.UDMAThresholdBytes = 0
	}
	return cfg
}

// protoConfig is config with the messaging layer pinned to one transfer
// protocol. Threshold 1 puts every payload-carrying message on the
// rendezvous path (control messages are header-only and stay eager), so
// the crossover cells measure the protocols, not the threshold heuristic.
func protoConfig(s nic.Spec, pk msglayer.ProtocolKind) machine.Config {
	cfg := config(s)
	cfg.Msg.Protocol = pk
	cfg.Msg.RendezvousThreshold = 1
	return cfg
}

// protocols is the crossover sub-grid's inner axis, baseline first.
var protocols = []msglayer.ProtocolKind{msglayer.Eager, msglayer.Rendezvous}

// Jobs returns one latency and one bandwidth job per design point, then
// (when CrossoverSpec is set) four jobs per crossover payload — eager
// latency, eager bandwidth, rendezvous latency, rendezvous bandwidth — in
// the deterministic order Rows and CrossoverRows expect.
func (g GridSpec) Jobs() []sweep.Job {
	var jobs []sweep.Job
	for _, s := range g.Specs {
		s := s
		axes := func(metric string, payload int) map[string]string {
			return map[string]string{
				"experiment": "designspace", "metric": metric,
				"spec": s.Name(), "send": s.Send.String(), "recv": s.Recv.String(),
				"buffering": s.Buffering.String(), "throttle": fmt.Sprint(s.Throttle),
				"bufs": "8", "payload": fmt.Sprint(payload),
			}
		}
		jobs = append(jobs, sweep.Job{
			ID:     fmt.Sprintf("lat/%s/%dB", s.Name(), g.LatPayload),
			Config: axes("latency", g.LatPayload),
			Run: func() sweep.Outcome {
				us := micro.RoundTripCfg(config(s), g.LatPayload, g.Warmup, g.Rounds).Microseconds()
				return sweep.Outcome{Metrics: map[string]float64{"rtt_us": us}}
			},
		})
		jobs = append(jobs, sweep.Job{
			ID:     fmt.Sprintf("bw/%s/%dB", s.Name(), g.BwPayload),
			Config: axes("bandwidth", g.BwPayload),
			Run: func() sweep.Outcome {
				mb := micro.BandwidthCfg(config(s), g.BwPayload, g.Msgs)
				return sweep.Outcome{Metrics: map[string]float64{"bw_mbps": mb}}
			},
		})
	}
	if g.CrossoverSpec != nil {
		s := *g.CrossoverSpec
		for _, payload := range g.CrossoverPayloads {
			for _, pk := range protocols {
				payload, pk := payload, pk
				axes := func(metric string) map[string]string {
					return map[string]string{
						"experiment": "designspace", "metric": metric,
						"spec": s.Name(), "protocol": pk.String(),
						"bufs": "8", "payload": fmt.Sprint(payload),
					}
				}
				jobs = append(jobs, sweep.Job{
					ID:     fmt.Sprintf("xover/lat/%s/%dB", pk, payload),
					Config: axes("latency"),
					Run: func() sweep.Outcome {
						us := micro.RoundTripCfg(protoConfig(s, pk), payload, g.Warmup, g.Rounds).Microseconds()
						return sweep.Outcome{Metrics: map[string]float64{"rtt_us": us}}
					},
				})
				jobs = append(jobs, sweep.Job{
					ID:     fmt.Sprintf("xover/bw/%s/%dB", pk, payload),
					Config: axes("bandwidth"),
					Run: func() sweep.Outcome {
						mb := micro.BandwidthCfg(protoConfig(s, pk), payload, g.Msgs)
						return sweep.Outcome{Metrics: map[string]float64{"bw_mbps": mb}}
					},
				})
			}
		}
	}
	return jobs
}

// Row is one design point's measurements.
type Row struct {
	Spec      nic.Spec
	LatencyUS float64
	BandMB    float64
}

// Rows reassembles rows from the results of running Jobs() through the
// orchestrator. Results must be in job order (which sweep.Run guarantees).
func (g GridSpec) Rows(results []sweep.Result) []Row {
	rows := make([]Row, 0, len(g.Specs))
	for i, s := range g.Specs {
		rows = append(rows, Row{
			Spec:      s,
			LatencyUS: results[2*i].Metrics["rtt_us"],
			BandMB:    results[2*i+1].Metrics["bw_mbps"],
		})
	}
	return rows
}

// CrossoverRow is one payload size's eager-vs-rendezvous comparison.
type CrossoverRow struct {
	Payload                int
	EagerLatUS, RdvLatUS   float64
	EagerBandMB, RdvBandMB float64
}

// CrossoverRows reassembles the crossover sub-grid's rows from the tail of
// the results slice (the sub-grid's jobs follow the design-space jobs).
func (g GridSpec) CrossoverRows(results []sweep.Result) []CrossoverRow {
	if g.CrossoverSpec == nil {
		return nil
	}
	rows := make([]CrossoverRow, 0, len(g.CrossoverPayloads))
	i := 2 * len(g.Specs)
	for _, payload := range g.CrossoverPayloads {
		rows = append(rows, CrossoverRow{
			Payload:     payload,
			EagerLatUS:  results[i].Metrics["rtt_us"],
			EagerBandMB: results[i+1].Metrics["bw_mbps"],
			RdvLatUS:    results[i+2].Metrics["rtt_us"],
			RdvBandMB:   results[i+3].Metrics["bw_mbps"],
		})
		i += 4
	}
	return rows
}

// FormatCrossover renders the protocol-crossover sub-grid: per payload
// size, the two protocols' round trip and bandwidth plus the rendezvous
// ratios, so the size where the handshake pays for itself is readable
// straight off the table.
func FormatCrossover(g GridSpec, rows []CrossoverRow) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Protocol crossover on %s: eager vs rendezvous (threshold forced below payload)\n",
		g.CrossoverSpec.Name())
	fmt.Fprintf(&b, "%-8s %12s %12s %9s %12s %12s %9s\n",
		"payload", "eager rtt", "rdv rtt", "ratio", "eager MB/s", "rdv MB/s", "ratio")
	for _, r := range rows {
		latRatio, bwRatio := 0.0, 0.0
		if r.EagerLatUS > 0 {
			latRatio = r.RdvLatUS / r.EagerLatUS
		}
		if r.EagerBandMB > 0 {
			bwRatio = r.RdvBandMB / r.EagerBandMB
		}
		fmt.Fprintf(&b, "%-8d %12.2f %12.2f %8.2fx %12.1f %12.1f %8.2fx\n",
			r.Payload, r.EagerLatUS, r.RdvLatUS, latRatio, r.EagerBandMB, r.RdvBandMB, bwRatio)
	}
	return b.String()
}

// Format renders the sweep as a text table: named design points first in
// Kind order, then the cross-product points sorted by round-trip latency,
// so the interesting question — does any unstudied composition beat the
// named designs? — is answerable at a glance.
func Format(rows []Row) string {
	named := make([]Row, 0, len(rows))
	cross := make([]Row, 0, len(rows))
	for _, r := range rows {
		if nic.KindOf(r.Spec) != nic.Custom {
			named = append(named, r)
		} else {
			cross = append(cross, r)
		}
	}
	sort.SliceStable(cross, func(i, j int) bool { return cross[i].LatencyUS < cross[j].LatencyUS })

	var b strings.Builder
	fmt.Fprintln(&b, "Design space: send engine x recv engine x buffering, round trip and bandwidth")
	fmt.Fprintf(&b, "%-32s %-11s %-11s %-8s %9s %8s\n", "spec", "send", "recv", "buffer", "rtt(us)", "MB/s")
	section := func(title string, rs []Row) {
		fmt.Fprintf(&b, "-- %s\n", title)
		for _, r := range rs {
			fmt.Fprintf(&b, "%-32s %-11s %-11s %-8s %9.2f %8.1f\n",
				r.Spec.Name(), r.Spec.Send, r.Spec.Recv, r.Spec.Buffering, r.LatencyUS, r.BandMB)
		}
	}
	section("named designs (Table 2 + variants)", named)
	section("cross-product designs (sorted by round trip)", cross)
	return b.String()
}
