// Package designspace defines the full NI design-space sweep: every valid
// point of the transfer-engine × buffering-policy cross product — the nine
// named designs of the paper plus the cross-product specs it never built —
// measured with the Table 5 microbenchmarks. The grid is the single source
// of truth shared by cmd/designspace and the determinism regression test.
package designspace

import (
	"fmt"
	"sort"
	"strings"

	"nisim/internal/machine"
	"nisim/internal/micro"
	"nisim/internal/nic"
	"nisim/internal/sweep"
)

// GridSpec parameterizes a design-space grid: which specs, which payloads,
// and the iteration counts.
type GridSpec struct {
	Specs []nic.Spec
	// LatPayload and BwPayload are the single payload sizes measured per
	// design point (one latency cell, one bandwidth cell — the full Table 5
	// payload columns over 39 designs would be a 273-cell grid).
	LatPayload, BwPayload int
	// Warmup and Rounds control the latency microbenchmark; Msgs is the
	// bandwidth message count.
	Warmup, Rounds, Msgs int
}

// StandardGrid returns the full design-space grid: the nine named specs
// in Kind order, then every cross-product spec in nic.AllSpecs order.
func StandardGrid(quick bool) GridSpec {
	var specs []nic.Spec
	for _, k := range nic.Kinds() {
		specs = append(specs, nic.SpecFor(k))
	}
	specs = append(specs, nic.CrossSpecs()...)
	g := GridSpec{
		Specs:      specs,
		LatPayload: 64,
		BwPayload:  256,
		Warmup:     600, Rounds: 100, Msgs: 400,
	}
	if quick {
		g.Warmup, g.Rounds, g.Msgs = 50, 10, 40
	}
	return g
}

// config builds the two-node machine configuration for one design point.
// Like micro.RoundTrip's named-kind path, any design using the UDMA engine
// forces the DMA path for all payloads, so the engine under test is the
// one the spec names.
func config(s nic.Spec) machine.Config {
	cfg := machine.DefaultConfig(nic.KindOf(s), 8)
	spec := s
	cfg.NISpec = &spec
	if s.Send == nic.UDMAEngine || s.Recv == nic.UDMAEngine {
		cfg.NI.UDMAThresholdBytes = 0
	}
	return cfg
}

// Jobs returns one latency and one bandwidth job per design point, in the
// deterministic order Rows expects.
func (g GridSpec) Jobs() []sweep.Job {
	var jobs []sweep.Job
	for _, s := range g.Specs {
		s := s
		axes := func(metric string, payload int) map[string]string {
			return map[string]string{
				"experiment": "designspace", "metric": metric,
				"spec": s.Name(), "send": s.Send.String(), "recv": s.Recv.String(),
				"buffering": s.Buffering.String(), "throttle": fmt.Sprint(s.Throttle),
				"bufs": "8", "payload": fmt.Sprint(payload),
			}
		}
		jobs = append(jobs, sweep.Job{
			ID:     fmt.Sprintf("lat/%s/%dB", s.Name(), g.LatPayload),
			Config: axes("latency", g.LatPayload),
			Run: func() sweep.Outcome {
				us := micro.RoundTripCfg(config(s), g.LatPayload, g.Warmup, g.Rounds).Microseconds()
				return sweep.Outcome{Metrics: map[string]float64{"rtt_us": us}}
			},
		})
		jobs = append(jobs, sweep.Job{
			ID:     fmt.Sprintf("bw/%s/%dB", s.Name(), g.BwPayload),
			Config: axes("bandwidth", g.BwPayload),
			Run: func() sweep.Outcome {
				mb := micro.BandwidthCfg(config(s), g.BwPayload, g.Msgs)
				return sweep.Outcome{Metrics: map[string]float64{"bw_mbps": mb}}
			},
		})
	}
	return jobs
}

// Row is one design point's measurements.
type Row struct {
	Spec      nic.Spec
	LatencyUS float64
	BandMB    float64
}

// Rows reassembles rows from the results of running Jobs() through the
// orchestrator. Results must be in job order (which sweep.Run guarantees).
func (g GridSpec) Rows(results []sweep.Result) []Row {
	rows := make([]Row, 0, len(g.Specs))
	for i, s := range g.Specs {
		rows = append(rows, Row{
			Spec:      s,
			LatencyUS: results[2*i].Metrics["rtt_us"],
			BandMB:    results[2*i+1].Metrics["bw_mbps"],
		})
	}
	return rows
}

// Format renders the sweep as a text table: named design points first in
// Kind order, then the cross-product points sorted by round-trip latency,
// so the interesting question — does any unstudied composition beat the
// named designs? — is answerable at a glance.
func Format(rows []Row) string {
	named := make([]Row, 0, len(rows))
	cross := make([]Row, 0, len(rows))
	for _, r := range rows {
		if nic.KindOf(r.Spec) != nic.Custom {
			named = append(named, r)
		} else {
			cross = append(cross, r)
		}
	}
	sort.SliceStable(cross, func(i, j int) bool { return cross[i].LatencyUS < cross[j].LatencyUS })

	var b strings.Builder
	fmt.Fprintln(&b, "Design space: send engine x recv engine x buffering, round trip and bandwidth")
	fmt.Fprintf(&b, "%-32s %-11s %-11s %-8s %9s %8s\n", "spec", "send", "recv", "buffer", "rtt(us)", "MB/s")
	section := func(title string, rs []Row) {
		fmt.Fprintf(&b, "-- %s\n", title)
		for _, r := range rs {
			fmt.Fprintf(&b, "%-32s %-11s %-11s %-8s %9.2f %8.1f\n",
				r.Spec.Name(), r.Spec.Send, r.Spec.Recv, r.Spec.Buffering, r.LatencyUS, r.BandMB)
		}
	}
	section("named designs (Table 2 + variants)", named)
	section("cross-product designs (sorted by round trip)", cross)
	return b.String()
}
