package stats

import (
	"testing"
	"testing/quick"

	"nisim/internal/sim"
)

func TestAccountCategories(t *testing.T) {
	n := NewNode()
	n.Account(Compute, 10*sim.Nanosecond)
	n.Account(Transfer, 20*sim.Nanosecond)
	n.Account(Buffering, 30*sim.Nanosecond)
	n.Account(99, 5*sim.Nanosecond) // out of range -> compute
	if n.TimeIn[Compute] != 15*sim.Nanosecond {
		t.Fatalf("compute = %v", n.TimeIn[Compute])
	}
	if n.BusyTime() != 65*sim.Nanosecond {
		t.Fatalf("busy = %v", n.BusyTime())
	}
}

func TestCategoryNames(t *testing.T) {
	for _, c := range []int{Compute, Transfer, Buffering} {
		if CategoryName(c) == "" {
			t.Fatal("empty category name")
		}
	}
	if CategoryName(42) != "category42" {
		t.Fatalf("unknown category name %q", CategoryName(42))
	}
}

func TestMachineFraction(t *testing.T) {
	m := NewMachine(2)
	m.ExecTime = 100 * sim.Nanosecond
	m.Nodes[0].Account(Transfer, 40*sim.Nanosecond)
	m.Nodes[1].Account(Transfer, 20*sim.Nanosecond)
	if f := m.Fraction(Transfer); f != 0.3 {
		t.Fatalf("fraction = %v, want 0.3", f)
	}
	empty := NewMachine(0)
	if empty.Fraction(Transfer) != 0 {
		t.Fatal("empty machine fraction nonzero")
	}
}

func TestTotalSums(t *testing.T) {
	m := NewMachine(3)
	for i, n := range m.Nodes {
		n.MessagesSent = int64(i + 1)
		n.Bounces = int64(2 * (i + 1))
		n.RecordMessageSize(12)
	}
	tot := m.Total()
	if tot.MessagesSent != 6 {
		t.Fatalf("total sent = %d", tot.MessagesSent)
	}
	if tot.Bounces != 12 {
		t.Fatalf("total bounces = %d", tot.Bounces)
	}
	if tot.Sizes().Total() != 3 {
		t.Fatalf("merged histogram total = %d", tot.Sizes().Total())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 7; i++ {
		h.Add(12)
	}
	for i := 0; i < 3; i++ {
		h.Add(140)
	}
	if h.Total() != 10 || h.Count(12) != 7 {
		t.Fatalf("total=%d count12=%d", h.Total(), h.Count(12))
	}
	if f := h.Fraction(12); f != 0.7 {
		t.Fatalf("fraction = %v", f)
	}
	if f := h.FractionBetween(100, 200); f != 0.3 {
		t.Fatalf("between = %v", f)
	}
	if m := h.Mean(); m != (7*12+3*140)/10.0 {
		t.Fatalf("mean = %v", m)
	}
	peaks := h.Peaks(10)
	if len(peaks) != 2 || peaks[0] != 12 || peaks[1] != 140 {
		t.Fatalf("peaks = %v", peaks)
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Fraction(1) != 0 || h.Mean() != 0 || h.FractionBetween(0, 100) != 0 {
		t.Fatal("empty histogram misbehaves")
	}
}

// Property: Merge preserves totals and counts.
func TestHistogramMergeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ha, hb := NewHistogram(), NewHistogram()
		for _, v := range a {
			ha.Add(int(v))
		}
		for _, v := range b {
			hb.Add(int(v))
		}
		merged := NewHistogram()
		merged.Merge(ha)
		merged.Merge(hb)
		if merged.Total() != int64(len(a)+len(b)) {
			return false
		}
		for v := 0; v < 256; v++ {
			if merged.Count(v) != ha.Count(v)+hb.Count(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fractions over all observed values sum to 1.
func TestHistogramFractionsSumToOne(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int(v))
		}
		var sum float64
		for _, v := range h.Peaks(1 << 20) {
			sum += h.Fraction(v)
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
