// Package stats collects per-node and machine-wide measurements: processor
// time attributed to compute, data transfer, and buffering (the breakdown
// behind the paper's Figure 1), bus-transaction counters, message-size
// histograms (Table 4), and flow-control bounce/retry counts.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"nisim/internal/sim"
)

// Processor-time categories. These are the values carried in
// sim.Process.Category; the zero value (Compute) is the default so that any
// unattributed blocked time counts as computation.
const (
	// Compute is application computation (including cache-miss stalls on
	// application data).
	Compute = iota
	// Transfer is processor time spent transferring message data to or from
	// the NI, or initiating such transfers: uncached loads/stores of message
	// words, block-buffer flush/load, queue reads/writes, UDMA initiation,
	// and messaging-layer copy/dispatch instructions.
	Transfer
	// Buffering is processor time stalled on buffering: waiting for a free
	// outgoing flow-control buffer, retrying bounced sends, and waiting to
	// drain NI buffers that would otherwise clog the network.
	Buffering
	numCategories
)

// CategoryName returns a human-readable name for a processor-time category.
func CategoryName(c int) string {
	switch c {
	case Compute:
		return "compute"
	case Transfer:
		return "transfer"
	case Buffering:
		return "buffering"
	default:
		return fmt.Sprintf("category%d", c)
	}
}

// Node accumulates statistics for a single machine node.
type Node struct {
	// TimeIn[c] is the processor time attributed to category c.
	TimeIn [numCategories]sim.Time

	// Bus transaction counters.
	BusTransactions   int64 // all transactions on this node's memory bus
	CacheToCache      int64 // blocks supplied cache-to-cache (incl. NI cache)
	MemToCache        int64 // blocks supplied to the processor cache by DRAM
	UncachedAccesses  int64 // uncached loads+stores
	BlockBufTransfers int64 // UltraSparc-style block load/store transfers

	// Messaging counters. Messages are application-level (post-reassembly);
	// fragments are the network messages the NI actually moved.
	MessagesSent      int64
	MessagesReceived  int64
	BytesSent         int64
	BytesReceived     int64
	FragmentsSent     int64
	FragmentsReceived int64

	// Flow control counters.
	Bounces     int64 // messages returned to this sender
	Retries     int64 // re-injections after a bounce
	SendBlocked int64 // sends that had to wait for an outgoing buffer

	// Fault-injection counters (what the fault plane did to this node's
	// traffic) and reliable-delivery counters (what the reliability layer
	// did about it).
	FaultDrops       int64 // data messages destroyed in flight
	FaultCorruptions int64 // messages corrupted in flight
	FaultDuplicates  int64 // messages duplicated in flight
	FaultDelays      int64 // messages given extra delivery jitter
	ForcedBounces    int64 // spurious returns forced by the fault plane
	CtlDrops         int64 // ack/bounce control messages destroyed
	Retransmits      int64 // timeout-driven re-injections (reliable delivery)
	CorruptDropped   int64 // arrivals discarded on checksum mismatch
	DupSuppressed    int64 // duplicate fragments discarded by the messaging layer
	DeliveryFailures int64 // sends abandoned after the retransmit limit

	// Admission-control counters (what this node's overload policy did to
	// arriving traffic; see nic.OverloadPolicy).
	AdmitDrops     int64 // arrivals destroyed at the admission watermark
	AdmitBounces   int64 // arrivals returned to sender at the watermark
	AdmitEvictions int64 // buffered messages evicted to admit newer ones
	AdmitFlaps     int64 // admit→refuse transitions (hysteresis engagements)

	// NI-specific counters.
	NICacheHits   int64 // processor receive fills supplied by the NI cache
	NICacheMisses int64 // receive fills that fell through to main memory
	NIBypasses    int64 // incoming messages written straight to memory (full cache)
	Prefetches    int64 // CNI send-side block prefetches
	Refetches     int64 // prefetched blocks fetched again (fetched too early)

	sizes *Histogram
}

// NewNode returns an empty node-statistics record.
func NewNode() *Node { return &Node{sizes: NewHistogram()} }

// Account adds blocked-processor time to a category. It is shaped to plug
// directly into sim.Process.OnBlocked.
func (n *Node) Account(category int, d sim.Time) {
	if category < 0 || category >= numCategories {
		category = Compute
	}
	n.TimeIn[category] += d
}

// RecordMessageSize records the total size in bytes (header + payload) of a
// sent message for the Table 4 histogram.
func (n *Node) RecordMessageSize(bytes int) { n.sizes.Add(bytes) }

// Sizes returns the message-size histogram.
func (n *Node) Sizes() *Histogram { return n.sizes }

// BusyTime returns total attributed (non-idle) processor time.
func (n *Node) BusyTime() sim.Time {
	var t sim.Time
	for _, v := range n.TimeIn {
		t += v
	}
	return t
}

// Machine aggregates statistics across all nodes of a simulated machine.
type Machine struct {
	Nodes []*Node
	// ExecTime is the parallel execution time: the time at which the last
	// application process finished.
	ExecTime sim.Time
}

// NewMachine returns a machine record with n empty node records.
func NewMachine(n int) *Machine {
	m := &Machine{Nodes: make([]*Node, n)}
	for i := range m.Nodes {
		m.Nodes[i] = NewNode()
	}
	return m
}

// Total returns a node record holding the sum over all nodes.
func (m *Machine) Total() *Node {
	t := NewNode()
	for _, n := range m.Nodes {
		for c := range n.TimeIn {
			t.TimeIn[c] += n.TimeIn[c]
		}
		t.BusTransactions += n.BusTransactions
		t.CacheToCache += n.CacheToCache
		t.MemToCache += n.MemToCache
		t.UncachedAccesses += n.UncachedAccesses
		t.BlockBufTransfers += n.BlockBufTransfers
		t.MessagesSent += n.MessagesSent
		t.MessagesReceived += n.MessagesReceived
		t.BytesSent += n.BytesSent
		t.BytesReceived += n.BytesReceived
		t.FragmentsSent += n.FragmentsSent
		t.FragmentsReceived += n.FragmentsReceived
		t.Bounces += n.Bounces
		t.Retries += n.Retries
		t.SendBlocked += n.SendBlocked
		t.FaultDrops += n.FaultDrops
		t.FaultCorruptions += n.FaultCorruptions
		t.FaultDuplicates += n.FaultDuplicates
		t.FaultDelays += n.FaultDelays
		t.ForcedBounces += n.ForcedBounces
		t.CtlDrops += n.CtlDrops
		t.Retransmits += n.Retransmits
		t.CorruptDropped += n.CorruptDropped
		t.DupSuppressed += n.DupSuppressed
		t.DeliveryFailures += n.DeliveryFailures
		t.AdmitDrops += n.AdmitDrops
		t.AdmitBounces += n.AdmitBounces
		t.AdmitEvictions += n.AdmitEvictions
		t.AdmitFlaps += n.AdmitFlaps
		t.NICacheHits += n.NICacheHits
		t.NICacheMisses += n.NICacheMisses
		t.NIBypasses += n.NIBypasses
		t.Prefetches += n.Prefetches
		t.Refetches += n.Refetches
		t.sizes.Merge(n.sizes)
	}
	return t
}

// Fraction returns TimeIn[category] summed over nodes divided by total
// processor time (ExecTime × nodes). This is the Figure 1 metric: the share
// of execution time the machine spends in a category.
func (m *Machine) Fraction(category int) float64 {
	if m.ExecTime <= 0 || len(m.Nodes) == 0 {
		return 0
	}
	var in sim.Time
	for _, n := range m.Nodes {
		in += n.TimeIn[category]
	}
	return float64(in) / (float64(m.ExecTime) * float64(len(m.Nodes)))
}

// Metrics flattens the machine record into the flat name→value map the
// sweep result schema (internal/sweep) carries: execution time, the
// Figure 1 processor-time categories, and the machine-wide event counters.
// Counter families that are zero for a configuration (NI cache counters on
// fifo NIs, fault/reliability counters on lossless runs) are omitted, so
// the common configurations serialize compactly.
func (m *Machine) Metrics() map[string]float64 {
	t := m.Total()
	ms := map[string]float64{
		"exec_us":            m.ExecTime.Microseconds(),
		"nodes":              float64(len(m.Nodes)),
		"transfer_frac":      m.Fraction(Transfer),
		"buffering_frac":     m.Fraction(Buffering),
		"transfer_total_us":  t.TimeIn[Transfer].Microseconds(),
		"buffering_total_us": t.TimeIn[Buffering].Microseconds(),
		"messages":           float64(t.MessagesSent),
		"fragments":          float64(t.FragmentsSent),
		"bytes_sent":         float64(t.BytesSent),
		"bus_transactions":   float64(t.BusTransactions),
		"bounces":            float64(t.Bounces),
		"retries":            float64(t.Retries),
		"mean_msg_bytes":     t.Sizes().Mean(),
	}
	nonzero := func(name string, v int64) {
		if v != 0 {
			ms[name] = float64(v)
		}
	}
	nonzero("cache_to_cache", t.CacheToCache)
	nonzero("mem_to_cache", t.MemToCache)
	nonzero("uncached_accesses", t.UncachedAccesses)
	nonzero("ni_cache_hits", t.NICacheHits)
	nonzero("ni_cache_misses", t.NICacheMisses)
	nonzero("ni_bypasses", t.NIBypasses)
	nonzero("prefetches", t.Prefetches)
	nonzero("fault_drops", t.FaultDrops)
	nonzero("fault_corruptions", t.FaultCorruptions)
	nonzero("fault_duplicates", t.FaultDuplicates)
	nonzero("ctl_drops", t.CtlDrops)
	nonzero("retransmits", t.Retransmits)
	nonzero("dup_suppressed", t.DupSuppressed)
	nonzero("delivery_failures", t.DeliveryFailures)
	nonzero("admit_drops", t.AdmitDrops)
	nonzero("admit_bounces", t.AdmitBounces)
	nonzero("admit_evictions", t.AdmitEvictions)
	nonzero("admit_flaps", t.AdmitFlaps)
	return ms
}

// Quantiles accumulates latency samples for order-statistics reporting
// (the p50/p99 delivered-latency columns of the overload experiments).
// Samples are kept raw and sorted on demand, so quantiles are exact and the
// accumulation path is one append.
type Quantiles struct {
	samples []sim.Time
	sorted  bool
}

// Add records one sample.
func (q *Quantiles) Add(v sim.Time) {
	q.samples = append(q.samples, v)
	q.sorted = false
}

// Count returns the number of recorded samples.
func (q *Quantiles) Count() int { return len(q.samples) }

// Merge folds every sample of o into q. Quantiles are order statistics
// over the sorted sample set, so merge order cannot change any At result —
// which is what lets a partitioned run keep per-shard accumulators and
// merge them once at the end.
func (q *Quantiles) Merge(o *Quantiles) {
	if len(o.samples) == 0 {
		return
	}
	q.samples = append(q.samples, o.samples...)
	q.sorted = false
}

// At returns the p-quantile (p in [0, 1]) using the nearest-rank method,
// or 0 with no samples. At(0.5) is the median; At(0.99) the p99.
func (q *Quantiles) At(p float64) sim.Time {
	if len(q.samples) == 0 {
		return 0
	}
	if !q.sorted {
		sort.Slice(q.samples, func(i, j int) bool { return q.samples[i] < q.samples[j] })
		q.sorted = true
	}
	if p <= 0 {
		return q.samples[0]
	}
	rank := int(p*float64(len(q.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(q.samples) {
		rank = len(q.samples) - 1
	}
	return q.samples[rank]
}

// Histogram counts occurrences of integer values (message sizes in bytes).
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]int64)} }

// Add records one occurrence of v.
func (h *Histogram) Add(v int) { h.counts[v]++; h.total++ } //lint:allow noalloc bucket population is bounded by the distinct message sizes a workload sends; repeats hit existing buckets

// Merge adds all of other's counts into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.counts {
		h.counts[v] += c
	}
	h.total += other.total
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the number of occurrences of v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Fraction returns the share of recorded values equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// FractionBetween returns the share of values v with lo <= v <= hi.
func (h *Histogram) FractionBetween(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	var c int64
	for v, n := range h.counts {
		if v >= lo && v <= hi {
			c += n
		}
	}
	return float64(c) / float64(h.total)
}

// Mean returns the average recorded value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum int64
	for v, n := range h.counts {
		sum += int64(v) * n
	}
	return float64(sum) / float64(h.total)
}

// Peaks returns the distinct values sorted by descending count, capped at n.
func (h *Histogram) Peaks(n int) []int {
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool {
		if h.counts[vals[i]] != h.counts[vals[j]] {
			return h.counts[vals[i]] > h.counts[vals[j]]
		}
		return vals[i] < vals[j]
	})
	if len(vals) > n {
		vals = vals[:n]
	}
	return vals
}

// String renders the histogram's top peaks with their shares.
func (h *Histogram) String() string {
	var b strings.Builder
	for _, v := range h.Peaks(6) {
		fmt.Fprintf(&b, "%dB:%.0f%% ", v, 100*h.Fraction(v))
	}
	return strings.TrimSpace(b.String())
}
