package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// rig assembles an engine, one bus, DRAM at [0, 1GB), and n caches.
type rig struct {
	eng    *sim.Engine
	bus    *membus.Bus
	mem    *mainmem.Memory
	caches []*Cache
	node   *stats.Node
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), node: stats.NewNode()}
	r.bus = membus.New(r.eng, membus.DefaultTiming(), r.node)
	r.mem = mainmem.New("dram", 120*sim.Nanosecond, r.eng)
	r.bus.MapRange(0, 1<<30, r.mem)
	for i := 0; i < n; i++ {
		cfg := DefaultConfig()
		cfg.SizeBytes = 1 << 16 // small cache so tests can force conflicts
		r.caches = append(r.caches, New("c", r.eng, r.bus, cfg, r.node))
	}
	return r
}

// runProc runs body as a process and drives the engine to completion.
func (r *rig) runProc(t *testing.T, body func(p *sim.Process)) sim.Time {
	t.Helper()
	p := r.eng.Spawn("test", body)
	r.eng.Run()
	if !p.Done() {
		t.Fatal("process did not finish (deadlock)")
	}
	return r.eng.Now()
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	var missT, hitT sim.Time
	r.runProc(t, func(p *sim.Process) {
		start := p.Now()
		c.Read(p, 0x1000, 8)
		missT = p.Now() - start
		start = p.Now()
		c.Read(p, 0x1008, 8) // same block
		hitT = p.Now() - start
	})
	if c.Misses != 1 || c.Hits != 1 {
		t.Fatalf("misses=%d hits=%d, want 1/1", c.Misses, c.Hits)
	}
	// Miss: 2-cycle addr (8ns) + 120ns DRAM + turnaround+2 beats (12ns) = 140ns.
	if missT != 140*sim.Nanosecond {
		t.Errorf("miss latency = %v, want 140ns", missT)
	}
	if hitT != sim.Nanosecond {
		t.Errorf("hit latency = %v, want 1ns", hitT)
	}
	if got := c.StateOf(0x1000); got != Exclusive {
		t.Errorf("state after lone read = %v, want E", got)
	}
}

func TestWriteAllocatesModified(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	r.runProc(t, func(p *sim.Process) {
		c.Write(p, 0x2000, 8)
	})
	if got := c.StateOf(0x2000); got != Modified {
		t.Fatalf("state after write miss = %v, want M", got)
	}
}

func TestSharedUpgrade(t *testing.T) {
	r := newRig(t, 2)
	c0, c1 := r.caches[0], r.caches[1]
	r.runProc(t, func(p *sim.Process) {
		c0.Read(p, 0x3000, 8)
		c1.Read(p, 0x3000, 8) // c0 E -> S, supplies cache-to-cache
		if c0.StateOf(0x3000) != Shared || c1.StateOf(0x3000) != Shared {
			t.Errorf("states after 2 reads: %v/%v, want S/S", c0.StateOf(0x3000), c1.StateOf(0x3000))
		}
		c0.Write(p, 0x3000, 8) // upgrade
		if c0.StateOf(0x3000) != Modified {
			t.Errorf("c0 after upgrade = %v, want M", c0.StateOf(0x3000))
		}
		if c1.StateOf(0x3000) != Invalid {
			t.Errorf("c1 after c0 upgrade = %v, want I", c1.StateOf(0x3000))
		}
	})
}

func TestCacheToCacheSupply(t *testing.T) {
	r := newRig(t, 2)
	c0, c1 := r.caches[0], r.caches[1]
	var supplied sim.Time
	r.runProc(t, func(p *sim.Process) {
		c0.Write(p, 0x4000, 8) // c0 M
		start := p.Now()
		c1.Read(p, 0x4000, 8)
		supplied = p.Now() - start
	})
	if c0.StateOf(0x4000) != Owned {
		t.Errorf("c0 after remote read of M = %v, want O", c0.StateOf(0x4000))
	}
	if c1.StateOf(0x4000) != Shared {
		t.Errorf("c1 = %v, want S", c1.StateOf(0x4000))
	}
	// Cache supply (24ns) is faster than DRAM (120ns):
	// 8 + 24 + 12 = 44ns.
	if supplied != 44*sim.Nanosecond {
		t.Errorf("cache-to-cache read took %v, want 44ns", supplied)
	}
	if r.node.CacheToCache != 1 {
		t.Errorf("CacheToCache counter = %d, want 1", r.node.CacheToCache)
	}
}

func TestGetXInvalidatesAndSupplies(t *testing.T) {
	r := newRig(t, 2)
	c0, c1 := r.caches[0], r.caches[1]
	r.runProc(t, func(p *sim.Process) {
		c0.Write(p, 0x5000, 8)
		c1.Write(p, 0x5000, 8)
	})
	if c0.StateOf(0x5000) != Invalid {
		t.Errorf("c0 = %v, want I", c0.StateOf(0x5000))
	}
	if c1.StateOf(0x5000) != Modified {
		t.Errorf("c1 = %v, want M", c1.StateOf(0x5000))
	}
}

func TestConflictEvictionWritesBack(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	// 64 KB cache => conflicting addresses differ by 1<<16.
	r.runProc(t, func(p *sim.Process) {
		c.Write(p, 0x100, 8)
		c.Read(p, 0x100+1<<16, 8)
	})
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
	if r.mem.Writes != 1 {
		t.Fatalf("mem writes = %d, want 1", r.mem.Writes)
	}
	if c.StateOf(0x100) != Invalid {
		t.Fatalf("victim still valid")
	}
}

func TestOnInvalidateFires(t *testing.T) {
	r := newRig(t, 2)
	c0, c1 := r.caches[0], r.caches[1]
	var invalidated []membus.Addr
	c1.OnInvalidate = func(b membus.Addr) { invalidated = append(invalidated, b) }
	r.runProc(t, func(p *sim.Process) {
		c1.Read(p, 0x7000, 8)
		c0.Write(p, 0x7000, 8)
	})
	if len(invalidated) != 1 || invalidated[0] != 0x7000 {
		t.Fatalf("OnInvalidate got %v, want [0x7000]", invalidated)
	}
}

func TestRangeAccessSpansBlocks(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	r.runProc(t, func(p *sim.Process) {
		c.WriteBytes(p, 0x8020, 130) // touches blocks 0x8000, 0x8040, 0x8080
	})
	if c.Misses != 3 {
		t.Fatalf("misses = %d, want 3", c.Misses)
	}
}

func TestFlushWritesBackDirty(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	r.runProc(t, func(p *sim.Process) {
		c.Write(p, 0x9000, 8)
		c.Flush(p, 0x9000)
	})
	if r.mem.Writes != 1 {
		t.Fatalf("mem writes = %d, want 1", r.mem.Writes)
	}
	if c.StateOf(0x9000) != Invalid {
		t.Fatal("block still valid after flush")
	}
}

// Property: under any random sequence of reads/writes by multiple caches,
// at most one cache holds a block in a dirty or exclusive state, and dirty
// data is never silently dropped (every transition out of M/O goes through
// a writeback or a cache-to-cache supply).
func TestCoherenceInvariants(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		if len(opsRaw) > 200 {
			opsRaw = opsRaw[:200]
		}
		r := newRig(t, 3)
		rng := rand.New(rand.NewSource(seed))
		blocks := []membus.Addr{0x0, 0x40, 0x80, 0x10000, 0x10040}
		ok := true
		r.runProc(t, func(p *sim.Process) {
			for _, op := range opsRaw {
				ci := int(op) % len(r.caches)
				bi := int(op/4) % len(blocks)
				write := rng.Intn(2) == 0
				if write {
					r.caches[ci].Write(p, blocks[bi], 8)
				} else {
					r.caches[ci].Read(p, blocks[bi], 8)
				}
				// Invariant: at most one M/E/O holder per block; if any cache
				// is M or E, no other cache holds the block at all.
				for _, b := range blocks {
					owners, holders := 0, 0
					exclusiveLike := 0
					for _, c := range r.caches {
						s := c.StateOf(b)
						if s.Valid() {
							holders++
						}
						if s == Modified || s == Owned || s == Exclusive {
							owners++
						}
						if s == Modified || s == Exclusive {
							exclusiveLike++
						}
					}
					if owners > 1 {
						ok = false
					}
					if exclusiveLike == 1 && holders > 1 {
						ok = false
					}
				}
				if !ok {
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBusUncachedAccessTiming(t *testing.T) {
	r := newRig(t, 0)
	dev := mainmem.New("ni", 60*sim.Nanosecond, r.eng)
	r.bus.MapRange(1<<30, 1<<31, dev)
	var readT, writeT sim.Time
	r.runProc(t, func(p *sim.Process) {
		start := p.Now()
		r.bus.IssueAndWait(p, &membus.Transaction{Kind: membus.UncachedRead, Addr: 1 << 30, Size: 8})
		readT = p.Now() - start
		start = p.Now()
		r.bus.IssueAndWait(p, &membus.Transaction{Kind: membus.UncachedWrite, Addr: 1 << 30, Size: 8})
		writeT = p.Now() - start
	})
	// Read: 8ns addr + 60ns device + 8ns turn+1 beat = 76ns.
	if readT != 76*sim.Nanosecond {
		t.Errorf("uncached read = %v, want 76ns", readT)
	}
	// Write: 8ns addr + 8ns turn+1 beat = 16ns (posted).
	if writeT != 16*sim.Nanosecond {
		t.Errorf("uncached write = %v, want 16ns", writeT)
	}
	if dev.Reads != 1 || dev.Writes != 1 {
		t.Errorf("device saw reads=%d writes=%d, want 1/1", dev.Reads, dev.Writes)
	}
}

func TestBusContentionSerializes(t *testing.T) {
	r := newRig(t, 0)
	dev := mainmem.New("ni", 0, r.eng)
	r.bus.MapRange(1<<30, 1<<31, dev)
	finish := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		r.eng.Spawn("w", func(p *sim.Process) {
			r.bus.IssueAndWait(p, &membus.Transaction{Kind: membus.UncachedWrite, Addr: 1 << 30, Size: 8})
			finish[i] = p.Now()
		})
	}
	r.eng.Run()
	if finish[0] == finish[1] {
		t.Fatalf("two writes completed simultaneously at %v; bus not serializing", finish[0])
	}
}

func TestHomeRoutingPrecedence(t *testing.T) {
	r := newRig(t, 0)
	dev := mainmem.New("ni", 60*sim.Nanosecond, r.eng)
	r.bus.MapRange(0x100000, 0x200000, dev) // overlays part of DRAM
	if got := r.bus.HomeOf(0x100040); got != dev {
		t.Fatalf("HomeOf overlaid range = %v, want NI", got.TargetName())
	}
	if got := r.bus.HomeOf(0x90); got != r.mem {
		t.Fatalf("HomeOf DRAM range = %v, want dram", got.TargetName())
	}
}

func TestMemWatch(t *testing.T) {
	r := newRig(t, 1)
	var seen []membus.Addr
	r.mem.Watch(0x6000, 0x7000, func(tr *membus.Transaction) {
		if tr.Kind == membus.Writeback {
			seen = append(seen, tr.Addr)
		}
	})
	r.runProc(t, func(p *sim.Process) {
		c := r.caches[0]
		c.Write(p, 0x6000, 8)
		c.Flush(p, 0x6000) // writeback hits the watcher
		c.Read(p, 0x500, 8)
	})
	if len(seen) != 1 || seen[0] != 0x6000 {
		t.Fatalf("watcher saw %v, want [0x6000]", seen)
	}
}
