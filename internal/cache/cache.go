// Package cache models the processor's cache: direct-mapped, write-back,
// write-allocate, 64-byte blocks, MOESI coherence over the node's snooping
// memory bus (Table 3: 1 MB, direct-mapped).
package cache

import (
	"fmt"

	"nisim/internal/membus"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// State is a MOESI coherence state.
//
//lint:enum
type State int8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default: //lint:allow exhaustive String falls back to "?" for invalid states; report output is byte-identity-locked
		return "?"
	}
}

// Dirty reports whether the state holds data newer than the home's copy.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// Valid reports whether the state holds readable data.
func (s State) Valid() bool { return s != Invalid }

type line struct {
	tag   membus.Addr // block address
	state State
}

// Config holds cache geometry and latencies.
type Config struct {
	SizeBytes  int      // total capacity (Table 3: 1 MB)
	HitLatency sim.Time // processor-visible hit time
	SupplyLat  sim.Time // cache-to-cache supply latency when this cache owns
}

// DefaultConfig returns the Table 3 processor cache.
func DefaultConfig() Config {
	return Config{
		SizeBytes:  1 << 20,
		HitLatency: 1 * sim.Nanosecond,
		SupplyLat:  24 * sim.Nanosecond,
	}
}

// Cache is a direct-mapped MOESI cache attached to a memory bus.
type Cache struct {
	name  string
	eng   *sim.Engine
	bus   *membus.Bus
	cfg   Config
	lines []line
	node  *stats.Node

	// Hits and Misses count processor accesses.
	Hits, Misses int64
	// Writebacks counts dirty-victim writebacks.
	Writebacks int64

	// OnInvalidate, if non-nil, runs whenever a snooped transaction
	// invalidates or downgrades a line this cache held. Pollers use it to
	// notice producer writes to shared locations.
	OnInvalidate func(block membus.Addr)
}

// New creates a cache on bus b. The cache registers itself as a snooper.
func New(name string, e *sim.Engine, b *membus.Bus, cfg Config, node *stats.Node) *Cache {
	n := cfg.SizeBytes / membus.BlockSize
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache: size %d is not a power-of-two multiple of the block size", cfg.SizeBytes))
	}
	c := &Cache{name: name, eng: e, bus: b, cfg: cfg, lines: make([]line, n), node: node}
	b.AttachSnooper(c)
	return c
}

// SnooperName implements membus.Snooper.
func (c *Cache) SnooperName() string { return c.name }

func (c *Cache) index(block membus.Addr) int {
	return int(block/membus.BlockSize) & (len(c.lines) - 1)
}

// StateOf returns the coherence state of the block containing a.
func (c *Cache) StateOf(a membus.Addr) State {
	block := membus.BlockOf(a)
	l := &c.lines[c.index(block)]
	if l.state.Valid() && l.tag == block {
		return l.state
	}
	return Invalid
}

// Snoop implements membus.Snooper: apply the MOESI transition for a
// transaction issued by another device.
func (c *Cache) Snoop(t *membus.Transaction) membus.SnoopReply {
	if t.Kind == membus.Writeback {
		return membus.SnoopReply{}
	}
	block := membus.BlockOf(t.Addr)
	l := &c.lines[c.index(block)]
	if !l.state.Valid() || l.tag != block {
		return membus.SnoopReply{}
	}
	switch t.Kind { //lint:allow exhaustive only kinds the bus snoops (Kind.coherent) reach Snoop; others never arrive
	case membus.GetS:
		switch l.state {
		case Modified, Owned:
			l.state = Owned
			return membus.SnoopReply{Owner: true, Shared: true, SupplyLatency: c.cfg.SupplyLat}
		case Exclusive:
			l.state = Shared
			return membus.SnoopReply{Owner: true, Shared: true, SupplyLatency: c.cfg.SupplyLat}
		case Shared:
			return membus.SnoopReply{Shared: true}
		default:
			panic("cache: snoop GetS on invalid line state")
		}
	case membus.GetX, membus.Upgrade, membus.Invalidate, membus.WriteInvalidate:
		owner := l.state.Dirty() || l.state == Exclusive
		l.state = Invalid
		if c.OnInvalidate != nil {
			c.OnInvalidate(block)
		}
		if owner && t.Kind == membus.GetX {
			// Supply the dirty/exclusive data directly to the new writer.
			return membus.SnoopReply{Owner: true, SupplyLatency: c.cfg.SupplyLat}
		}
		return membus.SnoopReply{}
	}
	return membus.SnoopReply{}
}

// evict writes back the victim line for block if dirty. Blocking.
func (c *Cache) evict(p *sim.Process, l *line) {
	if l.state.Dirty() {
		c.Writebacks++
		c.bus.AccessFrom(p, c, membus.Writeback, l.tag, 0)
	}
	l.state = Invalid
}

// Read performs a processor load of size bytes at a, blocking p until the
// data is available. Accesses must not span a block boundary.
func (c *Cache) Read(p *sim.Process, a membus.Addr, size int) {
	c.access(p, a, size, false)
}

// Write performs a processor store of size bytes at a, blocking p until the
// store is ordered (hit or exclusive ownership obtained).
func (c *Cache) Write(p *sim.Process, a membus.Addr, size int) {
	c.access(p, a, size, true)
}

// ReadBytes performs loads covering [a, a+n), block by block.
func (c *Cache) ReadBytes(p *sim.Process, a membus.Addr, n int) {
	c.rangeAccess(p, a, n, false)
}

// WriteBytes performs stores covering [a, a+n), block by block.
func (c *Cache) WriteBytes(p *sim.Process, a membus.Addr, n int) {
	c.rangeAccess(p, a, n, true)
}

func (c *Cache) rangeAccess(p *sim.Process, a membus.Addr, n int, write bool) {
	for n > 0 {
		inBlock := int(membus.BlockOf(a) + membus.BlockSize - a)
		sz := n
		if sz > inBlock {
			sz = inBlock
		}
		c.access(p, a, sz, write)
		a += membus.Addr(sz)
		n -= sz
	}
}

func (c *Cache) access(p *sim.Process, a membus.Addr, size int, write bool) {
	block := membus.BlockOf(a)
	if membus.BlockOf(a+membus.Addr(size)-1) != block {
		panic(fmt.Sprintf("cache: access %#x size %d spans blocks", a, size))
	}
	l := &c.lines[c.index(block)]
	hit := l.state.Valid() && l.tag == block

	if hit && (!write || l.state == Modified || l.state == Exclusive) {
		c.Hits++
		if write {
			l.state = Modified
		}
		p.Sleep(c.cfg.HitLatency)
		return
	}

	if hit && write {
		// Shared or Owned: upgrade in place.
		c.Hits++
		c.bus.AccessFrom(p, c, membus.Upgrade, block, 0)
		// Re-check: a racing snoop may have invalidated us while upgrading.
		if l.state.Valid() && l.tag == block {
			l.state = Modified
			return
		}
		// Fall through to a full miss.
		hit = false
	}

	c.Misses++
	if l.state.Valid() && l.tag != block {
		c.evict(p, l)
	}
	kind := membus.GetS
	if write {
		kind = membus.GetX
	}
	shared, fromCache := c.bus.FillFrom(p, c, kind, block)
	l.tag = block
	if write {
		l.state = Modified
	} else if shared || fromCache {
		l.state = Shared
	} else {
		l.state = Exclusive
	}
}

// Flush writes back (if dirty) and invalidates the block containing a.
func (c *Cache) Flush(p *sim.Process, a membus.Addr) {
	block := membus.BlockOf(a)
	l := &c.lines[c.index(block)]
	if l.state.Valid() && l.tag == block {
		c.evict(p, l)
	}
}
