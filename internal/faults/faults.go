// Package faults is a deterministic, seeded fault-injection subsystem for
// the simulated network. An Injector implements netsim.FaultPlane: at each
// endpoint's inject/eject points it decides — message drop, payload
// corruption (bit flips), duplication, added delay jitter, forced bounces,
// ack/bounce control-message loss, and timed link-outage windows — from a
// per-endpoint splitmix64 stream, so a run's fault pattern depends only on
// the seed and each endpoint's own traffic order. The zero Config injects
// nothing; installing no plane at all (nil) is bit-identical to a build
// without fault hooks.
package faults

import (
	"nisim/internal/netsim"
	"nisim/internal/sim"
)

// Outage is a timed link-outage window: every message injected or ejected
// at the affected endpoint within [Start, End) is destroyed.
type Outage struct {
	// Endpoint is the affected node id; -1 means every endpoint.
	Endpoint int
	Start    sim.Time
	End      sim.Time
}

func (o Outage) covers(now sim.Time, endpoint int) bool {
	return (o.Endpoint < 0 || o.Endpoint == endpoint) && now >= o.Start && now < o.End
}

// Config holds the per-message fault probabilities (each in [0, 1]) and
// the outage schedule. The zero value injects no faults.
type Config struct {
	// Seed selects the deterministic fault pattern; two runs with equal
	// seeds (and equal workloads) inject identical faults.
	Seed uint64

	Drop        float64 // data message destroyed at injection
	Corrupt     float64 // payload bit flipped in flight
	Duplicate   float64 // message delivered twice
	Delay       float64 // extra delivery jitter added
	ForceBounce float64 // returned to sender despite free buffers
	CtlDrop     float64 // ack/bounce control message destroyed
	EjectDrop   float64 // data message destroyed at ejection

	// MaxDelay is the jitter magnitude: a delayed message waits an extra
	// uniform (0, MaxDelay]. Ignored unless Delay > 0.
	MaxDelay sim.Time

	Outages []Outage
}

// Zero reports whether the configuration injects nothing, in which case
// callers should install no plane at all (nil keeps the network's lossless
// fast path).
func (c Config) Zero() bool {
	return c.Drop == 0 && c.Corrupt == 0 && c.Duplicate == 0 && c.Delay == 0 &&
		c.ForceBounce == 0 && c.CtlDrop == 0 && c.EjectDrop == 0 && len(c.Outages) == 0
}

// Mix scales one headline fault rate into per-class probabilities: class
// probability = rate * multiplier. DefaultMix is the historical faultsweep
// blend; drivers expose the multipliers as flags so each class can be
// turned up, down, or off independently.
type Mix struct {
	Drop        float64
	Corrupt     float64
	Duplicate   float64
	Delay       float64
	ForceBounce float64
	CtlDrop     float64

	// MaxDelay is the jitter magnitude installed whenever Delay is active.
	MaxDelay sim.Time
}

// DefaultMix returns the blend cmd/faultsweep has always used: the headline
// rate drives drops and jitter directly, half-rate corruption, duplication,
// and control loss, quarter-rate forced bounces, 500 ns jitter ceiling.
func DefaultMix() Mix {
	return Mix{
		Drop:        1,
		Corrupt:     0.5,
		Duplicate:   0.5,
		Delay:       1,
		ForceBounce: 0.25,
		CtlDrop:     0.5,
		MaxDelay:    500 * sim.Nanosecond,
	}
}

// Config expands the mix at a headline rate into a fault Config. A zero
// rate returns the zero Config (inject nothing, keep the lossless fast
// path); per-class probabilities are clamped to [0, 1].
func (mx Mix) Config(rate float64, seed uint64) Config {
	if rate == 0 {
		return Config{}
	}
	clamp := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	return Config{
		Seed:        seed,
		Drop:        clamp(rate * mx.Drop),
		Corrupt:     clamp(rate * mx.Corrupt),
		Duplicate:   clamp(rate * mx.Duplicate),
		Delay:       clamp(rate * mx.Delay),
		ForceBounce: clamp(rate * mx.ForceBounce),
		CtlDrop:     clamp(rate * mx.CtlDrop),
		MaxDelay:    mx.MaxDelay,
	}
}

// rng is a splitmix64 stream: tiny, fast, and — unlike a shared math/rand
// source — trivially forked per endpoint so decisions never depend on the
// interleaving of other endpoints' traffic.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f returns a uniform float64 in [0, 1).
func (r *rng) f() float64 { return float64(r.next()>>11) / (1 << 53) }

// Injector is a deterministic fault plane. One Injector may serve every
// endpoint of a network: each endpoint id gets its own stream.
type Injector struct {
	cfg     Config
	streams map[int]*rng
}

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, streams: make(map[int]*rng)}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Prefork eagerly creates the per-endpoint streams for endpoints 0..n-1.
// Each stream is a pure function of the seed and the endpoint id, so
// preforking draws nothing and changes no verdicts; it exists so a
// partitioned simulation (machine.Config.Shards > 1) never mutates the
// stream map lazily from two shards at once — after Prefork the map is
// read-only and each stream has a single writing shard.
func (in *Injector) Prefork(n int) {
	for i := 0; i < n; i++ {
		in.stream(i)
	}
}

func (in *Injector) stream(endpoint int) *rng {
	r := in.streams[endpoint]
	if r == nil {
		// Fork a stream per endpoint: run the seed through one splitmix
		// step keyed by the id so neighboring ids decorrelate.
		r = &rng{s: (&rng{s: in.cfg.Seed ^ (uint64(endpoint)+1)*0x9e3779b97f4a7c15}).next()}
		in.streams[endpoint] = r
	}
	return r
}

func (in *Injector) outage(now sim.Time, endpoint int) bool {
	for _, o := range in.cfg.Outages {
		if o.covers(now, endpoint) {
			return true
		}
	}
	return false
}

// Inject implements netsim.FaultPlane. It always draws a fixed number of
// variates so the stream stays aligned whatever the verdict.
func (in *Injector) Inject(now sim.Time, m *netsim.Message) netsim.FaultVerdict {
	r := in.stream(m.Src)
	pDrop, pBounce, pCorrupt, pDup, pDelay, mag := r.f(), r.f(), r.f(), r.f(), r.f(), r.f()
	if in.outage(now, m.Src) {
		return netsim.FaultVerdict{Drop: true}
	}
	var v netsim.FaultVerdict
	switch {
	case pDrop < in.cfg.Drop:
		v.Drop = true
	case pBounce < in.cfg.ForceBounce:
		v.ForceBounce = true
	default:
		v.Corrupt = pCorrupt < in.cfg.Corrupt
		v.Duplicate = pDup < in.cfg.Duplicate
		if pDelay < in.cfg.Delay && in.cfg.MaxDelay > 0 {
			v.Delay = sim.Picosecond + sim.Time(mag*float64(in.cfg.MaxDelay-sim.Picosecond))
		}
	}
	return v
}

// Eject implements netsim.FaultPlane: receiver-side drops and outages.
func (in *Injector) Eject(now sim.Time, m *netsim.Message) netsim.FaultVerdict {
	r := in.stream(m.Dst)
	p := r.f()
	if in.outage(now, m.Dst) || p < in.cfg.EjectDrop {
		return netsim.FaultVerdict{Drop: true}
	}
	return netsim.FaultVerdict{}
}

// DropControl implements netsim.FaultPlane for the ack/bounce control
// messages the receiver emits; it draws from the receiver's stream.
func (in *Injector) DropControl(now sim.Time, kind netsim.ControlKind, m *netsim.Message) bool {
	r := in.stream(m.Dst)
	p := r.f()
	if in.outage(now, m.Dst) {
		return true
	}
	return p < in.cfg.CtlDrop
}
