package faults

import (
	"testing"

	"nisim/internal/netsim"
	"nisim/internal/sim"
)

func msg(src, dst int) *netsim.Message { return netsim.NewSized(src, dst, 1, 64) }

func TestZero(t *testing.T) {
	if !(Config{}).Zero() {
		t.Fatal("zero value not Zero")
	}
	if !(Config{Seed: 42}).Zero() {
		t.Fatal("seed alone must not arm the injector")
	}
	cases := []Config{
		{Drop: 0.1}, {Corrupt: 0.1}, {Duplicate: 0.1}, {Delay: 0.1},
		{ForceBounce: 0.1}, {CtlDrop: 0.1}, {EjectDrop: 0.1},
		{Outages: []Outage{{Endpoint: -1, End: sim.Microsecond}}},
	}
	for i, c := range cases {
		if c.Zero() {
			t.Fatalf("case %d reported Zero", i)
		}
	}
}

func TestSameSeedSameVerdicts(t *testing.T) {
	cfg := Config{
		Seed: 7, Drop: 0.2, Corrupt: 0.2, Duplicate: 0.2, Delay: 0.2,
		ForceBounce: 0.1, CtlDrop: 0.2, EjectDrop: 0.1,
		MaxDelay: 300 * sim.Nanosecond,
	}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		now := sim.Time(i) * sim.Nanosecond
		m := msg(i%3, (i+1)%3)
		va, vb := a.Inject(now, m), b.Inject(now, m)
		if va != vb {
			t.Fatalf("inject verdict %d diverged: %+v vs %+v", i, va, vb)
		}
		if ea, eb := a.Eject(now, m), b.Eject(now, m); ea != eb {
			t.Fatalf("eject verdict %d diverged", i)
		}
		if ca, cb := a.DropControl(now, netsim.AckControl, m), b.DropControl(now, netsim.AckControl, m); ca != cb {
			t.Fatalf("control verdict %d diverged", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cfg := Config{Seed: 1, Drop: 0.5}
	other := cfg
	other.Seed = 2
	a, b := New(cfg), New(other)
	same := true
	for i := 0; i < 64; i++ {
		if a.Inject(0, msg(0, 1)) != b.Inject(0, msg(0, 1)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault patterns")
	}
}

func TestPerEndpointStreamsAreIndependent(t *testing.T) {
	// The same injector serves every endpoint; each endpoint's decisions
	// come from its own stream, so interleaving traffic from another
	// endpoint must not change a sender's fault pattern.
	cfg := Config{Seed: 3, Drop: 0.4}
	solo, mixed := New(cfg), New(cfg)
	var a []netsim.FaultVerdict
	for i := 0; i < 100; i++ {
		a = append(a, solo.Inject(0, msg(0, 1)))
	}
	for i := 0; i < 100; i++ {
		mixed.Inject(0, msg(2, 1)) // interleaved foreign traffic
		if v := mixed.Inject(0, msg(0, 1)); v != a[i] {
			t.Fatalf("endpoint 0 verdict %d changed when endpoint 2 traffic interleaved", i)
		}
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	in := New(Config{Seed: 9})
	for i := 0; i < 200; i++ {
		if v := in.Inject(0, msg(0, 1)); v != (netsim.FaultVerdict{}) {
			t.Fatalf("zero-rate injector issued %+v", v)
		}
		if v := in.Eject(0, msg(0, 1)); v != (netsim.FaultVerdict{}) {
			t.Fatalf("zero-rate eject issued %+v", v)
		}
		if in.DropControl(0, netsim.BounceControl, msg(0, 1)) {
			t.Fatal("zero-rate injector dropped a control message")
		}
	}
}

func TestCertainDrop(t *testing.T) {
	in := New(Config{Seed: 1, Drop: 1})
	for i := 0; i < 50; i++ {
		if v := in.Inject(0, msg(0, 1)); !v.Drop {
			t.Fatalf("Drop=1 did not drop message %d", i)
		}
	}
}

func TestDelayBounded(t *testing.T) {
	max := 200 * sim.Nanosecond
	in := New(Config{Seed: 5, Delay: 1, MaxDelay: max})
	seen := false
	for i := 0; i < 200; i++ {
		v := in.Inject(0, msg(0, 1))
		if v.Delay <= 0 || v.Delay > max {
			t.Fatalf("delay %v outside (0, %v]", v.Delay, max)
		}
		if v.Delay > max/2 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("jitter never exceeded half the configured maximum — magnitude draw broken")
	}
}

func TestOutageWindow(t *testing.T) {
	in := New(Config{Seed: 1, Outages: []Outage{
		{Endpoint: 0, Start: 100 * sim.Nanosecond, End: 200 * sim.Nanosecond},
	}})
	if v := in.Inject(50*sim.Nanosecond, msg(0, 1)); v.Drop {
		t.Fatal("dropped before the outage window")
	}
	if v := in.Inject(150*sim.Nanosecond, msg(0, 1)); !v.Drop {
		t.Fatal("outage did not destroy an injected message")
	}
	if !in.DropControl(150*sim.Nanosecond, netsim.AckControl, msg(1, 0)) {
		t.Fatal("outage did not destroy a control message at the affected endpoint")
	}
	if v := in.Inject(200*sim.Nanosecond, msg(0, 1)); v.Drop {
		t.Fatal("outage window end is inclusive; want half-open [Start, End)")
	}
	// Unaffected endpoint keeps working during the window.
	if v := in.Inject(150*sim.Nanosecond, msg(1, 0)); v.Drop {
		t.Fatal("outage leaked to an unaffected endpoint")
	}

	all := New(Config{Seed: 1, Outages: []Outage{{Endpoint: -1, End: sim.Microsecond}}})
	if v := all.Eject(0, msg(1, 0)); !v.Drop {
		t.Fatal("machine-wide outage did not cover ejection")
	}
}
