// Rendezvous protocol: the messaging layer's second transfer protocol,
// layered over the RDMA engine's one-sided puts. Eager transfer (send.go's
// path, the paper's baseline) pushes every fragment through the receiver's
// buffering layer and charges the receiving processor per fragment. For
// large messages that is exactly the traffic admission control evicts and
// limited buffering bounces, so the rendezvous protocol first agrees on the
// transfer (RTS/CTS handshake, two header-only control messages in the
// reserved handler range), then moves the payload with a one-sided put that
// lands directly in the receiver's reassembly buffer: it never enters the
// receive queue, can neither bounce nor be admission-evicted, and costs the
// receiving processor nothing until the completed message is dispatched.
package msglayer

import (
	"fmt"

	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/stats"
)

// ProtocolKind selects the messaging layer's transfer protocol.
//
//lint:enum
type ProtocolKind int

const (
	// Eager pushes fragments through the receiver's buffering layer
	// unconditionally — the study's baseline behavior.
	Eager ProtocolKind = iota
	// Rendezvous switches messages at or above the size threshold to an
	// RTS/CTS handshake followed by a one-sided put, when the NI has an
	// RDMA engine. Smaller messages (and every message on an NI without
	// one) still go eagerly.
	Rendezvous

	numProtocolKinds // bound sentinel, not a protocol
)

func (p ProtocolKind) String() string {
	switch p {
	case Eager:
		return "eager"
	case Rendezvous:
		return "rendezvous"
	default:
		panic(fmt.Sprintf("msglayer: unknown ProtocolKind %d", int(p)))
	}
}

// DefaultRendezvousThreshold is the payload size at which Rendezvous stops
// sending eagerly when Config.RendezvousThreshold is zero: four fragments'
// worth, past the region where the handshake's extra round trip dominates.
const DefaultRendezvousThreshold = 1024

// Runtime-internal handler ids for the rendezvous protocol, in the
// reserved range so overload policies with ControlBase set admit them
// unconditionally (refusing a CTS under load would deadlock the sender the
// handshake exists to protect).
const (
	hRTS = ReservedHandlerBase + 20 // request to send: xfer id, size, target handler
	hCTS = ReservedHandlerBase + 21 // clear to send: echoes the xfer id
	// hPutData tags one-sided payload frames. They are never dispatched
	// through a handler table — the network routes them to the RDMA
	// engine's put sink — but a recognizable id keeps traces readable.
	hPutData = ReservedHandlerBase + 22
)

// RTS argument encoding in netsim.Message.Arg:
// bits 0..15  transfer id (matches the put frames' PutFrameArg id)
// bits 16..47 payload bytes
// bits 48..63 application handler id
// The application's own 64-bit Arg rides in the RTS's Channel field, the
// same trick the eager path plays with first fragments.
func rtsArg(xfer uint32, bytes, handler int) uint64 {
	return uint64(xfer&0xFFFF) | uint64(bytes)<<16&0xFFFF_FFFF_0000 | uint64(handler)<<48
}

func decodeRTS(a uint64) (xfer uint32, bytes, handler int) {
	return uint32(a & 0xFFFF), int(a >> 16 & 0xFFFF_FFFF), int(a >> 48)
}

// rdvDoneWindow bounds the memory of completed (src, xfer) transfers kept
// for duplicate suppression, a separate window from the eager path's: the
// 16-bit xfer ids and the eager 24-bit fragment sequences are independent
// counters, so sharing one done-set would let an eager completion mask a
// rendezvous transfer (or vice versa) whenever the numbers collide.
const rdvDoneWindow = 1 << 12

// rdvSend is the sender-side state of one in-flight handshake. Send blocks
// until the CTS arrives, so only handler-reentrant sends nest these.
type rdvSend struct {
	cts  bool
	next *rdvSend // free-list link
}

// rdvRecv is the receiver-side state of one granted transfer: the
// reassembly buffer one-sided frames land in. The delivered Message and
// its payload buffer are recycled across transfers — a rendezvous handler
// must copy anything it keeps past its return, the zero-copy discipline
// one-sided transfer exists to provide (eager deliveries keep their
// handler-owned fresh Message).
type rdvRecv struct {
	key      [2]uint64 // (src, xfer)
	m        Message
	buf      []byte // recycled payload backing store
	got      []bool // frame indexes already placed (duplicate suppression)
	total    int    // frames expected, from the RTS byte count
	received int
	bytes    int      // payload bytes placed
	next     *rdvRecv // free-list link
}

// rendezvous is the per-endpoint protocol state, nil unless the Config
// selects Rendezvous and the NI exposes an RDMA engine.
type rendezvous struct {
	ep        *Endpoint
	rd        nic.RDMA
	threshold int

	// ctl recycles received control frames for this endpoint's own RTS/CTS
	// sends. Only frames the reliability layer never sealed (Seq == 0,
	// i.e. unreliable runs) are recyclable; reliable runs allocate one
	// frame per control message because the sender retains it until acked.
	ctl []*netsim.Message

	seq  uint32 // rolling 16-bit transfer id
	out  map[uint32]*rdvSend
	free *rdvSend

	in     map[[2]uint64]*rdvRecv
	freeRx *rdvRecv

	// Completed transfers awaiting processor-side dispatch. The put sink
	// runs in network-event context where no processor cycles can be
	// charged, so completion is split: the sink records arrival, and
	// deliverOne (called from PollOne/waitOne in process context) charges
	// the dispatch cost and runs the handler.
	complete []*rdvRecv
	compHead int

	done     map[[2]uint64]struct{}
	doneQ    [][2]uint64
	doneHead int
}

// newRendezvous wires the protocol to the endpoint's RDMA engine, or
// returns nil (leaving the endpoint purely eager) when the NI has none.
func newRendezvous(ep *Endpoint) *rendezvous {
	rc, ok := ep.ni.(nic.RDMACapable)
	if !ok {
		return nil
	}
	rd := rc.RDMA()
	if rd == nil {
		return nil
	}
	r := &rendezvous{
		ep:        ep,
		rd:        rd,
		threshold: ep.cfg.RendezvousThreshold,
		out:       make(map[uint32]*rdvSend),
		in:        make(map[[2]uint64]*rdvRecv),
		done:      make(map[[2]uint64]struct{}),
	}
	if r.threshold <= 0 {
		r.threshold = DefaultRendezvousThreshold
	}
	rd.SetPutSink(r.putSink)
	return r
}

// send runs the full rendezvous transfer: RTS, poll until CTS, one-sided
// put. The application-level accounting (SendCycles, message counters, the
// Table 4 size histogram) matches the eager path exactly — the protocols
// differ in how bytes move, not in what the application did.
//
//lint:hotpath
func (r *rendezvous) send(dst, handler int, payload []byte, payloadLen int, arg uint64) {
	ep := r.ep
	ep.pr.Work(stats.Transfer, ep.cfg.SendCycles)
	ep.pr.Stats.MessagesSent++
	ep.pr.Stats.BytesSent += int64(payloadLen + netsim.HeaderBytes)
	if handler < ReservedHandlerBase {
		ep.pr.Stats.RecordMessageSize(payloadLen + netsim.HeaderBytes)
	}
	sendTime := ep.pr.P.Now()

	r.seq++
	xfer := r.seq & 0xFFFF
	st := r.newSend()
	r.out[xfer] = st //lint:allow noalloc outstanding-send map holds at most the concurrent handshake population; completed transfers free buckets

	ep.pr.Work(stats.Transfer, ep.cfg.RdvCtlCycles)
	rts := r.ctlFrame()
	rts.Src, rts.Dst, rts.Handler = ep.pr.ID, dst, hRTS
	rts.Channel = int(arg)
	rts.Arg = rtsArg(xfer, payloadLen, handler)
	rts.PayloadLen = 0
	rts.SendTime = sendTime
	ep.pr.Stats.FragmentsSent++
	for !ep.ni.CanSend(rts) {
		if !ep.PollOne() {
			ep.pr.P.SleepAs(stats.Buffering, ep.cfg.SpinWait)
		}
	}
	ep.ni.Send(ep.pr, rts)

	// Poll-while-waiting for the grant: the receiver may be sending to us
	// (or handshaking with us) in the meantime, and a blocked spin here is
	// exactly the fetch deadlock §3.2 warns about.
	for !st.cts {
		if !ep.PollOne() {
			ep.pr.P.SleepAs(stats.Buffering, ep.cfg.SpinWait)
		}
	}
	delete(r.out, xfer)
	r.releaseSend(st)

	// Granted: move the payload one-sidedly. The put bypasses the
	// receiver's buffering layer entirely — frames route to the put sink,
	// not the receive queue, so they can neither bounce nor be evicted.
	for !r.rd.CanPut() {
		if !ep.PollOne() {
			ep.pr.P.SleepAs(stats.Buffering, ep.cfg.SpinWait)
		}
	}
	r.rd.Put(ep.pr, nic.PutOp{
		Dst:        dst,
		Handler:    hPutData,
		XferID:     xfer,
		Payload:    payload,
		PayloadLen: payloadLen,
		SendTime:   sendTime,
	})
}

// onRTS grants (or re-grants) a transfer: create the reassembly record and
// reply with a CTS. A duplicate RTS — its CTS lost, or reliability
// retransmitted past a dropped ack — re-grants idempotently; an RTS for an
// already-completed transfer is stale (the sender only ever resends before
// putting) and is suppressed.
//
//lint:hotpath
func (r *rendezvous) onRTS(nm *netsim.Message) {
	ep := r.ep
	ep.pr.Work(stats.Transfer, ep.cfg.RdvCtlCycles)
	xfer, bytes, handler := decodeRTS(nm.Arg)
	key := [2]uint64{uint64(nm.Src), uint64(xfer)}
	if _, dup := r.done[key]; dup {
		ep.pr.Stats.DupSuppressed++
		r.recycleCtl(nm)
		return
	}
	rx := r.in[key]
	if rx == nil {
		rx = r.newRecv(key, bytes)
		rx.m = Message{
			Src:      nm.Src,
			Dst:      ep.pr.ID,
			Handler:  handler,
			Arg:      uint64(nm.Channel),
			SendTime: nm.SendTime,
		}
		r.in[key] = rx //lint:allow noalloc inbound map holds at most the concurrently granted transfers; completions free buckets
	} else {
		ep.pr.Stats.DupSuppressed++
	}
	src := nm.Src
	r.recycleCtl(nm)

	ep.pr.Work(stats.Transfer, ep.cfg.RdvCtlCycles)
	cts := r.ctlFrame()
	cts.Src, cts.Dst, cts.Handler = ep.pr.ID, src, hCTS
	cts.Channel = 0
	cts.Arg = uint64(xfer)
	cts.PayloadLen = 0
	cts.SendTime = ep.pr.P.Now()
	ep.pr.Stats.FragmentsSent++
	for !ep.ni.CanSend(cts) {
		if !ep.PollOne() {
			ep.pr.P.SleepAs(stats.Buffering, ep.cfg.SpinWait)
		}
	}
	ep.ni.Send(ep.pr, cts)
}

// onCTS releases the sender blocked in send. A CTS for an unknown transfer
// is a duplicate grant (the first already unblocked us) and is counted,
// not acted on.
//
//lint:hotpath
func (r *rendezvous) onCTS(nm *netsim.Message) {
	r.ep.pr.Work(stats.Transfer, r.ep.cfg.RdvCtlCycles)
	if st := r.out[uint32(nm.Arg&0xFFFF)]; st != nil {
		st.cts = true
	} else {
		r.ep.pr.Stats.DupSuppressed++
	}
	r.recycleCtl(nm)
}

// putSink integrates one one-sided payload frame. It runs in network-event
// context — the frame was placed by the NI, not the processor — so it does
// bookkeeping only: placement, duplicate suppression, and completion
// queueing. Frame contents are only valid for the duration of the call
// (settled frames return to the sender's pool), so payload bytes are
// copied into the reassembly buffer here.
//
//lint:hotpath
func (r *rendezvous) putSink(nm *netsim.Message) {
	xfer, idx, total := nic.DecodePutFrame(nm.Arg)
	key := [2]uint64{uint64(nm.Src), uint64(xfer)}
	rx := r.in[key]
	if rx == nil {
		// A late duplicate of a completed transfer (reliability retransmit
		// whose ack was lost).
		r.ep.pr.Stats.DupSuppressed++
		return
	}
	if total != rx.total || idx >= len(rx.got) {
		panic(fmt.Sprintf("msglayer: node %d put frame %d/%d does not match granted transfer (%d frames)",
			r.ep.pr.ID, idx, total, rx.total))
	}
	if rx.got[idx] {
		r.ep.pr.Stats.DupSuppressed++
		return
	}
	rx.got[idx] = true
	if nm.Payload != nil {
		if rx.m.Payload == nil {
			rx.m.Payload = r.recvBuf(rx)
		}
		copy(rx.m.Payload[idx*r.ep.maxFrag:], nm.Payload[:nm.PayloadLen])
	}
	rx.bytes += nm.PayloadLen
	rx.received++
	if rx.received < rx.total {
		return
	}
	// Last frame: the message has fully arrived. Dispatch cost is the
	// processor's, so completion is handed to deliverOne.
	delete(r.in, key)
	rx.m.ArriveTime = r.ep.pr.P.Now()
	r.complete = append(r.complete, rx) //lint:allow noalloc completion ring reaches steady-state capacity after the first bursts; the rendezvous gate proves warm rounds stay alloc-free
}

// deliverOne dispatches one completed transfer, charging the same
// per-message receive cost the eager path charges (RecvCycles plus
// FragCycles per additional frame). It runs in process context from
// PollOne/waitOne/Drain. Reports whether a message was delivered.
//
//lint:hotpath
func (r *rendezvous) deliverOne() bool {
	if r.compHead >= len(r.complete) {
		return false
	}
	rx := r.complete[r.compHead]
	r.complete[r.compHead] = nil
	r.compHead++
	if r.compHead == len(r.complete) {
		r.complete = r.complete[:0]
		r.compHead = 0
	}
	r.markDone(rx.key)

	ep := r.ep
	rx.m.PayloadLen = rx.bytes
	ep.pr.Stats.MessagesReceived++
	ep.pr.Stats.BytesReceived += int64(rx.bytes + netsim.HeaderBytes)
	ep.pr.Work(stats.Transfer, ep.cfg.RecvCycles+ep.cfg.FragCycles*int64(rx.total-1))
	h := ep.handlers[rx.m.Handler]
	if h == nil {
		panic(fmt.Sprintf("msglayer: node %d has no handler %d", ep.pr.ID, rx.m.Handler))
	}
	ep.Delivered++
	h(ep, &rx.m)
	// The record (and the Message the handler just saw) recycles only
	// after the handler returns; reentrant receives inside the handler use
	// other records.
	r.releaseRecv(rx)
	return true
}

// pending reports undelivered rendezvous work: completions awaiting
// dispatch or granted transfers still receiving frames.
//
//lint:hotpath
func (r *rendezvous) pending() bool {
	return r.compHead < len(r.complete) || len(r.in) > 0
}

// ctlFrame returns a control frame for an RTS or CTS, recycled from a
// previously received control message when possible. Under reliability
// every control frame is sealed (retained for retransmission) until acked,
// so the pool stays empty and reliable runs pay one allocation per
// handshake message.
//
//lint:hotpath
func (r *rendezvous) ctlFrame() *netsim.Message {
	if n := len(r.ctl); n > 0 {
		nm := r.ctl[n-1]
		r.ctl[n-1] = nil
		r.ctl = r.ctl[:n-1]
		return nm
	}
	return &netsim.Message{} //lint:allow noalloc reliable runs seal control frames until acked so they cannot recycle; the rendezvous alloc gate runs on the recycling (unreliable) configuration
}

// recycleCtl returns a consumed control frame to the pool. Frames the
// reliability layer sealed (Seq != 0) still belong to their sender until
// the ack settles them and must not be reused here.
//
//lint:hotpath
func (r *rendezvous) recycleCtl(nm *netsim.Message) {
	if nm.Seq != 0 {
		return
	}
	nm.Recycle()
	nm.Payload = nil
	nm.PayloadLen = 0
	r.ctl = append(r.ctl, nm) //lint:allow noalloc pool append reaches steady-state capacity once the first handshakes complete
}

//lint:hotpath
func (r *rendezvous) newSend() *rdvSend {
	st := r.free
	if st == nil {
		return &rdvSend{} //lint:allow noalloc one record per concurrently outstanding handshake, recycled thereafter
	}
	r.free = st.next
	st.next = nil
	st.cts = false
	return st
}

//lint:hotpath
func (r *rendezvous) releaseSend(st *rdvSend) {
	st.next = r.free
	r.free = st
}

// newRecv takes a reassembly record from the free list, sizing its frame
// bitmap for the transfer's byte count (frames are cut at the same
// boundary the RDMA engine cuts them: the network payload maximum).
//
//lint:hotpath
func (r *rendezvous) newRecv(key [2]uint64, bytes int) *rdvRecv {
	total := (bytes + r.ep.maxFrag - 1) / r.ep.maxFrag
	if total == 0 {
		total = 1
	}
	rx := r.freeRx
	if rx == nil {
		rx = &rdvRecv{} //lint:allow noalloc one record per concurrently granted transfer, recycled thereafter
	} else {
		r.freeRx = rx.next
		rx.next = nil
		rx.received, rx.bytes = 0, 0
	}
	rx.key = key
	rx.total = total
	if cap(rx.got) < total {
		rx.got = make([]bool, total) //lint:allow noalloc bitmap grows to the largest transfer seen, then recycles
	} else {
		rx.got = rx.got[:total]
		for i := range rx.got {
			rx.got[i] = false
		}
	}
	return rx
}

// recvBuf returns rx's payload backing store sized for the granted byte
// count, growing the recycled buffer only when a larger transfer arrives.
//
//lint:hotpath
func (r *rendezvous) recvBuf(rx *rdvRecv) []byte {
	need := rx.total * r.ep.maxFrag
	if cap(rx.buf) < need {
		rx.buf = make([]byte, need) //lint:allow noalloc backing store grows to the largest transfer seen, then recycles
	}
	return rx.buf[:need]
}

//lint:hotpath
func (r *rendezvous) releaseRecv(rx *rdvRecv) {
	rx.m = Message{}
	rx.next = r.freeRx
	r.freeRx = rx
}

// markDone remembers a completed (src, xfer) pair in the rendezvous done
// window so late duplicate frames and stale RTS retransmissions are
// suppressed. A fresh RTS reusing a wrapped 16-bit xfer id evicts nothing
// early: the window is far deeper than any plausible in-flight population,
// and entries age out as new completions push through the ring.
//
//lint:hotpath
func (r *rendezvous) markDone(key [2]uint64) {
	r.done[key] = struct{}{} //lint:allow noalloc done set is bounded by the window; past it the paired delete frees a bucket for every insert
	if len(r.doneQ) < rdvDoneWindow {
		r.doneQ = append(r.doneQ, key) //lint:allow noalloc done ring grows once to its window bound
		return
	}
	delete(r.done, r.doneQ[r.doneHead])
	r.doneQ[r.doneHead] = key
	r.doneHead = (r.doneHead + 1) % rdvDoneWindow
}
