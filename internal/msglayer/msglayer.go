// Package msglayer is the Tempest-like active-message layer every
// application in the study runs on. It adds, on top of the raw NI models,
// the software costs the paper's "process-to-process" numbers include:
// per-message dispatch and header handling, fragmentation of application
// messages to the 256-byte network maximum and reassembly on the far side,
// and the poll-while-blocked discipline that prevents fetch deadlock when
// buffering runs out (§3.2).
package msglayer

import (
	"fmt"

	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// ReservedHandlerBase is the first handler id reserved for runtime-internal
// protocols (barriers); application handlers must stay below it.
const ReservedHandlerBase = 200

// Handler is an active-message handler, executed on the receiving
// processor when a complete application message has arrived. Handlers run
// in the receiver's process context and may send messages themselves.
type Handler func(ep *Endpoint, m *Message)

// Message is a reassembled application-level message as delivered to a
// handler.
type Message struct {
	Src, Dst   int
	Handler    int
	Arg        uint64
	Payload    []byte // nil unless the sender attached real bytes
	PayloadLen int
	// SendTime is when the sender entered Send; ArriveTime is when the last
	// fragment was handed to the messaging layer at the receiver.
	SendTime, ArriveTime sim.Time
}

// Size returns the application-level message size (payload + one 8-byte
// header), the quantity Table 4 histograms.
func (m *Message) Size() int { return m.PayloadLen + netsim.HeaderBytes }

// Config holds the messaging-layer software costs, in processor cycles.
// They model the Tempest active-message implementation: building and
// decoding headers, handler table lookup, and bookkeeping.
type Config struct {
	SendCycles int64 // per application message, send side
	RecvCycles int64 // per application message, dispatch side
	FragCycles int64 // per additional fragment, each side
	// RdvCtlCycles is the cost of composing or decoding one rendezvous
	// control message (RTS or CTS) — lighter than full message dispatch,
	// which the handshake exists to avoid.
	RdvCtlCycles int64
	// SpinWait is the re-check interval while blocked waiting for send
	// resources.
	SpinWait sim.Time
	// Protocol selects the transfer protocol (rendezvous.go). The zero
	// value, Eager, is the study's baseline and leaves every path below
	// byte-identical to a build without the protocol seam.
	Protocol ProtocolKind
	// RendezvousThreshold is the payload size (bytes) at or above which
	// Rendezvous switches from eager transfer to the handshake; zero means
	// DefaultRendezvousThreshold. Ignored under Eager.
	RendezvousThreshold int
}

// DefaultConfig returns costs calibrated so the Table 5 microbenchmarks
// land in the paper's reported ranges.
func DefaultConfig() Config {
	return Config{
		SendCycles:   150,
		RecvCycles:   250,
		FragCycles:   40,
		RdvCtlCycles: 60,
		SpinWait:     100 * sim.Nanosecond,
	}
}

// fragment-header encoding in netsim.Message.Arg:
// bits 0..15  fragment index
// bits 16..31 fragment count
// bits 32..55 per-sender message sequence number
// (the application's own Arg travels in the first fragment's payload
// accounting; we keep it in the assembly record).
func fragArg(idx, total int, seq uint64) uint64 {
	return uint64(idx) | uint64(total)<<16 | (seq&0xFFFFFF)<<32
}

func fragIdx(a uint64) int    { return int(a & 0xFFFF) }
func fragTotal(a uint64) int  { return int(a >> 16 & 0xFFFF) }
func fragSeq(a uint64) uint64 { return a >> 32 & 0xFFFFFF }

type assembly struct {
	m        *Message
	received int
	bytes    int
	got      []bool    // fragment indexes already integrated (duplicate suppression)
	next     *assembly // endpoint free-list link
}

// doneWindow bounds the per-endpoint memory of completed (src, seq) pairs
// kept for duplicate suppression. Sequence numbers are monotonic per
// sender, so a window thousands deep comfortably outlasts any duplicate
// the network can still deliver.
const doneWindow = 1 << 13

// Endpoint is one node's messaging-layer endpoint.
type Endpoint struct {
	pr       *proc.Proc
	ni       nic.NI
	cfg      Config
	maxFrag  int // max payload bytes per network message
	handlers map[int]Handler
	seq      uint64
	partials map[[2]uint64]*assembly // key: (src, seq)
	freeAsm  *assembly               // recycled assembly records (see newAssembly)
	done     map[[2]uint64]struct{}  // recently completed (src, seq) pairs
	doneQ    [][2]uint64             // eviction ring for done
	doneHead int

	// rdv is the rendezvous protocol state, nil unless the Config selects
	// Rendezvous AND the NI exposes an RDMA engine. Every receive path
	// checks it: one-sided completions never enter the NI's receive queue,
	// so only the protocol layer can deliver them.
	rdv *rendezvous

	// Delivered counts application messages dispatched to handlers.
	Delivered int64
}

// New creates the endpoint for a node.
func New(pr *proc.Proc, ni nic.NI, netCfg netsim.Config, cfg Config) *Endpoint {
	if cfg.Protocol < 0 || cfg.Protocol >= numProtocolKinds {
		panic(fmt.Sprintf("msglayer: unknown protocol %d", int(cfg.Protocol)))
	}
	ep := &Endpoint{
		pr:       pr,
		ni:       ni,
		cfg:      cfg,
		maxFrag:  netCfg.MaxNetMsg - netsim.HeaderBytes,
		handlers: make(map[int]Handler),
		partials: make(map[[2]uint64]*assembly),
		done:     make(map[[2]uint64]struct{}),
	}
	if cfg.Protocol == Rendezvous {
		// Degrades to nil — purely eager — on NIs without an RDMA engine,
		// so a protocol sweep can run the whole design grid.
		ep.rdv = newRendezvous(ep)
	}
	return ep
}

// Protocol reports the transfer protocol actually in effect: Rendezvous
// only when the Config asked for it and the NI could provide it.
func (ep *Endpoint) Protocol() ProtocolKind {
	if ep.rdv != nil {
		return Rendezvous
	}
	return Eager
}

// Proc returns the node's processor context.
func (ep *Endpoint) Proc() *proc.Proc { return ep.pr }

// NI returns the underlying network interface.
func (ep *Endpoint) NI() nic.NI { return ep.ni }

// NodeID returns this endpoint's node number.
func (ep *Endpoint) NodeID() int { return ep.pr.ID }

// Register installs the handler for id. Registering twice panics: handler
// tables are set up once at program start.
func (ep *Endpoint) Register(id int, h Handler) {
	if _, dup := ep.handlers[id]; dup {
		panic(fmt.Sprintf("msglayer: handler %d registered twice on node %d", id, ep.pr.ID))
	}
	ep.handlers[id] = h
}

// Send transmits an application message of payloadLen bytes to handler on
// dst, fragmenting as needed. It blocks the processor for the NI's
// processor-side send work; while waiting for send resources it polls and
// dispatches incoming messages (deadlock avoidance).
func (ep *Endpoint) Send(dst, handler, payloadLen int, arg uint64) {
	ep.send(dst, handler, nil, payloadLen, arg)
}

// SendBytes is Send carrying real payload bytes end to end.
func (ep *Endpoint) SendBytes(dst, handler int, payload []byte, arg uint64) {
	ep.send(dst, handler, payload, len(payload), arg)
}

func (ep *Endpoint) send(dst, handler int, payload []byte, payloadLen int, arg uint64) {
	if dst == ep.pr.ID {
		panic(fmt.Sprintf("msglayer: node %d sending to itself", dst))
	}
	if ep.rdv != nil && payloadLen >= ep.rdv.threshold {
		ep.rdv.send(dst, handler, payload, payloadLen, arg)
		return
	}
	ep.seq++
	seq := ep.seq
	total := (payloadLen + ep.maxFrag - 1) / ep.maxFrag
	if total == 0 {
		total = 1
	}

	ep.pr.Work(stats.Transfer, ep.cfg.SendCycles)
	ep.pr.Stats.MessagesSent++
	ep.pr.Stats.BytesSent += int64(payloadLen + netsim.HeaderBytes)
	if handler < ReservedHandlerBase {
		// Table 4 histograms application messages only, not runtime-internal
		// traffic such as barriers.
		ep.pr.Stats.RecordMessageSize(payloadLen + netsim.HeaderBytes)
	}

	sendTime := ep.pr.P.Now()
	for i := 0; i < total; i++ {
		lo := i * ep.maxFrag
		hi := lo + ep.maxFrag
		if hi > payloadLen {
			hi = payloadLen
		}
		nm := &netsim.Message{
			Src:        ep.pr.ID,
			Dst:        dst,
			Handler:    handler,
			PayloadLen: hi - lo,
			Arg:        fragArg(i, total, seq),
			SendTime:   sendTime,
		}
		if payload != nil {
			nm.Payload = payload[lo:hi]
		}
		// The application-level arg rides in every fragment's unused header
		// space; we keep it on the netsim message via a side table-free
		// trick: the first fragment's Channel field.
		if i == 0 {
			nm.Channel = int(arg)
		}
		ep.pr.Stats.FragmentsSent++
		if i > 0 {
			ep.pr.Work(stats.Transfer, ep.cfg.FragCycles)
		}
		// Poll-while-blocked: drain incoming messages until the NI can take
		// this fragment.
		for !ep.ni.CanSend(nm) {
			if !ep.PollOne() {
				ep.pr.P.SleepAs(stats.Buffering, ep.cfg.SpinWait)
			}
		}
		ep.ni.Send(ep.pr, nm)
	}
}

// PollOne polls the NI once; if a fragment is available it is received and,
// when it completes an application message, the handler runs. Reports
// whether a fragment was processed.
func (ep *Endpoint) PollOne() bool {
	if ep.rdv != nil && ep.rdv.deliverOne() {
		return true
	}
	nm, ok := ep.ni.Poll(ep.pr)
	if ok {
		ep.accept(nm)
		return true
	}
	// Nothing to consume: service one returned-to-sender message if the NI
	// needs the processor for that (fifo NIs, Table 2).
	if ep.ni.NeedsRetry() {
		ep.ni.RetryOne(ep.pr)
		return true
	}
	return false
}

// waitOne blocks until a fragment arrives, then processes it. A rendezvous
// endpoint cannot park in the NI's blocking Recv: one-sided completions
// bypass the receive queue, so a blocked Recv would sleep through them. It
// polls both planes instead.
func (ep *Endpoint) waitOne() {
	if ep.rdv == nil {
		ep.accept(ep.ni.Recv(ep.pr))
		return
	}
	for !ep.PollOne() {
		ep.pr.P.SleepAs(stats.Buffering, ep.cfg.SpinWait)
	}
}

// WaitUntil polls (blocking between arrivals) until pred is true. It is the
// receive loop request-response protocols use: pred typically checks a flag
// a reply handler sets.
func (ep *Endpoint) WaitUntil(pred func() bool) {
	for !pred() {
		ep.waitOne()
	}
}

// Drain processes all fragments the NI currently holds, plus any completed
// rendezvous transfers awaiting dispatch.
func (ep *Endpoint) Drain() {
	if ep.rdv != nil {
		for ep.rdv.deliverOne() {
		}
	}
	for ep.ni.Pending() {
		ep.PollOne()
	}
}

// markDone remembers a completed (src, seq) pair so late duplicates of its
// fragments — retransmissions whose ack was lost, or network-duplicated
// copies — are suppressed rather than reassembled into a phantom message.
func (ep *Endpoint) markDone(key [2]uint64) {
	ep.done[key] = struct{}{} //lint:allow noalloc done set is bounded by the window; past it the paired delete frees a bucket for every insert
	if len(ep.doneQ) < doneWindow {
		ep.doneQ = append(ep.doneQ, key) //lint:allow noalloc done ring grows once to its window bound, then recycles slots in place
		return
	}
	delete(ep.done, ep.doneQ[ep.doneHead])
	ep.doneQ[ep.doneHead] = key
	ep.doneHead = (ep.doneHead + 1) % doneWindow
}

// accept integrates one network fragment, dispatching the handler when the
// application message is complete. Duplicate fragments (per-(src,seq)
// sequence numbers plus per-assembly fragment bitmaps) are suppressed.
func (ep *Endpoint) accept(nm *netsim.Message) {
	if ep.rdv != nil {
		switch nm.Handler {
		case hRTS:
			ep.rdv.onRTS(nm)
			return
		case hCTS:
			ep.rdv.onCTS(nm)
			return
		}
	}
	key := [2]uint64{uint64(nm.Src), fragSeq(nm.Arg)}
	total := fragTotal(nm.Arg)
	if _, dup := ep.done[key]; dup {
		ep.pr.Stats.DupSuppressed++
		return
	}
	a := ep.partials[key]
	if a == nil {
		a = ep.newAssembly(total)
		a.m = &Message{ //lint:allow noalloc delivery contract: the handler owns the Message, so one is freshly built per application message
			Src:      nm.Src,
			Dst:      ep.pr.ID,
			Handler:  nm.Handler,
			SendTime: nm.SendTime,
		}
		ep.partials[key] = a //lint:allow noalloc partials map holds at most the in-flight reassembly population; completed keys free buckets
	}
	if idx := fragIdx(nm.Arg); idx < len(a.got) {
		if a.got[idx] {
			ep.pr.Stats.DupSuppressed++
			return
		}
		a.got[idx] = true
	}
	if fragIdx(nm.Arg) == 0 {
		a.m.Arg = uint64(nm.Channel)
	}
	if nm.Payload != nil {
		if a.m.Payload == nil {
			a.m.Payload = make([]byte, 0, total*ep.maxFrag) //lint:allow noalloc delivery contract: the handler owns the payload, so byte-carrying messages allocate their backing store
		}
		// Fragments can arrive out of order after a bounce; order within the
		// payload matters only for byte-carrying messages, which we place.
		off := fragIdx(nm.Arg) * ep.maxFrag
		need := off + nm.PayloadLen
		if len(a.m.Payload) < need {
			a.m.Payload = append(a.m.Payload, make([]byte, need-len(a.m.Payload))...) //lint:allow noalloc growth stays within the capacity reserved above; the scratch zero slice sizes the gap left by reordering
		}
		copy(a.m.Payload[off:need], nm.Payload)
	}
	a.bytes += nm.PayloadLen
	a.received++
	if a.received < total {
		return
	}
	delete(ep.partials, key)
	ep.markDone(key)
	m, bytes := a.m, a.bytes
	ep.releaseAssembly(a)
	m.PayloadLen = bytes
	m.ArriveTime = ep.pr.P.Now()
	ep.pr.Stats.MessagesReceived++
	ep.pr.Stats.BytesReceived += int64(bytes + netsim.HeaderBytes)

	ep.pr.Work(stats.Transfer, ep.cfg.RecvCycles+ep.cfg.FragCycles*int64(total-1))
	h := ep.handlers[m.Handler]
	if h == nil {
		panic(fmt.Sprintf("msglayer: node %d has no handler %d", ep.pr.ID, m.Handler))
	}
	ep.Delivered++
	h(ep, m)
}

// newAssembly takes a reassembly record from the endpoint's free list,
// resizing and clearing its fragment bitmap for total fragments. Only the
// bookkeeping record and bitmap are recycled; the Message is always freshly
// allocated because the handler it is delivered to owns it.
func (ep *Endpoint) newAssembly(total int) *assembly {
	a := ep.freeAsm
	if a == nil {
		a = &assembly{} //lint:allow noalloc one record per concurrently reassembling message, recycled through the free list thereafter
	} else {
		ep.freeAsm = a.next
		a.next = nil
		a.received, a.bytes = 0, 0
	}
	if cap(a.got) < total {
		a.got = make([]bool, total) //lint:allow noalloc bitmap grows to the largest fragment count seen, then recycles
	} else {
		a.got = a.got[:total]
		for i := range a.got {
			a.got[i] = false
		}
	}
	return a
}

// releaseAssembly returns a completed record to the free list. The caller
// must have detached a.m first.
func (ep *Endpoint) releaseAssembly(a *assembly) {
	a.m = nil
	a.next = ep.freeAsm
	ep.freeAsm = a
}
