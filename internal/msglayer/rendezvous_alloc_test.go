package msglayer

import (
	"testing"

	"nisim/internal/cache"
	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// TestRendezvousAllocFree gates the rendezvous handshake and delivery path
// at zero allocations per round once warm. The rig runs the unreliable
// network — the configuration where control frames recycle (reliability
// seals them until acked) — with symmetric ping-pong traffic so every pool
// circulates: RTS/CTS frames between the two endpoints' control pools, put
// frames between the two RDMA engines' pools (receiver adoption), and the
// reassembly records through each endpoint's free lists. The warm-up must
// outlast the rendezvous done window so the duplicate-suppression map and
// ring reach their steady-state footprint.
func TestRendezvousAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	netCfg := netsim.DefaultConfig()
	nw := netsim.New(eng, netCfg, 2, 8)
	spec := nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing}
	msgCfg := DefaultConfig()
	msgCfg.Protocol = Rendezvous
	msgCfg.RendezvousThreshold = 512

	var eps [2]*Endpoint
	for i := 0; i < 2; i++ {
		st := stats.NewNode()
		bus := membus.New(eng, membus.DefaultTiming(), st)
		mem := mainmem.New("dram", 120*sim.Nanosecond, eng)
		bus.MapRange(nic.DRAMBase, nic.DRAMLimit, mem)
		c := cache.New("cache", eng, bus, cache.DefaultConfig(), st)
		pr := &proc.Proc{ID: i, Eng: eng, Bus: bus, Cache: c, Stats: st, CPU: sim.GHz(1)}
		ep := nw.Endpoint(i)
		ep.Stats = st
		ni, err := nic.NewFromSpec(spec, &nic.Env{
			Eng: eng, ID: i, Bus: bus, Mem: mem, EP: ep, Stats: st,
			CPU: sim.GHz(1), Cfg: nic.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = New(pr, ni, netCfg, msgCfg)
	}
	if eps[0].Protocol() != Rendezvous {
		t.Fatal("rig did not activate the rendezvous protocol")
	}

	const hPing, hPong, size = 1, 2, 600
	release, sent, pong := 0, 0, 0
	eps[1].Register(hPing, func(ep *Endpoint, m *Message) {
		ep.Send(m.Src, hPong, size, 0)
	})
	eps[0].Register(hPong, func(ep *Endpoint, m *Message) { pong++ })

	pongCaught := func() bool { return pong >= sent }
	p0 := eng.Spawn("n0", func(p *sim.Process) {
		for {
			if sent < release {
				sent++
				eps[0].Send(1, hPing, size, 0)
				eps[0].WaitUntil(pongCaught)
			} else if !eps[0].PollOne() {
				eps[0].pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
			}
		}
	})
	eps[0].pr.Bind(p0)
	p1 := eng.Spawn("n1", func(p *sim.Process) {
		for {
			if !eps[1].PollOne() {
				eps[1].pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
			}
		}
	})
	eps[1].pr.Bind(p1)

	running := func() bool { return pong < release }
	round := func() {
		release++
		eng.RunWhile(running)
		if pong < release {
			t.Fatal("round did not complete")
		}
	}
	// Warm past the done window: each round completes one transfer per
	// endpoint, and the window must fill before markDone stops growing.
	for i := 0; i < rdvDoneWindow+64; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Fatalf("rendezvous ping-pong round allocates %.1f times, want 0", allocs)
	}
	eng.Drain()
}
