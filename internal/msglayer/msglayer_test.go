package msglayer_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/nic"
)

func twoNodeMachine(kind nic.Kind, bufs int) *machine.Machine {
	cfg := machine.DefaultConfig(kind, bufs)
	cfg.Nodes = 2
	return machine.New(cfg)
}

func TestFragmentationBoundary(t *testing.T) {
	// Payload sizes straddling fragment boundaries must all arrive intact.
	// Fragments carry 248 payload bytes (256 minus the 8-byte header).
	for _, size := range []int{0, 1, 247, 248, 249, 496, 497, 1000, 4096} {
		size := size
		m := twoNodeMachine(nic.CNI32Qm, 8)
		const h = 1
		var got *msglayer.Message
		for _, n := range m.Nodes {
			n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { got = msg })
		}
		m.Run(func(n *machine.Node) {
			if n.ID == 0 {
				payload := bytes.Repeat([]byte{byte(size)}, size)
				n.EP.SendBytes(1, h, payload, 7)
			} else if n.ID == 1 {
				n.EP.WaitUntil(func() bool { return got != nil })
			}
			n.Barrier()
		})
		if got == nil {
			t.Fatalf("size %d: message never arrived", size)
		}
		if got.PayloadLen != size {
			t.Fatalf("size %d: got %d payload bytes", size, got.PayloadLen)
		}
		if got.Arg != 7 {
			t.Fatalf("size %d: arg = %d, want 7", size, got.Arg)
		}
		for _, b := range got.Payload {
			if b != byte(size) {
				t.Fatalf("size %d: payload corrupted", size)
			}
		}
	}
}

func TestFragmentCountMatchesSize(t *testing.T) {
	m := twoNodeMachine(nic.CNI32Qm, 8)
	const h = 1
	done := false
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { done = true })
	}
	st := m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			n.EP.Send(1, h, 1000, 0) // ceil(1000/248) = 5 fragments
		} else {
			n.EP.WaitUntil(func() bool { return done })
		}
		n.Barrier()
	})
	tot := st.Total()
	// 5 data fragments + barrier traffic (1 app message data + 2 barrier msgs).
	if tot.MessagesSent != 3 {
		t.Fatalf("messages sent = %d, want 3 (1 data + 2 barrier)", tot.MessagesSent)
	}
	dataFrags := tot.FragmentsSent - 2 // barrier messages are single fragments
	if dataFrags != 5 {
		t.Fatalf("data fragments = %d, want 5", dataFrags)
	}
}

func TestHandlersMaySend(t *testing.T) {
	// A handler that replies exercises nested sends in dispatch context.
	m := twoNodeMachine(nic.AP3000, 4)
	const hReq, hRep = 1, 2
	replies := 0
	for _, n := range m.Nodes {
		n.EP.Register(hReq, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			ep.Send(msg.Src, hRep, 16, msg.Arg+1)
		})
		n.EP.Register(hRep, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			replies++
		})
	}
	m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			for i := 0; i < 10; i++ {
				n.EP.Send(1, hReq, 24, uint64(i))
			}
			n.EP.WaitUntil(func() bool { return replies == 10 })
		}
		n.Barrier()
	})
	if replies != 10 {
		t.Fatalf("replies = %d, want 10", replies)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	m := twoNodeMachine(nic.CNI32Qm, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("double registration did not panic")
		}
	}()
	m.Nodes[0].EP.Register(1, func(ep *msglayer.Endpoint, msg *msglayer.Message) {})
	m.Nodes[0].EP.Register(1, func(ep *msglayer.Endpoint, msg *msglayer.Message) {})
}

// Property: any sequence of random-sized messages with random payload bytes
// arrives complete and uncorrupted, across a mix of NIs and buffer counts.
func TestPayloadIntegrityProperty(t *testing.T) {
	f := func(sizesRaw []uint16, kindRaw, bufsRaw uint8) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 8 {
			sizesRaw = sizesRaw[:8]
		}
		kinds := []nic.Kind{nic.CM5, nic.AP3000, nic.StarTJR, nic.CNI32Qm}
		kind := kinds[int(kindRaw)%len(kinds)]
		bufs := int(bufsRaw)%8 + 1
		m := twoNodeMachine(kind, bufs)
		const h = 1
		var got [][]byte
		for _, n := range m.Nodes {
			n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
				got = append(got, append([]byte(nil), msg.Payload...))
			})
		}
		var sent [][]byte
		for i, s := range sizesRaw {
			size := int(s) % 2000
			b := make([]byte, size)
			for j := range b {
				b[j] = byte(i*31 + j)
			}
			sent = append(sent, b)
		}
		m.Run(func(n *machine.Node) {
			if n.ID == 0 {
				for _, b := range sent {
					n.EP.SendBytes(1, h, b, 0)
				}
			} else {
				n.EP.WaitUntil(func() bool { return len(got) == len(sent) })
			}
			n.Barrier()
		})
		if len(got) != len(sent) {
			return false
		}
		// Order may differ after bounces; match as multisets.
		used := make([]bool, len(sent))
	outer:
		for _, g := range got {
			for i, s := range sent {
				if !used[i] && bytes.Equal(g, s) {
					used[i] = true
					continue outer
				}
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
