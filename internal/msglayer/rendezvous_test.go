package msglayer_test

import (
	"bytes"
	"testing"

	"nisim/internal/faults"
	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
)

// rdvMachine builds a two-node machine on the canonical one-sided design
// point (RDMA send engine over a memory-homed ring) running the rendezvous
// protocol with the given threshold.
func rdvMachine(threshold int, mutate func(*machine.Config)) *machine.Machine {
	cfg := machine.DefaultConfig(nic.Custom, 8)
	cfg.Nodes = 2
	spec := nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing}
	cfg.NISpec = &spec
	cfg.Msg.Protocol = msglayer.Rendezvous
	cfg.Msg.RendezvousThreshold = threshold
	if mutate != nil {
		mutate(&cfg)
	}
	return machine.New(cfg)
}

func TestRendezvousDelivery(t *testing.T) {
	// Payload sizes straddling the put frame boundary (248 bytes) must all
	// arrive intact through the RTS/CTS handshake and one-sided transfer.
	for _, size := range []int{1024, 1240, 1241, 4096} {
		m := rdvMachine(1024, nil)
		const h = 1
		var gotLen int
		var gotArg uint64
		var payloadOK bool
		for _, n := range m.Nodes {
			n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
				// Rendezvous deliveries recycle the Message and its payload
				// buffer across transfers: copy out everything checked.
				gotLen = msg.PayloadLen
				gotArg = msg.Arg
				payloadOK = true
				for _, b := range msg.Payload[:msg.PayloadLen] {
					if b != byte(size) {
						payloadOK = false
						break
					}
				}
			})
		}
		if got := m.Nodes[0].EP.Protocol(); got != msglayer.Rendezvous {
			t.Fatalf("protocol = %v, want rendezvous", got)
		}
		m.Run(func(n *machine.Node) {
			if n.ID == 0 {
				n.EP.SendBytes(1, h, bytes.Repeat([]byte{byte(size)}, size), 99)
			} else {
				n.EP.WaitUntil(func() bool { return gotLen != 0 })
			}
			n.Barrier()
		})
		if gotLen != size {
			t.Fatalf("size %d: got %d payload bytes", size, gotLen)
		}
		if gotArg != 99 {
			t.Fatalf("size %d: arg = %d, want 99", size, gotArg)
		}
		if !payloadOK {
			t.Fatalf("size %d: payload corrupted", size)
		}
	}
}

func TestRendezvousThresholdSwitch(t *testing.T) {
	// Below the threshold the eager path runs unchanged; at or above it the
	// handshake takes over. The fragment accounting tells them apart:
	// a 500-byte eager message is 3 fragments; a 2000-byte rendezvous
	// transfer is 1 RTS + 1 CTS + 9 one-sided frames = 11; the closing
	// barrier adds 2 single-fragment messages.
	m := rdvMachine(1000, nil)
	const h = 1
	delivered := 0
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { delivered++ })
	}
	st := m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			n.EP.Send(1, h, 500, 0)
			n.EP.Send(1, h, 2000, 0)
		} else {
			n.EP.WaitUntil(func() bool { return delivered == 2 })
		}
		n.Barrier()
	})
	tot := st.Total()
	if tot.MessagesSent != 4 {
		t.Fatalf("messages sent = %d, want 4 (2 data + 2 barrier)", tot.MessagesSent)
	}
	if tot.FragmentsSent != 16 {
		t.Fatalf("fragments sent = %d, want 16 (3 eager + 11 rendezvous + 2 barrier)", tot.FragmentsSent)
	}
	if tot.MessagesReceived != 4 {
		t.Fatalf("messages received = %d, want 4", tot.MessagesReceived)
	}
}

func TestRendezvousFallsBackToEager(t *testing.T) {
	// Rendezvous on an NI without an RDMA engine degrades to pure eager
	// transfer, so protocol sweeps can cover the whole design grid.
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	cfg.Msg.Protocol = msglayer.Rendezvous
	m := machine.New(cfg)
	const h = 1
	got := 0
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { got = msg.PayloadLen })
	}
	if p := m.Nodes[0].EP.Protocol(); p != msglayer.Eager {
		t.Fatalf("protocol = %v, want eager fallback", p)
	}
	m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			n.EP.Send(1, h, 2000, 0)
		} else {
			n.EP.WaitUntil(func() bool { return got != 0 })
		}
		n.Barrier()
	})
	if got != 2000 {
		t.Fatalf("payload = %d, want 2000", got)
	}
}

func TestRendezvousBypassesAdmissionControl(t *testing.T) {
	// An admission policy refusing essentially everything (watermark at 1%
	// of the ring) cannot touch a rendezvous transfer: the RTS/CTS ride the
	// control-handler exemption and the payload frames never consult Admit
	// at all. The transfer completes without a single drop.
	m := rdvMachine(1024, func(cfg *machine.Config) {
		cfg.NISpec.Overload = nic.OverloadPolicy{
			AdmitPct:    1,
			Refuse:      nic.RefuseDrop,
			ControlBase: msglayer.ReservedHandlerBase,
		}
	})
	const h = 1
	got := 0
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { got = msg.PayloadLen })
	}
	st := m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			n.EP.Send(1, h, 8192, 0)
		} else {
			n.EP.WaitUntil(func() bool { return got != 0 })
		}
		n.Barrier()
	})
	if got != 8192 {
		t.Fatalf("payload = %d, want 8192", got)
	}
	if drops := st.Total().AdmitDrops; drops != 0 {
		t.Fatalf("admission dropped %d one-sided-era frames, want 0", drops)
	}
}

func TestRendezvousUnderFaults(t *testing.T) {
	// Corruption and duplication with reliability enabled: retransmission
	// recovers every dropped frame (RTS, CTS, and one-sided payload alike)
	// and duplicate suppression keeps each message delivered exactly once,
	// with intact bytes.
	m := rdvMachine(512, func(cfg *machine.Config) {
		cfg.Net.Reliability = netsim.ReliabilityConfig{
			Enabled: true, AckTimeout: 2 * sim.Microsecond,
			TimeoutCap: 16 * sim.Microsecond, MaxAttempts: 8,
		}
		cfg.Faults = faults.Config{Seed: 42, Corrupt: 0.05, Duplicate: 0.05}
	})
	const h, count = 1, 25
	delivered, corrupted := 0, 0
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			delivered++
			for _, b := range msg.Payload[:msg.PayloadLen] {
				if b != 0x5A {
					corrupted++
					break
				}
			}
		})
	}
	payload := bytes.Repeat([]byte{0x5A}, 2000)
	m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			for i := 0; i < count; i++ {
				n.EP.SendBytes(1, h, payload, 0)
			}
		} else {
			n.EP.WaitUntil(func() bool { return delivered >= count })
		}
		n.Barrier()
	})
	if delivered != count {
		t.Fatalf("delivered %d messages, want exactly %d", delivered, count)
	}
	if corrupted != 0 {
		t.Fatalf("%d messages arrived corrupted", corrupted)
	}
}

func TestRendezvousHandlersMaySend(t *testing.T) {
	// A rendezvous handler that replies with another rendezvous transfer
	// exercises handshake reentrancy inside dispatch context.
	m := rdvMachine(512, nil)
	const hReq, hRep = 1, 2
	replies := 0
	for _, n := range m.Nodes {
		n.EP.Register(hReq, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			ep.Send(msg.Src, hRep, 1500, msg.Arg+1)
		})
		n.EP.Register(hRep, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			replies++
		})
	}
	m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			for i := 0; i < 5; i++ {
				n.EP.Send(1, hReq, 1500, uint64(i))
			}
			n.EP.WaitUntil(func() bool { return replies == 5 })
		}
		n.Barrier()
	})
	if replies != 5 {
		t.Fatalf("replies = %d, want 5", replies)
	}
}
