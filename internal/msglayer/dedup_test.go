package msglayer

import "testing"

func TestFragArgRoundTrip(t *testing.T) {
	for _, c := range []struct {
		idx, total int
		seq        uint64
	}{
		{0, 1, 0}, {1, 3, 7}, {65535, 65535, 1 << 23}, {12, 100, 0xFFFFFF},
	} {
		a := fragArg(c.idx, c.total, c.seq)
		if fragIdx(a) != c.idx || fragTotal(a) != c.total || fragSeq(a) != c.seq&0xFFFFFF {
			t.Fatalf("round trip %+v -> idx=%d total=%d seq=%d",
				c, fragIdx(a), fragTotal(a), fragSeq(a))
		}
	}
}

func TestMarkDoneRingEviction(t *testing.T) {
	ep := &Endpoint{done: make(map[[2]uint64]struct{})}
	for i := 0; i < doneWindow+16; i++ {
		ep.markDone([2]uint64{3, uint64(i)})
	}
	if len(ep.done) != doneWindow {
		t.Fatalf("done set holds %d entries, want exactly %d", len(ep.done), doneWindow)
	}
	// The oldest 16 were evicted; the newest survive.
	if _, ok := ep.done[[2]uint64{3, 0}]; ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := ep.done[[2]uint64{3, 15}]; ok {
		t.Fatal("entry 15 should have been evicted")
	}
	if _, ok := ep.done[[2]uint64{3, 16}]; !ok {
		t.Fatal("entry 16 wrongly evicted")
	}
	if _, ok := ep.done[[2]uint64{3, doneWindow + 15}]; !ok {
		t.Fatal("newest entry missing")
	}
}
