package macro

import (
	"fmt"

	"nisim/internal/sim"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// This file expresses the ablation studies as sweep jobs so cmd/ablate and
// cmd/benchdump can fan them out. Each job wraps one row function from
// ablate.go; the paired *Points/*Rows helpers rebuild the typed rows from
// the orchestrator's ordered results.

// ablationJob wraps one on/off comparison as a sweep job.
func ablationJob(study string, row func() Ablation) sweep.Job {
	return sweep.Job{
		ID:     "ablate/" + study,
		Config: map[string]string{"experiment": "ablate", "study": study},
		Run: func() sweep.Outcome {
			a := row()
			return sweep.Outcome{
				Metrics: map[string]float64{"enabled": a.Enabled, "disabled": a.Disabled},
				Info:    map[string]string{"name": a.Name, "metric": a.Metric},
			}
		},
	}
}

// AblateMechanismJobs returns the on/off ablation rows (send prefetch,
// receive-cache bypass, dead-message suppression) in cmd/ablate's print
// order.
func AblateMechanismJobs(p workload.Params) []sweep.Job {
	jobs := make([]sweep.Job, 0, len(prefetchKinds)+4)
	for _, kind := range prefetchKinds {
		kind := kind
		jobs = append(jobs, ablationJob("prefetch/"+kind.ShortName(),
			func() Ablation { return prefetchRow(kind) }))
	}
	return append(jobs,
		ablationJob("bypass/em3d", func() Ablation { return bypassExecRow(p) }),
		ablationJob("bypass/invbw", bypassBwRow),
		ablationJob("deadsuppress/spsolve", func() Ablation { return deadSuppressExecRow(p) }),
		ablationJob("deadsuppress/invbw", deadSuppressBwRow),
	)
}

// AblationRows rebuilds Ablation rows from AblateMechanismJobs results.
func AblationRows(results []sweep.Result) []Ablation {
	rows := make([]Ablation, 0, len(results))
	for _, r := range results {
		rows = append(rows, Ablation{
			Name:     r.Info["name"],
			Metric:   r.Info["metric"],
			Enabled:  r.Metrics["enabled"],
			Disabled: r.Metrics["disabled"],
		})
	}
	return rows
}

// CacheSizeJobs returns one job per CNI_32Q_m NI-cache capacity sample.
func CacheSizeJobs(blocks []int, p workload.Params) []sweep.Job {
	jobs := make([]sweep.Job, 0, len(blocks))
	for _, b := range blocks {
		b := b
		jobs = append(jobs, sweep.Job{
			ID: fmt.Sprintf("ablate/cachesize/%d", b),
			Config: map[string]string{
				"experiment": "ablate", "study": "cachesize", "blocks": fmt.Sprint(b),
			},
			Run: func() sweep.Outcome {
				pt := cacheSizePoint(b, p)
				return sweep.Outcome{Metrics: map[string]float64{
					"rtt_us": pt.RttUS, "bw_mbps": pt.BwMBps, "em3d_us": pt.Em3dUS,
				}}
			},
		})
	}
	return jobs
}

// CacheSizePoints rebuilds the capacity sweep from CacheSizeJobs results;
// blocks must be the slice the jobs were built from.
func CacheSizePoints(blocks []int, results []sweep.Result) []CacheSizePoint {
	out := make([]CacheSizePoint, 0, len(blocks))
	for i, b := range blocks {
		m := results[i].Metrics
		out = append(out, CacheSizePoint{
			Blocks: b, RttUS: m["rtt_us"], BwMBps: m["bw_mbps"], Em3dUS: m["em3d_us"],
		})
	}
	return out
}

// UdmaThresholdJobs returns one job per UDMA fallback-threshold sample.
func UdmaThresholdJobs(thresholds []int, p workload.Params) []sweep.Job {
	jobs := make([]sweep.Job, 0, len(thresholds))
	for _, th := range thresholds {
		th := th
		jobs = append(jobs, sweep.Job{
			ID: fmt.Sprintf("ablate/udmathreshold/%d", th),
			Config: map[string]string{
				"experiment": "ablate", "study": "udmathreshold", "bytes": fmt.Sprint(th),
			},
			Run: func() sweep.Outcome {
				pt := thresholdPoint(th, p)
				return sweep.Outcome{Metrics: map[string]float64{"dsmc_us": pt.DsmcUS}}
			},
		})
	}
	return jobs
}

// ThresholdPoints rebuilds the threshold sweep from UdmaThresholdJobs
// results; thresholds must be the slice the jobs were built from.
func ThresholdPoints(thresholds []int, results []sweep.Result) []ThresholdPoint {
	out := make([]ThresholdPoint, 0, len(thresholds))
	for i, th := range thresholds {
		out = append(out, ThresholdPoint{Bytes: th, DsmcUS: results[i].Metrics["dsmc_us"]})
	}
	return out
}

// IOBusJobs returns the NI-placement grid: each fifo NI behind each I/O-bus
// bridge latency, kinds outer as AblateIOBus orders them.
func IOBusJobs(bridges []sim.Time) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range ioBusKinds {
		for _, br := range bridges {
			kind, br := kind, br
			jobs = append(jobs, sweep.Job{
				ID: fmt.Sprintf("ablate/iobus/%s/%s", kind.ShortName(), br),
				Config: map[string]string{
					"experiment": "ablate", "study": "iobus",
					"ni": kind.ShortName(), "bridge": br.String(),
				},
				Run: func() sweep.Outcome {
					pt := ioBusPoint(kind, br)
					return sweep.Outcome{Metrics: map[string]float64{
						"rtt_us": pt.RttUS, "bw_mbps": pt.BwMBps,
					}}
				},
			})
		}
	}
	return jobs
}

// IOBusPoints rebuilds the placement grid from IOBusJobs results; bridges
// must be the slice the jobs were built from.
func IOBusPoints(bridges []sim.Time, results []sweep.Result) []IOBusPoint {
	var out []IOBusPoint
	i := 0
	for _, kind := range ioBusKinds {
		for _, br := range bridges {
			m := results[i].Metrics
			i++
			out = append(out, IOBusPoint{
				Kind: kind, Bridge: br, RttUS: m["rtt_us"], BwMBps: m["bw_mbps"],
			})
		}
	}
	return out
}
