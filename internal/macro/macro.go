// Package macro runs the macrobenchmark experiments behind the paper's
// Figure 1 (data-transfer/buffering share of execution time), Figure 3a
// (fifo NIs across flow-control buffer counts), Figure 3b (coherent NIs),
// and Figure 4 (single-cycle NI_2w versus CNI_32Q_m).
package macro

import (
	"nisim/internal/machine"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/stats"
	"nisim/internal/workload"
)

// Exec runs one (NI, flow-buffer, application) cell and returns machine
// statistics.
func Exec(kind nic.Kind, flowBufs int, app workload.App, p workload.Params) *stats.Machine {
	cfg := machine.DefaultConfig(kind, flowBufs)
	return workload.Run(cfg, app, p)
}

// Figure1Row is one application's bar in Figure 1: of the execution time on
// a CM-5-like NI with one flow-control buffer, the share attributable to NI
// data transfer (the processor-time the transfer mechanism costs) and to
// buffering (the time that disappears when flow-control buffering is made
// infinite).
type Figure1Row struct {
	App               workload.App
	TransferFraction  float64
	BufferingFraction float64
}

// Figure1 regenerates Figure 1. Each application runs twice: once with one
// flow-control buffer (the figure's configuration) and once with infinite
// buffering. The buffering component is the differential; the transfer
// component is the measured transfer work under infinite buffering, as a
// share of the one-buffer execution time.
func Figure1(p workload.Params) []Figure1Row {
	var rows []Figure1Row
	for _, app := range workload.Apps() {
		one := Exec(nic.CM5, 1, app, p)
		inf := Exec(nic.CM5, netsim.Infinite, app, p)
		t1 := float64(one.ExecTime)
		buffering := (t1 - float64(inf.ExecTime)) / t1
		if buffering < 0 {
			buffering = 0
		}
		// Transfer work measured in the bounce-free run, expressed relative
		// to the one-buffer execution time.
		var transferTime float64
		for _, n := range inf.Nodes {
			transferTime += float64(n.TimeIn[stats.Transfer])
		}
		transfer := transferTime / (t1 * float64(len(inf.Nodes)))
		rows = append(rows, Figure1Row{
			App:               app,
			TransferFraction:  transfer,
			BufferingFraction: buffering,
		})
	}
	return rows
}

// BufferLevels are the flow-control buffer counts of Figure 3a and
// Figure 4 (Infinite renders as the black bar).
var BufferLevels = []int{1, 2, 8, netsim.Infinite}

// Cell is one (NI, buffers, app) execution time, normalized by the caller.
type Cell struct {
	Kind nic.Kind
	Bufs int
	App  workload.App
	// Normalized is execution time relative to the experiment's baseline.
	Normalized float64
	// ExecUS is the raw execution time in microseconds.
	ExecUS float64
}

// Figure3a regenerates Figure 3a: the three fifo-based NIs at each
// flow-control buffer level, normalized to the AP3000-like NI with eight
// buffers.
func Figure3a(p workload.Params) []Cell {
	return sweep([]nic.Kind{nic.CM5, nic.UDMA, nic.AP3000}, BufferLevels, p)
}

// Figure3b regenerates Figure 3b: the four fully or partially coherent
// NIs with eight flow-control buffers, normalized to the AP3000-like NI
// with eight buffers. (These NIs buffer in main memory, so they are
// insensitive to the flow-control buffer count.)
func Figure3b(p workload.Params) []Cell {
	return sweep([]nic.Kind{nic.MemoryChannel, nic.StarTJR, nic.CNI512Q, nic.CNI32Qm}, []int{8}, p)
}

func sweep(kinds []nic.Kind, bufLevels []int, p workload.Params) []Cell {
	var cells []Cell
	for _, app := range workload.Apps() {
		base := Exec(nic.AP3000, 8, app, p).ExecTime
		for _, k := range kinds {
			for _, b := range bufLevels {
				st := Exec(k, b, app, p)
				cells = append(cells, Cell{
					Kind: k, Bufs: b, App: app,
					Normalized: float64(st.ExecTime) / float64(base),
					ExecUS:     st.ExecTime.Microseconds(),
				})
			}
		}
	}
	return cells
}

// Figure4 regenerates Figure 4: the single-cycle (register-mapped) NI_2w
// at each flow-control buffer level, normalized to CNI_32Q_m on the memory
// bus (whose main-memory buffering makes it independent of the level).
func Figure4(p workload.Params) []Cell {
	var cells []Cell
	for _, app := range workload.Apps() {
		base := Exec(nic.CNI32Qm, 8, app, p).ExecTime
		for _, b := range append([]int{}, BufferLevels...) {
			st := Exec(nic.CM5SingleCycle, b, app, p)
			cells = append(cells, Cell{
				Kind: nic.CM5SingleCycle, Bufs: b, App: app,
				Normalized: float64(st.ExecTime) / float64(base),
				ExecUS:     st.ExecTime.Microseconds(),
			})
		}
	}
	return cells
}
