// Package macro runs the macrobenchmark experiments behind the paper's
// Figure 1 (data-transfer/buffering share of execution time), Figure 3a
// (fifo NIs across flow-control buffer counts), Figure 3b (coherent NIs),
// and Figure 4 (single-cycle NI_2w versus CNI_32Q_m).
package macro

import (
	"nisim/internal/machine"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/stats"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// Exec runs one (NI, flow-buffer, application) cell and returns machine
// statistics.
func Exec(kind nic.Kind, flowBufs int, app workload.App, p workload.Params) *stats.Machine {
	cfg := machine.DefaultConfig(kind, flowBufs)
	return workload.Run(cfg, app, p)
}

// Figure1Row is one application's bar in Figure 1: of the execution time on
// a CM-5-like NI with one flow-control buffer, the share attributable to NI
// data transfer (the processor-time the transfer mechanism costs) and to
// buffering (the time that disappears when flow-control buffering is made
// infinite).
type Figure1Row struct {
	App               workload.App
	TransferFraction  float64
	BufferingFraction float64
}

// Figure1 regenerates Figure 1. Each application runs twice: once with one
// flow-control buffer (the figure's configuration) and once with infinite
// buffering. The buffering component is the differential; the transfer
// component is the measured transfer work under infinite buffering, as a
// share of the one-buffer execution time. This serial entry point runs the
// Figure1Jobs grid one cell at a time; drivers that want parallelism
// submit the same grid through the orchestrator themselves.
func Figure1(p workload.Params) []Figure1Row {
	return Figure1Rows(sweep.RunSerial(Figure1Jobs(p)))
}

// BufferLevels are the flow-control buffer counts of Figure 3a and
// Figure 4 (Infinite renders as the black bar).
var BufferLevels = []int{1, 2, 8, netsim.Infinite}

// Cell is one (NI, buffers, app) execution time, normalized by the caller.
type Cell struct {
	Kind nic.Kind
	Bufs int
	App  workload.App
	// Normalized is execution time relative to the experiment's baseline.
	Normalized float64
	// ExecUS is the raw execution time in microseconds.
	ExecUS float64
}

// Figure3a regenerates Figure 3a: the three fifo-based NIs at each
// flow-control buffer level, normalized to the AP3000-like NI with eight
// buffers. Serial; parallel drivers submit Fig3aGrid through the
// orchestrator instead.
func Figure3a(p workload.Params) []Cell {
	g := Fig3aGrid(p)
	return g.Cells(sweep.RunSerial(g.Jobs()))
}

// Figure3b regenerates Figure 3b: the four fully or partially coherent
// NIs with eight flow-control buffers, normalized to the AP3000-like NI
// with eight buffers. (These NIs buffer in main memory, so they are
// insensitive to the flow-control buffer count.)
func Figure3b(p workload.Params) []Cell {
	g := Fig3bGrid(p)
	return g.Cells(sweep.RunSerial(g.Jobs()))
}

// Figure4 regenerates Figure 4: the single-cycle (register-mapped) NI_2w
// at each flow-control buffer level, normalized to CNI_32Q_m on the memory
// bus (whose main-memory buffering makes it independent of the level).
func Figure4(p workload.Params) []Cell {
	g := Fig4Grid(p)
	return g.Cells(sweep.RunSerial(g.Jobs()))
}
