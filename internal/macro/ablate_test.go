package macro

import (
	"testing"

	"nisim/internal/sim"
	"nisim/internal/workload"
)

func TestAblatePrefetchHelps(t *testing.T) {
	for _, a := range AblatePrefetch() {
		if a.Delta() < -0.01 {
			t.Errorf("%s: disabling prefetch improved %s by %.1f%%", a.Name, a.Metric, -100*a.Delta())
		}
	}
}

func TestAblateDeadSuppressHelps(t *testing.T) {
	for _, a := range AblateDeadSuppress(workload.Params{Iters: 0.3}) {
		if a.Delta() < -0.02 {
			t.Errorf("%s: disabling suppression improved %s by %.1f%%", a.Name, a.Metric, -100*a.Delta())
		}
	}
}

func TestAblateBypassTradesThroughputForNetwork(t *testing.T) {
	// Disabling the bypass turns the receive cache into a backpressure
	// throttle: point-to-point streaming gets faster (like the throttled
	// variant), which is exactly why the paper needed the bypass — without
	// it the network, not the sender, absorbs the stall. Assert the
	// direction so the trade-off stays visible.
	rows := AblateBypass(workload.Params{Iters: 0.3})
	for _, a := range rows {
		if a.Metric == "4096B inv-bw us/KB" && a.Delta() > 0.05 {
			t.Errorf("bypass ablation lost its throughput trade-off: %+.1f%%", 100*a.Delta())
		}
	}
}

func TestAblateCacheSizeMonotone(t *testing.T) {
	pts := AblateCacheSize([]int{8, 32, 128}, workload.Params{Iters: 0.3})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger NI caches must not hurt latency or em3d (allow 3% noise).
	if pts[2].RttUS > pts[0].RttUS*1.03 {
		t.Errorf("128-block cache rtt %.2f worse than 8-block %.2f", pts[2].RttUS, pts[0].RttUS)
	}
	if pts[2].Em3dUS > pts[0].Em3dUS*1.03 {
		t.Errorf("128-block cache em3d %.0f worse than 8-block %.0f", pts[2].Em3dUS, pts[0].Em3dUS)
	}
}

func TestAblateUdmaThresholdPaperChoiceReasonable(t *testing.T) {
	pts := AblateUdmaThreshold([]int{0, 96}, workload.Params{Iters: 0.3})
	if pts[1].DsmcUS > pts[0].DsmcUS*1.02 {
		t.Errorf("96B threshold (%.0f us) worse than always-DMA (%.0f us) on dsmc",
			pts[1].DsmcUS, pts[0].DsmcUS)
	}
}

func TestAblateIOBusDegradesMonotonically(t *testing.T) {
	pts := AblateIOBus([]sim.Time{0, 250 * sim.Nanosecond, 1000 * sim.Nanosecond})
	byKind := map[string][]IOBusPoint{}
	for _, p := range pts {
		byKind[p.Kind.ShortName()] = append(byKind[p.Kind.ShortName()], p)
	}
	for kind, ps := range byKind {
		for i := 1; i < len(ps); i++ {
			if ps[i].RttUS <= ps[i-1].RttUS {
				t.Errorf("%s: rtt not increasing with bridge latency", kind)
			}
			if ps[i].BwMBps >= ps[i-1].BwMBps {
				t.Errorf("%s: bandwidth not decreasing with bridge latency", kind)
			}
		}
		// The paper's motivation: I/O placement is a factor of 2-10 worse.
		slow, fast := ps[len(ps)-1], ps[0]
		ratio := slow.RttUS / fast.RttUS
		if ratio < 2 {
			t.Errorf("%s: 1us bridge only %.1fx worse; motivation claim lost", kind, ratio)
		}
	}
}
