package macro

import (
	"nisim/internal/machine"
	"nisim/internal/micro"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/workload"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: each flips one mechanism of a winning NI design (or moves an
// NI to the I/O bus) and measures what that mechanism was buying.

// ExecCfg runs one application under an explicit machine configuration.
func ExecCfg(cfg machine.Config, app workload.App, p workload.Params) sim.Time {
	return workload.Run(cfg, app, p).ExecTime
}

// Ablation is one on/off comparison: the metric with the mechanism enabled
// (the paper's configuration) and disabled.
type Ablation struct {
	Name     string
	Metric   string
	Enabled  float64
	Disabled float64
}

// Delta returns the relative cost of disabling the mechanism (positive
// means the mechanism helps).
func (a Ablation) Delta() float64 {
	if a.Enabled == 0 {
		return 0
	}
	return a.Disabled/a.Enabled - 1
}

// AblatePrefetch measures the CNI send-side prefetch: 256-byte round-trip
// latency (µs) with and without it, for both prefetching CNIs.
func AblatePrefetch() []Ablation {
	var out []Ablation
	for _, kind := range prefetchKinds {
		out = append(out, prefetchRow(kind))
	}
	return out
}

var prefetchKinds = []nic.Kind{nic.CNI512Q, nic.CNI32Qm}

func prefetchRow(kind nic.Kind) Ablation {
	on := machine.DefaultConfig(kind, 8)
	off := on
	off.NI.DisableCNIPrefetch = true
	return Ablation{
		Name:     kind.ShortName() + " send prefetch",
		Metric:   "256B rtt us",
		Enabled:  micro.RoundTripCfg(on, 256, 550, 50).Microseconds(),
		Disabled: micro.RoundTripCfg(off, 256, 550, 50).Microseconds(),
	}
}

// AblateBypass measures the CNI_32Q_m receive-cache bypass: large-message
// bandwidth (MB/s, inverted so Delta>0 means bypass helps) and em3d
// execution time with and without it.
func AblateBypass(p workload.Params) []Ablation {
	return []Ablation{bypassExecRow(p), bypassBwRow()}
}

func bypassConfigs() (on, off machine.Config) {
	on = machine.DefaultConfig(nic.CNI32Qm, 8)
	off = on
	off.NI.DisableCNIBypass = true
	return on, off
}

func bypassExecRow(p workload.Params) Ablation {
	on, off := bypassConfigs()
	return Ablation{
		Name:     "cni32qm recv-cache bypass",
		Metric:   "em3d exec us",
		Enabled:  ExecCfg(on, workload.Em3d, p).Microseconds(),
		Disabled: ExecCfg(off, workload.Em3d, p).Microseconds(),
	}
}

func bypassBwRow() Ablation {
	on, off := bypassConfigs()
	return Ablation{
		Name:   "cni32qm recv-cache bypass",
		Metric: "4096B inv-bw us/KB",
		// Invert MB/s so that "disabled is worse" reads as Delta > 0.
		Enabled:  1000 / micro.BandwidthCfg(on, 4096, 60),
		Disabled: 1000 / micro.BandwidthCfg(off, 4096, 60),
	}
}

// AblateDeadSuppress measures dead-message suppression: without it, every
// consumed block is written back to memory on reclamation.
func AblateDeadSuppress(p workload.Params) []Ablation {
	return []Ablation{deadSuppressExecRow(p), deadSuppressBwRow()}
}

func deadSuppressConfigs() (on, off machine.Config) {
	on = machine.DefaultConfig(nic.CNI32Qm, 8)
	off = on
	off.NI.DisableDeadSuppress = true
	return on, off
}

func deadSuppressExecRow(p workload.Params) Ablation {
	on, off := deadSuppressConfigs()
	return Ablation{
		Name:     "cni32qm dead-message suppression",
		Metric:   "spsolve exec us",
		Enabled:  ExecCfg(on, workload.Spsolve, p).Microseconds(),
		Disabled: ExecCfg(off, workload.Spsolve, p).Microseconds(),
	}
}

func deadSuppressBwRow() Ablation {
	on, off := deadSuppressConfigs()
	return Ablation{
		Name:     "cni32qm dead-message suppression",
		Metric:   "4096B inv-bw us/KB",
		Enabled:  1000 / micro.BandwidthCfg(on, 4096, 60),
		Disabled: 1000 / micro.BandwidthCfg(off, 4096, 60),
	}
}

// CacheSizePoint is one CNI_32Q_m NI-cache capacity sample.
type CacheSizePoint struct {
	Blocks int
	RttUS  float64 // 64-byte round trip
	BwMBps float64 // 4096-byte bandwidth
	Em3dUS float64 // em3d execution time
}

// AblateCacheSize sweeps the CNI_32Q_m NI cache capacity — how much SRAM
// does the "CNI with cache" need before it behaves like one?
func AblateCacheSize(blocks []int, p workload.Params) []CacheSizePoint {
	var out []CacheSizePoint
	for _, b := range blocks {
		out = append(out, cacheSizePoint(b, p))
	}
	return out
}

func cacheSizePoint(b int, p workload.Params) CacheSizePoint {
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.NI.CNICacheBlocks = b
	return CacheSizePoint{
		Blocks: b,
		RttUS:  micro.RoundTripCfg(cfg, 64, 550, 50).Microseconds(),
		BwMBps: micro.BandwidthCfg(cfg, 4096, 60),
		Em3dUS: ExecCfg(cfg, workload.Em3d, p).Microseconds(),
	}
}

// ThresholdPoint is one UDMA fallback-threshold sample.
type ThresholdPoint struct {
	Bytes  int
	DsmcUS float64
}

// AblateUdmaThreshold sweeps the UDMA small-message fallback threshold
// (§6.1.1 fixes it at 96 bytes for the macrobenchmarks).
func AblateUdmaThreshold(thresholds []int, p workload.Params) []ThresholdPoint {
	var out []ThresholdPoint
	for _, th := range thresholds {
		out = append(out, thresholdPoint(th, p))
	}
	return out
}

func thresholdPoint(th int, p workload.Params) ThresholdPoint {
	cfg := machine.DefaultConfig(nic.UDMA, 8)
	cfg.NI.UDMAThresholdBytes = th
	return ThresholdPoint{
		Bytes:  th,
		DsmcUS: ExecCfg(cfg, workload.Dsmc, p).Microseconds(),
	}
}

// IOBusPoint is one NI-placement sample: the same fifo NI behind an
// I/O-bus bridge of the given extra latency.
type IOBusPoint struct {
	Kind   nic.Kind
	Bridge sim.Time
	RttUS  float64
	BwMBps float64
}

// AblateIOBus moves the fifo NIs behind an I/O bridge — the paper's
// motivation for memory-bus NIs ("I/O buses offer latencies and bandwidth
// that are a factor of two to ten worse").
func AblateIOBus(bridges []sim.Time) []IOBusPoint {
	var out []IOBusPoint
	for _, kind := range ioBusKinds {
		for _, br := range bridges {
			out = append(out, ioBusPoint(kind, br))
		}
	}
	return out
}

var ioBusKinds = []nic.Kind{nic.CM5, nic.AP3000}

func ioBusPoint(kind nic.Kind, br sim.Time) IOBusPoint {
	cfg := machine.DefaultConfig(kind, 8)
	cfg.NI.IOBridge = br
	return IOBusPoint{
		Kind:   kind,
		Bridge: br,
		RttUS:  micro.RoundTripCfg(cfg, 64, 200, 40).Microseconds(),
		BwMBps: micro.BandwidthCfg(cfg, 256, 80),
	}
}
