// Grid definitions: the macrobenchmark experiments expressed as sweep
// jobs, the single source of truth shared by the cmd drivers, the bench
// harness, and cmd/benchdump. Each job runs one share-nothing simulation;
// the paired assembly helpers rebuild the figures' typed rows from the
// orchestrator's ordered results.
package macro

import (
	"fmt"

	"nisim/internal/machine"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// BufName renders a flow-control buffer count, with netsim.Infinite as
// "inf" (the figures' black bar).
func BufName(b int) string {
	if b >= netsim.Infinite {
		return "inf"
	}
	return fmt.Sprintf("%d", b)
}

// ExecJob wraps one (NI, buffers, application) cell as a sweep job
// reporting the full machine metric map (stats.Machine.Metrics).
func ExecJob(experiment string, kind nic.Kind, bufs int, app workload.App, p workload.Params) sweep.Job {
	return sweep.Job{
		ID: fmt.Sprintf("%s/%s/bufs=%s/%s", experiment, kind.ShortName(), BufName(bufs), app),
		Config: map[string]string{
			"experiment": experiment, "ni": kind.ShortName(),
			"bufs": BufName(bufs), "app": string(app),
		},
		Run: func() sweep.Outcome {
			return sweep.Outcome{Metrics: Exec(kind, bufs, app, p).Metrics()}
		},
	}
}

// Figure1Jobs returns the Figure 1 grid: per application, the CM-5-like NI
// with one flow-control buffer and with infinite buffering, in that order
// (Figure1Rows depends on the pairing).
func Figure1Jobs(p workload.Params) []sweep.Job {
	var jobs []sweep.Job
	for _, app := range workload.Apps() {
		jobs = append(jobs,
			ExecJob("fig1", nic.CM5, 1, app, p),
			ExecJob("fig1", nic.CM5, netsim.Infinite, app, p))
	}
	return jobs
}

// Figure1Rows reassembles Figure 1 rows from Figure1Jobs results: the
// buffering share is the one-buffer vs infinite-buffer differential, the
// transfer share is the bounce-free run's measured transfer work relative
// to the one-buffer execution time.
func Figure1Rows(results []sweep.Result) []Figure1Row {
	var rows []Figure1Row
	for i := 0; i+1 < len(results); i += 2 {
		one, inf := results[i], results[i+1]
		t1 := one.Metrics["exec_us"]
		if t1 <= 0 {
			continue
		}
		buffering := (t1 - inf.Metrics["exec_us"]) / t1
		if buffering < 0 {
			buffering = 0
		}
		rows = append(rows, Figure1Row{
			App:               workload.App(one.Config["app"]),
			TransferFraction:  inf.Metrics["transfer_total_us"] / (t1 * inf.Metrics["nodes"]),
			BufferingFraction: buffering,
		})
	}
	return rows
}

// NormGrid is a normalized-execution-time experiment: for each
// application, one baseline (BaseKind at BaseBufs) plus one cell per
// (kind, buffer) point, every cell normalized to its application's
// baseline.
type NormGrid struct {
	Name     string // experiment label for job IDs and the JSON report
	BaseKind nic.Kind
	BaseBufs int
	Kinds    []nic.Kind
	Bufs     []int
	Apps     []workload.App
	Params   workload.Params
}

// Fig3aGrid is Figure 3a: the three fifo-based NIs at each flow-control
// buffer level, normalized to the AP3000-like NI with eight buffers.
func Fig3aGrid(p workload.Params) NormGrid {
	return NormGrid{
		Name: "fig3a", BaseKind: nic.AP3000, BaseBufs: 8,
		Kinds: []nic.Kind{nic.CM5, nic.UDMA, nic.AP3000},
		Bufs:  BufferLevels, Apps: workload.Apps(), Params: p,
	}
}

// Fig3bGrid is Figure 3b: the four coherent NIs at eight buffers,
// normalized to the AP3000-like NI with eight buffers.
func Fig3bGrid(p workload.Params) NormGrid {
	return NormGrid{
		Name: "fig3b", BaseKind: nic.AP3000, BaseBufs: 8,
		Kinds: []nic.Kind{nic.MemoryChannel, nic.StarTJR, nic.CNI512Q, nic.CNI32Qm},
		Bufs:  []int{8}, Apps: workload.Apps(), Params: p,
	}
}

// Fig4Grid is Figure 4: the single-cycle NI_2w at each flow-control buffer
// level, normalized to CNI_32Q_m on the memory bus.
func Fig4Grid(p workload.Params) NormGrid {
	return NormGrid{
		Name: "fig4", BaseKind: nic.CNI32Qm, BaseBufs: 8,
		Kinds: []nic.Kind{nic.CM5SingleCycle},
		Bufs:  BufferLevels, Apps: workload.Apps(), Params: p,
	}
}

// Jobs returns the grid's cells in the deterministic order Cells expects:
// per application, the baseline first, then kinds × buffer levels.
func (g NormGrid) Jobs() []sweep.Job {
	var jobs []sweep.Job
	for _, app := range g.Apps {
		jobs = append(jobs, ExecJob(g.Name+"/base", g.BaseKind, g.BaseBufs, app, g.Params))
		for _, k := range g.Kinds {
			for _, b := range g.Bufs {
				jobs = append(jobs, ExecJob(g.Name, k, b, app, g.Params))
			}
		}
	}
	return jobs
}

// Cells normalizes the results of running Jobs() through the orchestrator
// into the figures' cells, in the same per-application order the serial
// code produced.
func (g NormGrid) Cells(results []sweep.Result) []Cell {
	var cells []Cell
	i := 0
	next := func() sweep.Result { r := results[i]; i++; return r }
	for range g.Apps {
		base := next().Metrics["exec_us"]
		for _, k := range g.Kinds {
			for _, b := range g.Bufs {
				r := next()
				exec := r.Metrics["exec_us"]
				cells = append(cells, Cell{
					Kind: k, Bufs: b, App: workload.App(r.Config["app"]),
					Normalized: exec / base,
					ExecUS:     exec,
				})
			}
		}
	}
	return cells
}

// Table4Jobs returns one job per macrobenchmark measuring the
// message-size distribution of a standard 16-node run on CNI_32Q_m.
func Table4Jobs(p workload.Params) []sweep.Job {
	var jobs []sweep.Job
	for _, app := range workload.Apps() {
		app := app
		jobs = append(jobs, sweep.Job{
			ID: fmt.Sprintf("table4/%s", app),
			Config: map[string]string{
				"experiment": "table4", "ni": nic.CNI32Qm.ShortName(),
				"bufs": "8", "app": string(app),
			},
			Run: func() sweep.Outcome {
				cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
				st := workload.Run(cfg, app, p)
				sizes := st.Total().Sizes()
				m := st.Metrics()
				m["hist_msgs"] = float64(sizes.Total())
				m["hist_mean_bytes"] = sizes.Mean()
				return sweep.Outcome{
					Metrics: m,
					Info:    map[string]string{"peaks": sizes.String()},
				}
			},
		})
	}
	return jobs
}

// ScaleFigure1Jobs returns the Figure 1 transfer/buffering pairs at large
// machine sizes for a representative application mix — the shared-memory
// kernels (appbt, barnes) plus the message-counting dsmc, which until the
// quiescence ledger went message-confined could not shard at all: per size
// and application, the CM-5-like NI with one flow-control buffer and with
// infinite buffering, in that order, so Figure1Rows reassembles the bars
// unchanged. Each cell's simulation is partitioned across shards engine
// shards. Shards is an execution strategy, not an experiment parameter —
// results are byte-identical at any value (the partition determinism
// regression pins it) — so it appears in neither the job IDs nor the
// config maps.
func ScaleFigure1Jobs(sizes []int, shards int, p workload.Params) []sweep.Job {
	var jobs []sweep.Job
	for _, nodes := range sizes {
		for _, app := range []workload.App{workload.Appbt, workload.Barnes, workload.Dsmc} {
			for _, bufs := range []int{1, netsim.Infinite} {
				nodes, app, bufs := nodes, app, bufs
				jobs = append(jobs, sweep.Job{
					ID: fmt.Sprintf("scalefig1/%s/nodes=%d/bufs=%s/%s",
						nic.CM5.ShortName(), nodes, BufName(bufs), app),
					Config: map[string]string{
						"experiment": "scalefig1", "ni": nic.CM5.ShortName(),
						"bufs": BufName(bufs), "nodes": fmt.Sprint(nodes), "app": string(app),
					},
					Run: func() sweep.Outcome {
						cfg := machine.DefaultConfig(nic.CM5, bufs)
						cfg.Nodes = nodes
						cfg.Shards = shards
						return sweep.Outcome{Metrics: workload.Run(cfg, app, p).Metrics()}
					},
				})
			}
		}
	}
	return jobs
}

// ScaleJobs returns the machine-size scaling grid: the application on a
// fifo NI and a coherent NI across machine sizes, eight flow-control
// buffers. shards partitions each cell's engine (every application
// shards; see Config.Shards).
func ScaleJobs(app workload.App, sizes []int, shards int, p workload.Params) []sweep.Job {
	var jobs []sweep.Job
	for _, nodes := range sizes {
		for _, kind := range []nic.Kind{nic.CM5, nic.CNI32Qm} {
			nodes, kind := nodes, kind
			jobs = append(jobs, sweep.Job{
				ID: fmt.Sprintf("scale/%s/nodes=%d/%s", kind.ShortName(), nodes, app),
				Config: map[string]string{
					"experiment": "scale", "ni": kind.ShortName(),
					"bufs": "8", "nodes": fmt.Sprint(nodes), "app": string(app),
				},
				Run: func() sweep.Outcome {
					cfg := machine.DefaultConfig(kind, 8)
					cfg.Nodes = nodes
					cfg.Shards = shards
					return sweep.Outcome{Metrics: workload.Run(cfg, app, p).Metrics()}
				},
			})
		}
	}
	return jobs
}
