package macro

import (
	"testing"

	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/workload"
)

// quick keeps macro runs short; full-scale results live in EXPERIMENTS.md.
var quick = workload.Params{Iters: 0.3}

func norm(t *testing.T, kind nic.Kind, bufs int, app workload.App) float64 {
	t.Helper()
	base := Exec(nic.AP3000, 8, app, quick).ExecTime
	return float64(Exec(kind, bufs, app, quick).ExecTime) / float64(base)
}

func TestFigure1FractionsSane(t *testing.T) {
	rows := Figure1(quick)
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.TransferFraction <= 0 || r.TransferFraction >= 1 {
			t.Errorf("%s: transfer fraction %.2f out of range", r.App, r.TransferFraction)
		}
		if r.BufferingFraction < 0 || r.BufferingFraction >= 1 {
			t.Errorf("%s: buffering fraction %.2f out of range", r.App, r.BufferingFraction)
		}
		if r.TransferFraction+r.BufferingFraction >= 1 {
			t.Errorf("%s: fractions sum to %.2f", r.App, r.TransferFraction+r.BufferingFraction)
		}
	}
}

func TestFigure1BuffersMatterMostForEm3dSpsolve(t *testing.T) {
	rows := Figure1(quick)
	byApp := map[workload.App]Figure1Row{}
	var maxOther float64
	for _, r := range rows {
		byApp[r.App] = r
		if r.App != workload.Em3d && r.App != workload.Spsolve {
			if r.BufferingFraction > maxOther {
				maxOther = r.BufferingFraction
			}
		}
	}
	if byApp[workload.Spsolve].BufferingFraction <= maxOther/2 {
		t.Errorf("spsolve buffering fraction %.2f not among the largest (others max %.2f)",
			byApp[workload.Spsolve].BufferingFraction, maxOther)
	}
}

func TestOneToTwoBuffersHelpsEverywhere(t *testing.T) {
	// §6.2.1: going from one to two flow-control buffers improves every
	// application on every fifo NI (6-40% in the paper; we require any
	// improvement beyond noise).
	for _, app := range workload.Apps() {
		one := Exec(nic.CM5, 1, app, quick).ExecTime
		two := Exec(nic.CM5, 2, app, quick).ExecTime
		if float64(two) > float64(one)*1.02 {
			t.Errorf("%s: two buffers (%v) worse than one (%v)", app, two, one)
		}
	}
}

func TestSpsolveKeepsGainingBeyondTwoBuffers(t *testing.T) {
	two := Exec(nic.CM5, 2, workload.Spsolve, quick).ExecTime
	inf := Exec(nic.CM5, netsim.Infinite, workload.Spsolve, quick).ExecTime
	gain := float64(two-inf) / float64(inf)
	if gain < 0.15 {
		t.Errorf("spsolve 2->inf improvement only %.0f%%; buffering sensitivity lost", 100*gain)
	}
}

func TestCoherentNIsInsensitiveToFlowBuffers(t *testing.T) {
	// §6.2.2: NIs that buffer in main memory barely notice the flow-control
	// buffer count.
	for _, kind := range []nic.Kind{nic.StarTJR, nic.CNI32Qm} {
		one := Exec(kind, 1, workload.Em3d, quick).ExecTime
		inf := Exec(kind, netsim.Infinite, workload.Em3d, quick).ExecTime
		if float64(one) > float64(inf)*1.15 {
			t.Errorf("%v: one buffer (%v) >15%% worse than infinite (%v)", kind, one, inf)
		}
	}
}

func TestCNI32QmBestOnBufferSensitiveApps(t *testing.T) {
	// §6.2.2: CNI_32Qm outperforms the other NIs on em3d and spsolve.
	for _, app := range []workload.App{workload.Em3d, workload.Spsolve} {
		best := norm(t, nic.CNI32Qm, 8, app)
		for _, k := range []nic.Kind{nic.MemoryChannel, nic.StarTJR, nic.CNI512Q} {
			if v := norm(t, k, 8, app); v < best*0.98 {
				t.Errorf("%s: %v (%.2f) beats CNI_32Qm (%.2f)", app, k, v, best)
			}
		}
	}
}

func TestMemoryChannelBigWinOnEm3dSpsolve(t *testing.T) {
	// §6.2.2: the Memory Channel-like NI is significantly better than the
	// AP3000-like NI for em3d and spsolve (plentiful NI-managed buffering).
	for _, app := range []workload.App{workload.Em3d, workload.Spsolve} {
		if v := norm(t, nic.MemoryChannel, 8, app); v > 0.85 {
			t.Errorf("%s: MC-like NI at %.2f of AP3000, want a clear win", app, v)
		}
	}
}

func TestUnstructuredIsAP3000Friendliest(t *testing.T) {
	// §6.2.2: unstructured streams bulk data, which the AP3000-like NI's
	// block path serves well: it is the application where the coherent NIs'
	// advantage is smallest.
	minOther := 10.0
	var unstr float64
	for _, app := range workload.Apps() {
		v := norm(t, nic.StarTJR, 8, app)
		if app == workload.Unstructured {
			unstr = v
		} else if v < minOther {
			minOther = v
		}
	}
	if unstr <= minOther {
		t.Errorf("unstructured (%.2f) not the least coherent-friendly app (min other %.2f)", unstr, minOther)
	}
}

func TestFigure4SingleCycleVsCNI32Qm(t *testing.T) {
	// §6.3's corollary: with scant flow-control buffering, a memory-bus
	// CNI_32Qm is comparable to or better than even a register-mapped
	// NI_2w on the buffering-hungry applications; with plentiful buffering
	// the register-mapped NI wins again. (Our breakeven points sit at
	// smaller buffer counts than the paper's; see EXPERIMENTS.md.)
	for _, app := range []workload.App{workload.Spsolve, workload.Em3d} {
		base := Exec(nic.CNI32Qm, 8, app, quick).ExecTime
		oneBuf := Exec(nic.CM5SingleCycle, 1, app, quick).ExecTime
		if float64(oneBuf) < float64(base)*0.97 {
			t.Errorf("%s: single-cycle NI_2w @1 buffer (%v) clearly beats CNI_32Qm (%v)", app, oneBuf, base)
		}
		infBuf := Exec(nic.CM5SingleCycle, netsim.Infinite, app, quick).ExecTime
		if infBuf >= base {
			t.Errorf("%s: single-cycle NI_2w @inf buffers (%v) not better than CNI_32Qm (%v)", app, infBuf, base)
		}
	}
}

func TestFigure4CellsComplete(t *testing.T) {
	cells := Figure4(workload.Params{Iters: 0.15})
	if len(cells) != len(workload.Apps())*len(BufferLevels) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Normalized <= 0 {
			t.Errorf("%s bufs=%d: normalized %.2f", c.App, c.Bufs, c.Normalized)
		}
	}
}

func TestBusTrafficClaimCNI32QmVsStarTJR(t *testing.T) {
	// §6.2.2: CNI_32Qm cuts main-memory-to-processor-cache transfers
	// versus the Start-JR-like NI by serving receives cache-to-cache.
	sj := Exec(nic.StarTJR, 8, workload.Em3d, quick).Total()
	qm := Exec(nic.CNI32Qm, 8, workload.Em3d, quick).Total()
	if qm.MemToCache >= sj.MemToCache {
		t.Errorf("CNI_32Qm mem-to-cache %d not below StarT-JR %d", qm.MemToCache, sj.MemToCache)
	}
	if qm.CacheToCache <= sj.CacheToCache {
		t.Errorf("CNI_32Qm cache-to-cache %d not above StarT-JR %d", qm.CacheToCache, sj.CacheToCache)
	}
}
