package shmem_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"nisim/internal/machine"
	"nisim/internal/membus"
	"nisim/internal/nic"
	"nisim/internal/shmem"
)

func newMachine(nodes int) *machine.Machine {
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = nodes
	return machine.New(cfg)
}

const blk = membus.BlockSize

func TestReadMissThenHit(t *testing.T) {
	m := newMachine(4)
	p := shmem.New(shmem.DefaultConfig())
	states := make([]string, 4)
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		if n.ID == 2 {
			sn.Read(1 * blk) // homed at node 1
			states[2] = sn.State(1 * blk)
			sn.Read(1 * blk) // hit
		}
		n.Barrier()
	})
	if states[2] != "S" {
		t.Fatalf("state after read = %q, want S", states[2])
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := newMachine(4)
	p := shmem.New(shmem.DefaultConfig())
	var after2, after3 string
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		// Nodes 2 and 3 read block 0 (homed at 0); then node 1 writes it.
		if n.ID == 2 || n.ID == 3 {
			sn.Read(0)
		}
		n.Barrier()
		if n.ID == 1 {
			sn.Write(0)
		}
		n.Barrier()
		// The write must have invalidated the readers. They poll during
		// barriers, so the invalidations have been served.
		if n.ID == 2 {
			after2 = sn.State(0)
		}
		if n.ID == 3 {
			after3 = sn.State(0)
		}
		n.Barrier()
	})
	if after2 != "I" || after3 != "I" {
		t.Fatalf("sharer states after remote write = %q/%q, want I/I", after2, after3)
	}
}

func TestRecallFromOwner(t *testing.T) {
	m := newMachine(4)
	p := shmem.New(shmem.DefaultConfig())
	var ownerAfter, readerState string
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		if n.ID == 1 {
			sn.Write(2 * blk) // homed at node 2, owned M by node 1
		}
		n.Barrier()
		if n.ID == 3 {
			sn.Read(2 * blk) // must recall from node 1
			readerState = sn.State(2 * blk)
		}
		n.Barrier()
		if n.ID == 1 {
			ownerAfter = sn.State(2 * blk)
		}
		n.Barrier()
	})
	if readerState != "S" {
		t.Fatalf("reader state = %q, want S", readerState)
	}
	if ownerAfter != "I" {
		t.Fatalf("previous owner state = %q, want I (recalled)", ownerAfter)
	}
}

func TestDataTravelsWithProtocol(t *testing.T) {
	m := newMachine(4)
	p := shmem.New(shmem.DefaultConfig())
	want := []byte("boundary values!")
	var got []byte
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		if n.ID == 1 {
			sn.SeedBytes(1*blk, want) // block 1 homed at node 1
		}
		n.Barrier()
		if n.ID == 3 {
			got = sn.ReadBytes(1 * blk)
		}
		n.Barrier()
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

func TestWrittenDataVisibleAfterRecall(t *testing.T) {
	m := newMachine(4)
	p := shmem.New(shmem.DefaultConfig())
	var got []byte
	want := []byte("updated by node 1")
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		if n.ID == 1 {
			sn.WriteBytes(2*blk, want)
		}
		n.Barrier()
		if n.ID == 0 {
			got = sn.ReadBytes(2 * blk)
		}
		n.Barrier()
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

func TestHomeLocalAccesses(t *testing.T) {
	m := newMachine(2)
	p := shmem.New(shmem.DefaultConfig())
	var st string
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		if n.ID == 0 {
			sn.Write(0) // block 0 homed at node 0: no messages needed
			st = sn.State(0)
		}
		n.Barrier()
	})
	if st != "M" {
		t.Fatalf("home-local write state = %q, want M", st)
	}
}

func TestRacingWritersSerialize(t *testing.T) {
	// All nodes hammer the same block with writes; afterwards exactly one
	// owner remains and everyone agrees on the final bytes.
	m := newMachine(4)
	p := shmem.New(shmem.DefaultConfig())
	final := make([][]byte, 4)
	m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		for i := 0; i < 5; i++ {
			sn.WriteBytes(3*blk, []byte(fmt.Sprintf("node%d-i%d", n.ID, i)))
		}
		n.Barrier()
		final[n.ID] = sn.ReadBytes(3 * blk)
		n.Barrier()
	})
	for i := 1; i < 4; i++ {
		if !bytes.Equal(final[i], final[0]) {
			t.Fatalf("nodes disagree on final value: %q vs %q", final[0], final[i])
		}
	}
}

// Property: for any interleaving of reads and writes over a small set of
// blocks, the protocol terminates and single-writer/multi-reader holds at
// quiescence: a block with state M anywhere has no other sharers.
func TestCoherenceInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 24 {
			ops = ops[:24]
		}
		const N = 4
		m := newMachine(N)
		p := shmem.New(shmem.DefaultConfig())
		sns := make([]*shmem.Node, N)
		ok := true
		m.Run(func(n *machine.Node) {
			sn := p.Register(n)
			sns[n.ID] = sn
			n.Barrier()
			for i, op := range ops {
				if int(op)%N != n.ID {
					continue
				}
				gaddr := int64(op/16%4) * blk
				if (int(op)+i)%2 == 0 {
					sn.Read(gaddr)
				} else {
					sn.Write(gaddr)
				}
			}
			n.Barrier() // serve stragglers
			n.Barrier()
		})
		for b := int64(0); b < 4; b++ {
			owners, sharers := 0, 0
			for _, sn := range sns {
				switch sn.State(b * blk) {
				case "M":
					owners++
				case "S":
					sharers++
				}
			}
			if owners > 1 || (owners == 1 && sharers > 0) {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolMessageSizes(t *testing.T) {
	// appbt grain: 12-byte requests, 32-byte data.
	cfg := shmem.DefaultConfig()
	cfg.DataBytes = 24
	m := newMachine(4)
	p := shmem.New(cfg)
	st := m.Run(func(n *machine.Node) {
		sn := p.Register(n)
		n.Barrier()
		if n.ID == 3 {
			for i := int64(0); i < 20; i++ {
				sn.Read((i*4 + 1) * blk)
			}
		}
		n.Barrier()
	})
	sizes := st.Total().Sizes()
	if sizes.Count(12) == 0 {
		t.Fatal("no 12-byte protocol requests recorded")
	}
	if sizes.Count(32) == 0 {
		t.Fatal("no 32-byte data replies recorded")
	}
}
