// Package shmem implements a Tempest-style, user-level, invalidation-based
// shared-memory protocol over the active-message layer — the substrate the
// paper's appbt and barnes run on ("Tempest's default invalidation-based
// shared memory protocol", §5.2).
//
// The protocol is home-based and fine-grain: a global block address space
// is distributed round-robin across the nodes; each home keeps a directory
// entry per block (sharers, owner, transient state) and serializes racing
// requests. Protocol messages use the paper's observed sizes: 12-byte
// requests/invalidations/acks, 16-byte upgrade grants, and data replies of
// a configurable grain (the applications in Table 4 show 32-byte replies
// for appbt's word-grain data and 140-byte replies for barnes's
// block-grain cells).
//
// Handlers never block: multi-step transactions (recalls, invalidation
// rounds) are completed by later handler invocations, with waiters parked
// in the requesting processor's poll loop. All protocol data also moves
// through the local cache model via per-block shadow addresses, so the
// timing includes the processor-side cache behavior of the protocol.
package shmem

import (
	"fmt"
	"sort"

	"nisim/internal/machine"
	"nisim/internal/membus"
	"nisim/internal/msglayer"
)

// Block states at a caching node.
type state int8

const (
	invalid state = iota
	shared
	exclusive
)

// Handler ids used by the protocol (one contiguous reserved band).
const (
	hReadReq = 100 + iota
	hWriteReq
	hData      // data reply (read)
	hDataExcl  // data reply (write/exclusive)
	hUpgrade   // exclusive grant without data (requester already had S)
	hInval     // invalidate a sharer
	hInvalAck  // sharer's acknowledgment to home
	hRecall    // recall modified data from the owner
	hWriteBack // owner's data back to home
)

// Config sets the protocol's data grain.
type Config struct {
	// DataBytes is the payload of a data reply or writeback. 24 produces
	// the 32-byte messages of appbt's word-grain data; 132 the 140-byte
	// messages of barnes's block-grain cells.
	DataBytes int
	// CtlBytes is the payload of requests, invalidations and acks
	// (4 ⇒ 12-byte messages).
	CtlBytes int
	// UpgradeBytes is the payload of an exclusive grant without data
	// (8 ⇒ 16-byte messages).
	UpgradeBytes int
	// ShadowBlocks is the size of the per-node shadow region the cached
	// copies live in (timing only).
	ShadowBlocks int
	// ShadowBase is the local physical base address of the shadow region.
	ShadowBase membus.Addr
}

// DefaultConfig returns a block-grain (140-byte data message) protocol.
func DefaultConfig() Config {
	return Config{
		DataBytes:    132,
		CtlBytes:     4,
		UpgradeBytes: 8,
		ShadowBlocks: 4096,
		ShadowBase:   machine.AppBase + 0x20_0000,
	}
}

// directory is the home-side state of one block.
type directory struct {
	sharers map[int]bool
	owner   int // -1 when no exclusive owner
	// busy marks an in-flight transaction; requests arriving meanwhile
	// queue below and are served strictly in arrival order.
	busy    bool
	pending []pendingReq
	// acksLeft counts outstanding invalidation acks for the current
	// transaction.
	acksLeft int
	// data holds the current value when real payload bytes are in use.
	data []byte
}

type pendingReq struct {
	node  int
	write bool
}

// Protocol is one shared run's protocol instance; create it once and
// Register every node before machine.Run starts the programs.
type Protocol struct {
	cfg   Config
	nodes []*endpoint
}

// endpoint is the per-node protocol state.
type endpoint struct {
	p    *Protocol
	n    *machine.Node
	dir  map[int64]*directory // blocks this node is home for
	st   map[int64]state      // local cache state per global block
	wait map[int64]bool       // outstanding miss per block
	data map[int64][]byte     // local copy when real bytes are in use
}

// New creates a protocol with the given data grain.
func New(cfg Config) *Protocol {
	if cfg.DataBytes <= 0 || cfg.CtlBytes <= 0 || cfg.ShadowBlocks <= 0 {
		panic("shmem: invalid config")
	}
	return &Protocol{cfg: cfg}
}

// HomeOf returns the home node of a global block.
func (p *Protocol) HomeOf(gblock int64) int {
	return int(gblock % int64(len(p.nodes)))
}

// Reserve pre-sizes the protocol's node table for n nodes. Call it in
// serial context (when building the program, before machine.Run) on a
// partitioned machine: Register then performs only a disjoint per-node
// element write, safe even when every node registers concurrently from its
// own shard at time zero. Serial machines may skip it; Register grows the
// table lazily.
func (p *Protocol) Reserve(n int) {
	for len(p.nodes) < n {
		p.nodes = append(p.nodes, nil)
	}
}

// Register wires node n into the protocol and installs its handlers. Call
// once per node, inside the node's program, before any Access.
func (p *Protocol) Register(n *machine.Node) *Node {
	ep := &endpoint{
		p:    p,
		n:    n,
		dir:  make(map[int64]*directory),
		st:   make(map[int64]state),
		wait: make(map[int64]bool),
		data: make(map[int64][]byte),
	}
	for len(p.nodes) <= n.ID {
		p.nodes = append(p.nodes, nil)
	}
	p.nodes[n.ID] = ep
	ep.install()
	return &Node{ep: ep}
}

// Node is the per-node face of the protocol.
type Node struct{ ep *endpoint }

// Read performs a shared-memory read of the block containing gaddr,
// blocking the simulated processor until the data is locally readable.
func (sn *Node) Read(gaddr int64) { sn.ep.access(gaddr/membus.BlockSize, false) }

// Write performs a shared-memory write to the block containing gaddr,
// blocking until exclusive ownership is held locally.
func (sn *Node) Write(gaddr int64) { sn.ep.access(gaddr/membus.BlockSize, true) }

// WriteBytes writes real payload bytes into the block (for verification);
// the timing is Write's.
func (sn *Node) WriteBytes(gaddr int64, b []byte) {
	g := gaddr / membus.BlockSize
	sn.ep.access(g, true)
	cp := make([]byte, len(b))
	copy(cp, b)
	sn.ep.data[g] = cp
}

// ReadBytes reads the block's current payload bytes (timing of Read).
func (sn *Node) ReadBytes(gaddr int64) []byte {
	g := gaddr / membus.BlockSize
	sn.ep.access(g, false)
	return sn.ep.data[g]
}

// State reports the local coherence state name for tests.
func (sn *Node) State(gaddr int64) string {
	switch sn.ep.st[gaddr/membus.BlockSize] {
	case shared:
		return "S"
	case exclusive:
		return "M"
	default:
		return "I"
	}
}

// shadow returns the local cacheable address standing in for gblock.
func (ep *endpoint) shadow(gblock int64) membus.Addr {
	return ep.p.cfg.ShadowBase + membus.Addr(gblock%int64(ep.p.cfg.ShadowBlocks))*membus.BlockSize
}

// access is the processor-side protocol entry: hit fast, or start a miss
// transaction and poll until the reply installs the block.
func (ep *endpoint) access(gblock int64, write bool) {
	st := ep.st[gblock]
	if st == exclusive || (st == shared && !write) {
		// Hit: a cached access to the shadow block.
		if write {
			ep.n.Proc.CachedWrite(0, ep.shadow(gblock), 8)
		} else {
			ep.n.Proc.CachedRead(0, ep.shadow(gblock), 8)
		}
		return
	}
	if ep.wait[gblock] {
		panic(fmt.Sprintf("shmem: node %d has concurrent accesses to block %d", ep.n.ID, gblock))
	}
	home := ep.p.HomeOf(gblock)
	ep.wait[gblock] = true
	if home == ep.n.ID {
		// Home-local miss: serve through the directory without messages.
		ep.homeLocal(gblock, write)
	} else {
		h := hReadReq
		if write {
			h = hWriteReq
		}
		ep.n.EP.Send(home, h, ep.p.cfg.CtlBytes, uint64(gblock))
	}
	ep.n.EP.WaitUntil(func() bool { return !ep.wait[gblock] })
	// Install into the local cache model.
	if write {
		ep.n.Proc.CachedWrite(0, ep.shadow(gblock), 8)
	} else {
		ep.n.Proc.CachedRead(0, ep.shadow(gblock), 8)
	}
}

func (ep *endpoint) entry(gblock int64) *directory {
	d := ep.dir[gblock]
	if d == nil {
		d = &directory{sharers: make(map[int]bool), owner: -1}
		ep.dir[gblock] = d
	}
	return d
}

// install registers the nine protocol handlers on the node.
func (ep *endpoint) install() {
	reg := ep.n.EP.Register
	reg(hReadReq, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		ep.homeRequest(int64(m.Arg), m.Src, false)
	})
	reg(hWriteReq, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		ep.homeRequest(int64(m.Arg), m.Src, true)
	})
	reg(hData, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		g := int64(m.Arg)
		ep.st[g] = shared
		if m.Payload != nil {
			ep.data[g] = append([]byte(nil), m.Payload...)
		}
		delete(ep.wait, g)
	})
	reg(hDataExcl, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		g := int64(m.Arg)
		ep.st[g] = exclusive
		if m.Payload != nil {
			ep.data[g] = append([]byte(nil), m.Payload...)
		}
		delete(ep.wait, g)
	})
	reg(hUpgrade, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		g := int64(m.Arg)
		ep.st[g] = exclusive
		delete(ep.wait, g)
	})
	reg(hInval, func(e *msglayer.Endpoint, m *msglayer.Message) {
		g := int64(m.Arg)
		ep.st[g] = invalid
		e.Send(m.Src, hInvalAck, ep.p.cfg.CtlBytes, m.Arg)
	})
	reg(hInvalAck, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		ep.homeAck(int64(m.Arg))
	})
	reg(hRecall, func(e *msglayer.Endpoint, m *msglayer.Message) {
		g := int64(m.Arg)
		ep.st[g] = invalid
		if b, ok := ep.data[g]; ok {
			e.SendBytes(m.Src, hWriteBack, b, m.Arg)
		} else {
			e.Send(m.Src, hWriteBack, ep.p.cfg.DataBytes, m.Arg)
		}
	})
	reg(hWriteBack, func(_ *msglayer.Endpoint, m *msglayer.Message) {
		ep.homeWriteBack(int64(m.Arg), m.Payload)
	})
}

// homeLocal serves the home node's own miss through its directory.
func (ep *endpoint) homeLocal(gblock int64, write bool) {
	ep.homeRequest(gblock, ep.n.ID, write)
}

// homeRequest is the directory's request entry: serve immediately when the
// block is quiescent, else queue.
func (ep *endpoint) homeRequest(gblock int64, from int, write bool) {
	d := ep.entry(gblock)
	if d.busy {
		d.pending = append(d.pending, pendingReq{node: from, write: write})
		return
	}
	ep.homeServe(gblock, d, from, write)
}

func (ep *endpoint) homeServe(gblock int64, d *directory, from int, write bool) {
	switch {
	case d.owner >= 0 && d.owner != from:
		// Modified elsewhere: recall first, reply on writeback.
		d.busy = true
		d.pending = append([]pendingReq{{node: from, write: write}}, d.pending...)
		owner := d.owner
		d.owner = -1
		ep.send(owner, hRecall, ep.p.cfg.CtlBytes, gblock)
	case write:
		// Invalidate all other sharers, then grant.
		targets := make([]int, 0, len(d.sharers))
		for s := range d.sharers {
			if s != from {
				targets = append(targets, s)
			}
		}
		// Invalidations go out in node order, not map order: the send
		// sequence schedules network events and must be reproducible.
		sort.Ints(targets)
		if len(targets) > 0 {
			d.busy = true
			d.pending = append([]pendingReq{{node: from, write: true}}, d.pending...)
			d.acksLeft = len(targets)
			for _, s := range targets {
				delete(d.sharers, s)
				ep.send(s, hInval, ep.p.cfg.CtlBytes, gblock)
			}
			return
		}
		ep.grantWrite(gblock, d, from)
	default:
		d.sharers[from] = true
		if from == ep.n.ID {
			ep.localInstall(gblock, shared)
		} else {
			ep.sendData(from, hData, gblock, d)
		}
	}
}

// homeAck collects an invalidation ack; the last one completes the pending
// write transaction.
func (ep *endpoint) homeAck(gblock int64) {
	d := ep.entry(gblock)
	d.acksLeft--
	if d.acksLeft > 0 {
		return
	}
	ep.homeComplete(gblock, d)
}

// homeWriteBack absorbs recalled data and completes the transaction.
func (ep *endpoint) homeWriteBack(gblock int64, payload []byte) {
	d := ep.entry(gblock)
	if payload != nil {
		d.data = append([]byte(nil), payload...)
	}
	ep.homeComplete(gblock, d)
}

// homeComplete finishes the current transaction and drains queued requests
// that can proceed without further remote work.
func (ep *endpoint) homeComplete(gblock int64, d *directory) {
	d.busy = false
	for !d.busy && len(d.pending) > 0 {
		req := d.pending[0]
		d.pending = d.pending[1:]
		ep.homeServe(gblock, d, req.node, req.write)
	}
}

func (ep *endpoint) grantWrite(gblock int64, d *directory, to int) {
	hadShared := d.sharers[to]
	d.sharers = map[int]bool{}
	d.owner = to
	if to == ep.n.ID {
		ep.localInstall(gblock, exclusive)
		return
	}
	if hadShared {
		ep.send(to, hUpgrade, ep.p.cfg.UpgradeBytes, gblock)
	} else {
		ep.sendData(to, hDataExcl, gblock, d)
	}
}

func (ep *endpoint) localInstall(gblock int64, s state) {
	ep.st[gblock] = s
	if d := ep.dir[gblock]; d != nil && d.data != nil {
		ep.data[gblock] = append([]byte(nil), d.data...)
	}
	delete(ep.wait, gblock)
}

func (ep *endpoint) send(to, handler, payload int, gblock int64) {
	if to == ep.n.ID {
		// Home recalling from itself or invalidating itself: apply locally.
		switch handler {
		case hInval:
			ep.st[gblock] = invalid
			ep.homeAck(gblock)
		case hRecall:
			ep.st[gblock] = invalid
			ep.homeWriteBack(gblock, ep.data[gblock])
		}
		return
	}
	ep.n.EP.Send(to, handler, payload, uint64(gblock))
}

func (ep *endpoint) sendData(to, handler int, gblock int64, d *directory) {
	if d.data != nil {
		ep.n.EP.SendBytes(to, handler, d.data, uint64(gblock))
		return
	}
	ep.n.EP.Send(to, handler, ep.p.cfg.DataBytes, uint64(gblock))
}

// SeedBytes initializes a block's home copy (call on the home node before
// the computation races begin).
func (sn *Node) SeedBytes(gaddr int64, b []byte) {
	g := gaddr / membus.BlockSize
	home := sn.ep.p.HomeOf(g)
	if home != sn.ep.n.ID {
		panic(fmt.Sprintf("shmem: SeedBytes on node %d for block homed at %d", sn.ep.n.ID, home))
	}
	d := sn.ep.entry(g)
	d.data = append([]byte(nil), b...)
}
