// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into the command drivers, so a slow cell or a suspected allocation
// regression can be profiled with the stock pprof toolchain:
//
//	nisim -ni cni32qm -app em3d -cpuprofile cpu.out
//	benchdump -quick -memprofile mem.out
//	go tool pprof cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile output paths. Register it on a FlagSet, then call
// Start after parsing and invoke the returned stop function once the work
// to be profiled has finished.
type Flags struct {
	CPU string
	Mem string
}

// Register installs -cpuprofile and -memprofile on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write an allocation profile to this file when the run finishes")
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function finishes the CPU profile and writes the allocation profile (when
// -memprofile was given); it is safe to call when neither flag was set.
func (f *Flags) Start() (stop func(), err error) {
	var cpuOut *os.File
	if f.CPU != "" {
		cpuOut, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuOut != nil {
			pprof.StopCPUProfile()
			cpuOut.Close()
		}
		if f.Mem == "" {
			return
		}
		memOut, err := os.Create(f.Mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			return
		}
		defer memOut.Close()
		runtime.GC() // report live objects, not garbage awaiting collection
		if err := pprof.Lookup("allocs").WriteTo(memOut, 0); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
		}
	}, nil
}
