package chaos

import (
	"bytes"
	"strings"
	"testing"

	"nisim/internal/nic"
	"nisim/internal/sweep"
)

// reducedGrid keeps the regression tests fast: three design points (one
// fifo, one register-window, one coherent) across every load and mix.
func reducedGrid() GridSpec {
	g := StandardGrid(true)
	g.Specs = []nic.Spec{
		nic.SpecFor(nic.CM5),
		nic.SpecFor(nic.CM5SingleCycle),
		nic.SpecFor(nic.CNI32Qm),
	}
	g.Requests = 12
	return g
}

// TestStandardGridCoversTheMatrix pins the acceptance floor: all nine named
// design points x at least three load levels x at least two fault mixes,
// every composed spec (with its mix's overload policy) buildable, and a
// recovery-capable mix present.
func TestStandardGridCoversTheMatrix(t *testing.T) {
	g := StandardGrid(true)
	if len(g.Specs) < 9 {
		t.Errorf("grid has %d specs, want >= 9", len(g.Specs))
	}
	if len(g.Loads) < 3 {
		t.Errorf("grid has %d load levels, want >= 3", len(g.Loads))
	}
	if len(g.Mixes) < 2 {
		t.Errorf("grid has %d fault mixes, want >= 2", len(g.Mixes))
	}
	outage := false
	for _, mx := range g.Mixes {
		if mx.OutageEnd > 0 {
			outage = true
		}
		for _, s := range g.Specs {
			spec := s
			spec.Overload = mx.Overload
			if err := spec.Validate(); err != nil {
				t.Errorf("%s under mix %s: %v", s.Name(), mx.Name, err)
			}
		}
	}
	if !outage {
		t.Error("no mix exercises an outage window (recovery-time column dead)")
	}
	if got, want := len(g.Jobs()), len(g.Specs)*len(g.Loads)*len(g.Mixes); got != want {
		t.Errorf("grid has %d jobs, want %d", got, want)
	}
}

// TestChaosSweepIsDeterministic is the cmd/chaossweep half of the
// orchestrator determinism regression: the grid swept with eight workers
// must produce byte-identical text and canonical JSON to a serial sweep,
// and no cell may hang or end in a non-watchdog error.
func TestChaosSweepIsDeterministic(t *testing.T) {
	g := reducedGrid()

	serial := sweep.Run(sweep.Config{Jobs: 1}, g.Jobs())
	parallel := sweep.Run(sweep.Config{Jobs: 8}, g.Jobs())

	for _, r := range serial {
		if r.TimedOut {
			t.Errorf("%s timed out", r.ID)
		}
		if r.Err != "" && !strings.Contains(r.Err, "machine:") {
			t.Errorf("%s failed outside the watchdog: %s", r.ID, r.Err)
		}
	}

	serialText := Format(g, g.Rows(serial))
	parallelText := Format(g, g.Rows(parallel))
	if serialText != parallelText {
		t.Errorf("parallel text differs from serial:\nserial:\n%s\nparallel:\n%s", serialText, parallelText)
	}

	serialJSON, err := sweep.NewReport("chaos", g.Seed, sweep.Config{Jobs: 1}, serial, 1).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := sweep.NewReport("chaos", g.Seed, sweep.Config{Jobs: 8}, parallel, 2).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Errorf("parallel canonical JSON differs from serial:\nserial:\n%s\nparallel:\n%s", serialJSON, parallelJSON)
	}
	if !strings.Contains(string(serialJSON), sweep.Schema) {
		t.Errorf("report does not carry schema %q", sweep.Schema)
	}
}

// TestChaosProtocolSweepIsDeterministic is the protocol sub-grid's half of
// the determinism regression: the eager-vs-rendezvous grid swept with
// eight workers must match a serial sweep byte for byte, and no cell may
// hang — the jobs=1-vs-8 identity gate for the rendezvous protocol under
// overload.
func TestChaosProtocolSweepIsDeterministic(t *testing.T) {
	g := ProtocolGrid(true)
	g.Requests = 12

	serial := sweep.Run(sweep.Config{Jobs: 1}, g.Jobs())
	parallel := sweep.Run(sweep.Config{Jobs: 8}, g.Jobs())

	for _, r := range serial {
		if r.TimedOut || r.Err != "" {
			t.Errorf("%s: timed_out=%v err=%q", r.ID, r.TimedOut, r.Err)
		}
	}
	serialText := Format(g, g.Rows(serial))
	parallelText := Format(g, g.Rows(parallel))
	if serialText != parallelText {
		t.Errorf("parallel text differs from serial:\nserial:\n%s\nparallel:\n%s", serialText, parallelText)
	}
}

// TestChaosProtocolGridMeasuresTheBypass pins what the protocol sub-grid
// exists to show: at saturation, the eager mix pushes its 2 KB requests
// through the admission-controlled receive queue (visible as bounces),
// while the rendezvous mix moves the same bytes with one-sided puts that
// never consult the admission gate — no bounces, no admission drops, and
// at least the eager mix's completions.
func TestChaosProtocolGridMeasuresTheBypass(t *testing.T) {
	g := ProtocolGrid(true)
	g.Loads = g.Loads[2:3] // sat
	g.Requests = 20
	rows := g.Rows(sweep.Run(sweep.Config{Jobs: 1}, g.Jobs()))
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	eager, rdv := rows[0], rows[1]
	if eager.Err != "" || rdv.Err != "" {
		t.Fatalf("cell errors: eager=%q rdv=%q", eager.Err, rdv.Err)
	}
	if eager.Metrics["bounces"] == 0 {
		t.Error("eager mix at saturation should bounce at the admission watermark")
	}
	if got := rdv.Metrics["admit_drops"] + rdv.Metrics["admit_bounces"] + rdv.Metrics["admit_evictions"]; got != 0 {
		t.Errorf("rendezvous mix hit the admission gate %v times; one-sided transfers must bypass it", got)
	}
	if rdv.Metrics["completed"] < eager.Metrics["completed"] {
		t.Errorf("rendezvous completed %v < eager %v at saturation",
			rdv.Metrics["completed"], eager.Metrics["completed"])
	}
}

// TestChaosCellsMeasureDegradation runs one fifo design point across the
// load ladder and checks the cells actually measure what the columns
// claim: saturation loses requests, the outage mix reports a recovery
// time, and the lossy mix reports fault recovery work.
func TestChaosCellsMeasureDegradation(t *testing.T) {
	g := reducedGrid()
	g.Specs = []nic.Spec{nic.SpecFor(nic.CM5)}
	results := sweep.Run(sweep.Config{Jobs: 1}, g.Jobs())
	rows := g.Rows(results)

	cell := func(load, mix string) Row {
		for _, r := range rows {
			if r.Load.Name == load && r.Mix.Name == mix {
				return r
			}
		}
		t.Fatalf("no cell %s/%s", load, mix)
		return Row{}
	}

	lowClean := cell("low", "clean")
	if lowClean.Err != "" || lowClean.Metrics["completed"] != lowClean.Metrics["issued"] {
		t.Errorf("low/clean should complete everything: %+v err=%q", lowClean.Metrics, lowClean.Err)
	}
	satClean := cell("sat", "clean")
	if satClean.Err == "" && satClean.Metrics["p99_us"] <= lowClean.Metrics["p99_us"] {
		t.Errorf("saturation did not raise p99: low %.1fus vs sat %.1fus",
			lowClean.Metrics["p99_us"], satClean.Metrics["p99_us"])
	}
	outage := cell("mid", "outage")
	if outage.Err == "" {
		if _, ok := outage.Metrics["recovery_us"]; !ok {
			t.Errorf("outage cell reports no recovery time: %+v", outage.Metrics)
		}
		lost := outage.Metrics["admit_drops"] + outage.Metrics["delivery_failures"] + outage.Metrics["admit_evictions"]
		if lost == 0 {
			t.Errorf("outage cell lost nothing: %+v", outage.Metrics)
		}
	}
}
