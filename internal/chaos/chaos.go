// Package chaos defines the overload-robustness grid: every named NI
// design point driven past saturation by the open-loop workload under a
// matrix of offered-load levels and fault mixes, with an admission policy
// active at the server. Where designspace ranks the design space by how
// fast it runs, chaos ranks it by how it fails: goodput retained, latency
// blowup, what was dropped/bounced/evicted, and how quickly service
// returns after an outage. The grid is the single source of truth shared
// by cmd/chaossweep and the determinism regression test.
package chaos

import (
	"fmt"
	"strings"

	"nisim/internal/faults"
	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/stats"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// Load is one offered-load level: a name and the per-client mean
// inter-arrival gap (smaller gap = higher load).
type Load struct {
	Name string
	Gap  sim.Time
}

// Mix is one chaos condition: the fault mix on the wire plus the overload
// policy the server-side NI runs. The Clean mix is the baseline the
// degradation columns compare against.
type Mix struct {
	Name string
	// Faults is applied to the machine (zero = lossless network).
	Faults faults.Config
	// Reliability, when enabled, layers retransmission with a deadline on
	// top of the faults.
	Reliability netsim.ReliabilityConfig
	// Overload is the admission policy installed on every node's NI.
	Overload nic.OverloadPolicy
	// Protocol selects the messaging layer's transfer protocol for the
	// cell (zero value = eager, the baseline); RdvThreshold, when
	// positive, overrides the rendezvous size threshold. On specs without
	// an RDMA send engine a rendezvous mix falls back to eager.
	Protocol     msglayer.ProtocolKind
	RdvThreshold int
	// OutageEnd, when positive, marks when the mix's outage window lifts,
	// enabling the recovery-time column.
	OutageEnd sim.Time
}

// The outage mix's window: the server's link is dead for [start, end).
const (
	outageStart = 10 * sim.Microsecond
	outageEnd   = 40 * sim.Microsecond
)

// GridSpec parameterizes a chaos grid.
type GridSpec struct {
	// Title heads the formatted table; empty means the standard overload
	// sweep heading.
	Title    string
	Specs    []nic.Spec
	Loads    []Load
	Mixes    []Mix
	Nodes    int
	Requests int // per client
	// ReqBytes and RespBytes are the request and response payload sizes
	// (the standard grid's small-RPC mix is 32/128; the protocol grid
	// flips the bulk direction toward the overloaded server).
	ReqBytes, RespBytes int
	Seed                uint64
	// Shards partitions each cell's simulation across engine shards
	// (machine.Config.Shards); zero or one runs the serial engine. Shards
	// is an execution strategy, not an experiment parameter — results are
	// byte-identical at any value (the partition determinism regression
	// pins this), so it appears in neither job IDs nor config maps.
	Shards int
}

// StandardGrid returns the full chaos grid: the nine named design points ×
// three load levels × three mixes (clean, lossy, outage).
func StandardGrid(quick bool) GridSpec {
	var specs []nic.Spec
	for _, k := range nic.Kinds() {
		specs = append(specs, nic.SpecFor(k))
	}
	const seed = 1
	// The lossy mix bounds retries by attempt count; its deadline is slack
	// enough that the retry ladder (4,8,16,... µs backoff) runs out first —
	// a tight deadline here would occasionally kill a barrier or done
	// message after a run of correlated losses and strand the run on a
	// watchdog diagnostic instead of a measurement.
	relLossy := netsim.DefaultReliability()
	relLossy.MaxAttempts = 16
	relLossy.Deadline = 200 * sim.Microsecond
	// The outage mix bounds retries by deadline: requests aimed at the dead
	// server abandon after 50 µs instead of retrying forever, and the
	// control traffic is safe because it flows only after the window lifts.
	relOutage := netsim.DefaultReliability()
	relOutage.MaxAttempts = 16
	relOutage.Deadline = 50 * sim.Microsecond
	g := GridSpec{
		Specs: specs,
		Loads: []Load{
			{Name: "low", Gap: 8 * sim.Microsecond},
			{Name: "mid", Gap: 2 * sim.Microsecond},
			{Name: "sat", Gap: 500 * sim.Nanosecond},
		},
		Mixes: []Mix{
			{
				// Lossless wire; the admission watermark bounces the excess
				// back into the senders' retry machinery.
				Name: "clean",
				Overload: nic.OverloadPolicy{
					AdmitPct: 75, Refuse: nic.RefuseBounce,
					ControlBase: msglayer.ReservedHandlerBase,
				},
			},
			{
				// 5% headline fault rate in the default blend; refused
				// arrivals are dropped and the reliability layer decides
				// whether to retry or abandon.
				Name:        "lossy",
				Faults:      faults.DefaultMix().Config(0.05, seed),
				Reliability: relLossy,
				Overload: nic.OverloadPolicy{
					AdmitPct: 75, Refuse: nic.RefuseDrop,
					ControlBase: msglayer.ReservedHandlerBase,
				},
			},
			{
				// The server's link dies for 30 µs mid-run; eviction keeps
				// the freshest backlog when it returns.
				Name: "outage",
				Faults: faults.Config{
					Seed:    seed,
					Outages: []faults.Outage{{Endpoint: 0, Start: outageStart, End: outageEnd}},
				},
				Reliability: relOutage,
				Overload: nic.OverloadPolicy{
					AdmitPct: 75, Refuse: nic.RefuseDrop, Evict: nic.EvictOldest,
					ControlBase: msglayer.ReservedHandlerBase,
				},
				OutageEnd: outageEnd,
			},
			{
				// The clean mix again, but the watermark has hysteresis:
				// refusal starts at 75% occupancy and does not lift until
				// the queue drains to 40%, so the policy sheds load in
				// bursts instead of flapping admit/refuse around a single
				// watermark. The "vs clean" column isolates what the
				// drain-down costs (or saves) each design.
				Name: "hyst",
				Overload: nic.OverloadPolicy{
					AdmitPct: 75, ResumePct: 40, Refuse: nic.RefuseBounce,
					ControlBase: msglayer.ReservedHandlerBase,
				},
			},
		},
		Nodes:    4,
		Requests: 60,
		ReqBytes: 32, RespBytes: 128,
		Seed: seed,
	}
	if quick {
		g.Requests = 20
	}
	return g
}

// config assembles one cell's machine configuration: the spec with the
// mix's overload policy grafted on, the mix's faults and reliability, and
// the starvation watchdog armed everywhere — an overload cell must never
// silently hang.
func (g GridSpec) config(s nic.Spec, mx Mix) machine.Config {
	spec := s
	spec.Overload = mx.Overload
	cfg := machine.DefaultConfig(nic.KindOf(s), 8)
	cfg.Nodes = g.Nodes
	cfg.NISpec = &spec
	cfg.Faults = mx.Faults
	cfg.Net.Reliability = mx.Reliability
	cfg.Msg.Protocol = mx.Protocol
	if mx.RdvThreshold > 0 {
		cfg.Msg.RendezvousThreshold = mx.RdvThreshold
	}
	cfg.Watchdog = true
	cfg.StallHorizon = 200 * sim.Microsecond
	cfg.Shards = g.Shards
	return cfg
}

// ScaleGrid returns the overload grid's machine-scaling variant: the
// open-loop workload on one fifo NI, one coherent NI, and the
// send-throttled coherent NI (whose credit returns cross shards as lagged
// messages — the spec that used to force a serial rebuild), clean mix at
// the mid load level, at a given machine size and shard count. It is the
// chaos half of the cmd/scale -big sweep (EXPERIMENTS.md, "Scaling past
// 16 nodes").
func ScaleGrid(nodes, shards, requests int) GridSpec {
	g := StandardGrid(true)
	g.Specs = []nic.Spec{nic.SpecFor(nic.CM5), nic.SpecFor(nic.CNI32Qm), nic.SpecFor(nic.CNI32QmThrottle)}
	g.Loads = g.Loads[1:2] // mid
	g.Mixes = g.Mixes[0:1] // clean
	g.Nodes = nodes
	g.Requests = requests
	g.Shards = shards
	return g
}

// rdmaSpec is the one-sided design point the protocol grids drive: the
// RDMA send engine over the coherent receive side with a memory-homed
// ring — the composition the rendezvous protocol targets.
func rdmaSpec() nic.Spec {
	return nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing}
}

// ProtocolGrid returns the eager-vs-rendezvous overload grid: the RDMA
// design point across the load ladder, clean wire, once per protocol,
// with the bulk direction flipped toward the server — 2 KB ingest
// requests, 32-byte acks. Under the eager mix every request is a run of
// fragments through the server's admission-controlled receive queue;
// under the rendezvous mix (threshold 1024) the same requests go RTS/CTS
// plus one-sided puts that can neither bounce nor be refused, so the
// cells measure exactly what moving bulk payload out of the receive
// queue buys at saturation. The eager mix comes first: it is the
// baseline of the "vs" column.
func ProtocolGrid(quick bool) GridSpec {
	g := StandardGrid(quick)
	clean := g.Mixes[0].Overload
	g.Title = "Protocol sweep: eager vs rendezvous on the RDMA design, clean wire"
	g.Specs = []nic.Spec{rdmaSpec()}
	g.ReqBytes, g.RespBytes = 2048, 32
	g.Mixes = []Mix{
		{Name: "eager", Overload: clean},
		{Name: "rdv", Overload: clean, Protocol: msglayer.Rendezvous, RdvThreshold: 1024},
	}
	return g
}

// ScaleProtocolGrid is the protocol grid's machine-scaling variant (the
// rendezvous half of the cmd/scale -big sweep): mid load only, at a given
// machine size and shard count. Its cells put the RTS/CTS handshake and
// the one-sided put frames on the lagged-control discipline across shard
// boundaries, so cmd/scale's serial-vs-sharded byte-identity gate covers
// the rendezvous protocol.
func ScaleProtocolGrid(nodes, shards, requests int) GridSpec {
	g := ProtocolGrid(true)
	g.Loads = g.Loads[1:2] // mid
	g.Nodes = nodes
	g.Requests = requests
	g.Shards = shards
	return g
}

// params builds the open-loop workload parameters for one cell.
func (g GridSpec) params(ld Load, mx Mix) workload.OpenLoopParams {
	return workload.OpenLoopParams{
		MeanGap:    ld.Gap,
		Requests:   g.Requests,
		ReqBytes:   g.ReqBytes,
		RespBytes:  g.RespBytes,
		Seed:       g.Seed,
		DrainGrace: 80 * sim.Microsecond,
		OutageEnd:  mx.OutageEnd,
	}
}

// Jobs returns the grid as sweep jobs: specs outer, loads middle, mixes
// inner — the deterministic order Rows expects.
func (g GridSpec) Jobs() []sweep.Job {
	var jobs []sweep.Job
	for _, s := range g.Specs {
		for _, ld := range g.Loads {
			for _, mx := range g.Mixes {
				s, ld, mx := s, ld, mx
				jobs = append(jobs, sweep.Job{
					ID: fmt.Sprintf("chaos/%s/%s/%s", s.Name(), ld.Name, mx.Name),
					Config: map[string]string{
						"experiment": "chaos", "spec": s.Name(),
						"load": ld.Name, "gap_ns": fmt.Sprint(ld.Gap.Nanoseconds()),
						"mix": mx.Name, "requests": fmt.Sprint(g.Requests),
						"nodes": fmt.Sprint(g.Nodes), "protocol": mx.Protocol.String(),
					},
					Run: func() sweep.Outcome {
						res, st := workload.RunOpenLoop(g.config(s, mx), g.params(ld, mx))
						return outcome(res, st)
					},
				})
			}
		}
	}
	return jobs
}

// outcome flattens one cell's service result and recovery counters.
func outcome(res *workload.OpenLoopResult, st *stats.Machine) sweep.Outcome {
	tot := st.Total()
	m := map[string]float64{
		"offered_rps":       res.OfferedRPS,
		"issued":            float64(res.Issued),
		"completed":         float64(res.Completed),
		"goodput_mbps":      res.GoodputMBps,
		"p50_us":            res.P50().Microseconds(),
		"p99_us":            res.P99().Microseconds(),
		"bounces":           float64(tot.Bounces),
		"admit_drops":       float64(tot.AdmitDrops),
		"admit_bounces":     float64(tot.AdmitBounces),
		"admit_evictions":   float64(tot.AdmitEvictions),
		"delivery_failures": float64(tot.DeliveryFailures),
	}
	if res.Recovery >= 0 {
		m["recovery_us"] = res.Recovery.Microseconds()
	}
	return sweep.Outcome{Metrics: m}
}

// Row is one cell's measurements, reassembled from the sweep results.
type Row struct {
	Spec nic.Spec
	Load Load
	Mix  Mix
	// Err is the contained panic of a cell that terminated on a watchdog
	// diagnostic instead of draining; its metrics are then absent.
	Err     string
	Metrics map[string]float64
}

// Rows reassembles rows from the results of running Jobs() through the
// orchestrator (results must be in job order, which sweep.Run guarantees).
func (g GridSpec) Rows(results []sweep.Result) []Row {
	rows := make([]Row, 0, len(results))
	i := 0
	for _, s := range g.Specs {
		for _, ld := range g.Loads {
			for _, mx := range g.Mixes {
				r := results[i]
				i++
				rows = append(rows, Row{Spec: s, Load: ld, Mix: mx, Err: r.Err, Metrics: r.Metrics})
			}
		}
	}
	return rows
}

// Format renders the grid as a text table. The "vs base" column is the
// cell's goodput relative to the grid's first mix at the same (spec,
// load) — the degradation the fault mix (or protocol switch) inflicted
// on that design.
func Format(g GridSpec, rows []Row) string {
	var b strings.Builder
	title := g.Title
	if title == "" {
		title = "Chaos sweep: open-loop request/response"
	}
	fmt.Fprintf(&b, "%s, %d nodes, %d requests/client\n", title, g.Nodes, g.Requests)
	fmt.Fprintln(&b, "(goodput = delivered response payload; latency from scheduled arrival; recovery from outage end)")
	baseline := g.Mixes[0].Name
	fmt.Fprintf(&b, "%-18s %-4s %-7s %9s %9s %8s %8s %9s %7s %8s %9s\n",
		"spec", "load", "mix", "done", "MB/s", "vs "+baseline, "p99(us)", "drops", "evict", "bounces", "rec(us)")
	base := make(map[string]float64, len(rows))
	for _, r := range rows {
		if r.Mix.Name == baseline && r.Err == "" {
			base[r.Spec.Name()+"/"+r.Load.Name] = r.Metrics["goodput_mbps"]
		}
	}
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-18s %-4s %-7s !! %s\n", r.Spec.Name(), r.Load.Name, r.Mix.Name, firstLine(r.Err))
			continue
		}
		vs := "-"
		if base := base[r.Spec.Name()+"/"+r.Load.Name]; base > 0 && r.Mix.Name != baseline {
			vs = fmt.Sprintf("%.2fx", r.Metrics["goodput_mbps"]/base)
		}
		rec := "-"
		if v, ok := r.Metrics["recovery_us"]; ok {
			rec = fmt.Sprintf("%.1f", v)
		}
		drops := r.Metrics["admit_drops"] + r.Metrics["delivery_failures"]
		fmt.Fprintf(&b, "%-18s %-4s %-7s %4.0f/%-4.0f %9.1f %8s %8.1f %9.0f %7.0f %8.0f %9s\n",
			r.Spec.Name(), r.Load.Name, r.Mix.Name,
			r.Metrics["completed"], r.Metrics["issued"],
			r.Metrics["goodput_mbps"], vs, r.Metrics["p99_us"],
			drops, r.Metrics["admit_evictions"], r.Metrics["bounces"], rec)
	}
	return b.String()
}

// firstLine truncates a contained panic to its headline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
