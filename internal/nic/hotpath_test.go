package nic

import (
	"testing"

	"nisim/internal/netsim"
	"nisim/internal/sim"
)

// TestComposedSendRecvAllocFree is the allocation gate for the composed NI
// hot paths: once warm, a complete send→deliver→poll round through the
// processor-driven designs must not allocate. The path under test spans
// the composed dispatch, the fifo engine (uncached words, register words,
// block-buffer transfers, UDMA's small-message fallback), the fifo window
// hardware queues, the bus's scratch-transaction pool, and netsim's pooled
// delivery — regressing any of them to a per-message allocation (a closure
// in dispatch, a fresh bus transaction per access, a queue that strands
// its backing array) fails this test.
//
// The NI-managed designs are not gated here: the UDMA large-message path
// and the coherent engine run device state machines that allocate per
// block (DMA chain closures, ring bookkeeping); their hot software costs
// go through the same primitives this test covers.
func TestComposedSendRecvAllocFree(t *testing.T) {
	for _, k := range []Kind{CM5, CM5SingleCycle, AP3000, UDMA} {
		k := k
		t.Run(k.ShortName(), func(t *testing.T) {
			r := newTwoNodes(t, k, 8, nil)
			// 8 B payload: the word designs' native size, and under the
			// UDMA threshold so its uncached-word fallback is exercised.
			m := netsim.NewSized(0, 1, 1, 8)

			// One long-lived sender and receiver perform one round each
			// time the test releases one: AllocsPerRun cannot re-spawn
			// processes per round without measuring the spawn itself.
			const total = 230
			release, got := 0, 0
			p0 := r.eng.Spawn("sender", func(p *sim.Process) {
				pr, ni := r.procs[0], r.nis[0]
				for i := 0; i < total; i++ {
					for release <= i {
						p.Sleep(100 * sim.Nanosecond)
					}
					for !ni.CanSend(m) {
						p.Sleep(100 * sim.Nanosecond)
					}
					ni.Send(pr, m)
				}
			})
			r.procs[0].Bind(p0)
			p1 := r.eng.Spawn("receiver", func(p *sim.Process) {
				pr, ni := r.procs[1], r.nis[1]
				for got < total {
					if _, ok := ni.Poll(pr); ok {
						got++
					} else {
						p.Sleep(100 * sim.Nanosecond)
					}
				}
			})
			r.procs[1].Bind(p1)

			running := func() bool { return got < release }
			round := func() {
				release++
				r.eng.RunWhile(running)
				if got != release {
					t.Fatalf("round %d did not complete: got=%d", release, got)
				}
			}
			// Warm the pools: event records, scratch transactions, queue
			// backing arrays, flow-control state.
			for i := 0; i < 20; i++ {
				round()
			}
			if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
				t.Errorf("composed send/recv round allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

// TestAdmissionControlAllocFree gates the composed admission-control fast
// path: a CM5 design with a tight watermark receives two back-to-back
// messages per round — the first admitted against an empty queue, the
// second refused onto the bounce network (occupancy over the watermark)
// and re-sent by the sender's software retry once the receiver has drained
// the first. The occupancy probe, refuse verdict, bounce-queue recycling,
// and software retry must all be allocation-free once warm.
func TestAdmissionControlAllocFree(t *testing.T) {
	spec := SpecFor(CM5)
	// 12% of 8 buffers rounds to under one message: any occupancy refuses.
	spec.Overload = OverloadPolicy{AdmitPct: 12, Refuse: RefuseBounce}
	r := newTwoNodesNet(t, spec, 8, netsim.DefaultConfig(), nil)
	m1 := netsim.NewSized(0, 1, 1, 8)
	m2 := netsim.NewSized(0, 1, 1, 8)

	const total = 230
	release, got := 0, 0
	p0 := r.eng.Spawn("sender", func(p *sim.Process) {
		pr, ni := r.procs[0], r.nis[0]
		for i := 0; i < total; i++ {
			for release <= i {
				p.Sleep(100 * sim.Nanosecond)
			}
			for _, m := range []*netsim.Message{m1, m2} {
				for !ni.CanSend(m) {
					if ni.NeedsRetry() {
						ni.RetryOne(pr)
					} else {
						p.Sleep(100 * sim.Nanosecond)
					}
				}
				ni.Send(pr, m)
			}
			// Service the refused send's bounce until both land.
			for r.net.Delivered() < int64(2*(i+1)) {
				if ni.NeedsRetry() {
					ni.RetryOne(pr)
				} else {
					p.Sleep(100 * sim.Nanosecond)
				}
			}
		}
	})
	r.procs[0].Bind(p0)
	p1 := r.eng.Spawn("receiver", func(p *sim.Process) {
		pr, ni := r.procs[1], r.nis[1]
		for got < 2*total {
			// Let both arrivals hit the admission gate before draining, so
			// the second is refused against the first's occupancy.
			p.Sleep(2 * sim.Microsecond)
			for got < 2*release {
				if _, ok := ni.Poll(pr); ok {
					got++
				} else {
					p.Sleep(100 * sim.Nanosecond)
				}
			}
		}
	})
	r.procs[1].Bind(p1)

	running := func() bool { return got < 2*release }
	round := func() {
		release++
		r.eng.RunWhile(running)
		if got != 2*release {
			t.Fatalf("round %d did not complete: got=%d", release, got)
		}
	}
	for i := 0; i < 20; i++ {
		round()
	}
	if r.nodes[1].AdmitBounces == 0 {
		t.Fatal("warmup never hit the refuse path; the gate proves nothing")
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Errorf("admission-controlled round allocates %.1f per run, want 0", allocs)
	}
	if r.nodes[1].AdmitBounces < 200 {
		t.Errorf("gated rounds stopped exercising the refuse path: %d admission bounces", r.nodes[1].AdmitBounces)
	}
}
