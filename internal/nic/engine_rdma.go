package nic

import (
	"fmt"

	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// rdma is the one-sided transfer engine: a descriptor-queue NI in the
// VIA/InfiniBand mold. The processor posts a work descriptor naming a user
// buffer and rings a doorbell; the NI DMA-reads the buffer and moves it as
// one-sided put frames that land directly in the target's registered memory
// — they never enter the target's receive queue, so they can neither bounce
// nor be admission-evicted (netsim's Endpoint.Put/Get seam). Two-sided
// sends ride the same descriptor queue but inject ordinary messages that
// the target's coherent ring receives normally.
//
// The price of the direct path is registration: the NI can only DMA pinned
// pages it holds translations for, so the first transfer touching a remote
// target pays a pinning syscall plus a per-page table charge, amortized
// across repeated transfers to the same target (chargePin). This is the
// cost the paper's coherent NIs avoid entirely — the crossover between the
// two is what the eager/rendezvous sweep measures.
//
// Zero-copy contract: put frames alias the caller's payload slice. The
// caller must not reuse the buffer until the transfer settles (reliable
// runs signal settlement through the engine; unreliable runs must rely on
// their own application-level handshake) — exactly the pinned-buffer rule
// real RDMA verbs impose.
type rdma struct {
	env      *Env
	frameCap int // max put-frame payload bytes (network MTU minus header)
	reliable bool

	descQ   queue[rdmaDesc]
	work    *sim.Cond // descriptor posted
	space   *sim.Cond // descriptor-ring entry freed
	outFree *sim.Cond // network out-buffer freed (two-sided sends only)

	// pinned is the registration cache: per remote target, the largest
	// page extent pinned so far.
	pinned map[int]int64

	// pool holds settled put/get frames for reuse; refilled by OnSettled,
	// so it only cycles on reliable networks.
	pool []*netsim.Message

	putSink func(m *netsim.Message) // delivery hook for incoming puts

	stagingSeq int
	busy       bool
	unsettled  int // reliable one-sided frames injected but not yet settled
}

type rdmaDescKind uint8

const (
	descSend rdmaDescKind = iota // two-sided message
	descPut                      // one-sided put (fragmented into frames)
	descGet                      // one-sided get request
)

type rdmaDesc struct {
	kind rdmaDescKind
	m    *netsim.Message // descSend / descGet
	put  putWork         // descPut
}

// putWork is the NI-side view of a put descriptor. payload may be nil for
// synthetic transfers; n is the byte count either way.
type putWork struct {
	dst, handler, channel int
	xfer                  uint32
	payload               []byte
	n                     int
	sendTime              sim.Time
}

// PutOp describes a one-sided put: deliver PayloadLen bytes to Dst's
// registered memory, tagging every frame with XferID so the target's
// protocol layer can place and count them (PutFrameArg).
type PutOp struct {
	Dst, Handler, Channel int
	XferID                uint32
	Payload               []byte // nil for synthetic payloads
	PayloadLen            int
	SendTime              sim.Time
}

// GetOp describes a one-sided get: ask Dst to put Bytes back to us, tagged
// with XferID. The remote NI serves the request without processor help.
type GetOp struct {
	Dst, Handler, Channel int
	XferID                uint32
	Bytes                 int
	SendTime              sim.Time
}

// RDMA is the one-sided interface an RDMAEngine send side exposes beyond
// the plain NI contract.
type RDMA interface {
	// CanPut reports whether a put/get descriptor can be posted without
	// blocking on descriptor-ring space.
	CanPut() bool
	// Put posts a one-sided put descriptor, charging pr the registration
	// and posting costs. Blocks while the descriptor ring is full.
	Put(pr *proc.Proc, op PutOp)
	// Get posts a one-sided get descriptor.
	Get(pr *proc.Proc, op GetOp)
	// SetPutSink installs the delivery hook for incoming put frames. It
	// runs in network-event context: bookkeeping only, no blocking.
	SetPutSink(fn func(m *netsim.Message))
	// Settled reports whether every reliable one-sided frame this engine
	// injected has been acked or abandoned.
	Settled() bool
}

// RDMACapable is implemented by NIs that may expose an RDMA engine. RDMA()
// returns nil when the composed spec has no one-sided send side.
type RDMACapable interface {
	RDMA() RDMA
}

// Put-frame args pack (transfer id, frame index, frame count) so the
// target can place each frame without any per-transfer control traffic.
const (
	putFrameIdxShift   = 32
	putFrameTotalShift = 48
	putFrameMask       = 1<<16 - 1
)

// PutFrameArg encodes a put frame's placement tag. idx and total must fit
// in 16 bits: a transfer is at most 65535 frames.
func PutFrameArg(xfer uint32, idx, total int) uint64 {
	return uint64(xfer) | uint64(idx)<<putFrameIdxShift | uint64(total)<<putFrameTotalShift
}

// DecodePutFrame unpacks PutFrameArg.
func DecodePutFrame(arg uint64) (xfer uint32, idx, total int) {
	return uint32(arg), int(arg >> putFrameIdxShift & putFrameMask), int(arg >> putFrameTotalShift & putFrameMask)
}

// GetArg encodes a get request's descriptor: transfer id and byte count.
func GetArg(xfer uint32, bytes int) uint64 {
	return uint64(xfer) | uint64(bytes)<<32
}

// DecodeGetArg unpacks GetArg.
func DecodeGetArg(arg uint64) (xfer uint32, bytes int) {
	return uint32(arg), int(arg >> 32)
}

// rdmaStagingBase is the DRAM region the engine's DMA reads source from —
// the model's stand-in for the caller's registered user buffers, rotated so
// consecutive transfers do not artificially hit in the cache.
const rdmaStagingBase membus.Addr = 0x3008_2000

func newRDMA(env *Env) *rdma {
	r := &rdma{
		env:      env,
		frameCap: env.EP.MaxNetMsg() - netsim.HeaderBytes,
		reliable: env.EP.Reliable(),
		work:     sim.NewCond(env.Eng),
		space:    sim.NewCond(env.Eng),
		outFree:  sim.NewCond(env.Eng),
		pinned:   make(map[int]int64),
	}
	// An RDMAEngine spec never builds the fifo hardware, so the doorbell
	// register window is unmapped until the engine claims it.
	env.Bus.MapRange(RegBase, FifoBase, &regsTarget{latency: env.Cfg.NISRAM + env.Cfg.IOBridge})
	// The composer builds the rdma engine after the coherent engine, whose
	// send side is unused under an RDMAEngine spec — taking over the
	// endpoint's single OnOutFree callback is safe.
	env.EP.OnOutFree = func() { r.outFree.Broadcast() }
	env.EP.OnPut = func(m *netsim.Message) {
		r.env.Stats.FragmentsReceived++
		if r.putSink != nil {
			r.putSink(m)
		}
		// On unreliable networks the frame was forgotten at inject (only
		// the reliability layer retains frames, Seq != 0, for retransmit
		// and settles them back to the sender's pool), so once the sink
		// has copied what it needs the object is dead — adopt it into this
		// engine's pool. Symmetric traffic then cycles frames without
		// allocation on unreliable runs too.
		if m.Seq == 0 {
			m.Recycle()
			m.Payload = nil
			m.PayloadLen = 0
			r.pool = append(r.pool, m)
		}
	}
	env.EP.OnGet = func(m *netsim.Message) {
		// Serve the get entirely on the NI: no descriptor-post or pin cost
		// is charged — the requester registered the region; the responder's
		// processor never learns the transfer happened.
		xfer, bytes := DecodeGetArg(m.Arg)
		r.descQ.push(rdmaDesc{kind: descPut, put: putWork{
			dst: m.Src, handler: m.Handler, channel: m.Channel,
			xfer: xfer, n: bytes, sendTime: r.env.Eng.Now(),
		}})
		r.work.Broadcast()
		// As with puts: an unsealed request frame is dead once decoded.
		if m.Seq == 0 {
			m.Recycle()
			m.Payload = nil
			m.PayloadLen = 0
			r.pool = append(r.pool, m)
		}
	}
	env.EP.OnSettled = func(m *netsim.Message) {
		if r.unsettled > 0 {
			r.unsettled--
		}
		m.Recycle()
		m.Payload = nil
		m.PayloadLen = 0
		r.pool = append(r.pool, m)
	}
	env.Eng.Spawn(fmt.Sprintf("rdma-%d", env.ID), r.engine)
	return r
}

// chargePin charges pr the registration cost for a transfer of bytes to
// dst: first touch pays the pinning syscall plus the per-page translation
// installs; later transfers pay only for pages beyond the cached extent.
func (r *rdma) chargePin(pr *proc.Proc, dst int, bytes int) {
	cfg := &r.env.Cfg
	pages := int64((bytes + cfg.RDMAPageBytes - 1) / cfg.RDMAPageBytes)
	if pages < 1 {
		pages = 1
	}
	cur, ok := r.pinned[dst]
	if !ok {
		pr.Work(stats.Transfer, cfg.RDMAPinCycles+pages*cfg.RDMAPagePinCycles)
		r.pinned[dst] = pages //lint:allow noalloc per-target registration map is sized by node count at warm-up; steady-state transfers hit existing buckets
		return
	}
	if pages > cur {
		pr.Work(stats.Transfer, (pages-cur)*cfg.RDMAPagePinCycles)
		r.pinned[dst] = pages //lint:allow noalloc the key is already present, so the assignment reuses its existing bucket
	}
}

// post charges descriptor composition and the doorbell, waiting out a full
// descriptor ring, then queues d for the NI.
//
//lint:hotpath
func (r *rdma) post(pr *proc.Proc, d rdmaDesc) {
	if r.descQ.len() >= r.env.Cfg.RDMADescRing {
		r.env.Stats.SendBlocked++
		for r.descQ.len() >= r.env.Cfg.RDMADescRing {
			r.space.WaitAs(pr.P, stats.Buffering)
		}
	}
	pr.Work(stats.Transfer, r.env.Cfg.RDMADescCycles)
	pr.UncachedWrite(stats.Transfer, RegGo, 8)
	r.descQ.push(d)
	r.work.Broadcast()
}

// send is the two-sided path through the descriptor queue: register the
// buffer, post, and return — the NI fetches and injects asynchronously,
// like a coherent send but with the registration tax instead of a
// cacheable queue copy.
//
//lint:hotpath
func (r *rdma) send(pr *proc.Proc, m *netsim.Message) {
	r.chargePin(pr, m.Dst, m.Size())
	r.post(pr, rdmaDesc{kind: descSend, m: m})
}

// Put implements RDMA.
//
//lint:hotpath
func (r *rdma) Put(pr *proc.Proc, op PutOp) {
	r.chargePin(pr, op.Dst, op.PayloadLen)
	r.post(pr, rdmaDesc{kind: descPut, put: putWork{
		dst: op.Dst, handler: op.Handler, channel: op.Channel,
		xfer: op.XferID, payload: op.Payload, n: op.PayloadLen, sendTime: op.SendTime,
	}})
}

// Get implements RDMA. The request itself is a zero-payload one-sided
// frame; the registration charged covers the landing zone for the bytes
// coming back.
//
//lint:hotpath
func (r *rdma) Get(pr *proc.Proc, op GetOp) {
	r.chargePin(pr, op.Dst, op.Bytes)
	g := r.frame()
	g.Src = r.env.ID
	g.Dst = op.Dst
	g.Handler = op.Handler
	g.Channel = op.Channel
	g.Arg = GetArg(op.XferID, op.Bytes)
	g.SendTime = op.SendTime
	r.post(pr, rdmaDesc{kind: descGet, m: g})
}

// CanPut implements RDMA.
//
//lint:hotpath
func (r *rdma) CanPut() bool { return r.descQ.len() < r.env.Cfg.RDMADescRing }

// SetPutSink implements RDMA.
func (r *rdma) SetPutSink(fn func(m *netsim.Message)) { r.putSink = fn }

// Settled implements RDMA.
//
//lint:hotpath
func (r *rdma) Settled() bool { return r.unsettled == 0 }

// frame returns a recycled put/get frame, or allocates one on a cold pool.
//
//lint:hotpath
func (r *rdma) frame() *netsim.Message {
	if n := len(r.pool); n > 0 {
		f := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return f
	}
	return &netsim.Message{} //lint:allow noalloc cold-pool frame; reliable runs recycle through OnSettled, and the put alloc gate runs on a reliable rig
}

// staging returns the next rotating DMA source address.
func (r *rdma) staging() membus.Addr {
	r.stagingSeq++
	return rdmaStagingBase + membus.Addr(r.stagingSeq%256)*1024
}

// engine is the NI-side state machine: drain descriptors, DMA-read the
// source bytes with coherent bus reads, and inject.
func (r *rdma) engine(p *sim.Process) {
	for {
		for r.descQ.len() == 0 {
			r.busy = false
			r.work.Wait(p)
		}
		r.busy = true
		d := r.descQ.pop()
		r.space.Broadcast()
		switch d.kind {
		case descSend:
			r.dmaRead(p, d.m.Size())
			for !r.env.EP.TryAcquireOut() {
				r.outFree.Wait(p)
			}
			r.env.EP.Inject(d.m)
			if tr := r.env.Trace; tr != nil {
				tr("rdma inject dst=%d size=%dB", d.m.Dst, d.m.Size())
			}
		case descPut:
			r.servePut(p, d.put)
		case descGet:
			r.env.EP.Get(d.m)
			if r.reliable {
				r.unsettled++
			}
			if tr := r.env.Trace; tr != nil {
				tr("rdma get dst=%d arg=%#x", d.m.Dst, d.m.Arg)
			}
		}
	}
}

// servePut fragments one put into MTU-sized frames, DMA-reading each
// frame's bytes before injecting it. Frames bypass flow control entirely
// (netsim one-sided seam), so pacing comes from the DMA reads and the
// link's injection serialization, exactly like hardware.
//
//lint:hotpath
func (r *rdma) servePut(p *sim.Process, w putWork) {
	frames := (w.n + r.frameCap - 1) / r.frameCap
	if frames < 1 {
		frames = 1
	}
	sent := 0
	for i := 0; i < frames; i++ {
		fb := w.n - sent
		if fb > r.frameCap {
			fb = r.frameCap
		}
		r.dmaRead(p, fb+netsim.HeaderBytes)
		f := r.frame()
		f.Src = r.env.ID
		f.Dst = w.dst
		f.Handler = w.handler
		f.Channel = w.channel
		f.PayloadLen = fb
		if w.payload != nil {
			f.Payload = w.payload[sent : sent+fb]
		}
		f.Arg = PutFrameArg(w.xfer, i, frames)
		f.SendTime = w.sendTime
		r.env.EP.Put(f)
		r.env.Stats.FragmentsSent++
		if r.reliable {
			r.unsettled++
		}
		sent += fb
	}
	if tr := r.env.Trace; tr != nil {
		tr("rdma put dst=%d xfer=%d bytes=%d frames=%d", w.dst, w.xfer, w.n, frames)
	}
}

// dmaRead models the NI's coherent fetch of n source bytes from the
// registered buffer: one split GetS transaction per 64-byte block, each
// snooping the processor cache like any other bus master. Scratch
// transactions (Bus.Access) keep the per-frame path allocation-free.
//
//lint:hotpath
func (r *rdma) dmaRead(p *sim.Process, n int) {
	src := r.staging()
	blocks := (n + membus.BlockSize - 1) / membus.BlockSize
	if blocks < 1 {
		blocks = 1
	}
	for i := 0; i < blocks; i++ {
		r.env.Bus.Access(p, membus.GetS, src+membus.Addr(i*membus.BlockSize), membus.BlockSize)
	}
}

// canSend mirrors CanPut for the plain NI contract.
//
//lint:hotpath
func (r *rdma) canSend() bool { return r.descQ.len() < r.env.Cfg.RDMADescRing }

// idle reports whether the descriptor queue has drained, the state machine
// is parked, and (on reliable networks) every one-sided frame settled.
// Unreliable one-sided frames in flight are invisible here — there is no
// ack to observe — so workloads on unreliable networks must quiesce
// through their own protocol-level completion signal.
//
//lint:hotpath
func (r *rdma) idle() bool { return r.descQ.len() == 0 && !r.busy && r.unsettled == 0 }
