package nic

import "fmt"

// This file defines the NI design space of the paper's §4 as data: a Spec
// names one point in the (send transfer engine × receive transfer engine ×
// buffering policy) cross product, and the composer in composed.go builds a
// working NI from any valid Spec. The seven NIs of Table 2 (plus the two §6
// variants) are just the named points; the rest of the space is reachable
// through cmd/designspace.

// Engine identifies one transfer-engine implementation: the component that
// owns the bus-transaction idiom moving message bytes between the processor
// (or memory) and the network.
//
//lint:enum
type Engine int

// The transfer engines. Each corresponds to one data-transfer parameter
// setting of Table 2 (transfer size × transfer manager × source/dest).
const (
	// EngineNone marks an unset engine; never valid.
	EngineNone Engine = iota
	// UncachedWordEngine is the CM-5 idiom: the processor moves every
	// word with uncached loads/stores through a two-word fifo window.
	UncachedWordEngine
	// RegisterWordEngine is the single-cycle variant of Figure 4: the same
	// word loop, but the NI is processor-register-mapped, so every access
	// is one cycle and no bus transaction.
	RegisterWordEngine
	// BlockBufEngine is the AP3000 idiom: processor-managed 64-byte block
	// loads/stores between an on-chip block buffer and the NI fifo.
	BlockBufEngine
	// ReflectiveEngine is the Memory Channel send idiom: stores to a mapped
	// page stream to the NI as block writes with no status-register checks.
	// Send-only.
	ReflectiveEngine
	// UDMAEngine is the Princeton idiom: small messages go through the
	// uncached word window; large ones through user-initiated, NI-managed
	// block DMA.
	UDMAEngine
	// CoherentEngine is the CNI idiom: the NI is a coherent bus device
	// moving 64-byte blocks to/from cacheable queue memory on its own.
	CoherentEngine
	// RDMAEngine is the one-sided remote-DMA idiom (MPICH2-over-InfiniBand):
	// the processor posts a descriptor naming pinned user memory and the NI
	// reads the data with coherent block fetches and moves it itself, with a
	// registration/pinning cost amortized across repeated targets. Send-only;
	// it also exposes one-sided put/get (RDMA) that bypasses the target's
	// receive ring entirely. Receive rides a coherent ring engine.
	RDMAEngine
	numEngines
)

func (e Engine) String() string {
	switch e {
	case UncachedWordEngine:
		return "uword"
	case RegisterWordEngine:
		return "regword"
	case BlockBufEngine:
		return "blkbuf"
	case ReflectiveEngine:
		return "reflective"
	case UDMAEngine:
		return "udma"
	case CoherentEngine:
		return "coherent"
	case RDMAEngine:
		return "rdma"
	default: //lint:allow exhaustive String falls back to engine%d for invalid values; report output is byte-identity-locked
		return fmt.Sprintf("engine%d", int(e))
	}
}

// fifoFamily reports whether e moves data through the shared fifo hardware
// (device SRAM window + uncached status registers) rather than through
// coherent queue memory.
func (e Engine) fifoFamily() bool {
	switch e { //lint:allow exhaustive membership predicate: engines absent from the case list are queue-memory family by definition
	case UncachedWordEngine, RegisterWordEngine, BlockBufEngine, ReflectiveEngine, UDMAEngine:
		return true
	}
	return false
}

// Buffering identifies one buffering policy: the component that owns where
// incoming messages wait, who bounces them when space runs out, and how
// storage is reclaimed (Table 2's buffering parameters: location ×
// processor involvement).
//
//lint:enum
type Buffering int

// The buffering policies.
const (
	// BufferingNone marks an unset policy; never valid.
	BufferingNone Buffering = iota
	// FifoVM buffers messages in the NI fifo (physically the incoming
	// flow-control buffers) with VM fallback: overflow returns messages to
	// the sender, whose *processor* must notice and re-push them.
	FifoVM
	// MemoryRing buffers messages in a coherent ring homed in main memory
	// (StarT-JR, Memory Channel receive): plentiful, no processor
	// involvement, every block travels through DRAM.
	MemoryRing
	// NIRing buffers messages in a coherent ring homed in NI DRAM
	// (CNI_512Q): bounded, no processor involvement, blocks stay on the
	// device until consumed.
	NIRing
	// NICachedRing buffers messages in a memory-homed ring cached in NI
	// SRAM (CNI_32Q_m): overflow bypasses to memory, consumed blocks die
	// in the cache without writeback.
	NICachedRing
	numBufferings
)

func (b Buffering) String() string {
	switch b {
	case FifoVM:
		return "fifovm"
	case MemoryRing:
		return "memring"
	case NIRing:
		return "niring"
	case NICachedRing:
		return "nicache"
	default: //lint:allow exhaustive String falls back to buffering%d for invalid values; report output is byte-identity-locked
		return fmt.Sprintf("buffering%d", int(b))
	}
}

// RefuseAction is what an overload policy does with an arrival it refuses
// at the admission watermark.
//
//lint:enum
type RefuseAction int

const (
	// RefuseBounce returns the refused arrival to its sender on the second
	// network — the paper's flow-control verdict, applied early.
	RefuseBounce RefuseAction = iota
	// RefuseDrop destroys the refused arrival. In a lossless network this
	// silently loses the message (the watchdog names the stranded sender);
	// under the reliability layer the sender retries or abandons.
	RefuseDrop
	numRefuseActions
)

func (r RefuseAction) String() string {
	switch r {
	case RefuseBounce:
		return "bounce"
	case RefuseDrop:
		return "drop"
	default: //lint:allow exhaustive String falls back to refuse%d for invalid values; report output is byte-identity-locked
		return fmt.Sprintf("refuse%d", int(r))
	}
}

// EvictChoice is whether an over-watermark arrival may displace buffered
// work instead of being refused.
//
//lint:enum
type EvictChoice int

const (
	// EvictNone refuses over-watermark arrivals outright.
	EvictNone EvictChoice = iota
	// EvictOldest destroys the oldest undelivered buffered message to make
	// room, then admits the arrival (drop-from-head: newest data survives).
	EvictOldest
	numEvictChoices
)

// OverloadPolicy is the declarative admission-control policy of a Spec:
// what the receive side does with arrivals once buffered occupancy crosses
// a watermark. The zero value disables admission control — every arrival
// takes the paper's accept-or-flow-control-bounce path, bit-identically.
type OverloadPolicy struct {
	// AdmitPct is the occupancy watermark in percent of receive-buffer
	// capacity: arrivals are admitted while occupancy < AdmitPct% of
	// capacity. 0 disables the policy entirely; 100 admits until full.
	AdmitPct int
	// ResumePct, when positive, adds hysteresis to the watermark: once an
	// arrival has been refused, the policy keeps refusing until occupancy
	// falls below ResumePct% of capacity, instead of flapping between admit
	// and refuse one message either side of AdmitPct. Must not exceed
	// AdmitPct. 0 keeps the single-threshold behavior bit-identical.
	ResumePct int
	// Refuse is the fate of a refused arrival: bounce (default) or drop.
	Refuse RefuseAction
	// Evict, when EvictOldest, displaces the oldest buffered message
	// instead of refusing the arrival. Requires Refuse == RefuseDrop (an
	// evicting policy is a drop-class policy: it destroys admitted data).
	Evict EvictChoice
	// ControlBase, when positive, exempts control-plane traffic: arrivals
	// whose Handler >= ControlBase bypass the watermark and are always
	// admitted, so barriers and protocol messages survive data overload.
	ControlBase int
}

// Zero reports whether the policy disables admission control.
func (p OverloadPolicy) Zero() bool { return p.AdmitPct == 0 }

// Spec is one point in the NI design space: a send transfer engine, a
// receive transfer engine, and a buffering policy, plus the optional
// software send-throttle of Table 5's CNI_32Q_m+Throttle and an optional
// overload-admission policy.
type Spec struct {
	Send      Engine
	Recv      Engine
	Buffering Buffering
	// Throttle enables the software credit scheme that keeps no more
	// unconsumed blocks outstanding per destination than the receiver's NI
	// cache holds. Requires a coherent send engine over NICachedRing.
	Throttle bool
	// Overload is the admission-control policy applied to arrivals at this
	// NI's endpoint. The zero value preserves lossless accept-or-bounce.
	Overload OverloadPolicy
}

// Name returns a compact identifier for the spec: the Kind short name for
// the nine named design points, or "send+recv.buffering" for cross-product
// specs, with a "+ovPCTr[e][hN][cN]" suffix when an overload policy is set
// (PCT the watermark, r the refuse action's initial, e eviction, hN the
// hysteresis resume threshold, cN the control-exemption handler base).
func (s Spec) Name() string {
	base := s
	base.Overload = OverloadPolicy{}
	var n string
	if k := KindOf(base); k != Custom {
		n = k.ShortName()
	} else {
		n = fmt.Sprintf("%s+%s.%s", s.Send, s.Recv, s.Buffering)
		if s.Throttle {
			n += "+throttle"
		}
	}
	if !s.Overload.Zero() {
		n += fmt.Sprintf("+ov%d%c", s.Overload.AdmitPct, s.Overload.Refuse.String()[0])
		if s.Overload.Evict == EvictOldest {
			n += "e"
		}
		if s.Overload.ResumePct > 0 {
			n += fmt.Sprintf("h%d", s.Overload.ResumePct)
		}
		if s.Overload.ControlBase > 0 {
			n += fmt.Sprintf("c%d", s.Overload.ControlBase)
		}
	}
	return n
}

// Validate reports whether the spec is a buildable design point. The rules
// encode the physical constraints of the components:
//
//   - ReflectiveEngine has no receive side (reflective memory is write-only).
//   - RDMAEngine is send-only too, and its one-sided completions deposit
//     straight into user memory, so it requires a coherent receive engine
//     over ring buffering — the fifo window plays no part in its path.
//   - FifoVM buffering services messages through the fifo hardware, so the
//     receive engine must be fifo-family; a coherent or RDMA send engine
//     buffers outbound messages in its own ring/descriptor queue, which
//     FifoVM does not model.
//   - The ring policies deposit messages into coherent queue memory, which
//     only the coherent engine can read, so ring buffering requires a
//     coherent receive engine.
//   - Throttle is the CNI_32Q_m credit scheme: it meters the receiver's NI
//     cache, so it requires a coherent send engine over NICachedRing.
func (s Spec) Validate() error {
	if s.Send <= EngineNone || s.Send >= numEngines {
		return fmt.Errorf("nic: invalid send engine %d", int(s.Send))
	}
	if s.Recv <= EngineNone || s.Recv >= numEngines {
		return fmt.Errorf("nic: invalid recv engine %d", int(s.Recv))
	}
	if s.Buffering <= BufferingNone || s.Buffering >= numBufferings {
		return fmt.Errorf("nic: invalid buffering policy %d", int(s.Buffering))
	}
	if s.Recv == ReflectiveEngine {
		return fmt.Errorf("nic: %s is send-only", ReflectiveEngine)
	}
	if s.Recv == RDMAEngine {
		return fmt.Errorf("nic: %s is send-only", RDMAEngine)
	}
	if s.Buffering == FifoVM {
		if !s.Recv.fifoFamily() {
			return fmt.Errorf("nic: %s buffering requires a fifo-family recv engine, got %s", s.Buffering, s.Recv)
		}
		if s.Send == CoherentEngine || s.Send == RDMAEngine {
			return fmt.Errorf("nic: %s send engine requires ring buffering, got %s", s.Send, s.Buffering)
		}
	} else if s.Recv != CoherentEngine {
		return fmt.Errorf("nic: %s buffering requires the %s recv engine, got %s", s.Buffering, CoherentEngine, s.Recv)
	}
	if s.Throttle && (s.Send != CoherentEngine || s.Buffering != NICachedRing) {
		return fmt.Errorf("nic: throttle requires %s send over %s", CoherentEngine, NICachedRing)
	}
	return s.Overload.validate()
}

// validate checks the overload policy's internal consistency. The zero
// value always validates (admission control off).
func (p OverloadPolicy) validate() error {
	if p.AdmitPct < 0 || p.AdmitPct > 100 {
		return fmt.Errorf("nic: overload AdmitPct %d outside [0, 100]", p.AdmitPct)
	}
	if p.Refuse < 0 || p.Refuse >= numRefuseActions {
		return fmt.Errorf("nic: invalid overload refuse action %d", int(p.Refuse))
	}
	if p.Evict < 0 || p.Evict >= numEvictChoices {
		return fmt.Errorf("nic: invalid overload evict choice %d", int(p.Evict))
	}
	if p.ResumePct < 0 || p.ResumePct > 100 {
		return fmt.Errorf("nic: overload ResumePct %d outside [0, 100]", p.ResumePct)
	}
	if p.AdmitPct == 0 {
		if p.Refuse != RefuseBounce || p.Evict != EvictNone || p.ControlBase != 0 || p.ResumePct != 0 {
			return fmt.Errorf("nic: overload policy fields require AdmitPct > 0")
		}
		return nil
	}
	if p.ResumePct > p.AdmitPct {
		return fmt.Errorf("nic: overload ResumePct %d exceeds AdmitPct %d (hysteresis band would invert)", p.ResumePct, p.AdmitPct)
	}
	if p.Evict == EvictOldest && p.Refuse != RefuseDrop {
		return fmt.Errorf("nic: %v eviction requires the drop refuse action (eviction destroys admitted data)", EvictOldest)
	}
	if p.ControlBase < 0 {
		return fmt.Errorf("nic: negative overload ControlBase %d", p.ControlBase)
	}
	return nil
}

// Custom is the Kind reported by NIs composed from a Spec that matches none
// of the nine named design points.
const Custom Kind = -1

// SpecFor returns the design-space decomposition of a named Kind (the
// Table 2 classification as a Spec).
func SpecFor(kind Kind) Spec {
	switch kind {
	case CM5:
		return Spec{Send: UncachedWordEngine, Recv: UncachedWordEngine, Buffering: FifoVM}
	case CM5SingleCycle:
		return Spec{Send: RegisterWordEngine, Recv: RegisterWordEngine, Buffering: FifoVM}
	case UDMA:
		return Spec{Send: UDMAEngine, Recv: UDMAEngine, Buffering: FifoVM}
	case AP3000:
		return Spec{Send: BlockBufEngine, Recv: BlockBufEngine, Buffering: FifoVM}
	case StarTJR:
		return Spec{Send: CoherentEngine, Recv: CoherentEngine, Buffering: MemoryRing}
	case MemoryChannel:
		return Spec{Send: ReflectiveEngine, Recv: CoherentEngine, Buffering: MemoryRing}
	case CNI512Q:
		return Spec{Send: CoherentEngine, Recv: CoherentEngine, Buffering: NIRing}
	case CNI32Qm:
		return Spec{Send: CoherentEngine, Recv: CoherentEngine, Buffering: NICachedRing}
	case CNI32QmThrottle:
		return Spec{Send: CoherentEngine, Recv: CoherentEngine, Buffering: NICachedRing, Throttle: true}
	default:
		panic(fmt.Sprintf("nic: no spec for kind %d", int(kind)))
	}
}

// KindOf returns the named Kind a spec reproduces, or Custom when the spec
// is a cross-product point the paper did not study.
func KindOf(s Spec) Kind {
	for k := Kind(0); k < numKinds; k++ {
		if SpecFor(k) == s {
			return k
		}
	}
	return Custom
}

// AllSpecs enumerates every valid spec in the design space in a fixed,
// deterministic order: all (send, recv, buffering) triples that Validate,
// plus the throttled variant of each triple that supports it.
func AllSpecs() []Spec {
	var out []Spec
	for send := Engine(1); send < numEngines; send++ {
		for recv := Engine(1); recv < numEngines; recv++ {
			for buf := Buffering(1); buf < numBufferings; buf++ {
				s := Spec{Send: send, Recv: recv, Buffering: buf}
				if s.Validate() == nil {
					out = append(out, s)
				}
				s.Throttle = true
				if s.Validate() == nil {
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// CrossSpecs enumerates the valid specs beyond the nine named design
// points, in the same deterministic order as AllSpecs.
func CrossSpecs() []Spec {
	var out []Spec
	for _, s := range AllSpecs() {
		if KindOf(s) == Custom {
			out = append(out, s)
		}
	}
	return out
}
