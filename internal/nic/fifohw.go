package nic

import (
	"nisim/internal/mainmem"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// fifoHW is the device hardware shared by the fifo-family transfer engines
// (uncached-word, register-word, block-buffer, reflective, UDMA): an
// SRAM-backed fifo window on the device, uncached status registers, and a
// receive queue that is physically the network's incoming flow-control
// buffers — which is why fifo-buffered designs are so sensitive to the
// flow-control buffer count (Figure 3a).
//
// Under the FifoVM buffering policy the processor is involved in buffering
// (Table 2): a returned message sits in its still-allocated outgoing buffer
// until the software notices and re-pushes it, so fifoHW also wires the
// bounce queue. Ring-buffered hybrids (Memory Channel send) share the same
// window hardware but leave bouncing to the NI; the composer un-wires
// OnBounce for them.
type fifoHW struct {
	env      *Env
	fifo     *mainmem.Memory // serialized NI SRAM behind the fifo window
	regs     *regsTarget
	recvQ    msgQueue
	bounced  msgQueue // returned-to-sender messages awaiting re-push
	recvCond *sim.Cond
}

func newFifoHW(env *Env) *fifoHW {
	f := &fifoHW{
		env:      env,
		fifo:     mainmem.New("ni-fifo", env.Cfg.NISRAM+env.Cfg.IOBridge, env.Eng),
		regs:     &regsTarget{latency: env.Cfg.NISRAM + env.Cfg.IOBridge},
		recvCond: sim.NewCond(env.Eng),
	}
	env.Bus.MapRange(RegBase, FifoBase, f.regs)
	env.Bus.MapRange(FifoBase, NIQSendBase, f.fifo)
	env.EP.OnAccept = func(m *netsim.Message) {
		// The message occupies its incoming flow-control buffer until the
		// processor pops it; ReleaseIn happens at pop time.
		f.recvQ.push(m)
		if tr := env.Trace; tr != nil {
			tr("buffer accept src=%d size=%dB queued=%d", m.Src, m.Size(), f.recvQ.len())
		}
		f.recvCond.Broadcast()
	}
	env.EP.OnBounce = func(m *netsim.Message) {
		f.bounced.push(m)
		if tr := env.Trace; tr != nil {
			tr("buffer bounce dst=%d size=%dB awaiting-retry=%d", m.Dst, m.Size(), f.bounced.len())
		}
		f.recvCond.Broadcast()
	}
	return f
}

// retryOne re-sends the oldest returned message. The repush callback
// charges the processor the design's re-push cost; the time, and the
// injection, count as processor-involved buffering work. Callers must
// prefer consuming incoming messages over retrying (consume-first avoids
// livelock between mutually bouncing senders).
func (f *fifoHW) retryOne(pr *proc.Proc, repush func(m *netsim.Message)) {
	m := f.bounced.pop()
	f.env.Stats.Retries++
	if tr := f.env.Trace; tr != nil {
		tr("buffer retry dst=%d size=%dB remaining=%d", m.Dst, m.Size(), f.bounced.len())
	}
	prev := pr.P.Category
	pr.P.Category = stats.Buffering
	repush(m)
	pr.P.Category = prev
	f.env.EP.Inject(m)
}

// hasBounced reports whether returned messages await software service.
func (f *fifoHW) hasBounced() bool { return f.bounced.len() > 0 }

// pending reports whether a message is waiting.
func (f *fifoHW) pending() bool { return f.recvQ.len() > 0 }

// head returns the message at the fifo head without popping it.
func (f *fifoHW) head() *netsim.Message {
	if f.recvQ.len() == 0 {
		return nil
	}
	return f.recvQ.peek()
}

// pop removes the head message and frees its flow-control buffer.
func (f *fifoHW) pop() *netsim.Message {
	m := f.recvQ.pop()
	f.env.EP.ReleaseIn()
	return m
}

// waitForMessage parks the processor until a message is waiting. The idle
// time is charged to the compute category (it is communication wait, not an
// NI data-transfer or buffering cost).
func (f *fifoHW) waitForMessage(pr *proc.Proc) {
	for f.recvQ.len() == 0 {
		f.recvCond.WaitAs(pr.P, stats.Compute)
	}
}

// waitForMessageServicing is waitForMessage for NIs whose software must
// also re-push returned messages while it waits. Incoming messages take
// priority over retries.
func (f *fifoHW) waitForMessageServicing(pr *proc.Proc, repush func(m *netsim.Message)) {
	for {
		if f.recvQ.len() > 0 {
			return
		}
		if f.bounced.len() > 0 {
			f.retryOne(pr, repush)
			continue
		}
		f.recvCond.WaitAs(pr.P, stats.Compute)
	}
}

// recordRecv updates the NI-level fragment counters; application-message
// counters are maintained by the messaging layer on reassembly.
func recordRecv(env *Env, m *netsim.Message) {
	env.Stats.FragmentsReceived++
}
