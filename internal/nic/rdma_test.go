package nic

import (
	"testing"

	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// rdmaSpec is the canonical one-sided design point: RDMA send engine over a
// memory-homed ring receive side.
func rdmaSpec() Spec {
	return Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: MemoryRing}
}

// reliableNet is the network configuration the settlement-dependent RDMA
// tests run under.
func reliableNet() netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.Reliability = netsim.ReliabilityConfig{
		Enabled: true, AckTimeout: 2 * sim.Microsecond,
		TimeoutCap: 16 * sim.Microsecond, MaxAttempts: 4,
	}
	return cfg
}

// TestRDMAValidation pins the spec rules the one-sided engine introduces.
func TestRDMAValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"put over memring", rdmaSpec(), true},
		{"put over niring", Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: NIRing}, true},
		{"put over nicache", Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: NICachedRing}, true},
		{"rdma receive side", Spec{Send: CoherentEngine, Recv: RDMAEngine, Buffering: MemoryRing}, false},
		{"rdma over fifo vm", Spec{Send: RDMAEngine, Recv: UncachedWordEngine, Buffering: FifoVM}, false},
		{"rdma throttled", Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: NICachedRing, Throttle: true}, false},
		{"hysteresis", Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: MemoryRing,
			Overload: OverloadPolicy{AdmitPct: 75, ResumePct: 40}}, true},
		{"resume above admit", Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: MemoryRing,
			Overload: OverloadPolicy{AdmitPct: 40, ResumePct: 75}}, false},
		{"resume without admit", Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: MemoryRing,
			Overload: OverloadPolicy{ResumePct: 40}}, false},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	want := "rdma+coherent.memring+ov75dh40"
	s := Spec{Send: RDMAEngine, Recv: CoherentEngine, Buffering: MemoryRing,
		Overload: OverloadPolicy{AdmitPct: 75, ResumePct: 40, Refuse: RefuseDrop}}
	if got := s.Name(); got != want {
		t.Errorf("hysteresis spec name = %q, want %q", got, want)
	}
}

// TestRDMAPutDelivery pins the one-sided put contract end to end: a
// multi-frame put arrives through the sink with dense placement tags, never
// consults admission control, and holds no flow-control buffers once
// settled. The receiving processor never calls Recv — delivery is entirely
// NI-side.
func TestRDMAPutDelivery(t *testing.T) {
	spec := rdmaSpec()
	// An aggressive watermark on every node: one-sided traffic must sail
	// straight past it.
	spec.Overload = OverloadPolicy{AdmitPct: 1, Refuse: RefuseDrop}
	r := newTwoNodesNet(t, spec, 4, reliableNet(), nil)

	// Frames are pooled: their contents are only valid inside the sink
	// callback (the zero-copy contract), so the test snapshots what it needs.
	type seen struct {
		xfer        uint32
		idx, total  int
		handler, pb int
		put         bool
	}
	const xferBytes = 1000
	var frames []seen
	r.nis[1].(RDMACapable).RDMA().SetPutSink(func(m *netsim.Message) {
		xfer, idx, n := DecodePutFrame(m.Arg)
		frames = append(frames, seen{xfer: xfer, idx: idx, total: n, handler: m.Handler, pb: m.PayloadLen, put: m.IsPut()})
	})
	sender := r.nis[0].(RDMACapable).RDMA()
	if sender == nil {
		t.Fatal("rdma spec composed without a one-sided interface")
	}

	frameCap := netsim.DefaultConfig().MaxNetMsg - netsim.HeaderBytes
	wantFrames := (xferBytes + frameCap - 1) / frameCap
	r.run(t,
		func(pr *proc.Proc, ni NI) {
			sender.Put(pr, PutOp{Dst: 1, Handler: 7, XferID: 42, PayloadLen: xferBytes, SendTime: r.eng.Now()})
			for len(frames) < wantFrames || !sender.Settled() {
				pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
			}
		},
		func(pr *proc.Proc, ni NI) {},
	)

	if len(frames) != wantFrames {
		t.Fatalf("put of %dB arrived as %d frames, want %d", xferBytes, len(frames), wantFrames)
	}
	total := 0
	for i, f := range frames {
		if f.xfer != 42 || f.idx != i || f.total != wantFrames {
			t.Errorf("frame %d tagged (xfer=%d idx=%d total=%d), want (42, %d, %d)", i, f.xfer, f.idx, f.total, i, wantFrames)
		}
		if f.handler != 7 || !f.put {
			t.Errorf("frame %d: handler=%d IsPut=%v", i, f.handler, f.put)
		}
		total += f.pb
	}
	if total != xferBytes {
		t.Errorf("frames carry %d payload bytes, want %d", total, xferBytes)
	}
	if got := r.nodes[1].FragmentsReceived; got != int64(wantFrames) {
		t.Errorf("receiver FragmentsReceived = %d, want %d", got, wantFrames)
	}
	if got := r.nodes[1].AdmitDrops; got != 0 {
		t.Errorf("admission control refused %d one-sided frames", got)
	}
	for i := 0; i < 2; i++ {
		ep := r.net.Endpoint(i)
		if ep.OutFree() != ep.Buffers() || ep.InFree() != ep.Buffers() {
			t.Errorf("node %d holds flow-control buffers after settle: out %d/%d in %d/%d",
				i, ep.OutFree(), ep.Buffers(), ep.InFree(), ep.Buffers())
		}
	}
	if rep := r.net.QuiescenceReport(); rep != "" {
		t.Errorf("network not quiescent:\n%s", rep)
	}
}

// TestRDMAGetRoundTrip pins the get path: the requester posts one
// descriptor, and the responder's NI serves the put-back without any
// responder software — its processor never runs a receive.
func TestRDMAGetRoundTrip(t *testing.T) {
	r := newTwoNodesNet(t, rdmaSpec(), 4, reliableNet(), nil)

	type seen struct {
		xfer        uint32
		idx, total  int
		handler, pb int
	}
	const xferBytes = 600
	var frames []seen
	requester := r.nis[0].(RDMACapable).RDMA()
	requester.SetPutSink(func(m *netsim.Message) {
		xfer, idx, n := DecodePutFrame(m.Arg)
		frames = append(frames, seen{xfer: xfer, idx: idx, total: n, handler: m.Handler, pb: m.PayloadLen})
	})

	frameCap := netsim.DefaultConfig().MaxNetMsg - netsim.HeaderBytes
	wantFrames := (xferBytes + frameCap - 1) / frameCap
	r.run(t,
		func(pr *proc.Proc, ni NI) {
			requester.Get(pr, GetOp{Dst: 1, Handler: 9, XferID: 7, Bytes: xferBytes, SendTime: r.eng.Now()})
			for len(frames) < wantFrames || !requester.Settled() {
				pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
			}
		},
		func(pr *proc.Proc, ni NI) {},
	)

	if len(frames) != wantFrames {
		t.Fatalf("get of %dB returned %d frames, want %d", xferBytes, len(frames), wantFrames)
	}
	total := 0
	for i, f := range frames {
		if f.xfer != 7 || f.idx != i || f.total != wantFrames || f.handler != 9 {
			t.Errorf("frame %d tagged (xfer=%d idx=%d total=%d h=%d)", i, f.xfer, f.idx, f.total, f.handler)
		}
		total += f.pb
	}
	if total != xferBytes {
		t.Errorf("put-back carries %d bytes, want %d", total, xferBytes)
	}
	// The responder's NI moved the data; its processor was never involved.
	if got := r.nodes[1].FragmentsSent; got != int64(wantFrames) {
		t.Errorf("responder FragmentsSent = %d, want %d", got, wantFrames)
	}
	if rep := r.net.QuiescenceReport(); rep != "" {
		t.Errorf("network not quiescent:\n%s", rep)
	}
}

// TestRDMARegistrationAmortized pins the pinning cost model: the first
// transfer to a target pays the registration syscall and per-page charges;
// a repeat of the same extent pays neither; growing the extent pays only
// the new pages; and a different target starts cold again.
func TestRDMARegistrationAmortized(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	// Isolate chargePin: no bus, no network — a bare engine accounting
	// processor work is all the cost model touches.
	st := stats.NewNode()
	pr := &proc.Proc{ID: 0, Eng: eng, Stats: st, CPU: sim.GHz(1)}
	r := &rdma{env: &Env{Cfg: cfg, CPU: sim.GHz(1)}, pinned: make(map[int]int64)}

	var deltas []sim.Time
	p := eng.Spawn("pin", func(p *sim.Process) {
		pr.Bind(p)
		charge := func(dst, bytes int) {
			before := st.TimeIn[stats.Transfer]
			r.chargePin(pr, dst, bytes)
			deltas = append(deltas, st.TimeIn[stats.Transfer]-before)
		}
		charge(1, 2*cfg.RDMAPageBytes) // cold: pin + 2 pages
		charge(1, 2*cfg.RDMAPageBytes) // warm repeat: free
		charge(1, cfg.RDMAPageBytes)   // smaller extent: free
		charge(1, 3*cfg.RDMAPageBytes) // grow by one page
		charge(2, cfg.RDMAPageBytes)   // new target: cold again
	})
	_ = p
	eng.Run()

	cpu := sim.GHz(1)
	want := []sim.Time{
		cpu.Cycles(cfg.RDMAPinCycles + 2*cfg.RDMAPagePinCycles),
		0,
		0,
		cpu.Cycles(cfg.RDMAPagePinCycles),
		cpu.Cycles(cfg.RDMAPinCycles + cfg.RDMAPagePinCycles),
	}
	for i, w := range want {
		if deltas[i] != w {
			t.Errorf("charge %d cost %v, want %v", i, deltas[i], w)
		}
	}
}

// TestRDMAPutAllocFree is the allocation gate for the one-sided hot path:
// once the frame pool is warm (reliable settlement refills it), a complete
// put round — descriptor post, doorbell, NI DMA, frame injection, one-sided
// delivery, ack, settle, recycle — must not allocate.
func TestRDMAPutAllocFree(t *testing.T) {
	r := newTwoNodesNet(t, rdmaSpec(), 8, reliableNet(), nil)
	sender := r.nis[0].(RDMACapable).RDMA()
	got := 0
	r.nis[1].(RDMACapable).RDMA().SetPutSink(func(m *netsim.Message) { got++ })

	const total = 230
	release := 0
	p0 := r.eng.Spawn("putter", func(p *sim.Process) {
		pr := r.procs[0]
		for i := 0; i < total; i++ {
			for release <= i {
				p.Sleep(100 * sim.Nanosecond)
			}
			for !sender.CanPut() {
				p.Sleep(100 * sim.Nanosecond)
			}
			sender.Put(pr, PutOp{Dst: 1, Handler: 7, XferID: uint32(i), PayloadLen: 200})
		}
	})
	r.procs[0].Bind(p0)

	running := func() bool { return got < release || !sender.Settled() }
	round := func() {
		release++
		r.eng.RunWhile(running)
		if got != release || !sender.Settled() {
			t.Fatalf("round %d did not settle: got=%d settled=%v", release, got, sender.Settled())
		}
	}
	for i := 0; i < 20; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Errorf("one-sided put round allocates %.1f per run, want 0", allocs)
	}
}

// TestOverloadHysteresis demonstrates the watermark-flap fix: a
// single-threshold policy sitting at its watermark re-admits after every
// consumed message and immediately refuses again — each admitted arrival
// observes a full queue. With a resume threshold the first refusal latches
// until the receiver drains below the lower watermark, so the policy
// refuses more while refusing *less often* (one latched episode instead of
// per-message flapping), and AdmitFlaps records each episode.
func TestOverloadHysteresis(t *testing.T) {
	type result struct {
		bounces, flaps int64
	}
	runPolicy := func(resume int) result {
		spec := SpecFor(CM5)
		spec.Overload = OverloadPolicy{AdmitPct: 50, ResumePct: resume, Refuse: RefuseBounce}
		r := newTwoNodesNet(t, spec, 8, netsim.DefaultConfig(), nil)
		const total = 40
		r.run(t,
			r.sendN(total, 16),
			func(pr *proc.Proc, ni NI) {
				// Let the queue fill past the watermark, then drain slowly so
				// occupancy hovers at the admission boundary.
				pr.P.SleepAs(stats.Compute, 10*sim.Microsecond)
				for i := 0; i < total; i++ {
					ni.Recv(pr)
					pr.P.SleepAs(stats.Compute, 500*sim.Nanosecond)
				}
			})
		if got := r.nodes[1].FragmentsReceived; got != total {
			t.Fatalf("ResumePct=%d: delivered %d of %d messages", resume, got, total)
		}
		return result{bounces: r.nodes[1].AdmitBounces, flaps: r.nodes[1].AdmitFlaps}
	}

	plain := runPolicy(0)
	hyst := runPolicy(25)

	if plain.bounces == 0 {
		t.Fatal("single-threshold run never hit the watermark; the comparison proves nothing")
	}
	if plain.flaps != 0 {
		t.Errorf("single-threshold policy recorded %d flaps; counter must stay silent without hysteresis", plain.flaps)
	}
	if hyst.flaps == 0 {
		t.Error("hysteresis run recorded no admit flaps")
	}
	if hyst.bounces <= plain.bounces {
		t.Errorf("hysteresis refused %d arrivals vs plain %d; the latch should refuse more while draining",
			hyst.bounces, plain.bounces)
	}
	// The latch converts per-message flapping into whole episodes: each flap
	// must account for multiple refusals.
	if hyst.flaps >= hyst.bounces {
		t.Errorf("hysteresis flapped %d times for %d refusals; refusals should batch per episode", hyst.flaps, hyst.bounces)
	}
}
