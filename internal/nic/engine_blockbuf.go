package nic

import (
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/stats"
)

// blockBufEngine is the AP3000-like block-buffer transfer engine: the
// processor moves messages in 64-byte units between the NI fifo and an
// on-chip block buffer using UltraSparc-style block load/store
// instructions. Transfers use the bus's block mechanism — but the processor
// still manages every transfer.
type blockBufEngine struct {
	env *Env
	hw  *fifoHW
}

func newBlockBufEngine(env *Env, hw *fifoHW) *blockBufEngine {
	return &blockBufEngine{env: env, hw: hw}
}

// send implements sendEngine: check status, then per 64-byte chunk copy the
// payload into the block buffer and block-store it to the NI fifo; finally
// ring the doorbell.
//lint:hotpath
func (b *blockBufEngine) send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, b.env.Cfg.BlkbufPathCycles)
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
	for !b.env.EP.TryAcquireOut() {
		b.env.Stats.SendBlocked++
		b.env.EP.WaitOut(pr.P)
		pr.UncachedRead(stats.Transfer, RegStatus, 8)
	}
	b.push(pr, m)
	b.env.EP.Inject(m)
}

// push moves the message through the block buffer into the NI fifo; it is
// also the cost of re-pushing a returned message.
func (b *blockBufEngine) push(pr *proc.Proc, m *netsim.Message) {
	remaining := m.Size()
	for remaining > 0 {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		// Fill the block buffer from registers/cache: one instruction per
		// 8 bytes.
		pr.Work(stats.Transfer, int64((chunk+7)/8))
		// Flush the block buffer to the NI fifo (12-cycle overhead, §6.1.1).
		pr.BlockWrite(stats.Transfer, FifoBase, b.env.Cfg.BlockBufCycles)
		remaining -= chunk
	}
	pr.UncachedWrite(stats.Transfer, RegGo, 8)
}

// pollMiss implements recvEngine.
//lint:hotpath
func (b *blockBufEngine) pollMiss(pr *proc.Proc) {
	// Unsuccessful poll: monitoring cost attributable to buffering.
	pr.UncachedRead(stats.Buffering, RegStatus, 8)
}

// pollHit implements recvEngine.
//lint:hotpath
func (b *blockBufEngine) pollHit(pr *proc.Proc) {
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
}

// receive implements recvEngine: per 64-byte chunk, load the block buffer
// from the NI fifo (12-cycle overhead) and drain it into registers/cache.
//lint:hotpath
func (b *blockBufEngine) receive(pr *proc.Proc) *netsim.Message {
	m := b.hw.head()
	pr.Work(stats.Transfer, b.env.Cfg.BlkbufPathCycles)
	remaining := m.Size()
	for remaining > 0 {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.BlockRead(stats.Transfer, FifoBase, b.env.Cfg.BlockBufCycles)
		pr.Work(stats.Transfer, int64((chunk+7)/8))
		remaining -= chunk
	}
	recordRecv(b.env, m)
	return b.hw.pop()
}

// serviceRepush implements sendEngine.
//lint:hotpath
func (b *blockBufEngine) serviceRepush(pr *proc.Proc, m *netsim.Message) { b.push(pr, m) }

// retryConsume implements recvEngine: the processor consumes the returned
// message via block loads.
//lint:hotpath
func (b *blockBufEngine) retryConsume(pr *proc.Proc, m *netsim.Message) {
	for remaining := m.Size(); remaining > 0; remaining -= membus.BlockSize {
		pr.BlockRead(pr.P.Category, FifoBase, b.env.Cfg.BlockBufCycles)
	}
}

// retryRepush implements sendEngine: re-push through the block buffer.
//lint:hotpath
func (b *blockBufEngine) retryRepush(pr *proc.Proc, m *netsim.Message) { b.push(pr, m) }

// reflectiveEngine is the Memory Channel-like send engine. Unlike the
// AP3000's fifo protocol, the Memory Channel send side is reflective
// memory: stores to a mapped page stream to the NI without status-register
// checks, which is why the paper finds its send performance almost
// identical to the StarT-JR-like NI's (§6.1.1). Send-only: reflective
// memory has no read path.
type reflectiveEngine struct {
	env *Env
	hw  *fifoHW
}

func newReflectiveEngine(env *Env, hw *fifoHW) *reflectiveEngine {
	return &reflectiveEngine{env: env, hw: hw}
}

// reflSendCycles is the small fixed software cost of a reflective-memory
// send (header build, page-table-mapped window selection).
const reflSendCycles = 30

// send implements sendEngine: fill the block buffer and block-store each
// 64-byte chunk into the mapped send window.
//lint:hotpath
func (r *reflectiveEngine) send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, reflSendCycles)
	for !r.env.EP.TryAcquireOut() {
		r.env.Stats.SendBlocked++
		r.env.EP.WaitOut(pr.P)
	}
	r.push(pr, m)
	r.env.EP.Inject(m)
}

func (r *reflectiveEngine) push(pr *proc.Proc, m *netsim.Message) {
	remaining := m.Size()
	for remaining > 0 {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.Work(stats.Transfer, int64((chunk+7)/8))
		pr.BlockWrite(stats.Transfer, FifoBase, r.env.Cfg.BlockBufCycles)
		remaining -= chunk
	}
}

// serviceRepush implements sendEngine: under FifoVM buffering a returned
// message is simply streamed through the window again (reflective memory
// has no doorbell or status protocol to replay).
//lint:hotpath
func (r *reflectiveEngine) serviceRepush(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, reflSendCycles)
	r.push(pr, m)
}

// retryRepush implements sendEngine.
//lint:hotpath
func (r *reflectiveEngine) retryRepush(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, reflSendCycles)
	r.push(pr, m)
}
