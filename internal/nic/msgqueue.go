package nic

import "nisim/internal/netsim"

// queue is a FIFO over a reusable backing array. The old queues popped with
// q = q[1:], which strands consumed slots: append can never reuse them, so a
// long run reallocates and leaks the array forward indefinitely. Popping
// here advances a head index instead, and once the queue drains the array
// rewinds to its start — the steady state of a drain-as-fast-as-you-fill NI
// then never allocates. Value-typed element queues (the coherent engine's
// send/receive entries) get the same property without per-entry boxing.
type queue[T any] struct {
	a    []T
	head int
}

func (q *queue[T]) push(v T) { q.a = append(q.a, v) } //lint:allow noalloc head-rewind reuse keeps the backing array at peak depth; gated by TestComposedSendRecvAllocFree

func (q *queue[T]) len() int { return len(q.a) - q.head }

func (q *queue[T]) peek() T { return q.a[q.head] }

func (q *queue[T]) pop() T {
	var zero T
	v := q.a[q.head]
	q.a[q.head] = zero
	q.head++
	if q.head == len(q.a) {
		q.a = q.a[:0]
		q.head = 0
	}
	return v
}

// msgQueue is the message FIFO used by the fifo hardware's receive and
// bounce queues and the coherent engine's accept queue.
type msgQueue = queue[*netsim.Message]
