package nic

import "nisim/internal/netsim"

// msgQueue is a FIFO of messages over a reusable backing array. The old
// queues popped with q = q[1:], which strands consumed slots: append can
// never reuse them, so a long run reallocates and leaks the array forward
// indefinitely. Popping here advances a head index instead, and once the
// queue drains the array rewinds to its start — the steady state of a
// drain-as-fast-as-you-fill NI then never allocates.
type msgQueue struct {
	a    []*netsim.Message
	head int
}

func (q *msgQueue) push(m *netsim.Message) { q.a = append(q.a, m) }

func (q *msgQueue) len() int { return len(q.a) - q.head }

func (q *msgQueue) peek() *netsim.Message { return q.a[q.head] }

func (q *msgQueue) pop() *netsim.Message {
	m := q.a[q.head]
	q.a[q.head] = nil
	q.head++
	if q.head == len(q.a) {
		q.a = q.a[:0]
		q.head = 0
	}
	return m
}
