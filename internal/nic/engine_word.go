package nic

import (
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/stats"
)

// wordEngine is the CM-5-like uncached-word transfer engine: the processor
// sees only the first two words of the NI fifo and moves every message word
// itself with uncached loads and stores. All three data-transfer parameters
// are at their least aggressive settings: small transfers, full processor
// involvement, and register-to-register source/destination.
//
// With singleCycle set, the same engine is mapped into the processor
// (Figure 4's single-cycle NI_2w, approximating register-mapped NIs such as
// the MIT M-machine): every access costs one processor cycle and no bus
// transaction.
type wordEngine struct {
	env         *Env
	hw          *fifoHW
	singleCycle bool
}

func newWordEngine(env *Env, hw *fifoHW, singleCycle bool) *wordEngine {
	return &wordEngine{env: env, hw: hw, singleCycle: singleCycle}
}

// statusRead models checking an NI status register: send-space on the send
// side, receive-ready on the receive side.
func (n *wordEngine) statusRead(pr *proc.Proc) {
	if n.singleCycle {
		pr.Work(stats.Transfer, 1)
		return
	}
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
}

// moveWord models one fifo-window access of Cfg.UncachedWordBytes.
func (n *wordEngine) moveWord(pr *proc.Proc, load bool) {
	pr.Work(stats.Transfer, n.env.Cfg.WordLoopCycles)
	if n.singleCycle {
		pr.Work(stats.Transfer, 1)
		return
	}
	if load {
		pr.UncachedRead(stats.Transfer, FifoBase, n.env.Cfg.UncachedWordBytes)
	} else {
		pr.UncachedWrite(stats.Transfer, FifoBase, n.env.Cfg.UncachedWordBytes)
	}
}

// pathCycles is the per-message software cost of this engine's messaging
// path. The memory-bus NI_2w pays the full fifo path (uncached-access
// juggling); the register-mapped variant exists precisely to strip that to
// almost nothing (the M-machine's motivation).
func (n *wordEngine) pathCycles() int64 {
	if n.singleCycle {
		return 15
	}
	return n.env.Cfg.FifoPathCycles
}

// send implements sendEngine: check send space, push the message through
// the two-word fifo window as a train of sub-messages — one status check
// per Cfg.SubMsgBytes chunk, as on the CM-5, whose fifo messages held at
// most a few words — and fire the doorbell. The processor manages the whole
// transfer.
//lint:hotpath
func (n *wordEngine) send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, n.pathCycles())
	n.statusRead(pr)
	// An outgoing flow-control buffer is the send fifo slot; without one
	// the processor spins on the status register (buffering stall).
	for !n.env.EP.TryAcquireOut() {
		n.env.Stats.SendBlocked++
		n.env.EP.WaitOut(pr.P)
		n.statusRead(pr)
	}
	n.push(pr, m)
	n.env.EP.Inject(m)
}

// push moves the message through the two-word window and fires the
// doorbell; it is also the cost of re-pushing a returned message.
func (n *wordEngine) push(pr *proc.Proc, m *netsim.Message) {
	w := n.env.Cfg.UncachedWordBytes
	wordsPerChunk := n.env.Cfg.SubMsgBytes / w
	for sent, word := 0, 0; sent < m.Size(); {
		if word == wordsPerChunk {
			n.statusRead(pr)
			word = 0
		}
		n.moveWord(pr, false)
		sent += w
		word++
	}
	// Doorbell: the final uncached store launches the message.
	if !n.singleCycle {
		pr.UncachedWrite(stats.Transfer, RegGo, 8)
	} else {
		pr.Work(stats.Transfer, 1)
	}
}

// pollMiss implements recvEngine: one status read with nothing waiting.
//lint:hotpath
func (n *wordEngine) pollMiss(pr *proc.Proc) {
	// An unsuccessful poll is pure monitoring cost — the price of
	// limited buffering (§3.2) — so it lands in the buffering category.
	prev := pr.P.Category
	pr.P.Category = stats.Buffering
	n.statusRead(pr)
	pr.P.Category = prev
}

// pollHit implements recvEngine: the status read preceding a receive.
//lint:hotpath
func (n *wordEngine) pollHit(pr *proc.Proc) { n.statusRead(pr) }

// receive implements recvEngine: pop the head message word by word.
//lint:hotpath
func (n *wordEngine) receive(pr *proc.Proc) *netsim.Message {
	m := n.hw.head()
	pr.Work(stats.Transfer, n.pathCycles())
	n.popWords(pr, m)
	recordRecv(n.env, m)
	return n.hw.pop()
}

// serviceRepush implements sendEngine: the re-push cost while Recv waits.
//lint:hotpath
func (n *wordEngine) serviceRepush(pr *proc.Proc, m *netsim.Message) { n.push(pr, m) }

// retryConsume implements recvEngine: the processor first consumes the
// returned message from the network (it comes back through the receive
// path). The retry handler is messaging software — register mapping does
// not shrink it — hence the fixed fifo-path charge.
//lint:hotpath
func (n *wordEngine) retryConsume(pr *proc.Proc, m *netsim.Message) {
	pr.Work(pr.P.Category, n.env.Cfg.FifoPathCycles)
	n.popWords(pr, m)
}

// retryRepush implements sendEngine: re-push word by word.
//lint:hotpath
func (n *wordEngine) retryRepush(pr *proc.Proc, m *netsim.Message) { n.push(pr, m) }

// popWords is the word-loop cost of draining one message out of the fifo
// window (shared by normal receive and bounce consumption).
func (n *wordEngine) popWords(pr *proc.Proc, m *netsim.Message) {
	w := n.env.Cfg.UncachedWordBytes
	wordsPerChunk := n.env.Cfg.SubMsgBytes / w
	for got, word := 0, 0; got < m.Size(); {
		if word == wordsPerChunk {
			n.statusRead(pr)
			word = 0
		}
		n.moveWord(pr, true)
		got += w
		word++
	}
}
