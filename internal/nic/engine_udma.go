package nic

import (
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// udmaEngine is the Princeton UDMA-based transfer engine (NI_64w+Udma): the
// processor can examine the first 64 words (256 bytes) of the fifo
// directly, and can initiate an NI-managed block DMA with a two-instruction
// user-level sequence (an uncached store of the buffer address followed by
// an uncached load that checks and commits the start).
//
// As in the paper (§6.1.1), the messaging layer uses the UDMA mechanism
// only for payloads larger than Cfg.UDMAThresholdBytes; smaller messages
// fall back on uncached word transfers like the CM-5-like NI. And as in the
// paper, the software waits for each UDMA transfer to complete, so the
// benefit is the block transfer itself, not overlap.
//
// When a spec uses the UDMA engine on both sides, the composer shares one
// instance so send and receive staging rotate through the same sequence —
// exactly the monolithic NI's behavior.
type udmaEngine struct {
	env *Env
	hw  *fifoHW

	// stagingSeq rotates DMA staging buffers through a DRAM region so that
	// consecutive transfers do not artificially hit in the cache.
	stagingSeq int
}

// udmaStagingBase is the DRAM region UDMA deposits received messages into
// (and reads send data from); user buffers in a real system. Offset so the
// rotating staging slots live at cache offsets [0x42000, 0x82000).
const udmaStagingBase membus.Addr = 0x2004_2000

func newUdmaEngine(env *Env, hw *fifoHW) *udmaEngine {
	return &udmaEngine{env: env, hw: hw}
}

func (u *udmaEngine) useDMA(m *netsim.Message) bool {
	return m.PayloadLen > u.env.Cfg.UDMAThresholdBytes
}

func (u *udmaEngine) staging() membus.Addr {
	u.stagingSeq++
	return udmaStagingBase + membus.Addr(u.stagingSeq%256)*1024
}

// initiate models the two-instruction UDMA start plus the bus-master
// handoff from processor to NI.
func (u *udmaEngine) initiate(pr *proc.Proc) {
	pr.UncachedWrite(stats.Transfer, RegUdmaAddr, 8)
	pr.UncachedRead(stats.Transfer, RegUdmaStat, 8)
	pr.P.SleepAs(stats.Transfer, u.env.Cfg.UDMAMasterSwitch)
}

// awaitDMA models the software waiting for a UDMA transfer to complete by
// polling the NI's completion register (the paper's messaging layer "waits
// until each UDMA transfer is complete").
func (u *udmaEngine) awaitDMA(pr *proc.Proc, done *bool, doneCond *sim.Cond) {
	for !*done {
		doneCond.WaitAs(pr.P, stats.Transfer)
	}
	pr.UncachedRead(stats.Transfer, RegUdmaStat, 8)
}

// repush is the software cost of re-sending a returned message: small
// messages are re-pushed through the window; for UDMA transfers the data
// still sits in the NI, so the software re-runs the initiation sequence.
func (u *udmaEngine) repush(pr *proc.Proc, m *netsim.Message) {
	if !u.useDMA(m) {
		words := wordsFor(m, u.env.Cfg.UncachedWordBytes)
		for i := 0; i < words; i++ {
			pr.Work(stats.Buffering, u.env.Cfg.WordLoopCycles)
			pr.UncachedWrite(stats.Buffering, FifoBase, u.env.Cfg.UncachedWordBytes)
		}
		pr.UncachedWrite(stats.Buffering, RegGo, 8)
		return
	}
	pr.UncachedWrite(stats.Buffering, RegUdmaAddr, 8)
	pr.UncachedRead(stats.Buffering, RegUdmaStat, 8)
}

// send implements sendEngine.
//lint:hotpath
func (u *udmaEngine) send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, u.env.Cfg.FifoPathCycles)
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
	for !u.env.EP.TryAcquireOut() {
		u.env.Stats.SendBlocked++
		u.env.EP.WaitOut(pr.P)
		pr.UncachedRead(stats.Transfer, RegStatus, 8)
	}
	if !u.useDMA(m) {
		// CM-5-style uncached pushes through the 64-word window.
		words := wordsFor(m, u.env.Cfg.UncachedWordBytes)
		for i := 0; i < words; i++ {
			pr.Work(stats.Transfer, u.env.Cfg.WordLoopCycles)
			pr.UncachedWrite(stats.Transfer, FifoBase, u.env.Cfg.UncachedWordBytes)
		}
		pr.UncachedWrite(stats.Transfer, RegGo, 8)
		u.env.EP.Inject(m)
		return
	}

	// The message was composed in user memory: stage it through the cache
	// so the DMA reads hit the true source (processor cache or memory).
	src := u.staging()
	pr.CachedWrite(stats.Transfer, src, m.Size())
	u.initiate(pr)

	// NI-managed DMA: coherent block reads of the source buffer, then
	// injection. The software waits for completion (paper's simplification).
	done := false
	doneCond := sim.NewCond(u.env.Eng) //lint:allow noalloc NI-managed DMA allocates once per large transfer; the AllocsPerRun gate covers the sub-threshold word path
	blocks := blocksFor(m)
	var fetch func(i int)
	fetch = func(i int) { //lint:allow noalloc per-transfer DMA chain closure; large-message path is outside the gated hot set
		if i == blocks {
			u.env.EP.Inject(m)
			done = true
			doneCond.Broadcast()
			return
		}
		u.env.Bus.Issue(&membus.Transaction{ //lint:allow noalloc DMA block reads are full split transactions, not scratch accesses; one per block per transfer
			Kind: membus.GetS,
			Addr: src + membus.Addr(i*membus.BlockSize),
			Done: func() { fetch(i + 1) }, //lint:allow noalloc continuation closure advancing the per-transfer DMA chain
		})
	}
	fetch(0)
	u.awaitDMA(pr, &done, doneCond)
}

// pollMiss implements recvEngine.
//lint:hotpath
func (u *udmaEngine) pollMiss(pr *proc.Proc) {
	// Unsuccessful poll: monitoring cost attributable to buffering.
	pr.UncachedRead(stats.Buffering, RegStatus, 8)
}

// pollHit implements recvEngine.
//lint:hotpath
func (u *udmaEngine) pollHit(pr *proc.Proc) {
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
}

// receive implements recvEngine.
//lint:hotpath
func (u *udmaEngine) receive(pr *proc.Proc) *netsim.Message {
	m := u.hw.head()
	pr.Work(stats.Transfer, u.env.Cfg.FifoPathCycles)
	if !u.useDMA(m) {
		words := wordsFor(m, u.env.Cfg.UncachedWordBytes)
		for i := 0; i < words; i++ {
			pr.Work(stats.Transfer, u.env.Cfg.WordLoopCycles)
			pr.UncachedRead(stats.Transfer, FifoBase, u.env.Cfg.UncachedWordBytes)
		}
		recordRecv(u.env, m)
		return u.hw.pop()
	}

	// UDMA receive: the software first examines the message head in the
	// 64-word window to find its size and destination buffer, then initiates
	// the UDMA that deposits it into main memory without further processor
	// involvement, and waits for completion.
	pr.UncachedRead(stats.Transfer, FifoBase, 8)
	pr.UncachedRead(stats.Transfer, FifoBase, 8)
	dst := u.staging()
	u.initiate(pr)
	done := false
	doneCond := sim.NewCond(u.env.Eng) //lint:allow noalloc NI-managed DMA allocates once per large transfer; the AllocsPerRun gate covers the sub-threshold word path
	blocks := blocksFor(m)
	var store func(i int)
	store = func(i int) { //lint:allow noalloc per-transfer DMA chain closure; large-message path is outside the gated hot set
		if i == blocks {
			done = true
			doneCond.Broadcast()
			return
		}
		u.env.Bus.Issue(&membus.Transaction{ //lint:allow noalloc DMA block deposits are full split transactions, not scratch accesses; one per block per transfer
			Kind: membus.WriteInvalidate,
			Addr: dst + membus.Addr(i*membus.BlockSize),
			Done: func() { store(i + 1) }, //lint:allow noalloc continuation closure advancing the per-transfer DMA chain
		})
	}
	store(0)
	u.awaitDMA(pr, &done, doneCond)
	// The handler will read the data from memory; that cost lands on the
	// consumer's cached reads of the staging buffer.
	pr.CachedRead(stats.Transfer, dst, m.Size())
	recordRecv(u.env, m)
	return u.hw.pop()
}

// serviceRepush implements sendEngine.
//lint:hotpath
func (u *udmaEngine) serviceRepush(pr *proc.Proc, m *netsim.Message) { u.repush(pr, m) }

// retryConsume implements recvEngine: the processor examines the returned
// message in the window before re-pushing it.
//lint:hotpath
func (u *udmaEngine) retryConsume(pr *proc.Proc, m *netsim.Message) {
	if !u.useDMA(m) {
		words := wordsFor(m, u.env.Cfg.UncachedWordBytes)
		for i := 0; i < words; i++ {
			pr.UncachedRead(pr.P.Category, FifoBase, u.env.Cfg.UncachedWordBytes)
		}
	} else {
		pr.UncachedRead(pr.P.Category, FifoBase, 8)
		pr.UncachedRead(pr.P.Category, FifoBase, 8)
	}
}

// retryRepush implements sendEngine.
//lint:hotpath
func (u *udmaEngine) retryRepush(pr *proc.Proc, m *netsim.Message) { u.repush(pr, m) }
