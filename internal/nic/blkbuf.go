package nic

import (
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/stats"
)

// blkbuf is the AP3000-like NI_16w+Blkbuf: the processor moves messages in
// 64-byte units between the NI fifo and an on-chip block buffer using
// UltraSparc-style block load/store instructions. Transfers use the bus's
// block mechanism — but the processor still manages every transfer, and
// buffering is limited to the NI fifo (the flow-control buffers).
type blkbuf struct {
	*fifoBase
	env *Env
}

func newBlkbuf(env *Env) *blkbuf {
	b := &blkbuf{env: env}
	b.fifoBase = newFifoBase(env)
	return b
}

func (b *blkbuf) Kind() Kind { return AP3000 }

// Send implements NI: check status, then per 64-byte chunk copy the payload
// into the block buffer and block-store it to the NI fifo; finally ring the
// doorbell.
func (b *blkbuf) Send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, b.env.Cfg.BlkbufPathCycles)
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
	for !b.env.EP.TryAcquireOut() {
		b.env.Stats.SendBlocked++
		b.env.EP.WaitOut(pr.P)
		pr.UncachedRead(stats.Transfer, RegStatus, 8)
	}
	b.push(pr, m)
	b.env.EP.Inject(m)
}

// push moves the message through the block buffer into the NI fifo; it is
// also the cost of re-pushing a returned message.
func (b *blkbuf) push(pr *proc.Proc, m *netsim.Message) {
	remaining := m.Size()
	for remaining > 0 {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		// Fill the block buffer from registers/cache: one instruction per
		// 8 bytes.
		pr.Work(stats.Transfer, int64((chunk+7)/8))
		// Flush the block buffer to the NI fifo (12-cycle overhead, §6.1.1).
		pr.BlockWrite(stats.Transfer, FifoBase, b.env.Cfg.BlockBufCycles)
		remaining -= chunk
	}
	pr.UncachedWrite(stats.Transfer, RegGo, 8)
}

// Poll implements NI.
func (b *blkbuf) Poll(pr *proc.Proc) (*netsim.Message, bool) {
	if b.recvQ.len() == 0 {
		// Unsuccessful poll: monitoring cost attributable to buffering.
		pr.UncachedRead(stats.Buffering, RegStatus, 8)
		return nil, false
	}
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
	return b.receive(pr), true
}

// Recv implements NI.
func (b *blkbuf) Recv(pr *proc.Proc) *netsim.Message {
	b.waitForMessageServicing(pr, func(r *netsim.Message) { b.push(pr, r) })
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
	return b.receive(pr)
}

func (b *blkbuf) receive(pr *proc.Proc) *netsim.Message {
	m := b.head()
	pr.Work(stats.Transfer, b.env.Cfg.BlkbufPathCycles)
	remaining := m.Size()
	for remaining > 0 {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		// Load the block buffer from the NI fifo (12-cycle overhead) and
		// drain it into registers/cache.
		pr.BlockRead(stats.Transfer, FifoBase, b.env.Cfg.BlockBufCycles)
		pr.Work(stats.Transfer, int64((chunk+7)/8))
		remaining -= chunk
	}
	recordRecv(b.env, m)
	return b.pop()
}

// Pending implements NI.
func (b *blkbuf) Pending() bool { return b.pending() }

// Idle implements NI: sends complete synchronously.
func (b *blkbuf) Idle() bool { return true }

// CanSend implements NI: an outgoing flow-control buffer must be free.
func (b *blkbuf) CanSend(m *netsim.Message) bool { return b.env.EP.OutFree() > 0 }

// NeedsRetry implements NI.
func (b *blkbuf) NeedsRetry() bool { return b.hasBounced() }

// RetryOne implements NI: the processor consumes the returned message via
// block loads, then re-pushes it through the block buffer.
func (b *blkbuf) RetryOne(pr *proc.Proc) {
	b.retryOne(pr, func(r *netsim.Message) {
		for remaining := r.Size(); remaining > 0; remaining -= membus.BlockSize {
			pr.BlockRead(pr.P.Category, FifoBase, b.env.Cfg.BlockBufCycles)
		}
		b.push(pr, r)
	})
}
