package nic

import (
	"sort"

	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/sim"
)

// ringPolicy is the buffering-policy seam of the coherent engine: each
// implementation owns where the queue rings are homed, which device
// memories back them, what bus idiom a deposited block pays, how occupancy
// is metered, and how dead storage is reclaimed (the buffering parameters
// of Table 2). The coherent engine calls these hooks at fixed points of its
// generic queue machinery; a policy that has nothing to do at a hook leaves
// it empty.
type ringPolicy interface {
	// install sets the ring geometry and pointer addresses on c and maps
	// any policy-owned device memories onto the node's bus. Called once,
	// during construction.
	install(c *coherent)
	// prefetches reports whether this policy's NI stores fetched send
	// blocks locally, making compose-triggered prefetch worthwhile.
	prefetches() bool
	// admitSend gates the NI-side fetch of one send block on policy
	// storage (the NI send cache's occupancy); may block the engine.
	admitSend(p *sim.Process)
	// fetchStored charges the local store of a block the send engine just
	// fetched.
	fetchStored()
	// prefetchStored charges the local store of a prefetched block.
	prefetchStored()
	// sendDone releases policy storage after nb blocks were injected.
	sendDone(nb int64)
	// deposit moves one accepted message (nb blocks at logical start) into
	// the receive queue, paying the policy's bus idiom, and reports whether
	// the blocks are resident in an NI cache.
	deposit(p *sim.Process, start, nb int64) bool
	// reclaim frees policy storage whose messages are known dead (below
	// the receive ring head).
	reclaim()
	// snoopSupply lets the policy supply a coherent read from NI storage;
	// ok reports whether it did.
	snoopSupply(a membus.Addr) (reply membus.SnoopReply, ok bool)
	// recordConsume attributes one consumed message's blocks to the
	// policy's occupancy counters (NI cache hits/misses).
	recordConsume(inCache bool, nb int64)
}

// newRingPolicy builds the policy for a ring-buffered spec.
func newRingPolicy(b Buffering) ringPolicy {
	switch b {
	case MemoryRing:
		return &memRing{}
	case NIRing:
		return &niRing{}
	case NICachedRing:
		return &cachedRing{}
	default:
		panic("nic: " + b.String() + " is not a ring buffering policy")
	}
}

// memRing is the CNI_0Q_m (StarT-JR-like) policy: queues homed in main
// memory, nothing cached on the NI. Incoming messages are deposited with
// coherent write-invalidate block transfers; the processor reads them from
// DRAM. Plentiful buffering, no processor involvement, every block through
// the memory system.
type memRing struct {
	c *coherent
}

func (r *memRing) install(c *coherent) {
	r.c = c
	c.sendRing = cniRing{base: QmSendBase, cap: int64(c.env.Cfg.QmSendQueueBlocks)}
	c.recvRing = cniRing{base: QmRecvBase, cap: int64(c.env.Cfg.QmQueueBlocks)}
	c.sendPtr = QmPtrBase
	c.recvPtr = QmPtrBase + membus.BlockSize
}

func (r *memRing) prefetches() bool         { return false }
func (r *memRing) admitSend(p *sim.Process) {}
func (r *memRing) fetchStored()             {}
func (r *memRing) prefetchStored()          {}
func (r *memRing) sendDone(nb int64)        {}

func (r *memRing) deposit(p *sim.Process, start, nb int64) bool {
	c := r.c
	// Coherent write-invalidate block transfers into main memory.
	for i := int64(0); i < nb; i++ {
		c.env.Bus.AccessFrom(p, c, membus.WriteInvalidate, c.recvRing.addr(start+i), 0)
	}
	if tr := c.env.Trace; tr != nil {
		tr("buffer deposit mode=memory blocks=%d", nb)
	}
	return false
}

func (r *memRing) reclaim() {}
func (r *memRing) snoopSupply(a membus.Addr) (membus.SnoopReply, bool) {
	return membus.SnoopReply{}, false
}
func (r *memRing) recordConsume(inCache bool, nb int64) {}

// niRing is the CNI_512Q policy: 512-block queues homed in NI DRAM.
// Incoming messages are written locally (one address-only invalidate per
// block on the bus); the processor reads them straight from the NI.
type niRing struct {
	c    *coherent
	qmem *mainmem.Memory // NI-homed queue storage
}

func (r *niRing) install(c *coherent) {
	r.c = c
	c.sendRing = cniRing{base: NIQSendBase, cap: int64(c.env.Cfg.CNIQueueBlocks)}
	c.recvRing = cniRing{base: NIQRecvBase, cap: int64(c.env.Cfg.CNIQueueBlocks)}
	c.sendPtr = QmPtrBase
	c.recvPtr = QmPtrBase + membus.BlockSize
	r.qmem = mainmem.New("cni-qmem", c.env.Cfg.NIDRAM, c.env.Eng)
	c.env.Bus.MapRange(NIQSendBase, DeviceLimit, r.qmem)
}

func (r *niRing) prefetches() bool         { return true }
func (r *niRing) admitSend(p *sim.Process) {}
func (r *niRing) fetchStored()             {}
func (r *niRing) prefetchStored()          { r.qmem.Claim() }
func (r *niRing) sendDone(nb int64)        {}

func (r *niRing) deposit(p *sim.Process, start, nb int64) bool {
	c := r.c
	// Local write into NI DRAM (buffered, read-bypassed) plus an
	// address-only invalidate per block.
	for i := int64(0); i < nb; i++ {
		c.env.Bus.AccessFrom(p, c, membus.Invalidate, c.recvRing.addr(start+i), 0)
	}
	if tr := c.env.Trace; tr != nil {
		tr("buffer deposit mode=ni-dram blocks=%d", nb)
	}
	return false
}

func (r *niRing) reclaim() {}
func (r *niRing) snoopSupply(a membus.Addr) (membus.SnoopReply, bool) {
	return membus.SnoopReply{}, false
}
func (r *niRing) recordConsume(inCache bool, nb int64) {}

// cachedRing is the CNI_32Q_m policy: queues homed in main memory but
// cached in two 32-block NI SRAM caches. Receive-cache overflow bypasses
// straight to memory so the queue head stays cache-resident; consumed
// ("dead") messages are freed without writeback; the forced head update on
// flush keeps the dead-set known.
type cachedRing struct {
	c                  *coherent
	sendSRAM, recvSRAM *mainmem.Memory
	sendDrain          *sim.Cond      // NI send-cache space freed
	cacheLiveS         int64          // live blocks in the NI send cache
	liveRecv           map[int64]bool // logical recv blocks resident in the NI cache
	cacheLiveR         int64          // NI's view of occupied receive-cache blocks
}

func (r *cachedRing) install(c *coherent) {
	r.c = c
	c.sendRing = cniRing{base: QmSendBase, cap: int64(c.env.Cfg.QmSendQueueBlocks)}
	c.recvRing = cniRing{base: QmRecvBase, cap: int64(c.env.Cfg.QmQueueBlocks)}
	c.sendPtr = QmPtrBase
	c.recvPtr = QmPtrBase + membus.BlockSize
	r.sendSRAM = mainmem.New("cni-send-cache", c.env.Cfg.NISRAM, c.env.Eng)
	r.recvSRAM = mainmem.New("cni-recv-cache", c.env.Cfg.NISRAM, c.env.Eng)
	r.sendDrain = sim.NewCond(c.env.Eng)
	r.liveRecv = make(map[int64]bool)
}

func (r *cachedRing) prefetches() bool { return true }

func (r *cachedRing) admitSend(p *sim.Process) {
	for r.cacheLiveS+1 > int64(r.c.env.Cfg.CNICacheBlocks) {
		r.sendDrain.Wait(p)
	}
	r.cacheLiveS++
}

func (r *cachedRing) fetchStored()    { r.sendSRAM.Claim() }
func (r *cachedRing) prefetchStored() { r.sendSRAM.Claim() }

func (r *cachedRing) sendDone(nb int64) {
	r.cacheLiveS -= nb
	if r.cacheLiveS < 0 {
		r.cacheLiveS = 0
	}
	r.sendDrain.Broadcast()
}

func (r *cachedRing) deposit(p *sim.Process, start, nb int64) bool {
	c := r.c
	if c.env.Cfg.DisableCNIBypass {
		// Ablation: no bypass — hold the flow-control buffer until the
		// receive cache has room (backpressure instead of steering
		// through memory).
		for r.cacheLiveR+nb > int64(c.env.Cfg.CNICacheBlocks) {
			r.reclaim()
			if r.cacheLiveR+nb <= int64(c.env.Cfg.CNICacheBlocks) {
				break
			}
			c.consumeCond.Wait(p)
		}
	}
	if r.cacheLiveR+nb <= int64(c.env.Cfg.CNICacheBlocks) {
		// Write into the NI receive cache; invalidate stale processor
		// copies with address-only transactions.
		for i := int64(0); i < nb; i++ {
			r.recvSRAM.Claim() // posted SRAM write
			c.env.Bus.AccessFrom(p, c, membus.Invalidate, c.recvRing.addr(start+i), 0)
			r.liveRecv[start+i] = true
		}
		r.cacheLiveR += nb
		if tr := c.env.Trace; tr != nil {
			tr("buffer deposit mode=ni-cache blocks=%d live=%d", nb, r.cacheLiveR)
		}
		return true
	}
	// Receive cache full of pending messages: bypass to main memory so the
	// head stays readable via fast cache-to-cache transfers. The forced
	// head update (a coherent read of the head-pointer block, supplied from
	// the processor cache) is the moment the NI learns which cached
	// messages are dead and can reclaim their blocks without writeback.
	c.env.Stats.NIBypasses++
	c.env.Bus.AccessFrom(p, c, membus.GetS, c.recvPtr, 0)
	r.reclaim()
	for i := int64(0); i < nb; i++ {
		c.env.Bus.AccessFrom(p, c, membus.WriteInvalidate, c.recvRing.addr(start+i), 0)
	}
	if tr := c.env.Trace; tr != nil {
		tr("buffer deposit mode=bypass blocks=%d live=%d", nb, r.cacheLiveR)
	}
	return false
}

// reclaim frees receive-cache blocks below the (just learned) head — dead-
// message suppression: the blocks leave without a writeback because the
// home copy no longer matters. Under the lazy-pointer optimization this
// happens only when a flush forces a head update, which is why an
// overloaded receive cache stays full of dead messages and keeps bypassing.
func (r *cachedRing) reclaim() {
	c := r.c
	// Collect and sort the dead blocks before acting: under the
	// DisableDeadSuppress ablation each one issues a bus writeback, and
	// map-iteration order must not pick the bus schedule.
	dead := make([]int64, 0, len(r.liveRecv))
	for li := range r.liveRecv {
		if li < c.recvRing.head {
			dead = append(dead, li)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	if len(dead) > 0 {
		if tr := c.env.Trace; tr != nil {
			tr("buffer reclaim dead=%d live=%d", len(dead), r.cacheLiveR)
		}
	}
	for _, li := range dead {
		delete(r.liveRecv, li)
		r.cacheLiveR--
		if c.env.Cfg.DisableDeadSuppress {
			// Ablation: without dead-message suppression each reclaimed
			// block is written back to its main-memory home.
			c.env.Bus.Issue(&membus.Transaction{
				Kind:      membus.Writeback,
				Addr:      c.recvRing.addr(li),
				Requester: c,
			})
		}
	}
}

func (r *cachedRing) snoopSupply(a membus.Addr) (membus.SnoopReply, bool) {
	c := r.c
	if !c.recvRing.contains(a) {
		return membus.SnoopReply{}, false
	}
	li := c.recvRing.logicalAt(a, c.recvRing.tail)
	if !r.liveRecv[li] {
		return membus.SnoopReply{}, false
	}
	// NI-cache-to-processor-cache transfer: the NI keeps an owned copy
	// until the message dies.
	return membus.SnoopReply{Owner: true, Shared: true, SupplyLatency: r.recvSRAM.Claim()}, true
}

func (r *cachedRing) recordConsume(inCache bool, nb int64) {
	if inCache {
		r.c.env.Stats.NICacheHits += nb
	} else {
		r.c.env.Stats.NICacheMisses += nb
	}
}
