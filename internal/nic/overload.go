package nic

import "nisim/internal/netsim"

// Overload admission control: the Spec's OverloadPolicy compiled into the
// endpoint's Admit hook. The hook runs at the network's delivery decision
// point — after the checksum gate, before the flow-control accept/bounce —
// so a refusing policy spends no receive-side buffering or bus work on
// traffic it will not keep. The composed NI supplies the occupancy signal
// (fifo: flow-control buffers held; coherent: receive-ring blocks live)
// and the eviction primitive; the policy itself is pure arithmetic on the
// watermark, allocation-free on every path.

// installOverload wires the spec's overload policy into the endpoint.
// A zero policy installs nothing: Admit stays nil and the network's
// lossless fast path is bit-identical to a build without the hook.
//
// With ResumePct set the watermark gains hysteresis: the first refusal
// latches the policy into a refusing state that persists until occupancy
// drains below the (lower) resume threshold. A single-threshold policy
// sitting exactly at the watermark flaps — each consumed block re-admits
// one arrival that pushes occupancy straight back over the line, so the
// receiver runs permanently at the cliff edge and every admitted message
// observes worst-case queueing. The hysteresis band forces a real drain
// before service resumes. ResumePct == 0 keeps the latch permanently
// disengaged and is bit-identical to the single-threshold policy.
func (x *composed) installOverload() {
	p := x.spec.Overload
	if p.Zero() {
		return
	}
	refusing := false
	x.env.EP.Admit = func(m *netsim.Message) netsim.AdmitDecision {
		if p.ControlBase > 0 && m.Handler >= p.ControlBase {
			return netsim.AdmitAccept
		}
		occ, cap := x.occupancy()
		if refusing && occ*100 < cap*p.ResumePct {
			refusing = false
		}
		if !refusing && occ*100 < cap*p.AdmitPct {
			return netsim.AdmitAccept
		}
		if p.ResumePct > 0 && !refusing {
			refusing = true
			if x.env.Stats != nil {
				x.env.Stats.AdmitFlaps++
			}
		}
		if tr := x.env.Trace; tr != nil {
			tr("overload refuse src=%d size=%dB occ=%d/%d action=%s", m.Src, m.Size(), occ, cap, p.Refuse)
		}
		if p.Evict == EvictOldest && x.evictOldest() {
			if x.env.Stats != nil {
				x.env.Stats.AdmitEvictions++
			}
			return netsim.AdmitAccept
		}
		if p.Refuse == RefuseDrop {
			return netsim.AdmitDrop
		}
		return netsim.AdmitBounce
	}
}

// occupancy returns the receive-side buffered load and its capacity, both
// in the buffering layer's native unit (messages for the fifo policies,
// 64-byte blocks for the coherent rings). Capacity may be netsim.Infinite
// for unbounded fifo buffering; the watermark comparison stays in range
// because occupancy is bounded by real traffic.
func (x *composed) occupancy() (occ, capacity int) {
	if x.coh != nil {
		return int(x.coh.recvRing.tail - x.coh.recvRing.head), int(x.coh.recvRing.cap)
	}
	return x.hw.recvQ.len(), x.env.EP.Buffers()
}

// evictOldest destroys the oldest undelivered buffered message to make
// room for a new arrival, returning false when nothing is evictable (the
// arrival is then refused normally). The eviction is NI-side work: no
// processor cycles are charged, mirroring the paper's "no processor
// involvement" buffering column.
func (x *composed) evictOldest() bool {
	if x.coh != nil {
		c := x.coh
		if c.deliverable.len() == 0 {
			return false
		}
		e := c.deliverable.pop()
		c.recvRing.head = e.start + e.nb
		c.unconsumed -= e.nb
		if c.peerFn != nil {
			if sender := c.peerFn(e.m.Src); sender != nil && sender.throttle {
				sender.outstanding[c.env.ID] -= e.nb
				sender.throttleCond.Broadcast()
				c.ring.reclaim()
			}
		}
		c.ring.recordConsume(e.inCache, e.nb)
		c.consumeCond.Broadcast()
		if tr := x.env.Trace; tr != nil {
			tr("overload evict src=%d blocks=%d", e.m.Src, e.nb)
		}
		return true
	}
	if x.hw.recvQ.len() == 0 {
		return false
	}
	m := x.hw.pop()
	if tr := x.env.Trace; tr != nil {
		tr("overload evict src=%d size=%dB", m.Src, m.Size())
	}
	return true
}
