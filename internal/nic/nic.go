// Package nic implements the memory-bus network interfaces the paper
// evaluates, decomposed along the axes of its own taxonomy (Table 2): a
// transfer engine per side (the bus-transaction idiom moving message
// bytes) composed with a buffering policy (where messages wait and who
// retries them). The seven studied NIs, plus the single-cycle
// (processor-register-mapped) NI_2w variant of Figure 4 and the
// send-throttled CNI_32Q_m of Table 5, are just named points (Spec) in
// that space:
//
//	NI_2w            (CM-5-like)          uword+uword         over fifovm
//	NI_64w+Udma      (Princeton UDMA)     udma+udma           over fifovm
//	NI_16w+Blkbuf    (AP3000-like)        blkbuf+blkbuf       over fifovm
//	CNI_0Q_m         (StarT-JR-like)      coherent+coherent   over memring
//	Blkbuf_S/CNI_R   (Memory Channel)     reflective+coherent over memring
//	CNI_512Q         (CNI, no cache)      coherent+coherent   over niring
//	CNI_32Q_m        (CNI with cache)     coherent+coherent   over nicache
//
// Every composed NI exposes the same contract — Send, Poll, Recv — to the
// messaging layer. The rest of the valid cross product (see Spec.Validate)
// is reachable through NewFromSpec and swept by cmd/designspace.
package nic

import (
	"fmt"

	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// Kind identifies one of the studied NI designs.
//
//lint:enum
type Kind int

// The NI designs of Table 2 (plus the two §6 variants).
const (
	CM5             Kind = iota // NI_2w, CM-5-like
	CM5SingleCycle              // single-cycle NI_2w (processor-register-mapped, Figure 4)
	UDMA                        // NI_64w+Udma, Princeton UDMA-based
	AP3000                      // NI_16w+Blkbuf, Fujitsu AP3000-like
	StarTJR                     // CNI_0Q_m, MIT StarT-JR-like
	MemoryChannel               // (NI_16w+Blkbuf)_S (CNI_0Q_m)_R, DEC Memory Channel-like
	CNI512Q                     // Wisconsin CNI without a cache
	CNI32Qm                     // Wisconsin CNI with a cache
	CNI32QmThrottle             // CNI_32Q_m with send throttling (Table 5 bandwidth)
	numKinds
)

// Kinds lists all supported NI kinds.
func Kinds() []Kind {
	ks := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// PaperSeven lists the seven NIs of the paper's main evaluation, in Table 2
// order.
func PaperSeven() []Kind {
	return []Kind{CM5, UDMA, AP3000, StarTJR, MemoryChannel, CNI512Q, CNI32Qm}
}

func (k Kind) String() string {
	switch k {
	case CM5:
		return "NI_2w (CM-5-like)"
	case CM5SingleCycle:
		return "single-cycle NI_2w"
	case UDMA:
		return "NI_64w+Udma (Udma-based)"
	case AP3000:
		return "NI_16w+Blkbuf (AP3000-like)"
	case StarTJR:
		return "CNI_0Qm (Start-JR-like)"
	case MemoryChannel:
		return "Memory Channel-like"
	case CNI512Q:
		return "CNI_512Q"
	case CNI32Qm:
		return "CNI_32Qm"
	case CNI32QmThrottle:
		return "CNI_32Qm+Throttle"
	default: //lint:allow exhaustive String falls back to Kind(%d) for invalid values; report output is byte-identity-locked
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ShortName returns a compact identifier usable in CLI flags and reports.
func (k Kind) ShortName() string {
	switch k {
	case CM5:
		return "cm5"
	case CM5SingleCycle:
		return "cm5-1cycle"
	case UDMA:
		return "udma"
	case AP3000:
		return "ap3000"
	case StarTJR:
		return "startjr"
	case MemoryChannel:
		return "memchannel"
	case CNI512Q:
		return "cni512q"
	case CNI32Qm:
		return "cni32qm"
	case CNI32QmThrottle:
		return "cni32qm-throttle"
	default: //lint:allow exhaustive ShortName falls back to kind%d for invalid values; flag round-trips are locked by TestKindByName
		return fmt.Sprintf("kind%d", int(k))
	}
}

// KindByName resolves a ShortName back to a Kind.
func KindByName(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.ShortName() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("nic: unknown NI kind %q", s)
}

// NI is the contract every network interface model implements. The
// messaging layer is the only intended caller; it fragments application
// messages to the network maximum before calling Send.
//
// Three of the zero-cost queries have semantics precise enough to be worth
// stating once, for all designs:
//
//   - Pending is about the receive side only: it is true exactly when a
//     call to Poll would return a message (and therefore Recv would return
//     without waiting). Messages still in flight, or accepted by the NI
//     but not yet deposited where the processor can read them, do not
//     count.
//
//   - NeedsRetry is about bounced messages only: it is true exactly when a
//     returned-to-sender message is waiting for *software* re-push, which
//     can only happen under buffering that involves the processor
//     (Table 2's FifoVM). Designs whose NI retries in hardware — every
//     ring-buffered design, including the Memory Channel hybrid — report
//     false unconditionally.
//
//   - Idle is about the send side only: it is true exactly when the NI has
//     no queued or in-flight send work, so a drain barrier that has
//     stopped calling Send may safely end the phase. Fifo-family sends
//     complete synchronously inside Send, so those designs are always
//     idle by the time Send returns — the Memory Channel NI's
//     unconditional true is correct, not a stub, because its reflective
//     send holds the processor until injection and its receive side holds
//     no send work at all. Only a coherent send engine, which queues
//     composed messages for NI-side fetch, can be non-idle. Idle says
//     nothing about the receive side: a drain loop must also consume
//     until Pending is false.
type NI interface {
	// Kind identifies the design.
	Kind() Kind
	// Send performs all processor-side work to transmit m and hands it to
	// the network, blocking the calling processor exactly as long as the
	// design requires (a CM-5-like NI blocks for every word; a CNI returns
	// after composing the message in cacheable queue memory).
	Send(pr *proc.Proc, m *netsim.Message)
	// Poll checks for a received message. When one is available it performs
	// the processor-side reception work (pops, block loads, or coherent
	// queue reads) and returns it. When none is available it charges only
	// the design's polling cost and returns false.
	Poll(pr *proc.Proc) (*netsim.Message, bool)
	// Recv blocks until a message is available, then receives it as Poll
	// does. Idle waiting is charged to the compute category; only the
	// actual transfer work counts as transfer time.
	Recv(pr *proc.Proc) *netsim.Message
	// Pending reports, at zero simulated cost, whether a message could be
	// returned now. Application loops use it to decide whether to poll.
	Pending() bool
	// CanSend reports, at zero simulated cost, whether Send(m) would
	// proceed without blocking on buffering. The messaging layer polls and
	// dispatches incoming messages while CanSend is false — the software
	// discipline that avoids the fetch-deadlock of §3.2. Only this node's
	// own sends consume the checked resources, so a true result cannot be
	// invalidated before the immediately following Send.
	CanSend(m *netsim.Message) bool
	// NeedsRetry reports whether returned-to-sender messages await software
	// re-push (true only for NIs whose buffering involves the processor,
	// Table 2). Zero simulated cost.
	NeedsRetry() bool
	// RetryOne re-pushes the oldest returned message, charging the
	// processor the design's re-push cost. Callers must prefer consuming
	// incoming messages first.
	RetryOne(pr *proc.Proc)
	// Idle reports whether the NI has no queued or in-flight work on the
	// send side (used by drain barriers at the end of program phases).
	Idle() bool
}

// Config holds the NI-design constants. Zero value is not useful; call
// DefaultConfig.
type Config struct {
	NISRAM sim.Time // NI SRAM access time (Table 3: 60 ns)
	NIDRAM sim.Time // NI DRAM access time (CNI_512Q; Table 3 note: 120 ns)

	// UncachedWordBytes is the width of one NI_2w fifo access.
	UncachedWordBytes int
	// WordLoopCycles is the software loop overhead per fifo word moved.
	WordLoopCycles int64
	// SubMsgBytes is the NI_2w fifo-window granularity: larger transfers
	// move as a train of sub-messages, each requiring its own status check
	// (the CM-5 fifo held at most a few words per message).
	SubMsgBytes int
	// FifoPathCycles is the per-message software overhead specific to the
	// fifo-NI messaging paths (fifo arbitration, bounds and alignment
	// handling) charged on each side, on top of the common layer costs.
	FifoPathCycles int64

	// BlkbufPathCycles is the per-message software overhead of the
	// block-buffer messaging path; lower than FifoPathCycles because the
	// block interface needs no per-word bounds or alignment handling.
	BlkbufPathCycles int64
	// BlockBufCycles is the instruction overhead to flush or load the
	// 64-byte block buffer (§6.1.1: 12 processor cycles).
	BlockBufCycles int64

	// UDMAThresholdBytes: payloads at or below this use the uncached-window
	// path; larger payloads use UDMA (§6.1.1: 96 bytes).
	UDMAThresholdBytes int
	// UDMAMasterSwitch is the bus-master handoff time for a UDMA start.
	UDMAMasterSwitch sim.Time

	// CNIQueueBlocks is the CNI_512Q queue capacity in 64-byte blocks.
	CNIQueueBlocks int
	// CNICacheBlocks is the CNI_32Q_m per-direction NI cache capacity.
	CNICacheBlocks int
	// QmQueueBlocks is the capacity of a memory-homed receive queue ring
	// ("plentiful buffering in main memory").
	QmQueueBlocks int
	// QmSendQueueBlocks is the memory-homed send queue ring capacity. The
	// send side needs only enough to decouple the processor from the NI, and
	// keeping it small keeps the composing blocks warm in the processor
	// cache across wraps.
	QmSendQueueBlocks int

	// RDMA engine registration cost model. One-sided transfers move user
	// buffers the NI reads directly over the bus, so the OS must pin the
	// pages and install them in the adapter's translation table before the
	// first transfer — the classic VIA/InfiniBand memory-registration tax.
	// The charge is per *region*: the first put or get touching a remote
	// target pays RDMAPinCycles plus RDMAPagePinCycles per page; repeated
	// transfers to the same target reuse the cached registration and pay
	// only for pages beyond the largest extent seen so far.

	// RDMAPinCycles is the fixed processor cost of a registration syscall
	// (pin + translation-table install), charged on first touch per target.
	RDMAPinCycles int64
	// RDMAPagePinCycles is the incremental cost per newly pinned page.
	RDMAPagePinCycles int64
	// RDMAPageBytes is the pinning granularity.
	RDMAPageBytes int
	// RDMADescCycles is the processor cost to compose and post one RDMA
	// work descriptor (doorbell write is charged separately).
	RDMADescCycles int64
	// RDMADescRing is the descriptor ring depth; a full ring stalls the
	// posting processor until the NI drains an entry.
	RDMADescRing int

	// Ablation switches (all off in the paper's configurations).

	// DisableCNIPrefetch turns off the CNI send-side block prefetch
	// (CNI_512Q / CNI_32Q_m lose the overlap of composition and fetch).
	DisableCNIPrefetch bool
	// DisableCNIBypass makes a full CNI_32Q_m receive cache exert
	// backpressure instead of writing fresh messages straight to memory.
	DisableCNIBypass bool
	// DisableDeadSuppress makes the CNI_32Q_m write consumed (dead) blocks
	// back to main memory on reclamation instead of dropping them.
	DisableDeadSuppress bool
	// IOBridge places a fifo NI behind an I/O-bus bridge: every device
	// access pays this extra latency (the paper's motivation: I/O buses
	// are a factor of 2-10 worse than memory buses).
	IOBridge sim.Time
}

// DefaultConfig returns the paper's constants.
func DefaultConfig() Config {
	return Config{
		NISRAM:             60 * sim.Nanosecond,
		NIDRAM:             120 * sim.Nanosecond,
		UncachedWordBytes:  8,
		WordLoopCycles:     2,
		SubMsgBytes:        16,
		FifoPathCycles:     150,
		BlkbufPathCycles:   60,
		BlockBufCycles:     12,
		UDMAThresholdBytes: 96,
		UDMAMasterSwitch:   100 * sim.Nanosecond,
		CNIQueueBlocks:     512,
		CNICacheBlocks:     32,
		QmQueueBlocks:      8192,
		QmSendQueueBlocks:  128,
		RDMAPinCycles:      1500,
		RDMAPagePinCycles:  300,
		RDMAPageBytes:      4096,
		RDMADescCycles:     80,
		RDMADescRing:       64,
	}
}

// Node-local address map. Each node has a private physical address space;
// the NI claims the device window and, for memory-homed CNI queues, fixed
// DRAM regions.
const (
	// DRAMBase..DRAMLimit is main memory.
	DRAMBase  membus.Addr = 0x0000_0000
	DRAMLimit membus.Addr = 0x4000_0000

	// QmSendBase / QmRecvBase are the memory-homed CNI queue rings. The
	// bases are staggered modulo the 1 MB direct-mapped processor cache so
	// that the send ring (8 KB at cache offset 0), the receive ring (512 KB
	// at offset 64 KB), and the pointer blocks (offset 0x90000) never evict
	// one another.
	QmSendBase membus.Addr = 0x0800_0000
	QmRecvBase membus.Addr = 0x0A01_0000
	// QmPtrBase holds the cacheable head/tail pointer blocks.
	QmPtrBase membus.Addr = 0x0C09_0000

	// DeviceBase..DeviceLimit is the NI device window.
	DeviceBase  membus.Addr = 0x4000_0000
	DeviceLimit membus.Addr = 0x5000_0000

	// RegBase holds uncached NI control/status registers.
	RegBase membus.Addr = 0x4000_0000
	// FifoBase is the fifo window (NI_2w pops/pushes, block-buffer
	// transfers, UDMA window) backed by NI SRAM. Uncached, so its cache
	// alignment is irrelevant.
	FifoBase membus.Addr = 0x4010_0000
	// NIQSendBase / NIQRecvBase are the CNI_512Q queue rings homed in NI
	// DRAM: 32 KB each, staggered to cache offsets 0x2000 and 0xA0000.
	NIQSendBase membus.Addr = 0x4100_2000
	NIQRecvBase membus.Addr = 0x420A_0000

	// Well-known registers.
	RegStatus   = RegBase + 0x00 // send-space / recv-ready status
	RegGo       = RegBase + 0x08 // send doorbell
	RegUdmaAddr = RegBase + 0x10 // UDMA start: uncached store of address
	RegUdmaStat = RegBase + 0x18 // UDMA start: uncached load completing the pair
)

// Env is everything an NI needs from its node. The machine layer builds it.
type Env struct {
	Eng   *sim.Engine
	ID    int
	Bus   *membus.Bus
	Mem   *mainmem.Memory
	EP    *netsim.Endpoint
	Stats *stats.Node
	CPU   sim.Clock
	Cfg   Config
	// Trace, when non-nil, receives one formatted line per component-seam
	// event (engine start/complete, buffer accept/bounce/reclaim). Wired by
	// the machine layer when NIC tracing is enabled; nil costs nothing.
	Trace func(format string, args ...any)
}

// New constructs the NI model for kind, wiring it to the node's bus,
// memory, and network endpoint. Every named kind is built by composing its
// Spec — there are no monolithic implementations.
func New(kind Kind, env *Env) NI {
	if kind < 0 || kind >= numKinds {
		panic(fmt.Sprintf("nic: unknown kind %d", int(kind)))
	}
	return compose(SpecFor(kind), kind, env)
}

// NewFromSpec constructs the NI for an arbitrary design point. The spec
// must Validate; named points report their Kind, cross-product points
// report Custom.
func NewFromSpec(spec Spec, env *Env) (NI, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return compose(spec, KindOf(spec), env), nil
}

// blocksFor returns how many 64-byte blocks m occupies in a CNI queue.
func blocksFor(m *netsim.Message) int {
	return (m.Size() + membus.BlockSize - 1) / membus.BlockSize
}

// wordsFor returns how many w-byte fifo words m occupies.
func wordsFor(m *netsim.Message, w int) int {
	return (m.Size() + w - 1) / w
}

// regsTarget is the membus.Target for the uncached control registers: a
// fixed, non-serialized access latency with an optional write hook.
type regsTarget struct {
	latency sim.Time
	onWrite func(t *membus.Transaction)
}

func (r *regsTarget) TargetName() string { return "ni-regs" }

func (r *regsTarget) HomeLatency(t *membus.Transaction) sim.Time { return r.latency }

func (r *regsTarget) HomeAccess(t *membus.Transaction) {
	if t.Kind == membus.UncachedWrite && r.onWrite != nil {
		r.onWrite(t)
	}
}

// CatalogEntry is one row of the paper's Table 2.
type CatalogEntry struct {
	Kind        Kind
	Notation    string // the paper's NI_iX notation
	Description string
	SendSize    string // "Uncached" or "Block"
	SendManager string // "Processor" or "NI"
	SendSource  string
	RecvSize    string
	RecvManager string
	RecvDest    string
	BufLocation string
	ProcInvolve bool // processor involved in buffering?
}

// Catalog reproduces Table 2: the classification of the seven NIs by data
// transfer and buffering parameters.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{CM5, "NI_2w", "TMC CM-5 NI-like", "Uncached", "Processor", "Processor Registers",
			"Uncached", "Processor", "Processor Registers", "NI / VM", true},
		{UDMA, "NI_64w+Udma", "Princeton Udma-based", "Block", "NI", "Cache/Memory",
			"Block", "NI", "Memory", "NI / VM / Memory", true},
		{AP3000, "NI_16w+Blkbuf", "Fujitsu AP3000-like", "Block", "Processor", "Block Buffer",
			"Block", "Processor", "Block Buffer", "NI / VM", true},
		{StarTJR, "CNI_0Qm", "MIT StarT-JR-like", "Block", "NI", "Cache/Memory",
			"Block", "NI", "Memory", "Memory", false},
		{MemoryChannel, "(NI_16w+Blkbuf)_S(CNI_0Qm)_R", "DEC Memory Channel NI-like", "Block", "Processor", "Block Buffer",
			"Block", "NI", "Memory", "Memory", false},
		{CNI512Q, "CNI_512Q", "Wisconsin CNI with no cache", "Block", "NI", "Cache/Memory",
			"Block", "NI", "Processor Cache", "NI / VM", true},
		{CNI32Qm, "CNI_32Qm", "Wisconsin CNI with cache", "Block", "NI", "Cache/Memory",
			"Block", "NI", "Processor Cache", "NI Cache / Memory", false},
	}
}

// PeerAware is implemented by NIs that need to resolve a reference to
// another node's NI (the send-throttled CNI_32Q_m's software credit
// scheme names the sender NI a consumed message's credit flows back to).
// The machine layer wires it after all nodes exist. The lookup resolves
// identity only — all cross-node state exchange rides the message layer
// (Endpoint.PostControl), never a synchronous read of peer state, which
// is what lets every spec run partitioned (machine.Config.Shards).
type PeerAware interface {
	SetPeerLookup(fn func(node int) NI)
}
