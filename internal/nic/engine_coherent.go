package nic

import (
	"fmt"

	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// coherent is the Coherent Network Interface transfer engine (the CNI
// family). Processors and the NI communicate through memory-based queues
// managed with the lazy-pointer, message-valid-bit, and sense-reverse
// optimizations of Mukherjee et al. [29]: no per-message pointer bus
// traffic — the processor discovers new messages by reading the (cacheable)
// head block itself, and the NI discovers new sends from a doorbell plus
// coherent fetches.
//
// Where queue storage lives — and therefore what bus idiom each deposited
// block pays, when the cache bypasses, and how dead blocks are reclaimed —
// is the buffering policy's business: coherent drives the generic queue
// machinery and delegates those decisions to its ringPolicy (policy_ring.go).
//
// The NI-homed and NI-cached policies also prefetch send blocks: observing
// the processor's request-for-exclusive on block k+1 of a message triggers
// a fetch of block k, overlapping message creation with transfer.
type coherent struct {
	env       *Env
	ring      ringPolicy
	snoopName string

	prefetch bool
	throttle bool

	sendRing, recvRing cniRing
	sendPtr, recvPtr   membus.Addr // cacheable head/tail pointer blocks

	// Send side.
	sendQ       queue[sendEntry]
	sendWork    *sim.Cond
	sendSpace   *sim.Cond // ring space freed
	outFree     *sim.Cond // network out-buffer freed
	fetched     map[int64]bool
	composeTail int64 // logical tail reserved by in-progress composes
	doorbelled  int64 // logical tail covered by doorbells

	// Receive side.
	acceptQ     msgQueue
	recvWork    *sim.Cond
	deliverable queue[recvEntry]
	recvCond    *sim.Cond
	consumeCond *sim.Cond
	unconsumed  int64 // blocks accepted into the receive queue, not yet consumed

	// Send throttling (CNI_32Q_m+Throttle): a software credit scheme that
	// keeps, per destination, no more unconsumed blocks outstanding than the
	// receiver's NI cache holds. outstanding is the sender-side ledger;
	// consume at the receiver returns the credit as a control message that
	// lands here one network latency later (creditReturn).
	outstanding  map[int]int64
	throttleCond *sim.Cond

	// peerFn resolves the coherent engine at another node — identity only,
	// to learn whether the sender throttles and to address its ledger; no
	// peer state is ever read or written synchronously. Set by the machine
	// layer through the composed NI's SetPeerLookup.
	peerFn func(node int) *coherent
}

// cniRing is a queue of 64-byte blocks with monotonically increasing
// logical head/tail indices mapped onto a fixed physical ring.
type cniRing struct {
	base membus.Addr
	cap  int64 // capacity in blocks
	head int64 // first live block
	tail int64 // first free block
}

func (r *cniRing) addr(logical int64) membus.Addr {
	return r.base + membus.Addr(logical%r.cap)*membus.BlockSize
}

func (r *cniRing) contains(a membus.Addr) bool {
	return a >= r.base && a < r.base+membus.Addr(r.cap)*membus.BlockSize
}

// logicalAt maps a physical block address to the most recent logical index
// at or below limit-1 that aliases it.
func (r *cniRing) logicalAt(a membus.Addr, limit int64) int64 {
	idx := int64(a-r.base) / membus.BlockSize
	last := limit - 1
	return last - ((last-idx)%r.cap+r.cap)%r.cap
}

type sendEntry struct {
	m     *netsim.Message
	start int64
	nb    int64
}

type recvEntry struct {
	m       *netsim.Message
	start   int64
	nb      int64
	inCache bool // resident in the NI receive cache (NICachedRing)
}

func newCoherent(env *Env, spec Spec, ring ringPolicy, snoopName string) *coherent {
	c := &coherent{
		env:         env,
		ring:        ring,
		snoopName:   snoopName,
		prefetch:    ring.prefetches() && !env.Cfg.DisableCNIPrefetch,
		throttle:    spec.Throttle,
		sendWork:    sim.NewCond(env.Eng),
		sendSpace:   sim.NewCond(env.Eng),
		outFree:     sim.NewCond(env.Eng),
		recvWork:    sim.NewCond(env.Eng),
		recvCond:    sim.NewCond(env.Eng),
		consumeCond: sim.NewCond(env.Eng),
		fetched:     make(map[int64]bool),
	}
	if c.throttle {
		c.outstanding = make(map[int]int64)
		c.throttleCond = sim.NewCond(env.Eng)
	}
	ring.install(c)
	env.Bus.AttachSnooper(c)
	env.EP.OnAccept = func(m *netsim.Message) {
		c.acceptQ.push(m)
		if tr := env.Trace; tr != nil {
			tr("buffer accept src=%d size=%dB queued=%d", m.Src, m.Size(), c.acceptQ.len())
		}
		c.recvWork.Broadcast()
	}
	env.EP.OnOutFree = func() { c.outFree.Broadcast() }
	env.Eng.Spawn(fmt.Sprintf("cni-send-%d", env.ID), c.sendEngine)
	env.Eng.Spawn(fmt.Sprintf("cni-recv-%d", env.ID), c.recvEngine)
	return c
}

// SnooperName implements membus.Snooper.
func (c *coherent) SnooperName() string { return c.snoopName }

// Snoop implements membus.Snooper: let the buffering policy supply
// receive-queue blocks it holds, and watch the send queue for prefetch
// opportunities.
func (c *coherent) Snoop(t *membus.Transaction) membus.SnoopReply {
	switch t.Kind { //lint:allow exhaustive NI rings react only to reads and ownership requests; other snooped kinds pass unanswered
	case membus.GetS:
		if reply, ok := c.ring.snoopSupply(t.Addr); ok {
			return reply
		}
	case membus.GetX, membus.Upgrade:
		if c.sendRing.contains(t.Addr) {
			c.snoopCompose(t.Addr)
		}
	}
	return membus.SnoopReply{}
}

// snoopCompose reacts to the processor taking exclusive ownership of a send
// queue block: drop any stale NI copy (fetched too early ⇒ refetch later)
// and, with prefetch enabled, start fetching the previous block of the
// message being composed.
func (c *coherent) snoopCompose(a membus.Addr) {
	li := c.sendRing.logicalAt(a, c.composeTail)
	if c.fetched[li] {
		delete(c.fetched, li)
		c.env.Stats.Refetches++
	}
	if !c.prefetch {
		return
	}
	prev := li - 1
	if prev < c.doorbelled || c.fetched[prev] {
		return
	}
	c.fetched[prev] = true
	c.env.Stats.Prefetches++
	c.env.Bus.Issue(&membus.Transaction{
		Kind:      membus.GetS,
		Addr:      c.sendRing.addr(prev),
		Requester: c,
		Done:      func() { c.ring.prefetchStored() },
	})
}

// send is the processor side of a coherent transmit: compose the message
// into cacheable queue memory and ring the doorbell; the NI manages the
// transfer from there, so the processor is released immediately (modulo
// throttling).
func (c *coherent) send(pr *proc.Proc, m *netsim.Message) {
	nb := int64(blocksFor(m))
	if c.throttle {
		c.throttleWait(pr, m, nb)
	}
	if c.sendRing.tail+nb-c.sendRing.head > c.sendRing.cap {
		c.env.Stats.SendBlocked++
		for c.sendRing.tail+nb-c.sendRing.head > c.sendRing.cap {
			c.sendSpace.WaitAs(pr.P, stats.Buffering)
		}
	}
	start := c.sendRing.tail
	c.sendRing.tail += nb
	c.composeTail = c.sendRing.tail

	remaining := m.Size()
	for i := int64(0); i < nb; i++ {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.CachedWrite(stats.Transfer, c.sendRing.addr(start+i), chunk)
		remaining -= chunk
	}
	// Lazy tail-pointer update (cacheable) — the doorbell.
	pr.CachedWrite(stats.Transfer, c.sendPtr, 8)
	c.doorbelled = c.sendRing.tail
	c.sendQ.push(sendEntry{m: m, start: start, nb: nb})
	if tr := c.env.Trace; tr != nil {
		tr("engine compose dst=%d blocks=%d ring=[%d,%d)", m.Dst, nb, c.sendRing.head, c.sendRing.tail)
	}
	c.sendWork.Broadcast()
}

// throttleWait models CNI_32Q_m+Throttle: a software credit scheme holds
// the sender until the receiver's NI cache has room for the message, so the
// receiver keeps consuming from fast NI SRAM instead of overflowing to main
// memory. Credits return when the receiver consumes (see consume).
func (c *coherent) throttleWait(pr *proc.Proc, m *netsim.Message, nb int64) {
	for c.outstanding[m.Dst]+nb > int64(c.env.Cfg.CNICacheBlocks) {
		c.throttleCond.WaitAs(pr.P, stats.Buffering)
	}
	c.outstanding[m.Dst] += nb //lint:allow noalloc per-destination credit map is sized by node count at warm-up; steady-state writes hit existing buckets
}

// Credit-return messages pack (consuming node, blocks) into the event arg.
const (
	creditNodeShift = 32
	creditBlockMask = 1<<creditNodeShift - 1
)

// creditReturn is the typed handler for a throttle credit arriving back at
// the sending NI, one network latency after the receiver consumed: arg
// packs the consuming node's id and the number of blocks freed. It runs on
// the sender's own engine (netsim routes it across the partition seam when
// the two nodes live on different shards), so the ledger write and the
// wakeup stay shard-local.
//
//lint:hotpath
func creditReturn(recv any, arg uint64) {
	c := recv.(*coherent)
	c.outstanding[int(arg>>creditNodeShift)] -= int64(arg & creditBlockMask) //lint:allow noalloc credit return writes an existing per-node bucket, warmed at first send
	c.throttleCond.Broadcast()
}

// sendEngine is the NI-side send state machine: fetch message blocks from
// the processor's cache (or memory) with coherent reads, then inject.
func (c *coherent) sendEngine(p *sim.Process) {
	for {
		for c.sendQ.len() == 0 {
			c.sendWork.Wait(p)
		}
		e := c.sendQ.pop()
		for i := int64(0); i < e.nb; i++ {
			li := e.start + i
			if c.fetched[li] {
				delete(c.fetched, li)
				continue
			}
			c.ring.admitSend(p)
			c.env.Bus.AccessFrom(p, c, membus.GetS, c.sendRing.addr(li), 0)
			// The local store of the fetched block lands in the device's
			// write buffer; reads bypass it, so it neither stalls the engine
			// nor delays subsequent reads. Only the SRAM caches, being
			// single-ported, charge their occupancy.
			c.ring.fetchStored()
		}
		for !c.env.EP.TryAcquireOut() {
			c.outFree.Wait(p)
		}
		c.env.EP.Inject(e.m)
		if tr := c.env.Trace; tr != nil {
			tr("engine inject dst=%d blocks=%d", e.m.Dst, e.nb)
		}
		c.sendRing.head = e.start + e.nb
		c.ring.sendDone(e.nb)
		c.sendSpace.Broadcast()
	}
}

// recvEngine is the NI-side receive state machine: move each accepted
// message from its incoming flow-control buffer into the receive queue; the
// buffering policy decides where the blocks land.
func (c *coherent) recvEngine(p *sim.Process) {
	for {
		for c.acceptQ.len() == 0 {
			c.recvWork.Wait(p)
		}
		m := c.acceptQ.pop()
		nb := int64(blocksFor(m))
		for c.recvRing.tail+nb-c.recvRing.head > c.recvRing.cap {
			// Queue full: hold the flow-control buffer (backpressure).
			c.consumeCond.Wait(p)
		}
		start := c.recvRing.tail
		c.recvRing.tail += nb
		c.unconsumed += nb
		inCache := c.ring.deposit(p, start, nb)
		c.env.EP.ReleaseIn()
		c.deliverable.push(recvEntry{m: m, start: start, nb: nb, inCache: inCache})
		c.recvCond.Broadcast()
	}
}

// poll is a sense-reverse poll: a cached read of the head block — a 1-cycle
// cache hit while nothing has arrived, a coherent fetch (from the NI cache,
// NI memory, or DRAM, depending on the buffering policy) when the NI has
// deposited a message there.
func (c *coherent) poll(pr *proc.Proc) (*netsim.Message, bool) {
	if c.deliverable.len() == 0 {
		// Unsuccessful poll: a cache-resident head read, so the monitoring
		// cost of a coherent NI is a 1-cycle hit rather than an uncached
		// bus round trip.
		pr.CachedRead(stats.Buffering, c.recvRing.addr(c.recvRing.head), 8)
		return nil, false
	}
	pr.CachedRead(stats.Transfer, c.recvRing.addr(c.recvRing.head), 8)
	return c.consume(pr), true
}

// recv blocks until a message is deliverable, then consumes it.
func (c *coherent) recv(pr *proc.Proc) *netsim.Message {
	for c.deliverable.len() == 0 {
		c.recvCond.WaitAs(pr.P, stats.Compute)
	}
	pr.CachedRead(stats.Transfer, c.recvRing.addr(c.recvRing.head), 8)
	return c.consume(pr)
}

func (c *coherent) consume(pr *proc.Proc) *netsim.Message {
	e := c.deliverable.pop()
	m := e.m

	remaining := m.Size()
	for i := int64(0); i < e.nb; i++ {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.CachedRead(stats.Transfer, c.recvRing.addr(e.start+i), chunk)
		remaining -= chunk
	}
	// Copy payload into the user buffer: one store per 8 bytes.
	pr.Work(stats.Transfer, int64((m.Size()+7)/8))
	// Lazy head-pointer update (cacheable).
	pr.CachedWrite(stats.Transfer, c.recvPtr, 8)

	c.recvRing.head = e.start + e.nb
	c.unconsumed -= e.nb
	if c.peerFn != nil {
		if sender := c.peerFn(m.Src); sender != nil && sender.throttle {
			// The credit rides back to the sender as a control message, one
			// network latency out — the same lag as an ack — rather than a
			// same-instant write into the peer NI's ledger. On a partitioned
			// machine the sender may live on another shard, so the only
			// legal channel is the message seam (DESIGN.md §10.1); keeping
			// the identical lag on the serial engine keeps serial and
			// sharded runs byte-identical.
			c.env.EP.PostControl(m.Src, creditReturn, sender, uint64(c.env.ID)<<creditNodeShift|uint64(e.nb))
			// The consume carries a head update, so the NI can reclaim dead
			// blocks without waiting for a flush.
			c.ring.reclaim()
		}
	}
	c.ring.recordConsume(e.inCache, e.nb)
	c.consumeCond.Broadcast()
	recordRecv(c.env, m)
	return m
}

// pending reports whether a consume would succeed now.
func (c *coherent) pending() bool { return c.deliverable.len() > 0 }

// canSend reports whether the send queue has ring space (and, for the
// throttled variant, whether the receiver has credit).
func (c *coherent) canSend(m *netsim.Message) bool {
	nb := int64(blocksFor(m))
	if c.sendRing.tail+nb-c.sendRing.head > c.sendRing.cap {
		return false
	}
	if c.throttle && c.outstanding[m.Dst]+nb > int64(c.env.Cfg.CNICacheBlocks) {
		return false
	}
	return true
}

// idle reports whether the NI-side send engine has drained its queue.
func (c *coherent) idle() bool { return c.sendQ.len() == 0 }
