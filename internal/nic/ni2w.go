package nic

import (
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/stats"
)

// ni2w is the CM-5-like NI_2w: the processor sees only the first two words
// of the NI fifo and moves every message word itself with uncached loads
// and stores. All five design parameters are at their least aggressive
// settings: small transfers, full processor involvement, and
// register-to-register source/destination.
//
// With singleCycle set, the same design is mapped into the processor
// (Figure 4's single-cycle NI_2w, approximating register-mapped NIs such as
// the MIT M-machine): every access costs one processor cycle and no bus
// transaction.
type ni2w struct {
	*fifoBase
	env         *Env
	singleCycle bool
}

func newNI2w(env *Env, singleCycle bool) *ni2w {
	n := &ni2w{env: env, singleCycle: singleCycle}
	n.fifoBase = newFifoBase(env)
	return n
}

func (n *ni2w) Kind() Kind {
	if n.singleCycle {
		return CM5SingleCycle
	}
	return CM5
}

// statusRead models checking an NI status register: send-space on the send
// side, receive-ready on the receive side.
func (n *ni2w) statusRead(pr *proc.Proc) {
	if n.singleCycle {
		pr.Work(stats.Transfer, 1)
		return
	}
	pr.UncachedRead(stats.Transfer, RegStatus, 8)
}

// moveWord models one fifo-window access of Cfg.UncachedWordBytes.
func (n *ni2w) moveWord(pr *proc.Proc, load bool) {
	pr.Work(stats.Transfer, n.env.Cfg.WordLoopCycles)
	if n.singleCycle {
		pr.Work(stats.Transfer, 1)
		return
	}
	if load {
		pr.UncachedRead(stats.Transfer, FifoBase, n.env.Cfg.UncachedWordBytes)
	} else {
		pr.UncachedWrite(stats.Transfer, FifoBase, n.env.Cfg.UncachedWordBytes)
	}
}

// Send implements NI: check send space, push the message through the
// two-word fifo window as a train of sub-messages — one status check per
// Cfg.SubMsgBytes chunk, as on the CM-5, whose fifo messages held at most a
// few words — and fire the doorbell. The processor manages the whole
// transfer.
// pathCycles is the per-message software cost of this NI's messaging path.
// The memory-bus NI_2w pays the full fifo path (uncached-access juggling);
// the register-mapped variant exists precisely to strip that to almost
// nothing (the M-machine's motivation).
func (n *ni2w) pathCycles() int64 {
	if n.singleCycle {
		return 15
	}
	return n.env.Cfg.FifoPathCycles
}

func (n *ni2w) Send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, n.pathCycles())
	n.statusRead(pr)
	// An outgoing flow-control buffer is the send fifo slot; without one
	// the processor spins on the status register (buffering stall).
	for !n.env.EP.TryAcquireOut() {
		n.env.Stats.SendBlocked++
		n.env.EP.WaitOut(pr.P)
		n.statusRead(pr)
	}
	n.push(pr, m)
	n.env.EP.Inject(m)
}

// push moves the message through the two-word window and fires the
// doorbell; it is also the cost of re-pushing a returned message.
func (n *ni2w) push(pr *proc.Proc, m *netsim.Message) {
	w := n.env.Cfg.UncachedWordBytes
	wordsPerChunk := n.env.Cfg.SubMsgBytes / w
	for sent, word := 0, 0; sent < m.Size(); {
		if word == wordsPerChunk {
			n.statusRead(pr)
			word = 0
		}
		n.moveWord(pr, false)
		sent += w
		word++
	}
	// Doorbell: the final uncached store launches the message.
	if !n.singleCycle {
		pr.UncachedWrite(stats.Transfer, RegGo, 8)
	} else {
		pr.Work(stats.Transfer, 1)
	}
}

// Poll implements NI: one status read, then — if a message waits — pop it
// word by word.
func (n *ni2w) Poll(pr *proc.Proc) (*netsim.Message, bool) {
	if n.recvQ.len() == 0 {
		// An unsuccessful poll is pure monitoring cost — the price of
		// limited buffering (§3.2) — so it lands in the buffering category.
		prev := pr.P.Category
		pr.P.Category = stats.Buffering
		n.statusRead(pr)
		pr.P.Category = prev
		return nil, false
	}
	n.statusRead(pr)
	return n.receive(pr), true
}

// Recv implements NI.
func (n *ni2w) Recv(pr *proc.Proc) *netsim.Message {
	n.waitForMessageServicing(pr, func(b *netsim.Message) { n.push(pr, b) })
	n.statusRead(pr)
	return n.receive(pr)
}

func (n *ni2w) receive(pr *proc.Proc) *netsim.Message {
	m := n.head()
	pr.Work(stats.Transfer, n.pathCycles())
	n.popWords(pr, m)
	recordRecv(n.env, m)
	return n.pop()
}

// Pending implements NI.
func (n *ni2w) Pending() bool { return n.pending() }

// Idle implements NI: sends complete synchronously.
func (n *ni2w) Idle() bool { return true }

// CanSend implements NI: an outgoing flow-control buffer must be free.
func (n *ni2w) CanSend(m *netsim.Message) bool { return n.env.EP.OutFree() > 0 }

// NeedsRetry implements NI.
func (n *ni2w) NeedsRetry() bool { return n.hasBounced() }

// RetryOne implements NI: the processor first consumes the returned
// message from the network (it comes back through the receive path), then
// re-pushes it word by word.
func (n *ni2w) RetryOne(pr *proc.Proc) {
	n.retryOne(pr, func(b *netsim.Message) {
		// The retry handler is messaging software — register mapping does
		// not shrink it — plus the pop and re-push through the window.
		pr.Work(pr.P.Category, n.env.Cfg.FifoPathCycles)
		n.popWords(pr, b)
		n.push(pr, b)
	})
}

// popWords is the word-loop cost of draining one message out of the fifo
// window (shared by normal receive and bounce consumption).
func (n *ni2w) popWords(pr *proc.Proc, m *netsim.Message) {
	w := n.env.Cfg.UncachedWordBytes
	wordsPerChunk := n.env.Cfg.SubMsgBytes / w
	for got, word := 0, 0; got < m.Size(); {
		if word == wordsPerChunk {
			n.statusRead(pr)
			word = 0
		}
		n.moveWord(pr, true)
		got += w
		word++
	}
}
