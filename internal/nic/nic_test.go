package nic

import (
	"testing"
	"testing/quick"

	"nisim/internal/cache"
	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// twoNodes builds a two-node rig: engine, per-node bus/cache/memory/NI, and
// a network with the given flow-control buffer count.
type twoNodes struct {
	eng   *sim.Engine
	net   *netsim.Network
	procs [2]*proc.Proc
	nis   [2]NI
	nodes [2]*stats.Node
}

func newTwoNodes(t *testing.T, kind Kind, bufs int, mutate func(*Config)) *twoNodes {
	t.Helper()
	eng := sim.NewEngine()
	r := &twoNodes{eng: eng, net: netsim.New(eng, netsim.DefaultConfig(), 2, bufs)}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	for i := 0; i < 2; i++ {
		st := stats.NewNode()
		bus := membus.New(eng, membus.DefaultTiming(), st)
		mem := mainmem.New("dram", 120*sim.Nanosecond, eng)
		bus.MapRange(DRAMBase, DRAMLimit, mem)
		c := cache.New("cache", eng, bus, cache.DefaultConfig(), st)
		pr := &proc.Proc{ID: i, Eng: eng, Bus: bus, Cache: c, Stats: st, CPU: sim.GHz(1)}
		ep := r.net.Endpoint(i)
		ep.Stats = st
		r.nis[i] = New(kind, &Env{Eng: eng, ID: i, Bus: bus, Mem: mem, EP: ep, Stats: st, CPU: sim.GHz(1), Cfg: cfg})
		r.procs[i] = pr
		r.nodes[i] = st
	}
	for i := range r.nis {
		if pa, ok := r.nis[i].(PeerAware); ok {
			i := i
			pa.SetPeerLookup(func(id int) NI { _ = i; return r.nis[id] })
		}
	}
	return r
}

// run executes sender software on node 0 and receiver software on node 1.
func (r *twoNodes) run(t *testing.T, send, recv func(pr *proc.Proc, ni NI)) {
	t.Helper()
	done := 0
	p0 := r.eng.Spawn("n0", func(p *sim.Process) { send(r.procs[0], r.nis[0]); done++ })
	r.procs[0].Bind(p0)
	p1 := r.eng.Spawn("n1", func(p *sim.Process) { recv(r.procs[1], r.nis[1]); done++ })
	r.procs[1].Bind(p1)
	r.eng.RunWhile(func() bool { return done < 2 })
	if done < 2 {
		t.Fatal("deadlock: programs did not finish")
	}
	r.eng.Drain()
}

// sendN sends count messages and then keeps servicing bounce retries until
// the whole batch has been delivered network-wide (the messaging layer does
// this in the full stack; here the test drives the NI directly).
func (r *twoNodes) sendN(count, payload int) func(pr *proc.Proc, ni NI) {
	return func(pr *proc.Proc, ni NI) {
		for i := 0; i < count; i++ {
			m := netsim.NewSized(0, 1, 1, payload)
			for !ni.CanSend(m) {
				if _, ok := ni.Poll(pr); !ok {
					if ni.NeedsRetry() {
						ni.RetryOne(pr)
					} else {
						pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
					}
				}
			}
			ni.Send(pr, m)
		}
		for r.net.Delivered() < int64(count) {
			if ni.NeedsRetry() {
				ni.RetryOne(pr)
			} else {
				pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
			}
		}
	}
}

func recvN(count int) func(pr *proc.Proc, ni NI) {
	return func(pr *proc.Proc, ni NI) {
		for i := 0; i < count; i++ {
			ni.Recv(pr)
		}
	}
}

func TestEveryKindDelivers(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.ShortName(), func(t *testing.T) {
			r := newTwoNodes(t, kind, 4, nil)
			r.run(t, r.sendN(20, 48), recvN(20))
			if got := r.nodes[1].FragmentsReceived; got != 20 {
				t.Fatalf("received %d fragments, want 20", got)
			}
		})
	}
}

func TestSingleCycleUsesNoBus(t *testing.T) {
	r := newTwoNodes(t, CM5SingleCycle, 4, nil)
	r.run(t, r.sendN(10, 16), recvN(10))
	if r.nodes[0].BusTransactions != 0 || r.nodes[1].BusTransactions != 0 {
		t.Fatalf("register-mapped NI used the bus: %d/%d transactions",
			r.nodes[0].BusTransactions, r.nodes[1].BusTransactions)
	}
}

func TestCM5UsesUncachedOnly(t *testing.T) {
	r := newTwoNodes(t, CM5, 4, nil)
	r.run(t, r.sendN(10, 16), recvN(10))
	if r.nodes[0].UncachedAccesses == 0 {
		t.Fatal("CM-5-like NI performed no uncached accesses")
	}
	if r.nodes[0].BlockBufTransfers != 0 {
		t.Fatal("CM-5-like NI used block-buffer transfers")
	}
}

func TestBlkbufUsesBlockTransfers(t *testing.T) {
	r := newTwoNodes(t, AP3000, 4, nil)
	r.run(t, r.sendN(10, 120), recvN(10))
	// 120B payload + 8B header = 2 blocks per message on each side.
	if got := r.nodes[0].BlockBufTransfers; got != 20 {
		t.Fatalf("sender block transfers = %d, want 20", got)
	}
	if got := r.nodes[1].BlockBufTransfers; got != 20 {
		t.Fatalf("receiver block transfers = %d, want 20", got)
	}
}

func TestUdmaThreshold(t *testing.T) {
	// At or below the 96-byte threshold the UDMA NI behaves like the word
	// window (no cached staging traffic); above, it stages through memory.
	small := newTwoNodes(t, UDMA, 4, nil)
	small.run(t, small.sendN(5, 96), recvN(5))
	if small.nodes[0].CacheToCache+small.nodes[0].MemToCache != 0 {
		t.Fatal("small messages used the DMA path")
	}
	large := newTwoNodes(t, UDMA, 4, nil)
	large.run(t, large.sendN(5, 200), recvN(5))
	if large.nodes[0].BusTransactions == small.nodes[0].BusTransactions {
		t.Fatal("large messages did not add DMA bus traffic")
	}
}

func TestCNIPrefetchFiresOnMultiBlockSends(t *testing.T) {
	r := newTwoNodes(t, CNI512Q, 8, nil)
	r.run(t, r.sendN(10, 200), recvN(10)) // 208B = 4 blocks per message
	if r.nodes[0].Prefetches == 0 {
		t.Fatal("no send-side prefetches on multi-block messages")
	}
}

func TestCNINoPrefetchOnStarTJR(t *testing.T) {
	r := newTwoNodes(t, StarTJR, 8, nil)
	r.run(t, r.sendN(10, 200), recvN(10))
	if r.nodes[0].Prefetches != 0 {
		t.Fatalf("StarT-JR-like NI prefetched %d blocks; it does not respond to coherence signals",
			r.nodes[0].Prefetches)
	}
}

func TestCNI32QmServesFromNICache(t *testing.T) {
	r := newTwoNodes(t, CNI32Qm, 8, nil)
	r.run(t, r.sendN(10, 48), recvN(10))
	if r.nodes[1].NICacheHits == 0 {
		t.Fatal("no receive blocks served from the NI cache")
	}
	if r.nodes[1].NIBypasses != 0 {
		t.Fatalf("unexpected bypasses (%d) with a keeping-up consumer", r.nodes[1].NIBypasses)
	}
}

func TestCNI32QmBypassesWhenCacheFull(t *testing.T) {
	r := newTwoNodes(t, CNI32Qm, 64, nil)
	// The receiver consumes only after everything has arrived, so the
	// 32-block cache must overflow and later messages bypass to memory.
	r.run(t,
		r.sendN(40, 48), // 40 messages × 1 block
		func(pr *proc.Proc, ni NI) {
			for !ni.Pending() {
				pr.P.SleepAs(stats.Compute, sim.Microsecond)
			}
			pr.P.SleepAs(stats.Compute, 100*sim.Microsecond)
			recvN(40)(pr, ni)
		})
	if r.nodes[1].NIBypasses == 0 {
		t.Fatal("receive cache never bypassed under overload")
	}
	if r.nodes[1].NICacheMisses == 0 {
		t.Fatal("no receive blocks read from memory after bypass")
	}
}

func TestThrottleLimitsOutstanding(t *testing.T) {
	r := newTwoNodes(t, CNI32QmThrottle, 64, nil)
	maxUnconsumed := int64(0)
	probe := r.nis[1].(*composed).coh
	r.run(t,
		func(pr *proc.Proc, ni NI) {
			for i := 0; i < 60; i++ {
				m := netsim.NewSized(0, 1, 1, 48)
				for !ni.CanSend(m) {
					pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
					if probe.unconsumed > maxUnconsumed {
						maxUnconsumed = probe.unconsumed
					}
				}
				ni.Send(pr, m)
			}
		},
		func(pr *proc.Proc, ni NI) {
			for i := 0; i < 60; i++ {
				ni.Recv(pr)
				pr.P.SleepAs(stats.Compute, 2*sim.Microsecond) // slow consumer
			}
		})
	if maxUnconsumed > int64(DefaultConfig().CNICacheBlocks) {
		t.Fatalf("throttle let %d blocks accumulate (> %d cache blocks)",
			maxUnconsumed, DefaultConfig().CNICacheBlocks)
	}
	if r.nodes[1].NIBypasses != 0 {
		t.Fatalf("throttled sender still caused %d bypasses", r.nodes[1].NIBypasses)
	}
}

func TestFifoBounceNeedsProcessorRetry(t *testing.T) {
	r := newTwoNodes(t, CM5, 1, nil)
	retried := false
	r.run(t,
		func(pr *proc.Proc, ni NI) {
			// Blast 10 messages at a receiver that is asleep: bounces must
			// appear and require RetryOne.
			for i := 0; i < 10; i++ {
				m := netsim.NewSized(0, 1, 1, 16)
				for !ni.CanSend(m) {
					if ni.NeedsRetry() {
						retried = true
						ni.RetryOne(pr)
					} else {
						pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
					}
				}
				ni.Send(pr, m)
				for ni.NeedsRetry() {
					retried = true
					ni.RetryOne(pr)
				}
			}
		},
		func(pr *proc.Proc, ni NI) {
			pr.P.SleepAs(stats.Compute, 30*sim.Microsecond)
			recvN(10)(pr, ni)
		})
	if r.nodes[0].Bounces == 0 {
		t.Fatal("no bounces with one flow-control buffer and a sleeping receiver")
	}
	if !retried {
		t.Fatal("bounces never required processor retry")
	}
	if got := r.nodes[1].FragmentsReceived; got != 10 {
		t.Fatalf("received %d, want 10 (messages lost in retry)", got)
	}
}

func TestCNIHardwareRetry(t *testing.T) {
	r := newTwoNodes(t, CNI32Qm, 1, nil)
	r.run(t,
		r.sendN(10, 48),
		func(pr *proc.Proc, ni NI) {
			if ni.NeedsRetry() {
				t.Error("CNI reported processor retry work")
			}
			recvN(10)(pr, ni)
		})
	// Retries (if any) were hardware-managed.
	if r.nodes[1].FragmentsReceived != 10 {
		t.Fatalf("received %d, want 10", r.nodes[1].FragmentsReceived)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindByName(k.ShortName())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, k.ShortName(), got)
		}
	}
	if _, err := KindByName("nonesuch"); err == nil {
		t.Fatal("bogus name resolved")
	}
}

func TestCatalogMatchesTable2(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d entries, want 7", len(cat))
	}
	procInvolved := map[Kind]bool{
		CM5: true, UDMA: true, AP3000: true, CNI512Q: true,
		StarTJR: false, MemoryChannel: false, CNI32Qm: false,
	}
	for _, e := range cat {
		if want := procInvolved[e.Kind]; e.ProcInvolve != want {
			t.Errorf("%s: ProcInvolve = %v, want %v", e.Notation, e.ProcInvolve, want)
		}
		if e.Kind == CM5 && e.SendSize != "Uncached" {
			t.Errorf("NI_2w send size = %q", e.SendSize)
		}
		if e.Kind != CM5 && e.SendSize != "Block" {
			t.Errorf("%s send size = %q, want Block", e.Notation, e.SendSize)
		}
	}
}

// Property: a CNI ring maps logical indices to addresses consistently —
// logicalAt inverts addr for any in-window logical index.
func TestRingLogicalAtInvertsAddr(t *testing.T) {
	f := func(capRaw uint8, headRaw, offRaw uint16) bool {
		capBlocks := int64(capRaw%200) + 8
		r := cniRing{base: QmRecvBase, cap: capBlocks}
		head := int64(headRaw)
		off := int64(offRaw) % capBlocks
		li := head + off
		limit := head + capBlocks // window of live logical indices
		got := r.logicalAt(r.addr(li), limit)
		// got must alias li and be within (limit-cap, limit].
		return (got-li)%capBlocks == 0 && got <= limit-1 && got > limit-1-capBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every NI delivers every payload size without loss.
func TestAnyPayloadSizeDelivered(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		kind := Kinds()[int(raw[0])%len(Kinds())]
		r := newTwoNodes(t, kind, 4, nil)
		count := len(raw)
		ok := true
		done := 0
		p0 := r.eng.Spawn("s", func(p *sim.Process) {
			for _, b := range raw {
				payload := int(b) % 240 // stay within one network message
				m := netsim.NewSized(0, 1, 1, payload)
				for !r.nis[0].CanSend(m) {
					if _, got := r.nis[0].Poll(r.procs[0]); !got {
						if r.nis[0].NeedsRetry() {
							r.nis[0].RetryOne(r.procs[0])
						} else {
							p.SleepAs(stats.Buffering, 100*sim.Nanosecond)
						}
					}
				}
				r.nis[0].Send(r.procs[0], m)
			}
			for r.net.Delivered() < int64(count) {
				if r.nis[0].NeedsRetry() {
					r.nis[0].RetryOne(r.procs[0])
				} else {
					p.SleepAs(stats.Buffering, 100*sim.Nanosecond)
				}
			}
			done++
		})
		r.procs[0].Bind(p0)
		p1 := r.eng.Spawn("r", func(p *sim.Process) {
			for i := 0; i < count; i++ {
				r.nis[1].Recv(r.procs[1])
			}
			done++
		})
		r.procs[1].Bind(p1)
		r.eng.RunWhile(func() bool { return done < 2 })
		if done < 2 {
			ok = false
		}
		r.eng.Drain()
		return ok && r.nodes[1].FragmentsReceived == int64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
