package nic

import (
	"fmt"

	"nisim/internal/netsim"
	"nisim/internal/proc"
)

// sendEngine is the transmit half of a fifo-family transfer engine: the
// processor-side work of handing one message to the network, plus the
// re-push costs the FifoVM buffering policy charges when a bounced message
// must go out again.
type sendEngine interface {
	// send performs the full transmit path: path overhead, status checks,
	// acquiring an outgoing flow-control buffer, pushing the bytes, and
	// injection.
	send(pr *proc.Proc, m *netsim.Message)
	// serviceRepush is the cost of re-pushing a bounced message noticed
	// while the processor waits inside Recv.
	serviceRepush(pr *proc.Proc, m *netsim.Message)
	// retryRepush is the re-push cost of an explicit RetryOne.
	retryRepush(pr *proc.Proc, m *netsim.Message)
}

// recvEngine is the receive half of a fifo-family transfer engine: the
// processor-side work of polling for and draining one message out of the
// fifo window, plus the cost of consuming a bounced message off the
// network before it is re-pushed.
type recvEngine interface {
	// pollMiss charges an unsuccessful poll (monitoring cost; lands in the
	// buffering category — the price of limited buffering, §3.2).
	pollMiss(pr *proc.Proc)
	// pollHit charges the status check preceding a successful receive.
	pollHit(pr *proc.Proc)
	// receive drains the head message out of the fifo window and pops it.
	receive(pr *proc.Proc) *netsim.Message
	// retryConsume charges reading a bounced message back out of the
	// network before retryRepush sends it again.
	retryConsume(pr *proc.Proc, m *netsim.Message)
}

// composed is an NI assembled from a Spec: a send transfer engine, a
// receive transfer engine, and a buffering policy. The nine named Kinds are
// just well-known Specs; cross-product Specs build the same way.
//
// Dispatch is by layer, not by design: the coherent engine owns whichever
// sides the Spec marks coherent, the fifo engines own the rest, and the
// buffering policy (FifoVM's bounce queue vs. a coherent ring's NI-side
// retry) decides the NeedsRetry/RetryOne behavior.
type composed struct {
	env  *Env
	kind Kind
	spec Spec

	hw   *fifoHW   // fifo window hardware; nil for pure-coherent specs
	coh  *coherent // coherent engine; nil for FifoVM specs
	rdma *rdma     // one-sided engine; nil unless the send side is RDMA

	send sendEngine // nil when the send side is coherent or RDMA
	recv recvEngine // nil when the receive side is coherent
}

// newFifoEngine builds the fifo-family engine for e. The returned value
// implements sendEngine, and recvEngine for every engine but the
// send-only reflective one.
func newFifoEngine(env *Env, hw *fifoHW, e Engine) any {
	switch e {
	case UncachedWordEngine:
		return newWordEngine(env, hw, false)
	case RegisterWordEngine:
		return newWordEngine(env, hw, true)
	case BlockBufEngine:
		return newBlockBufEngine(env, hw)
	case ReflectiveEngine:
		return newReflectiveEngine(env, hw)
	case UDMAEngine:
		return newUdmaEngine(env, hw)
	default:
		panic(fmt.Sprintf("nic: %s is not a fifo-family engine", e))
	}
}

// compose builds a working NI from a validated Spec, wiring it to the
// node's bus, memory, and network endpoint.
//
// Construction order is load-bearing (it fixes bus-target registration and
// endpoint-callback wiring, and therefore the event schedule):
//
//  1. The fifo window hardware, when any side is fifo-family. Its
//     constructor wires OnAccept and OnBounce (FifoVM's software-visible
//     bounce queue).
//  2. The fifo engines. When both sides name the same engine they share
//     one instance — the UDMA engine's staging rotation is per-device
//     state, not per-direction.
//  3. The coherent engine, for ring-buffered specs. Its constructor
//     overrides OnAccept (receive is the coherent side) and spawns the
//     NI-side state machines.
//  4. Ring buffering does not involve the processor (Table 2): returned
//     messages are retried by the NI, not the software, so the composer
//     un-wires the fifo hardware's OnBounce.
//  5. The RDMA engine, after the coherent engine: its constructor takes
//     over the endpoint's OnOutFree (the coherent send side is unused
//     under an RDMAEngine spec) and wires the one-sided delivery hooks.
//  6. The overload policy, when the Spec sets one, compiles into the
//     endpoint's Admit hook (overload.go) — after the engines, so the
//     occupancy signal reads whichever buffering layer was built.
func compose(spec Spec, kind Kind, env *Env) *composed {
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	x := &composed{env: env, kind: kind, spec: spec}
	if spec.Send.fifoFamily() || spec.Recv.fifoFamily() {
		x.hw = newFifoHW(env)
	}
	if spec.Send.fifoFamily() {
		e := newFifoEngine(env, x.hw, spec.Send)
		x.send = e.(sendEngine)
		if spec.Recv == spec.Send {
			x.recv = e.(recvEngine)
		}
	}
	if spec.Recv.fifoFamily() && x.recv == nil {
		x.recv = newFifoEngine(env, x.hw, spec.Recv).(recvEngine)
	}
	if spec.Buffering != FifoVM {
		name := spec.Name()
		x.coh = newCoherent(env, spec, newRingPolicy(spec.Buffering), name)
		if x.hw != nil {
			env.EP.OnBounce = nil
		}
	}
	if spec.Send == RDMAEngine {
		x.rdma = newRDMA(env)
	}
	x.installOverload()
	return x
}

// Kind implements NI: the named design point this spec reproduces, or
// Custom for cross-product specs.
func (x *composed) Kind() Kind { return x.kind }

// Spec returns the design point the NI was composed from.
func (x *composed) Spec() Spec { return x.spec }

// Send implements NI.
//
//lint:hotpath
func (x *composed) Send(pr *proc.Proc, m *netsim.Message) {
	if x.spec.Send == CoherentEngine {
		x.coh.send(pr, m)
		return
	}
	if x.spec.Send == RDMAEngine {
		x.rdma.send(pr, m)
		return
	}
	if tr := x.env.Trace; tr != nil {
		tr("engine send start engine=%s dst=%d size=%dB", x.spec.Send, m.Dst, m.Size())
	}
	x.send.send(pr, m)
	if tr := x.env.Trace; tr != nil {
		tr("engine send complete engine=%s dst=%d", x.spec.Send, m.Dst)
	}
}

// Poll implements NI.
//
//lint:hotpath
func (x *composed) Poll(pr *proc.Proc) (*netsim.Message, bool) {
	if x.spec.Recv == CoherentEngine {
		return x.coh.poll(pr)
	}
	if x.hw.recvQ.len() == 0 {
		x.recv.pollMiss(pr)
		return nil, false
	}
	x.recv.pollHit(pr)
	m := x.recv.receive(pr)
	if tr := x.env.Trace; tr != nil {
		tr("engine recv complete engine=%s src=%d size=%dB", x.spec.Recv, m.Src, m.Size())
	}
	return m, true
}

// Recv implements NI.
//
//lint:hotpath
func (x *composed) Recv(pr *proc.Proc) *netsim.Message {
	if x.spec.Recv == CoherentEngine {
		return x.coh.recv(pr)
	}
	x.hw.waitForMessageServicing(pr, func(b *netsim.Message) { x.send.serviceRepush(pr, b) }) //lint:allow noalloc non-escaping service callback invoked synchronously; the composed gate proves the round stays alloc-free
	x.recv.pollHit(pr)
	m := x.recv.receive(pr)
	if tr := x.env.Trace; tr != nil {
		tr("engine recv complete engine=%s src=%d size=%dB", x.spec.Recv, m.Src, m.Size())
	}
	return m
}

// Pending implements NI.
//
//lint:hotpath
func (x *composed) Pending() bool {
	if x.spec.Recv == CoherentEngine {
		return x.coh.pending()
	}
	return x.hw.pending()
}

// CanSend implements NI: a coherent send side needs ring space (and, when
// throttled, receiver credit); a fifo send side needs an outgoing
// flow-control buffer.
//
//lint:hotpath
func (x *composed) CanSend(m *netsim.Message) bool {
	if x.spec.Send == CoherentEngine {
		return x.coh.canSend(m)
	}
	if x.spec.Send == RDMAEngine {
		return x.rdma.canSend()
	}
	return x.env.EP.OutFree() > 0
}

// NeedsRetry implements NI: only FifoVM buffering involves the processor
// in retrying bounced messages (Table 2); ring policies retry on the NI.
//
//lint:hotpath
func (x *composed) NeedsRetry() bool {
	return x.spec.Buffering == FifoVM && x.hw.hasBounced()
}

// RetryOne implements NI: consume the bounced message off the network with
// the receive engine, then re-push it with the send engine.
//
//lint:hotpath
func (x *composed) RetryOne(pr *proc.Proc) {
	if x.spec.Buffering != FifoVM {
		return
	}
	x.hw.retryOne(pr, func(b *netsim.Message) { //lint:allow noalloc non-escaping retry callback invoked synchronously; gated by TestAdmissionControlAllocFree
		x.recv.retryConsume(pr, b)
		x.send.retryRepush(pr, b)
	})
}

// Idle implements NI: fifo-family sends complete synchronously inside
// Send, so only a coherent send side can hold queued work.
//
//lint:hotpath
func (x *composed) Idle() bool {
	if x.spec.Send == CoherentEngine {
		return x.coh.idle()
	}
	if x.spec.Send == RDMAEngine {
		return x.rdma.idle()
	}
	return true
}

// RDMA implements RDMACapable: the one-sided interface, or nil for specs
// without an RDMA send side. Returned as an explicit nil so callers can
// test `ni.RDMA() == nil` without tripping over a typed-nil interface.
func (x *composed) RDMA() RDMA {
	if x.rdma == nil {
		return nil
	}
	return x.rdma
}

// SetPeerLookup implements PeerAware: peer-NI identity resolution for the
// coherent engine's software credit scheme (CNI_32Q_m+Throttle), whose
// credit returns are addressed to the sending NI's ledger. A no-op for
// specs without a coherent side.
func (x *composed) SetPeerLookup(fn func(node int) NI) {
	if x.coh == nil {
		return
	}
	x.coh.peerFn = func(node int) *coherent {
		if p, ok := fn(node).(*composed); ok {
			return p.coh
		}
		return nil
	}
}
