package nic

import (
	"testing"

	"nisim/internal/cache"
	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// newTwoNodesSpec is newTwoNodes for an arbitrary design point.
func newTwoNodesSpec(t *testing.T, spec Spec, bufs int, mutate func(*Config)) *twoNodes {
	t.Helper()
	return newTwoNodesNet(t, spec, bufs, netsim.DefaultConfig(), mutate)
}

// newTwoNodesNet is newTwoNodesSpec with the network configuration exposed,
// for scenarios that need the reliability layer or non-default link timing.
func newTwoNodesNet(t *testing.T, spec Spec, bufs int, netCfg netsim.Config, mutate func(*Config)) *twoNodes {
	t.Helper()
	eng := sim.NewEngine()
	r := &twoNodes{eng: eng, net: netsim.New(eng, netCfg, 2, bufs)}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	for i := 0; i < 2; i++ {
		st := stats.NewNode()
		bus := membus.New(eng, membus.DefaultTiming(), st)
		mem := mainmem.New("dram", 120*sim.Nanosecond, eng)
		bus.MapRange(DRAMBase, DRAMLimit, mem)
		c := cache.New("cache", eng, bus, cache.DefaultConfig(), st)
		pr := &proc.Proc{ID: i, Eng: eng, Bus: bus, Cache: c, Stats: st, CPU: sim.GHz(1)}
		ep := r.net.Endpoint(i)
		ep.Stats = st
		ni, err := NewFromSpec(spec, &Env{Eng: eng, ID: i, Bus: bus, Mem: mem, EP: ep, Stats: st, CPU: sim.GHz(1), Cfg: cfg})
		if err != nil {
			t.Fatalf("NewFromSpec(%s): %v", spec.Name(), err)
		}
		r.nis[i] = ni
		r.procs[i] = pr
		r.nodes[i] = st
	}
	for i := range r.nis {
		if pa, ok := r.nis[i].(PeerAware); ok {
			pa.SetPeerLookup(func(id int) NI { return r.nis[id] })
		}
	}
	return r
}

// TestSpecConformance drives every named Kind and every valid cross-product
// spec through one send/poll/recv/bounce/drain scenario and checks the NI
// contract invariants that hold for all designs:
//
//   - Poll agrees with Pending: a message comes back exactly when Pending
//     was true immediately before the call (no Recv without Pending).
//   - Bounced messages are eventually redelivered: every sent message
//     arrives exactly once, even when the sleeping receiver forces bounces.
//   - NeedsRetry is true only under processor-involved buffering (FifoVM);
//     ring-buffered designs never ask the software to retry.
//   - Idle implies no queued sends: the drain spin after the last delivery
//     terminates with the send side idle.
func TestSpecConformance(t *testing.T) {
	type point struct {
		name string
		spec Spec
	}
	var points []point
	for _, k := range Kinds() {
		points = append(points, point{k.ShortName(), SpecFor(k)})
	}
	for _, s := range CrossSpecs() {
		points = append(points, point{s.Name(), s})
	}
	const (
		count   = 12
		payload = 112 // >1 block, >UDMA threshold: exercises every engine's large path
	)
	for _, pt := range points {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			if err := pt.spec.Validate(); err != nil {
				t.Fatalf("invalid spec: %v", err)
			}
			r := newTwoNodesSpec(t, pt.spec, 2, nil)
			fifoVM := pt.spec.Buffering == FifoVM
			idleDrained := false
			r.run(t,
				func(pr *proc.Proc, ni NI) {
					for i := 0; i < count; i++ {
						m := netsim.NewSized(0, 1, 1, payload)
						for !ni.CanSend(m) {
							if ni.NeedsRetry() {
								if !fifoVM {
									t.Error("ring-buffered NI reported processor retry work")
								}
								ni.RetryOne(pr)
							} else {
								pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
							}
						}
						ni.Send(pr, m)
					}
					// Drain: service software retries until the whole batch has
					// been delivered network-wide, then wait for the send side
					// to go idle.
					for r.net.Delivered() < count {
						if ni.NeedsRetry() {
							if !fifoVM {
								t.Error("ring-buffered NI reported processor retry work")
							}
							ni.RetryOne(pr)
						} else {
							pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
						}
					}
					for spin := 0; !ni.Idle(); spin++ {
						if spin > 100000 {
							t.Error("send side never went idle after the last delivery")
							return
						}
						pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
					}
					idleDrained = true
				},
				func(pr *proc.Proc, ni NI) {
					// Sleep first so the two flow-control buffers overflow and
					// fifo-buffered designs must bounce.
					pr.P.SleepAs(stats.Compute, 20*sim.Microsecond)
					got := 0
					// Exercise the blocking receive path once.
					if m := ni.Recv(pr); m == nil {
						t.Error("Recv returned nil")
					} else {
						got++
					}
					for got < count {
						pending := ni.Pending()
						m, ok := ni.Poll(pr)
						if ok != pending {
							t.Errorf("Poll returned %v with Pending()=%v", ok, pending)
						}
						if ok {
							if m == nil {
								t.Error("successful Poll returned nil message")
							}
							got++
							continue
						}
						pr.P.SleepAs(stats.Compute, 200*sim.Nanosecond)
					}
					if ni.Pending() {
						t.Error("Pending still true after the whole batch was consumed")
					}
					if _, ok := ni.Poll(pr); ok {
						t.Error("Poll produced a message beyond the sent batch")
					}
				})
			if !idleDrained {
				t.Fatal("sender never finished draining")
			}
			if got := r.nodes[1].FragmentsReceived; got != count {
				t.Fatalf("received %d fragments, want %d (bounced messages lost?)", got, count)
			}
			if fifoVM {
				if r.nodes[0].Bounces == 0 {
					t.Error("fifo-buffered design never bounced despite the sleeping receiver")
				}
				if r.nodes[0].Retries == 0 {
					t.Error("fifo-buffered design never needed a software retry")
				}
			} else if r.nodes[0].Retries != 0 {
				t.Errorf("ring-buffered design charged %d software retries", r.nodes[0].Retries)
			}
		})
	}
}

// stormPlane is a fault plane that returns every data message injected by
// endpoint 0 on the bounce network, modeling a receiver refusing all
// traffic. Control messages pass untouched.
type stormPlane struct{}

func (stormPlane) Inject(now sim.Time, m *netsim.Message) netsim.FaultVerdict {
	if m.Src == 0 {
		return netsim.FaultVerdict{ForceBounce: true}
	}
	return netsim.FaultVerdict{}
}
func (stormPlane) Eject(now sim.Time, m *netsim.Message) netsim.FaultVerdict {
	return netsim.FaultVerdict{}
}
func (stormPlane) DropControl(now sim.Time, kind netsim.ControlKind, m *netsim.Message) bool {
	return false
}

// TestSpecConformanceBounceStorm drives every composed design point — the
// nine named kinds and the full cross product — through a sustained bounce
// storm: every injection from node 0 is returned to sender, forever. With
// a per-message deadline configured, every spec must degrade gracefully:
// the sends are abandoned with deadline-exceeded delivery errors, the
// network drains to quiescence, and the run terminates. No design may
// silently hang or spin past the deadline.
func TestSpecConformanceBounceStorm(t *testing.T) {
	type point struct {
		name string
		spec Spec
	}
	var points []point
	for _, k := range Kinds() {
		points = append(points, point{k.ShortName(), SpecFor(k)})
	}
	for _, s := range CrossSpecs() {
		points = append(points, point{s.Name(), s})
	}
	const (
		count    = 4
		payload  = 112
		deadline = 60 * sim.Microsecond
	)
	for _, pt := range points {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			netCfg := netsim.DefaultConfig()
			netCfg.Reliability = netsim.ReliabilityConfig{
				Enabled: true, AckTimeout: 4 * sim.Microsecond,
				TimeoutCap: 64 * sim.Microsecond, MaxAttempts: 16,
				Deadline: deadline,
			}
			r := newTwoNodesNet(t, pt.spec, 2, netCfg, nil)
			r.net.Endpoint(0).Fault = stormPlane{}
			senderDone := false
			r.run(t,
				func(pr *proc.Proc, ni NI) {
					defer func() { senderDone = true }()
					for i := 0; i < count; i++ {
						m := netsim.NewSized(0, 1, 1, payload)
						for spin := 0; !ni.CanSend(m); spin++ {
							if spin > 100000 {
								t.Error("CanSend never came true under the storm")
								return
							}
							if ni.NeedsRetry() {
								ni.RetryOne(pr)
							} else {
								pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
							}
						}
						ni.Send(pr, m)
					}
					// Every send must terminate in a delivery error: service
					// software bounce retries until the deadline abandons them.
					for spin := 0; len(r.net.Failures()) < count; spin++ {
						if spin > 100000 {
							t.Errorf("only %d/%d sends abandoned under the storm", len(r.net.Failures()), count)
							return
						}
						if ni.NeedsRetry() {
							ni.RetryOne(pr)
						} else {
							pr.P.SleepAs(stats.Buffering, 100*sim.Nanosecond)
						}
					}
				},
				func(pr *proc.Proc, ni NI) {
					for spin := 0; !senderDone; spin++ {
						if spin > 100000 {
							t.Error("receiver never released: sender stuck")
							return
						}
						if _, ok := ni.Poll(pr); ok {
							t.Error("storm delivered a message despite bouncing every injection")
						}
						pr.P.SleepAs(stats.Compute, 1*sim.Microsecond)
					}
				})
			if r.net.Delivered() != 0 {
				t.Errorf("%d messages delivered through a total bounce storm", r.net.Delivered())
			}
			if len(r.net.Failures()) != count {
				t.Fatalf("%d delivery errors, want %d", len(r.net.Failures()), count)
			}
			for _, e := range r.net.Failures() {
				if e.Reason != netsim.ReasonDeadline {
					t.Errorf("send abandoned for %q, want %q", e.Reason, netsim.ReasonDeadline)
				}
			}
			if r.nodes[0].ForcedBounces == 0 || r.nodes[0].Bounces == 0 {
				t.Errorf("storm produced no bounces: forced=%d bounces=%d",
					r.nodes[0].ForcedBounces, r.nodes[0].Bounces)
			}
			// Detection-or-drain: once every send is abandoned the network
			// must be quiescent — no stranded buffer, timer, or retry.
			if rep := r.net.QuiescenceReport(); rep != "" {
				t.Errorf("network not quiescent after the storm resolved:\n%s", rep)
			}
		})
	}
}

// TestCrossSpecCount pins the size of the swept design space: the valid
// cross product beyond the nine named points must stay large enough for
// cmd/designspace's acceptance floor (>= 12 specs).
func TestCrossSpecCount(t *testing.T) {
	cross := CrossSpecs()
	if len(cross) < 12 {
		t.Fatalf("only %d cross-product specs, want >= 12", len(cross))
	}
	seen := make(map[string]bool)
	for _, s := range cross {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
		if KindOf(s) != Custom {
			t.Errorf("%s duplicates a named kind", s.Name())
		}
		if seen[s.Name()] {
			t.Errorf("duplicate spec name %s", s.Name())
		}
		seen[s.Name()] = true
	}
	// And the named points must round-trip through their specs.
	for _, k := range Kinds() {
		if got := KindOf(SpecFor(k)); got != k {
			t.Errorf("SpecFor(%s) resolves to %v", k.ShortName(), got)
		}
		if SpecFor(k).Name() != k.ShortName() {
			t.Errorf("SpecFor(%s).Name() = %q", k.ShortName(), SpecFor(k).Name())
		}
	}
}
