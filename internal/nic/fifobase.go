package nic

import (
	"nisim/internal/mainmem"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// fifoBase is the machinery shared by the fifo-style NIs (NI_2w,
// NI_64w+Udma, NI_16w+Blkbuf): an SRAM-backed fifo window on the device,
// uncached status registers, and a receive queue that is physically the
// network's incoming flow-control buffers — which is why these designs are
// so sensitive to the flow-control buffer count (Figure 3a).
type fifoBase struct {
	env      *Env
	fifo     *mainmem.Memory // serialized NI SRAM behind the fifo window
	regs     *regsTarget
	recvQ    msgQueue
	bounced  msgQueue // returned-to-sender messages awaiting re-push
	recvCond *sim.Cond
}

func newFifoBase(env *Env) *fifoBase {
	f := &fifoBase{
		env:      env,
		fifo:     mainmem.New("ni-fifo", env.Cfg.NISRAM+env.Cfg.IOBridge, env.Eng),
		regs:     &regsTarget{latency: env.Cfg.NISRAM + env.Cfg.IOBridge},
		recvCond: sim.NewCond(env.Eng),
	}
	env.Bus.MapRange(RegBase, FifoBase, f.regs)
	env.Bus.MapRange(FifoBase, NIQSendBase, f.fifo)
	env.EP.OnAccept = func(m *netsim.Message) {
		// The message occupies its incoming flow-control buffer until the
		// processor pops it; ReleaseIn happens at pop time.
		f.recvQ.push(m)
		f.recvCond.Broadcast()
	}
	// Fifo NIs involve the processor in buffering (Table 2): a returned
	// message sits in its still-allocated outgoing buffer until the
	// software notices and re-pushes it.
	env.EP.OnBounce = func(m *netsim.Message) {
		f.bounced.push(m)
		f.recvCond.Broadcast()
	}
	return f
}

// retryOne re-sends the oldest returned message. The repush callback
// charges the processor the design's re-push cost; the time, and the
// injection, count as processor-involved buffering work. Callers must
// prefer consuming incoming messages over retrying (consume-first avoids
// livelock between mutually bouncing senders).
func (f *fifoBase) retryOne(pr *proc.Proc, repush func(m *netsim.Message)) {
	m := f.bounced.pop()
	f.env.Stats.Retries++
	prev := pr.P.Category
	pr.P.Category = stats.Buffering
	repush(m)
	pr.P.Category = prev
	f.env.EP.Inject(m)
}

// hasBounced reports whether returned messages await software service.
func (f *fifoBase) hasBounced() bool { return f.bounced.len() > 0 }

// pending reports whether a message is waiting.
func (f *fifoBase) pending() bool { return f.recvQ.len() > 0 }

// head returns the message at the fifo head without popping it.
func (f *fifoBase) head() *netsim.Message {
	if f.recvQ.len() == 0 {
		return nil
	}
	return f.recvQ.peek()
}

// pop removes the head message and frees its flow-control buffer.
func (f *fifoBase) pop() *netsim.Message {
	m := f.recvQ.pop()
	f.env.EP.ReleaseIn()
	return m
}

// waitForMessage parks the processor until a message is waiting. The idle
// time is charged to the compute category (it is communication wait, not an
// NI data-transfer or buffering cost).
func (f *fifoBase) waitForMessage(pr *proc.Proc) {
	for f.recvQ.len() == 0 {
		f.recvCond.WaitAs(pr.P, stats.Compute)
	}
}

// waitForMessageServicing is waitForMessage for NIs whose software must
// also re-push returned messages while it waits. Incoming messages take
// priority over retries.
func (f *fifoBase) waitForMessageServicing(pr *proc.Proc, repush func(m *netsim.Message)) {
	for {
		if f.recvQ.len() > 0 {
			return
		}
		if f.bounced.len() > 0 {
			f.retryOne(pr, repush)
			continue
		}
		f.recvCond.WaitAs(pr.P, stats.Compute)
	}
}

// recordRecv updates the NI-level fragment counters; application-message
// counters are maintained by the messaging layer on reassembly.
func recordRecv(env *Env, m *netsim.Message) {
	env.Stats.FragmentsReceived++
}
