package nic

import (
	"fmt"
	"sort"

	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/netsim"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// cni implements the three Coherent Network Interfaces. Processors and the
// NI communicate through memory-based queues managed with the lazy-pointer,
// message-valid-bit, and sense-reverse optimizations of Mukherjee et al.
// [29]: no per-message pointer bus traffic — the processor discovers new
// messages by reading the (cacheable) head block itself, and the NI
// discovers new sends from a doorbell plus coherent fetches.
//
// The three designs differ in where queue storage lives:
//
//   - CNI_0Q_m (StarT-JR-like): queues homed in main memory, nothing cached
//     on the NI. Incoming messages are deposited with coherent
//     write-invalidate block transfers; the processor reads them from DRAM.
//   - CNI_512Q: 512-block queues homed in NI DRAM. Incoming messages are
//     written locally (one address-only invalidate per block on the bus);
//     the processor reads them straight from the NI.
//   - CNI_32Q_m: queues homed in main memory but cached in two 32-block NI
//     SRAM caches. Receive-cache overflow bypasses straight to memory so the
//     queue head stays cache-resident; consumed ("dead") messages are freed
//     without writeback; the forced head update on flush keeps the dead-set
//     known.
//
// CNI_512Q and CNI_32Q_m also prefetch send blocks: observing the
// processor's request-for-exclusive on block k+1 of a message triggers a
// fetch of block k, overlapping message creation with transfer.
type cni struct {
	env  *Env
	kind Kind

	homeAtNI bool // queue storage homed on the NI (CNI_512Q)
	niCache  bool // NI SRAM caches over memory-homed queues (CNI_32Q_m)
	prefetch bool
	throttle bool

	sendRing, recvRing cniRing
	sendPtr, recvPtr   membus.Addr // cacheable head/tail pointer blocks

	qmem               *mainmem.Memory // NI-homed queue storage (CNI_512Q)
	sendSRAM, recvSRAM *mainmem.Memory // CNI_32Q_m NI caches

	// Send side.
	sendQ       []*sendEntry
	sendWork    *sim.Cond
	sendSpace   *sim.Cond // ring space freed
	sendDrain   *sim.Cond // NI send-cache space freed
	outFree     *sim.Cond // network out-buffer freed
	fetched     map[int64]bool
	cacheLiveS  int64 // live blocks in the NI send cache
	composeTail int64 // logical tail reserved by in-progress composes
	doorbelled  int64 // logical tail covered by doorbells

	// Receive side.
	acceptQ     []*netsim.Message
	recvWork    *sim.Cond
	deliverable []*recvEntry
	recvCond    *sim.Cond
	consumeCond *sim.Cond
	liveRecv    map[int64]bool // logical recv blocks resident in the NI cache
	cacheLiveR  int64          // NI's view of occupied receive-cache blocks
	unconsumed  int64          // blocks accepted into the receive queue, not yet consumed

	// Send throttling (CNI_32Q_m+Throttle): a software credit scheme that
	// keeps, per destination, no more unconsumed blocks outstanding than the
	// receiver's NI cache holds. outstanding is the sender-side ledger;
	// consume at the receiver returns the credit via peerFn.
	outstanding  map[int]int64
	throttleCond *sim.Cond

	// peerFn resolves the cni at another node. Set by the machine layer.
	peerFn func(node int) *cni
}

// cniRing is a queue of 64-byte blocks with monotonically increasing
// logical head/tail indices mapped onto a fixed physical ring.
type cniRing struct {
	base membus.Addr
	cap  int64 // capacity in blocks
	head int64 // first live block
	tail int64 // first free block
}

func (r *cniRing) addr(logical int64) membus.Addr {
	return r.base + membus.Addr(logical%r.cap)*membus.BlockSize
}

func (r *cniRing) contains(a membus.Addr) bool {
	return a >= r.base && a < r.base+membus.Addr(r.cap)*membus.BlockSize
}

// logicalAt maps a physical block address to the most recent logical index
// at or below limit-1 that aliases it.
func (r *cniRing) logicalAt(a membus.Addr, limit int64) int64 {
	idx := int64(a-r.base) / membus.BlockSize
	last := limit - 1
	return last - ((last-idx)%r.cap+r.cap)%r.cap
}

type sendEntry struct {
	m     *netsim.Message
	start int64
	nb    int64
}

type recvEntry struct {
	m       *netsim.Message
	start   int64
	nb      int64
	inCache bool // resident in the CNI_32Q_m receive cache
}

func newCNI(env *Env, kind Kind) *cni {
	c := &cni{
		env:         env,
		kind:        kind,
		homeAtNI:    kind == CNI512Q,
		niCache:     kind == CNI32Qm || kind == CNI32QmThrottle,
		prefetch:    (kind == CNI512Q || kind == CNI32Qm || kind == CNI32QmThrottle) && !env.Cfg.DisableCNIPrefetch,
		throttle:    kind == CNI32QmThrottle,
		sendWork:    sim.NewCond(env.Eng),
		sendSpace:   sim.NewCond(env.Eng),
		sendDrain:   sim.NewCond(env.Eng),
		outFree:     sim.NewCond(env.Eng),
		recvWork:    sim.NewCond(env.Eng),
		recvCond:    sim.NewCond(env.Eng),
		consumeCond: sim.NewCond(env.Eng),
		fetched:     make(map[int64]bool),
		liveRecv:    make(map[int64]bool),
	}
	if c.throttle {
		c.outstanding = make(map[int]int64)
		c.throttleCond = sim.NewCond(env.Eng)
	}
	if c.homeAtNI {
		c.sendRing = cniRing{base: NIQSendBase, cap: int64(env.Cfg.CNIQueueBlocks)}
		c.recvRing = cniRing{base: NIQRecvBase, cap: int64(env.Cfg.CNIQueueBlocks)}
		c.sendPtr = QmPtrBase
		c.recvPtr = QmPtrBase + membus.BlockSize
		c.qmem = mainmem.New("cni-qmem", env.Cfg.NIDRAM, env.Eng)
		env.Bus.MapRange(NIQSendBase, DeviceLimit, c.qmem)
	} else {
		c.sendRing = cniRing{base: QmSendBase, cap: int64(env.Cfg.QmSendQueueBlocks)}
		c.recvRing = cniRing{base: QmRecvBase, cap: int64(env.Cfg.QmQueueBlocks)}
		c.sendPtr = QmPtrBase
		c.recvPtr = QmPtrBase + membus.BlockSize
	}
	if c.niCache {
		c.sendSRAM = mainmem.New("cni-send-cache", env.Cfg.NISRAM, env.Eng)
		c.recvSRAM = mainmem.New("cni-recv-cache", env.Cfg.NISRAM, env.Eng)
	}
	env.Bus.AttachSnooper(c)
	env.EP.OnAccept = func(m *netsim.Message) {
		c.acceptQ = append(c.acceptQ, m)
		c.recvWork.Broadcast()
	}
	env.EP.OnOutFree = func() { c.outFree.Broadcast() }
	env.Eng.Spawn(fmt.Sprintf("cni-send-%d", env.ID), c.sendEngine)
	env.Eng.Spawn(fmt.Sprintf("cni-recv-%d", env.ID), c.recvEngine)
	return c
}

// Kind implements NI.
func (c *cni) Kind() Kind { return c.kind }

// SnooperName implements membus.Snooper.
func (c *cni) SnooperName() string { return c.kind.ShortName() }

// Snoop implements membus.Snooper: supply receive-cache blocks to the
// processor, and watch the send queue for prefetch opportunities.
func (c *cni) Snoop(t *membus.Transaction) membus.SnoopReply {
	switch t.Kind {
	case membus.GetS:
		if c.niCache && c.recvRing.contains(t.Addr) {
			li := c.recvRing.logicalAt(t.Addr, c.recvRing.tail)
			if c.liveRecv[li] {
				// CNI-cache-to-processor-cache transfer: the NI keeps an
				// owned copy until the message dies.
				return membus.SnoopReply{Owner: true, Shared: true, SupplyLatency: c.recvSRAM.Claim()}
			}
		}
	case membus.GetX, membus.Upgrade:
		if c.sendRing.contains(t.Addr) {
			c.snoopCompose(t.Addr)
		}
	}
	return membus.SnoopReply{}
}

// snoopCompose reacts to the processor taking exclusive ownership of a send
// queue block: drop any stale NI copy (fetched too early ⇒ refetch later)
// and, with prefetch enabled, start fetching the previous block of the
// message being composed.
func (c *cni) snoopCompose(a membus.Addr) {
	li := c.sendRing.logicalAt(a, c.composeTail)
	if c.fetched[li] {
		delete(c.fetched, li)
		c.env.Stats.Refetches++
	}
	if !c.prefetch {
		return
	}
	prev := li - 1
	if prev < c.doorbelled || c.fetched[prev] {
		return
	}
	c.fetched[prev] = true
	c.env.Stats.Prefetches++
	c.env.Bus.Issue(&membus.Transaction{
		Kind:      membus.GetS,
		Addr:      c.sendRing.addr(prev),
		Requester: c,
		Done: func() {
			if c.niCache {
				c.sendSRAM.Claim()
			} else if c.homeAtNI {
				c.qmem.Claim()
			}
		},
	})
}

// Send implements NI: the processor composes the message into cacheable
// queue memory and rings the doorbell; the NI manages the transfer from
// there, so the processor is released immediately (modulo throttling).
func (c *cni) Send(pr *proc.Proc, m *netsim.Message) {
	nb := int64(blocksFor(m))
	if c.throttle {
		c.throttleWait(pr, m, nb)
	}
	if c.sendRing.tail+nb-c.sendRing.head > c.sendRing.cap {
		c.env.Stats.SendBlocked++
		for c.sendRing.tail+nb-c.sendRing.head > c.sendRing.cap {
			c.sendSpace.WaitAs(pr.P, stats.Buffering)
		}
	}
	start := c.sendRing.tail
	c.sendRing.tail += nb
	c.composeTail = c.sendRing.tail

	remaining := m.Size()
	for i := int64(0); i < nb; i++ {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.CachedWrite(stats.Transfer, c.sendRing.addr(start+i), chunk)
		remaining -= chunk
	}
	// Lazy tail-pointer update (cacheable) — the doorbell.
	pr.CachedWrite(stats.Transfer, c.sendPtr, 8)
	c.doorbelled = c.sendRing.tail
	c.sendQ = append(c.sendQ, &sendEntry{m: m, start: start, nb: nb})
	c.sendWork.Broadcast()
}

// throttleWait models CNI_32Q_m+Throttle: a software credit scheme holds
// the sender until the receiver's NI cache has room for the message, so the
// receiver keeps consuming from fast NI SRAM instead of overflowing to main
// memory. Credits return when the receiver consumes (see consume).
func (c *cni) throttleWait(pr *proc.Proc, m *netsim.Message, nb int64) {
	for c.outstanding[m.Dst]+nb > int64(c.env.Cfg.CNICacheBlocks) {
		c.throttleCond.WaitAs(pr.P, stats.Buffering)
	}
	c.outstanding[m.Dst] += nb
}

// SetPeerLookup wires cross-node visibility for the throttled variant.
func (c *cni) SetPeerLookup(fn func(node int) NI) {
	c.peerFn = func(node int) *cni {
		if p, ok := fn(node).(*cni); ok {
			return p
		}
		if mc, ok := fn(node).(*memChannel); ok {
			return mc.recv
		}
		return nil
	}
}

// sendEngine is the NI-side send state machine: fetch message blocks from
// the processor's cache (or memory) with coherent reads, then inject.
func (c *cni) sendEngine(p *sim.Process) {
	for {
		for len(c.sendQ) == 0 {
			c.sendWork.Wait(p)
		}
		e := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		for i := int64(0); i < e.nb; i++ {
			li := e.start + i
			if c.fetched[li] {
				delete(c.fetched, li)
				continue
			}
			if c.niCache {
				for c.cacheLiveS+1 > int64(c.env.Cfg.CNICacheBlocks) {
					c.sendDrain.Wait(p)
				}
				c.cacheLiveS++
			}
			c.env.Bus.IssueAndWait(p, &membus.Transaction{
				Kind:      membus.GetS,
				Addr:      c.sendRing.addr(li),
				Requester: c,
			})
			// The local store of the fetched block lands in the device's
			// write buffer; reads bypass it, so it neither stalls the engine
			// nor delays subsequent reads. Only the SRAM caches, being
			// single-ported, charge their occupancy.
			if c.niCache {
				c.sendSRAM.Claim()
			}
		}
		for !c.env.EP.TryAcquireOut() {
			c.outFree.Wait(p)
		}
		c.env.EP.Inject(e.m)
		c.sendRing.head = e.start + e.nb
		if c.niCache {
			c.cacheLiveS -= e.nb
			if c.cacheLiveS < 0 {
				c.cacheLiveS = 0
			}
			c.sendDrain.Broadcast()
		}
		c.sendSpace.Broadcast()
	}
}

// recvEngine is the NI-side receive state machine: move each accepted
// message from its incoming flow-control buffer into the receive queue.
func (c *cni) recvEngine(p *sim.Process) {
	for {
		for len(c.acceptQ) == 0 {
			c.recvWork.Wait(p)
		}
		m := c.acceptQ[0]
		c.acceptQ = c.acceptQ[1:]
		nb := int64(blocksFor(m))
		for c.recvRing.tail+nb-c.recvRing.head > c.recvRing.cap {
			// Queue full: hold the flow-control buffer (backpressure).
			c.consumeCond.Wait(p)
		}
		start := c.recvRing.tail
		c.recvRing.tail += nb
		c.unconsumed += nb

		if c.niCache && c.env.Cfg.DisableCNIBypass {
			// Ablation: no bypass — hold the flow-control buffer until the
			// receive cache has room (backpressure instead of steering
			// through memory).
			for c.cacheLiveR+nb > int64(c.env.Cfg.CNICacheBlocks) {
				c.reclaimDead()
				if c.cacheLiveR+nb <= int64(c.env.Cfg.CNICacheBlocks) {
					break
				}
				c.consumeCond.Wait(p)
			}
		}
		inCache := false
		switch {
		case c.niCache && c.cacheLiveR+nb <= int64(c.env.Cfg.CNICacheBlocks):
			// Write into the NI receive cache; invalidate stale processor
			// copies with address-only transactions.
			inCache = true
			for i := int64(0); i < nb; i++ {
				c.recvSRAM.Claim() // posted SRAM write
				c.env.Bus.IssueAndWait(p, &membus.Transaction{
					Kind:      membus.Invalidate,
					Addr:      c.recvRing.addr(start + i),
					Requester: c,
				})
				c.liveRecv[start+i] = true
			}
			c.cacheLiveR += nb
		case c.niCache:
			// Receive cache full of pending messages: bypass to main memory
			// so the head stays readable via fast cache-to-cache transfers.
			// The forced head update (a coherent read of the head-pointer
			// block, supplied from the processor cache) is the moment the NI
			// learns which cached messages are dead and can reclaim their
			// blocks without writeback.
			c.env.Stats.NIBypasses++
			c.env.Bus.IssueAndWait(p, &membus.Transaction{
				Kind:      membus.GetS,
				Addr:      c.recvPtr,
				Requester: c,
			})
			c.reclaimDead()
			for i := int64(0); i < nb; i++ {
				c.env.Bus.IssueAndWait(p, &membus.Transaction{
					Kind:      membus.WriteInvalidate,
					Addr:      c.recvRing.addr(start + i),
					Requester: c,
				})
			}
		case c.homeAtNI:
			// CNI_512Q: local write into NI DRAM (buffered, read-bypassed)
			// plus an address-only invalidate per block.
			for i := int64(0); i < nb; i++ {
				c.env.Bus.IssueAndWait(p, &membus.Transaction{
					Kind:      membus.Invalidate,
					Addr:      c.recvRing.addr(start + i),
					Requester: c,
				})
			}
		default:
			// CNI_0Q_m: coherent write-invalidate block transfers into main
			// memory.
			for i := int64(0); i < nb; i++ {
				c.env.Bus.IssueAndWait(p, &membus.Transaction{
					Kind:      membus.WriteInvalidate,
					Addr:      c.recvRing.addr(start + i),
					Requester: c,
				})
			}
		}
		c.env.EP.ReleaseIn()
		c.deliverable = append(c.deliverable, &recvEntry{m: m, start: start, nb: nb, inCache: inCache})
		c.recvCond.Broadcast()
	}
}

// Poll implements NI: a sense-reverse poll is a cached read of the head
// block — a 1-cycle cache hit while nothing has arrived, a coherent fetch
// (from the NI cache, NI memory, or DRAM, depending on the design) when the
// NI has deposited a message there.
func (c *cni) Poll(pr *proc.Proc) (*netsim.Message, bool) {
	if len(c.deliverable) == 0 {
		// Unsuccessful poll: a cache-resident head read, so the monitoring
		// cost of a coherent NI is a 1-cycle hit rather than an uncached
		// bus round trip.
		pr.CachedRead(stats.Buffering, c.recvRing.addr(c.recvRing.head), 8)
		return nil, false
	}
	pr.CachedRead(stats.Transfer, c.recvRing.addr(c.recvRing.head), 8)
	return c.consume(pr), true
}

// Recv implements NI.
func (c *cni) Recv(pr *proc.Proc) *netsim.Message {
	for len(c.deliverable) == 0 {
		c.recvCond.WaitAs(pr.P, stats.Compute)
	}
	pr.CachedRead(stats.Transfer, c.recvRing.addr(c.recvRing.head), 8)
	return c.consume(pr)
}

func (c *cni) consume(pr *proc.Proc) *netsim.Message {
	e := c.deliverable[0]
	c.deliverable = c.deliverable[1:]
	m := e.m

	remaining := m.Size()
	for i := int64(0); i < e.nb; i++ {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.CachedRead(stats.Transfer, c.recvRing.addr(e.start+i), chunk)
		remaining -= chunk
	}
	// Copy payload into the user buffer: one store per 8 bytes.
	pr.Work(stats.Transfer, int64((m.Size()+7)/8))
	// Lazy head-pointer update (cacheable).
	pr.CachedWrite(stats.Transfer, c.recvPtr, 8)

	c.recvRing.head = e.start + e.nb
	c.unconsumed -= e.nb
	if c.peerFn != nil {
		if sender := c.peerFn(m.Src); sender != nil && sender.throttle {
			sender.outstanding[c.env.ID] -= e.nb
			sender.throttleCond.Broadcast()
			// The credit return carries a head update, so the NI can
			// reclaim dead blocks without waiting for a flush.
			c.reclaimDead()
		}
	}
	if e.inCache {
		c.env.Stats.NICacheHits += e.nb
	} else if c.niCache {
		c.env.Stats.NICacheMisses += e.nb
	}
	c.consumeCond.Broadcast()
	recordRecv(c.env, m)
	return m
}

// reclaimDead frees receive-cache blocks below the (just learned) head —
// dead-message suppression: the blocks leave without a writeback because
// the home copy no longer matters. Under the lazy-pointer optimization this
// happens only when a flush forces a head update, which is why an
// overloaded receive cache stays full of dead messages and keeps bypassing.
func (c *cni) reclaimDead() {
	// Collect and sort the dead blocks before acting: under the
	// DisableDeadSuppress ablation each one issues a bus writeback, and
	// map-iteration order must not pick the bus schedule.
	dead := make([]int64, 0, len(c.liveRecv))
	for li := range c.liveRecv {
		if li < c.recvRing.head {
			dead = append(dead, li)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, li := range dead {
		delete(c.liveRecv, li)
		c.cacheLiveR--
		if c.env.Cfg.DisableDeadSuppress {
			// Ablation: without dead-message suppression each reclaimed
			// block is written back to its main-memory home.
			c.env.Bus.Issue(&membus.Transaction{
				Kind:      membus.Writeback,
				Addr:      c.recvRing.addr(li),
				Requester: c,
			})
		}
	}
}

// Pending implements NI.
func (c *cni) Pending() bool { return len(c.deliverable) > 0 }

// NeedsRetry implements NI: CNI buffering never involves the processor;
// bounced messages are retried by the NI itself.
func (c *cni) NeedsRetry() bool { return false }

// RetryOne implements NI (no-op; see NeedsRetry).
func (c *cni) RetryOne(pr *proc.Proc) {}

// Idle implements NI.
func (c *cni) Idle() bool { return len(c.sendQ) == 0 }

// memChannel is the Memory Channel-like hybrid: a block-buffer send
// interface with a StarT-JR-style coherent, memory-buffered receive
// interface. Unlike the AP3000's fifo protocol, the Memory Channel send
// side is reflective memory: stores to a mapped page stream to the NI
// without status-register checks, which is why the paper finds its send
// performance almost identical to the StarT-JR-like NI's (§6.1.1).
type memChannel struct {
	env  *Env
	send *blkbuf
	recv *cni
}

func newMemChannel(env *Env) *memChannel {
	// Order matters: the blkbuf wires OnAccept first, then the cni
	// constructor overrides it — receive is the coherent side.
	send := newBlkbuf(env)
	recv := newCNI(env, StarTJR)
	// Memory Channel buffering does not involve the processor (Table 2):
	// returned messages are retried by the NI, not the software, so undo
	// the blkbuf's bounce wiring.
	env.EP.OnBounce = nil
	return &memChannel{env: env, send: send, recv: recv}
}

// Kind implements NI.
func (mc *memChannel) Kind() Kind { return MemoryChannel }

// mcSendCycles is the small fixed software cost of a reflective-memory
// send (header build, page-table-mapped window selection).
const mcSendCycles = 30

// Send implements NI: fill the block buffer and block-store each 64-byte
// chunk into the mapped send window.
func (mc *memChannel) Send(pr *proc.Proc, m *netsim.Message) {
	pr.Work(stats.Transfer, mcSendCycles)
	for !mc.env.EP.TryAcquireOut() {
		mc.env.Stats.SendBlocked++
		mc.env.EP.WaitOut(pr.P)
	}
	remaining := m.Size()
	for remaining > 0 {
		chunk := remaining
		if chunk > membus.BlockSize {
			chunk = membus.BlockSize
		}
		pr.Work(stats.Transfer, int64((chunk+7)/8))
		pr.BlockWrite(stats.Transfer, FifoBase, mc.env.Cfg.BlockBufCycles)
		remaining -= chunk
	}
	mc.env.EP.Inject(m)
}

// Poll implements NI via the coherent receive interface.
func (mc *memChannel) Poll(pr *proc.Proc) (*netsim.Message, bool) { return mc.recv.Poll(pr) }

// Recv implements NI.
func (mc *memChannel) Recv(pr *proc.Proc) *netsim.Message { return mc.recv.Recv(pr) }

// Pending implements NI.
func (mc *memChannel) Pending() bool { return mc.recv.Pending() }

// Idle implements NI.
func (mc *memChannel) Idle() bool { return true }

// NeedsRetry implements NI: the Memory Channel NI retries in hardware.
func (mc *memChannel) NeedsRetry() bool { return false }

// RetryOne implements NI (no-op; see NeedsRetry).
func (mc *memChannel) RetryOne(pr *proc.Proc) {}

// CanSend implements NI: the send queue must have ring space (and, for the
// throttled variant, the receiver must have credit).
func (c *cni) CanSend(m *netsim.Message) bool {
	nb := int64(blocksFor(m))
	if c.sendRing.tail+nb-c.sendRing.head > c.sendRing.cap {
		return false
	}
	if c.throttle && c.outstanding[m.Dst]+nb > int64(c.env.Cfg.CNICacheBlocks) {
		return false
	}
	return true
}

// CanSend implements NI via the block-buffer send side.
func (mc *memChannel) CanSend(m *netsim.Message) bool { return mc.send.CanSend(m) }
