package micro

import (
	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// LogP is a measured LogP-style characterization of one NI (§6.1 discusses
// the model and why the paper refrains from using it: the latency and
// overhead components do not capture the same thing for every NI — a
// CM-5-like NI does its data transfer inside the overhead term, a CNI
// inside the latency term. The measurement here makes that visible).
type LogP struct {
	Kind nic.Kind
	// L is the mean message delivery time from send start to handler
	// dispatch, for unloaded point-to-point traffic, minus the send
	// overhead — the "everything the processor does not see" term.
	L sim.Time
	// Os and Or are the sender's and receiver's processor occupancy per
	// message (the time the processor spends on transfer work).
	Os, Or sim.Time
	// G is the gap: the steady-state time per message under streaming (the
	// reciprocal of small-message throughput).
	G sim.Time
}

// LogPOf measures the LogP parameters for an NI at the given payload size.
func LogPOf(kind nic.Kind, payload int) LogP {
	const (
		paced  = 120 // paced messages for L/o (no queuing)
		warmup = 40
	)
	cfg := machine.DefaultConfig(kind, 8)
	cfg.Nodes = 2
	if kind == nic.UDMA {
		cfg.NI.UDMAThresholdBytes = 0
	}
	m := machine.New(cfg)

	const h = 1
	received := 0
	var delivery sim.Time
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			received++
			if received > warmup {
				delivery += msg.ArriveTime - msg.SendTime
			}
		})
	}

	var sendT0, sendT1, recvT0, recvT1 sim.Time
	var sent int
	st := m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			// Paced sends: enough compute between messages that neither the
			// NI nor the receiver queues.
			n.Proc.Compute(1000)
			sendT0 = n.Proc.Stats.TimeIn[stats.Transfer]
			for i := 0; i < warmup+paced; i++ {
				n.EP.Send(1, h, payload, 0)
				if i == warmup-1 {
					sendT0 = n.Proc.Stats.TimeIn[stats.Transfer]
				}
				sent++
				n.Proc.Compute(20000)
			}
			sendT1 = n.Proc.Stats.TimeIn[stats.Transfer]
			n.Barrier()
			return
		}
		n.EP.WaitUntil(func() bool { return received == warmup+paced })
		// Receiver occupancy is measured over the same message window.
		recvT1 = n.Proc.Stats.TimeIn[stats.Transfer]
		n.Barrier()
	})
	_ = st
	recvT0 = recvT1 * sim.Time(warmup) / sim.Time(warmup+paced)

	os := (sendT1 - sendT0) / sim.Time(paced)
	or := (recvT1 - recvT0) / sim.Time(paced)
	meanDelivery := delivery / sim.Time(paced)
	l := meanDelivery - os
	if l < 0 {
		l = 0
	}

	// Gap: steady-state streaming rate.
	bwMB := Bandwidth(kind, 8, payload, 300)
	var g sim.Time
	if bwMB > 0 {
		bytesPerMsg := float64(payload + 8)
		g = sim.Time(bytesPerMsg / (bwMB * 1e6) * float64(sim.Second))
	}

	return LogP{Kind: kind, L: l, Os: os, Or: or, G: g}
}
