package micro

import (
	"testing"

	"nisim/internal/nic"
	"nisim/internal/sim"
)

// These tests assert the paper's qualitative Table 5 claims (§6.1). They use
// reduced iteration counts; the full-scale numbers live in EXPERIMENTS.md.

func rtt(t *testing.T, k nic.Kind, payload int) sim.Time {
	t.Helper()
	return RoundTrip(k, 8, payload, 550, 25)
}

func bw(t *testing.T, k nic.Kind, payload int) float64 {
	t.Helper()
	n := 120
	if payload >= 4096 {
		n = 30
	}
	return Bandwidth(k, 8, payload, n)
}

func TestCNI32QmHasBestLatency(t *testing.T) {
	best := rtt(t, nic.CNI32Qm, 8)
	for _, k := range nic.PaperSeven() {
		if k == nic.CNI32Qm {
			continue
		}
		if other := rtt(t, k, 8); other < best {
			t.Errorf("%v (%.2fus) beats CNI_32Qm (%.2fus) at 8B", k, other.Microseconds(), best.Microseconds())
		}
	}
}

func TestUdmaWorseThanCM5OnlyBelowBreakeven(t *testing.T) {
	// §6.1.1: the Udma-based NI is worse than the CM-5-like NI for small
	// payloads (initiation overhead) but substantially better for large.
	if u, c := rtt(t, nic.UDMA, 8), rtt(t, nic.CM5, 8); u <= c {
		t.Errorf("UDMA (%.2f) not worse than CM-5 (%.2f) at 8B", u.Microseconds(), c.Microseconds())
	}
	if u, c := rtt(t, nic.UDMA, 256), rtt(t, nic.CM5, 256); u >= c {
		t.Errorf("UDMA (%.2f) not better than CM-5 (%.2f) at 256B", u.Microseconds(), c.Microseconds())
	}
}

func TestStarTJRvsAP3000Crossover(t *testing.T) {
	// §6.1.1: the Start-JR-like NI wins below the 64-byte block-buffer
	// size and loses beyond it.
	if s, a := rtt(t, nic.StarTJR, 8), rtt(t, nic.AP3000, 8); s >= a {
		t.Errorf("StarT-JR (%.2f) not better than AP3000 (%.2f) at 8B", s.Microseconds(), a.Microseconds())
	}
	if s, a := rtt(t, nic.StarTJR, 256), rtt(t, nic.AP3000, 256); s <= a {
		t.Errorf("StarT-JR (%.2f) not worse than AP3000 (%.2f) at 256B", s.Microseconds(), a.Microseconds())
	}
}

func TestMemoryChannelSendSideLikeStarTJR(t *testing.T) {
	// §6.1.1: the Memory Channel-like NI's round trip is almost the same
	// as the Start-JR-like NI's (within 15%).
	mc, sj := rtt(t, nic.MemoryChannel, 8), rtt(t, nic.StarTJR, 8)
	ratio := float64(mc) / float64(sj)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("MC/StarT-JR ratio %.2f at 8B, want ~1", ratio)
	}
}

func TestCNI512QBeatsStarTJRAtLargeSizes(t *testing.T) {
	// §6.1.1: CNI_512Q outperforms the Start-JR-like NI (prefetch and
	// direct NI-to-cache steering), clearest beyond one block.
	if q, s := rtt(t, nic.CNI512Q, 256), rtt(t, nic.StarTJR, 256); q >= s {
		t.Errorf("CNI_512Q (%.2f) not better than StarT-JR (%.2f) at 256B", q.Microseconds(), s.Microseconds())
	}
}

func TestCM5HasWorstBandwidth(t *testing.T) {
	worst := bw(t, nic.CM5, 4096)
	for _, k := range []nic.Kind{nic.AP3000, nic.StarTJR, nic.MemoryChannel, nic.CNI512Q, nic.CNI32Qm} {
		if other := bw(t, k, 4096); other < worst {
			t.Errorf("%v (%.0f MB/s) below CM-5 (%.0f MB/s) at 4096B", k, other, worst)
		}
	}
}

func TestAP3000BandwidthBeatsStarTJR(t *testing.T) {
	// §6.1.2: the AP3000-like NI offers significantly greater bandwidth
	// than the Start-JR-like NI (fast NI SRAM vs. main memory).
	if a, s := bw(t, nic.AP3000, 4096), bw(t, nic.StarTJR, 4096); a <= s {
		t.Errorf("AP3000 (%.0f) not above StarT-JR (%.0f) at 4096B", a, s)
	}
}

func TestThrottlingRaisesCNI32QmBandwidth(t *testing.T) {
	// §6.1.2: throttling the sender lets the receiver consume from the
	// fast NI cache, raising CNI_32Qm's large-message bandwidth above the
	// unthrottled case — and above every other NI.
	un, th := bw(t, nic.CNI32Qm, 4096), bw(t, nic.CNI32QmThrottle, 4096)
	if th <= un {
		t.Errorf("throttled bandwidth %.0f not above unthrottled %.0f", th, un)
	}
	for _, k := range nic.PaperSeven() {
		if other := bw(t, k, 4096); other > th {
			t.Errorf("%v (%.0f MB/s) above throttled CNI_32Qm (%.0f MB/s)", k, other, th)
		}
	}
}

func TestLatencyMonotoneInPayload(t *testing.T) {
	for _, k := range nic.PaperSeven() {
		prev := sim.Time(0)
		for _, p := range LatencyPayloads {
			v := rtt(t, k, p)
			if v <= prev {
				t.Errorf("%v: rtt not increasing with payload (%v at %dB after %v)", k, v, p, prev)
			}
			prev = v
		}
	}
}

func TestBandwidthIncreasesWithPayload(t *testing.T) {
	for _, k := range nic.PaperSeven() {
		small, large := bw(t, k, 8), bw(t, k, 4096)
		if large <= small {
			t.Errorf("%v: bandwidth %.0f at 4096B not above %.0f at 8B", k, large, small)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	rows := Table5(true)
	if len(rows) != 8 {
		t.Fatalf("Table5 rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		for _, p := range BandwidthPayloads {
			if r.BandwidthMB[p] <= 0 {
				t.Errorf("%v: no bandwidth at %dB", r.Kind, p)
			}
		}
	}
}
