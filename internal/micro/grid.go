// Grid definitions: the microbenchmark experiments expressed as sweep
// jobs, the single source of truth shared by the cmd drivers, the bench
// harness, and cmd/benchdump. Each job is one independent simulation; the
// paired assembly helpers rebuild the typed rows from the orchestrator's
// ordered results.
package micro

import (
	"fmt"
	"strings"

	"nisim/internal/nic"
	"nisim/internal/sweep"
)

// Table5Spec parameterizes a Table 5 grid: which NIs, which payload
// columns, and the iteration counts. StandardSpec reproduces the paper's
// table; reduced specs drive the bench harness and the determinism
// regression test.
type Table5Spec struct {
	Kinds       []nic.Kind
	LatPayloads []int
	BwPayloads  []int
	// Warmup and Rounds control the latency microbenchmark; Msgs is the
	// bandwidth message count (quartered at >= 4096 B payloads, as the
	// serial code always did).
	Warmup, Rounds, Msgs int
}

// StandardSpec returns the paper's full Table 5 grid (seven NIs plus the
// throttled CNI_32Q_m, which has no latency column).
func StandardSpec(quick bool) Table5Spec {
	s := Table5Spec{
		Kinds:       append(nic.PaperSeven(), nic.CNI32QmThrottle),
		LatPayloads: LatencyPayloads,
		BwPayloads:  BandwidthPayloads,
		// Warmup must be long enough that the CNI queue rings wrap, so the
		// compose path runs in its steady (cache-warm) state.
		Warmup: 600, Rounds: 100, Msgs: 400,
	}
	if quick {
		s.Warmup, s.Rounds, s.Msgs = 550, 30, 150
	}
	return s
}

// Jobs returns one sweep job per Table 5 cell — latency cells first, then
// bandwidth cells, per NI — in the deterministic order Rows expects.
func (s Table5Spec) Jobs() []sweep.Job {
	var jobs []sweep.Job
	for _, k := range s.Kinds {
		k := k
		if k != nic.CNI32QmThrottle {
			for _, p := range s.LatPayloads {
				p := p
				jobs = append(jobs, sweep.Job{
					ID: fmt.Sprintf("lat/%s/%dB", k.ShortName(), p),
					Config: map[string]string{
						"experiment": "table5", "metric": "latency",
						"ni": k.ShortName(), "bufs": "8", "payload": fmt.Sprint(p),
					},
					Run: func() sweep.Outcome {
						us := RoundTrip(k, 8, p, s.Warmup, s.Rounds).Microseconds()
						return sweep.Outcome{Metrics: map[string]float64{"rtt_us": us}}
					},
				})
			}
		}
		for _, p := range s.BwPayloads {
			p := p
			count := s.Msgs
			if p >= 4096 {
				count = s.Msgs / 4
			}
			jobs = append(jobs, sweep.Job{
				ID: fmt.Sprintf("bw/%s/%dB", k.ShortName(), p),
				Config: map[string]string{
					"experiment": "table5", "metric": "bandwidth",
					"ni": k.ShortName(), "bufs": "8", "payload": fmt.Sprint(p),
				},
				Run: func() sweep.Outcome {
					mb := Bandwidth(k, 8, p, count)
					return sweep.Outcome{Metrics: map[string]float64{"bw_mbps": mb}}
				},
			})
		}
	}
	return jobs
}

// Rows reassembles Table5Row records from the results of running Jobs()
// through the orchestrator. Results must be in job order (which sweep.Run
// guarantees).
func (s Table5Spec) Rows(results []sweep.Result) []Table5Row {
	rows := make([]Table5Row, 0, len(s.Kinds))
	i := 0
	next := func() sweep.Result { r := results[i]; i++; return r }
	for _, k := range s.Kinds {
		row := Table5Row{Kind: k, LatencyUS: map[int]float64{}, BandwidthMB: map[int]float64{}}
		if k != nic.CNI32QmThrottle {
			for _, p := range s.LatPayloads {
				row.LatencyUS[p] = next().Metrics["rtt_us"]
			}
		}
		for _, p := range s.BwPayloads {
			row.BandwidthMB[p] = next().Metrics["bw_mbps"]
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable5 renders Table 5 rows exactly as cmd/table5 prints them, so
// drivers and the determinism regression test share one rendering.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 5: round-trip latency (us) and bandwidth (MB/s), flow control buffers = 8")
	fmt.Fprintf(&b, "%-28s %7s %7s %7s | %5s %5s %5s %5s\n", "NI", "8B", "64B", "256B", "8B", "64B", "256B", "4096B")
	for _, r := range rows {
		lat := func(p int) string {
			if v, ok := r.LatencyUS[p]; ok && v > 0 {
				return fmt.Sprintf("%7.2f", v)
			}
			return fmt.Sprintf("%7s", "n/a")
		}
		fmt.Fprintf(&b, "%-28s %s %s %s | %5.0f %5.0f %5.0f %5.0f\n",
			r.Kind, lat(8), lat(64), lat(256),
			r.BandwidthMB[8], r.BandwidthMB[64], r.BandwidthMB[256], r.BandwidthMB[4096])
	}
	return b.String()
}

// LogPJobs returns one job per NI measuring the LogP-style decomposition
// at the given payload, with the four terms in nanoseconds as metrics.
func LogPJobs(payload int) []sweep.Job {
	var jobs []sweep.Job
	for _, k := range nic.PaperSeven() {
		k := k
		jobs = append(jobs, sweep.Job{
			ID: fmt.Sprintf("logp/%s/%dB", k.ShortName(), payload),
			Config: map[string]string{
				"experiment": "logp", "ni": k.ShortName(), "payload": fmt.Sprint(payload),
			},
			Run: func() sweep.Outcome {
				lp := LogPOf(k, payload)
				return sweep.Outcome{Metrics: map[string]float64{
					"L_ns":      lp.L.Nanoseconds(),
					"o_send_ns": lp.Os.Nanoseconds(),
					"o_recv_ns": lp.Or.Nanoseconds(),
					"gap_ns":    lp.G.Nanoseconds(),
				}}
			},
		})
	}
	return jobs
}
