package micro

import (
	"testing"

	"nisim/internal/nic"
)

func TestLogPShowsProcessorInvolvementSplit(t *testing.T) {
	// The paper's §6.1 point: processor-managed NIs carry their data
	// transfer in the overhead terms; NI-managed designs in L. So the
	// CM-5-like NI's send overhead must dwarf a CNI's.
	cm5 := LogPOf(nic.CM5, 64)
	cni := LogPOf(nic.CNI32Qm, 64)
	if cm5.Os < 2*cni.Os {
		t.Errorf("CM-5 o_send (%v) not clearly above CNI_32Qm's (%v)", cm5.Os, cni.Os)
	}
	if cm5.G <= cni.G {
		t.Errorf("CM-5 gap (%v) not above CNI_32Qm's (%v)", cm5.G, cni.G)
	}
}

func TestLogPComponentsPositive(t *testing.T) {
	for _, k := range []nic.Kind{nic.CM5, nic.AP3000, nic.CNI32Qm} {
		lp := LogPOf(k, 64)
		if lp.Os <= 0 || lp.Or <= 0 || lp.G <= 0 {
			t.Errorf("%v: non-positive LogP components %+v", k, lp)
		}
	}
}
