// Package micro implements the paper's two microbenchmarks (§6.1):
// process-to-process round-trip latency and process-to-process bandwidth,
// the rows of Table 5.
package micro

import (
	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/sweep"
)

const (
	hPing = 1
	hPong = 2
	hData = 3
	hStop = 4
)

// RoundTrip measures the mean process-to-process round-trip latency for
// payload-byte messages between two nodes (warmup + rounds measured round
// trips; the paper's numbers include the messaging-layer copy overheads at
// both ends, as do ours). For the Udma-based NI the microbenchmark always
// uses the UDMA mechanism — the paper's Table 5 exposes its initiation
// overhead at small sizes; only the macrobenchmarks use the 96-byte
// fallback threshold.
func RoundTrip(kind nic.Kind, flowBufs, payload, warmup, rounds int) sim.Time {
	cfg := machine.DefaultConfig(kind, flowBufs)
	if kind == nic.UDMA {
		cfg.NI.UDMAThresholdBytes = 0
	}
	return RoundTripCfg(cfg, payload, warmup, rounds)
}

// RoundTripCfg is RoundTrip with an explicit machine configuration (used by
// the ablation studies). The node count is forced to two.
func RoundTripCfg(cfg machine.Config, payload, warmup, rounds int) sim.Time {
	cfg.Nodes = 2
	m := machine.New(cfg)

	pongs := 0
	for _, n := range m.Nodes {
		n.EP.Register(hPing, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			ep.Send(msg.Src, hPong, msg.PayloadLen, 0)
		})
		n.EP.Register(hPong, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			pongs++
		})
	}

	var total sim.Time
	m.Run(func(n *machine.Node) {
		if n.ID != 0 {
			n.Barrier()
			return
		}
		for i := 0; i < warmup+rounds; i++ {
			target := pongs + 1
			start := n.Proc.P.Now()
			n.EP.Send(1, hPing, payload, 0)
			n.EP.WaitUntil(func() bool { return pongs >= target })
			if i >= warmup {
				total += n.Proc.P.Now() - start
			}
		}
		n.Barrier()
	})
	return total / sim.Time(rounds)
}

// Bandwidth measures the process-to-process streaming bandwidth in
// megabytes per second: node 0 sends count messages of payload bytes to
// node 1 as fast as the NI allows; the clock stops when node 1 has consumed
// the last byte.
func Bandwidth(kind nic.Kind, flowBufs, payload, count int) float64 {
	cfg := machine.DefaultConfig(kind, flowBufs)
	if kind == nic.UDMA {
		cfg.NI.UDMAThresholdBytes = 0
	}
	return BandwidthCfg(cfg, payload, count)
}

// BandwidthCfg is Bandwidth with an explicit machine configuration (used by
// the ablation studies). The node count is forced to two.
func BandwidthCfg(cfg machine.Config, payload, count int) float64 {
	cfg.Nodes = 2
	m := machine.New(cfg)

	received := 0
	var firstSend, lastRecv sim.Time
	for _, n := range m.Nodes {
		n.EP.Register(hData, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			received++
			lastRecv = ep.Proc().P.Now()
		})
	}

	m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			firstSend = n.Proc.P.Now()
			for i := 0; i < count; i++ {
				n.EP.Send(1, hData, payload, 0)
			}
			n.Barrier()
			return
		}
		n.EP.WaitUntil(func() bool { return received >= count })
		n.Barrier()
	})

	elapsed := lastRecv - firstSend
	if elapsed <= 0 {
		return 0
	}
	bytes := float64(payload+netsim.HeaderBytes) * float64(count)
	return bytes / (float64(elapsed) / float64(sim.Second)) / 1e6
}

// Table5Row holds one NI's microbenchmark results.
type Table5Row struct {
	Kind        nic.Kind
	LatencyUS   map[int]float64 // payload bytes -> round-trip microseconds
	BandwidthMB map[int]float64 // payload bytes -> MB/s
}

// LatencyPayloads and BandwidthPayloads are the paper's Table 5 columns.
var (
	LatencyPayloads   = []int{8, 64, 256}
	BandwidthPayloads = []int{8, 64, 256, 4096}
)

// Table5 regenerates the full Table 5: seven NIs plus CNI_32Qm+Throttle
// (bandwidth only, as in the paper), with flow-control buffers = 8. It
// runs the standard grid serially; drivers that want parallelism submit
// StandardSpec's jobs through the orchestrator themselves.
func Table5(quick bool) []Table5Row {
	s := StandardSpec(quick)
	return s.Rows(sweep.RunSerial(s.Jobs()))
}
