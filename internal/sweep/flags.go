package sweep

import (
	"flag"
	"time"
)

// Options is the flag surface every experiment driver shares: how wide to
// fan out, how long one simulation may take, and where to write the
// machine-readable report. Register it on the command's FlagSet, parse,
// then pass Options.Config to Run and hand the rendered report to Emit.
type Options struct {
	Jobs    int
	Timeout time.Duration
	JSON    string
}

// Register installs the shared -jobs, -timeout, and -json flags.
func (o *Options) Register(fs *flag.FlagSet) {
	fs.IntVar(&o.Jobs, "jobs", 0, "parallel simulation workers (0 = one per CPU, 1 = serial)")
	fs.DurationVar(&o.Timeout, "timeout", 0, "per-simulation wall-clock budget, e.g. 90s (0 = none)")
	fs.StringVar(&o.JSON, "json", "", `also write machine-readable results to this file ("-" = stdout)`)
}

// Config converts the parsed flags into a sweep configuration.
func (o *Options) Config() Config {
	return Config{Jobs: o.Jobs, Timeout: o.Timeout}
}

// Sweep runs jobs under the parsed flags and wraps the results in a
// report, timing the whole fan-out.
func (o *Options) Sweep(experiment string, seed uint64, jobs []Job) ([]Result, *Report) {
	cfg := o.Config()
	start := time.Now()
	results := Run(cfg, jobs)
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	return results, NewReport(experiment, seed, cfg, results, wallMS)
}

// Emit writes the report when -json was given; without the flag it is a
// no-op, keeping the text tables the default interface.
func (o *Options) Emit(rep *Report) error {
	if o.JSON == "" {
		return nil
	}
	return rep.WriteFile(o.JSON)
}
