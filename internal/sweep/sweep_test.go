package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// gridOf builds n jobs whose metric encodes their index, with later jobs
// finishing sooner than earlier ones so parallel completion order inverts
// submission order.
func gridOf(n int, stagger time.Duration) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID:     fmt.Sprintf("job/%d", i),
			Config: map[string]string{"index": fmt.Sprint(i)},
			Run: func() Outcome {
				if stagger > 0 {
					time.Sleep(time.Duration(n-i) * stagger)
				}
				return Outcome{Metrics: map[string]float64{"value": float64(i)}}
			},
		}
	}
	return jobs
}

func TestResultsCollectedInSubmissionOrder(t *testing.T) {
	jobs := gridOf(16, 2*time.Millisecond)
	for _, workers := range []int{1, 4, 16} {
		results := Run(Config{Jobs: workers}, jobs)
		if len(results) != len(jobs) {
			t.Fatalf("jobs=%d: got %d results, want %d", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.ID != jobs[i].ID || r.Metrics["value"] != float64(i) {
				t.Errorf("jobs=%d: slot %d holds %q value %v, want %q value %d",
					workers, i, r.ID, r.Metrics["value"], jobs[i].ID, i)
			}
			if r.Err != "" {
				t.Errorf("jobs=%d: slot %d unexpected error %q", workers, i, r.Err)
			}
		}
	}
}

func TestSerialMatchesParallel(t *testing.T) {
	jobs := gridOf(12, time.Millisecond)
	serial := RunSerial(jobs)
	parallel := Run(Config{Jobs: 8}, gridOf(12, time.Millisecond))
	for i := range serial {
		if serial[i].ID != parallel[i].ID || serial[i].Metrics["value"] != parallel[i].Metrics["value"] {
			t.Fatalf("slot %d differs: serial %+v parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestPanicBecomesError(t *testing.T) {
	jobs := []Job{
		{ID: "ok", Run: func() Outcome { return Outcome{Metrics: map[string]float64{"v": 1}} }},
		{ID: "boom", Run: func() Outcome { panic("deadline missed") }},
		{ID: "also-ok", Run: func() Outcome { return Outcome{Metrics: map[string]float64{"v": 3}} }},
	}
	results := Run(Config{Jobs: 2}, jobs)
	if results[1].Err == "" || !strings.Contains(results[1].Err, "deadline missed") {
		t.Fatalf("panic not captured: %+v", results[1])
	}
	if results[0].Err != "" || results[2].Err != "" {
		t.Fatalf("panic leaked into sibling jobs: %+v %+v", results[0], results[2])
	}
}

func TestPerJobTimeout(t *testing.T) {
	jobs := []Job{
		{ID: "fast", Run: func() Outcome { return Outcome{Metrics: map[string]float64{"v": 1}} }},
		{ID: "slow", Run: func() Outcome {
			time.Sleep(2 * time.Second)
			return Outcome{Metrics: map[string]float64{"v": 2}}
		}},
	}
	results := Run(Config{Jobs: 2, Timeout: 30 * time.Millisecond}, jobs)
	if results[0].TimedOut || results[0].Err != "" {
		t.Fatalf("fast job should not time out: %+v", results[0])
	}
	if !results[1].TimedOut || !strings.Contains(results[1].Err, "timed out") {
		t.Fatalf("slow job should time out: %+v", results[1])
	}
}

func TestWorkersClamping(t *testing.T) {
	for _, tc := range []struct{ jobs, n, want int }{
		{1, 100, 1},
		{4, 2, 2},
		{-3, 5, 1}, // negative means NumCPU, clamped to at least 1
	} {
		got := Config{Jobs: tc.jobs}.Workers(tc.n)
		if tc.jobs > 0 && got != tc.want {
			t.Errorf("Workers(jobs=%d, n=%d) = %d, want %d", tc.jobs, tc.n, got, tc.want)
		}
		if got < 1 || got > max(tc.n, 1) {
			t.Errorf("Workers(jobs=%d, n=%d) = %d out of range", tc.jobs, tc.n, got)
		}
	}
}

// TestCanonicalReportIsWorkerCountInvariant is the schema-level half of
// the determinism guarantee: two reports for the same grid that differ
// only in worker count and wall-clock timings serialize to identical
// canonical bytes.
func TestCanonicalReportIsWorkerCountInvariant(t *testing.T) {
	mk := func(workers int, wall float64) *Report {
		results := []Result{
			{ID: "a", Config: map[string]string{"ni": "CM-5"}, Metrics: map[string]float64{"rtt_us": 3.25}, WallMS: wall},
			{ID: "b", Metrics: map[string]float64{"bw_mbps": 141}, WallMS: wall * 2},
		}
		return NewReport("table5", 0, Config{Jobs: workers}, results, wall*3)
	}
	serial, err1 := mk(1, 10.5).Canonical().MarshalIndentJSON()
	parallel, err2 := mk(8, 99.25).Canonical().MarshalIndentJSON()
	if err1 != nil || err2 != nil {
		t.Fatalf("marshal: %v %v", err1, err2)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("canonical reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	full, err := mk(8, 1).MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Contains(full, []byte(`"timing"`)) {
		t.Fatalf("full report lost its timing sidecar:\n%s", full)
	}
	if bytes.Contains(serial, []byte(`"timing"`)) {
		t.Fatalf("canonical report retains timing sidecar:\n%s", serial)
	}
}
