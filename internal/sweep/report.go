package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Schema names the machine-readable result format. Bump the version when a
// field changes meaning or disappears; adding optional fields is
// backward-compatible and does not require a bump.
const Schema = "nisim-sweep/v1"

// JobTiming is one job's host wall-clock cost.
type JobTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

// Timing is the report's host-side sidecar: everything that legitimately
// varies from run to run (worker count, wall-clock times, host shape)
// lives here and nowhere else, so stripping it (see Canonical) yields a
// byte-identical report for any worker count.
type Timing struct {
	Jobs      int         `json:"jobs"`
	NumCPU    int         `json:"num_cpu"`
	GoVersion string      `json:"go_version"`
	WallMS    float64     `json:"wall_ms"`
	// Speedup is this sweep's wall time relative to a serial (jobs=1) run
	// of the same grid, when the driver measured one (cmd/benchdump
	// -baseline).
	Speedup float64     `json:"speedup_vs_serial,omitempty"`
	PerJob  []JobTiming `json:"per_job,omitempty"`
}

// A Report is the versioned machine-readable record of one experiment
// sweep: the configuration grid and its metrics (deterministic for a given
// seed), plus the timing sidecar (host-dependent).
type Report struct {
	Schema     string   `json:"schema"`
	Experiment string   `json:"experiment"`
	// GitRev is the source revision the binary was run from, best-effort
	// (empty outside a git checkout).
	GitRev string `json:"git_rev,omitempty"`
	// Seed is the experiment's random seed, for experiments that take one
	// (the fault sweep); 0 means the workloads' built-in fixed seeds.
	Seed    uint64   `json:"seed"`
	Results []Result `json:"results"`
	Timing  *Timing  `json:"timing,omitempty"`
	// Baseline is the timing of a serial (jobs=1) run of the same grid,
	// present only when the driver measured one for a speedup comparison.
	Baseline *Timing `json:"baseline,omitempty"`
}

// NewReport wraps sweep results in a Report, hoisting per-job wall times
// into the timing sidecar. totalWallMS is the whole sweep's wall time
// (which is less than the per-job sum when workers ran in parallel).
func NewReport(experiment string, seed uint64, cfg Config, results []Result, totalWallMS float64) *Report {
	timing := &Timing{
		Jobs:      cfg.Workers(len(results)),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		WallMS:    totalWallMS,
	}
	for _, r := range results {
		timing.PerJob = append(timing.PerJob, JobTiming{ID: r.ID, WallMS: r.WallMS})
	}
	return &Report{
		Schema:     Schema,
		Experiment: experiment,
		GitRev:     GitRev(),
		Seed:       seed,
		Results:    results,
		Timing:     timing,
	}
}

// Canonical returns a copy of the report with the timing sidecar removed —
// the deterministic core that must be byte-identical between a serial and
// a parallel sweep of the same grid and seed. (Timed-out results are the
// one exception: a timeout depends on host speed by definition.)
func (r *Report) Canonical() *Report {
	c := *r
	c.Timing = nil
	c.Baseline = nil
	return &c
}

// MarshalIndentJSON renders the report as indented JSON with a trailing
// newline. Map-valued fields serialize with sorted keys (encoding/json's
// guarantee), so the bytes are a pure function of the report's content.
func (r *Report) MarshalIndentJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the report to w as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.MarshalIndentJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteFile writes the report to path; "-" means standard output.
func (r *Report) WriteFile(path string) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	b, err := r.MarshalIndentJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// GitRev returns the short hash of the checked-out revision (with a
// "+dirty" suffix when the worktree has local changes), or "" when the
// working directory is not a git checkout or git is unavailable.
func GitRev() string {
	rev, err := gitOutput("rev-parse", "--short", "HEAD")
	if err != nil || rev == "" {
		return ""
	}
	if status, err := gitOutput("status", "--porcelain"); err == nil && status != "" {
		rev += "+dirty"
	}
	return rev
}

func gitOutput(args ...string) (string, error) {
	out, err := exec.Command("git", args...).Output()
	if err != nil {
		return "", fmt.Errorf("git %s: %w", strings.Join(args, " "), err)
	}
	return strings.TrimSpace(string(out)), nil
}
