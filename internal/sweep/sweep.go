// Package sweep is the experiment orchestrator: it fans independent
// simulator configurations out across worker goroutines and collects their
// results in deterministic submission order, regardless of completion
// order. Every table/figure driver (cmd/table5, cmd/fig3, ...) and the
// bench harness submits its grid of (NI model x buffer size x application)
// points through this package instead of looping serially, so a full
// evaluation regeneration uses every core the host has.
//
// Concurrency contract (see DESIGN.md "Experiment orchestration"): this is
// the one sanctioned concurrency point outside the simulation kernel.
// Each simulation remains strictly single-threaded inside its own
// goroutine — the package imports nothing from the simulator, and jobs
// reach it only as opaque closures, so a worker goroutine cannot touch
// simulation state except by calling a closure that constructs a fresh,
// share-nothing machine. The nogoroutine lint pass enforces exactly this:
// goroutines here may not statically reach the sim kernel's scheduling
// API. Determinism is preserved because results are written to the slot
// matching their submission index and read only after all workers join.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// An Outcome is what one job's simulation produced: numeric metrics
// (latencies, bandwidths, execution times, counters) plus free-form string
// facts (histogram peaks, recovery summaries). Both maps serialize with
// sorted keys, so an Outcome renders deterministically.
type Outcome struct {
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Info    map[string]string  `json:"info,omitempty"`
}

// A Job is one independent simulator configuration: an identifier, the
// machine-readable configuration axes it represents, and a closure that
// runs the simulation. Run must be self-contained — it builds its own
// machine, shares no mutable state with other jobs, and is called at most
// once per Run invocation, possibly from a worker goroutine.
type Job struct {
	// ID uniquely identifies the job within its grid,
	// e.g. "lat/CNI_32Q/64B".
	ID string `json:"id"`
	// Config records the configuration axes (ni, app, bufs, payload, ...)
	// for the machine-readable report.
	Config map[string]string `json:"config,omitempty"`
	// Run executes the simulation and returns its metrics.
	Run func() Outcome `json:"-"`
}

// A Result pairs a job's identity with its outcome. Err carries a panic
// message or timeout notice; a timed-out result is inherently
// nondeterministic (it depends on host speed) and is flagged as such.
type Result struct {
	ID       string             `json:"id"`
	Config   map[string]string  `json:"config,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Info     map[string]string  `json:"info,omitempty"`
	Err      string             `json:"err,omitempty"`
	TimedOut bool               `json:"timed_out,omitempty"`

	// WallMS is the host wall-clock time the job took. It is the only
	// run-dependent field and is serialized in the report's timing
	// sidecar, never alongside the deterministic results.
	WallMS float64 `json:"-"`
}

// Config controls one orchestrated run.
type Config struct {
	// Jobs is the worker count; 0 or negative means runtime.NumCPU().
	// Jobs=1 reproduces the historical serial execution order exactly.
	Jobs int
	// Timeout is the per-job wall-clock budget; 0 means none. A job that
	// exceeds it is abandoned (its goroutine is leaked until the
	// simulation finishes — acceptable for a CLI process, see runJob) and
	// reported with TimedOut set.
	Timeout time.Duration
}

// Workers returns the effective worker count for n jobs.
func (c Config) Workers(n int) int {
	w := c.Jobs
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job and returns one result per job, in job order.
// Workers pull jobs from a shared queue, so completion order is arbitrary,
// but each worker writes only the result slot matching the job's index and
// Run returns only after every worker has joined — the caller observes a
// fully ordered, data-race-free slice.
func Run(cfg Config, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := cfg.Workers(len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(jobs[i], cfg.Timeout)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RunSerial runs jobs one at a time in submission order — the historical
// behavior of every driver, and the baseline the determinism regression
// test compares parallel runs against.
func RunSerial(jobs []Job) []Result {
	return Run(Config{Jobs: 1}, jobs)
}

// runJob executes one job, converting panics into Err and enforcing the
// per-job timeout. On timeout the job's goroutine keeps running until the
// simulation completes (simulations cannot be preempted mid-event); its
// late result is discarded via the buffered channel.
func runJob(job Job, timeout time.Duration) Result {
	if timeout <= 0 {
		return execute(job)
	}
	done := make(chan Result, 1)
	go func() {
		done <- execute(job)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r
	case <-timer.C:
		return Result{
			ID:       job.ID,
			Config:   job.Config,
			Err:      fmt.Sprintf("timed out after %v", timeout),
			TimedOut: true,
			WallMS:   float64(timeout) / float64(time.Millisecond),
		}
	}
}

// execute runs the job body with panic recovery and wall-clock accounting.
func execute(job Job) (res Result) {
	res = Result{ID: job.ID, Config: job.Config}
	start := time.Now()
	defer func() {
		res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	out := job.Run()
	res.Metrics = out.Metrics
	res.Info = out.Info
	return res
}
