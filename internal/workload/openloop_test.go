package workload

import (
	"testing"

	"nisim/internal/machine"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
)

func olConfig(nodes int) machine.Config {
	cfg := machine.DefaultConfig(nic.CNI32Qm, 16)
	cfg.Nodes = nodes
	return cfg
}

// A lightly loaded lossless run completes every request and measures sane
// latencies.
func TestOpenLoopCompletesUnderLightLoad(t *testing.T) {
	p := DefaultOpenLoop()
	p.Requests = 20
	p.MeanGap = 4 * sim.Microsecond
	res, _ := RunOpenLoop(olConfig(4), p)
	if res.Issued != 3*20 {
		t.Fatalf("issued %d requests, want %d", res.Issued, 3*20)
	}
	if res.Completed != res.Issued {
		t.Fatalf("completed %d of %d under light lossless load", res.Completed, res.Issued)
	}
	if res.Latency.Count() != int(res.Completed) {
		t.Fatalf("latency has %d samples, want %d", res.Latency.Count(), res.Completed)
	}
	if res.P50() <= 0 || res.P99() < res.P50() {
		t.Fatalf("implausible quantiles p50=%v p99=%v", res.P50(), res.P99())
	}
	if res.OfferedRPS <= 0 || res.GoodputMBps <= 0 {
		t.Fatalf("rates not derived: offered=%v goodput=%v", res.OfferedRPS, res.GoodputMBps)
	}
	if res.Recovery != -1 {
		t.Fatalf("recovery %v reported without an outage", res.Recovery)
	}
}

// Equal seeds reproduce the run bit-identically; a different seed moves
// the arrival schedule.
func TestOpenLoopDeterministic(t *testing.T) {
	p := DefaultOpenLoop()
	p.Requests = 10
	run := func(seed uint64) (sim.Time, sim.Time) {
		q := p
		q.Seed = seed
		res, _ := RunOpenLoop(olConfig(3), q)
		return res.Elapsed, res.P99()
	}
	e1, l1 := run(7)
	e2, l2 := run(7)
	if e1 != e2 || l1 != l2 {
		t.Fatalf("same seed diverged: elapsed %v vs %v, p99 %v vs %v", e1, e2, l1, l2)
	}
	e3, _ := run(8)
	if e3 == e1 {
		t.Fatalf("different seeds produced identical elapsed %v", e1)
	}
}

// Past saturation with a drop-class admission policy, the run still
// terminates: some requests are lost, the rest are delivered, and the
// backlog shows up as latency measured from the scheduled arrivals.
func TestOpenLoopOverloadDegradesNotHangs(t *testing.T) {
	spec := nic.SpecFor(nic.CM5)
	spec.Overload = nic.OverloadPolicy{AdmitPct: 50, Refuse: nic.RefuseDrop}
	cfg := machine.DefaultConfig(nic.CM5, 4)
	cfg.Nodes = 4
	cfg.NISpec = &spec
	cfg.Net.Reliability = netsim.DefaultReliability()
	cfg.Net.Reliability.Deadline = 40 * sim.Microsecond
	cfg.Watchdog = true
	cfg.StallHorizon = 200 * sim.Microsecond

	p := DefaultOpenLoop()
	p.Requests = 30
	p.MeanGap = 200 * sim.Nanosecond // far past a fifo NI's service rate
	p.DrainGrace = 30 * sim.Microsecond
	res, st := RunOpenLoop(cfg, p)
	if res.Completed == 0 {
		t.Fatalf("nothing delivered under overload (issued %d)", res.Issued)
	}
	if res.Completed >= res.Issued {
		t.Fatalf("overload run lost nothing: completed %d of %d", res.Completed, res.Issued)
	}
	tot := st.Total()
	if tot.AdmitDrops == 0 {
		t.Fatalf("admission policy never dropped; stats: %+v", tot)
	}
}
