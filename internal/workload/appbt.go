package workload

import (
	"nisim/internal/machine"
	"nisim/internal/membus"
	"nisim/internal/shmem"
)

// appbt is the NAS APPBT computational-fluid-dynamics kernel: a 3D cube of
// cells divided into subcubes among the nodes, exchanging subcube boundaries
// each iteration through the invalidation-based shared-memory protocol
// (§5.2). The data grain is small (24-byte payloads — APPBT exchanges a few
// words per face cell), which yields Table 4's mix: 12-byte protocol
// requests/invalidations/acks (67%) and 32-byte data messages (32%).
//
// Boundary blocks come in two kinds, chosen 2:1 so the protocol's message
// mix lands on the paper's: blocks homed at their writer (the reader's miss
// recalls nothing remote; the writer's update invalidates the reader), and
// blocks homed at their reader (the writer's update is a remote write miss;
// the reader's miss recalls from the writer).
func appbtProgram(p Params, nodes int) func(n *machine.Node) {
	iters := p.scale(6)
	const (
		writerHomed    = 6 // per neighbor: blocks homed at the writer
		readerHomed    = 3 // per neighbor: blocks homed at the reader
		computePerRead = 2400
		blk            = int64(membus.BlockSize)
	)
	cfg := shmem.DefaultConfig()
	cfg.DataBytes = 24 // 32-byte data messages
	proto := shmem.New(cfg)
	proto.Reserve(nodes)

	// Block naming: the k-th boundary block homed at node h for the face
	// toward neighbor nb. HomeOf(g) == g mod N, so g = slot*N + h.
	blockAt := func(h, nb, k, N int) int64 {
		slot := int64(nb*16 + k + 1)
		return (slot*int64(N) + int64(h)) * blk
	}

	return func(n *machine.Node) {
		N := n.Size()
		sn := proto.Register(n)
		nbrs := neighbor3D(n.ID, N)
		n.Barrier()

		for it := 0; it < iters; it++ {
			// Update phase: write this subcube's boundary faces, both the
			// self-homed blocks and the neighbor-homed ones.
			for _, nb := range nbrs {
				for k := 0; k < writerHomed; k++ {
					sn.Write(blockAt(n.ID, nb, k, N))
				}
				for k := 0; k < readerHomed; k++ {
					sn.Write(blockAt(nb, n.ID, 8+k, N))
				}
				n.Proc.Compute(1500)
			}
			n.Barrier()
			// Stencil phase: read the neighbors' freshly written faces.
			for _, nb := range nbrs {
				for k := 0; k < writerHomed; k++ {
					sn.Read(blockAt(nb, n.ID, k, N))
					n.Proc.Compute(computePerRead)
				}
				for k := 0; k < readerHomed; k++ {
					sn.Read(blockAt(n.ID, nb, 8+k, N))
					n.Proc.Compute(computePerRead)
				}
			}
			n.Barrier()
		}
		n.Barrier()
	}
}
