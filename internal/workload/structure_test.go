package workload

import (
	"testing"

	"nisim/internal/machine"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/stats"
)

func TestNeighbor3DGeometry(t *testing.T) {
	// 16 nodes factor into a 4x2x2 grid: corner nodes have 3 neighbors,
	// interior-x nodes 4.
	for node := 0; node < 16; node++ {
		nbrs := neighbor3D(node, 16)
		if len(nbrs) < 3 || len(nbrs) > 5 {
			t.Errorf("node %d has %d neighbors", node, len(nbrs))
		}
		seen := map[int]bool{}
		for _, nb := range nbrs {
			if nb == node {
				t.Errorf("node %d is its own neighbor", node)
			}
			if nb < 0 || nb >= 16 {
				t.Errorf("node %d has out-of-range neighbor %d", node, nb)
			}
			if seen[nb] {
				t.Errorf("node %d has duplicate neighbor %d", node, nb)
			}
			seen[nb] = true
		}
	}
}

func TestNeighbor3DSymmetric(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		for a := 0; a < n; a++ {
			for _, b := range neighbor3D(a, n) {
				found := false
				for _, back := range neighbor3D(b, n) {
					if back == a {
						found = true
					}
				}
				if !found {
					t.Fatalf("n=%d: %d neighbors %d but not vice versa", n, a, b)
				}
			}
		}
	}
}

func TestRngDeterministicPerNode(t *testing.T) {
	a := rng(Em3d, 3)
	b := rng(Em3d, 3)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("per-node rng not deterministic")
		}
	}
	if rng(Em3d, 3).Int63() == rng(Em3d, 4).Int63() && rng(Em3d, 3).Int63() == rng(Dsmc, 3).Int63() {
		t.Fatal("rng streams not distinguished by app/node")
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("tetris"); err == nil {
		t.Fatal("unknown app accepted")
	}
	for _, a := range Apps() {
		got, err := ByName(string(a))
		if err != nil || got != a {
			t.Fatalf("round trip failed for %s", a)
		}
	}
}

func TestParamsScale(t *testing.T) {
	if (Params{Iters: 0}).scale(10) != 1 {
		t.Fatal("zero scale did not clamp to 1")
	}
	if (Params{Iters: 1}).scale(10) != 10 {
		t.Fatal("unit scale changed the count")
	}
	if (Params{Iters: 0.5}).scale(10) != 5 {
		t.Fatal("half scale wrong")
	}
}

func TestSpsolveLevelCountsConsistent(t *testing.T) {
	// The DAG's expected-arrival computation must equal what is actually
	// sent: run on a fast NI and check counted conservation plus that every
	// node finished (the run completing proves the per-level waits matched).
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	st := Run(cfg, Spsolve, Params{Iters: 0.5})
	tot := st.Total()
	if tot.MessagesSent != tot.MessagesReceived {
		t.Fatalf("spsolve conservation: %d vs %d", tot.MessagesSent, tot.MessagesReceived)
	}
}

func TestMoldynBulkIsFragmented(t *testing.T) {
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	st := Run(cfg, Moldyn, Params{Iters: 0.4})
	tot := st.Total()
	if tot.FragmentsSent <= tot.MessagesSent {
		t.Fatalf("moldyn bulk messages not fragmented: %d fragments for %d messages",
			tot.FragmentsSent, tot.MessagesSent)
	}
}

func TestEm3dBuffersMatterMoreThanDsmc(t *testing.T) {
	// The defining workload property behind Figure 3a: em3d's bursts make
	// it more buffering-sensitive than dsmc's paced producer-consumer.
	sensitivity := func(app App) float64 {
		one := Run(machine.DefaultConfig(nic.CM5, 1), app, Params{Iters: 0.3}).ExecTime
		inf := Run(machine.DefaultConfig(nic.CM5, netsim.Infinite), app, Params{Iters: 0.3}).ExecTime
		return float64(one)/float64(inf) - 1
	}
	if em, ds := sensitivity(Em3d), sensitivity(Dsmc); em <= ds {
		t.Errorf("em3d buffering sensitivity (%.2f) not above dsmc's (%.2f)", em, ds)
	}
}

func TestAppsExerciseAllTimeCategories(t *testing.T) {
	cfg := machine.DefaultConfig(nic.CM5, 1)
	st := Run(cfg, Em3d, Params{Iters: 0.3})
	tot := st.Total()
	for _, c := range []int{stats.Compute, stats.Transfer, stats.Buffering} {
		if tot.TimeIn[c] <= 0 {
			t.Errorf("category %s empty", stats.CategoryName(c))
		}
	}
}

func TestShmemAppsGenerateCoherenceTraffic(t *testing.T) {
	// appbt and barnes run on the shared-memory protocol: their runs must
	// show protocol request/data pairs, not just raw one-way messages.
	for _, app := range []App{Appbt, Barnes} {
		cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
		st := Run(cfg, app, Params{Iters: 0.4})
		sizes := st.Total().Sizes()
		if sizes.Count(12) == 0 {
			t.Errorf("%s: no 12-byte protocol messages", app)
		}
	}
}
