// Package workload implements the seven macrobenchmarks of Table 4 as
// synthetic kernels that reproduce each application's communication
// pattern: message-size mix, destinations, burstiness, and the balance of
// computation to communication. The kernels run on the messaging layer
// exactly as the originals ran on Tempest: request-response shared-memory
// protocols for appbt and barnes, fine-grain one-way active messages for
// dsmc/em3d/spsolve, bulk reduction over virtual channels for moldyn, and
// batched single-producer/multiple-consumer streams for unstructured.
package workload

import (
	"fmt"
	"math/rand"

	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// App names one of the seven macrobenchmarks.
type App string

// The seven macrobenchmarks (Table 4).
const (
	Appbt        App = "appbt"
	Barnes       App = "barnes"
	Dsmc         App = "dsmc"
	Em3d         App = "em3d"
	Moldyn       App = "moldyn"
	Spsolve      App = "spsolve"
	Unstructured App = "unstructured"
)

// Apps lists the seven macrobenchmarks in the paper's order.
func Apps() []App {
	return []App{Appbt, Barnes, Dsmc, Em3d, Moldyn, Spsolve, Unstructured}
}

// ByName returns the App for a name.
func ByName(s string) (App, error) {
	for _, a := range Apps() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("workload: unknown application %q", s)
}

// Params scales a workload run.
type Params struct {
	// Iters scales the outer iteration count; 1.0 is the standard run used
	// by the figure harnesses, smaller values make tests fast.
	Iters float64
}

// DefaultParams is the standard scale.
func DefaultParams() Params { return Params{Iters: 1} }

func (p Params) scale(n int) int {
	v := int(float64(n)*p.Iters + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Program returns the per-node program for app on a machine of nodes
// nodes. Each invocation creates a fresh shared run state, so a Program
// value must drive exactly one machine.Run. The node count lets the
// shared-memory kernels pre-size their protocol tables in serial context,
// which is what makes them safe on a partitioned machine
// (machine.Config.Shards > 1).
func Program(app App, p Params, nodes int) func(n *machine.Node) {
	switch app {
	case Appbt:
		return appbtProgram(p, nodes)
	case Barnes:
		return barnesProgram(p, nodes)
	case Dsmc:
		return dsmcProgram(p, nodes)
	case Em3d:
		return em3dProgram(p, nodes)
	case Moldyn:
		return moldynProgram(p, nodes)
	case Spsolve:
		return spsolveProgram(p, nodes)
	case Unstructured:
		return unstructuredProgram(p, nodes)
	default:
		panic(fmt.Sprintf("workload: unknown app %q", app))
	}
}

// Shardable reports whether app's program tolerates a partitioned machine
// (machine.Config.Shards > 1) — today, always true. Every kernel confines
// its cross-node interaction to messages and pre-sized per-node tables
// (the runState quiescence ledger keeps one slot per node, reconciled by
// hQuiesce count reports), so any node may run on any shard goroutine. The
// predicate survives as the documented property new kernels must keep,
// and tests assert it stays total.
func Shardable(App) bool { return true }

// Run builds a machine with cfg, runs app on it, and returns the
// statistics.
func Run(cfg machine.Config, app App, p Params) *stats.Machine {
	m := machine.New(cfg)
	return m.Run(Program(app, p, cfg.Nodes))
}

// Application handler ids (must stay below the machine-reserved range).
const (
	hRequest = iota + 1 // shared-memory read request
	hReply              // shared-memory data reply
	hOneWay             // fine-grain one-way update
	hBulk               // bulk data
	hControl            // small control message
)

// hQuiesce carries a per-destination sent-count report (runState.quiesce).
// Like the machine's barrier messages it is runtime-internal traffic, not
// part of the application's Table 4 message mix, so it lives in the
// reserved handler range (excluded from the size histogram and given
// control priority under admission-controlled specs). The machine layer
// owns ids from 250 up.
const hQuiesce = msglayer.ReservedHandlerBase + 10

// runState is the quiescence ledger of one application run. Every mutable
// field lives in the slot of the node that writes it, so a partitioned
// machine never has two shard goroutines touching the same memory: a
// node's own counted sends (with a per-destination breakdown) go in its
// slot, as do the deliveries its handlers dispatched. Global agreement is
// reached by messages alone — quiesce has each node report its
// per-destination send counts to the destinations themselves, and each
// node drains until every peer has reported and everything promised to it
// has arrived. This is the message-confined replacement for the old
// shared {sent, recvd} pair, which only the serial engine could host.
type runState struct {
	nodes []nodeCounts
}

// nodeCounts is one node's shard-confined slot: sent/sentTo are written
// only by the owning node's sends, recvd only by its delivery handlers,
// expect/reports only by its hQuiesce handler.
type nodeCounts struct {
	sent   int64   // counted one-way messages issued by this node
	sentTo []int64 // ...broken down by destination
	recvd  int64   // counted deliveries dispatched on this node
	expect int64   // counted messages peers promised this node (hQuiesce)
	report int     // peers that have reported (hQuiesce)
}

// newRunState sizes the ledger for a machine of nodes nodes.
func newRunState(nodes int) *runState {
	rs := &runState{nodes: make([]nodeCounts, nodes)}
	for i := range rs.nodes {
		rs.nodes[i].sentTo = make([]int64, nodes)
	}
	return rs
}

// install registers the quiescence report handler on n's endpoint. Call
// once per node, alongside the app's own handler registrations.
func (rs *runState) install(n *machine.Node) {
	n.EP.Register(hQuiesce, func(ep *msglayer.Endpoint, m *msglayer.Message) {
		c := &rs.nodes[ep.NodeID()]
		c.report++
		c.expect += int64(m.Arg)
	})
}

// countedSend sends a one-way message that participates in the quiescence
// count.
func (rs *runState) countedSend(n *machine.Node, dst, handler, payload int, arg uint64) {
	c := &rs.nodes[n.ID]
	c.sent++
	c.sentTo[dst]++
	n.EP.Send(dst, handler, payload, arg)
}

// counted wraps a handler so its deliveries are counted for quiescence.
func (rs *runState) counted(h msglayer.Handler) msglayer.Handler {
	return func(ep *msglayer.Endpoint, m *msglayer.Message) {
		rs.nodes[ep.NodeID()].recvd++
		if h != nil {
			h(ep, m)
		}
	}
}

// quiesce drives the run to global delivery of all counted one-way
// messages, then synchronizes. Call after a barrier that guarantees no new
// counted sends will be issued: each node reports its final per-destination
// send counts to the destinations (hQuiesce), then drains until all N-1
// peers have reported and every promised message has been dispatched. The
// exit condition depends only on message arrivals, so it fires at the same
// simulated instant on a serial and a partitioned machine.
func (rs *runState) quiesce(n *machine.Node) {
	c := &rs.nodes[n.ID]
	for dst := range rs.nodes {
		if dst != n.ID {
			// Header-only (8-byte) report: the count rides in the Arg word,
			// like the machine barrier's own control messages.
			n.EP.Send(dst, hQuiesce, 0, uint64(c.sentTo[dst]))
		}
	}
	for c.report < len(rs.nodes)-1 || c.recvd < c.expect {
		if !n.EP.PollOne() {
			n.Proc.P.SleepAs(stats.Compute, 500*sim.Nanosecond)
		}
	}
	n.Barrier()
}

// rng returns a deterministic per-node random stream for an app run.
func rng(app App, node int) *rand.Rand {
	seed := int64(1)
	for _, c := range app {
		seed = seed*131 + int64(c)
	}
	return rand.New(rand.NewSource(seed*1000003 + int64(node)*7919))
}

// neighbor3D returns the node ids adjacent to node in a 4x2x2 (or generally
// X×Y×Z) decomposition of n nodes, the appbt subcube topology.
func neighbor3D(node, n int) []int {
	dims := [3]int{1, 1, 1}
	// Factor n into up to three near-equal dimensions.
	rem := n
	for i := 0; rem > 1; i = (i + 1) % 3 {
		for f := 2; f <= rem; f++ {
			if rem%f == 0 {
				dims[i] *= f
				rem /= f
				break
			}
		}
	}
	x, y, z := node%dims[0], node/dims[0]%dims[1], node/(dims[0]*dims[1])
	var out []int
	add := func(xx, yy, zz int) {
		if xx < 0 || xx >= dims[0] || yy < 0 || yy >= dims[1] || zz < 0 || zz >= dims[2] {
			return
		}
		id := xx + yy*dims[0] + zz*dims[0]*dims[1]
		if id != node {
			out = append(out, id)
		}
	}
	add(x-1, y, z)
	add(x+1, y, z)
	add(x, y-1, z)
	add(x, y+1, z)
	add(x, y, z-1)
	add(x, y, z+1)
	return out
}
