package workload

import (
	"math"

	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// Open-loop request/response workload: every node but node 0 is a client
// issuing requests to the node-0 server on a deterministic seeded Poisson
// schedule. Unlike the closed-loop macrobenchmarks, arrival times are fixed
// in advance — a slow or overloaded server does not slow the arrival
// process down, it just grows the backlog — so the workload can drive any
// NI past saturation and measure how it degrades: goodput vs offered load,
// delivered-latency quantiles from the *scheduled* arrival instant (so
// queueing delay counts), and the drop/bounce/admission counters in
// internal/stats.

// Open-loop handler ids (below the machine-reserved range, clear of the
// macrobenchmark ids).
const (
	hOLRequest = 10
	hOLReply   = 11
	hOLDone    = 12
)

// OpenLoopParams scales one open-loop run.
type OpenLoopParams struct {
	// MeanGap is the mean inter-arrival gap per client (exponential
	// distribution, so arrivals are Poisson). Offered load per client is
	// 1/MeanGap requests per second.
	MeanGap sim.Time
	// Requests is the number of requests each client issues.
	Requests int
	// ReqBytes/RespBytes are the request and response payload sizes.
	ReqBytes, RespBytes int
	// Seed selects the arrival schedule; equal seeds give equal schedules.
	Seed uint64
	// DrainGrace is how long past its last scheduled arrival a client keeps
	// polling for outstanding responses before giving up on them. Lossy
	// runs need this bound or a dropped response would hang the client.
	DrainGrace sim.Time
	// OutageEnd, when positive, is the end of a fault-plane outage window;
	// the run then reports the recovery time (first response completion
	// after the outage lifts).
	OutageEnd sim.Time
}

// DefaultOpenLoop returns a modest five-request-per-microsecond-per-client
// load with the 32B/128B request/response mix of a small RPC.
func DefaultOpenLoop() OpenLoopParams {
	return OpenLoopParams{
		MeanGap:    2 * sim.Microsecond,
		Requests:   50,
		ReqBytes:   32,
		RespBytes:  128,
		Seed:       1,
		DrainGrace: 50 * sim.Microsecond,
	}
}

// OpenLoopResult aggregates one run's delivered service.
type OpenLoopResult struct {
	// Issued and Completed count requests sent and responses delivered.
	Issued, Completed int64
	// OfferedRPS is the scheduled arrival rate (requests per second across
	// all clients) — what the clients asked for, not what they got.
	OfferedRPS float64
	// GoodputMBps is delivered response payload over the full run.
	GoodputMBps float64
	// Latency holds one sample per completed request: response delivery
	// minus *scheduled* arrival, so backlog waiting counts.
	Latency stats.Quantiles
	// Elapsed is the parallel execution time of the run.
	Elapsed sim.Time
	// Recovery is the gap between OutageEnd and the first response
	// completed after it; noRecovery (negative) when no outage was
	// configured or nothing completed after it.
	Recovery sim.Time
}

// noRecovery is the Recovery sentinel: no post-outage completion measured.
const noRecovery = -1 * sim.Picosecond

// P50 and P99 are the delivered-latency quantiles.
func (r *OpenLoopResult) P50() sim.Time { return r.Latency.At(0.50) }
func (r *OpenLoopResult) P99() sim.Time { return r.Latency.At(0.99) }

// olState is the shared state of one open-loop run. All mutable fields are
// shard-confined: done is written only by the node-0 server, and every
// client's counters live in its own clients slot (pre-sized at program
// construction, so no client ever grows a shared structure). Node 0 merges
// the per-client results in finish, after the final barrier — the barrier
// message chain is what publishes each client's writes to node 0's shard.
type olState struct {
	p       OpenLoopParams
	res     *OpenLoopResult
	clients []*olClient // indexed by node id; nil at the server slot
	done    int         // clients finished (server-side count)
}

// olClient is one client's bookkeeping, written only by its own node.
type olClient struct {
	sched      []sim.Time // scheduled arrival instant per request index
	issued     int64
	completed  int64
	firstAfter sim.Time // first completion at/after the outage end; 0 = none
	latency    stats.Quantiles
}

// expGap draws an exponential gap with mean m from a splitmix64 stream.
func expGap(s *uint64, m sim.Time) sim.Time {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	g := sim.Time(-float64(m) * math.Log(1-u))
	if g < 0 {
		g = 0
	}
	return g
}

// OpenLoopProgram returns the per-node program for one open-loop run on a
// machine of nodes nodes, filling res when the run completes. Like
// Program, each invocation must drive exactly one machine.Run. The client
// table is pre-sized here, in serial context, so a partitioned run never
// mutates shared state from two shards.
func OpenLoopProgram(p OpenLoopParams, res *OpenLoopResult, nodes int) func(n *machine.Node) {
	st := &olState{p: p, res: res, clients: make([]*olClient, nodes)}
	for i := 1; i < nodes; i++ {
		st.clients[i] = &olClient{sched: make([]sim.Time, p.Requests)}
	}
	res.Recovery = noRecovery
	return func(n *machine.Node) {
		if n.ID == 0 {
			st.server(n)
		} else {
			st.client(n)
		}
	}
}

// server serves requests until every client has reported done: each
// request is answered immediately from the handler (the reply inherits the
// request's arg, which carries the client's request index).
func (st *olState) server(n *machine.Node) {
	n.EP.Register(hOLRequest, func(ep *msglayer.Endpoint, m *msglayer.Message) {
		ep.Send(m.Src, hOLReply, st.p.RespBytes, m.Arg)
	})
	n.EP.Register(hOLDone, func(ep *msglayer.Endpoint, m *msglayer.Message) {
		st.done++
	})
	clients := n.Size() - 1
	n.Barrier()
	n.EP.WaitUntil(func() bool { return st.done >= clients })
	n.Barrier()
	// The final barrier releases can bounce off a still-backlogged client;
	// settle them before the program exits or nobody re-pushes the bounce.
	n.SettleSends()
	st.finish(n)
}

// client issues requests on its Poisson schedule, polling for responses
// while it waits out each gap, then drains within the grace window and
// reports done. The arrival clock never waits for the server: a request
// whose instant has passed is sent as soon as Send unblocks.
func (st *olState) client(n *machine.Node) {
	const pollQuantum = 200 * sim.Nanosecond
	c := st.clients[n.ID]
	cs := &c.latency
	n.EP.Register(hOLReply, func(ep *msglayer.Endpoint, m *msglayer.Message) {
		idx := int(m.Arg & 0xFFFFFFFF)
		now := n.Proc.P.Now()
		cs.Add(now - c.sched[idx])
		c.completed++
		if st.p.OutageEnd > 0 && now >= st.p.OutageEnd && c.firstAfter == 0 {
			c.firstAfter = now
		}
	})
	n.Barrier()

	seed := st.p.Seed ^ (uint64(n.ID) * 0x9e3779b97f4a7c15)
	next := n.Proc.P.Now()
	for i := 0; i < st.p.Requests; i++ {
		next += expGap(&seed, st.p.MeanGap)
		for n.Proc.P.Now() < next {
			if !n.EP.PollOne() {
				// The failed poll itself costs time; only sleep out what
				// remains of the gap.
				d := next - n.Proc.P.Now()
				if d > pollQuantum {
					d = pollQuantum
				}
				if d > 0 {
					n.Proc.P.SleepAs(stats.Compute, d)
				}
			}
		}
		c.sched[i] = next
		n.EP.Send(0, hOLRequest, st.p.ReqBytes, uint64(n.ID)<<32|uint64(i))
	}

	// Drain: outstanding responses may be queued, in flight, or gone
	// (dropped, evicted, or abandoned); give them the grace window.
	deadline := next + st.p.DrainGrace
	for c.completed < int64(st.p.Requests) && n.Proc.P.Now() < deadline {
		if !n.EP.PollOne() {
			n.Proc.P.SleepAs(stats.Compute, pollQuantum)
		}
	}
	c.issued = int64(st.p.Requests)
	n.EP.Send(0, hOLDone, 4, 0)
	n.Barrier()
	n.SettleSends()
	st.finish(n)
}

// finish merges the per-client counters and derives the run-wide rates
// once, on node 0 after the final barrier (every client published its
// counters before sending its done message, so everything is settled — and,
// on a partitioned machine, visible — by then). The merge walks clients in
// node-id order; the latency merge is order-insensitive by construction
// (see stats.Quantiles.Merge), so the result matches the serial run's
// chronological accumulation exactly.
func (st *olState) finish(n *machine.Node) {
	if n.ID != 0 {
		return
	}
	for _, c := range st.clients {
		if c == nil {
			continue
		}
		st.res.Issued += c.issued
		st.res.Completed += c.completed
		st.res.Latency.Merge(&c.latency)
		// Run-wide recovery is the earliest post-outage completion anywhere.
		if c.firstAfter > 0 {
			rec := c.firstAfter - st.p.OutageEnd
			if st.res.Recovery < 0 || rec < st.res.Recovery {
				st.res.Recovery = rec
			}
		}
	}
	st.res.Elapsed = n.Proc.P.Now()
	if st.res.Elapsed > 0 {
		secs := float64(st.res.Elapsed) / float64(sim.Second)
		st.res.OfferedRPS = float64(st.res.Issued) / secs
		st.res.GoodputMBps = float64(st.res.Completed*int64(st.p.RespBytes)) / 1e6 / secs
	}
}

// RunOpenLoop builds a machine with cfg, drives the open-loop workload on
// it, and returns the service-level result plus the machine statistics.
func RunOpenLoop(cfg machine.Config, p OpenLoopParams) (*OpenLoopResult, *stats.Machine) {
	var res OpenLoopResult
	m := machine.New(cfg)
	st := m.Run(OpenLoopProgram(p, &res, cfg.Nodes))
	return &res, st
}
