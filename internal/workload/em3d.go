package workload

import (
	"nisim/internal/machine"
	"nisim/internal/msglayer"
)

// em3d models 3D electromagnetic-wave propagation over a bipartite graph:
// each iteration every node blasts a burst of small update messages (two
// integers: 12-byte payload, 20-byte message, 98% of traffic) down its
// remote edges through a custom update protocol, with a couple of 12-byte
// control messages (2%). Many updates are in flight at once — the bursty
// traffic that makes em3d's performance hinge on NI buffering (§6.2.1).
func em3dProgram(p Params, nodes int) func(n *machine.Node) {
	rs := newRunState(nodes)
	iters := p.scale(10)
	const (
		updatesPerIter = 120
		controlPerIter = 2
		updatePayload  = 12 // 20-byte message
		controlPayload = 4  // 12-byte message
		handlerCycles  = 45
		computePerIter = 30000
	)
	return func(n *machine.Node) {
		N := n.Size()
		r := rng(Em3d, n.ID)
		// Static bipartite graph: ~5 remote neighbor nodes (degree 5, 10%
		// remote in the paper's input).
		var nbrs []int
		for len(nbrs) < 5 {
			d := r.Intn(N)
			if d == n.ID {
				continue
			}
			dup := false
			for _, e := range nbrs {
				if e == d {
					dup = true
				}
			}
			if !dup {
				nbrs = append(nbrs, d)
			}
		}
		n.EP.Register(hOneWay, rs.counted(func(ep *msglayer.Endpoint, m *msglayer.Message) {
			ep.Proc().Compute(handlerCycles)
		}))
		n.EP.Register(hControl, rs.counted(nil))
		rs.install(n)

		for it := 0; it < iters; it++ {
			// Local E/H field update.
			n.Proc.Compute(computePerIter)
			// Burst: all remote-edge updates back to back, no intervening
			// computation, grouped by destination — the edge lists are laid
			// out per neighbor, so each neighbor receives a concentrated
			// train of updates.
			perNbr := updatesPerIter / len(nbrs)
			for _, d := range nbrs {
				for u := 0; u < perNbr; u++ {
					rs.countedSend(n, d, hOneWay, updatePayload, 0)
				}
			}
			for c := 0; c < controlPerIter; c++ {
				rs.countedSend(n, nbrs[c%len(nbrs)], hControl, controlPayload, 0)
			}
			n.Barrier()
		}
		n.Barrier()
		rs.quiesce(n)
	}
}
