package workload

import (
	"nisim/internal/machine"
	"nisim/internal/membus"
	"nisim/internal/shmem"
)

// barnes is the SPLASH-2 Barnes-Hut hierarchical N-body kernel, running on
// the invalidation-based shared-memory protocol with block-grain (132-byte
// payload) cell data. Communication is irregular: every node walks the
// shared octree, whose upper levels are homed with a skew toward low node
// ids. The Table 4 mix emerges from the protocol: 12-byte requests,
// invalidations, and acks (67%), 140-byte cell-data transfers (29%), and
// 16-byte exclusive upgrades for read-modify-write cells (4%).
func barnesProgram(p Params, nodes int) func(n *machine.Node) {
	iters := p.scale(5)
	const (
		pureReads      = 14 // tree-cell reads per iteration
		sharedWrites   = 8  // cell updates invalidating two sharers
		upgrades       = 4  // read-then-upgrade body updates
		computePerRead = 2600
		blk            = int64(membus.BlockSize)
	)
	proto := shmem.New(shmem.DefaultConfig()) // 132-byte data -> 140-byte messages
	proto.Reserve(nodes)

	// treeBlock names the k-th shared tree cell homed at node h.
	treeBlock := func(h, k, N int) int64 {
		return ((int64(k)+1)*int64(N) + int64(h)) * blk
	}

	return func(n *machine.Node) {
		N := n.Size()
		sn := proto.Register(n)
		r := rng(Barnes, n.ID)
		// Skewed home choice: octree roots live on low node ids.
		skewedHome := func() int {
			for {
				d := int(r.ExpFloat64() * float64(N) / 4)
				if d >= N {
					d = r.Intn(N)
				}
				if d != n.ID {
					return d
				}
			}
		}
		n.Barrier()

		for it := 0; it < iters; it++ {
			// Sharing phase: become a sharer of the cells this node's force
			// phase will invalidate, so the later writes do a real
			// invalidation round (two sharers each).
			left, right := (n.ID+N-1)%N, (n.ID+1)%N
			for k := 0; k < sharedWrites; k++ {
				sn.Read(treeBlock(left, 100+k, N))
				sn.Read(treeBlock(right, 100+k, N))
			}
			n.Barrier()
			// Force phase: irregular tree reads, cell updates, and body
			// upgrades.
			for k := 0; k < pureReads; k++ {
				sn.Read(treeBlock(skewedHome(), it*pureReads+k, N))
				n.Proc.Compute(computePerRead)
			}
			for k := 0; k < sharedWrites; k++ {
				sn.Write(treeBlock(n.ID, 100+k, N))
				n.Proc.Compute(800)
			}
			for k := 0; k < upgrades; k++ {
				// Body blocks homed two nodes over: the read makes this node
				// the sole sharer, so the write earns a 16-byte upgrade grant.
				g := treeBlock((n.ID+2)%N, 200+it*upgrades+k, N)
				sn.Read(g)
				n.Proc.Compute(400)
				sn.Write(g)
			}
			n.Barrier()
		}
		n.Barrier()
	}
}
