package workload

import (
	"reflect"
	"testing"

	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/nic"
)

// TestShardedRunIsByteIdentical is the workload-level half of the
// partition determinism gate: for every NI kind, the shared-memory
// applications must produce a stats.Machine deeply equal to the serial
// engine's at every shard count — same counters, same times, same
// histograms, nothing averaged or approximated. The throttled CNI is
// included deliberately: its credit returns cross shards as lagged
// control messages, the one NI-level cross-node coupling in the system.
// Under `make ci` this also runs with the race detector watching the shard
// workers.
func TestShardedRunIsByteIdentical(t *testing.T) {
	kinds := []nic.Kind{
		nic.CM5, nic.CM5SingleCycle, nic.UDMA, nic.AP3000, nic.StarTJR,
		nic.MemoryChannel, nic.CNI512Q, nic.CNI32Qm, nic.CNI32QmThrottle,
	}
	p := Params{Iters: 0.3}
	for _, kind := range kinds {
		for _, app := range []App{Appbt, Barnes} {
			cfg := machine.DefaultConfig(kind, 8)
			serial := Run(cfg, app, p)
			for _, shards := range []int{2, 4} {
				c := cfg
				c.Shards = shards
				if got := Run(c, app, p); !reflect.DeepEqual(serial, got) {
					t.Errorf("%s/%s shards=%d: stats differ from serial", kind.ShortName(), app, shards)
				}
			}
		}
	}
}

// TestEverythingShardable pins the property that retired the old serial
// fallback: every macrobenchmark confines its cross-node state to
// messages and per-node tables, so Shardable is total, and the formerly
// serial-only kernels — message-counting quiescence apps and the
// throttled CNI's credit coupling — now run partitioned byte-identically
// to serial. The grid here crosses the five formerly-unshardable apps
// with a plain kind and the throttle spec that used to force the
// fallback.
func TestEverythingShardable(t *testing.T) {
	for _, app := range Apps() {
		if !Shardable(app) {
			t.Fatalf("%s reports not Shardable; the predicate must be total now", app)
		}
	}
	p := Params{Iters: 0.2}
	for _, kind := range []nic.Kind{nic.CM5, nic.CNI32QmThrottle} {
		for _, app := range []App{Dsmc, Em3d, Moldyn, Spsolve, Unstructured} {
			cfg := machine.DefaultConfig(kind, 8)
			serial := Run(cfg, app, p)
			c := cfg
			c.Shards = 4
			if got := Run(c, app, p); !reflect.DeepEqual(serial, got) {
				t.Errorf("%s/%s shards=4: stats differ from serial", kind.ShortName(), app)
			}
		}
	}
}

// TestShardedRendezvousIsByteIdentical covers the rendezvous protocol
// under partitioning: the RTS/CTS handshake and the one-sided put frames
// cross shard boundaries as ordinary network events, so the open-loop
// workload on the RDMA design with bulk rendezvous requests must produce
// service results and machine statistics deeply equal to the serial
// engine's at every shard count.
func TestShardedRendezvousIsByteIdentical(t *testing.T) {
	spec := nic.Spec{Send: nic.RDMAEngine, Recv: nic.CoherentEngine, Buffering: nic.MemoryRing}
	cfg := machine.DefaultConfig(nic.Custom, 8)
	cfg.NISpec = &spec
	cfg.Msg.Protocol = msglayer.Rendezvous
	cfg.Msg.RendezvousThreshold = 1024
	p := DefaultOpenLoop()
	p.ReqBytes, p.RespBytes = 2048, 32

	serialRes, serialStats := RunOpenLoop(cfg, p)
	if serialRes.Completed == 0 {
		t.Fatal("serial rendezvous run completed nothing")
	}
	for _, shards := range []int{2, 4} {
		c := cfg
		c.Shards = shards
		res, st := RunOpenLoop(c, p)
		if !reflect.DeepEqual(serialStats, st) {
			t.Errorf("shards=%d: rendezvous stats differ from serial", shards)
		}
		if !reflect.DeepEqual(serialRes, res) {
			t.Errorf("shards=%d: rendezvous result differs from serial:\nserial: %+v\nsharded: %+v",
				shards, serialRes, res)
		}
	}
}

// TestShardedOpenLoopIsByteIdentical covers the open-loop overload
// workload: both the service-level result (latency quantiles, goodput,
// recovery) and the machine statistics must be deeply equal to the serial
// run's when the simulation is partitioned.
func TestShardedOpenLoopIsByteIdentical(t *testing.T) {
	for _, kind := range []nic.Kind{nic.UDMA, nic.CNI32Qm, nic.CNI32QmThrottle} {
		cfg := machine.DefaultConfig(kind, 8)
		p := DefaultOpenLoop()
		serialRes, serialStats := RunOpenLoop(cfg, p)
		for _, shards := range []int{2, 4} {
			c := cfg
			c.Shards = shards
			res, st := RunOpenLoop(c, p)
			if !reflect.DeepEqual(serialStats, st) {
				t.Errorf("%s shards=%d: open-loop stats differ from serial", kind.ShortName(), shards)
			}
			if !reflect.DeepEqual(serialRes, res) {
				t.Errorf("%s shards=%d: open-loop result differs from serial:\nserial: %+v\nsharded: %+v",
					kind.ShortName(), shards, serialRes, res)
			}
		}
	}
}
