package workload

import (
	"reflect"
	"testing"

	"nisim/internal/machine"
	"nisim/internal/nic"
)

// TestShardedRunIsByteIdentical is the workload-level half of the
// partition determinism gate: for every NI kind, the shard-safe
// applications must produce a stats.Machine deeply equal to the serial
// engine's at every shard count — same counters, same times, same
// histograms, nothing averaged or approximated. The throttled CNI is
// included deliberately: it is peer-coupled (nic.PeerCoupled), so the
// machine must fall back to the serial engine and still match trivially.
// Under `make ci` this also runs with the race detector watching the shard
// workers.
func TestShardedRunIsByteIdentical(t *testing.T) {
	kinds := []nic.Kind{
		nic.CM5, nic.CM5SingleCycle, nic.UDMA, nic.AP3000, nic.StarTJR,
		nic.MemoryChannel, nic.CNI512Q, nic.CNI32Qm, nic.CNI32QmThrottle,
	}
	p := Params{Iters: 0.3}
	for _, kind := range kinds {
		for _, app := range []App{Appbt, Barnes} {
			cfg := machine.DefaultConfig(kind, 8)
			serial := Run(cfg, app, p)
			for _, shards := range []int{2, 4} {
				c := cfg
				c.Shards = shards
				if got := Run(c, app, p); !reflect.DeepEqual(serial, got) {
					t.Errorf("%s/%s shards=%d: stats differ from serial", kind.ShortName(), app, shards)
				}
			}
		}
	}
}

// TestShardedRunSerialOnlyAppsClamp pins the safety clamp: an application
// whose program shares plain Go state across nodes (not Shardable) must
// run serially even when shards are requested — and therefore trivially
// match the serial run.
func TestShardedRunSerialOnlyAppsClamp(t *testing.T) {
	if Shardable(Dsmc) || Shardable(Em3d) || Shardable(Moldyn) || Shardable(Spsolve) || Shardable(Unstructured) {
		t.Fatal("a runState-sharing app reports Shardable")
	}
	if !Shardable(Appbt) || !Shardable(Barnes) {
		t.Fatal("a shard-safe app reports not Shardable")
	}
	cfg := machine.DefaultConfig(nic.CM5, 8)
	p := Params{Iters: 0.2}
	serial := Run(cfg, Dsmc, p)
	c := cfg
	c.Shards = 4
	if got := Run(c, Dsmc, p); !reflect.DeepEqual(serial, got) {
		t.Error("dsmc with shards requested differs from serial (clamp broken)")
	}
}

// TestShardedOpenLoopIsByteIdentical covers the open-loop overload
// workload: both the service-level result (latency quantiles, goodput,
// recovery) and the machine statistics must be deeply equal to the serial
// run's when the simulation is partitioned.
func TestShardedOpenLoopIsByteIdentical(t *testing.T) {
	for _, kind := range []nic.Kind{nic.UDMA, nic.CNI32Qm} {
		cfg := machine.DefaultConfig(kind, 8)
		p := DefaultOpenLoop()
		serialRes, serialStats := RunOpenLoop(cfg, p)
		for _, shards := range []int{2, 4} {
			c := cfg
			c.Shards = shards
			res, st := RunOpenLoop(c, p)
			if !reflect.DeepEqual(serialStats, st) {
				t.Errorf("%s shards=%d: open-loop stats differ from serial", kind.ShortName(), shards)
			}
			if !reflect.DeepEqual(serialRes, res) {
				t.Errorf("%s shards=%d: open-loop result differs from serial:\nserial: %+v\nsharded: %+v",
					kind.ShortName(), shards, serialRes, res)
			}
		}
	}
}
