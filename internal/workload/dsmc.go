package workload

import (
	"nisim/internal/machine"
	"nisim/internal/msglayer"
)

// dsmc is the discrete-simulation-Monte-Carlo gas kernel: after each
// iteration, molecules that crossed cell boundaries migrate to their new
// owner via fine-grain one-way active messages in a producer-consumer
// pattern — 12-byte movement notices (45%), 44-byte single-particle
// payloads (25%), and 140-byte batched payloads (26%), Table 4.
func dsmcProgram(p Params, nodes int) func(n *machine.Node) {
	rs := newRunState(nodes)
	iters := p.scale(8)
	const (
		noticesPerIter = 20
		smallPerIter   = 11
		batchPerIter   = 12
		noticePayload  = 4   // 12-byte message
		smallPayload   = 36  // 44-byte message
		batchPayload   = 132 // 140-byte message
		computeStep    = 55000
	)
	return func(n *machine.Node) {
		N := n.Size()
		r := rng(Dsmc, n.ID)
		// Molecules migrate mostly to spatial neighbors.
		dest := func() int {
			d := (n.ID + 1 + r.Intn(3)) % N
			if d == n.ID {
				d = (d + 1) % N
			}
			return d
		}
		handler := rs.counted(func(ep *msglayer.Endpoint, m *msglayer.Message) {
			// Insert the arriving molecules into local cells.
			ep.Proc().Compute(60 + int64(m.PayloadLen/4)*8)
		})
		n.EP.Register(hOneWay, handler)
		rs.install(n)

		for it := 0; it < iters; it++ {
			// Move phase: local computation.
			n.Proc.Compute(computeStep)
			// Migration phase: producer-consumer bursts.
			for i := 0; i < noticesPerIter; i++ {
				rs.countedSend(n, dest(), hOneWay, noticePayload, 0)
				if i%2 == 0 {
					n.Proc.Compute(300)
				}
			}
			for i := 0; i < smallPerIter; i++ {
				rs.countedSend(n, dest(), hOneWay, smallPayload, 0)
				n.Proc.Compute(250)
			}
			for i := 0; i < batchPerIter; i++ {
				rs.countedSend(n, dest(), hOneWay, batchPayload, 0)
				n.Proc.Compute(400)
			}
			n.Barrier()
		}
		n.Barrier()
		rs.quiesce(n)
	}
}
