package workload

import (
	"nisim/internal/machine"
	"nisim/internal/msglayer"
)

// unstructured is the computational-fluid-dynamics kernel over an
// unstructured mesh: a static single-producer/multiple-consumer pattern in
// which updates for each consumer are batched into bulk messages. Table 4:
// one distinct peak at 8 bytes (35%), the remainder a spread of 12-1812
// bytes averaging 351. Streaming bulk transfer is what this application
// rewards (§6.2.2).
func unstructuredProgram(p Params, nodes int) func(n *machine.Node) {
	rs := newRunState(nodes)
	iters := p.scale(8)
	// Batched update sizes: messages of 12..1524 bytes averaging ~351
	// (payload = size - 8).
	batchPayloads := []int{4, 12, 36, 84, 172, 324, 596, 1516}
	const (
		batchesPerIter = 14
		ctrlPerIter    = 7 // 8-byte messages
		computePerIter = 55000
	)
	return func(n *machine.Node) {
		N := n.Size()
		// Static consumers of this producer's mesh updates.
		consumers := []int{(n.ID + 1) % N, (n.ID + 5) % N, (n.ID + 9) % N}
		for i, c := range consumers {
			if c == n.ID {
				consumers[i] = (c + 2) % N
			}
		}
		n.EP.Register(hBulk, rs.counted(func(ep *msglayer.Endpoint, m *msglayer.Message) {
			// Apply the batched face updates.
			ep.Proc().Compute(120 + int64(m.PayloadLen/8)*3)
		}))
		n.EP.Register(hControl, rs.counted(nil))
		rs.install(n)

		for it := 0; it < iters; it++ {
			// Continuous streaming: computation, production, and consumption
			// interleave, so the NI's deposit traffic and the processor's
			// reads share the memory system in time.
			for b := 0; b < batchesPerIter; b++ {
				n.Proc.Compute(computePerIter / batchesPerIter)
				dst := consumers[b%len(consumers)]
				rs.countedSend(n, dst, hBulk, batchPayloads[(it*batchesPerIter+b)%len(batchPayloads)], 0)
				if b%2 == 0 {
					rs.countedSend(n, consumers[(b/2)%len(consumers)], hControl, 0, 0)
				}
				// Drain whatever has arrived before producing more.
				n.EP.Drain()
			}
			n.Barrier()
		}
		n.Barrier()
		rs.quiesce(n)
	}
}
