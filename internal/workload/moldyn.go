package workload

import (
	"nisim/internal/machine"
	"nisim/internal/msglayer"
)

// moldyn is the CHARMM-like molecular-dynamics kernel: its dominant
// communication is a custom bulk-reduction protocol in which each node
// streams 1.5 KB of partial forces to its ring neighbor over Tempest
// virtual channels (the 3084-byte messages, 2% of count but most of the
// bytes), alongside 140-byte partial updates (27%) and many 12-byte
// control messages (65%), Table 4.
func moldynProgram(p Params, nodes int) func(n *machine.Node) {
	rs := newRunState(nodes)
	iters := p.scale(5)
	const (
		controlPerIter = 33
		partialPerIter = 13
		tinyPerIter    = 2
		bulkPayload    = 3076 // 3084-byte message
		partialPayload = 132  // 140-byte message
		controlPayload = 4    // 12-byte message
		tinyPayload    = 0    // 8-byte message
		computePerIter = 130000
	)
	// One bulk-arrival counter per node, pre-sized in serial context; each
	// slot is written only by its owning node's handler, so the table is
	// safe on a partitioned machine.
	bulkGot := make([]int, nodes)
	return func(n *machine.Node) {
		N := n.Size()
		r := rng(Moldyn, n.ID)
		right := (n.ID + 1) % N
		dest := func() int {
			d := r.Intn(N)
			if d == n.ID {
				d = right
			}
			return d
		}
		n.EP.Register(hBulk, func(ep *msglayer.Endpoint, m *msglayer.Message) {
			// Accumulate the partial forces into the local array.
			ep.Proc().Compute(int64(m.PayloadLen / 8 * 2))
			bulkGot[ep.NodeID()]++
		})
		n.EP.Register(hOneWay, rs.counted(func(ep *msglayer.Endpoint, m *msglayer.Message) {
			ep.Proc().Compute(70)
		}))
		n.EP.Register(hControl, rs.counted(nil))
		rs.install(n)

		for it := 0; it < iters; it++ {
			// Non-bonded force computation.
			n.Proc.Compute(computePerIter)
			// Interleaved control and partial-force traffic.
			for i := 0; i < controlPerIter; i++ {
				rs.countedSend(n, dest(), hControl, controlPayload, 0)
				if i%3 == 0 {
					n.Proc.Compute(500)
				}
			}
			for i := 0; i < partialPerIter; i++ {
				rs.countedSend(n, dest(), hOneWay, partialPayload, 0)
				n.Proc.Compute(400)
			}
			for i := 0; i < tinyPerIter; i++ {
				rs.countedSend(n, dest(), hControl, tinyPayload, 0)
			}
			// Bulk reduction step over the ring virtual channel: send the
			// 1.5 KB partial-force vector right, wait for the left
			// neighbor's.
			target := it + 1
			n.EP.Send(right, hBulk, bulkPayload, 0)
			n.EP.WaitUntil(func() bool { return bulkGot[n.ID] >= target })
			n.Barrier()
		}
		n.Barrier()
		rs.quiesce(n)
	}
}
