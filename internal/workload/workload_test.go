package workload

import (
	"math"
	"testing"

	"nisim/internal/machine"
	"nisim/internal/nic"
)

func quickParams() Params { return Params{Iters: 0.4} }

func TestAllAppsComplete(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(string(app), func(t *testing.T) {
			cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
			st := Run(cfg, app, quickParams())
			tot := st.Total()
			if tot.MessagesSent == 0 {
				t.Fatal("no messages sent")
			}
			if tot.MessagesSent != tot.MessagesReceived {
				t.Fatalf("conservation violated: sent %d received %d", tot.MessagesSent, tot.MessagesReceived)
			}
		})
	}
}

// Table 4 message-size mixes: each app's histogram must peak where the
// paper reports, within tolerance.
func TestTable4MessageMix(t *testing.T) {
	type peak struct {
		size int
		frac float64
		tol  float64
	}
	targets := map[App][]peak{
		Appbt:        {{12, 0.67, 0.08}, {32, 0.32, 0.08}},
		Barnes:       {{12, 0.67, 0.08}, {16, 0.04, 0.03}, {140, 0.29, 0.08}},
		Dsmc:         {{12, 0.45, 0.08}, {44, 0.25, 0.08}, {140, 0.26, 0.08}},
		Em3d:         {{12, 0.02, 0.03}, {20, 0.98, 0.04}},
		Moldyn:       {{8, 0.05, 0.04}, {12, 0.65, 0.08}, {140, 0.27, 0.08}, {3084, 0.02, 0.02}},
		Spsolve:      {{8, 0.06, 0.04}, {12, 0.03, 0.03}, {20, 0.91, 0.06}},
		Unstructured: {{8, 0.35, 0.08}},
	}
	for app, peaks := range targets {
		app, peaks := app, peaks
		t.Run(string(app), func(t *testing.T) {
			cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
			st := Run(cfg, app, DefaultParams())
			sizes := st.Total().Sizes()
			if sizes.Total() < 100 {
				t.Fatalf("too few messages (%d) for a distribution check", sizes.Total())
			}
			for _, pk := range peaks {
				got := sizes.Fraction(pk.size)
				if math.Abs(got-pk.frac) > pk.tol {
					t.Errorf("size %dB: fraction %.3f, paper %.2f (tol %.2f); histogram: %s",
						pk.size, got, pk.frac, pk.tol, sizes)
				}
			}
		})
	}
}

// The unstructured app's non-control messages average ~351 bytes (Table 4).
func TestUnstructuredAverageSize(t *testing.T) {
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	st := Run(cfg, Unstructured, DefaultParams())
	sizes := st.Total().Sizes()
	// Average over the 12..1812 range (excluding the 8-byte peak).
	var sum, cnt float64
	for _, s := range sizes.Peaks(100) {
		if s == 8 {
			continue
		}
		c := float64(sizes.Count(s))
		sum += float64(s) * c
		cnt += c
	}
	avg := sum / cnt
	if avg < 280 || avg > 430 {
		t.Fatalf("bulk average size %.0f, paper reports 351", avg)
	}
}

// Every app must complete on every NI with minimal buffering — the
// deadlock-avoidance discipline at work.
func TestAppsCompleteOnAllNIsOneBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	p := Params{Iters: 0.2}
	for _, kind := range nic.PaperSeven() {
		kind := kind
		t.Run(kind.ShortName(), func(t *testing.T) {
			for _, app := range Apps() {
				cfg := machine.DefaultConfig(kind, 1)
				st := Run(cfg, app, p)
				tot := st.Total()
				if tot.MessagesSent != tot.MessagesReceived {
					t.Fatalf("%s: sent %d != received %d", app, tot.MessagesSent, tot.MessagesReceived)
				}
			}
		})
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() float64 {
		cfg := machine.DefaultConfig(nic.AP3000, 2)
		return Run(cfg, Em3d, quickParams()).ExecTime.Microseconds()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
