package workload

import (
	"math/rand"

	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// spsolve is the very fine-grained iterative sparse-matrix solver: active
// messages propagate down the edges of a DAG, all computation (a single
// double-word addition) happens inside the handlers, and deep bursts of
// 20-byte messages (91%) make the receive side — and NI buffering — the
// bottleneck (§6.2.1). 8-byte (6%) and 12-byte (3%) control messages round
// out the mix, Table 4.
func spsolveProgram(p Params, nodes int) func(n *machine.Node) {
	rs := newRunState(nodes)
	levels := p.scale(12)
	const (
		verticesPerLevel = 30
		tinyPerLevel     = 2 // 8-byte messages
		ctrlPerLevel     = 1 // 12-byte messages
		edgePayload      = 12
		handlerCycles    = 15 // one double-word addition plus dispatch
	)
	// edgeDest computes, globally deterministically, the destination of
	// vertex (level, node, k)'s outgoing edge — every node can therefore
	// derive how many messages it will receive per level. Most of a node's
	// edges funnel to a single next-level owner (the DAG's chain structure),
	// which is what makes spsolve's bursts overwhelm a receiver with scant
	// buffering; the rest scatter irregularly.
	edgeDest := func(level, node, k, N int) int {
		if k%10 != 0 {
			// Trains of edges funnel to three next-level owners, giving each
			// receiver a fan-in of ~3 bursty upstream senders.
			return (node + 1 + (level+k/20)%3) % N
		}
		r := rand.New(rand.NewSource(int64(level)*1_000_003 + int64(node)*8009 + int64(k)))
		d := r.Intn(N - 1)
		if d >= node {
			d++
		}
		return d
	}
	return func(n *machine.Node) {
		N := n.Size()
		expected := make([]int, levels+1)
		for l := 0; l < levels; l++ {
			for src := 0; src < N; src++ {
				if src == n.ID {
					continue
				}
				for k := 0; k < verticesPerLevel; k++ {
					if edgeDest(l, src, k, N) == n.ID {
						expected[l]++
					}
				}
			}
		}
		got := make([]int, levels+1)
		n.EP.Register(hOneWay, rs.counted(func(ep *msglayer.Endpoint, m *msglayer.Message) {
			ep.Proc().Compute(handlerCycles)
			got[int(m.Arg)]++
		}))
		n.EP.Register(hControl, rs.counted(nil))
		rs.install(n)

		r := rng(Spsolve, n.ID)
		for l := 0; l < levels; l++ {
			// Fire this level's vertices: a deep burst of tiny messages.
			for k := 0; k < verticesPerLevel; k++ {
				rs.countedSend(n, edgeDest(l, n.ID, k, N), hOneWay, edgePayload, uint64(l))
			}
			for i := 0; i < tinyPerLevel; i++ {
				d := r.Intn(N - 1)
				if d >= n.ID {
					d++
				}
				rs.countedSend(n, d, hControl, 0, 0)
			}
			for i := 0; i < ctrlPerLevel; i++ {
				d := r.Intn(N - 1)
				if d >= n.ID {
					d++
				}
				rs.countedSend(n, d, hControl, 4, 0)
			}
			// Wait for this level's incoming edges before firing the next —
			// the DAG's data dependence; no global barrier.
			n.EP.WaitUntil(func() bool { return got[l] >= expected[l] })
			// Tiny per-level local work.
			n.Proc.P.SleepAs(stats.Compute, 800*sim.Nanosecond)
		}
		n.Barrier()
		rs.quiesce(n)
	}
}
