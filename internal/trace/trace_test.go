package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/trace"
)

func TestBusTracing(t *testing.T) {
	var buf bytes.Buffer
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	cfg.Tracer = trace.New(&buf, trace.Bus)
	m := machine.New(cfg)
	const h = 1
	got := false
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { got = true })
	}
	m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			n.EP.Send(1, h, 64, 0)
		} else {
			n.EP.WaitUntil(func() bool { return got })
		}
		n.Barrier()
	})
	out := buf.String()
	if cfg.Tracer.Lines() == 0 {
		t.Fatal("no trace lines written")
	}
	if !strings.Contains(out, "GetS") && !strings.Contains(out, "GetX") {
		t.Fatalf("no coherent transactions in trace:\n%s", out[:min(400, len(out))])
	}
	if !strings.Contains(out, "bus") {
		t.Fatal("category tag missing")
	}
}

func TestCategoryFiltering(t *testing.T) {
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.Net)
	if tr.Enabled(trace.Bus) {
		t.Fatal("bus enabled despite net-only filter")
	}
	tr.Event(10*sim.Nanosecond, trace.Bus, 0, "hidden")
	if buf.Len() != 0 {
		t.Fatal("filtered event written")
	}
	tr.Event(10*sim.Nanosecond, trace.Net, 1, "shown %d", 7)
	if !strings.Contains(buf.String(), "shown 7") {
		t.Fatalf("event missing: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "node1") {
		t.Fatalf("node tag missing: %q", buf.String())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *trace.Tracer
	if tr.Enabled(trace.Bus) {
		t.Fatal("nil tracer enabled")
	}
	if tr.Lines() != 0 {
		t.Fatal("nil tracer has lines")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
