// Package trace provides structured event tracing for simulation runs: a
// time-stamped, category-tagged line per hardware event, for debugging NI
// models and inspecting protocol behavior. Tracing is off unless a Tracer
// is installed, and costs nothing when off.
package trace

import (
	"fmt"
	"io"

	//lint:allow nogoroutine mutex only guards interleaved test harnesses, never simulation state
	"sync"

	"nisim/internal/sim"
)

// Category tags one subsystem's events.
type Category string

// Trace categories.
const (
	Bus Category = "bus" // memory-bus transactions
	Net Category = "net" // network inject/accept/bounce
	Msg Category = "msg" // messaging-layer sends and dispatches
	NIC Category = "nic" // NI component seams: engine start/complete, buffer accept/bounce/reclaim
)

// Tracer writes time-stamped event lines. Safe for use from a single
// simulation (simulations are single-threaded); the mutex only guards
// against interleaved test harnesses.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	enabled map[Category]bool
	lines   int64
}

// New creates a tracer writing to w, enabled for the given categories (all
// when none are listed).
func New(w io.Writer, cats ...Category) *Tracer {
	t := &Tracer{w: w}
	if len(cats) > 0 {
		t.enabled = make(map[Category]bool, len(cats))
		for _, c := range cats {
			t.enabled[c] = true
		}
	}
	return t
}

// Enabled reports whether a category is being traced.
func (t *Tracer) Enabled(c Category) bool {
	if t == nil {
		return false
	}
	return t.enabled == nil || t.enabled[c]
}

// Event writes one trace line: "<time> <category> node<id> <message>".
func (t *Tracer) Event(now sim.Time, c Category, node int, format string, args ...any) {
	if !t.Enabled(c) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines++
	fmt.Fprintf(t.w, "%12s %-3s node%-2d ", now, c, node)
	fmt.Fprintf(t.w, format, args...)
	fmt.Fprintln(t.w)
}

// Lines returns the number of lines written.
func (t *Tracer) Lines() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lines
}
