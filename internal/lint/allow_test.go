package lint_test

import (
	"strings"
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

// TestAllowDirectives proves the escape hatch end to end: directives with a
// reason suppress findings on their own line or the next, while reasonless
// or mistargeted directives leave the finding in place (the // want
// comments in the fixture).
func TestAllowDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DetRand, "allow")
}

// TestCheckDirectives proves that broken suppressions are themselves
// findings: a directive without a reason and a directive naming an unknown
// pass must each be reported.
func TestCheckDirectives(t *testing.T) {
	world := lint.NewWorld("testdata/src", "")
	pkg, err := world.Load("allow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.CheckDirectives(pkg, lint.All())
	if len(diags) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %+v", len(diags), diags)
	}
	var malformed, unknown bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "malformed directive"):
			malformed = true
		case strings.Contains(d.Message, "unknown pass nosuchpass"):
			unknown = true
		}
	}
	if !malformed || !unknown {
		t.Errorf("missing expected diagnostics (malformed=%v unknown=%v): %+v", malformed, unknown, diags)
	}
}

// TestStaleAllows proves the stale-escape detector: after the suppressing
// pass has run, a directive that caught a finding is fine, while one that
// suppressed nothing is itself a finding.
func TestStaleAllows(t *testing.T) {
	world := lint.NewWorld("testdata/src", "")
	pkg, err := world.Load("stale")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if diags := lint.Run(lint.DetRand, pkg); len(diags) != 0 {
		t.Fatalf("detrand findings leaked past the used directive: %+v", diags)
	}
	stale := lint.StaleAllows([]*lint.Package{pkg}, lint.All())
	if len(stale) != 1 {
		t.Fatalf("got %d stale diagnostics, want 1: %+v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "suppresses no finding") {
		t.Errorf("unexpected stale message: %q", stale[0].Message)
	}
	pos := world.Fset.Position(stale[0].Pos)
	if pos.Line != 9 {
		t.Errorf("stale directive reported at line %d, want 9 (the unused one)", pos.Line)
	}
}

// TestAllowInventory proves the JSON inventory: every well-formed directive
// appears with its pass, reason, and used flag.
func TestAllowInventory(t *testing.T) {
	world := lint.NewWorld("testdata/src", "")
	pkg, err := world.Load("stale")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	lint.Run(lint.DetRand, pkg)
	allows := lint.Allows([]*lint.Package{pkg}, func(s string) string { return s })
	if len(allows) != 2 {
		t.Fatalf("got %d allows, want 2: %+v", len(allows), allows)
	}
	if !allows[0].Used || allows[1].Used {
		t.Errorf("used flags wrong: %+v", allows)
	}
	for _, a := range allows {
		if a.Pass != "detrand" || a.Reason == "" || a.Line == 0 {
			t.Errorf("incomplete inventory entry: %+v", a)
		}
	}
}
