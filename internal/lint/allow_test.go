package lint_test

import (
	"strings"
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

// TestAllowDirectives proves the escape hatch end to end: directives with a
// reason suppress findings on their own line or the next, while reasonless
// or mistargeted directives leave the finding in place (the // want
// comments in the fixture).
func TestAllowDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DetRand, "allow")
}

// TestCheckDirectives proves that broken suppressions are themselves
// findings: a directive without a reason and a directive naming an unknown
// pass must each be reported.
func TestCheckDirectives(t *testing.T) {
	world := lint.NewWorld("testdata/src", "")
	pkg, err := world.Load("allow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.CheckDirectives(pkg, lint.All())
	if len(diags) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %+v", len(diags), diags)
	}
	var malformed, unknown bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "malformed directive"):
			malformed = true
		case strings.Contains(d.Message, "unknown pass nosuchpass"):
			unknown = true
		}
	}
	if !malformed || !unknown {
		t.Errorf("missing expected diagnostics (malformed=%v unknown=%v): %+v", malformed, unknown, diags)
	}
}
