package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

// TestChanConfine proves channel confinement: all six operation forms are
// findings in an unsanctioned package, channel *types* are not, the
// //lint:allow chanconfine escape works, and the partition-layer fixture
// (internal/sim/partition) is skipped entirely despite being full of
// channel operations.
func TestChanConfine(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ChanConfine, "chanconfine", "internal/sim/partition")
}
