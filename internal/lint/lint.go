// Package lint implements simlint: a suite of static-analysis passes that
// mechanically enforce the simulator's determinism and unit-safety
// invariants. The paper's evaluation rests on cycle-exact, reproducible
// runs; these passes turn the invariants that guarantee reproducibility —
// no wall-clock or global math/rand in model code, no map-iteration order
// leaking into event scheduling or output, sim.Time always composed from
// unit constants, goroutines only via the engine's process API, hot paths
// statically allocation-free from their //lint:hotpath roots, switches on
// //lint:enum design-space types exhaustive, channels confined to the
// sanctioned concurrency layers — into a CI gate instead of reviewer
// vigilance.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, analysistest-style fixtures) but is self-contained on the
// standard library: packages are loaded and typechecked from source, so the
// linter needs no module downloads to run.
//
// Findings can be suppressed with an annotation on the offending line or
// the line directly above it:
//
//	//lint:allow <pass> <reason>
//
// The reason is mandatory; an allow directive without one is itself a
// finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Skip, if non-nil, reports packages the pass does not apply to
	// (e.g. internal/sim itself is exempt from simtime and nogoroutine).
	Skip func(pkgPath string) bool
	// Run reports findings for one package.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// World gives access to every module package loaded alongside this
	// one, for cross-package call-graph queries.
	World *World

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     pos,
		Pass:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Pass    string
	Message string
}

// All returns the full simlint suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, SimTime, NoGoroutine, NoAlloc, Exhaustive, ChanConfine, ExportDoc}
}

// Run executes one analyzer over a loaded package and returns its findings
// with allow directives already applied, sorted by position. It returns nil
// (no findings) for packages the analyzer skips.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	if a.Skip != nil && a.Skip(pkg.Path) {
		return nil
	}
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.World.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		World:    pkg.World,
	}
	a.Run(pass)
	diags := filterAllowed(a.Name, pass.diags, pkg)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// isSimPkg reports whether p is the simulation-kernel package that owns the
// event loop and the Time unit constants. The bare path "sim" is accepted so
// analysistest fixtures can stand in a fake kernel.
func isSimPkg(p *types.Package) bool {
	if p == nil {
		return false
	}
	return isSimPkgPath(p.Path())
}

func isSimPkgPath(path string) bool {
	return path == "sim" || path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

// isOrchPkgPath reports whether path is the experiment-orchestration
// package (internal/sweep), the one sanctioned concurrency point outside
// the sim kernel. Unlike the kernel it is not blanket-exempt: nogoroutine
// runs a restricted variant there (goroutines may not reach the
// simulator), and detrand keeps its randomness bans while waiving the
// wall-clock ban (host wall time is the orchestrator's subject matter).
// The bare paths "sweep" and "internal/sweep" are accepted so analysistest
// fixtures can stand in for the orchestrator.
func isOrchPkgPath(path string) bool {
	return path == "sweep" || path == "internal/sweep" || strings.HasSuffix(path, "/internal/sweep")
}

// simTimeType reports whether t is the simulation kernel's Time type.
func isSimTime(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && isSimPkg(obj.Pkg())
}

// calleeFunc resolves the called function or method of a call expression to
// its types object, or nil for builtins, conversions, and dynamic calls.
// Explicitly instantiated generic calls (f[T](x)) resolve through their
// index expression to the generic function.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgFunc reports whether fn is the package-level function path.name
// (methods, which have receivers, never match).
func pkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil &&
		fn.Pkg().Path() == path && fn.Type().(*types.Signature).Recv() == nil
}
