// Package analysistest runs lint analyzers against testdata fixture
// packages, checking reported diagnostics against expectations embedded in
// the fixtures, in the style of golang.org/x/tools/go/analysis/analysistest
// (self-contained here because the linter depends only on the standard
// library).
//
// A fixture line that should trigger a finding carries a trailing comment:
//
//	rand.Intn(4) // want `global math/rand`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; several expectations may follow one want. Lines
// without a want comment must produce no diagnostics. //lint:allow
// directives are honored, so fixtures can also prove the escape hatch.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nisim/internal/lint"
)

// Run loads each fixture package from testdata (GOPATH-style: the package
// path names a directory under testdata/src) and checks analyzer a's
// diagnostics against the // want expectations in its sources.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	world := lint.NewWorld(testdata+"/src", "")
	for _, path := range paths {
		pkg, err := world.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		check(t, a, pkg)
	}
}

// expectation is one // want regexp at a file line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:`[^`]*`\\s*)+)$")
var wantPartRE = regexp.MustCompile("`([^`]*)`")

func check(t *testing.T, a *lint.Analyzer, pkg *lint.Package) {
	t.Helper()
	expects := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.World.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, part := range wantPartRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(part[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, part[1], err)
					}
					expects[key] = append(expects[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range lint.Run(a, pkg) {
		pos := pkg.World.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, e := range expects[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", trimPos(pos.String()), d.Message)
		}
	}
	keys := make([]string, 0, len(expects))
	for key := range expects {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, e := range expects[key] {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", trimPos(key), e.re)
			}
		}
	}
}

// trimPos shortens absolute fixture paths to their testdata-relative tail
// for readable failure messages.
func trimPos(s string) string {
	if i := strings.Index(s, "testdata/"); i >= 0 {
		return s[i:]
	}
	return s
}
