package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

func TestNoGoroutine(t *testing.T) {
	// The second fixture stands in for the sim kernel itself: it is full of
	// goroutines and channels and must produce zero findings because the
	// pass skips the kernel package. The third stands in for the sweep
	// orchestrator, exercising the restricted mode: its worker-pool
	// goroutines are accepted, but goroutines that reach the simulator are
	// still rejected. The fourth is the partition layer — shard worker
	// goroutines and sync/atomic are its subject matter, so it is skipped
	// like the kernel.
	analysistest.Run(t, "testdata", lint.NoGoroutine, "nogoroutine", "internal/sim", "sweep", "internal/sim/partition")
}
