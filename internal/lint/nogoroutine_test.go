package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

func TestNoGoroutine(t *testing.T) {
	// The second fixture stands in for the sim kernel itself: it is full of
	// goroutines and channels and must produce zero findings because the
	// pass skips the kernel package.
	analysistest.Run(t, "testdata", lint.NoGoroutine, "nogoroutine", "internal/sim")
}
