package lint_test

import (
	"go/ast"
	"go/types"
	"testing"

	"nisim/internal/lint"
)

func loadWorldFixture(t *testing.T) *lint.Package {
	t.Helper()
	world := lint.NewWorld("testdata/src", "")
	pkg, err := world.Load("worldfx")
	if err != nil {
		t.Fatalf("loading worldfx: %v", err)
	}
	return pkg
}

// usesOf collects every use of the named identifier that resolves to a
// function, across all of the package's files.
func usesOf(pkg *lint.Package, name string) []*types.Func {
	var fns []*types.Func
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != name {
				return true
			}
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				fns = append(fns, fn)
			}
			return true
		})
	}
	return fns
}

// TestWorldMultiFilePackage checks that a package's files share one type
// universe: a generic declared in a.go is resolvable from its use in b.go.
func TestWorldMultiFilePackage(t *testing.T) {
	pkg := loadWorldFixture(t)
	if len(pkg.Files) != 2 {
		t.Fatalf("got %d files, want 2", len(pkg.Files))
	}
	fns := usesOf(pkg, "Max")
	if len(fns) == 0 {
		t.Fatal("no cross-file use of Max resolved to a function")
	}
}

// TestWorldGenericInstantiation checks that FuncSource resolves
// instantiated generic functions and methods back to their generic
// declarations (via Origin), so call-graph walks do not dead-end at an
// instantiation.
func TestWorldGenericInstantiation(t *testing.T) {
	pkg := loadWorldFixture(t)
	for _, name := range []string{"Max", "First"} {
		fns := usesOf(pkg, name)
		if len(fns) == 0 {
			t.Fatalf("no use of %s resolved to a function", name)
		}
		for _, fn := range fns {
			decl, declPkg := pkg.World.FuncSource(fn)
			if decl == nil {
				t.Fatalf("FuncSource(%v) returned no declaration", fn)
			}
			if decl.Name.Name != name {
				t.Fatalf("FuncSource(%v) resolved to %s, want %s", fn, decl.Name.Name, name)
			}
			if declPkg != pkg {
				t.Fatalf("FuncSource(%v) resolved to package %s, want worldfx", fn, declPkg.Path)
			}
		}
	}
}

// TestWorldTypeAlias checks that aliases survive loading as aliases and
// unalias to the declared named type, the property exhaustive's tag
// resolution depends on.
func TestWorldTypeAlias(t *testing.T) {
	pkg := loadWorldFixture(t)
	obj := pkg.Types.Scope().Lookup("Alias")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		t.Fatalf("Alias is %T, want *types.TypeName", obj)
	}
	if !tn.IsAlias() {
		t.Fatal("Alias lost its alias-ness during loading")
	}
	named, ok := types.Unalias(tn.Type()).(*types.Named)
	if !ok {
		t.Fatalf("Unalias(Alias) is %T, want *types.Named", types.Unalias(tn.Type()))
	}
	if named.Obj().Name() != "Real" {
		t.Fatalf("Unalias(Alias) resolved to %s, want Real", named.Obj().Name())
	}
}
