package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

func TestSimTime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SimTime, "simtime")
}
