package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range statements over maps whose loop body lets Go's
// randomized iteration order escape into simulation results. Order leaks
// through four channels:
//
//   - scheduling events (directly or through any call chain that reaches
//     the engine's scheduling API) — event order becomes run-dependent;
//   - appending to a slice that outlives the loop — element order becomes
//     run-dependent, unless the slice is sorted before use (the sanctioned
//     collect-then-sort idiom, recognized when a sort call on the same
//     slice follows the loop in the enclosing block);
//   - accumulating floating-point values — float addition is not
//     associative, so the sum's low bits depend on visit order;
//   - writing output — line order becomes run-dependent.
//
// Order-independent bodies (integer accumulation, set membership updates,
// deletes) are fine and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order leaks into event scheduling, slice order, " +
		"float accumulation, or output; iterate over sorted keys instead",
	Run: runMapOrder,
}

// simSchedNames are the sim-package functions and methods that schedule
// events or transfer control between processes: reaching one of these from
// a map-ordered loop makes the event queue order run-dependent.
var simSchedNames = map[string]bool{
	"At": true, "After": true, "Spawn": true, "Step": true,
	"Run": true, "RunUntil": true, "RunWhile": true,
	"Sleep": true, "SleepAs": true, "Yield": true,
	"Park": true, "ParkAs": true, "Unpark": true,
	"Wait": true, "WaitAs": true, "Signal": true, "Broadcast": true,
}

// outputFuncs are fmt's writing functions; Sprint* are pure and excluded.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names that emit bytes to a stream or builder.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if tv, ok := pass.Info.Types[rs.X]; !ok || !isMapType(tv.Type) {
				return true
			}
			checkMapRange(pass, rs, stack)
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if pass.World.schedules(fn) {
					pass.Reportf(n.Pos(),
						"map iteration order reaches the event queue through %s; iterate over sorted keys instead", fn.FullName())
					return true
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && outputFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"output written in map-iteration order; iterate over sorted keys instead")
					return true
				}
				if pkgFunc(fn, "io", "WriteString") ||
					(fn.Type().(*types.Signature).Recv() != nil && writerMethods[fn.Name()]) {
					pass.Reportf(n.Pos(),
						"output written in map-iteration order; iterate over sorted keys instead")
					return true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					checkAppend(pass, rs, n, stack)
				}
			}
		case *ast.AssignStmt:
			checkFloatAccum(pass, rs, n)
		}
		return true
	})
}

// checkAppend flags append calls inside a map-range body whose destination
// outlives the loop, unless the collect-then-sort idiom follows.
func checkAppend(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		// Appending through a field or index expression: the destination
		// necessarily outlives the loop, and sorted-after detection does
		// not apply. Flag it.
		pass.Reportf(call.Pos(),
			"append in map-iteration order to a slice that outlives the loop; collect keys and sort first")
		return
	}
	obj := pass.Info.Uses[dst]
	if obj == nil || insideNode(obj.Pos(), rs) {
		return // loop-local slice: order cannot escape
	}
	if sortedAfter(pass, rs, obj, stack) {
		return // collect-then-sort idiom
	}
	pass.Reportf(call.Pos(),
		"append to %s in map-iteration order; sort %s before use or iterate over sorted keys", dst.Name, dst.Name)
}

// insideNode reports whether pos falls within n's source extent.
func insideNode(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos < n.End()
}

// sortedAfter reports whether a statement after the map-range loop, in the
// nearest enclosing statement list, passes obj to a sort or slices call —
// the sanctioned collect-then-sort idiom.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, obj types.Object, stack []ast.Node) bool {
	following := stmtsAfter(rs, stack)
	for _, s := range following {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if usesObject(pass, arg, obj) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// stmtsAfter returns the statements that follow the one containing rs in
// the nearest enclosing statement list.
func stmtsAfter(rs *ast.RangeStmt, stack []ast.Node) []ast.Stmt {
	// Find the statement list (block or case body) closest to rs, and the
	// direct child on the path to rs.
	for i := len(stack) - 1; i > 0; i-- {
		var list []ast.Stmt
		switch n := stack[i-1].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		child, ok := stack[i].(ast.Stmt)
		if !ok {
			continue
		}
		for j, s := range list {
			if s == child {
				return list[j+1:]
			}
		}
	}
	return nil
}

// usesObject reports whether expr mentions obj.
func usesObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkFloatAccum flags floating-point accumulation into a variable that
// outlives the loop: s += v, s = s + v, and friends.
func checkFloatAccum(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.Uses[lhs]
	if obj == nil || insideNode(obj.Pos(), rs) || !isFloat(obj.Type()) {
		return
	}
	accum := false
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
		accum = true
	case "=":
		accum = usesObject(pass, as.Rhs[0], obj)
	}
	if accum {
		pass.Reportf(as.Pos(),
			"floating-point accumulation into %s in map-iteration order is not associative; iterate over sorted keys", lhs.Name)
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// schedules reports whether calling fn can reach the sim engine's
// scheduling API. The walk follows statically resolved calls through every
// package loaded in the world; dynamic calls (interface methods, function
// values) end the chain, a documented under-approximation.
func (w *World) schedules(fn *types.Func) bool {
	switch w.schedMemo[fn] {
	case schedYes:
		return true
	case schedNo, schedVisiting:
		return false
	}
	if isSimPkg(fn.Pkg()) && simSchedNames[fn.Name()] {
		w.schedMemo[fn] = schedYes
		return true
	}
	decl, pkg := w.FuncSource(fn)
	if decl == nil {
		w.schedMemo[fn] = schedNo
		return false
	}
	w.schedMemo[fn] = schedVisiting
	result := schedNo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if result == schedYes {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeFunc(pkg.Info, call); callee != nil && callee != fn && w.schedules(callee) {
			result = schedYes
		}
		return result != schedYes
	})
	w.schedMemo[fn] = result
	return result == schedYes
}
