package lint

import (
	"go/ast"
	"go/types"
)

// DetRand forbids nondeterministic time and randomness sources in
// simulation code. A simulated run must depend only on its configuration
// and seed, so:
//
//   - wall-clock reads (time.Now, time.Since, ...) are banned;
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Seed, ...)
//     is banned — it is shared, racy, and unseeded by default;
//   - rand.New is allowed only in the seeded per-node/per-endpoint pattern
//     used by internal/workload: rand.New(rand.NewSource(<derived seed>)).
//     Anything else (a source smuggled in through a variable, a v2
//     generator without an explicit seed) is flagged as unseeded.
//
// The sweep orchestrator (internal/sweep) is exempt from the wall-clock
// ban only: it measures host wall time and enforces per-run timeouts by
// design, and simulated time never flows through it. Its randomness bans
// still apply.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and global/unseeded math/rand in simulation code; " +
		"randomness must come from a seeded per-node source or internal/faults' splitmix64 streams",
	Run: runDetRand,
}

// wallClockFuncs are the time-package functions that observe or depend on
// the host's clock. Pure constructors and formatters (time.Date, d.String)
// are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// seededSourceCtors construct explicitly seeded sources; a rand.New whose
// argument is a direct call to one of these is the sanctioned pattern.
var seededSourceCtors = map[string]bool{
	"NewSource": true, // math/rand
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func runDetRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch path := fn.Pkg().Path(); {
			case path == "time" && wallClockFuncs[fn.Name()]:
				// The sweep orchestrator is host-side tooling: measuring
				// wall-clock time (job timings, per-run timeouts) is its
				// subject matter, not a determinism leak — simulated time
				// never flows through it. Its randomness bans still apply.
				if isOrchPkgPath(pass.Pkg.Path()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock; simulated time must come from the engine (sim.Engine.Now)", fn.Name())
			case isRandPkg(path) && globalRandFuncs[fn.Name()]:
				pass.Reportf(call.Pos(),
					"rand.%s uses the global math/rand source; use a seeded per-node rand.New(rand.NewSource(seed))", fn.Name())
			case isRandPkg(path) && fn.Name() == "New" && !seededNewCall(pass, call):
				pass.Reportf(call.Pos(),
					"rand.New with a source that is not a direct rand.NewSource(seed) call; seed it per node/endpoint so runs reproduce")
			}
			return true
		})
	}
}

// seededNewCall reports whether call is rand.New(rand.NewSource(...)) (or a
// v2 equivalent) — the explicitly seeded construction.
func seededNewCall(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, inner)
	return fn != nil && fn.Pkg() != nil && isRandPkg(fn.Pkg().Path()) && seededSourceCtors[fn.Name()]
}
