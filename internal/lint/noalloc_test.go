package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

// TestNoAlloc proves the hot-path allocation proof end to end: the
// //lint:hotpath roots, the cross-package hot set (noalloc/dep is pulled in
// by the edge from the root, not by annotation), bare function references
// and generic instantiations, every flagged construct, the panic-branch
// exemption, and both roles of //lint:allow noalloc — same-line
// suppression and call-edge pruning (dep.Pruned's allocation must not be
// reported).
func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoAlloc, "noalloc", "noalloc/dep")
}
