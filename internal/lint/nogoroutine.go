package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoGoroutine keeps model code single-threaded. The event loop owns all
// concurrency: simulated software runs as cooperative processes
// (sim.Engine.Spawn) with strict control handoff, which is what makes runs
// deterministic. A stray goroutine, channel, or sync primitive in model
// code reintroduces scheduler nondeterminism — and data races — that the
// engine was built to exclude. Only internal/sim (the process runner) may
// use go statements, channels, select, and the sync package.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "model code must not spawn goroutines or use channels/select/sync; " +
		"concurrency belongs to the sim kernel's process API",
	Skip: isSimPkgPath,
	Run:  runNoGoroutine,
}

func runNoGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				if path == "sync" || path == "sync/atomic" {
					pass.Reportf(imp.Pos(),
						"import of %s outside the sim kernel; the event loop is single-threaded by design", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine outside the sim kernel; spawn simulated software with sim.Engine.Spawn")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send outside the sim kernel")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select outside the sim kernel")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(), "channel receive outside the sim kernel")
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type outside the sim kernel")
				return false
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel outside the sim kernel")
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						pass.Reportf(n.Pos(), "channel close outside the sim kernel")
					}
				}
			}
			return true
		})
	}
}
