package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoGoroutine keeps model code single-threaded. The event loop owns all
// concurrency: simulated software runs as cooperative processes
// (sim.Engine.Spawn) with strict control handoff, which is what makes runs
// deterministic. A stray goroutine, channel, or sync primitive in model
// code reintroduces scheduler nondeterminism — and data races — that the
// engine was built to exclude. Only internal/sim (the process runner) and
// internal/sim/partition (the conservative-parallel shard runtime, whose
// barrier protocol is the one sanctioned cross-shard handoff) may use go
// statements, channels, select, and the sync packages.
//
// The experiment orchestrator (internal/sweep) is the one other sanctioned
// concurrency point, under a weaker contract checked by runOrchestration:
// goroutines, channels, and sync are its business (fanning whole
// simulations out across workers), but no goroutine there may statically
// reach the simulator — each simulation must arrive as an opaque closure
// and stay single-threaded inside its worker. See DESIGN.md "Experiment
// orchestration".
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "model code must not spawn goroutines or use channels/select/sync; " +
		"concurrency belongs to the sim kernel's process API and, for fanning out " +
		"whole simulations, the sweep orchestrator",
	Skip: func(path string) bool { return isSimPkgPath(path) || isPartitionPkgPath(path) },
	Run:  runNoGoroutine,
}

func runNoGoroutine(pass *Pass) {
	if isOrchPkgPath(pass.Pkg.Path()) {
		runOrchestration(pass)
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				if path == "sync" || path == "sync/atomic" {
					pass.Reportf(imp.Pos(),
						"import of %s outside the sim kernel; the event loop is single-threaded by design", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine outside the sim kernel; spawn simulated software with sim.Engine.Spawn")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send outside the sim kernel")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select outside the sim kernel")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(), "channel receive outside the sim kernel")
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type outside the sim kernel")
				return false
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel outside the sim kernel")
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						pass.Reportf(n.Pos(), "channel close outside the sim kernel")
					}
				}
			}
			return true
		})
	}
}

// runOrchestration enforces the orchestrator's restricted contract:
// concurrency primitives are allowed, but a goroutine spawned here must
// not reach the simulation. Each go statement's statically resolvable
// calls — the spawned call itself, or every call inside a spawned function
// literal — are checked against the sim package and the transitive
// schedules() call graph; dynamic calls (the opaque job closures the
// orchestrator exists to run) end the chain, which is exactly the
// share-nothing shape the contract demands.
func runOrchestration(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						checkOrchCall(pass, call)
					}
					return true
				})
				return true
			}
			checkOrchCall(pass, g.Call)
			return true
		})
	}
}

// checkOrchCall reports a call (made from an orchestrator goroutine) that
// resolves to the sim kernel or transitively reaches its scheduling API.
func checkOrchCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	if isSimPkg(fn.Pkg()) || pass.World.schedules(fn) {
		pass.Reportf(call.Pos(),
			"orchestrator goroutine reaches the simulation through %s; simulations must enter the sweep only as opaque job closures", fn.Name())
	}
}
