package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression directive. The full form is
//
//	//lint:allow <pass> <reason>
//
// placed on the finding's line or the line directly above it. The reason is
// mandatory: a directive without one suppresses nothing and is reported by
// CheckDirectives.
const allowPrefix = "lint:allow"

// allowSite is one well-formed directive: pass name, reason, and the source
// line it annotates. used records whether the directive did anything this
// run — suppressed a finding, or pruned a noalloc walk edge — so the driver
// can report directives that have rotted into no-ops.
type allowSite struct {
	pos    token.Pos
	file   string
	line   int
	pass   string
	reason string
	used   bool
}

// allowSites returns the well-formed allow directives of a package. The
// result is cached on the World so the used marks accumulate across every
// pass run before StaleAllows inspects them.
func allowSites(pkg *Package) []*allowSite {
	w := pkg.World
	if sites, ok := w.allowCache[pkg]; ok {
		return sites
	}
	var sites []*allowSite
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pass, reason, ok := parseAllow(c.Text)
				if !ok || pass == "" || reason == "" {
					continue
				}
				pos := w.Fset.Position(c.Pos())
				sites = append(sites, &allowSite{
					pos:    c.Pos(),
					file:   pos.Filename,
					line:   pos.Line,
					pass:   pass,
					reason: reason,
				})
			}
		}
	}
	w.allowCache[pkg] = sites
	return sites
}

// parseAllow splits an //lint:allow comment into pass and reason. ok is
// false for comments that are not allow directives at all.
func parseAllow(text string) (pass, reason string, ok bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, allowPrefix) {
		return "", "", false
	}
	fields := strings.Fields(strings.TrimPrefix(body, allowPrefix))
	if len(fields) == 0 {
		return "", "", true
	}
	if len(fields) == 1 {
		return fields[0], "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// filterAllowed drops diagnostics annotated with a matching directive on
// the same line or the line directly above.
func filterAllowed(pass string, diags []Diagnostic, pkg *Package) []Diagnostic {
	sites := allowSites(pkg)
	if len(sites) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.World.Fset.Position(d.Pos)
		if !allowedAt(sites, pass, pos) {
			kept = append(kept, d)
		}
	}
	return kept
}

// allowedAt reports whether a directive for pass covers pos, marking every
// matching directive as used so it cannot be reported as stale.
func allowedAt(sites []*allowSite, pass string, pos token.Position) bool {
	hit := false
	for _, s := range sites {
		if s.pass == pass && s.file == pos.Filename && (s.line == pos.Line || s.line == pos.Line-1) {
			s.used = true
			hit = true
		}
	}
	return hit
}

// CheckDirectives reports malformed allow directives (missing pass or
// reason) and directives naming an unknown pass. Run by the driver so a
// suppression that silently suppresses nothing cannot linger.
func CheckDirectives(pkg *Package, known []*Analyzer) []Diagnostic {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pass, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				switch {
				case pass == "" || reason == "":
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Pass:    "allow",
						Message: "malformed directive: want //lint:allow <pass> <reason>",
					})
				case !names[pass]:
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Pass:    "allow",
						Message: "directive names unknown pass " + pass,
					})
				}
			}
		}
	}
	return diags
}

// StaleAllows reports well-formed directives that suppressed no finding
// (and pruned no noalloc walk edge) across every pass run so far. Only
// meaningful after the full suite has run over the whole module: a
// directive for a pass that never ran, or whose findings live in a package
// that was not analyzed, would be reported as stale vacuously, so the
// driver gates this on a default (all passes, all packages) invocation.
func StaleAllows(pkgs []*Package, known []*Analyzer) []Diagnostic {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, s := range allowSites(pkg) {
			if s.used || !names[s.pass] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:     s.pos,
				Pass:    "allow",
				Message: fmt.Sprintf("//lint:allow %s suppresses no finding; remove the stale escape", s.pass),
			})
		}
	}
	return diags
}

// An Allow describes one well-formed //lint:allow directive for the JSON
// report: where it is, which pass it waives, the recorded reason, and
// whether it actually did anything this run.
type Allow struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Pass   string `json:"pass"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

// Allows returns the full directive inventory of the analyzed packages,
// sorted by position, for the simlint/v1 report. rel maps absolute file
// names to report-relative ones (pass nil for absolute paths).
func Allows(pkgs []*Package, rel func(string) string) []Allow {
	if rel == nil {
		rel = func(s string) string { return s }
	}
	var out []Allow
	for _, pkg := range pkgs {
		for _, s := range allowSites(pkg) {
			out = append(out, Allow{
				File:   rel(s.file),
				Line:   s.line,
				Pass:   s.pass,
				Reason: s.reason,
				Used:   s.used,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}
