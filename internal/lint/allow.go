package lint

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full form is
//
//	//lint:allow <pass> <reason>
//
// placed on the finding's line or the line directly above it. The reason is
// mandatory: a directive without one suppresses nothing and is reported by
// CheckDirectives.
const allowPrefix = "lint:allow"

// allowSite is one well-formed directive: pass name plus the source line it
// annotates.
type allowSite struct {
	file string
	line int
	pass string
}

// allowSites extracts the well-formed allow directives of a package.
func allowSites(pkg *Package) []allowSite {
	var sites []allowSite
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pass, reason, ok := parseAllow(c.Text)
				if !ok || pass == "" || reason == "" {
					continue
				}
				pos := pkg.World.Fset.Position(c.Pos())
				sites = append(sites, allowSite{file: pos.Filename, line: pos.Line, pass: pass})
			}
		}
	}
	return sites
}

// parseAllow splits an //lint:allow comment into pass and reason. ok is
// false for comments that are not allow directives at all.
func parseAllow(text string) (pass, reason string, ok bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, allowPrefix) {
		return "", "", false
	}
	fields := strings.Fields(strings.TrimPrefix(body, allowPrefix))
	if len(fields) == 0 {
		return "", "", true
	}
	if len(fields) == 1 {
		return fields[0], "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// filterAllowed drops diagnostics annotated with a matching directive on
// the same line or the line directly above.
func filterAllowed(pass string, diags []Diagnostic, pkg *Package) []Diagnostic {
	sites := allowSites(pkg)
	if len(sites) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.World.Fset.Position(d.Pos)
		if !allowedAt(sites, pass, pos) {
			kept = append(kept, d)
		}
	}
	return kept
}

func allowedAt(sites []allowSite, pass string, pos token.Position) bool {
	for _, s := range sites {
		if s.pass == pass && s.file == pos.Filename && (s.line == pos.Line || s.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// CheckDirectives reports malformed allow directives (missing pass or
// reason) and directives naming an unknown pass. Run by the driver so a
// suppression that silently suppresses nothing cannot linger.
func CheckDirectives(pkg *Package, known []*Analyzer) []Diagnostic {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pass, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				switch {
				case pass == "" || reason == "":
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Pass:    "allow",
						Message: "malformed directive: want //lint:allow <pass> <reason>",
					})
				case !names[pass]:
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Pass:    "allow",
						Message: "directive names unknown pass " + pass,
					})
				}
			}
		}
	}
	return diags
}
