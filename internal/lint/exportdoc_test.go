package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

// TestExportDoc proves the documented-API bar: undocumented exported
// functions, methods, types, struct fields, constants, and variables are
// findings in an opted-in package; unexported identifiers, block-doc
// coverage of grouped constants, and spec-level docs are not. The real
// partition-layer package (internal/sim/partition) is checked by `make
// lint` directly.
func TestExportDoc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ExportDoc, "exportdoc")
}
