package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

func TestDetRand(t *testing.T) {
	// The second fixture stands in for the sweep orchestrator: wall-clock
	// reads are waived there (host timing is its subject matter), the
	// randomness bans are not.
	analysistest.Run(t, "testdata", lint.DetRand, "detrand", "internal/sweep")
}
