package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DetRand, "detrand")
}
