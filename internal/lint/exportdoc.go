package lint

import (
	"go/ast"
	"strings"
)

// ExportDoc requires a doc comment on every exported identifier —
// functions, methods, types, constants, variables, and exported struct
// fields — in the packages that opt in. Today that is the
// conservative-parallel partition layer (internal/sim/partition): its API
// is the contract between the serial kernel and the shard runtime, and an
// undocumented export there is an undocumented concurrency obligation.
// Packages opt in by path (see isExportDocPkgPath) rather than opting out,
// so the pass stays silent on the rest of the tree until a package is
// deliberately promoted to the documented-API tier.
var ExportDoc = &Analyzer{
	Name: "exportdoc",
	Doc: "exported identifiers in documented-API packages (internal/sim/partition) " +
		"must carry doc comments",
	Skip: func(path string) bool { return !isExportDocPkgPath(path) },
	Run:  runExportDoc,
}

// isExportDocPkgPath reports the packages held to the documented-API bar.
// The bare path "exportdoc" is accepted so analysistest fixtures can stand
// in for one.
func isExportDocPkgPath(path string) bool {
	return isPartitionPkgPath(path) || path == "exportdoc" || strings.HasSuffix(path, "/exportdoc")
}

func runExportDoc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					checkSpec(pass, d, spec)
				}
			}
		}
	}
}

// checkSpec reports undocumented exported names in one spec of a
// const/var/type declaration. A doc comment on the enclosing declaration
// covers every spec in its block (the grouped-const idiom); a spec-level
// doc comment covers that spec alone. Only preceding doc comments count —
// trailing line comments are asides, not API documentation.
func checkSpec(pass *Pass, d *ast.GenDecl, spec ast.Spec) {
	covered := d.Doc != nil
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if s.Name.IsExported() && !covered && s.Doc == nil {
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
		}
		if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
			for _, field := range st.Fields.List {
				if field.Doc != nil {
					continue
				}
				for _, name := range field.Names {
					if name.IsExported() {
						pass.Reportf(name.Pos(), "exported field %s.%s has no doc comment", s.Name.Name, name.Name)
					}
				}
			}
		}
	case *ast.ValueSpec:
		if covered || s.Doc != nil {
			return
		}
		for _, name := range s.Names {
			if name.IsExported() {
				kind := "variable"
				if d.Tok.String() == "const" {
					kind = "constant"
				}
				pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
			}
		}
	}
}
