package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function declaration (in its doc comment) as a
// hot-path root: the function and everything it statically reaches
// in-module must be allocation-free.
const hotpathDirective = "lint:hotpath"

// NoAlloc statically proves the simulator's hot paths allocation-free,
// turning the runtime AllocsPerRun spot-checks (which cover only the specs
// a test happens to run) into a guarantee over the whole design space.
//
// Roots carry //lint:hotpath in their doc comment. The hot set is their
// transitive closure over every package loaded in the world, following
// statically resolved calls and references to declared functions — a bare
// function name passed as a value (the typed-event Handler idiom:
// AtEvent(t, msgArrive, m, 0)) pulls the handler into the hot set without
// annotating it. Dynamic calls (interface methods, func-typed fields and
// variables) end the chain, a documented under-approximation shared with
// maporder's reachability walk. An //lint:allow noalloc directive on a
// call line prunes the walk into that callee as well as suppressing
// findings on the line, so a proven-cold or deliberately allocating branch
// cuts the proof obligation at its entry point.
//
// Inside hot functions the pass flags the allocating constructs: function
// literals (closure environments), address-taken composite literals,
// make/new, append (which may grow its backing array), map writes and
// iteration, string concatenation, calls into fmt, and arguments boxed
// into interface parameters. Arguments inside panic(...) are exempt — the
// panicking branch is off the measured path. Pointer-shaped values (*T,
// chan, map, func) box without allocating and are not flagged.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "functions reachable from //lint:hotpath roots must not allocate: " +
		"no closures, escaping composite literals, make/new, growing append, " +
		"map writes/iteration, string concatenation, fmt, or interface boxing",
	Run: runNoAlloc,
}

// hotFuncs returns the set of functions statically reachable from
// //lint:hotpath roots across every loaded package, memoized until a new
// package is indexed.
func (w *World) hotFuncs() map[*types.Func]bool {
	if w.hotMemo != nil {
		return w.hotMemo
	}
	hot := make(map[*types.Func]bool)
	w.hotMemo = hot
	for fn, fs := range w.decls {
		if hasDirective(fs.decl.Doc, hotpathDirective) {
			w.markHot(fn, hot)
		}
	}
	return hot
}

// markHot adds fn (normalized to its generic origin) and everything it
// statically reaches to the hot set. Allow directives on an edge's line
// prune the walk into that callee.
func (w *World) markHot(fn *types.Func, hot map[*types.Func]bool) {
	if fn == nil {
		return
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	if hot[fn] {
		return
	}
	decl, pkg := w.FuncSource(fn)
	if decl == nil {
		return // out-of-world: standard library or interface method
	}
	hot[fn] = true
	sites := allowSites(pkg)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		callee, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if allowedAt(sites, "noalloc", w.Fset.Position(id.Pos())) {
			return true // pruned edge; the directive is now marked used
		}
		w.markHot(callee, hot)
		return true
	})
}

// hasDirective reports whether a comment group contains the given bare
// lint directive on a line of its own.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

func runNoAlloc(pass *Pass) {
	hot := pass.World.hotFuncs()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !hot[fn] {
				continue
			}
			checkHotBody(pass, fn.Name(), fd)
		}
	}
}

// checkHotBody flags allocating constructs in one hot function body,
// exempting everything inside panic arguments.
func checkHotBody(pass *Pass, name string, fd *ast.FuncDecl) {
	var stack []ast.Node
	panicDepth := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isPanicCall(pass.Info, top) {
				panicDepth--
			}
			return true
		}
		stack = append(stack, n)
		if isPanicCall(pass.Info, n) {
			panicDepth++
			return true
		}
		if panicDepth > 0 {
			return true // the panicking branch is off the measured path
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //lint:hotpath-reachable: function literal allocates its closure", name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //lint:hotpath-reachable: address-taken composite literal escapes to the heap", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isMapIndex(pass.Info, lhs) {
					pass.Reportf(lhs.Pos(), "%s is //lint:hotpath-reachable: map assignment may grow the bucket array", name)
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass.Info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "%s is //lint:hotpath-reachable: string concatenation allocates", name)
			}
		case *ast.IncDecStmt:
			if isMapIndex(pass.Info, n.X) {
				pass.Reportf(n.X.Pos(), "%s is //lint:hotpath-reachable: map assignment may grow the bucket array", name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "%s is //lint:hotpath-reachable: string concatenation allocates", name)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "%s is //lint:hotpath-reachable: map iteration is hash-seeded and may allocate iterator state", name)
				}
			}
		}
		return true
	})
}

// checkHotCall flags allocating builtins, fmt calls, and interface-boxing
// arguments of one call inside a hot function.
func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is //lint:hotpath-reachable: %s allocates", name, b.Name())
			case "append":
				pass.Reportf(call.Pos(), "%s is //lint:hotpath-reachable: append may grow the backing array", name)
			}
			return
		}
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return // conversion or dynamic call: ends the analysis
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //lint:hotpath-reachable: fmt.%s allocates", name, fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	checkBoxing(pass, name, call, sig)
}

// checkBoxing flags call arguments whose conversion to an interface
// parameter must heap-allocate the value.
func checkBoxing(pass *Pass, name string, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // s... passes the slice itself
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		at := tv.Type
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is //lint:hotpath-reachable: %s boxes into interface parameter", name, at)
	}
}

// pointerShaped reports types whose interface representation is the value
// itself in the data word — converting them to an interface does not
// allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isPanicCall reports whether n is a call to the panic builtin.
func isPanicCall(info *types.Info, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isMapIndex(info *types.Info, e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
