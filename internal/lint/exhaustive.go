package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// enumDirective marks a named type's declaration (doc or trailing comment)
// as a design-space enum whose switches must be exhaustive.
const enumDirective = "lint:enum"

// Exhaustive makes growing the design space safe: every switch on a
// //lint:enum-marked type (nic.Engine, nic.Buffering, overload refuse and
// evict policies, netsim admission verdicts and control classes, bus
// transaction kinds, cache states) must either cover all declared
// constants of the type or carry a panicking default, so adding
// engine_rdma or a collectives buffering policy breaks the build at lint
// time instead of silently composing wrong.
//
// The required set is the declaring package's constants of the exact type,
// minus unexported num* bound sentinels (numEngines-style counts exist to
// iterate, not to occur). A default clause that panics satisfies any
// switch; a default that does not panic is itself a finding, because a new
// constant would be silently misrouted through it. Switches with
// non-constant case expressions are skipped — coverage cannot be decided
// statically.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches on //lint:enum types must cover every declared constant " +
		"or carry a panicking default, so new design-space points cannot be " +
		"silently misrouted",
	Run: runExhaustive,
}

// isMarkedEnum reports whether tn's declaration carries //lint:enum,
// scanning the declaring package's syntax once per package.
func (w *World) isMarkedEnum(tn *types.TypeName) bool {
	if tn == nil || tn.Pkg() == nil {
		return false
	}
	pkg, ok := w.pkgs[tn.Pkg().Path()]
	if !ok {
		return false
	}
	w.scanEnumMarks(pkg)
	return w.enumMarks[tn]
}

func (w *World) scanEnumMarks(pkg *Package) {
	if w.enumScanned[pkg] {
		return
	}
	w.enumScanned[pkg] = true
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(gd.Doc, enumDirective) &&
					!hasDirective(ts.Doc, enumDirective) &&
					!hasDirective(ts.Comment, enumDirective) {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					w.enumMarks[tn] = true
				}
			}
		}
	}
}

// enumConstants returns the declared constants of the enum, in the
// declaring package scope's (sorted) name order. Unexported num* names are
// bound sentinels, excluded from the required set.
func enumConstants(tn *types.TypeName) []*types.Const {
	scope := tn.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		if !c.Exported() && strings.HasPrefix(c.Name(), "num") {
			continue
		}
		consts = append(consts, c)
	}
	return consts
}

func runExhaustive(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	tn := named.Obj()
	if !pass.World.isMarkedEnum(tn) {
		return
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil { // default clause
			if panicsIn(pass.Info, cc.Body) {
				return // a panicking default satisfies any coverage
			}
			pass.Reportf(cc.Pos(),
				"switch on enum %s has a non-panicking default: a new constant would be silently misrouted through it", tn.Name())
			return
		}
		for _, e := range cc.List {
			c := constObj(pass.Info, e)
			if c == nil {
				return // non-constant case: coverage undecidable
			}
			covered[c.Val().ExactString()] = true
		}
	}

	var missing []string
	for _, c := range enumConstants(tn) {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
			covered[c.Val().ExactString()] = true // aliases count once
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch on enum %s does not cover %s; add the cases or a panicking default",
			tn.Name(), strings.Join(missing, ", "))
	}
}

// constObj resolves a case expression to the named constant it denotes.
func constObj(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}

// panicsIn reports whether the statement list directly contains a call to
// the panic builtin.
func panicsIn(info *types.Info, stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if isPanicCall(info, n) {
				found = true
			}
			return !found
		})
	}
	return found
}
