package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChanConfine confines channel operations — creation, send, receive,
// select, close, range — to the two sanctioned concurrency layers: the
// experiment orchestrator (internal/sweep) and the declared future
// conservative-parallel partition layer (internal/sim/partition, see
// ROADMAP "conservative parallel simulation"). Everywhere else, including
// the sim kernel itself, a channel operation is a finding: the kernel's
// own process-handoff channels are explicit, individually justified
// //lint:allow exceptions, so any new channel topology must either live in
// a sanctioned layer or argue its case in a directive reason. Channel
// *type* declarations (struct fields, signatures) are not flagged — only
// operations move data between goroutines.
//
// This is deliberately stricter than nogoroutine, which blanket-exempts
// internal/sim: when the sharded engine lands, its cross-shard channels
// must sit in the partition layer, not spread through the kernel.
var ChanConfine = &Analyzer{
	Name: "chanconfine",
	Doc: "channel creation/send/recv/select is confined to internal/sweep " +
		"and the internal/sim partition layer; model and kernel code must use " +
		"the engine's process API",
	Skip: isChanSanctionedPath,
	Run:  runChanConfine,
}

// isChanSanctionedPath reports the packages whose business is channels:
// the sweep orchestrator and the (future) sim partition layer.
func isChanSanctionedPath(path string) bool {
	return isOrchPkgPath(path) || isPartitionPkgPath(path)
}

func isPartitionPkgPath(path string) bool {
	return path == "sim/partition" || path == "internal/sim/partition" ||
		strings.HasSuffix(path, "/internal/sim/partition")
}

func runChanConfine(pass *Pass) {
	const confined = "is confined to internal/sweep and internal/sim/partition"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send %s", confined)
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(), "channel receive %s", confined)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select %s", confined)
			case *ast.RangeStmt:
				if isChanExpr(pass.Info, n.X) {
					pass.Reportf(n.Pos(), "range over channel %s", confined)
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB {
					switch {
					case b.Name() == "make" && isChanExpr(pass.Info, n):
						pass.Reportf(n.Pos(), "channel creation %s", confined)
					case b.Name() == "close" && len(n.Args) == 1 && isChanExpr(pass.Info, n.Args[0]):
						pass.Reportf(n.Pos(), "channel close %s", confined)
					}
				}
			}
			return true
		})
	}
}

// isChanExpr reports whether e's type is a channel.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
