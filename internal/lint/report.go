package lint

import (
	"go/token"
	"sort"
)

// ReportVersion identifies the machine-readable diagnostics schema.
const ReportVersion = "simlint/v1"

// A Report is the versioned JSON artifact of one simlint run: every
// finding that survived its directives, plus the full //lint:allow
// inventory (position, pass, reason, whether it was exercised) so
// suppressions are auditable without grepping the tree.
type Report struct {
	Version  string    `json:"version"`
	Findings []Finding `json:"findings"`
	Allows   []Allow   `json:"allows"`
}

// A Finding is one surviving diagnostic in file:line:col form.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// NewReport assembles the simlint/v1 report from a run's surviving
// diagnostics and the allow inventory of the analyzed packages. rel maps
// absolute file names to report-relative ones (nil keeps them absolute).
// Findings and Allows are never null in the marshaled output: an empty run
// reports empty arrays.
func NewReport(fset *token.FileSet, diags []Diagnostic, pkgs []*Package, rel func(string) string) Report {
	if rel == nil {
		rel = func(s string) string { return s }
	}
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		findings = append(findings, Finding{
			File:    rel(pos.Filename),
			Line:    pos.Line,
			Col:     pos.Column,
			Pass:    d.Pass,
			Message: d.Message,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
	allows := Allows(pkgs, rel)
	if allows == nil {
		allows = []Allow{}
	}
	return Report{Version: ReportVersion, Findings: findings, Allows: allows}
}
