package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

// TestExhaustive proves enum coverage checking: a missing constant and a
// non-panicking default are findings; a panicking default, full coverage
// (num* sentinels excluded), unmarked types, non-constant cases, and an
// //lint:allow exhaustive default are not.
func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Exhaustive, "exhaustive")
}
