package lint_test

import (
	"testing"

	"nisim/internal/lint"
	"nisim/internal/lint/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapOrder, "maporder")
}
