// Package exportdoc stands in for a documented-API package (the real one
// is internal/sim/partition): every exported identifier must carry a
// preceding doc comment; unexported ones are nobody's business, and a
// trailing line comment is an aside, not documentation.
package exportdoc

// Documented is a type with a doc comment: no finding.
type Documented struct {
	// Field carries a field doc: no finding.
	Field int
	Bare  int // want `exported field Documented.Bare has no doc comment`

	unexported int
}

type Naked struct{} // want `exported type Naked has no doc comment`

// Run carries a doc comment: no finding.
func Run() {}

func Launch() {} // want `exported function Launch has no doc comment`

// String documents a method: no finding.
func (Documented) String() string { return "" }

func (Documented) Close() {} // want `exported method Close has no doc comment`

func (Documented) privateMethod() {}

// Grouped constants are covered by the block doc: no findings.
const (
	StateIdle = iota
	StateBusy
)

const Loose = 3 // want `exported constant Loose has no doc comment`

var (
	// Inline carries a spec-level doc comment: no finding.
	Inline  int
	Unknown int // want `exported variable Unknown has no doc comment`
)

var hidden int

func helper() { _ = hidden; _ = Documented{}.unexported; Documented{}.privateMethod(); helper() }
