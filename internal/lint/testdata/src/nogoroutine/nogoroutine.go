// Package nogoroutine exercises the nogoroutine pass: model code must not
// spawn goroutines or use channels, select, or sync — the event loop is
// single-threaded by design.
package nogoroutine

import "sync" // want `import of sync`

// Model smuggles concurrency primitives into model state.
type Model struct {
	mu sync.Mutex
	q  chan int // want `channel type`
}

func spawn(work func()) {
	go work() // want `goroutine outside the sim kernel`
}

func pipe(c chan int) { // want `channel type`
	c <- 1 // want `channel send`
	v := <-c // want `channel receive`
	_ = v
	close(c) // want `channel close`
}

func wait(c chan int) { // want `channel type`
	select { // want `select outside the sim kernel`
	case <-c: // want `channel receive`
	}
}

func drain(c chan int) int { // want `channel type`
	n := 0
	for v := range c { // want `range over channel`
		n += v
	}
	return n
}

// plainLoops shows ordinary single-threaded model code: accepted.
func plainLoops(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
