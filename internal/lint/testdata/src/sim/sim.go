// Package sim is a miniature stand-in for the simulation kernel, giving
// fixtures a Time type with unit constants and an Engine with the
// scheduling API the analyzers recognize.
package sim

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
)

// Engine is a stub event loop.
type Engine struct{ now Time }

// NewEngine returns a stub engine.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t.
func (e *Engine) At(t Time, fn func()) {}

// After schedules fn d after now.
func (e *Engine) After(d Time, fn func()) {}

// Spawn starts a cooperative process.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process { return &Process{} }

// Process is a stub cooperative process.
type Process struct{}

// Sleep blocks the process for d.
func (p *Process) Sleep(d Time) {}

// Unpark wakes a parked process.
func (p *Process) Unpark() {}
