// Package sweep stands in for the experiment orchestrator: the one
// sanctioned concurrency point outside the sim kernel. Goroutines,
// channels, and sync are accepted here — but a goroutine that statically
// reaches the simulator (directly or through helpers) is rejected;
// simulations may enter the sweep only as opaque job closures.
package sweep

import (
	"sync"

	"sim"
)

// Job carries an opaque simulation closure, the only sanctioned way for
// simulation work to reach a worker goroutine.
type Job struct{ Run func() float64 }

// fan is the sanctioned pattern: workers pull indices from a channel and
// run opaque job closures, joining on a WaitGroup.
func fan(jobs []Job) []float64 {
	out := make([]float64, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = jobs[i].Run()
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// leakDirect spawns a goroutine that drives the simulator directly: the
// simulation would no longer be single-threaded inside its worker.
func leakDirect(e *sim.Engine) {
	go e.Spawn("worker", nil) // want `orchestrator goroutine reaches the simulation`
}

// leakTransitive reaches the scheduler through a local helper; the
// transitive call graph still catches it.
func leakTransitive(e *sim.Engine) {
	go func() {
		tick(e) // want `orchestrator goroutine reaches the simulation`
	}()
}

func tick(e *sim.Engine) { e.After(sim.Nanosecond, func() {}) }
