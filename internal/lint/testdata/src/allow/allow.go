// Package allow exercises the //lint:allow escape hatch: a directive with
// a reason on the finding's line (or the line above) suppresses it; a
// directive without a reason, or naming an unknown pass, suppresses
// nothing and is itself reported by CheckDirectives.
package allow

import "time"

// Suppressed by a directive on the preceding line:
//
//lint:allow detrand harness-only timing, never reaches simulated state
var bootTime = time.Now()

var startTime = time.Now() //lint:allow detrand harness-only timing on the same line

// A directive without a reason suppresses nothing:
//
//lint:allow detrand
var badTime = time.Now() // want `wall clock`

// A directive for a different pass does not suppress detrand findings:
//
//lint:allow maporder suppressing the wrong pass
var wrongPass = time.Now() // want `wall clock`

// CheckDirectives flags directives naming passes that do not exist:
//
//lint:allow nosuchpass stale suppression
var fineValue = 7
