// Package simtime exercises the simtime pass: durations must be composed
// from sim unit constants, not bare numbers or raw integer conversions.
package simtime

import "sim"

const tick = 5 * sim.Nanosecond

// Cfg carries two durations.
type Cfg struct {
	Latency sim.Time
	Budget  sim.Time
}

func schedule(e *sim.Engine, n int64) {
	e.After(100, nil)                        // want `bare constant 100`
	e.After(0, nil)                          // zero needs no unit
	e.After(2*sim.Nanosecond, nil)           // composed from a unit constant
	e.After(tick, nil)                       // named constant carries the unit
	e.After(sim.Time(n), nil)                // want `raw integer→sim.Time conversion`
	e.After(sim.Time(n)*sim.Nanosecond, nil) // scalar scaling of a unit
}

func configs() []Cfg {
	return []Cfg{
		{Latency: 40 * sim.Nanosecond, Budget: tick},
		{Latency: 500, Budget: 0}, // want `bare constant 500`
	}
}

// scale divides by a dimensionless count: the conversion sits inside
// arithmetic against a unit-carrying operand, which is accepted.
func scale(total sim.Time, rounds int) sim.Time {
	return total / sim.Time(rounds)
}
