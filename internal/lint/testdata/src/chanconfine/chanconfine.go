// Package chanconfine exercises channel confinement: every channel
// operation is a finding outside the sanctioned layers, channel *types*
// are not, and //lint:allow chanconfine is the escape.
package chanconfine

func ops() {
	ch := make(chan int, 1) // want `channel creation is confined`
	ch <- 1                 // want `channel send is confined`
	<-ch                    // want `channel receive is confined`
	select { // want `select is confined`
	default:
	}
	for range ch { // want `range over channel is confined`
	}
	close(ch) // want `channel close is confined`
}

// Channel types in fields and signatures are declarations, not operations:
// no findings.
type holder struct {
	c chan int
}

func sig(c chan<- int) {}

func allowed() {
	c := make(chan int) //lint:allow chanconfine fixture: justified channel use
	_ = c
}
