// Package exhaustive exercises enum coverage checking: //lint:enum-marked
// types, missing constants, panicking vs. non-panicking defaults, the num*
// bound-sentinel exclusion, unmarked types, non-constant cases, and the
// //lint:allow exhaustive escape.
package exhaustive

// Color is a fixture design-space enum.
//
//lint:enum
type Color int

const (
	Red Color = iota
	Green
	Blue
	numColors // bound sentinel: excluded from the required set
)

// Plain is unmarked: switches on it are unchecked.
type Plain int

const (
	P0 Plain = iota
	P1
)

func missing(c Color) {
	switch c { // want `switch on enum Color does not cover Blue; add the cases or a panicking default`
	case Red, Green:
	}
}

func soft(c Color) int {
	switch c {
	case Red:
		return 0
	default: // want `switch on enum Color has a non-panicking default`
		return 1
	}
}

// hard is satisfied by its panicking default even though Green and Blue
// have no case.
func hard(c Color) int {
	switch c {
	case Red:
		return 0
	default:
		panic("exhaustive: unknown color")
	}
}

// full covers every declared constant; numColors is not required.
func full(c Color) {
	switch c {
	case Red, Green, Blue:
	}
}

// unmarked types produce no findings however partial the switch.
func unmarked(p Plain) {
	switch p {
	case P0:
	}
}

// nonConst cases make coverage undecidable; the switch is skipped.
func nonConst(c, x Color) {
	switch c {
	case x:
	}
}

// allowedSoft proves the escape hatch on a deliberate fallback default.
func allowedSoft(c Color) int {
	switch c {
	case Red, Green, Blue:
		return 0
	default: //lint:allow exhaustive fixture: deliberate fallback, output locked
		return 1
	}
}
