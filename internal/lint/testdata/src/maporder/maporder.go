// Package maporder exercises the maporder pass: map-iteration order must
// not leak into event scheduling, slice order, float accumulation, or
// output. Order-independent loop bodies and the collect-then-sort idiom
// are accepted.
package maporder

import (
	"fmt"
	"sort"

	"sim"
)

func schedulesDirect(e *sim.Engine, delays map[int]int) {
	for k, v := range delays {
		e.After(sim.Time(v)*sim.Nanosecond, func() { _ = k }) // want `reaches the event queue`
	}
}

func helper(e *sim.Engine) { e.After(sim.Nanosecond, nil) }

func wake(e *sim.Engine) { helper(e) }

func schedulesTransitive(e *sim.Engine, pending map[string]bool) {
	for name := range pending {
		_ = name
		wake(e) // want `reaches the event queue`
	}
}

func appendsUnsorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k) // want `append to names`
	}
	return names
}

func accumulatesFloat(weights map[int]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w // want `floating-point accumulation`
	}
	return sum
}

func printsEntries(m map[int]string) {
	for k, v := range m {
		fmt.Printf("%d=%s\n", k, v) // want `output written in map-iteration order`
	}
}

// collectThenSort is the sanctioned idiom: gather the keys, sort them, and
// only then act in a deterministic order.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// countsEntries accumulates integers, which is associative and therefore
// order-independent: accepted.
func countsEntries(m map[string]int) int {
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

// localScratch appends only to a slice scoped inside the loop body, so no
// ordering can escape: accepted.
func localScratch(m map[int][]byte) int {
	n := 0
	for _, bs := range m {
		var local []int
		local = append(local, len(bs))
		n += local[0]
	}
	return n
}
