// Package sweep stands in for the orchestrator in detrand's fixture set:
// reading the host wall clock is its subject matter (job timings, per-run
// timeouts) and is accepted, while the global math/rand source stays
// banned — nothing host-random may leak into results.
package sweep

import (
	"math/rand"
	"time"
)

func wall() time.Time { return time.Now() } // accepted: orchestration measures host time

func elapsedMS(start time.Time) float64 { return float64(time.Since(start)) / 1e6 } // accepted

func jitter() int {
	return rand.Intn(4) // want `global math/rand`
}
