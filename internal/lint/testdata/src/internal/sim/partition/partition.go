// Package partition stands in for the conservative-parallel partition
// layer, mirroring the real package's shape: long-lived worker goroutines
// spun up at construction, an atomic spin barrier (epoch / published
// window end / arrival counter), per-shard outboxes drained between
// windows, and channel operations — all of it the layer's subject matter,
// so chanconfine and nogoroutine skip the package entirely (no want
// comments — none of these operations may be reported).
package partition

import (
	"runtime"
	"sync/atomic"
)

// record mirrors the real cross-shard handoff record.
type record struct {
	at  int64
	src int
	seq uint64
}

// group mirrors the real coordinator: one worker goroutine per shard past
// the first, synchronized by atomics, outboxes with a single writer per
// window.
type group struct {
	out     [][][]record
	epoch   atomic.Uint64
	end     atomic.Int64
	arrived atomic.Int32
	stop    atomic.Bool
}

func newGroup(shards int) *group {
	g := &group{out: make([][][]record, shards)}
	for s := 1; s < shards; s++ {
		go g.worker(s)
	}
	return g
}

func (g *group) worker(s int) {
	seen := uint64(0)
	for {
		for g.epoch.Load() == seen {
			if g.stop.Load() {
				return
			}
			runtime.Gosched()
		}
		seen++
		_ = g.end.Load()
		g.arrived.Add(1)
	}
}

func (g *group) post(src, dst int, r record) {
	g.out[src][dst] = append(g.out[src][dst], r)
}

func (g *group) runWindow(end int64, shards int) {
	g.end.Store(end)
	g.epoch.Add(1)
	for g.arrived.Load() != int32(shards-1) {
		runtime.Gosched()
	}
	g.arrived.Store(0)
}

// exchange keeps the original channel-operation coverage: channels remain
// legal here even though the hot path is atomics.
func exchange() {
	ch := make(chan record, 1)
	ch <- record{}
	<-ch
	select {
	default:
	}
	close(ch)
}
