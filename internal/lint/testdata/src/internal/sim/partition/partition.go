// Package partition stands in for the declared future conservative-parallel
// partition layer: channel operations here are the layer's subject matter,
// so chanconfine skips the package entirely (no want comments — none of
// these operations may be reported).
package partition

func exchange() {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	select {
	default:
	}
	close(ch)
}
