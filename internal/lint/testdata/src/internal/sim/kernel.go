// Package sim stands in for the simulation kernel itself: passes with a
// kernel exemption (nogoroutine, simtime) must skip it entirely, so the
// goroutines and channels below produce no findings.
package sim

func run(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		fn := fn
		go func() { fn(); done <- struct{}{} }()
	}
	for range fns {
		<-done
	}
}
