// Package stale carries one directive that suppresses a real finding and
// one that suppresses nothing, for the stale-escape detector.
package stale

import "time"

var t0 = time.Now() //lint:allow detrand fixture: harness-only timing, genuinely suppresses a finding

var x = 1 //lint:allow detrand fixture: nothing on this line ever trips detrand
