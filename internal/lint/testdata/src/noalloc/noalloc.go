// Package noalloc exercises the hot-path allocation proof: //lint:hotpath
// roots, the transitive in-module hot set (including cross-package edges,
// bare function references, and generic instantiations), the flagged
// allocating constructs, the panic-branch exemption, and the two roles of
// //lint:allow noalloc (same-line suppression and call-edge pruning).
package noalloc

import (
	"fmt"

	"noalloc/dep"
)

type node struct{ next *node }

// root exercises every flagged construct directly in an annotated function.
//
//lint:hotpath
func root(m map[int]int, s []int, a, b string) {
	f := func() {} // want `function literal allocates its closure`
	f()
	p := &node{} // want `address-taken composite literal escapes to the heap`
	_ = p
	_ = make([]int, 4) // want `make allocates`
	_ = new(node)      // want `new allocates`
	s = append(s, 1)   // want `append may grow the backing array`
	m[1] = 2           // want `map assignment may grow the bucket array`
	m[1]++             // want `map assignment may grow the bucket array`
	for range m {      // want `map iteration is hash-seeded`
	}
	_ = a + b      // want `string concatenation allocates`
	a += b         // want `string concatenation allocates`
	fmt.Println(a) // want `fmt.Println allocates`
	dep.Helper()
	dep.Pruned() //lint:allow noalloc fixture: proven-cold branch, walk must not descend
}

func box(v interface{}) {}

// boxing: non-pointer-shaped arguments to interface parameters are flagged;
// nil and pointer-shaped values are not.
//
//lint:hotpath
func boxing(n int, p *node) {
	box(n) // want `int boxes into interface parameter`
	box(p)
	box(nil)
}

// guard proves the panic-branch exemption: allocations feeding a panic are
// off the measured path.
//
//lint:hotpath
func guard(d int) {
	if d < 0 {
		panic(fmt.Sprintf("negative %d", d))
	}
}

// suppressed proves same-line //lint:allow noalloc suppression inside a hot
// function.
//
//lint:hotpath
func suppressed() {
	_ = make([]int, 1) //lint:allow noalloc fixture: justified warm-up allocation
}

func take(h func()) { h() }

// rootRef pulls byRef into the hot set by bare reference (the typed-event
// Handler idiom), without annotating byRef itself.
//
//lint:hotpath
func rootRef() { take(byRef) }

func byRef() {
	_ = new(int) // want `new allocates`
}

type stack[T any] struct{ a []T }

func (s *stack[T]) push(v T) {
	s.a = append(s.a, v) // want `append may grow the backing array`
}

// rootGen reaches push through an instantiation; the hot set must resolve
// it to the generic declaration.
//
//lint:hotpath
func rootGen() {
	var s stack[int]
	s.push(1)
}

type iface interface{ M() }

// dynamic calls end the chain: no findings in or beyond i.M.
//
//lint:hotpath
func dynamic(i iface) { i.M() }

// cold is not reachable from any root; its allocations are not findings.
func cold() {
	_ = make([]int, 8)
}
