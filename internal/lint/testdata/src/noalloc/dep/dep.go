// Package dep proves the hot set crosses package boundaries: Helper is
// reached only from the noalloc fixture's annotated root.
package dep

// Helper is hot via the cross-package edge from noalloc.root.
func Helper() {
	_ = make([]int, 1) // want `make allocates`
}

// Pruned is reached only through an //lint:allow noalloc edge in the
// caller; the walk stops there and this allocation is not reported.
func Pruned() {
	_ = make([]int, 1)
}
