// Package worldfx exercises the source loader itself: a multi-file
// package, generic declarations resolved from their instantiations, and
// type aliases.
package worldfx

// Pair is a generic type whose method is instantiated in b.go.
type Pair[T any] struct{ a, b T }

// First returns the first element.
func (p Pair[T]) First() T { return p.a }

// Max is a generic function instantiated in b.go.
func Max[T int | int64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Alias aliases Real; type queries must see through it.
type Alias = Real

// Real is the aliased named type.
type Real int
