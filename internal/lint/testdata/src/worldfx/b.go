package worldfx

func useMax() int { return Max(1, 2) }

func usePair() int {
	p := Pair[int]{a: 1, b: 2}
	return p.First()
}

func useAlias() Alias { return Alias(3) }
