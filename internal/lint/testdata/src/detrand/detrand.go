// Package detrand exercises the detrand pass: wall-clock reads and the
// global math/rand source are forbidden in simulation code, while the
// seeded per-node construction is the sanctioned pattern.
package detrand

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall clock`
}

func sinceBoot(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall clock`
}

func globalSource() int {
	rand.Seed(99)        // want `global math/rand`
	return rand.Intn(16) // want `global math/rand`
}

func unseeded(src rand.Source) *rand.Rand {
	return rand.New(src) // want `not a direct rand.NewSource`
}

// seededPerNode is the sanctioned pattern: an explicit per-node seed, as
// internal/workload derives per-application, per-node streams.
func seededPerNode(node int) int {
	r := rand.New(rand.NewSource(42 + int64(node)*7919))
	return r.Intn(16)
}

// pureTime uses time only for its unit constants, which is fine: no wall
// clock is observed.
func pureTime() time.Duration {
	return 3 * time.Second
}
