package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// A Package is one loaded, typechecked package with its syntax retained so
// analyzers can do cross-package call-graph queries.
type Package struct {
	World *World
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A World loads and typechecks packages from source, standard library
// included, sharing one FileSet and one type universe. Two resolution modes
// exist:
//
//   - module mode (modulePath != ""): import paths under modulePath resolve
//     to directories under root, everything else is standard library;
//   - fixture mode (modulePath == ""): GOPATH-style, any import path whose
//     directory exists under root resolves there (used by analysistest,
//     whose testdata/src trees stand in for a GOPATH).
//
// Standard-library imports are typechecked from $GOROOT/src via the
// go/importer source importer, so no compiled export data — and no module
// downloads — are required.
type World struct {
	Fset       *token.FileSet
	Root       string
	ModulePath string

	std       types.ImporterFrom
	pkgs      map[string]*Package
	loading   map[string]bool
	decls     map[*types.Func]*funcSource
	schedMemo map[*types.Func]schedState

	// allowCache keys each package's //lint:allow sites so used marks
	// accumulate across passes (see allowSites, StaleAllows).
	allowCache map[*Package][]*allowSite
	// hotMemo is the //lint:hotpath transitive closure, invalidated when a
	// new package is indexed so late loads can contribute roots.
	hotMemo map[*types.Func]bool
	// enumMarks records //lint:enum-annotated named types, per declaring
	// package (scanned lazily by isMarkedEnum).
	enumMarks   map[*types.TypeName]bool
	enumScanned map[*Package]bool
}

// schedState memoizes (*World).schedules; schedVisiting breaks recursion
// cycles (a cycle that never reaches the scheduler does not schedule).
type schedState int8

const (
	schedUnknown schedState = iota
	schedVisiting
	schedYes
	schedNo
)

// funcSource pairs a function declaration with the package whose type
// information resolves the identifiers in its body.
type funcSource struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// NewWorld returns an empty world rooted at root. modulePath is the module's
// import-path prefix, or "" for fixture (GOPATH-style) resolution.
func NewWorld(root, modulePath string) *World {
	fset := token.NewFileSet()
	return &World{
		Fset:        fset,
		Root:        root,
		ModulePath:  modulePath,
		std:         importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:        make(map[string]*Package),
		loading:     make(map[string]bool),
		decls:       make(map[*types.Func]*funcSource),
		schedMemo:   make(map[*types.Func]schedState),
		allowCache:  make(map[*Package][]*allowSite),
		enumMarks:   make(map[*types.TypeName]bool),
		enumScanned: make(map[*Package]bool),
	}
}

// local reports whether path resolves inside this world's root, returning
// the directory when it does.
func (w *World) local(path string) (string, bool) {
	if w.ModulePath != "" {
		if path == w.ModulePath {
			return w.Root, true
		}
		if rest, ok := strings.CutPrefix(path, w.ModulePath+"/"); ok {
			return filepath.Join(w.Root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(w.Root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}

// Load parses and typechecks the package with the given import path (and,
// recursively, its in-world dependencies). Loading is memoized; type errors
// are hard failures so that analyzers only ever see well-typed packages.
func (w *World) Load(path string) (*Package, error) {
	if p, ok := w.pkgs[path]; ok {
		return p, nil
	}
	if w.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir, ok := w.local(path)
	if !ok {
		return nil, fmt.Errorf("lint: %q does not resolve under %s", path, w.Root)
	}
	w.loading[path] = true
	defer delete(w.loading, path)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(w.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: (*worldImporter)(w),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, _ := conf.Check(path, w.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typechecking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}

	p := &Package{World: w, Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	w.pkgs[path] = p
	w.indexFuncs(p)
	return p, nil
}

// indexFuncs records every function and method body in p so call-graph
// queries can cross package boundaries.
func (w *World) indexFuncs(p *Package) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				w.decls[fn] = &funcSource{decl: fd, pkg: p}
			}
		}
	}
	// New declarations can add //lint:hotpath roots; recompute on demand.
	w.hotMemo = nil
}

// FuncSource returns the body and owning package of fn, when fn was loaded
// into this world (standard-library and interface methods return nil).
// Instantiated generic functions and methods resolve to their generic
// declaration via Origin.
func (w *World) FuncSource(fn *types.Func) (*ast.FuncDecl, *Package) {
	if fs, ok := w.decls[fn]; ok {
		return fs.decl, fs.pkg
	}
	if o := fn.Origin(); o != fn {
		if fs, ok := w.decls[o]; ok {
			return fs.decl, fs.pkg
		}
	}
	return nil, nil
}

// worldImporter adapts a World to types.Importer for the typechecker.
type worldImporter World

func (wi *worldImporter) Import(path string) (*types.Package, error) {
	w := (*World)(wi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := w.local(path); ok {
		p, err := w.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return w.std.ImportFrom(path, w.Root, 0)
}
