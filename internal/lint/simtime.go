package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SimTime enforces unit discipline on sim.Time. Simulated time is integer
// picoseconds; a bare numeric literal where sim.Time is expected ("After(100,
// ...)" — 100 what?) compiles silently but carries no unit, and a raw
// integer→sim.Time conversion at a call boundary launders an unitless count
// into a duration. Durations must be composed from the kernel's unit
// constants (2*sim.Nanosecond, clock.Cycles(3), cfg.Latency).
//
// Accepted forms:
//
//   - 0 (the zero duration needs no unit);
//   - any constant expression referencing a named constant or variable
//     (2*sim.Nanosecond, 3*tickPeriod) — the name carries the unit;
//   - integer→sim.Time conversions inside arithmetic that scales a
//     unit-carrying operand (sim.Time(n)*sim.Nanosecond, total/sim.Time(rounds)),
//     where the conversion expresses a dimensionless scalar.
//
// internal/sim itself is exempt: it defines the units.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "flag non-zero bare integer literals and raw integer conversions used as sim.Time; " +
		"compose durations from sim unit constants",
	Skip: isSimPkgPath,
	Run:  runSimTime,
}

func runSimTime(pass *Pass) {
	for _, f := range pass.Files {
		checkBareLiterals(pass, f)
		checkRawConversions(pass, f)
	}
}

// checkBareLiterals reports maximal constant expressions of type sim.Time
// built from literals alone. The walk prunes at the first constant sim.Time
// expression on each path: if it mentions any identifier (a unit constant,
// a named parameter) the whole expression is accepted; otherwise it is a
// unitless number being silently promoted to a duration.
func checkBareLiterals(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[expr]
		if !ok || tv.Value == nil || !isSimTime(tv.Type) {
			return true
		}
		if mentionsIdent(expr) {
			return false // unit carried by a name; accept wholesale
		}
		if constant.Sign(tv.Value) != 0 {
			pass.Reportf(expr.Pos(),
				"bare constant %s used as sim.Time; compose the duration from sim unit constants (e.g. %s*sim.Nanosecond)",
				tv.Value, tv.Value)
		}
		return false
	})
}

// mentionsIdent reports whether expr contains any identifier (so its value
// is named somewhere, which is what carries the unit).
func mentionsIdent(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.Ident); ok {
			found = true
		}
		return !found
	})
	return found
}

// checkRawConversions reports sim.Time(x) conversions of integer operands
// that are used directly as a duration — as a call argument, struct field,
// assignment, or return value — rather than as a dimensionless scale factor
// inside arithmetic.
func checkRawConversions(pass *Pass, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		funTV, ok := pass.Info.Types[call.Fun]
		if !ok || !funTV.IsType() || !isSimTime(funTV.Type) {
			return true
		}
		argTV, ok := pass.Info.Types[call.Args[0]]
		if !ok || !isIntegerNonTime(argTV.Type) {
			return true
		}
		if argTV.Value != nil && constant.Sign(argTV.Value) == 0 {
			return true // sim.Time(0) carries no unit by definition
		}
		if inScalingContext(stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"raw integer→sim.Time conversion used as a duration; multiply by a sim unit constant instead")
		return true
	})
}

func isIntegerNonTime(t types.Type) bool {
	if t == nil || isSimTime(t) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// inScalingContext reports whether the node on top of stack sits directly
// inside binary arithmetic (ignoring parentheses) — the scalar-scaling
// position where a unitless conversion is legitimate.
func inScalingContext(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.BinaryExpr:
			return true
		default:
			return false
		}
	}
	return false
}
