package sim

import "testing"

func TestAlignExactBoundary(t *testing.T) {
	c := MHz(250) // 4 ns period
	if got := c.Align(0); got != 0 {
		t.Fatalf("Align(0) = %v, want 0", got)
	}
	for _, mult := range []Time{1, 2, 3, 1000} {
		at := mult * c.Period
		if got := c.Align(at); got != at {
			t.Fatalf("Align(%v) = %v, want unchanged (exact boundary)", at, got)
		}
	}
	// One picosecond past a boundary rounds up to the next one.
	at := 2 * c.Period
	if got := c.Align(at + Picosecond); got != at+c.Period {
		t.Fatalf("Align(%v) = %v, want %v", at+Picosecond, got, at+c.Period)
	}
	// One picosecond before a boundary also lands on it.
	if got := c.Align(at - Picosecond); got != at {
		t.Fatalf("Align(%v) = %v, want %v", at-Picosecond, got, at)
	}
}

func TestAlignDegenerateClock(t *testing.T) {
	at := 7 * Nanosecond
	for _, c := range []Clock{{Period: 0}, {Period: -Nanosecond}} {
		if got := c.Align(at); got != at {
			t.Fatalf("Align with Period=%v changed %v to %v, want identity", c.Period, at, got)
		}
	}
}

func TestCyclesInEdges(t *testing.T) {
	c := MHz(250) // 4 ns period
	if got := c.CyclesIn(0); got != 0 {
		t.Fatalf("CyclesIn(0) = %d, want 0", got)
	}
	if got := c.CyclesIn(c.Period); got != 1 {
		t.Fatalf("CyclesIn(one period) = %d, want 1", got)
	}
	if got := c.CyclesIn(3 * c.Period); got != 3 {
		t.Fatalf("CyclesIn(3 periods) = %d, want 3", got)
	}
	// A partial cycle rounds up.
	if got := c.CyclesIn(3*c.Period + Picosecond); got != 4 {
		t.Fatalf("CyclesIn(3 periods + 1ps) = %d, want 4", got)
	}
	if got := c.CyclesIn(Picosecond); got != 1 {
		t.Fatalf("CyclesIn(1ps) = %d, want 1", got)
	}
}

func TestCyclesInNegativeDuration(t *testing.T) {
	c := MHz(250)
	// Negative durations never yield positive cycle counts.
	for _, d := range []Time{-Picosecond, -c.Period, -10 * Nanosecond, -Second} {
		if got := c.CyclesIn(d); got > 0 {
			t.Fatalf("CyclesIn(%v) = %d, want <= 0", d, got)
		}
	}
}

func TestCyclesInDegenerateClock(t *testing.T) {
	for _, c := range []Clock{{Period: 0}, {Period: -Nanosecond}} {
		if got := c.CyclesIn(10 * Nanosecond); got != 0 {
			t.Fatalf("CyclesIn with Period=%v = %d, want 0", c.Period, got)
		}
	}
}

func TestCyclesZeroAndNegativeCounts(t *testing.T) {
	c := GHz(1)
	if got := c.Cycles(0); got != 0 {
		t.Fatalf("Cycles(0) = %v, want 0", got)
	}
	if got := c.Cycles(5); got != 5*Nanosecond {
		t.Fatalf("Cycles(5) = %v, want 5ns", got)
	}
}
