package sim

import (
	"fmt"
	"runtime"
)

// Process is a cooperative coroutine running simulated software. Exactly one
// goroutine — either the engine's run loop or one process — executes at any
// instant; control is handed off synchronously, so simulations remain fully
// deterministic despite using goroutines under the hood.
//
// All Process methods except Done must be called from within the process's
// own body function.
type Process struct {
	eng    *Engine
	name   string
	sem    chan struct{} // engine -> process: resume
	back   chan struct{} // process -> engine: yielded or finished
	done   bool
	killed bool
	parked bool

	// Category is an opaque tag identifying what the simulated software is
	// currently doing (compute, data transfer, buffering stall, ...). Time
	// accounting layers read and restore it around blocking operations.
	Category int

	// OnBlocked, if non-nil, is invoked with (category, duration) every time
	// the process spends simulated time blocked. Higher layers use it to
	// attribute processor time.
	OnBlocked func(category int, d Time)
}

// Spawn creates a process executing body and schedules it to start at the
// current simulation time. The body runs entirely inside engine time.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{
		eng:  e,
		name: name,
		sem:  make(chan struct{}), //lint:allow chanconfine coroutine handoff pair is the kernel's process primitive, created once per Spawn
		back: make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		<-p.sem //lint:allow chanconfine strict synchronous handoff: the goroutine blocks until the engine resumes it
		if p.killed {
			p.back <- struct{}{} //lint:allow chanconfine killed-before-start acknowledgment back to the engine
			return
		}
		body(p)
		p.done = true
		delete(e.procs, p)
		p.back <- struct{}{} //lint:allow chanconfine body-finished handoff back to the engine
	}()
	e.AfterEvent(0, procResume, p, 0)
	return p
}

// procResume is the shared typed-event handler that resumes a process. Every
// unpark, yield, and sleep wakeup in the simulation dispatches through this
// one function; using a method value (p.resume) instead would allocate a
// fresh closure per scheduling.
//
//lint:hotpath
func procResume(recv any, _ uint64) { recv.(*Process).resume() }

// resume transfers control to the process and waits until it yields back.
// Must be called from engine context (an event callback).
func (p *Process) resume() {
	if p.done {
		return
	}
	p.parked = false
	p.sem <- struct{}{} //lint:allow chanconfine engine-to-process control transfer; the pair of ops is the handoff itself
	<-p.back
}

// suspend parks the process, handing control back to the engine. Must be
// called from process context.
func (p *Process) suspend() {
	p.parked = true
	p.back <- struct{}{} //lint:allow chanconfine process-to-engine control transfer; blocks until resumed
	<-p.sem
	if p.killed {
		p.done = true
		delete(p.eng.procs, p)
		p.back <- struct{}{} //lint:allow chanconfine kill acknowledgment before Goexit unwinds the coroutine
		runtime.Goexit()
	}
}

// kill terminates a parked or unstarted process. Called from engine context.
func (p *Process) kill() {
	if p.done {
		return
	}
	p.killed = true
	p.sem <- struct{}{} //lint:allow chanconfine teardown handoff waking the parked coroutine so it can exit
	<-p.back
}

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Name returns the process's diagnostic name.
func (p *Process) Name() string { return p.name }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.eng.now }

// Sleep blocks the process for d picoseconds of simulated time, attributing
// the time to the process's current Category.
//
//lint:hotpath
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %s sleeping negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	start := p.eng.now
	p.eng.AfterEvent(d, procResume, p, 0)
	p.suspend()
	p.account(start)
}

// SleepAs is Sleep with an explicit accounting category, restoring the
// previous category afterwards.
//
//lint:hotpath
func (p *Process) SleepAs(category int, d Time) {
	prev := p.Category
	p.Category = category
	p.Sleep(d)
	p.Category = prev
}

// Yield reschedules the process at the current time, after all events
// already scheduled for this instant.
//
//lint:hotpath
func (p *Process) Yield() {
	p.eng.AfterEvent(0, procResume, p, 0)
	p.suspend()
}

// Park suspends the process until another component calls Unpark (directly
// or via a Cond). Blocked time is charged to the current Category.
//
//lint:hotpath
func (p *Process) Park() {
	start := p.eng.now
	p.suspend()
	p.account(start)
}

// ParkAs is Park with an explicit accounting category.
//
//lint:hotpath
func (p *Process) ParkAs(category int) {
	prev := p.Category
	p.Category = category
	p.Park()
	p.Category = prev
}

// Unpark schedules a parked process to resume at the current time. It is a
// no-op for done processes. Safe to call from engine or process context.
//
//lint:hotpath
func (p *Process) Unpark() {
	if p.done {
		return
	}
	p.eng.AfterEvent(0, procResume, p, 0)
}

func (p *Process) account(start Time) {
	if p.OnBlocked != nil {
		if d := p.eng.now - start; d > 0 {
			p.OnBlocked(p.Category, d)
		}
	}
}

// Cond is a condition variable for processes. The zero value is not usable;
// create with NewCond.
type Cond struct {
	eng     *Engine
	waiters []*Process
	// spare is the waiter array retired by the last Broadcast, reused as
	// the next waiters backing store so steady-state wait/broadcast cycles
	// ping-pong between two buffers instead of growing a fresh array each
	// cycle.
	spare []*Process
}

// NewCond returns a condition variable bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks p until Broadcast or Signal. As with sync.Cond, callers must
// re-check their predicate in a loop: wakeups are broadcast at time t and a
// competing process may consume the resource first.
//
//lint:hotpath
func (c *Cond) Wait(p *Process) {
	c.waiters = append(c.waiters, p) //lint:allow noalloc waiter list ping-pongs with Broadcast's retired buffer; it grows only to the peak waiter count
	p.Park()
}

// WaitAs is Wait with an explicit accounting category for the blocked time.
//
//lint:hotpath
func (c *Cond) WaitAs(p *Process, category int) {
	prev := p.Category
	p.Category = category
	c.Wait(p)
	p.Category = prev
}

// Broadcast wakes all waiting processes and retires the waiter array into
// spare, keeping the wakeup order (FIFO arrival) identical to an
// allocate-per-cycle implementation.
//
//lint:hotpath
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters, c.spare = c.spare[:0], ws
	for i, p := range ws {
		ws[i] = nil // drop the reference; the array outlives the wakeup
		p.Unpark()
	}
}

// Signal wakes the longest-waiting process, if any.
//
//lint:hotpath
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.Unpark()
}

// Waiters returns the number of processes currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }
