package sim

import "testing"

// BenchmarkScheduleClosure is the pre-refactor idiom: one closure per
// scheduled event. The closure environment still allocates at the caller;
// only the event record and heap slot are pooled.
func BenchmarkScheduleClosure(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(Nanosecond, tick)
	e.Run()
}

// BenchmarkScheduleTyped is the hot-path idiom: shared handler, pointer
// receiver, pooled record — zero allocations per event.
func BenchmarkScheduleTyped(b *testing.B) {
	e := NewEngine()
	type state struct{ n int }
	s := &state{}
	var tick Handler
	tick = func(recv any, _ uint64) {
		st := recv.(*state)
		st.n++
		if st.n < b.N {
			e.AfterEvent(Nanosecond, tick, st, 0)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.AfterEvent(Nanosecond, tick, s, 0)
	e.Run()
}

// BenchmarkTimerArmStop measures the cancellation path the reliability
// layer exercises on every acknowledged send: arm a timer, then stop it.
func BenchmarkTimerArmStop(b *testing.B) {
	e := NewEngine()
	h := Handler(func(any, uint64) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.AfterTimer(Nanosecond, h, nil, 0)
		tm.Stop()
	}
}

// BenchmarkProcessYield measures the cooperative-process round trip: one
// yield schedules one typed resume event and one full handoff.
func BenchmarkProcessYield(b *testing.B) {
	e := NewEngine()
	e.Spawn("yielder", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	e.Drain()
}
