package sim

import (
	"strings"
	"testing"
)

func TestStallReportConcatenatesCheckers(t *testing.T) {
	e := NewEngine()
	e.RegisterQuiescence(func() string { return "widget-a stuck" })
	e.RegisterQuiescence(func() string { return "" }) // quiescent subsystem
	e.RegisterQuiescence(func() string { return "widget-b stuck" })
	r := e.StallReport()
	if !strings.Contains(r, "widget-a stuck") || !strings.Contains(r, "widget-b stuck") {
		t.Fatalf("report missing checker output: %q", r)
	}
}

func TestOnStallFiresWhenQueueDrainsWithHeldState(t *testing.T) {
	e := NewEngine()
	held := true
	e.RegisterQuiescence(func() string {
		if held {
			return "resource held"
		}
		return ""
	})
	var got string
	e.OnStall = func(r string) { got = r }
	// A process parks on a condition nobody ever signals: the event queue
	// drains with the process still live.
	e.Spawn("waiter", func(p *Process) { NewCond(e).Wait(p) })
	e.Run()
	if !strings.Contains(got, "resource held") {
		t.Fatalf("OnStall got %q, want the checker's report", got)
	}
}

func TestOnStallSilentWhenQuiescent(t *testing.T) {
	e := NewEngine()
	e.RegisterQuiescence(func() string { return "" })
	called := false
	e.OnStall = func(string) { called = true }
	e.At(10*Nanosecond, func() {})
	e.Run()
	if called {
		t.Fatal("OnStall fired on a cleanly quiescent run")
	}
}
