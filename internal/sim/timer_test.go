package sim

import "testing"

func TestTimerStopRemovesEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.AfterTimer(10*Nanosecond, func(any, uint64) { fired = true }, nil, 0)
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer should report true")
	}
	if tm.Active() {
		t.Fatal("timer should be inactive after Stop")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop+Run, want 0", e.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.AfterTimer(Nanosecond, func(any, uint64) { fired++ }, nil, 0)
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Active() {
		t.Fatal("timer reports active after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Active() {
		t.Fatal("zero Timer reports active")
	}
	if tm.Stop() {
		t.Fatal("zero Timer Stop reports true")
	}
}

// TestStaleTimerCannotCancelRecycledEvent is the ABA guard: a Timer whose
// event fired (returning the record to the pool) must not cancel an
// unrelated event that later reuses the same record.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	tm := e.AfterTimer(Nanosecond, func(any, uint64) {}, nil, 0)
	e.Run()

	// The pool now holds the fired record; this schedule reuses it.
	fired := false
	e.AfterTimer(Nanosecond, func(any, uint64) { fired = true }, nil, 0)
	if tm.Stop() {
		t.Fatal("stale Timer.Stop claimed to cancel a recycled event")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event was cancelled by a stale timer handle")
	}
}

// TestSameTimeFIFOMixedKinds verifies FIFO-at-same-timestamp across closure
// events, typed events, and timers interleaved: the firing order is exactly
// the scheduling order.
func TestSameTimeFIFOMixedKinds(t *testing.T) {
	e := NewEngine()
	var got []int
	note := func(recv any, arg uint64) { got = append(got, int(arg)) }
	at := 5 * Nanosecond
	e.At(at, func() { got = append(got, 0) })
	e.AtEvent(at, note, nil, 1)
	e.AtTimer(at, note, nil, 2)
	e.At(at, func() { got = append(got, 3) })
	e.AtEvent(at, note, nil, 4)
	e.Run()
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestReArmedTimerFIFOOrder is the regression test for timer re-arming: a
// timer stopped and re-armed at the same timestamp as other pending events
// fires in its NEW schedule position (after events scheduled before the
// re-arm), not its original one.
func TestReArmedTimerFIFOOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	note := func(recv any, arg uint64) { got = append(got, int(arg)) }
	at := 10 * Nanosecond
	tm := e.AtTimer(at, note, nil, 0) // original position: first
	e.AtEvent(at, note, nil, 1)
	e.AtEvent(at, note, nil, 2)
	tm.Stop()
	e.AtTimer(at, note, nil, 0) // re-armed: now last
	e.Run()
	want := []int{1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestCancelMiddleEventPreservesOrder removes an event from the middle of a
// same-timestamp run and checks the survivors keep their relative order.
func TestCancelMiddleEventPreservesOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	note := func(recv any, arg uint64) { got = append(got, int(arg)) }
	at := 10 * Nanosecond
	var timers []Timer
	for i := 0; i < 9; i++ {
		timers = append(timers, e.AtTimer(at, note, nil, uint64(i)))
	}
	timers[4].Stop()
	timers[7].Stop()
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestTypedScheduleAllocFree is the allocation gate for the hot path: a
// steady-state schedule→fire cycle of typed events must not allocate, and
// neither may arming and stopping a timer.
func TestTypedScheduleAllocFree(t *testing.T) {
	e := NewEngine()
	type node struct{ count int }
	n := &node{}
	var tick Handler
	tick = func(recv any, _ uint64) {
		nd := recv.(*node)
		nd.count++
		if nd.count%2 == 0 {
			e.AfterEvent(Nanosecond, tick, nd, 0)
		}
	}
	// Warm the pool.
	e.AfterEvent(Nanosecond, tick, n, 0)
	e.AfterEvent(Nanosecond, tick, n, 0)
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterEvent(Nanosecond, tick, n, 0)
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("typed schedule/fire allocates %.1f per run, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(1000, func() {
		tm := e.AfterTimer(Nanosecond, tick, n, 0)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("timer arm/stop allocates %.1f per run, want 0", allocs)
	}
}

// TestProcessResumeAllocFree gates the highest-frequency scheduling site:
// the process unpark/yield path must ride the pooled typed-event records.
func TestProcessResumeAllocFree(t *testing.T) {
	e := NewEngine()
	stop := false
	p := e.Spawn("spinner", func(p *Process) {
		for !stop {
			p.Park()
		}
	})
	e.Run() // park the process

	allocs := testing.AllocsPerRun(1000, func() {
		p.Unpark()
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("unpark/resume allocates %.1f per run, want 0", allocs)
	}
	stop = true
	p.Unpark()
	e.Run()
	e.Drain()
}

// TestHeapShrinksAfterDrain verifies the backing array contracts once a
// large burst drains, instead of pinning peak-queue memory for the run.
func TestHeapShrinksAfterDrain(t *testing.T) {
	e := NewEngine()
	const burst = 4 * minHeapCap
	for i := 0; i < burst; i++ {
		e.At(Time(i)*Nanosecond, func() {})
	}
	peak := cap(e.pq.a)
	if peak < burst {
		t.Fatalf("cap %d after %d pushes, want >= %d", peak, burst, burst)
	}
	e.Run()
	if got := cap(e.pq.a); got >= peak {
		t.Fatalf("heap cap %d did not shrink from peak %d after drain", got, peak)
	}
	// The engine must still work after shrinking.
	fired := false
	e.After(Nanosecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event lost after heap shrink")
	}
}

// TestEventPoolBounded verifies the free list stops growing at its cap so
// a one-off burst cannot pin its footprint forever.
func TestEventPoolBounded(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 2*maxPooledEvents; i++ {
		e.At(Time(i)*Picosecond, func() {})
	}
	e.Run()
	if e.pooled > maxPooledEvents {
		t.Fatalf("pool holds %d records, cap is %d", e.pooled, maxPooledEvents)
	}
}
