package sim

// Clock converts between cycle counts of a fixed-frequency clock and
// simulated time. The model machine has several: a 1 GHz processor clock, a
// 250 MHz memory-bus clock, and fixed device latencies.
type Clock struct {
	// Period is the duration of one cycle.
	Period Time
}

// MHz returns a clock with the given frequency in megahertz. The frequency
// must divide 1e6 MHz evenly in picoseconds (all Table 3 clocks do).
func MHz(f int64) Clock { return Clock{Period: Time(1_000_000/f) * Picosecond} }

// GHz returns a clock with the given frequency in gigahertz.
func GHz(f int64) Clock { return Clock{Period: Nanosecond / Time(f)} }

// Cycles returns the duration of n cycles.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// CyclesIn returns the number of whole cycles in d, rounding up.
func (c Clock) CyclesIn(d Time) int64 {
	if c.Period <= 0 {
		return 0
	}
	return int64((d + c.Period - 1) / c.Period)
}

// Align rounds t up to the next cycle boundary of this clock (boundaries at
// multiples of Period from time zero).
func (c Clock) Align(t Time) Time {
	if c.Period <= 0 {
		return t
	}
	rem := t % c.Period
	if rem == 0 {
		return t
	}
	return t + c.Period - rem
}
