package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("final time = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5*Nanosecond, func() {})
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10*Nanosecond, func() {
		fired = append(fired, e.Now())
		e.After(15*Nanosecond, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10*Nanosecond || fired[1] != 25*Nanosecond {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Nanosecond, func() { count++ })
	}
	e.RunUntil(5 * Nanosecond)
	if count != 5 {
		t.Fatalf("RunUntil ran %d events, want 5", count)
	}
	if e.Now() != 5*Nanosecond {
		t.Fatalf("now = %v, want 5ns", e.Now())
	}
	e.RunUntil(100 * Nanosecond)
	if count != 10 || e.Now() != 100*Nanosecond {
		t.Fatalf("count=%d now=%v after second RunUntil", count, e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Nanosecond, func() { count++ })
	}
	e.RunWhile(func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("RunWhile stopped at %d events, want 3", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1*Nanosecond, func() { count++; e.Stop() })
	e.At(2*Nanosecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the loop: count=%d", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

// Property: for any random multiset of timestamps, the engine fires events
// in nondecreasing time order and same-time events in scheduling order.
func TestEventOrderIsTotalOrder(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, s := range stamps {
			i, at := i, Time(s)*Nanosecond
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(stamps) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		}) {
			return false
		}
		// Already-sorted check above allows equality; verify strict total order
		// over (time, seq) pairs by uniqueness of seq.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving After scheduling from inside events preserves
// causality (an event scheduled with delay d fires exactly d later).
func TestAfterDelayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	errs := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		if depth > 4 {
			return
		}
		d := Time(rng.Intn(100)) * Nanosecond
		base := e.Now()
		e.After(d, func() {
			if e.Now() != base+d {
				errs++
			}
			schedule(depth + 1)
			schedule(depth + 1)
		})
	}
	schedule(0)
	e.Run()
	if errs != 0 {
		t.Fatalf("%d events fired at wrong time", errs)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:               "500ps",
		2 * Nanosecond:                 "2.000ns",
		1500 * Nanosecond:              "1.500us",
		2500 * Microsecond:             "2.500ms",
		3*Microsecond + 420*Nanosecond: "3.420us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestClock(t *testing.T) {
	bus := MHz(250)
	if bus.Period != 4*Nanosecond {
		t.Fatalf("250 MHz period = %v, want 4ns", bus.Period)
	}
	cpu := GHz(1)
	if cpu.Period != Nanosecond {
		t.Fatalf("1 GHz period = %v, want 1ns", cpu.Period)
	}
	if bus.Cycles(3) != 12*Nanosecond {
		t.Fatalf("Cycles(3) = %v", bus.Cycles(3))
	}
	if bus.CyclesIn(9*Nanosecond) != 3 {
		t.Fatalf("CyclesIn(9ns) = %d, want 3", bus.CyclesIn(9*Nanosecond))
	}
	if bus.Align(9*Nanosecond) != 12*Nanosecond {
		t.Fatalf("Align(9ns) = %v, want 12ns", bus.Align(9*Nanosecond))
	}
	if bus.Align(8*Nanosecond) != 8*Nanosecond {
		t.Fatalf("Align(8ns) = %v, want 8ns", bus.Align(8*Nanosecond))
	}
}

func TestEventsAndPendingCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.After(Nanosecond, func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if e.Events() != 5 || e.Pending() != 0 {
		t.Fatalf("Events=%d Pending=%d", e.Events(), e.Pending())
	}
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-Nanosecond, func() {})
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Nanosecond).Microseconds() != 1.5 {
		t.Fatal("Microseconds conversion wrong")
	}
	if (2 * Microsecond).Nanoseconds() != 2000 {
		t.Fatal("Nanoseconds conversion wrong")
	}
}
