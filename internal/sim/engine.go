// Package sim provides a deterministic discrete-event simulation engine
// with two programming models: plain scheduled callbacks for hardware
// state machines, and cooperative processes (goroutine-backed coroutines
// with strict handoff) for software running on simulated processors.
//
// Simulated time is measured in integer picoseconds so that every clock in
// the modeled system (1 GHz processor, 250 MHz memory bus, 40 ns network,
// 60/120 ns device memories) has an exact integral period.
package sim

import (
	"fmt"
	"strings"
)

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// the cooperative-process machinery guarantees that at most one goroutine
// touches the engine at any instant.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	pool    *event // free list of recycled event records
	pooled  int
	procs   map[*Process]struct{}
	stopped bool
	stepped uint64 // number of events executed

	quiescence []func() string

	// OnStall, if non-nil, receives the stall report when Run drains the
	// event queue while a registered quiescence check still reports held
	// state (a lost message, ack, or bounce has stranded some component).
	OnStall func(report string)
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Process]struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.stepped }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.pq.len() }

// schedule allocates a pooled record, stamps it with (t, next seq), and
// enqueues it. Scheduling in the past panics: a discrete-event simulation
// must never travel backwards.
func (e *Engine) schedule(t Time) *event {
	return e.scheduleKeyed(t, e.now, 0, 0)
}

// scheduleKeyed is schedule with the full explicit heap key: the schedule
// stamp plus the network-post ordinal pair (see the heap order note in
// event.go). The key fields must be in place before the push.
func (e *Engine) scheduleKeyed(t, schedAt Time, ord, ordSeq uint64) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	e.seq++
	ev.at, ev.schedAt, ev.ord, ev.ordSeq, ev.seq = t, schedAt, ord, ordSeq, e.seq
	e.pq.push(ev)
	return ev
}

func checkDelay(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
}

// At schedules fn to run at absolute time t. Each call allocates a closure
// environment at the caller; hot paths should prefer AtEvent.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t).fn = fn
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	checkDelay(d)
	e.At(e.now+d, fn)
}

// AtEvent schedules the typed event h(recv, arg) at absolute time t. The
// call is allocation-free when recv is a pointer: the handler is shared,
// the receiver is stored as a pointer in an interface word, and the event
// record comes from the engine's free list.
//
//lint:hotpath
func (e *Engine) AtEvent(t Time, h Handler, recv any, arg uint64) {
	ev := e.schedule(t)
	ev.h, ev.recv, ev.arg = h, recv, arg
}

// AtEventPosted schedules the typed event h(recv, arg) at absolute time t
// as a network post from node src with per-node sequence postSeq. Posts
// carry their posting node's identity in the heap key, so two posts that
// tie on (time, schedule stamp) order by (src, postSeq) — a pure function
// of the simulation's content — instead of by engine insertion order. The
// netsim endpoints use this for every message-derived event, which is what
// keeps a partitioned run (machine.Config.Shards > 1) byte-identical to
// the serial engine: a cross-shard post integrated at a window barrier
// lands in exactly the slot this method would have given it locally.
//
//lint:hotpath
func (e *Engine) AtEventPosted(t Time, src int, postSeq uint64, h Handler, recv any, arg uint64) {
	ev := e.scheduleKeyed(t, e.now, uint64(src)+1, postSeq)
	ev.h, ev.recv, ev.arg = h, recv, arg
}

// AtEventStamped schedules the typed event h(recv, arg) at absolute time t
// carrying an explicit schedule stamp instead of the engine clock, plus the
// posting node's (src, postSeq) ordinal pair. It exists for the partitioned
// runtime (internal/sim/partition): when a cross-shard event is integrated
// at a window barrier, the destination engine's clock is the window
// boundary, not the instant the source shard scheduled the event — passing
// the source's clock as schedAt and the source node's post ordinal slots
// the event into the heap exactly where the serial engine's AtEventPosted
// would have placed it. schedAt must not exceed t.
func (e *Engine) AtEventStamped(t, schedAt Time, src int, postSeq uint64, h Handler, recv any, arg uint64) {
	if schedAt > t {
		panic(fmt.Sprintf("sim: event at %v stamped from the future %v", t, schedAt))
	}
	ev := e.scheduleKeyed(t, schedAt, uint64(src)+1, postSeq)
	ev.h, ev.recv, ev.arg = h, recv, arg
}

// NextEventAt returns the timestamp of the earliest pending event. ok is
// false when the queue is empty. The partitioned runtime uses this at each
// barrier to size the next conservative window.
func (e *Engine) NextEventAt() (t Time, ok bool) {
	if e.pq.len() == 0 {
		return 0, false
	}
	return e.pq.a[0].at, true
}

// RunWindow executes every pending event with a timestamp strictly before
// end, then advances the clock to end. It is the per-shard step of the
// partitioned runtime: the window end is a time no cross-shard event can
// precede (guaranteed by the network-latency lookahead), so everything
// before it is safe to run without coordination. An empty window just
// advances the clock.
func (e *Engine) RunWindow(end Time) {
	for !e.stopped && e.pq.len() > 0 && e.pq.a[0].at < end {
		e.Step()
	}
	if !e.stopped && e.now < end {
		e.now = end
	}
}

// AfterEvent schedules the typed event h(recv, arg) d picoseconds from now.
//
//lint:hotpath
func (e *Engine) AfterEvent(d Time, h Handler, recv any, arg uint64) {
	checkDelay(d)
	e.AtEvent(e.now+d, h, recv, arg)
}

// AtTimer schedules the typed event h(recv, arg) at absolute time t and
// returns a Timer that can cancel it before it fires.
//
//lint:hotpath
func (e *Engine) AtTimer(t Time, h Handler, recv any, arg uint64) Timer {
	ev := e.schedule(t)
	ev.h, ev.recv, ev.arg = h, recv, arg
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// AfterTimer schedules the typed event h(recv, arg) d picoseconds from now
// and returns a Timer that can cancel it before it fires.
//
//lint:hotpath
func (e *Engine) AfterTimer(d Time, h Handler, recv any, arg uint64) Timer {
	checkDelay(d)
	return e.AtTimer(e.now+d, h, recv, arg)
}

// Step executes the next pending event, advancing time. It returns false if
// the queue is empty or the engine has been stopped. The dispatched handler
// itself is a dynamic call, outside the static noalloc proof; typed-event
// handlers are hot through their own scheduling sites instead.
//
//lint:hotpath
func (e *Engine) Step() bool {
	if e.stopped || e.pq.len() == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.at
	e.stepped++
	// Capture the callback, then recycle the record before dispatching: the
	// generation bump invalidates any Timer still pointing here, and the
	// record is immediately reusable by whatever the handler schedules.
	fn, h, recv, arg := ev.fn, ev.h, ev.recv, ev.arg
	e.release(ev)
	if h != nil {
		h(recv, arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called. If the
// queue drains naturally while a quiescence check reports held state, the
// stall report is delivered to OnStall (when set): an event-driven
// simulation that runs out of events with work still outstanding has lost
// a message, not finished.
func (e *Engine) Run() {
	for e.Step() {
	}
	if !e.stopped && e.OnStall != nil {
		if r := e.StallReport(); r != "" {
			e.OnStall(r)
		}
	}
}

// RegisterQuiescence adds a quiescence check: a function that returns a
// non-empty diagnostic when its component still holds unfinished work
// (unreleased buffers, in-flight messages), and "" when quiescent. Checks
// run when the event queue drains (see Run and StallReport).
func (e *Engine) RegisterQuiescence(fn func() string) {
	e.quiescence = append(e.quiescence, fn)
}

// StallReport runs every registered quiescence check and concatenates the
// non-empty diagnostics. An empty result means the simulation is quiescent:
// the drained event queue represents genuine completion.
func (e *Engine) StallReport() string {
	var b strings.Builder
	for _, fn := range e.quiescence {
		if r := fn(); r != "" {
			b.WriteString(r)
			if !strings.HasSuffix(r, "\n") {
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped && e.pq.len() > 0 && e.pq.a[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunWhile executes events until cond reports false, the queue drains, or
// the engine is stopped. cond is evaluated after every event.
func (e *Engine) RunWhile(cond func() bool) {
	for !e.stopped && cond() && e.Step() {
	}
}

// Stop halts the run loop after the current event. Parked processes remain
// parked; call Drain to terminate their goroutines.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Drain kills every live process, releasing its goroutine. The engine is
// unusable for further simulation afterwards. It is safe to call Drain on an
// engine with no live processes.
func (e *Engine) Drain() {
	e.stopped = true
	for p := range e.procs {
		p.kill()
	}
	e.procs = make(map[*Process]struct{})
}

