package sim

import (
	"testing"
)

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Process) {
		p.Sleep(100 * Nanosecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 100*Nanosecond {
		t.Fatalf("woke at %v, want 100ns", wake)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		order = append(order, "a0")
		p.Sleep(10 * Nanosecond)
		order = append(order, "a1")
		p.Sleep(20 * Nanosecond)
		order = append(order, "a2") // t=30
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b0")
		p.Sleep(15 * Nanosecond)
		order = append(order, "b1")
		p.Sleep(10 * Nanosecond)
		order = append(order, "b2") // t=25
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "b2", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var stamps []Time
		for i := 0; i < 8; i++ {
			d := Time(7*i%5+1) * Nanosecond
			e.Spawn("p", func(p *Process) {
				for j := 0; j < 10; j++ {
					p.Sleep(d)
					stamps = append(stamps, p.Now())
				}
			})
		}
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCondWaitSignal(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	ready := false
	var consumedAt Time
	e.Spawn("consumer", func(p *Process) {
		for !ready {
			c.Wait(p)
		}
		consumedAt = p.Now()
	})
	e.Spawn("producer", func(p *Process) {
		p.Sleep(50 * Nanosecond)
		ready = true
		c.Broadcast()
	})
	e.Run()
	if consumedAt != 50*Nanosecond {
		t.Fatalf("consumer resumed at %v, want 50ns", consumedAt)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Process) {
			c.Wait(p)
			woken++
		})
	}
	e.Spawn("b", func(p *Process) {
		p.Sleep(Nanosecond)
		if c.Waiters() != 5 {
			t.Errorf("waiters = %d, want 5", c.Waiters())
		}
		c.Broadcast()
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Process) {
			c.Wait(p)
			woken++
		})
	}
	e.Spawn("s", func(p *Process) {
		p.Sleep(Nanosecond)
		c.Signal()
		p.Sleep(Nanosecond)
		if woken != 1 {
			t.Errorf("after one Signal, woken = %d", woken)
		}
	})
	e.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	e.Drain()
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var target *Process
	var resumedAt Time
	target = e.Spawn("parker", func(p *Process) {
		p.Park()
		resumedAt = p.Now()
	})
	e.Spawn("waker", func(p *Process) {
		p.Sleep(33 * Nanosecond)
		target.Unpark()
	})
	e.Run()
	if resumedAt != 33*Nanosecond {
		t.Fatalf("resumed at %v, want 33ns", resumedAt)
	}
}

func TestBlockedAccounting(t *testing.T) {
	e := NewEngine()
	acc := map[int]Time{}
	e.Spawn("p", func(p *Process) {
		p.OnBlocked = func(cat int, d Time) { acc[cat] += d }
		p.Category = 1
		p.Sleep(10 * Nanosecond)
		p.SleepAs(2, 20*Nanosecond)
		if p.Category != 1 {
			t.Errorf("SleepAs did not restore category: %d", p.Category)
		}
		p.Sleep(5 * Nanosecond)
	})
	e.Run()
	if acc[1] != 15*Nanosecond {
		t.Fatalf("category 1 time = %v, want 15ns", acc[1])
	}
	if acc[2] != 20*Nanosecond {
		t.Fatalf("category 2 time = %v, want 20ns", acc[2])
	}
}

func TestDrainKillsParked(t *testing.T) {
	e := NewEngine()
	reached := false
	e.Spawn("stuck", func(p *Process) {
		p.Park()
		reached = true // must never run
	})
	e.Run()
	e.Drain()
	if reached {
		t.Fatal("killed process continued executing")
	}
	if len(e.procs) != 0 {
		t.Fatalf("process registry not empty after Drain: %d", len(e.procs))
	}
}

func TestProcessDone(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("quick", func(p *Process) { p.Sleep(Nanosecond) })
	if p.Done() {
		t.Fatal("Done before running")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("not Done after completion")
	}
}

func TestYieldOrdersAfterCurrentEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("y", func(p *Process) {
		order = append(order, "before")
		p.Yield()
		order = append(order, "after")
	})
	e.After(0, func() { order = append(order, "event") })
	e.Run()
	// The spawned process starts first (scheduled first), yields, the plain
	// event runs, then the process resumes.
	want := []string{"before", "event", "after"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSleepZeroIsNoop(t *testing.T) {
	e := NewEngine()
	e.Spawn("z", func(p *Process) {
		p.Sleep(0)
		if p.Now() != 0 {
			t.Errorf("zero sleep advanced time to %v", p.Now())
		}
	})
	e.Run()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("n", func(p *Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-Nanosecond)
	})
	e.Run()
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestParkAsCategory(t *testing.T) {
	e := NewEngine()
	acc := map[int]Time{}
	var target *Process
	target = e.Spawn("p", func(p *Process) {
		p.OnBlocked = func(cat int, d Time) { acc[cat] += d }
		p.Category = 1
		p.ParkAs(7)
		if p.Category != 1 {
			t.Errorf("ParkAs did not restore category")
		}
	})
	e.Spawn("w", func(p *Process) {
		p.Sleep(25 * Nanosecond)
		target.Unpark()
	})
	e.Run()
	if acc[7] != 25*Nanosecond {
		t.Fatalf("category 7 time = %v", acc[7])
	}
}

func TestUnparkDoneProcessIsNoop(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("q", func(p *Process) {})
	e.Run()
	p.Unpark() // must not panic or enqueue work for a dead process
	e.Run()
	if !p.Done() {
		t.Fatal("process not done")
	}
}
