package sim

// Typed events and cancellable timers: the allocation-free scheduling path.
//
// The engine's original API schedules closures (At/After). Every call site
// in a hot loop — a message hop, a bus phase, a process resume — then
// allocates a fresh closure capturing its operands, and the old
// container/heap plumbing boxed each record into an interface on push. A
// long simulation schedules hundreds of millions of events, so the garbage
// collector ends up on the critical path of every experiment cell.
//
// The typed path splits an event into code and data halves:
//
//   - the code half is a Handler, a package-level func (or method
//     expression wrapper) shared by every event of its kind — creating one
//     never allocates;
//   - the data half is a receiver pointer (stored in an interface word —
//     pointer-shaped, so no boxing) plus one uint64 argument.
//
// Event records themselves are pooled on a free list and reused, so a
// steady-state schedule→fire cycle performs zero heap allocations (gated by
// TestTypedScheduleAllocFree). Closure events ride the same pooled records;
// only their captured environments still allocate, at the caller.
//
// Determinism: pooling and cancellation cannot reorder same-time events.
// The heap orders strictly by (at, seq); seq is assigned once per schedule
// call from a monotonic counter and is never reused by a recycled record,
// so FIFO order among same-timestamp events is exactly the order of the
// schedule calls, as before. Cancellation removes a record without touching
// the (at, seq) keys of any other record, and a binary heap's pop order is
// a pure function of the surviving keys.

// Handler is the code half of a typed event: a package-level function (or a
// wrapper around a method) invoked with the event's receiver and argument
// when the event fires. Handlers must not retain recv beyond the call.
type Handler func(recv any, arg uint64)

// event is one scheduled callback. Records are pooled: after firing or
// cancellation they return to the engine's free list and are reused, with
// gen bumped so stale Timer handles can never act on a recycled record.
type event struct {
	at      Time
	schedAt Time   // engine clock when the event was scheduled; see heap order note
	ord     uint64 // posting-node ordinal (node id + 1); 0 for node-local events
	ordSeq  uint64 // per-posting-node sequence; 0 when ord is 0
	seq     uint64

	fn   func()  // closure event (At/After); nil on the typed path
	h    Handler // typed event (AtEvent and friends); nil on the closure path
	recv any
	arg  uint64

	gen  uint64 // recycle generation, guards Timer handles
	idx  int    // heap position; -1 when not queued
	next *event // free-list link
}

// Timer is a handle on a scheduled event that can be cancelled. The zero
// value is inert: Stop and Active on it return false. Timer is a small
// value (no allocation to create or copy); holding one does not keep the
// event alive past its firing.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Active reports whether the timer's event is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.idx >= 0
}

// Stop cancels the timer's event, removing it from the schedule. It
// reports whether it removed a pending event; a timer that already fired
// or was already stopped returns false. Stopping is O(log n) and cannot
// reorder the remaining events (see the determinism note above).
//
//lint:hotpath
func (t Timer) Stop() bool {
	if !t.Active() {
		return false
	}
	t.eng.pq.remove(t.ev)
	t.eng.release(t.ev)
	return true
}

// alloc takes an event record from the pool, or makes a new one.
func (e *Engine) alloc() *event {
	ev := e.pool
	if ev == nil {
		return &event{idx: -1} //lint:allow noalloc pool miss: fresh records are amortized to zero once the free list warms
	}
	e.pool = ev.next
	e.pooled--
	ev.next = nil
	return ev
}

// maxPooledEvents bounds the free list so the pool cannot pin the peak
// concurrent-event footprint of one phase for the rest of a long run;
// records beyond the bound are left to the garbage collector.
const maxPooledEvents = 4096

// release scrubs a fired or cancelled record and returns it to the pool.
// The generation bump invalidates every outstanding Timer handle on it.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn, ev.h, ev.recv = nil, nil, nil
	ev.idx = -1
	if e.pooled >= maxPooledEvents {
		return
	}
	ev.next = e.pool
	e.pool = ev
	e.pooled++
}

// eventHeap is a hand-rolled binary min-heap over (at, schedAt, ord,
// ordSeq, seq). It is not a container/heap implementation on purpose: the
// interface-based API boxes every pushed element, which was one allocation
// per scheduled event. Records carry their heap index so cancellation can
// remove them in O(log n).
//
// Heap order note: on a serial engine schedAt (the clock at schedule time)
// is nondecreasing in seq, so among plain events (ord 0) the full key pops
// in exactly the same order as the original (at, seq) key. The ord/ordSeq
// pair is the network-post tie-break: events posted through a netsim
// endpoint (AtEventPosted, AtEventStamped) carry their posting node's
// ordinal and per-node sequence, so two posts that tie on (at, schedAt)
// order by posting node rather than by which engine's schedule call
// happened to run first. That makes the pop order a pure function of the
// simulation's content — the property that lets a partitioned run
// (internal/sim/partition) integrate cross-shard events at window barriers
// and still pop them exactly where the serial engine would have.
type eventHeap struct {
	a []*event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].at != h.a[j].at {
		return h.a[i].at < h.a[j].at
	}
	if h.a[i].schedAt != h.a[j].schedAt {
		return h.a[i].schedAt < h.a[j].schedAt
	}
	if h.a[i].ord != h.a[j].ord {
		return h.a[i].ord < h.a[j].ord
	}
	if h.a[i].ordSeq != h.a[j].ordSeq {
		return h.a[i].ordSeq < h.a[j].ordSeq
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].idx = i
	h.a[j].idx = j
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) bool {
	start, n := i, len(h.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h.less(r, l) {
			least = r
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
	return i > start
}

func (h *eventHeap) push(ev *event) {
	ev.idx = len(h.a)
	h.a = append(h.a, ev) //lint:allow noalloc heap backing array grows to the peak pending-event count, then is reused
	h.up(ev.idx)
}

func (h *eventHeap) pop() *event {
	ev := h.a[0]
	n := len(h.a) - 1
	if n > 0 {
		h.swap(0, n)
	}
	h.a[n] = nil
	h.a = h.a[:n]
	if n > 0 {
		h.down(0)
	}
	ev.idx = -1
	h.maybeShrink()
	return ev
}

// remove deletes the record at ev.idx, wherever it sits in the heap.
func (h *eventHeap) remove(ev *event) {
	i := ev.idx
	n := len(h.a) - 1
	if i != n {
		h.swap(i, n)
	}
	h.a[n] = nil
	h.a = h.a[:n]
	if i != n && !h.down(i) {
		h.up(i)
	}
	ev.idx = -1
	h.maybeShrink()
}

// minHeapCap is the backing-array size below which shrinking is pointless.
const minHeapCap = 64

// maybeShrink reallocates the backing array at quarter occupancy so a burst
// that briefly queued a huge number of events (a macrobenchmark phase
// fanning out sends) does not pin its peak footprint for the rest of the
// run. Halving (rather than fitting exactly) leaves 2x headroom, so a
// shrink is never immediately undone by the next push.
func (h *eventHeap) maybeShrink() {
	if c := cap(h.a); c > minHeapCap && len(h.a) <= c/4 {
		na := make([]*event, len(h.a), c/2) //lint:allow noalloc deliberate quarter-occupancy shrink so bursts do not pin their peak footprint
		copy(na, h.a)
		h.a = na
	}
}
