package partition_test

import (
	"fmt"
	"testing"

	"nisim/internal/sim"
	"nisim/internal/sim/partition"
)

const lookahead = 40 * sim.Nanosecond

// harness is a group over nodesPerShard*shards synthetic nodes, with one
// receiver per node recording every arrival.
type harness struct {
	g       *partition.Group
	engines []*sim.Engine
	shardOf []int
	nodes   []*node
}

type node struct {
	h   *harness
	eng *sim.Engine
	id  int
	seq uint64 // per-node post sequence, what netsim's postSeq models

	got     []arrival
	chain   int // remaining self-chain events (hot-shard stress)
	fanout  int // post to every other node each chain step when > 0
	blowVal any // panic value to raise on first delivery, if non-nil
}

type arrival struct {
	at  sim.Time
	arg uint64
}

func newHarness(shards, nodesPerShard int) *harness {
	h := &harness{}
	for s := 0; s < shards; s++ {
		h.engines = append(h.engines, sim.NewEngine())
	}
	for id := 0; id < shards*nodesPerShard; id++ {
		s := id % shards // interleaved, so consecutive ids hit different shards
		h.shardOf = append(h.shardOf, s)
		h.nodes = append(h.nodes, &node{h: h, eng: h.engines[s], id: id})
	}
	h.g = partition.New(h.engines, h.shardOf, lookahead)
	return h
}

// post sends arg from n to dst, firing one lookahead from n's clock —
// the same shape as a netsim endpoint post, routed directly when the
// destination shares n's shard.
func (n *node) post(dst int, arg uint64) {
	n.seq++
	at := n.eng.Now() + lookahead
	if n.h.g.ShardOf(dst) == n.h.shardOf[n.id] {
		n.h.nodes[dst].eng.AtEventPosted(at, n.id, n.seq, deliver, n.h.nodes[dst], arg)
		return
	}
	n.h.g.Post(n.id, dst, at, n.eng.Now(), n.seq, deliver, n.h.nodes[dst], arg)
}

// deliver records an arrival at the destination, checking the destination
// clock against the event timestamp: firing with eng.Now() != at would be
// a timestamp inversion across the barrier.
func deliver(recv any, arg uint64) {
	n := recv.(*node)
	if n.blowVal != nil {
		panic(n.blowVal)
	}
	now := n.eng.Now()
	if len(n.got) > 0 && now < n.got[len(n.got)-1].at {
		panic(fmt.Sprintf("node %d: arrival at %v after arrival at %v", n.id, now, n.got[len(n.got)-1].at))
	}
	n.got = append(n.got, arrival{at: now, arg: arg})
}

// step is the hot node's self-chain: every event schedules the next 1 ns
// out and posts to a rotating remote destination, keeping one shard
// saturated while the others only ever see integrated cross-shard events.
func step(recv any, arg uint64) {
	n := recv.(*node)
	if n.fanout > 0 {
		dst := int(arg) % len(n.h.nodes)
		if dst == n.id {
			dst = (dst + 1) % len(n.h.nodes)
		}
		n.post(dst, arg)
	}
	n.chain--
	if n.chain > 0 {
		n.eng.AfterEvent(1*sim.Nanosecond, step, n, arg+1)
	}
}

// TestHotShardStress runs one saturated shard against idle peers: shard 0
// executes a 20000-event chain at 1 ns spacing, posting every event to a
// rotating cross-shard destination. The run must go dry (no deadlock at
// the barrier, no worker stranded), every post must arrive exactly once,
// and every arrival must land at its scheduled time on its destination's
// clock (deliver panics on inversion, which Run surfaces).
func TestHotShardStress(t *testing.T) {
	h := newHarness(4, 2)
	defer h.g.Close()
	hot := h.nodes[0]
	hot.chain = 20000
	hot.fanout = 1
	hot.eng.AtEvent(0, step, hot, 1)

	if stopped := h.g.Run(partition.Control{}); stopped {
		t.Fatal("Run reported a control stop; expected it to go dry")
	}
	total := 0
	for _, n := range h.nodes[1:] {
		total += len(n.got)
		for i := 1; i < len(n.got); i++ {
			if n.got[i].at < n.got[i-1].at {
				t.Fatalf("node %d: arrivals out of order: %v then %v", n.id, n.got[i-1].at, n.got[i].at)
			}
		}
	}
	if total != 20000 {
		t.Fatalf("delivered %d of 20000 posts", total)
	}
}

// TestTiePostsOrderBySource has two nodes on different shards post to the
// same destination with identical firing times and identical source
// clocks: integration must order the tie by (source node, sequence) — the
// content-based key — not by outbox drain order.
func TestTiePostsOrderBySource(t *testing.T) {
	h := newHarness(2, 2) // nodes 0,2 on shard 0; nodes 1,3 on shard 1
	defer h.g.Close()
	// Nodes 3 and 1 (both shard 1) each post twice to node 0 (shard 0) at
	// time 0; all four events fire at the same instant with the same
	// schedule stamp. Higher node id posts first to prove drain order does
	// not leak through.
	fire := func(recv any, _ uint64) {
		n := recv.(*node)
		n.post(0, uint64(n.id*10+1))
		n.post(0, uint64(n.id*10+2))
	}
	h.engines[1].AtEvent(0, fire, h.nodes[3], 0)
	h.engines[1].AtEvent(0, fire, h.nodes[1], 0)

	h.g.Run(partition.Control{})
	want := []uint64{11, 12, 31, 32} // (src, seq) order, not post order
	if len(h.nodes[0].got) != len(want) {
		t.Fatalf("node 0 got %d arrivals, want %d", len(h.nodes[0].got), len(want))
	}
	for i, a := range h.nodes[0].got {
		if a.arg != want[i] {
			t.Fatalf("arrival %d: arg %d, want %d (full: %+v)", i, a.arg, want[i], h.nodes[0].got)
		}
	}
}

// TestControlCapAndStop checks both Control hooks: CapWindow bounds every
// window, and AfterWindow can stop the run with events still pending (Run
// returns true).
func TestControlCapAndStop(t *testing.T) {
	h := newHarness(2, 1)
	defer h.g.Close()
	hot := h.nodes[0]
	hot.chain = 1000
	hot.eng.AtEvent(0, step, hot, 1)

	const cap = 10 * sim.Nanosecond
	windows := 0
	stopped := h.g.Run(partition.Control{
		CapWindow: func(now, proposed sim.Time) sim.Time {
			if end := now + cap; end < proposed {
				return end
			}
			return proposed
		},
		AfterWindow: func(end sim.Time) bool {
			windows++
			return end < 100*sim.Nanosecond
		},
	})
	if !stopped {
		t.Fatal("Run went dry; expected AfterWindow to stop it")
	}
	if windows != 10 {
		t.Fatalf("saw %d windows to reach 100ns under a 10ns cap, want 10", windows)
	}
}

// TestWindowPanicPropagates routes a shard-1 panic through the barrier to
// the coordinator: Run must re-raise the original value (not deadlock, not
// swallow it), and the group must be closed afterwards.
func TestWindowPanicPropagates(t *testing.T) {
	h := newHarness(3, 1)
	boom := h.nodes[1]
	boom.blowVal = "boom"
	h.engines[0].AtEvent(0, func(recv any, _ uint64) {
		recv.(*node).post(1, 7)
	}, h.nodes[0], 0)

	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the shard's panic value", r)
		}
		h.g.Close() // must be a no-op after the failure path closed the group
	}()
	h.g.Run(partition.Control{})
	t.Fatal("Run returned; expected a propagated panic")
}

// TestWindowEndsNeverAdmitsEarly is the adaptive-window safety property,
// checked exhaustively over a deterministic grid of shard states: for
// every shard d, the computed end must not exceed lookahead plus the
// earliest event any other shard could execute this round — which is
// itself bounded by that shard's own window, so the recursive bound
// closes as min(next[r], m1+lookahead)+lookahead. Growth is also pinned:
// the minimum's owner must get a window strictly wider than the classic
// global m1+lookahead whenever its peers lag by more than the gap, and
// no shard's window may ever be narrower than the classic one.
func TestWindowEndsNeverAdmitsEarly(t *testing.T) {
	const L = lookahead
	// A deterministic pseudo-random walk over next-event layouts: values
	// chosen to hit ties, absent shards, large gaps, and near-gaps.
	vals := []sim.Time{0, 1, 39, 40, 41, 80, 81, 1000}
	for _, shards := range []int{2, 3, 4} {
		next := make([]sim.Time, shards)
		has := make([]bool, shards)
		ends := make([]sim.Time, shards)
		rng := uint64(12345)
		for iter := 0; iter < 20000; iter++ {
			any := false
			for s := range next {
				rng = rng*6364136223846793005 + 1442695040888963407
				pick := int(rng>>33) % (len(vals) + 1)
				if pick == len(vals) {
					has[s] = false
				} else {
					has[s], next[s] = true, vals[pick]*sim.Nanosecond
				}
				any = any || has[s]
			}
			if !any {
				continue
			}
			partition.WindowEnds(next, has, L, ends)
			m1 := sim.Time(0)
			first := true
			for s := range next {
				if has[s] && (first || next[s] < m1) {
					m1, first = next[s], false
				}
			}
			for d := range ends {
				// Conservative bound: nothing another shard executes this
				// round fires before min(next[r], m1+L), so nothing it posts
				// to d arrives before that +L.
				bound := m1 + 2*L
				for r := range next {
					if r == d || !has[r] {
						continue
					}
					if b := min(next[r], m1+L) + L; b < bound {
						bound = b
					}
				}
				if ends[d] > bound {
					t.Fatalf("next=%v has=%v: shard %d end %v exceeds conservative bound %v",
						next, has, d, ends[d], bound)
				}
				if ends[d] < m1+L {
					t.Fatalf("next=%v has=%v: shard %d end %v narrower than the global window %v",
						next, has, d, ends[d], m1+L)
				}
				// The minimum's owner always makes progress past its event.
				if has[d] && next[d] == m1 && ends[d] <= m1 {
					t.Fatalf("next=%v has=%v: minimum owner %d got a stalled window %v", next, has, d, ends[d])
				}
			}
		}
	}
	// Growth, pinned on a concrete layout: shard 0 at 10ns, shard 1 idle
	// at 500ns. The classic policy would stop shard 0 at 10+L; the
	// adaptive one runs it to the bounce-back cap 10+2L, and shard 1 only
	// to what shard 0 could send it.
	next := []sim.Time{10 * sim.Nanosecond, 500 * sim.Nanosecond}
	has := []bool{true, true}
	ends := make([]sim.Time, 2)
	partition.WindowEnds(next, has, L, ends)
	if want := 10*sim.Nanosecond + 2*L; ends[0] != want {
		t.Errorf("busy-shard end %v, want the widened %v", ends[0], want)
	}
	if want := 10*sim.Nanosecond + L; ends[1] != want {
		t.Errorf("lagging-shard end %v, want the classic %v", ends[1], want)
	}
}

// TestAdaptiveWindowsShrinkBarrierCount runs the hot-shard chain with no
// cross-shard traffic at all: the idle shards' queues stay empty, so the
// busy shard's windows grow to the 2·lookahead bounce-back cap and the
// run takes roughly half the barriers the classic global window would.
func TestAdaptiveWindowsShrinkBarrierCount(t *testing.T) {
	h := newHarness(2, 1)
	defer h.g.Close()
	hot := h.nodes[0]
	hot.chain = 8000 // 8000 events at 1 ns spacing: ~8 µs of simulated time
	hot.eng.AtEvent(0, step, hot, 1)

	windows := 0
	h.g.Run(partition.Control{AfterWindow: func(sim.Time) bool { windows++; return true }})
	classic := 8000 / int(lookahead/sim.Nanosecond) // one barrier per lookahead
	if windows > classic/2+2 {
		t.Fatalf("saw %d windows for an isolated 8000 ns chain; adaptive windows should need ~%d (classic %d)",
			windows, classic/2, classic)
	}
}

// TestNewValidates covers the constructor's contract checks.
func TestNewValidates(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine()}
	for name, fn := range map[string]func(){
		"no engines":     func() { partition.New(nil, nil, lookahead) },
		"zero lookahead": func() { partition.New(engines, []int{0}, 0) },
		"bad shard map":  func() { partition.New(engines, []int{1}, lookahead) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			fn()
		}()
	}
}
