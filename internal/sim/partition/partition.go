// Package partition runs one simulation across several sim.Engine shards
// using conservative time windows. The network's fixed minimum latency is
// the lookahead: because every cross-shard event is scheduled at least one
// lookahead after the instant that produced it, all shards can execute a
// window of that width completely independently, exchange the events they
// generated for each other at a barrier, and repeat — no rollback, no
// speculation, bit-identical results (see DESIGN.md §10).
//
// Windows are adaptive and per-shard (see WindowEnds): a shard whose next
// pending event is far in the future — a compute phase, an idle client —
// gets a window bounded only by what its peers could send it, not by the
// single global minimum. The policy never admits an event before its
// conservative bound, so results stay byte-identical to the serial engine;
// it only changes how much simulated time each barrier round covers.
//
// This package is the one sanctioned home for cross-shard communication in
// the simulation core (the chanconfine and nogoroutine lint passes
// whitelist it): worker goroutines own their shard's engine exclusively
// between barriers, and every handoff between them rides this package's
// barrier protocol. Windows arrive hundreds of thousands of times per run,
// so the barrier is a spin protocol on three atomics — an epoch the
// coordinator bumps to open a window, a published window end, and an
// arrival counter the workers bump to close it — rather than a channel
// ping-pong, whose scheduler wakeups would cost more than the windows
// themselves. The atomics carry the same happens-before edges a channel
// would, so the construction stays race-free (the race detector agrees).
// Cross-shard events never ride the barrier itself — they accumulate in
// per-shard outboxes written only by their source shard's worker and
// drained only by the coordinator between windows.
package partition

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"nisim/internal/sim"
)

// Record is one cross-shard event handoff: a typed event captured by the
// source shard's outbox during a window and integrated into the destination
// shard's queue at the next barrier. At and SchedAt reproduce the exact
// heap key a serial engine would have used ((at, schedAt, ord, ordSeq) —
// see sim.AtEventStamped); Src and Seq make the barrier merge order total
// and deterministic.
type Record struct {
	// At is the absolute firing time; always >= the window end (the
	// lookahead guarantee).
	At sim.Time
	// SchedAt is the source engine's clock when the event was produced.
	SchedAt sim.Time
	// Src and Dst are the source and destination node ids.
	Src, Dst int
	// Seq is the source node's per-node post sequence (netsim's postSeq),
	// the final merge tie-break and the ordSeq half of the destination
	// engine's heap key (see sim.AtEventPosted).
	Seq uint64
	// H is the typed event's handler, exactly as a serial engine would
	// schedule it.
	H sim.Handler
	// Recv is the event's receiver, passed to H when it fires.
	Recv any
	// Arg is the event's packed argument, passed to H when it fires.
	Arg uint64
}

// byKey orders records by (At, SchedAt, Src, Seq) — the serial heap key
// extended with a total deterministic tie-break, so the barrier merge is
// independent of outbox traversal order.
func byKey(a, b Record) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.SchedAt != b.SchedAt {
		return a.SchedAt < b.SchedAt
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// Control customizes a Run loop at its barriers. The zero value runs
// windows at the maximum width the lookahead allows until the group goes
// dry.
type Control struct {
	// CapWindow, if non-nil, may lower the proposed end of the next window
	// (e.g. to land a barrier exactly on a watchdog sampling boundary). It
	// is consulted once per shard per round with that shard's own clock and
	// proposed end; it must return a time in [now, proposed] (a shard whose
	// peers have already reached the cap may legitimately get a zero-width
	// window), and returning proposed unchanged is always legal.
	CapWindow func(now, proposed sim.Time) sim.Time
	// AfterWindow, if non-nil, runs on the coordinator at each barrier,
	// after every shard has settled at its window end and all cross-shard
	// events have been integrated. end is the minimum window end across
	// shards — the time every shard is guaranteed to have reached, i.e.
	// the group's conservative global clock. Returning false stops the
	// run. Reading any shard's state is safe here: the barrier is a
	// happens-before edge.
	AfterWindow func(end sim.Time) bool
}

// Group drives a fixed set of engine shards through conservative windows.
// Create with New, run with Run, release the worker goroutines with Close.
// A Group is not safe for concurrent use by multiple coordinators.
type Group struct {
	engines   []*sim.Engine
	shardOf   []int // node id -> shard index
	lookahead sim.Time

	out   [][][]Record // [srcShard][dstShard]: outboxes, single-writer per window
	merge []Record     // reusable barrier merge buffer

	// Per-round scratch for Run: each shard's next pending event time and
	// its computed window end (see WindowEnds). Allocated once in New.
	next []sim.Time
	has  []bool
	endv []sim.Time

	// The spin barrier. The coordinator publishes the next window by
	// storing each shard's end and bumping epoch; each worker spins on
	// epoch, runs its shard's window to its own end slot, and bumps
	// arrived. Shard 0 is run inline by the coordinator itself, so a group
	// of S shards keeps exactly S goroutines hot. fail[s] is shard s's
	// recovered panic for the current window, written before the arrived
	// bump and read only after the barrier settles (both edges carried by
	// the atomics).
	epoch   atomic.Uint64
	ends    []atomic.Int64
	arrived atomic.Int32
	stop    atomic.Bool
	fail    []any

	closed bool
}

// New builds a group over engines. shardOf maps every node id to its
// engine's index; lookahead is the minimum cross-shard scheduling distance
// (the network latency) and must be positive. New spawns one worker
// goroutine per engine beyond the first (shard 0 runs on the coordinating
// goroutine); the engines must not be touched except through the group (or
// from AfterWindow) until Close.
func New(engines []*sim.Engine, shardOf []int, lookahead sim.Time) *Group {
	if len(engines) == 0 {
		panic("partition: need at least one engine")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("partition: non-positive lookahead %v", lookahead))
	}
	for n, s := range shardOf {
		if s < 0 || s >= len(engines) {
			panic(fmt.Sprintf("partition: node %d mapped to shard %d of %d", n, s, len(engines)))
		}
	}
	g := &Group{
		engines:   engines,
		shardOf:   shardOf,
		lookahead: lookahead,
		next:      make([]sim.Time, len(engines)),
		has:       make([]bool, len(engines)),
		endv:      make([]sim.Time, len(engines)),
		ends:      make([]atomic.Int64, len(engines)),
		fail:      make([]any, len(engines)),
	}
	g.out = make([][][]Record, len(engines))
	for s := range g.out {
		g.out[s] = make([][]Record, len(engines))
	}
	for s := 1; s < len(engines); s++ {
		go g.worker(s) // one long-lived worker per shard; it owns its engine exclusively between barriers
	}
	return g
}

// Shards returns the number of engine shards.
func (g *Group) Shards() int { return len(g.engines) }

// Lookahead returns the conservative window lookahead.
func (g *Group) Lookahead() sim.Time { return g.lookahead }

// ShardOf returns the shard index owning node id. Together with Post it
// satisfies netsim.Router.
func (g *Group) ShardOf(node int) int { return g.shardOf[node] }

// Post records a cross-shard typed event: h(recv, arg) fires at time at on
// the shard owning node dst, exactly as if the source shard's engine had
// posted it at time schedAt with node src's per-node post sequence seq.
// Post must only be called from the source shard's worker during a window
// (netsim endpoints do this through the Router seam); the record is
// integrated at the next barrier. at must be at least one lookahead past
// schedAt — that distance is what makes the window safe — and integration
// enforces it by panicking on an event that would land before the barrier.
//
//lint:hotpath
func (g *Group) Post(src, dst int, at, schedAt sim.Time, seq uint64, h sim.Handler, recv any, arg uint64) {
	s := g.shardOf[src]
	d := g.shardOf[dst]
	g.out[s][d] = append(g.out[s][d], Record{ //lint:allow noalloc outbox backing arrays grow to the per-window peak, then are reused across barriers
		At: at, SchedAt: schedAt, Src: src, Dst: dst, Seq: seq,
		H: h, Recv: recv, Arg: arg,
	})
}

// worker is the per-shard goroutine for shards 1..S-1: it spins on the
// barrier epoch, executes one window per bump, and reports its arrival.
// Yielding inside the spin keeps oversubscribed hosts live; on a machine
// with a core per shard the loop observes the next epoch within a few
// hundred nanoseconds, which is what makes sub-microsecond windows worth
// parallelizing at all.
func (g *Group) worker(s int) {
	seen := uint64(0)
	for {
		for g.epoch.Load() == seen {
			if g.stop.Load() {
				return
			}
			runtime.Gosched()
		}
		seen++
		g.window(s)
		g.arrived.Add(1)
	}
}

// window runs one shard's window to its published end, converting a panic
// into a barrier arrival carrying the failure.
func (g *Group) window(s int) {
	defer func() {
		g.fail[s] = recover()
	}()
	g.engines[s].RunWindow(sim.Time(g.ends[s].Load())) //lint:allow simtime the atomic barrier slot stores a sim.Time round-tripped through int64, not a raw duration
}

// runWindow drives every shard through one window to its slot in g.endv
// and waits for the barrier: publish the per-shard ends, run shard 0
// inline, spin until the other shards arrive. A panic on any shard is
// re-raised here (lowest shard id wins, deterministically) after the
// barrier settles, with the group closed so no goroutine is left behind.
func (g *Group) runWindow() {
	for s := range g.endv {
		g.ends[s].Store(int64(g.endv[s]))
	}
	g.epoch.Add(1)
	g.window(0)
	others := int32(len(g.engines) - 1)
	for g.arrived.Load() != others {
		runtime.Gosched()
	}
	g.arrived.Store(0)
	for s := range g.engines {
		if f := g.fail[s]; f != nil {
			g.Close()
			panic(f)
		}
	}
}

// integrate drains every outbox into the destination shards' queues in
// (At, SchedAt, Src, Seq) order. Called by the coordinator between
// windows, when no worker is running.
func (g *Group) integrate() {
	buf := g.merge[:0]
	for s := range g.out {
		for d := range g.out[s] {
			buf = append(buf, g.out[s][d]...)
			g.out[s][d] = g.out[s][d][:0]
		}
	}
	sort.Slice(buf, func(i, j int) bool { return byKey(buf[i], buf[j]) })
	for i := range buf {
		r := &buf[i]
		g.engines[g.shardOf[r.Dst]].AtEventStamped(r.At, r.SchedAt, r.Src, r.Seq, r.H, r.Recv, r.Arg)
		r.Recv = nil // the queue owns the reference now; don't pin it from the spare buffer
	}
	g.merge = buf
}

// WindowEnds computes the adaptive per-shard window ends for one barrier
// round. next[s] is shard s's earliest pending event time, valid only when
// has[s]; ends[s] receives shard s's window end. At least one shard must
// have a pending event.
//
// The bound for shard d is
//
//	ends[d] = min(lookahead + min_{r≠d} next[r],  m1 + 2·lookahead)
//
// where m1 is the global minimum of next (absent peers contribute nothing
// to the first term). Safety: any event another shard r executes this
// round fires at or after next[r], so anything it posts to d arrives at or
// after next[r]+lookahead ≥ ends[d] — integration never lands an event in
// d's past. The second term caps how far the quietest shard may run ahead:
// without it a lone busy shard could outrun the replies its own posts
// provoke (a message at t+lookahead answered at t+2·lookahead must still
// find its destination's clock at or below t+2·lookahead). The cap also
// makes the bound the greatest fixpoint of the mutual-recurrence
// F_d = min(next[d], min_{r≠d} F_r + lookahead) shifted by one lookahead —
// no wider correct window exists under these inputs.
//
// For every shard other than the minimum's owner the first term reduces to
// m1+lookahead, the classic global conservative window; the owner itself
// gets min(m2+lookahead, m1+2·lookahead) where m2 is the runner-up, which
// is strictly wider whenever its peers lag — that widening is what shrinks
// barrier counts on compute phases. Ends never regress across rounds, and
// the minimum's owner always gets a window strictly past its own event, so
// the group makes progress even when other shards' windows are zero-width.
func WindowEnds(next []sim.Time, has []bool, lookahead sim.Time, ends []sim.Time) {
	d1 := -1
	for s := range next {
		if has[s] && (d1 < 0 || next[s] < next[d1]) {
			d1 = s
		}
	}
	if d1 < 0 {
		panic("partition: WindowEnds with no pending events")
	}
	m1 := next[d1]
	m2, has2 := sim.Time(0), false
	for s := range next {
		if s != d1 && has[s] && (!has2 || next[s] < m2) {
			m2, has2 = next[s], true
		}
	}
	bounce := m1 + lookahead + lookahead // the 2·lookahead bounce-back cap
	for d := range ends {
		other, ok := m1, true
		if d == d1 {
			other, ok = m2, has2
		}
		end := bounce
		if ok && other+lookahead < end {
			end = other + lookahead
		}
		ends[d] = end
	}
}

// Run executes conservative windows until ctrl.AfterWindow stops the run
// (returning true) or every shard's queue goes dry (returning false — the
// caller decides whether dry means finished or stranded). Each iteration:
// gather every shard's earliest pending event, derive per-shard window
// ends (WindowEnds, optionally capped per shard by ctrl.CapWindow), run
// every shard to its own end, integrate the outboxes, then consult
// ctrl.AfterWindow at the barrier with the minimum end.
func (g *Group) Run(ctrl Control) bool {
	for {
		any := false
		for s, e := range g.engines {
			g.next[s], g.has[s] = e.NextEventAt()
			any = any || g.has[s]
		}
		if !any {
			return false
		}
		WindowEnds(g.next, g.has, g.lookahead, g.endv)
		minEnd := sim.Time(0)
		for s := range g.endv {
			now := g.engines[s].Now()
			end := g.endv[s]
			if ctrl.CapWindow != nil {
				end = ctrl.CapWindow(now, end)
			}
			if end < now {
				panic(fmt.Sprintf("partition: shard %d window end %v before now %v", s, end, now))
			}
			g.endv[s] = end
			if s == 0 || end < minEnd {
				minEnd = end
			}
		}
		g.runWindow()
		g.integrate()
		if ctrl.AfterWindow != nil && !ctrl.AfterWindow(minEnd) {
			return true
		}
	}
}

// Close releases the worker goroutines. The engines remain valid (e.g. for
// draining processes); the group must not be used afterwards. Close is
// idempotent.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	g.stop.Store(true)
}
