package machine

import (
	"bytes"
	"fmt"
	"testing"

	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
)

// pingPong runs r round trips of payload-byte messages between nodes 0 and
// 1 and returns the mean round-trip time.
func pingPong(t *testing.T, kind nic.Kind, bufs, payload, rounds int) sim.Time {
	t.Helper()
	cfg := DefaultConfig(kind, bufs)
	cfg.Nodes = 2
	m := New(cfg)

	var start, total sim.Time
	const hPing, hPong = 1, 2
	got := 0
	for _, n := range m.Nodes {
		n := n
		n.EP.Register(hPing, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			ep.Send(msg.Src, hPong, msg.PayloadLen, 0)
		})
		n.EP.Register(hPong, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			got++
		})
	}
	st := m.Run(func(n *Node) {
		if n.ID != 0 {
			// Node 1 serves pings until node 0 finishes; detect completion
			// via a final "done" barrier.
			n.Barrier()
			return
		}
		for i := 0; i < rounds; i++ {
			target := got + 1
			start = n.Proc.P.Now()
			n.EP.Send(1, hPing, payload, 0)
			n.EP.WaitUntil(func() bool { return got >= target })
			total += n.Proc.P.Now() - start
		}
		n.Barrier()
	})
	if got != rounds {
		t.Fatalf("%v: completed %d/%d round trips", kind, got, rounds)
	}
	if st.ExecTime <= 0 {
		t.Fatalf("%v: no simulated time elapsed", kind)
	}
	return total / sim.Time(rounds)
}

func TestPingPongAllNIs(t *testing.T) {
	for _, kind := range nic.Kinds() {
		kind := kind
		t.Run(kind.ShortName(), func(t *testing.T) {
			for _, payload := range []int{8, 64, 256, 1024} {
				rtt := pingPong(t, kind, 8, payload, 3)
				if rtt <= 80*sim.Nanosecond {
					t.Errorf("payload %d: rtt %v implausibly below 2x network latency", payload, rtt)
				}
				if rtt > 200*sim.Microsecond {
					t.Errorf("payload %d: rtt %v implausibly high", payload, rtt)
				}
			}
		})
	}
}

func TestPayloadIntegrityAllNIs(t *testing.T) {
	for _, kind := range nic.Kinds() {
		kind := kind
		t.Run(kind.ShortName(), func(t *testing.T) {
			cfg := DefaultConfig(kind, 4)
			cfg.Nodes = 2
			m := New(cfg)
			const h = 1
			var received [][]byte
			sent := [][]byte{
				[]byte("hello"),
				bytes.Repeat([]byte{0xAB}, 300),  // forces fragmentation
				bytes.Repeat([]byte{0xCD}, 3076), // moldyn-sized bulk
			}
			for _, n := range m.Nodes {
				n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
					cp := make([]byte, len(msg.Payload))
					copy(cp, msg.Payload)
					received = append(received, cp)
				})
			}
			m.Run(func(n *Node) {
				if n.ID == 0 {
					for _, b := range sent {
						n.EP.SendBytes(1, h, b, 0)
					}
				} else {
					// Bounced fragments can be overtaken by later traffic, so
					// completion is by count, not order.
					n.EP.WaitUntil(func() bool { return len(received) == len(sent) })
				}
				n.Barrier()
			})
			if len(received) != len(sent) {
				t.Fatalf("received %d messages, want %d", len(received), len(sent))
			}
			for i := range sent {
				if !bytes.Equal(received[i], sent[i]) {
					t.Errorf("message %d corrupted: got %d bytes, want %d", i, len(received[i]), len(sent[i]))
				}
			}
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 8
	m := New(cfg)
	var minAfter, maxBefore sim.Time
	maxBefore = -1
	m.Run(func(n *Node) {
		// Stagger arrival times.
		n.Proc.Compute(int64(n.ID) * 1000)
		before := n.Proc.P.Now()
		if before > maxBefore {
			maxBefore = before
		}
		n.Barrier()
		after := n.Proc.P.Now()
		if minAfter == 0 || after < minAfter {
			minAfter = after
		}
	})
	if minAfter < maxBefore {
		t.Fatalf("barrier violated: a node left (%v) before the last arrived (%v)", minAfter, maxBefore)
	}
}

func TestAllToAllUnderTinyBuffers(t *testing.T) {
	// Stress flow control: every node blasts every other node with only one
	// flow-control buffer. Conservation must hold and the run must finish.
	for _, kind := range []nic.Kind{nic.CM5, nic.AP3000, nic.CNI32Qm, nic.StarTJR} {
		kind := kind
		t.Run(kind.ShortName(), func(t *testing.T) {
			cfg := DefaultConfig(kind, 1)
			cfg.Nodes = 4
			m := New(cfg)
			const h = 1
			recv := 0
			for _, n := range m.Nodes {
				n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) { recv++ })
			}
			const per = 20
			m.Run(func(n *Node) {
				for i := 0; i < per; i++ {
					for d := 0; d < cfg.Nodes; d++ {
						if d != n.ID {
							n.EP.Send(d, h, 12, 0)
						}
					}
				}
				// Two barriers: ensure all traffic drained before exit.
				n.Barrier()
				n.EP.Drain()
				n.Barrier()
			})
			want := per * cfg.Nodes * (cfg.Nodes - 1)
			if recv != want {
				t.Fatalf("received %d, want %d", recv, want)
			}
		})
	}
}

func TestExecTimeIsDeterministic(t *testing.T) {
	run := func() sim.Time {
		cfg := DefaultConfig(nic.CNI512Q, 2)
		cfg.Nodes = 4
		m := New(cfg)
		const h = 1
		for _, n := range m.Nodes {
			n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {})
		}
		st := m.Run(func(n *Node) {
			for i := 0; i < 50; i++ {
				n.EP.Send((n.ID+1)%cfg.Nodes, h, 32, 0)
				n.Proc.Compute(200)
			}
			n.Barrier()
			n.EP.Drain()
			n.Barrier()
		})
		return st.ExecTime
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic execution time: %v vs %v", a, b)
	}
}

func TestRunTwicePanics(t *testing.T) {
	cfg := DefaultConfig(nic.CM5, 1)
	cfg.Nodes = 2
	m := New(cfg)
	m.Run(func(n *Node) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	m.Run(func(n *Node) {})
}

func TestTimeBreakdownRecorded(t *testing.T) {
	cfg := DefaultConfig(nic.CM5, 1)
	cfg.Nodes = 2
	m := New(cfg)
	const h = 1
	for _, n := range m.Nodes {
		n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {})
	}
	st := m.Run(func(n *Node) {
		for i := 0; i < 30; i++ {
			n.EP.Send((n.ID+1)%2, h, 64, 0)
			n.Proc.Compute(100)
		}
		n.Barrier()
		n.EP.Drain()
		n.Barrier()
	})
	tot := st.Total()
	if tot.TimeIn[1] == 0 { // stats.Transfer
		t.Error("no transfer time recorded for CM-5-like NI")
	}
	if tot.MessagesSent == 0 || tot.MessagesReceived == 0 {
		t.Error("message counters empty")
	}
	if tot.MessagesSent != tot.MessagesReceived {
		t.Errorf("conservation: sent %d != received %d", tot.MessagesSent, tot.MessagesReceived)
	}
}

func TestFlowBufferSweepHelps(t *testing.T) {
	// On a bursty workload with computation between sends, plentiful
	// flow-control buffering must not hurt, and should help a fifo NI
	// (Figure 3a's core effect).
	run := func(bufs int) sim.Time {
		cfg := DefaultConfig(nic.CM5, bufs)
		cfg.Nodes = 4
		m := New(cfg)
		const h = 1
		for _, n := range m.Nodes {
			n.EP.Register(h, func(ep *msglayer.Endpoint, msg *msglayer.Message) {})
		}
		st := m.Run(func(n *Node) {
			for i := 0; i < 40; i++ {
				for d := 0; d < cfg.Nodes; d++ {
					if d != n.ID {
						n.EP.Send(d, h, 12, 0)
					}
				}
				n.Proc.Compute(800)
			}
			n.Barrier()
			n.EP.Drain()
			n.Barrier()
		})
		return st.ExecTime
	}
	one, eight, inf := run(1), run(8), run(netsim.Infinite)
	if inf > one+one/20 {
		t.Errorf("infinite buffers (%v) slower than one buffer (%v)", inf, one)
	}
	if eight > one+one/10 {
		t.Errorf("eight buffers (%v) much slower than one buffer (%v)", eight, one)
	}
}

func ExampleNode() {
	fmt.Println("see examples/quickstart")
	// Output: see examples/quickstart
}
