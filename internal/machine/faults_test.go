package machine_test

import (
	"strings"
	"testing"

	"nisim/internal/faults"
	"nisim/internal/machine"
	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

const hFault = 7

// faultWorkload streams count 512-byte messages node0 -> node1 and returns
// the machine's stats plus the number of application messages delivered.
func faultWorkload(t *testing.T, cfg machine.Config, count int) (*stats.Machine, int) {
	t.Helper()
	m := machine.New(cfg)
	received := 0
	for _, n := range m.Nodes {
		n.EP.Register(hFault, func(ep *msglayer.Endpoint, msg *msglayer.Message) { received++ })
	}
	st := m.Run(func(n *machine.Node) {
		if n.ID == 0 {
			for i := 0; i < count; i++ {
				n.EP.Send(1, hFault, 512, 0)
			}
			n.Barrier()
			return
		}
		n.EP.WaitUntil(func() bool { return received >= count })
		n.Barrier()
	})
	return st, received
}

// nodeSnap is the comparable projection of a stats record used to assert
// bit-identical runs (stats.Node itself holds an unexported histogram
// pointer, so whole-struct equality is meaningless).
type nodeSnap struct {
	msgsSent, msgsRecv, bytesSent, bytesRecv int64
	fragsSent, fragsRecv                     int64
	bounces, retries, sendBlocked            int64
	bus, c2c, m2c                            int64
	drops, corrupts, dups, delays, fBounces  int64
	ctlDrops, retrans, corruptDrop, dupSup   int64
	failures                                 int64
}

func snap(n *stats.Node) nodeSnap {
	return nodeSnap{
		n.MessagesSent, n.MessagesReceived, n.BytesSent, n.BytesReceived,
		n.FragmentsSent, n.FragmentsReceived,
		n.Bounces, n.Retries, n.SendBlocked,
		n.BusTransactions, n.CacheToCache, n.MemToCache,
		n.FaultDrops, n.FaultCorruptions, n.FaultDuplicates, n.FaultDelays, n.ForcedBounces,
		n.CtlDrops, n.Retransmits, n.CorruptDropped, n.DupSuppressed,
		n.DeliveryFailures,
	}
}

func faultCfg(kind nic.Kind, rate float64, seed uint64) machine.Config {
	cfg := machine.DefaultConfig(kind, 8)
	cfg.Nodes = 2
	cfg.Net.Reliability = netsim.DefaultReliability()
	cfg.Faults = faults.Config{
		Seed: seed, Drop: rate, Corrupt: rate / 2, Duplicate: rate / 2,
		CtlDrop: rate / 2, Delay: rate, MaxDelay: 500 * sim.Nanosecond,
		ForceBounce: rate / 4,
	}
	return cfg
}

func TestFaultRunsAreDeterministic(t *testing.T) {
	// Same seed, same workload: bit-identical execution time and counters.
	a, recvA := faultWorkload(t, faultCfg(nic.CNI32Qm, 0.05, 11), 40)
	b, recvB := faultWorkload(t, faultCfg(nic.CNI32Qm, 0.05, 11), 40)
	if recvA != 40 || recvB != 40 {
		t.Fatalf("lost messages despite reliability: %d / %d of 40", recvA, recvB)
	}
	if a.ExecTime != b.ExecTime {
		t.Fatalf("exec time diverged: %v vs %v", a.ExecTime, b.ExecTime)
	}
	ta, tb := a.Total(), b.Total()
	if snap(ta) != snap(tb) {
		t.Fatalf("stats diverged between identical seeded runs:\n%+v\n%+v", snap(ta), snap(tb))
	}
	// A different seed must produce a different fault pattern.
	c, _ := faultWorkload(t, faultCfg(nic.CNI32Qm, 0.05, 12), 40)
	if tc := c.Total(); tc.FaultDrops == ta.FaultDrops && tc.Retransmits == ta.Retransmits &&
		c.ExecTime == a.ExecTime {
		t.Fatal("seeds 11 and 12 produced an identical run")
	}
}

func TestZeroRatePlaneMatchesNilPlane(t *testing.T) {
	// A zero-rate injector draws random variates but issues no faults; the
	// run must be bit-identical to one with no fault plane installed.
	base := machine.DefaultConfig(nic.CNI32Qm, 8)
	base.Nodes = 2

	plain := machine.New(base)
	withPlane := machine.New(base)
	withPlane.Net.SetFaultPlane(faults.New(faults.Config{Seed: 99}))

	run := func(m *machine.Machine) (*stats.Machine, int) {
		received := 0
		for _, n := range m.Nodes {
			n.EP.Register(hFault, func(ep *msglayer.Endpoint, msg *msglayer.Message) { received++ })
		}
		st := m.Run(func(n *machine.Node) {
			if n.ID == 0 {
				for i := 0; i < 25; i++ {
					n.EP.Send(1, hFault, 512, 0)
				}
				n.Barrier()
				return
			}
			n.EP.WaitUntil(func() bool { return received >= 25 })
			n.Barrier()
		})
		return st, received
	}
	stPlain, recvPlain := run(plain)
	stPlane, recvPlane := run(withPlane)
	if recvPlain != 25 || recvPlane != 25 {
		t.Fatalf("delivery mismatch: %d / %d", recvPlain, recvPlane)
	}
	if stPlain.ExecTime != stPlane.ExecTime {
		t.Fatalf("zero-rate plane drifted execution: %v vs %v", stPlain.ExecTime, stPlane.ExecTime)
	}
	if a, b := stPlain.Total(), stPlane.Total(); snap(a) != snap(b) {
		t.Fatalf("zero-rate plane drifted stats:\n%+v\n%+v", snap(a), snap(b))
	}
}

func TestDefaultRunTouchesNoReliabilityMachinery(t *testing.T) {
	// The default config (no Faults, no Reliability) must leave every
	// fault-injection and recovery counter at zero: the lossless fast path
	// is untouched.
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	st, received := faultWorkload(t, cfg, 20)
	if received != 20 {
		t.Fatalf("delivered %d of 20", received)
	}
	tot := st.Total()
	if tot.FaultDrops != 0 || tot.FaultCorruptions != 0 || tot.FaultDuplicates != 0 ||
		tot.FaultDelays != 0 || tot.ForcedBounces != 0 || tot.CtlDrops != 0 ||
		tot.Retransmits != 0 || tot.CorruptDropped != 0 || tot.DupSuppressed != 0 ||
		tot.DeliveryFailures != 0 {
		t.Fatalf("lossless default run fired reliability machinery: %+v", tot)
	}
}

func TestWatchdogDiagnosesUnreliableLoss(t *testing.T) {
	// Reliability off + drops on: the workload strands, and instead of
	// hanging (the spinning send path never drains the event queue) Run
	// panics with a diagnostic naming the stuck endpoints.
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	cfg.Faults = faults.Config{Seed: 1, Drop: 0.3}
	cfg.StallHorizon = 100 * sim.Microsecond
	var diag string
	func() {
		defer func() {
			if r := recover(); r != nil {
				diag = r.(string)
			}
		}()
		faultWorkload(t, cfg, 30)
	}()
	if diag == "" {
		t.Fatal("stranded unreliable run did not panic")
	}
	if !strings.Contains(diag, "netsim: network not quiescent") {
		t.Fatalf("diagnostic missing the quiescence report:\n%s", diag)
	}
	if !strings.Contains(diag, "endpoint 0") {
		t.Fatalf("diagnostic does not name the stuck endpoint:\n%s", diag)
	}
}

func TestWatchdogDiagnosesStarvation(t *testing.T) {
	// Every data injection force-bounces, forever, with the reliability
	// layer retrying open-endedly (no deadline): the network churns —
	// activity keeps rising — but nothing is ever delivered. That is
	// sustained-overload starvation, not livelock, and the watchdog must
	// terminate the run with the starvation diagnostic naming the starved
	// endpoints instead of the generic stall report (or a silent hang).
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	cfg.Net.Reliability = netsim.DefaultReliability()
	cfg.Faults = faults.Config{Seed: 1, ForceBounce: 1.0}
	cfg.StallHorizon = 20 * sim.Microsecond
	var diag string
	func() {
		defer func() {
			if r := recover(); r != nil {
				diag = r.(string)
			}
		}()
		faultWorkload(t, cfg, 10)
	}()
	if diag == "" {
		t.Fatal("starved run did not panic")
	}
	if !strings.Contains(diag, "starvation") {
		t.Fatalf("diagnostic is not the starvation report:\n%s", diag)
	}
	if !strings.Contains(diag, "endpoint 0") {
		t.Fatalf("diagnostic does not name the starved endpoint:\n%s", diag)
	}
}

func TestDuplicationSuppressedEndToEnd(t *testing.T) {
	// Heavy duplication + ack loss: every application message must be
	// dispatched exactly once (the msglayer suppresses both in-assembly
	// duplicates and late duplicates of completed messages).
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	cfg.Net.Reliability = netsim.DefaultReliability()
	cfg.Faults = faults.Config{Seed: 4, Duplicate: 0.5, CtlDrop: 0.3}
	st, received := faultWorkload(t, cfg, 40)
	if received != 40 {
		t.Fatalf("handler ran %d times, want exactly 40", received)
	}
	tot := st.Total()
	if tot.FaultDuplicates == 0 {
		t.Fatal("workload injected no duplicates; test proves nothing")
	}
	if tot.DupSuppressed == 0 {
		t.Fatal("no duplicates suppressed despite duplication faults")
	}
}

func TestOutageRecovery(t *testing.T) {
	// A full link outage at the sender early in the run: the reliability
	// layer must retransmit across the window and deliver everything.
	cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
	cfg.Nodes = 2
	cfg.Net.Reliability = netsim.DefaultReliability()
	cfg.Faults = faults.Config{
		Seed:    2,
		Outages: []faults.Outage{{Endpoint: 0, Start: 10 * sim.Microsecond, End: 60 * sim.Microsecond}},
	}
	st, received := faultWorkload(t, cfg, 30)
	if received != 30 {
		t.Fatalf("delivered %d of 30 across the outage", received)
	}
	tot := st.Total()
	if tot.FaultDrops == 0 || tot.Retransmits == 0 {
		t.Fatalf("outage had no effect: drops=%d retransmits=%d", tot.FaultDrops, tot.Retransmits)
	}
	if tot.DeliveryFailures != 0 {
		t.Fatalf("outage within the retransmission budget caused %d failures", tot.DeliveryFailures)
	}
}
