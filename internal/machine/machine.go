// Package machine assembles the simulated parallel machine of Table 3:
// 16 workstation-like nodes, each with a 1 GHz processor, a 1 MB
// direct-mapped cache, 120 ns main memory, a 250 MHz / 256-bit MOESI
// snooping memory bus, and one of the studied NIs attached directly to that
// bus; the nodes are connected by a 40 ns network with return-to-sender
// flow control.
package machine

import (
	"fmt"

	"nisim/internal/cache"
	"nisim/internal/faults"
	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/msglayer"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/proc"
	"nisim/internal/sim"
	"nisim/internal/sim/partition"
	"nisim/internal/stats"
	"nisim/internal/trace"
)

// AppBase is the start of the per-node application data region in DRAM. It
// is offset so that small application working sets begin at cache offset
// 0x40000 (256 KB), clear of the staggered NI queue structures; large
// working sets conflict with everything, as on a real direct-mapped cache.
const AppBase membus.Addr = 0x0104_0000

// Config selects the machine to build. DefaultConfig reproduces Table 3.
type Config struct {
	Nodes int
	// NIKind selects a named NI design; ignored when NISpec is set.
	NIKind nic.Kind
	// NISpec, when non-nil, builds every node's NI from an arbitrary design
	// point of the transfer-engine × buffering-policy space instead of a
	// named Kind. The spec must Validate.
	NISpec      *nic.Spec
	FlowBuffers int // flow-control buffers per direction; netsim.Infinite allowed

	CPU    sim.Clock
	Bus    membus.Timing
	Cache  cache.Config
	MemLat sim.Time
	NI     nic.Config
	Net    netsim.Config
	Msg    msglayer.Config

	// Faults configures deterministic network fault injection. The zero
	// value (all rates zero, no outages) installs no fault plane and is
	// bit-identical to the lossless network. Nonzero fault rates normally
	// want Net.Reliability enabled too, or lost messages hang the program
	// (Run then reports a stall diagnostic instead of returning).
	Faults faults.Config

	// StallHorizon is the fault-run watchdog interval: when faults are
	// injected and the network makes no protocol progress for this long
	// while flow-control buffers are held, Run panics with the quiescence
	// diagnostic instead of livelocking on spinning software. Zero selects
	// DefaultStallHorizon; lossless runs never arm the watchdog unless
	// Watchdog forces it.
	StallHorizon sim.Time

	// Watchdog arms the stall/starvation watchdog even when no faults are
	// injected. Overload runs want this: an admission policy bouncing every
	// arrival starves the workload without a single injected fault.
	Watchdog bool

	// StarvationHorizon is how long network activity may keep rising with
	// zero deliveries before the watchdog declares sustained-overload
	// starvation (distinct from livelock, where activity itself is flat).
	// Zero selects DefaultStarvationTicks stall horizons.
	StarvationHorizon sim.Time

	// Tracer, when non-nil, receives a structured event line per bus
	// transaction (and any other subsystems wired to it). Off by default.
	Tracer *trace.Tracer

	// Shards splits the event engine into this many conservative-parallel
	// partitions (internal/sim/partition): nodes are divided into
	// contiguous shards, each driven by its own engine on its own worker
	// goroutine, synchronized at time-window barriers sized by the network
	// latency (the lookahead). 0 or 1 is today's serial engine,
	// byte-for-byte. Values above Nodes are clamped; a machine whose
	// Tracer is set falls back to serial automatically (the tracer is one
	// shared event stream), as does a network with no positive latency to
	// use as lookahead. Every NI spec partitions — including the throttled
	// CNI32Qm, whose credit returns ride the message layer — and so does
	// every workload. Results are byte-identical across shard counts; only
	// wall-clock time changes (see DESIGN.md §10).
	Shards int
}

// DefaultStallHorizon is how long the fault-run watchdog waits for network
// progress before declaring a stall: generous against any legitimate lull
// (the longest bounce backoffs and retransmission timeouts are well under a
// millisecond on the Table 3 network).
const DefaultStallHorizon = 2 * sim.Millisecond

// DefaultStarvationTicks is the default starvation patience in stall
// horizons: activity rising for this many consecutive watchdog ticks with
// not one delivery is a bounce/retry storm, not a slow receiver.
const DefaultStarvationTicks = 8

// DefaultConfig returns the paper's system parameters with the given NI and
// flow-control buffer count.
func DefaultConfig(kind nic.Kind, flowBuffers int) Config {
	return Config{
		Nodes:       16,
		NIKind:      kind,
		FlowBuffers: flowBuffers,
		CPU:         sim.GHz(1),
		Bus:         membus.DefaultTiming(),
		Cache:       cache.DefaultConfig(),
		MemLat:      120 * sim.Nanosecond,
		NI:          nic.DefaultConfig(),
		Net:         netsim.DefaultConfig(),
		Msg:         msglayer.DefaultConfig(),
	}
}

// Node is one machine node as seen by application code.
type Node struct {
	ID   int
	Proc *proc.Proc
	NI   nic.NI
	EP   *msglayer.Endpoint

	mach         *Machine
	barrierEpoch int // releases seen
	barrierCount int // arrivals seen (coordinator only)
}

// Machine is an assembled system ready to run one program.
type Machine struct {
	// Eng is the engine of shard 0 — the only engine when the machine is
	// serial (Shards <= 1, the default).
	Eng *sim.Engine
	// Engines holds one engine per shard; Engines[0] == Eng. Serial
	// machines have exactly one.
	Engines []*sim.Engine
	Cfg     Config
	Nodes   []*Node
	Net     *netsim.Network
	Stats   *stats.Machine

	group   *partition.Group // nil when serial
	shardOf []int            // node id -> shard index
	ran     bool
}

// Shards returns the number of engine shards actually in use (1 for a
// serial machine, even when Config.Shards requested more but the
// configuration forced the serial fallback).
func (m *Machine) Shards() int { return len(m.Engines) }

// effectiveShards clamps the requested shard count to what the
// configuration can partition: at most one shard per node, serial when the
// network has no positive latency to serve as lookahead, and serial when a
// tracer is attached (the tracer is a single shared event stream).
func effectiveShards(cfg Config) int {
	s := cfg.Shards
	if s < 1 {
		s = 1
	}
	if s > cfg.Nodes {
		s = cfg.Nodes
	}
	if cfg.Net.Latency <= 0 || cfg.Tracer != nil {
		s = 1
	}
	return s
}

// New builds a machine per cfg.
func New(cfg Config) *Machine {
	if cfg.Nodes < 1 {
		panic("machine: need at least one node")
	}
	return build(cfg, effectiveShards(cfg))
}

func build(cfg Config, shards int) *Machine {
	engines := make([]*sim.Engine, shards)
	for s := range engines {
		engines[s] = sim.NewEngine()
	}
	// Contiguous balanced split: node i belongs to shard i*S/N.
	shardOf := make([]int, cfg.Nodes)
	for i := range shardOf {
		shardOf[i] = i * shards / cfg.Nodes
	}
	m := &Machine{
		Eng:     engines[0],
		Engines: engines,
		shardOf: shardOf,
		Cfg:     cfg,
		Net:     netsim.New(engines[0], cfg.Net, cfg.Nodes, cfg.FlowBuffers),
		Stats:   stats.NewMachine(cfg.Nodes),
	}
	if shards > 1 {
		m.group = partition.New(engines, shardOf, cfg.Net.Latency)
		m.Net.Partition(m.group, func(node int) *sim.Engine { return engines[shardOf[node]] })
	}
	for i := 0; i < cfg.Nodes; i++ {
		eng := engines[shardOf[i]]
		st := m.Stats.Nodes[i]
		bus := membus.New(eng, cfg.Bus, st)
		if cfg.Tracer != nil && cfg.Tracer.Enabled(trace.Bus) {
			i := i
			bus.Trace = func(format string, args ...any) {
				cfg.Tracer.Event(eng.Now(), trace.Bus, i, format, args...)
			}
		}
		mem := mainmem.New(fmt.Sprintf("dram-%d", i), cfg.MemLat, eng)
		bus.MapRange(nic.DRAMBase, nic.DRAMLimit, mem)
		c := cache.New(fmt.Sprintf("cache-%d", i), eng, bus, cfg.Cache, st)
		pr := &proc.Proc{ID: i, Eng: eng, Bus: bus, Cache: c, Stats: st, CPU: cfg.CPU}
		ep := m.Net.Endpoint(i)
		ep.Stats = st
		env := &nic.Env{
			Eng: eng, ID: i, Bus: bus, Mem: mem, EP: ep, Stats: st, CPU: cfg.CPU, Cfg: cfg.NI,
		}
		if cfg.Tracer != nil && cfg.Tracer.Enabled(trace.NIC) {
			i := i
			env.Trace = func(format string, args ...any) {
				cfg.Tracer.Event(eng.Now(), trace.NIC, i, format, args...)
			}
		}
		var ni nic.NI
		if cfg.NISpec != nil {
			var err error
			ni, err = nic.NewFromSpec(*cfg.NISpec, env)
			if err != nil {
				panic(fmt.Sprintf("machine: %v", err))
			}
		} else {
			ni = nic.New(cfg.NIKind, env)
		}
		node := &Node{ID: i, Proc: pr, NI: ni, mach: m}
		node.EP = msglayer.New(pr, ni, cfg.Net, cfg.Msg)
		m.Nodes = append(m.Nodes, node)
	}
	// Wire peer-NI identity resolution for send-throttled NIs. The lookup
	// carries no synchronous state access — credit returns ride the message
	// layer with one network latency of lag (nic.PeerAware) — so throttled
	// specs partition as freely as every other design point.
	for _, n := range m.Nodes {
		if pa, ok := n.NI.(nic.PeerAware); ok {
			pa.SetPeerLookup(func(id int) nic.NI { return m.Nodes[id].NI })
		}
	}
	if !cfg.Faults.Zero() {
		inj := faults.New(cfg.Faults)
		// Fork every per-endpoint fault stream up front: stream creation is
		// a pure function of seed and id, and eager forking keeps the
		// stream map read-only once shards start running concurrently.
		inj.Prefork(cfg.Nodes)
		m.Net.SetFaultPlane(inj)
	}
	return m
}

// Run executes prog on every node (as that node's processor software) until
// all instances return, then records the parallel execution time and tears
// the machine down. A Machine runs exactly one program.
func (m *Machine) Run(prog func(n *Node)) *stats.Machine {
	if m.ran {
		panic("machine: Run called twice")
	}
	m.ran = true
	m.registerBarrier()
	if m.group != nil {
		return m.runSharded(prog)
	}

	done := 0
	for _, n := range m.Nodes {
		n := n
		p := m.Eng.Spawn(fmt.Sprintf("app-%d", n.ID), func(p *sim.Process) {
			prog(n)
			done++
		})
		n.Proc.Bind(p)
	}

	// Livelock/starvation watchdog, armed for fault runs and on request: a
	// lost message with the reliability layer off leaves software spinning
	// (poll-while-blocked), so the event queue never drains and the
	// quiescence check below never fires. Instead, sample network progress
	// every StallHorizon. Two equal activity samples with flow-control
	// buffers still held mean nothing can ever advance (livelock). Activity
	// rising tick after tick with not one delivery is the other failure
	// mode — a sustained bounce/retransmission storm starving the workload —
	// and is diagnosed distinctly. The tick stops rescheduling once it is
	// the only event source, handing stall detection back to the queue-drain
	// path.
	stalled := ""
	if !m.Cfg.Faults.Zero() || m.Cfg.Watchdog {
		horizon := m.Cfg.StallHorizon
		if horizon <= 0 {
			horizon = DefaultStallHorizon
		}
		starveAfter := int64(DefaultStarvationTicks)
		if m.Cfg.StarvationHorizon > 0 {
			// Ceiling division: detection happens on whole watchdog ticks.
			starveAfter = int64(m.Cfg.StarvationHorizon / horizon)
			if m.Cfg.StarvationHorizon%horizon != 0 {
				starveAfter++
			}
			if starveAfter < 1 {
				starveAfter = 1
			}
		}
		last, lastDel := int64(-1), int64(-1)
		starvedTicks := int64(0)
		var tick func()
		tick = func() {
			if done >= len(m.Nodes) || stalled != "" {
				return
			}
			act, del := m.Net.Progress()
			if act == last {
				if r := m.Eng.StallReport(); r != "" {
					stalled = fmt.Sprintf("machine: no network progress for %v with %d/%d nodes finished at %v\n%s",
						horizon, done, len(m.Nodes), m.Eng.Now(), r)
					return
				}
			} else if del == lastDel {
				starvedTicks++
				if starvedTicks >= starveAfter {
					if r := m.Net.StarvationReport(); r != "" {
						stalled = fmt.Sprintf("machine: sustained overload starvation — network churning for %v without a delivery, %d/%d nodes finished at %v\n%s",
							sim.Time(starvedTicks)*horizon, done, len(m.Nodes), m.Eng.Now(), r)
						return
					}
				}
			} else {
				starvedTicks = 0
			}
			last, lastDel = act, del
			if m.Eng.Pending() > 0 {
				m.Eng.After(horizon, tick)
			}
		}
		m.Eng.After(horizon, tick)
	}

	m.Eng.RunWhile(func() bool { return done < len(m.Nodes) && stalled == "" })
	if stalled != "" {
		m.Eng.Drain()
		panic(stalled)
	}
	if done < len(m.Nodes) && m.Eng.Pending() == 0 {
		// The event queue drained with nodes still running: a lost message,
		// ack, or bounce stranded them. Fail loudly with the quiescence
		// diagnostic instead of silently returning a truncated run.
		report := m.Eng.StallReport()
		m.Eng.Drain()
		panic(fmt.Sprintf("machine: simulation stalled with %d/%d nodes finished at %v\n%s",
			done, len(m.Nodes), m.Eng.Now(), report))
	}
	m.Stats.ExecTime = m.Eng.Now()
	m.Eng.Drain()
	return m.Stats
}

// runSharded is Run on a partitioned machine: programs are spawned on
// their nodes' shard engines and the partition group drives conservative
// windows, with the watchdog and stall detection replicated at the window
// barriers (windows are capped to land exactly on the watchdog's sampling
// boundaries, so the sampled state matches the serial tick's). Completion,
// stall, and starvation semantics — including the panic messages — are
// identical to the serial path.
func (m *Machine) runSharded(prog func(n *Node)) *stats.Machine {
	N := len(m.Nodes)
	// Per-shard completion counts and finish times: each is written only
	// within its own shard's execution, and the coordinator reads them only
	// at barriers.
	done := make([]int, m.Shards())
	doneAt := make([]sim.Time, m.Shards())
	for _, n := range m.Nodes {
		n := n
		s := m.shardOf[n.ID]
		eng := m.Engines[s]
		p := eng.Spawn(fmt.Sprintf("app-%d", n.ID), func(p *sim.Process) {
			prog(n)
			done[s]++
			doneAt[s] = eng.Now()
		})
		n.Proc.Bind(p)
	}
	total := func() int {
		t := 0
		for _, d := range done {
			t += d
		}
		return t
	}

	stalled := ""
	var ctrl partition.Control
	if !m.Cfg.Faults.Zero() || m.Cfg.Watchdog {
		horizon := m.Cfg.StallHorizon
		if horizon <= 0 {
			horizon = DefaultStallHorizon
		}
		starveAfter := int64(DefaultStarvationTicks)
		if m.Cfg.StarvationHorizon > 0 {
			starveAfter = int64(m.Cfg.StarvationHorizon / horizon)
			if m.Cfg.StarvationHorizon%horizon != 0 {
				starveAfter++
			}
			if starveAfter < 1 {
				starveAfter = 1
			}
		}
		last, lastDel := int64(-1), int64(-1)
		starvedTicks := int64(0)
		nextTick := horizon
		// Cap windows at the next sampling boundary so barriers land on the
		// exact sim times the serial watchdog ticks at.
		ctrl.CapWindow = func(now, proposed sim.Time) sim.Time {
			if proposed > nextTick {
				return nextTick
			}
			return proposed
		}
		ctrl.AfterWindow = func(end sim.Time) bool {
			if total() >= N {
				return false
			}
			if end == nextTick {
				nextTick += horizon
				act, del := m.Net.Progress()
				switch {
				case act == last:
					if r := m.Eng.StallReport(); r != "" {
						stalled = fmt.Sprintf("machine: no network progress for %v with %d/%d nodes finished at %v\n%s",
							horizon, total(), N, end, r)
						return false
					}
				case del == lastDel:
					starvedTicks++
					if starvedTicks >= starveAfter {
						if r := m.Net.StarvationReport(); r != "" {
							stalled = fmt.Sprintf("machine: sustained overload starvation — network churning for %v without a delivery, %d/%d nodes finished at %v\n%s",
								sim.Time(starvedTicks)*horizon, total(), N, end, r)
							return false
						}
					}
				default:
					starvedTicks = 0
				}
				last, lastDel = act, del
			}
			return true
		}
	} else {
		ctrl.AfterWindow = func(end sim.Time) bool { return total() < N }
	}

	// Close on every exit path, panics included: an escaped panic must not
	// leave shard workers spinning on the barrier epoch. Close is
	// idempotent, so the failure path inside the group closing first is
	// fine.
	finished := func() bool {
		defer m.group.Close()
		return m.group.Run(ctrl)
	}()
	if stalled != "" {
		m.drainAll()
		panic(stalled)
	}
	if !finished && total() < N {
		// Every shard's queue drained with nodes still running: a lost
		// message, ack, or bounce stranded them — same diagnosis as the
		// serial path.
		report := m.Eng.StallReport()
		now := m.Eng.Now()
		m.drainAll()
		panic(fmt.Sprintf("machine: simulation stalled with %d/%d nodes finished at %v\n%s",
			total(), N, now, report))
	}
	exec := sim.Time(0)
	for _, t := range doneAt {
		if t > exec {
			exec = t
		}
	}
	m.Stats.ExecTime = exec
	m.drainAll()
	return m.Stats
}

// drainAll kills every shard's live processes.
func (m *Machine) drainAll() {
	for _, eng := range m.Engines {
		eng.Drain()
	}
}

// Reserved messaging-layer handler ids (applications use ids below 200).
const (
	HBarrierArrive  = 250
	HBarrierRelease = 251
)

func (m *Machine) registerBarrier() {
	for _, n := range m.Nodes {
		n := n
		n.EP.Register(HBarrierArrive, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			n.barrierCount++
		})
		n.EP.Register(HBarrierRelease, func(ep *msglayer.Endpoint, msg *msglayer.Message) {
			n.barrierEpoch++
		})
	}
}

// Size returns the number of nodes in the machine.
func (n *Node) Size() int { return len(n.mach.Nodes) }

// SettleSends services the NI until every send this node issued has
// settled: all outgoing flow-control buffers free (delivered, acked, or
// abandoned), the NI-side send queue drained, and no bounced message
// awaiting a software re-push. A program whose *last* sends can bounce —
// an overloaded receiver returning the final barrier release, say — must
// settle before returning, or the bounce lands in the software retry queue
// of a processor that will never poll again and the peer hangs. Closed-loop
// programs never see this (a quiescent receiver has buffer space); open-loop
// overload programs call it before exiting.
func (n *Node) SettleSends() {
	ep := n.mach.Net.Endpoint(n.ID)
	for ep.OutFree() < ep.Buffers() || !n.NI.Idle() || n.NI.NeedsRetry() {
		if !n.EP.PollOne() {
			n.Proc.P.SleepAs(stats.Compute, 200*sim.Nanosecond)
		}
	}
}

// Barrier synchronizes all nodes through the messaging layer: everyone
// sends an arrival to node 0; node 0 broadcasts a release. The traffic (and
// its cost on the node's NI) is part of the simulation, as it was for
// Tempest programs.
func (n *Node) Barrier() {
	N := len(n.mach.Nodes)
	if N == 1 {
		return
	}
	if n.ID == 0 {
		n.EP.WaitUntil(func() bool { return n.barrierCount >= N-1 })
		n.barrierCount -= N - 1
		for i := 1; i < N; i++ {
			n.EP.Send(i, HBarrierRelease, 4, 0)
		}
		return
	}
	target := n.barrierEpoch + 1
	n.EP.Send(0, HBarrierArrive, 4, 0)
	n.EP.WaitUntil(func() bool { return n.barrierEpoch >= target })
}
