// Package report renders experiment results as aligned ASCII tables and
// normalized bar charts, the forms the paper's tables and figures take on a
// terminal.
package report

import (
	"fmt"
	"io"
	"strings"

	"nisim/internal/stats"
)

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells beyond the header width are dropped.
func (t *Table) Row(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// Rowf appends a row of formatted cells.
func (t *Table) Rowf(format []string, args ...any) {
	cells := make([]string, len(format))
	for i, f := range format {
		cells[i] = fmt.Sprintf(f, args[i])
	}
	t.Row(cells...)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		n, err := io.WriteString(w, strings.TrimRight(b.String(), " ")+"\n")
		total += int64(n)
		return err
	}
	if err := line(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return total, err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// Bar renders v (on a scale where 1.0 is the baseline) as a text bar of at
// most width characters, marking the baseline with '|'.
func Bar(v float64, width int) string {
	if v < 0 {
		v = 0
	}
	max := 2.5 // values above 2.5x are clipped
	if v > max {
		v = max
	}
	full := int(v / max * float64(width))
	baseline := int(1.0 / max * float64(width))
	var b strings.Builder
	for i := 0; i < width; i++ {
		switch {
		case i == baseline:
			b.WriteByte('|')
		case i < full:
			b.WriteByte('#')
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// ReliabilitySummary renders a node record's fault-injection and
// reliable-delivery counters as a compact one-line summary, omitting zero
// counters. It returns "" when no faults were injected and no recovery
// machinery fired — the lossless case prints nothing.
func ReliabilitySummary(n *stats.Node) string {
	var parts []string
	add := func(label string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", label, v))
		}
	}
	add("drops", n.FaultDrops)
	add("corruptions", n.FaultCorruptions)
	add("duplicates", n.FaultDuplicates)
	add("delays", n.FaultDelays)
	add("forced-bounces", n.ForcedBounces)
	add("ctl-drops", n.CtlDrops)
	add("retransmits", n.Retransmits)
	add("corrupt-dropped", n.CorruptDropped)
	add("dup-suppressed", n.DupSuppressed)
	add("delivery-failures", n.DeliveryFailures)
	return strings.Join(parts, " ")
}
