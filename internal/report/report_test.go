package report

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.Row("a", "1")
	tbl.Row("longer-name", "23")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// The value column should start at the same offset in both rows.
	off2 := strings.Index(lines[2], "1")
	off3 := strings.Index(lines[3], "23")
	if off2 != off3 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", off2, off3, out)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tbl := NewTable("only")
	tbl.Row("a", "b", "c")
	if strings.Contains(tbl.String(), "b") {
		t.Fatal("extra cells not dropped")
	}
}

func TestRowf(t *testing.T) {
	tbl := NewTable("x", "y")
	tbl.Rowf([]string{"%.2f", "%d"}, 1.234, 42)
	out := tbl.String()
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "42") {
		t.Fatalf("Rowf output wrong:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	b := Bar(1.0, 20)
	if len(b) != 20 {
		t.Fatalf("bar width %d", len(b))
	}
	if !strings.Contains(b, "|") {
		t.Fatal("baseline marker missing")
	}
	small, big := Bar(0.5, 20), Bar(2.0, 20)
	if strings.Count(small, "#") >= strings.Count(big, "#") {
		t.Fatal("bar length not monotone in value")
	}
	if got := Bar(-1, 10); strings.Count(got, "#") != 0 {
		t.Fatal("negative value produced bar segments")
	}
	if len(Bar(100, 10)) != 10 {
		t.Fatal("clipping failed")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.123) != "12.3%" {
		t.Fatalf("Percent = %q", Percent(0.123))
	}
}
