package report

import (
	"strings"
	"testing"

	"nisim/internal/stats"
)

func TestTableAlignsColumns(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.Row("a", "1")
	tbl.Row("longer-name", "23")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// The value column should start at the same offset in both rows.
	off2 := strings.Index(lines[2], "1")
	off3 := strings.Index(lines[3], "23")
	if off2 != off3 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", off2, off3, out)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tbl := NewTable("only")
	tbl.Row("a", "b", "c")
	if strings.Contains(tbl.String(), "b") {
		t.Fatal("extra cells not dropped")
	}
}

func TestRowf(t *testing.T) {
	tbl := NewTable("x", "y")
	tbl.Rowf([]string{"%.2f", "%d"}, 1.234, 42)
	out := tbl.String()
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "42") {
		t.Fatalf("Rowf output wrong:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	b := Bar(1.0, 20)
	if len(b) != 20 {
		t.Fatalf("bar width %d", len(b))
	}
	if !strings.Contains(b, "|") {
		t.Fatal("baseline marker missing")
	}
	small, big := Bar(0.5, 20), Bar(2.0, 20)
	if strings.Count(small, "#") >= strings.Count(big, "#") {
		t.Fatal("bar length not monotone in value")
	}
	if got := Bar(-1, 10); strings.Count(got, "#") != 0 {
		t.Fatal("negative value produced bar segments")
	}
	if len(Bar(100, 10)) != 10 {
		t.Fatal("clipping failed")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.123) != "12.3%" {
		t.Fatalf("Percent = %q", Percent(0.123))
	}
}

func TestTableColumnWidths(t *testing.T) {
	// Each column is as wide as its widest cell (header included), with a
	// two-space gutter between columns.
	tbl := NewTable("id", "description")
	tbl.Row("12345", "x")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := "id     description"; lines[0] != want {
		t.Errorf("header = %q, want %q", lines[0], want)
	}
	if want := "-----  -----------"; lines[1] != want {
		t.Errorf("separator = %q, want %q", lines[1], want)
	}
}

func TestTableSeparatorMatchesWidths(t *testing.T) {
	tbl := NewTable("a", "bb", "ccc")
	tbl.Row("wide-cell", "x", "y")
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	sep := strings.Split(lines[1], "  ")
	if len(sep) != 3 {
		t.Fatalf("separator has %d column groups: %q", len(sep), lines[1])
	}
	for i, want := range []int{len("wide-cell"), len("bb"), len("ccc")} {
		if got := len(sep[i]); got != want {
			t.Errorf("separator column %d is %d dashes, want %d", i, got, want)
		}
	}
}

func TestTableTrimsTrailingSpace(t *testing.T) {
	// A short cell in the last column must not leave pad spaces before the
	// newline: diffs of report output stay clean.
	tbl := NewTable("k", "value")
	tbl.Row("a", "x")
	for _, line := range strings.Split(tbl.String(), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("trailing spaces in %q", line)
		}
	}
}

func TestTableDeterministicRowOrder(t *testing.T) {
	// Rows render in insertion order, and re-rendering the same table is
	// byte-identical — report output participates in golden-file diffs.
	tbl := NewTable("node", "sends")
	for _, r := range [][2]string{{"node2", "9"}, {"node0", "3"}, {"node1", "7"}} {
		tbl.Row(r[0], r[1])
	}
	first := tbl.String()
	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	order := []string{"node2", "node0", "node1"}
	for i, want := range order {
		if !strings.HasPrefix(lines[2+i], want) {
			t.Errorf("row %d = %q, want prefix %q (insertion order)", i, lines[2+i], want)
		}
	}
	for i := 0; i < 5; i++ {
		if again := tbl.String(); again != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, again, first)
		}
	}
}

func TestBarClipping(t *testing.T) {
	// Values at and above the 2.5x ceiling render identically; the baseline
	// marker sits at the 1.0 position regardless of value.
	if Bar(2.5, 20) != Bar(1000, 20) {
		t.Error("values above the ceiling should clip to the same bar")
	}
	at := strings.IndexByte(Bar(0.1, 20), '|')
	if at2 := strings.IndexByte(Bar(2.4, 20), '|'); at != at2 {
		t.Errorf("baseline marker moved: %d vs %d", at, at2)
	}
	if at != 20/25*10 && at != int(1.0/2.5*20) {
		t.Errorf("baseline marker at %d", at)
	}
}

func TestReliabilitySummary(t *testing.T) {
	n := &stats.Node{}
	if got := ReliabilitySummary(n); got != "" {
		t.Fatalf("lossless node should render empty, got %q", got)
	}
	n.FaultDrops = 3
	n.Retransmits = 5
	n.DupSuppressed = 1
	got := ReliabilitySummary(n)
	if want := "drops=3 retransmits=5 dup-suppressed=1"; got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	if strings.Contains(got, "corruptions") || strings.Contains(got, "delivery-failures") {
		t.Fatalf("zero counters must be omitted: %q", got)
	}
}
