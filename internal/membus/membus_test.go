package membus

import (
	"testing"
	"testing/quick"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

// fixedTarget is a Target with constant latency and an access log.
type fixedTarget struct {
	name     string
	latency  sim.Time
	accesses []Kind
}

func (f *fixedTarget) TargetName() string                  { return f.name }
func (f *fixedTarget) HomeLatency(t *Transaction) sim.Time { return f.latency }
func (f *fixedTarget) HomeAccess(t *Transaction)           { f.accesses = append(f.accesses, t.Kind) }

// inertSnooper records what it observes and never owns anything.
type inertSnooper struct{ seen []Kind }

func (s *inertSnooper) SnooperName() string { return "inert" }
func (s *inertSnooper) Snoop(t *Transaction) SnoopReply {
	s.seen = append(s.seen, t.Kind)
	return SnoopReply{}
}

// ownerSnooper claims ownership of one block.
type ownerSnooper struct {
	block  Addr
	supply sim.Time
	hits   int
}

func (s *ownerSnooper) SnooperName() string { return "owner" }
func (s *ownerSnooper) Snoop(t *Transaction) SnoopReply {
	if BlockOf(t.Addr) == s.block && t.Kind == GetS {
		s.hits++
		return SnoopReply{Owner: true, Shared: true, SupplyLatency: s.supply}
	}
	return SnoopReply{}
}

func newBus() (*sim.Engine, *Bus, *fixedTarget) {
	eng := sim.NewEngine()
	bus := New(eng, DefaultTiming(), stats.NewNode())
	home := &fixedTarget{name: "home", latency: 120 * sim.Nanosecond}
	bus.MapRange(0, 1<<32, home)
	return eng, bus, home
}

func TestKindStringsAreDistinct(t *testing.T) {
	kinds := []Kind{GetS, GetX, Upgrade, Writeback, UncachedRead, UncachedWrite, BlockRead, BlockWrite, Invalidate, WriteInvalidate}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestReadFromHomeTiming(t *testing.T) {
	eng, bus, home := newBus()
	var done sim.Time
	bus.Issue(&Transaction{Kind: GetS, Addr: 0x100, Done: func() { done = eng.Now() }})
	eng.Run()
	// addr 8ns + 120ns + turnaround+2 beats 12ns = 140ns
	if done != 140*sim.Nanosecond {
		t.Fatalf("GetS completed at %v, want 140ns", done)
	}
	if len(home.accesses) != 1 {
		t.Fatalf("home saw %d accesses, want 1", len(home.accesses))
	}
}

func TestOwnerSuppliesInsteadOfHome(t *testing.T) {
	eng, bus, home := newBus()
	own := &ownerSnooper{block: 0x200, supply: 24 * sim.Nanosecond}
	bus.AttachSnooper(own)
	var done sim.Time
	tr := &Transaction{Kind: GetS, Addr: 0x200, Done: func() { done = eng.Now() }}
	bus.Issue(tr)
	eng.Run()
	if !tr.FromCache {
		t.Fatal("owner did not supply")
	}
	if done != 44*sim.Nanosecond {
		t.Fatalf("cache-to-cache GetS at %v, want 44ns", done)
	}
	if len(home.accesses) != 0 {
		t.Fatal("home accessed despite cache-to-cache supply")
	}
}

func TestUpgradeAndInvalidateSkipHome(t *testing.T) {
	eng, bus, home := newBus()
	sn := &inertSnooper{}
	bus.AttachSnooper(sn)
	fired := 0
	bus.Issue(&Transaction{Kind: Upgrade, Addr: 0x40, Done: func() { fired++ }})
	bus.Issue(&Transaction{Kind: Invalidate, Addr: 0x80, Done: func() { fired++ }})
	eng.Run()
	if fired != 2 {
		t.Fatalf("address-only transactions completed %d, want 2", fired)
	}
	if len(home.accesses) != 0 {
		t.Fatalf("home touched by address-only transactions: %v", home.accesses)
	}
	if len(sn.seen) != 2 {
		t.Fatalf("snooper saw %d transactions, want 2", len(sn.seen))
	}
}

func TestWriteInvalidateReachesHomeAndSnoopers(t *testing.T) {
	eng, bus, home := newBus()
	sn := &inertSnooper{}
	bus.AttachSnooper(sn)
	bus.Issue(&Transaction{Kind: WriteInvalidate, Addr: 0x40})
	eng.Run()
	if len(home.accesses) != 1 || home.accesses[0] != WriteInvalidate {
		t.Fatalf("home accesses = %v", home.accesses)
	}
	if len(sn.seen) != 1 {
		t.Fatal("snoopers did not observe WriteInvalidate")
	}
}

func TestUncachedBypassesSnoopers(t *testing.T) {
	eng, bus, _ := newBus()
	sn := &inertSnooper{}
	bus.AttachSnooper(sn)
	bus.Issue(&Transaction{Kind: UncachedRead, Addr: 0x40, Size: 8})
	bus.Issue(&Transaction{Kind: UncachedWrite, Addr: 0x40, Size: 8})
	bus.Issue(&Transaction{Kind: BlockRead, Addr: 0x40})
	bus.Issue(&Transaction{Kind: BlockWrite, Addr: 0x40})
	eng.Run()
	if len(sn.seen) != 0 {
		t.Fatalf("uncached/block transactions were snooped: %v", sn.seen)
	}
}

func TestRequesterNotSnooped(t *testing.T) {
	eng, bus, _ := newBus()
	sn := &inertSnooper{}
	bus.AttachSnooper(sn)
	bus.Issue(&Transaction{Kind: GetS, Addr: 0x40, Requester: sn})
	eng.Run()
	if len(sn.seen) != 0 {
		t.Fatal("requester snooped its own transaction")
	}
}

func TestTwoOwnersPanics(t *testing.T) {
	eng, bus, _ := newBus()
	bus.AttachSnooper(&ownerSnooper{block: 0x40})
	bus.AttachSnooper(&ownerSnooper{block: 0x40})
	defer func() {
		if recover() == nil {
			t.Fatal("two owners did not panic")
		}
	}()
	bus.Issue(&Transaction{Kind: GetS, Addr: 0x40})
	eng.Run()
}

func TestUnmappedAddressPanics(t *testing.T) {
	eng := sim.NewEngine()
	bus := New(eng, DefaultTiming(), nil)
	bus.MapRange(0, 0x1000, &fixedTarget{name: "small"})
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped address did not panic")
		}
	}()
	bus.Issue(&Transaction{Kind: GetS, Addr: 0x2000})
	eng.Run()
}

func TestBlockOf(t *testing.T) {
	if BlockOf(0x7f) != 0x40 {
		t.Fatalf("BlockOf(0x7f) = %#x", BlockOf(0x7f))
	}
	if BlockOf(0x40) != 0x40 {
		t.Fatalf("BlockOf(0x40) = %#x", BlockOf(0x40))
	}
}

// Property: for any set of concurrent transactions, completions never
// overlap in the data-phase sense — the bus serializes, so total completion
// time grows at least linearly with the transaction count.
func TestBusSerializationProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		eng, bus, _ := newBus()
		var last sim.Time
		for i := 0; i < n; i++ {
			bus.Issue(&Transaction{Kind: UncachedWrite, Addr: Addr(i) * 8, Size: 8, Done: func() {
				last = eng.Now()
			}})
		}
		eng.Run()
		// Each uncached write occupies >= 16ns of bus time.
		return last >= sim.Time(n)*16*sim.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Done callbacks fire in a valid order — a transaction issued
// strictly after another completes cannot finish before it (FIFO address
// phases with equal service times).
func TestFIFOCompletionOrder(t *testing.T) {
	eng, bus, _ := newBus()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		bus.Issue(&Transaction{Kind: GetS, Addr: Addr(i) * 64, Done: func() {
			order = append(order, i)
		}})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v", order)
		}
	}
}
