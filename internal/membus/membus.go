// Package membus models a node's split-transaction, snooping memory bus —
// the fabric every NI in the paper attaches to. The bus carries coherent
// block transactions (MOESI GetS/GetX/Upgrade/Writeback), uncached register
// accesses, and UltraSparc-style block-buffer transfers.
//
// Timing model (Table 3: 256-bit bus at 250 MHz, so one 64-byte block moves
// in two data beats): a transaction occupies the bus for an
// arbitration+address phase, then — after the supplier's access latency,
// during which the bus is free for other transactions — for a turnaround
// plus data-beat phase. Coherence state transitions are applied atomically
// at the address phase, which is when all attached snoopers observe the
// transaction.
package membus

import (
	"fmt"

	"nisim/internal/sim"
	"nisim/internal/stats"
)

// Addr is a physical address on a node's memory bus.
type Addr uint64

// BlockSize is the coherence block size in bytes (Table 3).
const BlockSize = 64

// BlockOf returns the block-aligned address containing a.
func BlockOf(a Addr) Addr { return a &^ (BlockSize - 1) }

// Kind enumerates bus transaction types.
//
//lint:enum
type Kind int

const (
	// GetS requests a block for reading; a cache holding it in M/O/E
	// supplies it cache-to-cache, otherwise the home does.
	GetS Kind = iota
	// GetX requests a block for writing; all other copies are invalidated.
	GetX
	// Upgrade converts a Shared copy to Modified without a data transfer.
	Upgrade
	// Writeback writes a dirty block back to its home.
	Writeback
	// UncachedRead reads Size bytes from a device register, bypassing caches.
	UncachedRead
	// UncachedWrite posts Size bytes to a device register, bypassing caches.
	UncachedWrite
	// BlockRead moves a 64-byte block from a device into a processor-side
	// block buffer (UltraSparc block load). Non-coherent.
	BlockRead
	// BlockWrite moves a 64-byte block from a processor-side block buffer to
	// a device (UltraSparc block store). Non-coherent.
	BlockWrite
	// Invalidate is an address-only coherent transaction issued by a device
	// that has produced a new version of a block it homes or caches: all
	// other cached copies are invalidated, no data moves on the bus.
	Invalidate
	// WriteInvalidate is a coherent block write to the home that also
	// invalidates all cached copies — the transaction DMA-style NIs use to
	// deposit message blocks into main memory.
	WriteInvalidate
)

func (k Kind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetX:
		return "GetX"
	case Upgrade:
		return "Upgrade"
	case Writeback:
		return "Writeback"
	case UncachedRead:
		return "UncachedRead"
	case UncachedWrite:
		return "UncachedWrite"
	case BlockRead:
		return "BlockRead"
	case BlockWrite:
		return "BlockWrite"
	case Invalidate:
		return "Invalidate"
	case WriteInvalidate:
		return "WriteInvalidate"
	default: //lint:allow exhaustive String falls back to Kind(%d) for invalid values; report output is byte-identity-locked
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// coherent reports whether the transaction is snooped by caches.
func (k Kind) coherent() bool {
	switch k { //lint:allow exhaustive membership predicate: kinds absent from the case list are non-coherent by definition
	case GetS, GetX, Upgrade, Writeback, Invalidate, WriteInvalidate:
		return true
	}
	return false
}

// carriesData reports whether the transaction has a data phase.
func (k Kind) carriesData() bool { return k != Upgrade && k != Invalidate }

// Transaction is one bus operation. Fill in Kind, Addr, Size and Done;
// Requester identifies the issuing snooper so it is excluded from snooping.
type Transaction struct {
	Kind      Kind
	Addr      Addr
	Size      int // bytes; defaults to BlockSize for block kinds
	Requester Snooper
	// Done, if non-nil, runs at the simulated time the transaction completes
	// (data delivered to the requester, or write accepted by the bus).
	Done func()
	// FromCache is set by the bus when the data was supplied cache-to-cache.
	FromCache bool
	// Shared is set by the bus when another snooper retains a copy.
	Shared bool

	// The bus threads its per-phase state through the transaction itself so
	// the phases can run as shared typed-event handlers instead of freshly
	// allocated closures (three per transaction on the old path).
	bus          *Bus
	home         Target
	homeSupplies bool
	waiter       *sim.Process
	completed    bool

	// scratch marks a record owned by the bus's reuse pool (see Access);
	// refs counts the outstanding references to it — pending phase events
	// plus the issuer — so it is only recycled once the last event that
	// could touch it has fired (a write's home access lands after the
	// issuer has already been released).
	scratch bool
	refs    int8
}

// complete finishes the transaction: the caller's Done hook runs first, then
// any process blocked in IssueAndWait is released.
func (t *Transaction) complete() {
	t.completed = true
	if t.Done != nil {
		t.Done()
	}
	if t.waiter != nil {
		t.waiter.Unpark()
	}
}

// Typed-event handlers for the transaction phases (see Transaction). Each
// releases its reference to the transaction after its last touch.
func txnAddressPhase(recv any, _ uint64) {
	t := recv.(*Transaction)
	t.bus.addressPhase(t)
	t.bus.release(t)
}
func txnHomeAccess(recv any, _ uint64) {
	t := recv.(*Transaction)
	t.home.HomeAccess(t)
	t.bus.release(t)
}
func txnWriteDone(recv any, _ uint64) {
	t := recv.(*Transaction)
	t.complete()
	t.bus.release(t)
}
func txnReadDone(recv any, _ uint64) {
	t := recv.(*Transaction)
	b := t.bus
	if b.node != nil {
		if t.FromCache {
			b.node.CacheToCache++
		} else if t.Kind == GetS || t.Kind == GetX {
			b.node.MemToCache++
		}
	}
	if t.homeSupplies {
		t.home.HomeAccess(t)
	}
	t.complete()
	b.release(t)
}

// SnoopReply is a snooper's response to observing a transaction's address
// phase.
type SnoopReply struct {
	// Owner indicates this snooper holds the block in an owning state and
	// will supply the data cache-to-cache.
	Owner bool
	// Shared indicates this snooper retains a (shared) copy.
	Shared bool
	// SupplyLatency is the snooper's access time to drive the data when it
	// is the owner.
	SupplyLatency sim.Time
}

// Snooper observes coherent transactions on the bus.
type Snooper interface {
	// SnooperName identifies the device in diagnostics.
	SnooperName() string
	// Snoop observes a coherent transaction issued by another device and
	// applies its state transition. It runs at the address phase.
	Snoop(t *Transaction) SnoopReply
}

// Target is a device that serves as the home for an address range: main
// memory for DRAM addresses, an NI for NI-resident queue and register
// addresses.
type Target interface {
	// TargetName identifies the device in diagnostics.
	TargetName() string
	// HomeLatency is the device access time to serve t when no cache owns
	// the block (reads) or to absorb the data (writes).
	HomeLatency(t *Transaction) sim.Time
	// HomeAccess is invoked when the transaction's effect reaches the
	// device — e.g. an uncached register write arriving at an NI. It runs
	// after HomeLatency has elapsed.
	HomeAccess(t *Transaction)
}

// Timing holds the bus timing parameters.
type Timing struct {
	Clock          sim.Clock // bus clock (250 MHz ⇒ 4 ns cycles)
	ArbAddrCycles  int64     // arbitration + address phase
	TurnCycles     int64     // turnaround before data beats
	BeatBytes      int       // bytes moved per data beat (256-bit bus ⇒ 32)
	CacheSupplyLat sim.Time  // processor-cache cache-to-cache supply latency
}

// DefaultTiming returns the Table 3 bus: 250 MHz, 256 bits wide, 2-cycle
// arbitration+address, 1-cycle turnaround, 24 ns cache-to-cache supply.
func DefaultTiming() Timing {
	return Timing{
		Clock:          sim.MHz(250),
		ArbAddrCycles:  2,
		TurnCycles:     1,
		BeatBytes:      32,
		CacheSupplyLat: 24 * sim.Nanosecond,
	}
}

type mapping struct {
	lo, hi Addr // [lo, hi)
	home   Target
}

// Bus is one node's memory bus.
type Bus struct {
	eng      *sim.Engine
	timing   Timing
	snoopers []Snooper
	ranges   []mapping
	freeAt   sim.Time
	node     *stats.Node
	pool     []*Transaction // recycled scratch transactions (see Access)

	// Trace, if non-nil, receives a line per transaction (debugging).
	Trace func(format string, args ...any)
}

// New creates a bus on engine e with the given timing. stats may be nil.
func New(e *sim.Engine, timing Timing, node *stats.Node) *Bus {
	return &Bus{eng: e, timing: timing, node: node}
}

// AttachSnooper registers a coherent device (cache, CNI) on the bus.
func (b *Bus) AttachSnooper(s Snooper) { b.snoopers = append(b.snoopers, s) }

// MapRange routes [lo, hi) to home. Later mappings take precedence, so a
// device can overlay part of an earlier range.
func (b *Bus) MapRange(lo, hi Addr, home Target) {
	b.ranges = append(b.ranges, mapping{lo, hi, home})
}

// HomeOf returns the home device for address a, or nil if unmapped.
func (b *Bus) HomeOf(a Addr) Target {
	for i := len(b.ranges) - 1; i >= 0; i-- {
		if a >= b.ranges[i].lo && a < b.ranges[i].hi {
			return b.ranges[i].home
		}
	}
	return nil
}

// Timing returns the bus timing parameters.
func (b *Bus) Timing() Timing { return b.timing }

// reserve claims the bus for cycles bus cycles starting no earlier than
// ready, returning the start and end times of the occupancy.
func (b *Bus) reserve(ready sim.Time, cycles int64) (start, end sim.Time) {
	start = ready
	if b.freeAt > start {
		start = b.freeAt
	}
	start = b.timing.Clock.Align(start)
	end = start + b.timing.Clock.Cycles(cycles)
	b.freeAt = end
	return start, end
}

func (b *Bus) dataBeats(size int) int64 {
	if size <= 0 {
		size = BlockSize
	}
	beats := int64((size + b.timing.BeatBytes - 1) / b.timing.BeatBytes)
	if beats < 1 {
		beats = 1
	}
	return beats
}

// Issue places t on the bus. The transaction proceeds asynchronously; Done
// fires at completion. Issue may be called from any simulation context.
func (b *Bus) Issue(t *Transaction) {
	if t.Size == 0 {
		t.Size = BlockSize
	}
	if b.node != nil {
		b.node.BusTransactions++
		switch t.Kind { //lint:allow exhaustive stat classification counts only the two paper-visible transfer families; coherence kinds need no counter
		case UncachedRead, UncachedWrite:
			b.node.UncachedAccesses++
		case BlockRead, BlockWrite:
			b.node.BlockBufTransfers++
		}
	}
	t.bus = b
	t.completed = false
	t.refs++ // the pending address-phase event
	_, addrEnd := b.reserve(b.eng.Now(), b.timing.ArbAddrCycles)
	b.eng.AtEvent(addrEnd, txnAddressPhase, t, 0)
}

// addressPhase runs at the end of the arbitration+address occupancy: snoop,
// pick the supplier, and schedule the data phase.
func (b *Bus) addressPhase(t *Transaction) {
	var supplyLat sim.Time
	fromCache := false

	if t.Kind.coherent() {
		for _, s := range b.snoopers {
			if s == t.Requester {
				continue
			}
			r := s.Snoop(t)
			if r.Owner {
				if fromCache {
					panic(fmt.Sprintf("membus: two owners for %s %#x", t.Kind, t.Addr))
				}
				fromCache = true
				supplyLat = r.SupplyLatency
				if supplyLat == 0 {
					supplyLat = b.timing.CacheSupplyLat
				}
			}
			if r.Shared {
				t.Shared = true
			}
		}
	}
	t.FromCache = fromCache

	home := b.HomeOf(t.Addr)
	if home == nil {
		panic(fmt.Sprintf("membus: no home for address %#x (%s)", t.Addr, t.Kind))
	}

	if b.Trace != nil {
		b.Trace("%s %#x size=%d fromCache=%v", t.Kind, t.Addr, t.Size, fromCache)
	}

	t.home = home
	switch t.Kind {
	case Upgrade, Invalidate:
		// No data phase and no home involvement: complete at the end of the
		// address phase.
		t.complete()
	case Writeback, UncachedWrite, BlockWrite, WriteInvalidate:
		// Write data follows the address phase immediately; the device
		// absorbs it HomeLatency later, but the requester is released as
		// soon as the bus accepts the data.
		t.refs += 2 // the pending write-done and home-access events
		_, dataEnd := b.reserve(b.eng.Now(), b.timing.TurnCycles+b.dataBeats(t.Size))
		lat := home.HomeLatency(t)
		b.eng.AtEvent(dataEnd+lat, txnHomeAccess, t, 0)
		b.eng.AtEvent(dataEnd, txnWriteDone, t, 0)
	default: //lint:allow exhaustive protocol dichotomy: the write-style kinds are enumerated above, every other kind is read-style
		// Read-style: the owner cache, or failing that the home, drives the
		// data after its access latency.
		t.refs++ // the pending read-done event
		t.homeSupplies = !fromCache
		if t.homeSupplies {
			supplyLat = home.HomeLatency(t)
		}
		ready := b.eng.Now() + supplyLat
		_, dataEnd := b.reserve(ready, b.timing.TurnCycles+b.dataBeats(t.Size))
		b.eng.AtEvent(dataEnd, txnReadDone, t, 0)
	}
}

// IssueAndWait issues t and blocks the calling process until it completes.
// The blocked time is charged to the process's current category. Unlike the
// old implementation, no wrapper closure is allocated around t.Done: the
// transaction records the waiting process and the completion handler
// unparks it after the Done hook runs.
func (b *Bus) IssueAndWait(p *sim.Process, t *Transaction) {
	t.waiter = p
	b.Issue(t)
	for !t.completed {
		p.Park()
	}
	t.waiter = nil
}

// release drops one reference to t and recycles scratch records once the
// last reference — pending phase event or issuer — is gone. Caller-owned
// transactions carry the same counts but are never pooled.
func (b *Bus) release(t *Transaction) {
	t.refs--
	if t.refs == 0 && t.scratch {
		b.pool = append(b.pool, t) //lint:allow noalloc scratch pool grows to the peak concurrent-access count, then is reused
	}
}

// Access issues a fire-and-forget transaction — Kind, Addr, Size only, no
// Done hook, no Requester — and blocks the calling process until it
// completes. It is the allocation-free variant of IssueAndWait for the
// processor cost primitives, which never inspect the transaction
// afterwards: the record comes from the bus's scratch pool and returns to
// it when the last phase event referencing it has fired.
func (b *Bus) Access(p *sim.Process, k Kind, a Addr, size int) {
	var t *Transaction
	if n := len(b.pool); n > 0 {
		t = b.pool[n-1]
		b.pool = b.pool[:n-1]
		*t = Transaction{scratch: true}
	} else {
		t = &Transaction{scratch: true} //lint:allow noalloc pool miss: scratch records are amortized to zero once the pool warms
	}
	t.Kind, t.Addr, t.Size = k, a, size
	t.refs = 1 // the issuer's reference, released below
	b.IssueAndWait(p, t)
	b.release(t)
}

// AccessFrom is Access with a requesting snooper: the pooled variant of
// the coherent device engines' per-block ring transfers, which must name
// themselves so the snoop pass skips the issuer. Timing and coherence
// behavior are identical to IssueAndWait with a fresh record carrying the
// same fields; only the allocation disappears.
func (b *Bus) AccessFrom(p *sim.Process, req Snooper, k Kind, a Addr, size int) {
	var t *Transaction
	if n := len(b.pool); n > 0 {
		t = b.pool[n-1]
		b.pool = b.pool[:n-1]
		*t = Transaction{scratch: true}
	} else {
		t = &Transaction{scratch: true} //lint:allow noalloc pool miss: scratch records are amortized to zero once the pool warms
	}
	t.Kind, t.Addr, t.Size = k, a, size
	t.Requester = req
	t.refs = 1 // the issuer's reference, released below
	b.IssueAndWait(p, t)
	b.release(t)
}

// FillFrom is AccessFrom for cache miss fills: it reports the snoop
// results (line shared elsewhere, data supplied cache-to-cache) the
// requester needs to pick the MOESI fill state, captured before the
// scratch record returns to the pool.
func (b *Bus) FillFrom(p *sim.Process, req Snooper, k Kind, a Addr) (shared, fromCache bool) {
	var t *Transaction
	if n := len(b.pool); n > 0 {
		t = b.pool[n-1]
		b.pool = b.pool[:n-1]
		*t = Transaction{scratch: true}
	} else {
		t = &Transaction{scratch: true} //lint:allow noalloc pool miss: scratch records are amortized to zero once the pool warms
	}
	t.Kind, t.Addr = k, a
	t.Requester = req
	t.refs = 1 // the issuer's reference, released below
	b.IssueAndWait(p, t)
	shared, fromCache = t.Shared, t.FromCache
	b.release(t)
	return shared, fromCache
}
