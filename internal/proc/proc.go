// Package proc bundles the processor-side view of a node: the software
// process, the processor cache, the memory bus, the statistics record, and
// the processor clock. NI models and the messaging layer charge
// processor-time costs through it.
package proc

import (
	"nisim/internal/cache"
	"nisim/internal/membus"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

// Proc is one node's processor context.
type Proc struct {
	ID    int
	Eng   *sim.Engine
	Bus   *membus.Bus
	Cache *cache.Cache
	Stats *stats.Node
	CPU   sim.Clock
	// P is the software process currently executing on this processor. The
	// machine layer sets it when it spawns the application.
	P *sim.Process
}

// Bind attaches the software process and wires time accounting.
func (pr *Proc) Bind(p *sim.Process) {
	pr.P = p
	p.Category = stats.Compute
	p.OnBlocked = pr.Stats.Account
}

// Compute spends n processor cycles of application computation.
func (pr *Proc) Compute(n int64) {
	pr.P.SleepAs(stats.Compute, pr.CPU.Cycles(n))
}

// Work spends n processor cycles attributed to the given category
// (stats.Transfer for messaging-layer instructions, etc.).
func (pr *Proc) Work(category int, n int64) {
	pr.P.SleepAs(category, pr.CPU.Cycles(n))
}

// UncachedRead performs an uncached load of size bytes from a device
// address, blocking until the data returns. Charged to category.
func (pr *Proc) UncachedRead(category int, a membus.Addr, size int) {
	prev := pr.P.Category
	pr.P.Category = category
	pr.Bus.Access(pr.P, membus.UncachedRead, a, size)
	pr.P.Category = prev
}

// UncachedWrite performs an uncached store of size bytes to a device
// address, blocking until the bus accepts it (the device sees it later).
func (pr *Proc) UncachedWrite(category int, a membus.Addr, size int) {
	prev := pr.P.Category
	pr.P.Category = category
	pr.Bus.Access(pr.P, membus.UncachedWrite, a, size)
	pr.P.Category = prev
}

// BlockRead performs an UltraSparc-style block load: 64 bytes from a device
// into the processor's block buffer, plus the instruction overhead the
// paper charges for loading the buffer (§6.1.1: 12 cycles per flush/load).
func (pr *Proc) BlockRead(category int, a membus.Addr, instrCycles int64) {
	prev := pr.P.Category
	pr.P.Category = category
	pr.P.Sleep(pr.CPU.Cycles(instrCycles))
	pr.Bus.Access(pr.P, membus.BlockRead, a, membus.BlockSize)
	pr.P.Category = prev
}

// BlockWrite performs an UltraSparc-style block store from the block buffer
// to a device.
func (pr *Proc) BlockWrite(category int, a membus.Addr, instrCycles int64) {
	prev := pr.P.Category
	pr.P.Category = category
	pr.P.Sleep(pr.CPU.Cycles(instrCycles))
	pr.Bus.Access(pr.P, membus.BlockWrite, a, membus.BlockSize)
	pr.P.Category = prev
}

// CachedRead reads n bytes at a through the processor cache, charged to
// category.
func (pr *Proc) CachedRead(category int, a membus.Addr, n int) {
	prev := pr.P.Category
	pr.P.Category = category
	pr.Cache.ReadBytes(pr.P, a, n)
	pr.P.Category = prev
}

// CachedWrite writes n bytes at a through the processor cache.
func (pr *Proc) CachedWrite(category int, a membus.Addr, n int) {
	prev := pr.P.Category
	pr.P.Category = category
	pr.Cache.WriteBytes(pr.P, a, n)
	pr.P.Category = prev
}
