package proc

import (
	"testing"

	"nisim/internal/cache"
	"nisim/internal/mainmem"
	"nisim/internal/membus"
	"nisim/internal/sim"
	"nisim/internal/stats"
)

func newProc() (*sim.Engine, *Proc, *stats.Node) {
	eng := sim.NewEngine()
	st := stats.NewNode()
	bus := membus.New(eng, membus.DefaultTiming(), st)
	mem := mainmem.New("dram", 120*sim.Nanosecond, eng)
	bus.MapRange(0, 1<<31, mem)
	c := cache.New("c", eng, bus, cache.DefaultConfig(), st)
	pr := &Proc{ID: 0, Eng: eng, Bus: bus, Cache: c, Stats: st, CPU: sim.GHz(1)}
	return eng, pr, st
}

func run(t *testing.T, eng *sim.Engine, pr *Proc, body func()) {
	t.Helper()
	p := eng.Spawn("p", func(*sim.Process) { body() })
	pr.Bind(p)
	eng.Run()
	if !p.Done() {
		t.Fatal("process stuck")
	}
}

func TestComputeChargesComputeCategory(t *testing.T) {
	eng, pr, st := newProc()
	run(t, eng, pr, func() { pr.Compute(100) })
	if st.TimeIn[stats.Compute] != 100*sim.Nanosecond {
		t.Fatalf("compute time = %v, want 100ns", st.TimeIn[stats.Compute])
	}
}

func TestWorkChargesGivenCategory(t *testing.T) {
	eng, pr, st := newProc()
	run(t, eng, pr, func() { pr.Work(stats.Buffering, 50) })
	if st.TimeIn[stats.Buffering] != 50*sim.Nanosecond {
		t.Fatalf("buffering time = %v, want 50ns", st.TimeIn[stats.Buffering])
	}
}

func TestUncachedOpsChargeTransfer(t *testing.T) {
	eng, pr, st := newProc()
	run(t, eng, pr, func() {
		pr.UncachedRead(stats.Transfer, 0x100, 8)
		pr.UncachedWrite(stats.Transfer, 0x100, 8)
	})
	if st.TimeIn[stats.Transfer] == 0 {
		t.Fatal("no transfer time for uncached ops")
	}
	if st.TimeIn[stats.Compute] != 0 {
		t.Fatalf("compute charged %v for uncached ops", st.TimeIn[stats.Compute])
	}
	if st.UncachedAccesses != 2 {
		t.Fatalf("uncached accesses = %d", st.UncachedAccesses)
	}
}

func TestBlockOpsIncludeInstructionOverhead(t *testing.T) {
	eng, pr, st := newProc()
	var dur sim.Time
	run(t, eng, pr, func() {
		start := pr.P.Now()
		pr.BlockRead(stats.Transfer, 0x100, 12)
		dur = pr.P.Now() - start
	})
	// 12 cycles + addr 8 + mem 120 + turn+2 beats 12 = 152ns
	if dur != 152*sim.Nanosecond {
		t.Fatalf("block read took %v, want 152ns", dur)
	}
	if st.BlockBufTransfers != 1 {
		t.Fatalf("block transfers = %d", st.BlockBufTransfers)
	}
}

func TestCachedOpsUseTheCache(t *testing.T) {
	eng, pr, _ := newProc()
	run(t, eng, pr, func() {
		pr.CachedWrite(stats.Transfer, 0x400, 64)
		pr.CachedRead(stats.Transfer, 0x400, 64)
	})
	if pr.Cache.Hits == 0 {
		t.Fatal("cached read after write did not hit")
	}
}

func TestCategoryRestoredAfterOps(t *testing.T) {
	eng, pr, _ := newProc()
	run(t, eng, pr, func() {
		pr.P.Category = stats.Compute
		pr.UncachedRead(stats.Transfer, 0x100, 8)
		if pr.P.Category != stats.Compute {
			t.Errorf("category not restored: %d", pr.P.Category)
		}
		pr.CachedRead(stats.Buffering, 0x200, 8)
		if pr.P.Category != stats.Compute {
			t.Errorf("category not restored after cached op: %d", pr.P.Category)
		}
	})
}
