package nisim

import (
	"bytes"
	"testing"

	"nisim/internal/chaos"
	"nisim/internal/macro"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// canonicalJSON runs jobs serially through the orchestrator and returns
// the report's canonical (timing-stripped) JSON.
func canonicalJSON(t *testing.T, experiment string, jobs []sweep.Job, rev float64) []byte {
	t.Helper()
	results := sweep.Run(sweep.Config{Jobs: 1}, jobs)
	for _, r := range results {
		if r.TimedOut || r.Err != "" {
			t.Fatalf("%s: timed_out=%v err=%q", r.ID, r.TimedOut, r.Err)
		}
	}
	b, err := sweep.NewReport(experiment, 0, sweep.Config{Jobs: 1}, results, rev).
		Canonical().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPartitionedEngineIsDeterministic is the engine-sharding counterpart
// of TestParallelSweepIsDeterministic: where that test varies the number
// of orchestrator workers around serial simulations, this one varies the
// number of engine shards inside each simulation. The partitioned engine
// (machine.Config.Shards, internal/sim/partition) must be byte-identical
// to the serial engine — the shard count appears in neither job IDs nor
// config maps precisely so the canonical reports can be compared
// byte-for-byte. Two grids are pinned: the Figure 1 transfer/buffering
// pairs (shared-memory kernels) and the open-loop overload grid (the
// chaos workload). Under `make ci` this also runs with the race detector
// watching the shard workers and the barrier protocol.
func TestPartitionedEngineIsDeterministic(t *testing.T) {
	p := workload.Params{Iters: 0.3}
	sizes := []int{16, 32}

	serialFig1 := canonicalJSON(t, "scalefig1", macro.ScaleFigure1Jobs(sizes, 1, p), 1)
	shardedFig1 := canonicalJSON(t, "scalefig1", macro.ScaleFigure1Jobs(sizes, 4, p), 1)
	if !bytes.Equal(serialFig1, shardedFig1) {
		t.Errorf("sharded Figure 1 canonical JSON differs from serial:\nserial:\n%s\nsharded:\n%s",
			serialFig1, shardedFig1)
	}

	serialChaos := canonicalJSON(t, "chaos-scale", chaos.ScaleGrid(16, 1, 12).Jobs(), 1)
	shardedChaos := canonicalJSON(t, "chaos-scale", chaos.ScaleGrid(16, 4, 12).Jobs(), 1)
	if !bytes.Equal(serialChaos, shardedChaos) {
		t.Errorf("sharded chaos canonical JSON differs from serial:\nserial:\n%s\nsharded:\n%s",
			serialChaos, shardedChaos)
	}
}
