// Package nisim is a simulation library for studying the data transfer and
// buffering alternatives of memory-bus network interfaces, reproducing
// Mukherjee & Hill, "The Impact of Data Transfer and Buffering Alternatives
// on Network Interface Design" (HPCA 1998).
//
// It simulates a parallel machine of workstation-like nodes — 1 GHz
// processor, 1 MB direct-mapped cache, MOESI snooping memory bus, 120 ns
// DRAM — whose network interface sits directly on the memory bus, connected
// by a 40 ns network with return-to-sender flow control. Nine NI models are
// provided (the paper's seven plus two §6 variants), along with the seven
// macrobenchmarks of the paper's Table 4 and both microbenchmarks of its
// Table 5.
//
// Run a built-in workload:
//
//	res, err := nisim.RunApp(nisim.Config{NI: nisim.CNI32Qm}, "em3d")
//
// Or write a program against the active-message API:
//
//	res, err := nisim.Run(cfg, func(n *nisim.Node) {
//	    n.Register(1, func(n *nisim.Node, m nisim.Message) { ... })
//	    n.Send((n.ID()+1)%n.Nodes(), 1, 64, 0)
//	    n.Barrier()
//	})
package nisim

import (
	"fmt"

	"nisim/internal/machine"
	"nisim/internal/micro"
	"nisim/internal/msglayer"
	"nisim/internal/nic"
	"nisim/internal/workload"
)

// Apps lists the seven built-in macrobenchmarks (the paper's Table 4).
func Apps() []string {
	var out []string
	for _, a := range workload.Apps() {
		out = append(out, string(a))
	}
	return out
}

// RunApp simulates one of the built-in macrobenchmarks on the configured
// machine. scale stretches or shrinks the iteration count; pass 1 (or use
// RunApp with scale via RunAppScaled) for the standard run.
func RunApp(cfg Config, app string) (Result, error) {
	return RunAppScaled(cfg, app, 1)
}

// RunAppScaled is RunApp with an iteration scale factor (0.2 runs a fifth
// of the standard iterations — handy for quick exploration).
func RunAppScaled(cfg Config, app string, scale float64) (Result, error) {
	mc, err := cfg.build()
	if err != nil {
		return Result{}, err
	}
	a, err := workload.ByName(app)
	if err != nil {
		return Result{}, err
	}
	st := workload.Run(mc, a, workload.Params{Iters: scale})
	return newResult(st), nil
}

// Message is an application message delivered to a handler.
type Message struct {
	// Src is the sending node.
	Src int
	// Handler is the handler id it was sent to.
	Handler int
	// Payload holds the message bytes if the sender used SendBytes.
	Payload []byte
	// Len is the payload length in bytes.
	Len int
	// Arg is the sender-supplied out-of-band argument.
	Arg uint64
}

// Node is the per-node programming interface available to custom programs:
// Tempest-style active messages plus computation and synchronization.
type Node struct {
	n *machine.Node
}

// ID returns this node's id in [0, Nodes()).
func (n *Node) ID() int { return n.n.ID }

// Nodes returns the machine size.
func (n *Node) Nodes() int { return n.n.Size() }

// Compute spends the given number of 1 GHz processor cycles computing.
func (n *Node) Compute(cycles int64) { n.n.Proc.Compute(cycles) }

// NowMicros returns the current simulated time in microseconds, for
// measurements inside custom programs.
func (n *Node) NowMicros() float64 { return n.n.Proc.P.Now().Microseconds() }

// Register installs an active-message handler. Handlers run on the
// receiving node's processor and may send messages. ids must be below 200.
func (n *Node) Register(id int, h func(n *Node, m Message)) {
	if id >= msglayer.ReservedHandlerBase {
		panic(fmt.Sprintf("nisim: handler id %d is reserved", id))
	}
	n.n.EP.Register(id, func(ep *msglayer.Endpoint, m *msglayer.Message) {
		h(n, Message{Src: m.Src, Handler: m.Handler, Payload: m.Payload, Len: m.PayloadLen, Arg: m.Arg})
	})
}

// Send transmits payloadLen bytes to handler id on node dst, blocking the
// simulated processor for exactly as long as the configured NI design
// requires.
func (n *Node) Send(dst, handler, payloadLen int, arg uint64) {
	n.n.EP.Send(dst, handler, payloadLen, arg)
}

// SendBytes is Send carrying real bytes end to end.
func (n *Node) SendBytes(dst, handler int, payload []byte, arg uint64) {
	n.n.EP.SendBytes(dst, handler, payload, arg)
}

// Poll checks the NI once, dispatching a handler if a message is ready;
// it reports whether anything was processed.
func (n *Node) Poll() bool { return n.n.EP.PollOne() }

// WaitUntil polls (sleeping between arrivals) until pred holds.
func (n *Node) WaitUntil(pred func() bool) { n.n.EP.WaitUntil(pred) }

// Drain processes everything the NI currently holds.
func (n *Node) Drain() { n.n.EP.Drain() }

// Barrier synchronizes all nodes (implemented with messages through the
// same NI, as Tempest barriers were).
func (n *Node) Barrier() { n.n.Barrier() }

// Run executes program on every node of the configured machine and returns
// the run's statistics. The program runs as simulated software: every Send,
// Poll, and Compute advances simulated time according to the NI model.
func Run(cfg Config, program func(n *Node)) (Result, error) {
	mc, err := cfg.build()
	if err != nil {
		return Result{}, err
	}
	m := machine.New(mc)
	st := m.Run(func(mn *machine.Node) { program(&Node{n: mn}) })
	return newResult(st), nil
}

// RoundTripMicros measures the process-to-process round-trip latency in
// microseconds for the configured NI and payload size (the paper's Table 5
// latency microbenchmark).
func RoundTripMicros(ni NIKind, flowBuffers, payloadBytes int) (float64, error) {
	kind, err := nic.KindByName(string(ni))
	if err != nil {
		return 0, err
	}
	if flowBuffers == 0 {
		flowBuffers = 8
	}
	return micro.RoundTrip(kind, flowBuffers, payloadBytes, 600, 60).Microseconds(), nil
}

// BandwidthMBps measures the process-to-process streaming bandwidth in
// MB/s (the paper's Table 5 bandwidth microbenchmark).
func BandwidthMBps(ni NIKind, flowBuffers, payloadBytes int) (float64, error) {
	kind, err := nic.KindByName(string(ni))
	if err != nil {
		return 0, err
	}
	if flowBuffers == 0 {
		flowBuffers = 8
	}
	return micro.Bandwidth(kind, flowBuffers, payloadBytes, 200), nil
}
