GO ?= go

.PHONY: build test vet lint race bench bench-json ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# lint runs simlint, the determinism/unit-safety multichecker
# (see DESIGN.md "Determinism invariants").
lint: build
	$(GO) run ./cmd/simlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# bench-json regenerates BENCH_results.json: the whole evaluation grid run
# through the sweep orchestrator as one machine-readable report, with a
# serial baseline for the canonical-JSON determinism check and the
# recorded parallel speedup (see EXPERIMENTS.md "Running the evaluation").
bench-json: build
	$(GO) run ./cmd/benchdump -quick -baseline -timeout 300s

# ci is the full verification gate: compile everything, vet, enforce the
# determinism invariants, and run the test suite under the race detector.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/simlint ./...
	$(GO) test -race ./...
