GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# ci is the full verification gate: compile everything, vet, and run the
# test suite under the race detector.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
