GO ?= go

.PHONY: build test vet lint race bench ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# lint runs simlint, the determinism/unit-safety multichecker
# (see DESIGN.md "Determinism invariants").
lint: build
	$(GO) run ./cmd/simlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# ci is the full verification gate: compile everything, vet, enforce the
# determinism invariants, and run the test suite under the race detector.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/simlint ./...
	$(GO) test -race ./...
