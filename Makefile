GO ?= go

.PHONY: build test vet lint lint-json race bench bench-smoke bench-json designspace-smoke chaos-smoke scale-smoke ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# lint runs simlint, the determinism/unit-safety multichecker
# (see DESIGN.md "Determinism invariants").
lint: build
	$(GO) run ./cmd/simlint ./...

# lint-json additionally writes the simlint/v1 report — surviving findings
# plus the complete //lint:allow inventory (pass, position, reason, used) —
# to simlint_report.json for the CI artifact.
lint-json: build
	$(GO) run ./cmd/simlint -json simlint_report.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/sim/

# bench-smoke is the CI benchmark gate: the AllocsPerRun gates on the
# scheduler, message-delivery, and composed NI hot paths, then every benchmark for one
# iteration (an execute-smoke, not a measurement), with the output saved
# to bench_smoke.txt for the CI artifact.
bench-smoke: build
	$(GO) test -run 'AllocFree' -count=1 ./internal/sim/ ./internal/netsim/ ./internal/nic/ ./internal/msglayer/
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/sim/ | tee bench_smoke.txt

# bench-json regenerates BENCH_results.json: the whole evaluation grid run
# through the sweep orchestrator as one machine-readable report, with a
# serial baseline for the canonical-JSON determinism check and the
# recorded parallel speedup (see EXPERIMENTS.md "Running the evaluation").
bench-json: build
	$(GO) run ./cmd/benchdump -quick -baseline -timeout 300s

# designspace-smoke is the CI gate on the NI composition layer and the
# protocol layer above it: the cross-Kind conformance suite over every
# named and cross-product spec, the RDMA engine and rendezvous-protocol
# suites, the in-process sweep determinism regression (which includes the
# eager-vs-rendezvous crossover cells), then the cmd/designspace binary
# itself run serial vs. eight workers — the text tables must be
# byte-identical.
designspace-smoke: build
	$(GO) test -run 'SpecConformance|CrossSpecCount|Designspace|StandardGrid|Crossover|RDMA|Rendezvous' -count=1 ./internal/nic/ ./internal/designspace/ ./internal/msglayer/
	$(GO) run ./cmd/designspace -quick -jobs 1 > designspace_serial.txt
	$(GO) run ./cmd/designspace -quick -jobs 8 > designspace_parallel.txt
	cmp designspace_serial.txt designspace_parallel.txt
	rm -f designspace_serial.txt designspace_parallel.txt

# chaos-smoke is the CI gate on the overload plane: the chaos-grid
# regression tests (matrix coverage, determinism, measured degradation,
# the hysteresis mix, and the eager-vs-rendezvous protocol sub-grid)
# plus the open-loop workload suite, then the cmd/chaossweep binary run
# serial vs. eight workers on the quick grid — the text tables must be
# byte-identical — with the machine-readable nisim-sweep/v1 report saved
# to chaos_results.json for the CI artifact.
chaos-smoke: build
	$(GO) test -run 'Chaos|OpenLoop|StandardGridCovers' -count=1 ./internal/chaos/ ./internal/workload/
	$(GO) run ./cmd/chaossweep -quick -jobs 1 -json chaos_results.json > chaos_serial.txt
	$(GO) run ./cmd/chaossweep -quick -jobs 8 > chaos_parallel.txt
	cmp chaos_serial.txt chaos_parallel.txt
	rm -f chaos_serial.txt chaos_parallel.txt

# scale-smoke is the CI gate on the partitioned engine (internal/sim/
# partition, machine.Config.Shards): the shard byte-identity regressions
# (workload stats, sweep canonical JSON, barrier stress, and the
# rendezvous protocol's RTS/CTS + one-sided put frames crossing shard
# boundaries), then the cmd/scale -big grid — which includes the
# eager-vs-rendezvous cells on the RDMA design — run serial vs. four
# engine shards; the text tables must be byte-identical, with the
# machine-readable nisim-sweep/v1 report saved to scale_results.json for
# the CI artifact.
scale-smoke: build
	$(GO) test -run 'Sharded|PartitionedEngine|HotShard|TiePosts|EverythingShardable|WindowEnds|AdaptiveWindows' -count=1 ./internal/sim/partition/ ./internal/workload/ .
	$(GO) run ./cmd/scale -big -sizes 64 -scale 0.2 -shards 1 -jobs 1 > scale_serial.txt
	$(GO) run ./cmd/scale -big -sizes 64 -scale 0.2 -shards 4 -jobs 1 -baseline -json scale_results.json > scale_sharded.txt
	cmp scale_serial.txt scale_sharded.txt
	rm -f scale_serial.txt scale_sharded.txt

# ci is the full verification gate: compile everything, vet, enforce the
# determinism invariants (all eight simlint passes plus the stale-escape
# check), run the test suite under the race detector, and smoke the
# design-space, chaos, and machine-scaling sweeps for worker-count and
# shard-count invariance.
ci: build vet lint race designspace-smoke chaos-smoke scale-smoke
