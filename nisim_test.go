package nisim

import (
	"bytes"
	"testing"
)

func TestRunAppAllKinds(t *testing.T) {
	for _, ni := range NIKinds() {
		ni := ni
		t.Run(string(ni), func(t *testing.T) {
			res, err := RunAppScaled(Config{NI: ni}, "dsmc", 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecMicros <= 0 {
				t.Fatal("no simulated time")
			}
			if res.Counters.MessagesSent != res.Counters.MessagesReceived {
				t.Fatalf("conservation: %d sent, %d received",
					res.Counters.MessagesSent, res.Counters.MessagesReceived)
			}
			sum := res.Breakdown.Compute + res.Breakdown.Transfer + res.Breakdown.Buffering
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("breakdown does not sum to 1: %+v", res.Breakdown)
			}
		})
	}
}

func TestRunAppUnknown(t *testing.T) {
	if _, err := RunApp(Config{}, "quake"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunApp(Config{NI: "abacus"}, "em3d"); err == nil {
		t.Fatal("unknown NI accepted")
	}
	if _, err := RunApp(Config{Nodes: 1}, "em3d"); err == nil {
		t.Fatal("single-node machine accepted")
	}
	if _, err := RunApp(Config{FlowBuffers: -7}, "em3d"); err == nil {
		t.Fatal("negative buffer count accepted")
	}
}

func TestRunCustomProgram(t *testing.T) {
	const h = 1
	payload := []byte("the quick brown fox")
	var got []byte
	res, err := Run(Config{Nodes: 2, NI: CNI32Qm}, func(n *Node) {
		n.Register(h, func(n *Node, m Message) {
			got = append([]byte(nil), m.Payload...)
		})
		if n.ID() == 0 {
			n.SendBytes(1, h, payload, 42)
		} else {
			n.WaitUntil(func() bool { return got != nil })
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
	if res.Counters.MessagesSent == 0 {
		t.Fatal("no messages counted")
	}
}

func TestMicrobenchHelpers(t *testing.T) {
	rtt, err := RoundTripMicros(CNI32Qm, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 0.5 || rtt > 10 {
		t.Fatalf("implausible round trip %.2fus", rtt)
	}
	bw, err := BandwidthMBps(AP3000, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 20 || bw > 2000 {
		t.Fatalf("implausible bandwidth %.0f MB/s", bw)
	}
	if _, err := RoundTripMicros("bogus", 8, 8); err == nil {
		t.Fatal("unknown NI accepted")
	}
}

func TestTopMessageSizes(t *testing.T) {
	res, err := RunAppScaled(Config{}, "em3d", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopMessageSizes(1)
	if len(top) != 1 || top[0] != 20 {
		t.Fatalf("em3d dominant size = %v, want [20]", top)
	}
}

func TestDefaultsApplied(t *testing.T) {
	mc, err := Config{}.build()
	if err != nil {
		t.Fatal(err)
	}
	if mc.Nodes != 16 {
		t.Fatalf("default nodes = %d, want 16", mc.Nodes)
	}
	if mc.FlowBuffers != 8 {
		t.Fatalf("default buffers = %d, want 8", mc.FlowBuffers)
	}
	inf, err := Config{FlowBuffers: InfiniteBuffers}.build()
	if err != nil {
		t.Fatal(err)
	}
	if inf.FlowBuffers < 1<<30 {
		t.Fatalf("InfiniteBuffers not mapped: %d", inf.FlowBuffers)
	}
}

func TestPaperNIsAreSeven(t *testing.T) {
	if got := len(PaperNIs()); got != 7 {
		t.Fatalf("PaperNIs() returned %d kinds, want 7", got)
	}
}

func TestSharedMemoryPublicAPI(t *testing.T) {
	shm := NewSharedMemory(ShmemConfig{})
	var got []byte
	var state string
	_, err := Run(Config{Nodes: 4, NI: CNI32Qm}, func(n *Node) {
		sn := shm.Attach(n)
		n.Barrier()
		if n.ID() == 1 {
			sn.WriteBytes(2*64, []byte("shared payload"))
		}
		n.Barrier()
		if n.ID() == 3 {
			got = sn.ReadBytes(2 * 64)
			state = sn.State(2 * 64)
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared payload" {
		t.Fatalf("read %q", got)
	}
	if state != "S" {
		t.Fatalf("state %q, want S", state)
	}
	if shm.HomeOf(2*64) != 2 {
		t.Fatalf("HomeOf = %d, want 2", shm.HomeOf(2*64))
	}
}
