package nisim

import (
	"sort"

	"nisim/internal/stats"
)

// Breakdown is the processor-time split of a run, as fractions of total
// processor time (the paper's Figure 1 categories).
type Breakdown struct {
	// Compute is application computation, including cache-miss stalls and
	// waiting for remote work.
	Compute float64
	// Transfer is processor time spent moving or initiating message data
	// between the processor and the NI.
	Transfer float64
	// Buffering is processor time lost to limited buffering: status-register
	// spinning, waiting for flow-control credits, and re-pushing
	// returned-to-sender messages.
	Buffering float64
}

// Counters aggregates event counts across all nodes.
type Counters struct {
	MessagesSent     int64 // application-level messages
	MessagesReceived int64
	BytesSent        int64
	FragmentsSent    int64 // network messages after fragmentation
	BusTransactions  int64
	CacheToCache     int64 // blocks supplied cache-to-cache
	MemToCache       int64 // blocks supplied to processor caches by DRAM
	UncachedAccesses int64
	Bounces          int64 // messages returned to their sender
	Retries          int64
	NICacheHits      int64 // CNI_32Q_m receive blocks served from NI cache
	NICacheMisses    int64
	NIBypasses       int64 // messages written straight to memory (full NI cache)
	Prefetches       int64 // CNI send-side prefetches
}

// Result reports one simulation run.
type Result struct {
	// ExecMicros is the parallel execution time in simulated microseconds.
	ExecMicros float64
	// Breakdown is the machine-wide processor-time split.
	Breakdown Breakdown
	// Counters holds machine-wide event counts.
	Counters Counters
	// MessageSizes histograms application message sizes in bytes (header
	// included) — the paper's Table 4 view of a workload.
	MessageSizes map[int]int64
}

func newResult(st *stats.Machine) Result {
	tot := st.Total()
	r := Result{
		ExecMicros: st.ExecTime.Microseconds(),
		Breakdown: Breakdown{
			Compute:   1 - st.Fraction(stats.Transfer) - st.Fraction(stats.Buffering),
			Transfer:  st.Fraction(stats.Transfer),
			Buffering: st.Fraction(stats.Buffering),
		},
		Counters: Counters{
			MessagesSent:     tot.MessagesSent,
			MessagesReceived: tot.MessagesReceived,
			BytesSent:        tot.BytesSent,
			FragmentsSent:    tot.FragmentsSent,
			BusTransactions:  tot.BusTransactions,
			CacheToCache:     tot.CacheToCache,
			MemToCache:       tot.MemToCache,
			UncachedAccesses: tot.UncachedAccesses,
			Bounces:          tot.Bounces,
			Retries:          tot.Retries,
			NICacheHits:      tot.NICacheHits,
			NICacheMisses:    tot.NICacheMisses,
			NIBypasses:       tot.NIBypasses,
			Prefetches:       tot.Prefetches,
		},
		MessageSizes: make(map[int]int64),
	}
	sizes := tot.Sizes()
	for _, v := range sizes.Peaks(1 << 20) {
		r.MessageSizes[v] = sizes.Count(v)
	}
	return r
}

// TopMessageSizes returns the n most common message sizes, descending by
// count.
func (r Result) TopMessageSizes(n int) []int {
	var out []int
	for v := range r.MessageSizes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if r.MessageSizes[out[i]] != r.MessageSizes[out[j]] {
			return r.MessageSizes[out[i]] > r.MessageSizes[out[j]]
		}
		return out[i] < out[j]
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
