package nisim

import (
	"nisim/internal/shmem"
)

// SharedMemory is a handle to the Tempest-style invalidation-based
// shared-memory protocol, usable from custom programs: create one with
// NewSharedMemory before Run, then Attach each node inside its program.
// The global address space is block-grained (64-byte blocks) and homed
// round-robin across the nodes.
type SharedMemory struct {
	proto *shmem.Protocol
}

// ShmemConfig configures the protocol's data grain.
type ShmemConfig struct {
	// DataBytes is the payload of a data or writeback message. 0 selects
	// the block-grain default (132 bytes, i.e. 140-byte messages).
	DataBytes int
}

// NewSharedMemory creates a protocol instance for one Run.
func NewSharedMemory(cfg ShmemConfig) *SharedMemory {
	c := shmem.DefaultConfig()
	if cfg.DataBytes > 0 {
		c.DataBytes = cfg.DataBytes
	}
	return &SharedMemory{proto: shmem.New(c)}
}

// SharedNode is one node's attachment to the shared-memory protocol.
type SharedNode struct {
	sn *shmem.Node
}

// Attach wires node n into the protocol and installs its handlers. Call it
// once per node, at the top of the program, before the first Barrier.
func (s *SharedMemory) Attach(n *Node) *SharedNode {
	return &SharedNode{sn: s.proto.Register(n.n)}
}

// HomeOf returns the node that homes the block containing gaddr.
func (s *SharedMemory) HomeOf(gaddr int64) int { return s.proto.HomeOf(gaddr / 64) }

// Read performs a coherent read of the block containing gaddr, blocking
// the simulated processor through the protocol's request-reply traffic on
// a miss.
func (sn *SharedNode) Read(gaddr int64) { sn.sn.Read(gaddr) }

// Write performs a coherent write, acquiring exclusive ownership.
func (sn *SharedNode) Write(gaddr int64) { sn.sn.Write(gaddr) }

// ReadBytes reads the block's current payload bytes (for verification).
func (sn *SharedNode) ReadBytes(gaddr int64) []byte { return sn.sn.ReadBytes(gaddr) }

// WriteBytes writes payload bytes into the block.
func (sn *SharedNode) WriteBytes(gaddr int64, b []byte) { sn.sn.WriteBytes(gaddr, b) }

// State reports the local MSI-style state of the block ("I", "S", or "M").
func (sn *SharedNode) State(gaddr int64) string { return sn.sn.State(gaddr) }
