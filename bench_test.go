// Benchmarks regenerating every table and figure of the paper's evaluation
// section. The grids come from the same sweep-job definitions the cmd
// drivers and cmd/benchdump submit (internal/micro, internal/macro), so a
// benchmark cell and a driver cell are the same simulation; each benchmark
// runs its cells serially under the testing harness and reports the
// paper's metric through b.ReportMetric:
//
//	BenchmarkTable5Latency    round-trip microseconds per NI and payload
//	BenchmarkTable5Bandwidth  MB/s per NI and payload
//	BenchmarkFigure1          transfer%% and buffering%% per application
//	BenchmarkFigure3a         normalized execution time, fifo NIs × buffers
//	BenchmarkFigure3b         normalized execution time, coherent NIs
//	BenchmarkFigure4          normalized execution time, single-cycle NI_2w
//	BenchmarkTable4           measured mean message size per application
//
// Absolute numbers depend on this reproduction's synthetic workloads; the
// comparisons (who wins, by what factor, where the crossovers fall) are the
// reproduction targets, recorded against the paper in EXPERIMENTS.md.
// `make bench-json` (cmd/benchdump) emits the same grids as one
// machine-readable report instead.
package nisim

import (
	"fmt"
	"testing"

	"nisim/internal/macro"
	"nisim/internal/micro"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/sweep"
	"nisim/internal/workload"
)

// benchScale keeps macrobenchmark runs short under `go test -bench`.
var benchScale = workload.Params{Iters: 0.3}

func BenchmarkTable5Latency(b *testing.B) {
	spec := micro.StandardSpec(true)
	for _, job := range spec.Jobs() {
		job := job
		if job.Config["metric"] != "latency" {
			continue
		}
		b.Run(fmt.Sprintf("%s/%sB", job.Config["ni"], job.Config["payload"]), func(b *testing.B) {
			var out sweep.Outcome
			for i := 0; i < b.N; i++ {
				out = job.Run()
			}
			b.ReportMetric(out.Metrics["rtt_us"], "us/rtt")
		})
	}
}

func BenchmarkTable5Bandwidth(b *testing.B) {
	spec := micro.StandardSpec(true)
	for _, job := range spec.Jobs() {
		job := job
		if job.Config["metric"] != "bandwidth" {
			continue
		}
		b.Run(fmt.Sprintf("%s/%sB", job.Config["ni"], job.Config["payload"]), func(b *testing.B) {
			var out sweep.Outcome
			for i := 0; i < b.N; i++ {
				out = job.Run()
			}
			b.ReportMetric(out.Metrics["bw_mbps"], "MB/s")
		})
	}
}

func BenchmarkFigure1(b *testing.B) {
	jobs := macro.Figure1Jobs(benchScale)
	for i := 0; i+1 < len(jobs); i += 2 {
		pair := jobs[i : i+2]
		b.Run(pair[0].Config["app"], func(b *testing.B) {
			var row macro.Figure1Row
			for i := 0; i < b.N; i++ {
				row = macro.Figure1Rows(sweep.RunSerial(pair))[0]
			}
			b.ReportMetric(100*row.TransferFraction, "%transfer")
			b.ReportMetric(100*row.BufferingFraction, "%buffering")
		})
	}
}

// benchNormGrid runs each of a NormGrid's cells as a subbenchmark: per
// iteration, the application's baseline plus the cell, reporting the ratio.
func benchNormGrid(b *testing.B, g macro.NormGrid, name func(c macro.Cell) string, unit string) {
	jobs := g.Jobs()
	// One baseline + len(Kinds)*len(Bufs) cells per application, in Jobs order.
	perApp := 1 + len(g.Kinds)*len(g.Bufs)
	for a := range g.Apps {
		base := jobs[a*perApp]
		for j := 1; j < perApp; j++ {
			pair := []sweep.Job{base, jobs[a*perApp+j]}
			b.Run(nameOfCell(g, a, j-1, name), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					results := sweep.RunSerial(pair)
					norm = results[1].Metrics["exec_us"] / results[0].Metrics["exec_us"]
				}
				b.ReportMetric(norm, unit)
			})
		}
	}
}

func nameOfCell(g macro.NormGrid, appIdx, cellIdx int, name func(c macro.Cell) string) string {
	kind := g.Kinds[cellIdx/len(g.Bufs)]
	bufs := g.Bufs[cellIdx%len(g.Bufs)]
	return name(macro.Cell{Kind: kind, Bufs: bufs, App: g.Apps[appIdx]})
}

func BenchmarkFigure3a(b *testing.B) {
	benchNormGrid(b, macro.Fig3aGrid(benchScale), func(c macro.Cell) string {
		return fmt.Sprintf("%s/bufs=%s/%s", c.Kind.ShortName(), macro.BufName(c.Bufs), c.App)
	}, "x-vs-ap3000@8")
}

func BenchmarkFigure3b(b *testing.B) {
	benchNormGrid(b, macro.Fig3bGrid(benchScale), func(c macro.Cell) string {
		return fmt.Sprintf("%s/%s", c.Kind.ShortName(), c.App)
	}, "x-vs-ap3000@8")
}

func BenchmarkFigure4(b *testing.B) {
	benchNormGrid(b, macro.Fig4Grid(benchScale), func(c macro.Cell) string {
		return fmt.Sprintf("bufs=%s/%s", macro.BufName(c.Bufs), c.App)
	}, "x-vs-cni32qm")
}

func BenchmarkTable4(b *testing.B) {
	for _, job := range macro.Table4Jobs(benchScale) {
		job := job
		b.Run(job.Config["app"], func(b *testing.B) {
			var out sweep.Outcome
			for i := 0; i < b.N; i++ {
				out = job.Run()
			}
			b.ReportMetric(out.Metrics["hist_mean_bytes"], "B/msg")
			b.ReportMetric(out.Metrics["hist_msgs"], "msgs")
		})
	}
}

// BenchmarkEngine measures the raw discrete-event core: how many scheduled
// events the simulator retires per second.
func BenchmarkEngine(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(sim.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	e.After(sim.Nanosecond, tick)
	e.Run()
}

// BenchmarkEngineTyped measures the same tick chain on the typed-event
// path: shared handler, pooled records, no closure per event. Compare
// against BenchmarkEngine for the refactor's per-event win.
func BenchmarkEngineTyped(b *testing.B) {
	e := sim.NewEngine()
	type state struct{ n int }
	s := &state{}
	var tick sim.Handler
	tick = func(recv any, _ uint64) {
		st := recv.(*state)
		st.n++
		if st.n < b.N {
			e.AfterEvent(sim.Nanosecond, tick, st, 0)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.AfterEvent(sim.Nanosecond, tick, s, 0)
	e.Run()
}

// BenchmarkPingPong measures end-to-end simulator throughput on the full
// stack: one complete simulated round trip per iteration.
func BenchmarkPingPong(b *testing.B) {
	for _, kind := range []nic.Kind{nic.CM5, nic.CNI32Qm} {
		kind := kind
		b.Run(kind.ShortName(), func(b *testing.B) {
			micro.RoundTrip(kind, 8, 8, 1, b.N)
		})
	}
}

// BenchmarkAblations reports the design-choice ablation deltas (DESIGN.md):
// what each mechanism of the winning designs buys.
func BenchmarkAblations(b *testing.B) {
	mech := macro.AblateMechanismJobs(benchScale)
	b.Run("prefetch", func(b *testing.B) {
		var rows []macro.Ablation
		for i := 0; i < b.N; i++ {
			rows = macro.AblationRows(sweep.RunSerial(mech[:2]))
		}
		for _, a := range rows {
			b.ReportMetric(100*a.Delta(), "%cost-"+a.Name[:7])
		}
	})
	b.Run("dead-suppress", func(b *testing.B) {
		var rows []macro.Ablation
		for i := 0; i < b.N; i++ {
			rows = macro.AblationRows(sweep.RunSerial(mech[len(mech)-2:]))
		}
		b.ReportMetric(100*rows[0].Delta(), "%cost")
	})
	b.Run("iobus", func(b *testing.B) {
		bridges := []sim.Time{0, 250 * sim.Nanosecond}
		jobs := macro.IOBusJobs(bridges)
		var pts []macro.IOBusPoint
		for i := 0; i < b.N; i++ {
			pts = macro.IOBusPoints(bridges, sweep.RunSerial(jobs))
		}
		b.ReportMetric(pts[1].RttUS/pts[0].RttUS, "x-slowdown")
	})
}

// BenchmarkLogP reports the measured LogP decomposition per NI.
func BenchmarkLogP(b *testing.B) {
	picked := map[string]bool{
		nic.CM5.ShortName(): true, nic.AP3000.ShortName(): true, nic.CNI32Qm.ShortName(): true,
	}
	for _, job := range micro.LogPJobs(64) {
		job := job
		if !picked[job.Config["ni"]] {
			continue
		}
		b.Run(job.Config["ni"], func(b *testing.B) {
			var out sweep.Outcome
			for i := 0; i < b.N; i++ {
				out = job.Run()
			}
			b.ReportMetric(out.Metrics["o_send_ns"], "o_send-ns")
			b.ReportMetric(out.Metrics["o_recv_ns"], "o_recv-ns")
			b.ReportMetric(out.Metrics["gap_ns"], "gap-ns")
		})
	}
}
