// Benchmarks regenerating every table and figure of the paper's evaluation
// section. Each benchmark runs the corresponding experiment (at reduced
// iteration scale, to keep `go test -bench=.` tractable) and reports the
// paper's metric through b.ReportMetric:
//
//	BenchmarkTable5Latency    round-trip microseconds per NI and payload
//	BenchmarkTable5Bandwidth  MB/s per NI and payload
//	BenchmarkFigure1          transfer%% and buffering%% per application
//	BenchmarkFigure3a         normalized execution time, fifo NIs × buffers
//	BenchmarkFigure3b         normalized execution time, coherent NIs
//	BenchmarkFigure4          normalized execution time, single-cycle NI_2w
//	BenchmarkTable4           measured mean message size per application
//
// Absolute numbers depend on this reproduction's synthetic workloads; the
// comparisons (who wins, by what factor, where the crossovers fall) are the
// reproduction targets, recorded against the paper in EXPERIMENTS.md.
package nisim

import (
	"fmt"
	"testing"

	"nisim/internal/machine"
	"nisim/internal/macro"
	"nisim/internal/micro"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/sim"
	"nisim/internal/stats"
	"nisim/internal/workload"
)

// benchScale keeps macrobenchmark runs short under `go test -bench`.
var benchScale = workload.Params{Iters: 0.3}

func bufName(b int) string {
	if b >= netsim.Infinite {
		return "inf"
	}
	return fmt.Sprintf("%d", b)
}

func BenchmarkTable5Latency(b *testing.B) {
	for _, kind := range nic.PaperSeven() {
		for _, payload := range micro.LatencyPayloads {
			kind, payload := kind, payload
			b.Run(fmt.Sprintf("%s/%dB", kind.ShortName(), payload), func(b *testing.B) {
				var rtt sim.Time
				for i := 0; i < b.N; i++ {
					rtt = micro.RoundTrip(kind, 8, payload, 550, 30)
				}
				b.ReportMetric(rtt.Microseconds(), "us/rtt")
			})
		}
	}
}

func BenchmarkTable5Bandwidth(b *testing.B) {
	kinds := append(nic.PaperSeven(), nic.CNI32QmThrottle)
	for _, kind := range kinds {
		for _, payload := range micro.BandwidthPayloads {
			kind, payload := kind, payload
			b.Run(fmt.Sprintf("%s/%dB", kind.ShortName(), payload), func(b *testing.B) {
				var mb float64
				count := 150
				if payload >= 4096 {
					count = 40
				}
				for i := 0; i < b.N; i++ {
					mb = micro.Bandwidth(kind, 8, payload, count)
				}
				b.ReportMetric(mb, "MB/s")
			})
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for _, app := range workload.Apps() {
		app := app
		b.Run(string(app), func(b *testing.B) {
			var transfer, buffering float64
			for i := 0; i < b.N; i++ {
				one := macro.Exec(nic.CM5, 1, app, benchScale)
				inf := macro.Exec(nic.CM5, netsim.Infinite, app, benchScale)
				t1 := float64(one.ExecTime)
				buffering = (t1 - float64(inf.ExecTime)) / t1
				if buffering < 0 {
					buffering = 0
				}
				var tt float64
				for _, n := range inf.Nodes {
					tt += float64(n.TimeIn[stats.Transfer])
				}
				transfer = tt / (t1 * float64(len(inf.Nodes)))
			}
			b.ReportMetric(100*transfer, "%transfer")
			b.ReportMetric(100*buffering, "%buffering")
		})
	}
}

func benchNormalized(b *testing.B, kind nic.Kind, bufs int, app workload.App) {
	var norm float64
	for i := 0; i < b.N; i++ {
		base := macro.Exec(nic.AP3000, 8, app, benchScale).ExecTime
		st := macro.Exec(kind, bufs, app, benchScale)
		norm = float64(st.ExecTime) / float64(base)
	}
	b.ReportMetric(norm, "x-vs-ap3000@8")
}

func BenchmarkFigure3a(b *testing.B) {
	for _, kind := range []nic.Kind{nic.CM5, nic.UDMA, nic.AP3000} {
		for _, bufs := range macro.BufferLevels {
			for _, app := range workload.Apps() {
				kind, bufs, app := kind, bufs, app
				b.Run(fmt.Sprintf("%s/bufs=%s/%s", kind.ShortName(), bufName(bufs), app), func(b *testing.B) {
					benchNormalized(b, kind, bufs, app)
				})
			}
		}
	}
}

func BenchmarkFigure3b(b *testing.B) {
	for _, kind := range []nic.Kind{nic.MemoryChannel, nic.StarTJR, nic.CNI512Q, nic.CNI32Qm} {
		for _, app := range workload.Apps() {
			kind, app := kind, app
			b.Run(fmt.Sprintf("%s/%s", kind.ShortName(), app), func(b *testing.B) {
				benchNormalized(b, kind, 8, app)
			})
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for _, bufs := range macro.BufferLevels {
		for _, app := range workload.Apps() {
			bufs, app := bufs, app
			b.Run(fmt.Sprintf("bufs=%s/%s", bufName(bufs), app), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					base := macro.Exec(nic.CNI32Qm, 8, app, benchScale).ExecTime
					st := macro.Exec(nic.CM5SingleCycle, bufs, app, benchScale)
					norm = float64(st.ExecTime) / float64(base)
				}
				b.ReportMetric(norm, "x-vs-cni32qm")
			})
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for _, app := range workload.Apps() {
		app := app
		b.Run(string(app), func(b *testing.B) {
			var mean float64
			var msgs int64
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig(nic.CNI32Qm, 8)
				st := workload.Run(cfg, app, benchScale)
				sizes := st.Total().Sizes()
				mean = sizes.Mean()
				msgs = sizes.Total()
			}
			b.ReportMetric(mean, "B/msg")
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkEngine measures the raw discrete-event core: how many scheduled
// events the simulator retires per second.
func BenchmarkEngine(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(sim.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	e.After(sim.Nanosecond, tick)
	e.Run()
}

// BenchmarkPingPong measures end-to-end simulator throughput on the full
// stack: one complete simulated round trip per iteration.
func BenchmarkPingPong(b *testing.B) {
	for _, kind := range []nic.Kind{nic.CM5, nic.CNI32Qm} {
		kind := kind
		b.Run(kind.ShortName(), func(b *testing.B) {
			micro.RoundTrip(kind, 8, 8, 1, b.N)
		})
	}
}

// BenchmarkAblations reports the design-choice ablation deltas (DESIGN.md):
// what each mechanism of the winning designs buys.
func BenchmarkAblations(b *testing.B) {
	b.Run("prefetch", func(b *testing.B) {
		var rows []macro.Ablation
		for i := 0; i < b.N; i++ {
			rows = macro.AblatePrefetch()
		}
		for _, a := range rows {
			b.ReportMetric(100*a.Delta(), "%cost-"+a.Name[:7])
		}
	})
	b.Run("dead-suppress", func(b *testing.B) {
		var rows []macro.Ablation
		for i := 0; i < b.N; i++ {
			rows = macro.AblateDeadSuppress(benchScale)
		}
		b.ReportMetric(100*rows[0].Delta(), "%cost")
	})
	b.Run("iobus", func(b *testing.B) {
		var pts []macro.IOBusPoint
		for i := 0; i < b.N; i++ {
			pts = macro.AblateIOBus([]sim.Time{0, 250 * sim.Nanosecond})
		}
		b.ReportMetric(pts[1].RttUS/pts[0].RttUS, "x-slowdown")
	})
}

// BenchmarkLogP reports the measured LogP decomposition per NI.
func BenchmarkLogP(b *testing.B) {
	for _, kind := range []nic.Kind{nic.CM5, nic.AP3000, nic.CNI32Qm} {
		kind := kind
		b.Run(kind.ShortName(), func(b *testing.B) {
			var lp micro.LogP
			for i := 0; i < b.N; i++ {
				lp = micro.LogPOf(kind, 64)
			}
			b.ReportMetric(lp.Os.Nanoseconds(), "o_send-ns")
			b.ReportMetric(lp.Or.Nanoseconds(), "o_recv-ns")
			b.ReportMetric(lp.G.Nanoseconds(), "gap-ns")
		})
	}
}
