package nisim

import (
	"fmt"
	"io"

	"nisim/internal/machine"
	"nisim/internal/netsim"
	"nisim/internal/nic"
	"nisim/internal/trace"
)

// NIKind names one of the studied network-interface designs.
type NIKind string

// The nine NI models: the seven of the paper's Table 2 plus the two §6
// variants (the register-mapped single-cycle NI_2w and the send-throttled
// CNI_32Q_m).
const (
	CM5            NIKind = "cm5"              // NI_2w, TMC CM-5-like
	CM5SingleCycle NIKind = "cm5-1cycle"       // single-cycle NI_2w (Figure 4)
	UDMA           NIKind = "udma"             // NI_64w+Udma, Princeton UDMA-based
	AP3000         NIKind = "ap3000"           // NI_16w+Blkbuf, Fujitsu AP3000-like
	StarTJR        NIKind = "startjr"          // CNI_0Q_m, MIT StarT-JR-like
	MemoryChannel  NIKind = "memchannel"       // DEC Memory Channel-like hybrid
	CNI512Q        NIKind = "cni512q"          // Wisconsin CNI without a cache
	CNI32Qm        NIKind = "cni32qm"          // Wisconsin CNI with a cache
	CNI32QmThrottl NIKind = "cni32qm-throttle" // CNI_32Q_m with send throttling
)

// NIKinds returns all supported NI kinds.
func NIKinds() []NIKind {
	var out []NIKind
	for _, k := range nic.Kinds() {
		out = append(out, NIKind(k.ShortName()))
	}
	return out
}

// PaperNIs returns the seven NIs of the paper's main evaluation, in Table 2
// order.
func PaperNIs() []NIKind {
	var out []NIKind
	for _, k := range nic.PaperSeven() {
		out = append(out, NIKind(k.ShortName()))
	}
	return out
}

// InfiniteBuffers selects unbounded flow-control buffering.
const InfiniteBuffers = -1

// Config selects the simulated machine. The zero value of every field has a
// sensible default: 16 nodes, CNI_32Q_m, 8 flow-control buffers.
type Config struct {
	// Nodes is the machine size (Table 3 default: 16).
	Nodes int
	// NI selects the network-interface design (default CNI32Qm).
	NI NIKind
	// FlowBuffers is the number of return-to-sender flow-control buffers per
	// direction per node (default 8); use InfiniteBuffers for unbounded.
	FlowBuffers int
	// TraceTo, when non-nil, receives a structured line per memory-bus
	// transaction and per NI component-seam event (engine start/complete,
	// buffer accept/bounce/reclaim) — a debugging firehose; leave nil for
	// measurement runs.
	TraceTo io.Writer
}

func (c Config) build() (machine.Config, error) {
	kindName := string(c.NI)
	if kindName == "" {
		kindName = string(CNI32Qm)
	}
	kind, err := nic.KindByName(kindName)
	if err != nil {
		return machine.Config{}, err
	}
	bufs := c.FlowBuffers
	switch {
	case bufs == 0:
		bufs = 8
	case bufs == InfiniteBuffers:
		bufs = netsim.Infinite
	case bufs < 0:
		return machine.Config{}, fmt.Errorf("nisim: invalid FlowBuffers %d", c.FlowBuffers)
	}
	mc := machine.DefaultConfig(kind, bufs)
	if c.TraceTo != nil {
		mc.Tracer = trace.New(c.TraceTo, trace.Bus, trace.NIC)
	}
	if c.Nodes != 0 {
		if c.Nodes < 2 {
			return machine.Config{}, fmt.Errorf("nisim: need at least 2 nodes, got %d", c.Nodes)
		}
		mc.Nodes = c.Nodes
	}
	return mc, nil
}
