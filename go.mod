module nisim

go 1.22
